// Package repro is a from-scratch Go reproduction of
//
//	Li, Xu, Tang, Wang. "Model-Free Control for Distributed Stream Data
//	Processing using Deep Reinforcement Learning." VLDB 2018.
//
// It provides a Storm-like distributed stream data processing substrate (a
// discrete-event simulator plus a fast analytic evaluator), the paper's
// DRL-based model-free scheduling framework (the actor-critic method with
// exact K-nearest-neighbor action selection, and the DQN baseline), the
// comparison schedulers (Storm's default round-robin and the model-based
// SVR predictor of Li et al. TBD'16), the three benchmark applications, and
// runners that regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	sys, _ := repro.ContinuousQueries(repro.Small)
//	env := repro.NewSimEnv(sys, 1)
//	agent := repro.NewActorCriticAgent(sys, 1)
//	ctrl := repro.NewController(env, agent)
//	ctrl.CollectOffline(500)         // offline phase: random schedules
//	ctrl.OnlineLearn(200, nil)       // online learning
//	best := ctrl.GreedySolution()    // trained scheduling solution
//	fmt.Println(env.AvgTupleTimeMS(best))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro

import (
	"context"
	mrand "math/rand"

	"repro/internal/actionspace"
	"repro/internal/analytic"
	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Logical-layer types (see internal/topology).
type (
	// Topology is a validated application graph of spouts and bolts.
	Topology = topology.Topology
	// TopologyBuilder accumulates components and edges.
	TopologyBuilder = topology.Builder
	// Component is a spout or bolt with its cost profile.
	Component = topology.Component
	// Grouping is a tuple-distribution policy.
	Grouping = topology.Grouping
)

// Grouping policies (§2.1).
const (
	Shuffle = topology.Shuffle
	Fields  = topology.Fields
	All     = topology.All
	Global  = topology.Global
)

// NewTopology starts building an application graph.
func NewTopology(name string) *TopologyBuilder { return topology.NewBuilder(name) }

// Physical-layer types (see internal/cluster).
type (
	// Cluster is a set of worker machines plus the network cost model.
	Cluster = cluster.Cluster
	// Machine is one worker machine.
	Machine = cluster.Machine
	// Assignment maps executors to machines (the scheduling solution X).
	Assignment = cluster.Assignment
)

// NewCluster returns m machines patterned on the paper's testbed (10
// slots, 1 Gbps network).
func NewCluster(m int) *Cluster { return cluster.NewUniform(m) }

// Environment is the control-plane contract: deploy an assignment, wait
// for stabilization, measure average end-to-end tuple processing time.
type Environment = env.Environment

// System bundles a benchmark application: topology, cluster and arrivals.
type System = apps.System

// Scale selects the continuous-queries experiment size.
type Scale = apps.Scale

// Continuous-queries scales (§4.1).
const (
	Small  = apps.Small
	Medium = apps.Medium
	Large  = apps.Large
)

// ContinuousQueries builds the continuous-queries benchmark (Figure 3).
func ContinuousQueries(s Scale) (*System, error) { return apps.ContinuousQueries(s) }

// LogStream builds the log stream processing benchmark (Figure 4).
func LogStream() (*System, error) { return apps.LogStream() }

// WordCount builds the streaming word-count benchmark (Figure 5).
func WordCount() (*System, error) { return apps.WordCount() }

// NewSimEnv returns the discrete-event-simulator environment for a system —
// the stand-in for a physical Storm cluster. Evaluations are paired
// (identical arrival randomness across assignments) under one seed.
func NewSimEnv(sys *System, seed int64) Environment {
	return &sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: seed}
}

// NewAnalyticEnv returns the fast queueing-approximation environment used
// for training loops (~10⁴× faster than the simulator, same ranking).
func NewAnalyticEnv(sys *System) (Environment, error) {
	return analytic.New(sys.Top, sys.Cl, sys.Arrivals)
}

// Scheduler produces assignments for an environment.
type Scheduler = sched.Scheduler

// NewRoundRobinScheduler returns Storm's default scheduler.
func NewRoundRobinScheduler() Scheduler { return sched.RoundRobin{} }

// NewModelBasedScheduler returns the model-based predictive scheduler of
// Li et al. TBD'16 [25] (linear SVR + local search) for a system.
func NewModelBasedScheduler(sys *System, seed int64) Scheduler {
	return &sched.ModelBased{Top: sys.Top, Cl: sys.Cl, Rng: newRand(seed)}
}

// NewTrafficAwareScheduler returns a T-Storm-style traffic-aware heuristic
// [52], an extra baseline beyond the paper's comparison set.
func NewTrafficAwareScheduler(sys *System) Scheduler {
	return &sched.TrafficAware{Top: sys.Top, Cl: sys.Cl}
}

// NewGreedyScheduler returns the statistics-free greedy baseline: one
// speed-normalized load-balancing pass with upstream affinity, no runtime
// measurements or training.
func NewGreedyScheduler(sys *System) Scheduler {
	return &sched.Greedy{Top: sys.Top, Cl: sys.Cl}
}

// Scheduler registry: the canonical name→factory mapping for the whole
// comparison set, shared by cmd/simulate, the figure pipelines, scenario
// placement and the tournament harness.
type (
	// SchedulerConfig parameterizes registry construction: the system
	// triple, the reproducibility seed, and training budgets/noise for
	// the trainable schedulers.
	SchedulerConfig = sched.Config
	// TrainableScheduler is a Scheduler with an explicit Train(budget) →
	// frozen Schedule lifecycle (the model-based, DQN and actor-critic
	// entries).
	TrainableScheduler = sched.Trainable
)

// SchedulerNames lists the registered schedulers in canonical
// comparison-set order (default, greedy, random, traffic, model, dqn, ac).
func SchedulerNames() []string { return sched.Names() }

// NewRegisteredScheduler constructs any registered scheduler by name.
func NewRegisteredScheduler(name string, cfg SchedulerConfig) (Scheduler, error) {
	return sched.New(name, cfg)
}

// NewSchedulerConfig returns a registry configuration for a system with
// every training knob at its default.
func NewSchedulerConfig(sys *System, seed int64) SchedulerConfig {
	return sched.Config{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: seed}
}

// Simulator is the discrete-event simulator behind NewSimEnv, exposed
// for callers that drive runs window by window.
type Simulator = sim.Sim

// NewSimulator builds a simulator for a system with the paper-default
// configuration.
func NewSimulator(sys *System, seed int64) (*Simulator, error) {
	return sim.New(sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, seed))
}

// ParallelMap runs fn(0..n-1) on a bounded worker pool (workers ≤ 0 means
// one per CPU) and returns the results assembled by index — deterministic
// output order regardless of completion order.
func ParallelMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return parallel.Map(context.Background(), n, workers,
		func(_ context.Context, i int) (T, error) { return fn(i) })
}

// DRL control framework (the paper's contribution, §3).
type (
	// Agent is a DRL scheduling agent (actor-critic or DQN).
	Agent = core.Agent
	// Controller drives offline training and online learning.
	Controller = core.Controller
	// ActorCritic is the proposed agent (Algorithm 1).
	ActorCritic = core.ActorCritic
	// DQN is the restricted-action-space baseline agent (§3.2).
	DQN = core.DQN
	// ACConfig holds actor-critic hyperparameters.
	ACConfig = core.ACConfig
	// DQNConfig holds DQN hyperparameters.
	DQNConfig = core.DQNConfig
	// SampleDatabase persists transition samples (Figure 1's Database).
	SampleDatabase = core.Database
)

// DefaultACConfig returns the paper's actor-critic hyperparameters
// (64/32 tanh networks, τ=0.01, γ=0.99, |B|=1000, H=32, K=8).
func DefaultACConfig() ACConfig { return core.DefaultACConfig() }

// DefaultDQNConfig returns the DQN baseline's hyperparameters.
func DefaultDQNConfig() DQNConfig { return core.DefaultDQNConfig() }

// NewActorCriticAgent builds the paper's actor-critic agent for a system.
func NewActorCriticAgent(sys *System, seed int64) *ActorCritic {
	return core.NewActorCritic(sys.Top.NumExecutors(), sys.Cl.Size(), sys.NumSpouts(),
		core.DefaultACConfig(), seed)
}

// NewActorCriticAgentWith builds the agent with custom hyperparameters.
func NewActorCriticAgentWith(sys *System, cfg ACConfig, seed int64) *ActorCritic {
	return core.NewActorCritic(sys.Top.NumExecutors(), sys.Cl.Size(), sys.NumSpouts(), cfg, seed)
}

// NewDQNAgent builds the DQN baseline agent for a system.
func NewDQNAgent(sys *System, seed int64) *DQN {
	return core.NewDQN(sys.Top.NumExecutors(), sys.Cl.Size(), sys.NumSpouts(),
		core.DefaultDQNConfig(), seed)
}

// NewController wires an agent to an environment, starting from the
// round-robin deployment.
func NewController(e Environment, a Agent) *Controller { return core.NewController(e, a) }

// ActionSpace is the N×M scheduling action space with exact K-NN search
// (the MIQP-NN substitute). The K-NN search reuses a workspace owned by
// the space, so an ActionSpace is not safe for concurrent use — give each
// goroutine its own.
type ActionSpace = actionspace.Space

// NewActionSpace returns an unconstrained N×M action space.
func NewActionSpace(n, m int) *ActionSpace { return actionspace.NewSpace(n, m) }

// Workload processes.
type (
	// ArrivalProcess yields spout arrival rates over time.
	ArrivalProcess = workload.ArrivalProcess
	// ConstantRate is a stationary arrival process.
	ConstantRate = workload.ConstantRate
	// StepRate steps the rate at a point in time (Figure 12's +50%).
	StepRate = workload.StepRate
)

// Experiment runners.
type (
	// ExperimentConfig controls training fidelity.
	ExperimentConfig = experiments.Config
	// FigureResult holds a regenerated figure's series.
	FigureResult = experiments.Result
)

// Experiment fidelity presets.
var (
	// FullFidelity follows the paper's budgets (10,000 offline samples).
	FullFidelity = experiments.Defaults
	// ReducedFidelity preserves all qualitative results at ~10× less compute.
	ReducedFidelity = experiments.Reduced
	// QuickFidelity is for smoke tests and benchmarks.
	QuickFidelity = experiments.Quick
)

// Figure runners, one per figure in the paper's evaluation (§4.2).
func Figure6(s Scale, cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig6(context.Background(), s, cfg)
}

// Figure7 regenerates the CQ-large online-learning reward curves.
func Figure7(cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig7(context.Background(), cfg)
}

// Figure8 regenerates the log-stream tuple-time curves.
func Figure8(cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig8(context.Background(), cfg)
}

// Figure9 regenerates the log-stream reward curves.
func Figure9(cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig9(context.Background(), cfg)
}

// Figure10 regenerates the word-count tuple-time curves.
func Figure10(cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig10(context.Background(), cfg)
}

// Figure11 regenerates the word-count reward curves.
func Figure11(cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig11(context.Background(), cfg)
}

// Figure12 regenerates the workload-change comparison for "cq", "log" or
// "wc".
func Figure12(which string, cfg ExperimentConfig) (*FigureResult, error) {
	return experiments.Fig12(context.Background(), which, cfg)
}

// SummarizeFigures aggregates stabilized values into the paper's headline
// claim (average improvement over default and model-based scheduling).
func SummarizeFigures(results []*FigureResult) (overDefault, overModelBased float64, lines []string) {
	return experiments.Summary(results)
}

// Figure id sets accepted by RunFigures.
var (
	// FigureIDs lists every figure of the evaluation in paper order.
	FigureIDs = experiments.FigureIDs
	// TupleTimeFigureIDs lists the figures the headline summary aggregates.
	TupleTimeFigureIDs = experiments.TupleTimeFigureIDs
)

// RunFigures regenerates a whole figure suite on a bounded worker pool
// (cfg.Workers goroutines; 0 means one per CPU, 1 forces sequential). The
// first error cancels figures not yet started; results come back in input
// order and are byte-identical for any worker count.
func RunFigures(ctx context.Context, ids []string, cfg ExperimentConfig) ([]*FigureResult, error) {
	return experiments.RunFigures(ctx, ids, cfg)
}

// newRand builds a seeded math/rand source for facade constructors.
func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
