// Benchmarks regenerating every figure of the paper's evaluation, plus the
// ablation benches called out in DESIGN.md §5. Figure benches run the full
// pipeline (model-based fit, DQN training, actor-critic training, DES
// deployment curves) at the Quick fidelity; use cmd/reprobench for
// paper-fidelity numbers.
//
// Quality metrics are attached to the benchmark output via ReportMetric:
// stabilized average tuple processing time per scheduler (ms), so `go test
// -bench` output doubles as a compact reproduction table.
package repro_test

import (
	"testing"

	"repro"
)

func quick() repro.ExperimentConfig { return repro.QuickFidelity() }

func reportStabilized(b *testing.B, res *repro.FigureResult) {
	b.Helper()
	metrics := map[string]string{
		"Default":                "default_ms",
		"Model-based":            "modelbased_ms",
		"DQN-based DRL":          "dqn_ms",
		"Actor-critic-based DRL": "actorcritic_ms",
	}
	for name, metric := range metrics {
		if v, ok := res.Stabilized[name]; ok {
			b.ReportMetric(v, metric)
		}
	}
}

func benchFigure(b *testing.B, run func() (*repro.FigureResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportStabilized(b, res)
		}
	}
}

// BenchmarkFig6a regenerates Figure 6(a): continuous queries, small scale.
func BenchmarkFig6a(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure6(repro.Small, quick()) })
}

// BenchmarkFig6b regenerates Figure 6(b): continuous queries, medium scale.
func BenchmarkFig6b(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure6(repro.Medium, quick()) })
}

// BenchmarkFig6c regenerates Figure 6(c): continuous queries, large scale.
func BenchmarkFig6c(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure6(repro.Large, quick()) })
}

// BenchmarkFig7 regenerates Figure 7: online-learning reward curves on
// continuous queries (large), actor-critic vs DQN.
func BenchmarkFig7(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure7(quick()) })
}

// BenchmarkFig8 regenerates Figure 8: log stream processing tuple times.
func BenchmarkFig8(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure8(quick()) })
}

// BenchmarkFig9 regenerates Figure 9: log stream reward curves.
func BenchmarkFig9(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure9(quick()) })
}

// BenchmarkFig10 regenerates Figure 10: word count tuple times.
func BenchmarkFig10(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure10(quick()) })
}

// BenchmarkFig11 regenerates Figure 11: word count reward curves.
func BenchmarkFig11(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure11(quick()) })
}

// BenchmarkFig12a regenerates Figure 12(a): +50% workload step, continuous
// queries.
func BenchmarkFig12a(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure12("cq", quick()) })
}

// BenchmarkFig12b regenerates Figure 12(b): +50% workload step, log stream.
func BenchmarkFig12b(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure12("log", quick()) })
}

// BenchmarkFig12c regenerates Figure 12(c): +50% workload step, word count.
func BenchmarkFig12c(b *testing.B) {
	benchFigure(b, func() (*repro.FigureResult, error) { return repro.Figure12("wc", quick()) })
}

// BenchmarkHeadline computes the aggregate improvement claim (paper: 33.5%
// over default, 14.0% over model-based on average) from quick-fidelity
// tuple-time figures.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var results []*repro.FigureResult
		for _, run := range []func() (*repro.FigureResult, error){
			func() (*repro.FigureResult, error) { return repro.Figure6(repro.Small, quick()) },
			func() (*repro.FigureResult, error) { return repro.Figure10(quick()) },
		} {
			res, err := run()
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, res)
		}
		overDef, overMB, _ := repro.SummarizeFigures(results)
		if i == b.N-1 {
			b.ReportMetric(overDef, "improvement_vs_default_%")
			b.ReportMetric(overMB, "improvement_vs_modelbased_%")
		}
	}
}

// BenchmarkKNNAblation is the K-NN ablation of DESIGN.md §5: train the
// actor-critic agent with K ∈ {1, 4, 8, 16} critic candidates on the small
// continuous-queries system and report the trained solution's simulated
// latency. K = 1 is pure proto-action rounding; the paper's claim is that
// critic re-ranking over K > 1 candidates improves the chosen action.
func BenchmarkKNNAblation(b *testing.B) {
	for _, k := range []int{1, 4, 8, 16} {
		b.Run(map[int]string{1: "K1", 4: "K4", 8: "K8", 16: "K16"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := repro.ContinuousQueries(repro.Small)
				if err != nil {
					b.Fatal(err)
				}
				cfg := repro.DefaultACConfig()
				cfg.K = k
				agent := repro.NewActorCriticAgentWith(sys, cfg, 1)
				trainEnv, err := repro.NewAnalyticEnv(sys)
				if err != nil {
					b.Fatal(err)
				}
				ctrl := repro.NewController(trainEnv, agent)
				if err := ctrl.CollectOffline(300); err != nil {
					b.Fatal(err)
				}
				ctrl.OnlineLearn(150, nil)
				if i == b.N-1 {
					simEnv := repro.NewSimEnv(sys, 7)
					b.ReportMetric(simEnv.AvgTupleTimeMS(ctrl.GreedySolution()), "trained_ms")
				}
			}
		})
	}
}

// BenchmarkTrainOnDES is the transfer ablation of DESIGN.md §5: train the
// actor-critic agent directly against the discrete-event simulator (no
// analytic shortcut) at small scale and report the trained solution's
// quality — validating that the analytic training environment is a faithful
// stand-in.
func BenchmarkTrainOnDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := repro.ContinuousQueries(repro.Small)
		if err != nil {
			b.Fatal(err)
		}
		agent := repro.NewActorCriticAgent(sys, 1)
		desEnv := repro.NewSimEnv(sys, 1)
		ctrl := repro.NewController(desEnv, agent)
		// Tiny budgets: every reward measurement is a full simulation.
		if err := ctrl.CollectOffline(40); err != nil {
			b.Fatal(err)
		}
		ctrl.OnlineLearn(20, nil)
		if i == b.N-1 {
			eval := repro.NewSimEnv(sys, 7)
			b.ReportMetric(eval.AvgTupleTimeMS(ctrl.GreedySolution()), "trained_ms")
		}
	}
}
