package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build a system, train briefly, and verify the learned
// schedule is deployable and measurable.
func TestFacadeEndToEnd(t *testing.T) {
	sys, err := repro.ContinuousQueries(repro.Small)
	if err != nil {
		t.Fatal(err)
	}
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		t.Fatal(err)
	}
	agent := repro.NewActorCriticAgent(sys, 42)
	ctrl := repro.NewController(trainEnv, agent)
	if err := ctrl.CollectOffline(100); err != nil {
		t.Fatal(err)
	}
	ctrl.OnlineLearn(50, nil)
	best := ctrl.GreedySolution()
	if len(best) != trainEnv.N() {
		t.Fatalf("solution covers %d executors want %d", len(best), trainEnv.N())
	}
	simEnv := repro.NewSimEnv(sys, 7)
	if lat := simEnv.AvgTupleTimeMS(best); lat <= 0 {
		t.Fatalf("latency %v", lat)
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	top, err := repro.NewTopology("custom").
		AddSpout("in", 1, 0.05, 1, 100).
		AddBolt("out", 2, 0.2, 0, 0).
		Connect("in", "out", repro.Shuffle).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys := &repro.System{
		Name: "custom", Top: top, Cl: repro.NewCluster(2),
		Arrivals: map[string]repro.ArrivalProcess{"in": repro.ConstantRate{PerSecond: 100}},
		BaseRate: 100,
	}
	e := repro.NewSimEnv(sys, 1)
	if e.N() != 3 || e.M() != 2 {
		t.Fatalf("N=%d M=%d", e.N(), e.M())
	}
	rr, err := repro.NewRoundRobinScheduler().Schedule(e)
	if err != nil {
		t.Fatal(err)
	}
	if lat := e.AvgTupleTimeMS(rr); lat <= 0 {
		t.Fatalf("latency %v", lat)
	}
}

func TestFacadeSchedulers(t *testing.T) {
	sys, err := repro.ContinuousQueries(repro.Small)
	if err != nil {
		t.Fatal(err)
	}
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []repro.Scheduler{
		repro.NewRoundRobinScheduler(),
		repro.NewTrafficAwareScheduler(sys),
	} {
		assign, err := s.Schedule(trainEnv)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(assign) != trainEnv.N() {
			t.Fatalf("%s: bad assignment length", s.Name())
		}
	}
}

func TestActionSpaceFacade(t *testing.T) {
	space := repro.NewActionSpace(4, 3)
	proto := make([]float64, space.Dim())
	proto[0] = 1 // thread 0 prefers machine 0
	res := space.KNearest(proto, 3)
	if len(res) != 3 || res[0][0] != 0 {
		t.Fatalf("KNearest unexpected: %v", res)
	}
}
