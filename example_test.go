package repro_test

import (
	"fmt"

	"repro"
)

// ExampleNewTopology shows how to define and validate an application graph.
func ExampleNewTopology() {
	top, err := repro.NewTopology("pipeline").
		AddSpout("events", 2, 0.05, 1, 200).
		AddBolt("enrich", 4, 0.4, 1, 250).
		AddBolt("store", 2, 0.2, 0, 0).
		Connect("events", "enrich", repro.Shuffle).
		Connect("enrich", "store", repro.Fields).
		Build()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(top.NumExecutors(), "executors")
	fmt.Println(top.Order())
	// Output:
	// 8 executors
	// [events enrich store]
}

// ExampleActionSpace demonstrates the exact K-nearest-neighbor search over
// scheduling solutions that replaces the paper's Gurobi MIQP step.
func ExampleActionSpace() {
	space := repro.NewActionSpace(3, 2) // 3 threads, 2 machines
	// A proto-action that strongly prefers machine 0 for threads 0 and 1
	// and is ambivalent about thread 2.
	proto := []float64{
		0.9, 0.1,
		0.8, 0.2,
		0.5, 0.5,
	}
	for _, cand := range space.KNearest(proto, 3) {
		fmt.Println(cand)
	}
	// Output:
	// [0 0 0]
	// [0 0 1]
	// [0 1 0]
}

// ExampleConstantRate shows arrival processes, including the workload step
// used in the paper's Figure 12.
func ExampleConstantRate() {
	var steady repro.ArrivalProcess = repro.ConstantRate{PerSecond: 1000}
	var stepped repro.ArrivalProcess = repro.StepRate{Base: 1000, Factor: 1.5, AtMS: 60_000}
	fmt.Println(steady.RateAt(0), steady.RateAt(120_000))
	fmt.Println(stepped.RateAt(0), stepped.RateAt(120_000))
	// Output:
	// 1000 1000
	// 1000 1500
}
