// Command reprobench regenerates the paper's figures. Each figure prints
// its series as aligned columns (and optionally CSV) so the curves can be
// compared with the paper directly.
//
// Usage:
//
//	reprobench -fig 6a            # one figure
//	reprobench -fig all           # everything + headline summary
//	reprobench -fig summary       # tuple-time figures + aggregate claim
//	reprobench -fidelity full     # paper-faithful training budgets
//	reprobench -csv out/          # also write CSV per figure
//	reprobench -workers 1         # force sequential execution
//
// Figure suites fan out on a bounded worker pool (one worker per CPU by
// default); results are assembled and printed in paper order and are
// byte-identical for any -workers setting.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 6a|6b|6c|7|8|9|10|11|12a|12b|12c|summary|all")
	fidelity := flag.String("fidelity", "reduced", "training budget: quick|lite|reduced|full")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (optional)")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	var cfg experiments.Config
	switch *fidelity {
	case "quick":
		cfg = experiments.Quick()
	case "lite":
		cfg = experiments.Lite()
	case "reduced":
		cfg = experiments.Reduced()
	case "full":
		cfg = experiments.Defaults()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fidelity %q\n", *fidelity)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Progress = os.Stderr

	known := map[string]bool{}
	for _, id := range experiments.FigureIDs {
		known[id] = true
	}
	var ids []string
	switch *fig {
	case "all":
		ids = experiments.FigureIDs
	case "summary":
		ids = experiments.TupleTimeFigureIDs
	default:
		if !known[*fig] {
			fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	// Stream each figure (in paper order) as soon as it and its
	// predecessors finish: long suites print and persist completed figures
	// instead of holding everything until the end.
	results, err := experiments.RunFiguresStream(context.Background(), ids, cfg,
		func(_ int, res *experiments.Result) {
			printResult(res)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, res); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
		os.Exit(1)
	}

	if *fig == "all" || *fig == "summary" {
		overDef, overMB, lines := experiments.Summary(results)
		fmt.Println("\n=== Headline summary (paper: 33.5% over default, 14.0% over model-based) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("average improvement of actor-critic DRL: %.1f%% over default, %.1f%% over model-based\n",
			overDef, overMB)
	}
}

func printResult(r *experiments.Result) {
	fmt.Printf("\n=== Figure %s: %s ===\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return
	}
	// Header.
	fmt.Printf("%10s", xLabel(r.ID))
	for _, s := range r.Series {
		fmt.Printf("  %22s", s.Name)
	}
	fmt.Println()
	// Rows: downsample long series to ≤ 40 rows for the console.
	n := len(r.Series[0].X)
	step := 1
	if n > 40 {
		step = n / 40
	}
	for i := 0; i < n; i += step {
		fmt.Printf("%10.2f", r.Series[0].X[i])
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Printf("  %22.3f", s.Y[i])
			} else {
				fmt.Printf("  %22s", "-")
			}
		}
		fmt.Println()
	}
	if r.Stabilized != nil {
		fmt.Println("stabilized (mean of last 5 windows):")
		for _, s := range r.Series {
			if v, ok := r.Stabilized[s.Name]; ok {
				fmt.Printf("  %-24s %.3f ms\n", s.Name, v)
			}
		}
	}
}

func xLabel(id string) string {
	if strings.HasPrefix(id, "7") || strings.HasPrefix(id, "9") || strings.HasPrefix(id, "11") {
		return "epoch"
	}
	return "minute"
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(xLabel(r.ID))
	for _, s := range r.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	if len(r.Series) > 0 {
		for i := range r.Series[0].X {
			fmt.Fprintf(&b, "%g", r.Series[0].X[i])
			for _, s := range r.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteString("\n")
		}
	}
	return os.WriteFile(filepath.Join(dir, "fig"+r.ID+".csv"), []byte(b.String()), 0o644)
}
