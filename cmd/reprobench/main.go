// Command reprobench regenerates the paper's figures. Each figure prints
// its series as aligned columns (and optionally CSV) so the curves can be
// compared with the paper directly.
//
// Usage:
//
//	reprobench -fig 6a            # one figure
//	reprobench -fig all           # everything + headline summary
//	reprobench -fig summary       # tuple-time figures + aggregate claim
//	reprobench -fidelity full     # paper-faithful training budgets
//	reprobench -csv out/          # also write CSV per figure
//	reprobench -workers 1         # force sequential execution
//	reprobench -gemm reference    # reference-order GEMM kernels
//	reprobench -bench-json p.json # run the benchmark suite, write JSON, exit
//
// Figure suites fan out on a bounded worker pool (one worker per CPU by
// default); results are assembled and printed in paper order and are
// byte-identical for any -workers setting, in either GEMM kernel mode.
//
// -bench-json runs the signature micro- and serving benchmarks
// (internal/benchkit) instead of figures and writes machine-readable
// results (ns/op, allocs/op, req/s) for perf-trajectory tracking: each PR
// commits a BENCH_PRn.json snapshot.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchkit"
	"repro/internal/experiments"
	"repro/internal/mat"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 6a|6b|6c|7|8|9|10|11|12a|12b|12c|summary|all")
	fidelity := flag.String("fidelity", "reduced", "training budget: quick|lite|reduced|full")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (optional)")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
	gemm := flag.String("gemm", "blocked", "GEMM engine: blocked (default) or reference (bitwise per-sample accumulation order)")
	benchJSON := flag.String("bench-json", "", "run the benchmark suite and write machine-readable results to this path (skips figures)")
	flag.Parse()

	switch *gemm {
	case "blocked":
		mat.SetKernelMode(mat.KernelBlocked)
	case "reference":
		mat.SetKernelMode(mat.KernelReference)
	default:
		fmt.Fprintf(os.Stderr, "unknown -gemm %q (want blocked or reference)\n", *gemm)
		os.Exit(2)
	}

	if *benchJSON != "" {
		rep, err := benchkit.Run(func(line string) { fmt.Fprintln(os.Stderr, line) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		if err := benchkit.WriteJSON(rep, *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchmark results written to %s (%d benchmarks, %s kernels, GOMAXPROCS=%d)\n",
			*benchJSON, len(rep.Results), rep.KernelMode, rep.GOMAXPROCS)
		return
	}

	var cfg experiments.Config
	switch *fidelity {
	case "quick":
		cfg = experiments.Quick()
	case "lite":
		cfg = experiments.Lite()
	case "reduced":
		cfg = experiments.Reduced()
	case "full":
		cfg = experiments.Defaults()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fidelity %q\n", *fidelity)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Progress = os.Stderr

	known := map[string]bool{}
	for _, id := range experiments.FigureIDs {
		known[id] = true
	}
	var ids []string
	switch *fig {
	case "all":
		ids = experiments.FigureIDs
	case "summary":
		ids = experiments.TupleTimeFigureIDs
	default:
		if !known[*fig] {
			fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	// Stream each figure (in paper order) as soon as it and its
	// predecessors finish: long suites print and persist completed figures
	// instead of holding everything until the end.
	results, err := experiments.RunFiguresStream(context.Background(), ids, cfg,
		func(_ int, res *experiments.Result) {
			printResult(res)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, res); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
					os.Exit(1)
				}
			}
		})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
		os.Exit(1)
	}

	if *fig == "all" || *fig == "summary" {
		overDef, overMB, lines := experiments.Summary(results)
		fmt.Println("\n=== Headline summary (paper: 33.5% over default, 14.0% over model-based) ===")
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("average improvement of actor-critic DRL: %.1f%% over default, %.1f%% over model-based\n",
			overDef, overMB)
	}
}

func printResult(r *experiments.Result) {
	fmt.Printf("\n=== Figure %s: %s ===\n", r.ID, r.Title)
	if len(r.Series) == 0 {
		return
	}
	// Header.
	fmt.Printf("%10s", xLabel(r.ID))
	for _, s := range r.Series {
		fmt.Printf("  %22s", s.Name)
	}
	fmt.Println()
	// Rows: downsample long series to ≤ 40 rows for the console.
	n := len(r.Series[0].X)
	step := 1
	if n > 40 {
		step = n / 40
	}
	for i := 0; i < n; i += step {
		fmt.Printf("%10.2f", r.Series[0].X[i])
		for _, s := range r.Series {
			if i < len(s.Y) {
				fmt.Printf("  %22.3f", s.Y[i])
			} else {
				fmt.Printf("  %22s", "-")
			}
		}
		fmt.Println()
	}
	if r.Stabilized != nil {
		fmt.Println("stabilized (mean of last 5 windows):")
		for _, s := range r.Series {
			if v, ok := r.Stabilized[s.Name]; ok {
				fmt.Printf("  %-24s %.3f ms\n", s.Name, v)
			}
		}
	}
}

func xLabel(id string) string {
	if strings.HasPrefix(id, "7") || strings.HasPrefix(id, "9") || strings.HasPrefix(id, "11") {
		return "epoch"
	}
	return "minute"
}

func writeCSV(dir string, r *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(xLabel(r.ID))
	for _, s := range r.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	if len(r.Series) > 0 {
		for i := range r.Series[0].X {
			fmt.Fprintf(&b, "%g", r.Series[0].X[i])
			for _, s := range r.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteString(",")
				}
			}
			b.WriteString("\n")
		}
	}
	return os.WriteFile(filepath.Join(dir, "fig"+r.ID+".csv"), []byte(b.String()), 0o644)
}
