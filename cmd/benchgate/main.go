// Command benchgate compares a fresh `reprobench -bench-json` report
// against the committed baseline (BENCH_PRn.json) and fails when a
// watched benchmark's ns/op regressed beyond the allowed fraction — the
// CI perf-regression gate. Allocation growth is reported as a warning
// only: CI runners are noisy enough that an alloc delta is a review
// prompt, not a merge blocker, while a >25% time regression on a
// signature kernel is a real event even on shared hardware.
//
//	benchgate -baseline BENCH_PR4.json -current /tmp/bench.json
//	benchgate -max-regress 0.25 -watch core/TrainStepAC,core/TrainStepDQN
//
// Benchmarks present in only one of the two reports are skipped with a
// note (the gate must not brick CI when the suite gains or loses a
// benchmark), but an empty watch intersection is an error — a gate that
// silently compares nothing is worse than no gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchkit"
)

func main() {
	var (
		baseline   = flag.String("baseline", "", "committed baseline report (reprobench -bench-json format)")
		current    = flag.String("current", "", "freshly generated report to gate")
		maxRegress = flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression before failing (0.25 = +25%)")
		watch      = flag.String("watch", "core/TrainStepAC,core/TrainStepDQN,nn/ForwardBatchInfer64",
			"comma-separated benchmark names to gate on")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := load(*current)
	if err != nil {
		fail(err)
	}

	var failures, compared int
	fmt.Printf("%-34s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, name := range strings.Split(*watch, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, bok := base[name]
		c, cok := cur[name]
		if !bok || !cok {
			fmt.Printf("%-34s skipped (present in baseline: %v, in current: %v)\n", name, bok, cok)
			continue
		}
		compared++
		delta := c.NsPerOp/b.NsPerOp - 1
		verdict := "ok"
		if delta > *maxRegress {
			verdict = "FAIL"
			failures++
		}
		fmt.Printf("%-34s %14.0f %14.0f %+7.1f%%  %s\n", name, b.NsPerOp, c.NsPerOp, 100*delta, verdict)
		if c.AllocsPerOp > b.AllocsPerOp {
			fmt.Printf("%-34s warning: allocs/op grew %d -> %d (not gating)\n", name, b.AllocsPerOp, c.AllocsPerOp)
		}
	}
	if compared == 0 {
		fail(fmt.Errorf("no watched benchmark exists in both reports; the gate compared nothing"))
	}
	if failures > 0 {
		fail(fmt.Errorf("%d benchmark(s) regressed more than %.0f%% in ns/op", failures, 100**maxRegress))
	}
	fmt.Printf("benchgate: %d benchmark(s) within %.0f%% of baseline\n", compared, 100**maxRegress)
}

func load(path string) (map[string]benchkit.Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchkit.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchkit.Result, len(rep.Results))
	for _, r := range rep.Results {
		out[r.Name] = r
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
