// Command agentfleet is the gateway in front of a replicated agentd
// fleet. It accepts scheduler sessions on one address, hashes each
// session's resumption token to a replication group (rendezvous hashing),
// and proxies the session to that group's current leader. A health monitor
// polls each leader; when one dies, the gateway promotes the next healthy
// follower via the daemon's /promote endpoint and re-homes traffic, so
// clients with resumption tokens reconnect and resume with zero protocol
// errors.
//
// Each -group flag names one replication group as a comma-separated member
// list, every member "sessionAddr@httpAddr[@replAddr]"; the first member
// is the leader at startup. The optional third field is the member's WAL
// shipping address (-repl-listen) — configure it in groups of three or
// more so the gateway can re-point surviving followers at a promoted
// member after failover (POST /retarget):
//
//	agentfleet -listen 127.0.0.1:7800 \
//	  -group 127.0.0.1:7700@127.0.0.1:7701@127.0.0.1:7702,127.0.0.1:7710@127.0.0.1:7711@127.0.0.1:7712
//
// with the daemons started as
//
//	agentd -listen 127.0.0.1:7700 -http 127.0.0.1:7701 -data-dir /var/lib/a -repl-listen 127.0.0.1:7702
//	agentd -listen 127.0.0.1:7710 -http 127.0.0.1:7711 -data-dir /var/lib/b -repl-listen 127.0.0.1:7712 -replicate-from 127.0.0.1:7702
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// groupFlags collects repeated -group flags.
type groupFlags []fleet.Group

func (g *groupFlags) String() string { return fmt.Sprintf("%d groups", len(*g)) }

func (g *groupFlags) Set(v string) error {
	grp := fleet.Group{Name: fmt.Sprintf("g%d", len(*g))}
	for _, m := range strings.Split(v, ",") {
		parts := strings.Split(strings.TrimSpace(m), "@")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" || parts[1] == "" {
			return fmt.Errorf("member %q: want sessionAddr@httpAddr[@replAddr]", m)
		}
		b := fleet.Backend{Addr: parts[0], Health: parts[1]}
		if len(parts) == 3 {
			b.Repl = parts[2]
		}
		grp.Members = append(grp.Members, b)
	}
	if len(grp.Members) == 0 {
		return fmt.Errorf("empty group")
	}
	*g = append(*g, grp)
	return nil
}

func main() {
	var groups groupFlags
	var (
		listen    = flag.String("listen", "127.0.0.1:7800", "scheduler session listen address")
		httpAddr  = flag.String("http", "", "HTTP control surface address (/metrics, /healthz); empty disables")
		healthInt = flag.Duration("health-interval", 200*time.Millisecond, "leader health poll cadence per group")
		failThr   = flag.Int("fail-threshold", 3, "consecutive failed polls before failover")
		dialTO    = flag.Duration("dial-timeout", 2*time.Second, "backend dial timeout")
	)
	flag.Var(&groups, "group", "replication group \"sessionAddr@httpAddr[@replAddr],...\" (first member = leader; repeatable)")
	flag.Parse()

	gw, err := fleet.NewGateway(fleet.Config{
		Groups:         groups,
		HealthInterval: *healthInt,
		FailThreshold:  *failThr,
		DialTimeout:    *dialTO,
		Logf:           log.Printf,
	})
	if err != nil {
		fail(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	log.Printf("agentfleet: routing %d groups on %s", len(groups), l.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: gw.Handler()}
		go func() {
			log.Printf("agentfleet: control surface on http://%s/metrics", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("agentfleet: http: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = gw.Serve(ctx, l)
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
	}
	if err != nil {
		fail(err)
	}
	log.Printf("agentfleet: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "agentfleet:", err)
	os.Exit(1)
}
