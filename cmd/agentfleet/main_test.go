package main

import "testing"

func TestGroupFlagParsing(t *testing.T) {
	var g groupFlags
	if err := g.Set("127.0.0.1:1@127.0.0.1:2@127.0.0.1:3,127.0.0.1:4@127.0.0.1:5"); err != nil {
		t.Fatal(err)
	}
	if len(g) != 1 || len(g[0].Members) != 2 {
		t.Fatalf("parsed %d groups / %d members, want 1 / 2", len(g), len(g[0].Members))
	}
	m0, m1 := g[0].Members[0], g[0].Members[1]
	if m0.Addr != "127.0.0.1:1" || m0.Health != "127.0.0.1:2" || m0.Repl != "127.0.0.1:3" {
		t.Fatalf("member 0 = %+v, want addr@health@repl split", m0)
	}
	if m1.Addr != "127.0.0.1:4" || m1.Health != "127.0.0.1:5" || m1.Repl != "" {
		t.Fatalf("member 1 = %+v, want two-part form with empty Repl", m1)
	}
	if err := g.Set("127.0.0.1:6@127.0.0.1:7"); err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 || g[1].Name == g[0].Name {
		t.Fatalf("second -group: %d groups, names %q/%q", len(g), g[0].Name, g[1].Name)
	}

	for _, bad := range []string{"", "a", "a@", "@b", "a@b@c@d", "a@b,c"} {
		var gg groupFlags
		if err := gg.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted a malformed member list", bad)
		}
	}
}
