// Command simulate runs one deployment of a benchmark system under a
// chosen scheduler on the discrete-event simulator and prints the
// average-tuple-processing-time windows — a single curve of the kind the
// paper's Figures 6, 8 and 10 are built from.
//
// Usage:
//
//	simulate -app cq-large -scheduler default -minutes 20
//	simulate -app wc -scheduler ac -minutes 20 -train 500
//	simulate -app cq-small -scheduler all       # every scheduler, in parallel
//	simulate -cluster-scenario examples/scenarios/mixed4.ndjson
//
// With -scheduler all, each scheduler's training and deployment runs
// concurrently on a bounded worker pool and the stabilized latencies are
// printed as one comparison table (ordered, deterministic for a seed).
//
// With -cluster-scenario, the named NDJSON scenario file is run on the
// shared-clock multi-topology engine (internal/multisim): every topology
// in the scenario shares one cluster's cores, slots and network, with the
// scenario's arrival traces and correlated fault schedule. -isolated
// re-runs the same topologies each on a private copy of the cluster — the
// no-interference baseline. Output is deterministic for a seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/multisim"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// allSchedulers is the comparison set run by -scheduler all.
var allSchedulers = []string{"default", "greedy", "random", "traffic", "model", "dqn", "ac"}

func main() {
	app := flag.String("app", "cq-small", "system: cq-small|cq-medium|cq-large|log|wc")
	scheduler := flag.String("scheduler", "default", "scheduler: default|greedy|random|traffic|model|dqn|ac|all")
	minutes := flag.Float64("minutes", 20, "simulated minutes")
	train := flag.Int("train", 500, "training budget for the learning schedulers")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "worker pool size for -scheduler all (0 = one per CPU)")
	scenario := flag.String("cluster-scenario", "", "NDJSON scenario file: run its topology mix on one shared cluster")
	isolated := flag.Bool("isolated", false, "with -cluster-scenario: give each topology a private cluster copy (no-contention baseline)")
	flag.Parse()

	if *scenario != "" {
		if err := runScenario(*scenario, *isolated); err != nil {
			fail(err)
		}
		return
	}

	sys, err := systemFor(*app)
	if err != nil {
		fail(err)
	}

	if *scheduler == "all" {
		if err := compareAll(sys, *minutes, *train, *seed, *workers); err != nil {
			fail(err)
		}
		return
	}

	assign, err := schedule(sys, *scheduler, *train, *seed)
	if err != nil {
		fail(err)
	}

	cfg := sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, *seed)
	s, err := sim.New(cfg)
	if err != nil {
		fail(err)
	}
	if err := s.Deploy(assign); err != nil {
		fail(err)
	}
	fmt.Printf("%s under %q for %.0f simulated minutes (N=%d, M=%d)\n",
		sys.Name, *scheduler, *minutes, sys.Top.NumExecutors(), sys.Cl.Size())
	s.RunUntil(*minutes * 60_000)

	fmt.Println(" minute   avg tuple time (ms)   tuples")
	for i, w := range s.Windows() {
		if i%3 != 2 { // every 30 s
			continue
		}
		fmt.Printf("  %5.1f   %12.3f   %10d\n", w.TimeMS/60_000, w.AvgMS, w.Count)
	}
	fmt.Printf("\nstabilized (last 5 windows): %.3f ms over %d completed tuples\n",
		s.AvgOverLastWindows(5), s.Completed())
}

// compareAll trains and deploys every scheduler concurrently (each task owns
// its agents, environments and simulator) and prints a comparison table in
// the fixed allSchedulers order.
func compareAll(sys *repro.System, minutes float64, train int, seed int64, workers int) error {
	fmt.Printf("%s under all schedulers for %.0f simulated minutes (N=%d, M=%d)\n",
		sys.Name, minutes, sys.Top.NumExecutors(), sys.Cl.Size())
	type row struct {
		stabilized float64
		completed  int64
		decisionNS int64
	}
	rows, err := parallel.Map(context.Background(), len(allSchedulers), workers,
		func(_ context.Context, i int) (row, error) {
			start := time.Now()
			assign, err := schedule(sys, allSchedulers[i], train, seed)
			if err != nil {
				return row{}, err
			}
			// Scheduling cost per placement decision (one executor→machine
			// choice), training included for the learning schedulers.
			decisionNS := time.Since(start).Nanoseconds() / int64(sys.Top.NumExecutors())
			cfg := sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, seed)
			s, err := sim.New(cfg)
			if err != nil {
				return row{}, err
			}
			if err := s.Deploy(assign); err != nil {
				return row{}, err
			}
			s.RunUntil(minutes * 60_000)
			return row{stabilized: s.AvgOverLastWindows(5), completed: s.Completed(), decisionNS: decisionNS}, nil
		})
	if err != nil {
		return err
	}
	fmt.Println(" scheduler   stabilized (ms)      tuples   ns/decision")
	for i, r := range rows {
		fmt.Printf("  %-9s   %12.3f   %10d   %11d\n", allSchedulers[i], r.stabilized, r.completed, r.decisionNS)
	}
	return nil
}

// runScenario loads an NDJSON cluster scenario and runs it on the
// shared-clock multi-topology engine, printing one deterministic row per
// topology. Wall-clock throughput goes to stderr so stdout can be diffed
// across runs.
func runScenario(path string, isolated bool) error {
	sc, err := multisim.LoadFile(path)
	if err != nil {
		return err
	}
	m, err := multisim.Build(sc, isolated)
	if err != nil {
		return err
	}
	mode := "shared cluster"
	if isolated {
		mode = "isolated baseline"
	}
	fmt.Printf("scenario %q: %d topologies on %d machines (%s), %.0f simulated seconds, seed %d\n",
		sc.Name, len(sc.Topologies), sc.Cluster.Machines, mode, sc.DurationMS/1_000, sc.Seed)
	start := time.Now()
	m.RunUntil(sc.DurationMS)
	elapsed := time.Since(start)

	fmt.Println(" topology          stabilized (ms)    p50 (ms)    p99 (ms)    completed    replayed   dropped")
	for _, r := range m.Results(5) {
		fmt.Printf("  %-16s   %13.3f   %9.3f   %9.3f   %10d   %9d   %7d\n",
			r.Name, r.StabilizedMS, r.P50MS, r.P99MS, r.Completed, r.Replayed, r.Dropped)
	}
	fmt.Printf("events processed: %d\n", m.EventsProcessed())
	fmt.Fprintf(os.Stderr, "wall clock: %v (%.0f events/sec)\n",
		elapsed.Round(time.Millisecond), float64(m.EventsProcessed())/elapsed.Seconds())
	return nil
}

func schedule(sys *repro.System, kind string, train int, seed int64) ([]int, error) {
	simEnv := repro.NewSimEnv(sys, seed)
	switch kind {
	case "default":
		return repro.NewRoundRobinScheduler().Schedule(simEnv)
	case "greedy":
		return repro.NewGreedyScheduler(sys).Schedule(simEnv)
	case "traffic":
		return repro.NewTrafficAwareScheduler(sys).Schedule(simEnv)
	case "random":
		n, m := sys.Top.NumExecutors(), sys.Cl.Size()
		space := repro.NewActionSpace(n, m)
		rng := rand.New(rand.NewSource(seed))
		return space.Random(rng), nil
	case "model":
		trainEnv, err := repro.NewAnalyticEnv(sys)
		if err != nil {
			return nil, err
		}
		return repro.NewModelBasedScheduler(sys, seed).Schedule(trainEnv)
	case "dqn", "ac":
		trainEnv, err := repro.NewAnalyticEnv(sys)
		if err != nil {
			return nil, err
		}
		var agent repro.Agent
		if kind == "ac" {
			agent = repro.NewActorCriticAgent(sys, seed)
		} else {
			agent = repro.NewDQNAgent(sys, seed)
		}
		ctrl := repro.NewController(trainEnv, agent)
		if err := ctrl.CollectOffline(train); err != nil {
			return nil, err
		}
		ctrl.OnlineLearn(train/2, nil)
		return ctrl.GreedySolution(), nil
	default:
		return nil, fmt.Errorf("unknown -scheduler %q", kind)
	}
}

func systemFor(app string) (*repro.System, error) {
	switch app {
	case "cq-small":
		return repro.ContinuousQueries(repro.Small)
	case "cq-medium":
		return repro.ContinuousQueries(repro.Medium)
	case "cq-large":
		return repro.ContinuousQueries(repro.Large)
	case "log":
		return repro.LogStream()
	case "wc":
		return repro.WordCount()
	default:
		return nil, fmt.Errorf("unknown -app %q", app)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
