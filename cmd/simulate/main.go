// Command simulate runs one deployment of a benchmark system under a
// chosen scheduler on the discrete-event simulator and prints the
// average-tuple-processing-time windows — a single curve of the kind the
// paper's Figures 6, 8 and 10 are built from.
//
// Usage:
//
//	simulate -app cq-large -scheduler default -minutes 20
//	simulate -app wc -scheduler ac -minutes 20 -train 500
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/sim"
)

func main() {
	app := flag.String("app", "cq-small", "system: cq-small|cq-medium|cq-large|log|wc")
	scheduler := flag.String("scheduler", "default", "scheduler: default|random|traffic|model|dqn|ac")
	minutes := flag.Float64("minutes", 20, "simulated minutes")
	train := flag.Int("train", 500, "training budget for the learning schedulers")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	sys, err := systemFor(*app)
	if err != nil {
		fail(err)
	}
	assign, err := schedule(sys, *scheduler, *train, *seed)
	if err != nil {
		fail(err)
	}

	cfg := sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, *seed)
	s, err := sim.New(cfg)
	if err != nil {
		fail(err)
	}
	if err := s.Deploy(assign); err != nil {
		fail(err)
	}
	fmt.Printf("%s under %q for %.0f simulated minutes (N=%d, M=%d)\n",
		sys.Name, *scheduler, *minutes, sys.Top.NumExecutors(), sys.Cl.Size())
	s.RunUntil(*minutes * 60_000)

	fmt.Println(" minute   avg tuple time (ms)   tuples")
	for i, w := range s.Windows() {
		if i%3 != 2 { // every 30 s
			continue
		}
		fmt.Printf("  %5.1f   %12.3f   %10d\n", w.TimeMS/60_000, w.AvgMS, w.Count)
	}
	fmt.Printf("\nstabilized (last 5 windows): %.3f ms over %d completed tuples\n",
		s.AvgOverLastWindows(5), s.Completed())
}

func schedule(sys *repro.System, kind string, train int, seed int64) ([]int, error) {
	simEnv := repro.NewSimEnv(sys, seed)
	switch kind {
	case "default":
		return repro.NewRoundRobinScheduler().Schedule(simEnv)
	case "traffic":
		return repro.NewTrafficAwareScheduler(sys).Schedule(simEnv)
	case "random":
		n, m := sys.Top.NumExecutors(), sys.Cl.Size()
		space := repro.NewActionSpace(n, m)
		rng := rand.New(rand.NewSource(seed))
		return space.Random(rng), nil
	case "model":
		trainEnv, err := repro.NewAnalyticEnv(sys)
		if err != nil {
			return nil, err
		}
		return repro.NewModelBasedScheduler(sys, seed).Schedule(trainEnv)
	case "dqn", "ac":
		trainEnv, err := repro.NewAnalyticEnv(sys)
		if err != nil {
			return nil, err
		}
		var agent repro.Agent
		if kind == "ac" {
			agent = repro.NewActorCriticAgent(sys, seed)
		} else {
			agent = repro.NewDQNAgent(sys, seed)
		}
		ctrl := repro.NewController(trainEnv, agent)
		if err := ctrl.CollectOffline(train); err != nil {
			return nil, err
		}
		ctrl.OnlineLearn(train/2, nil)
		return ctrl.GreedySolution(), nil
	default:
		return nil, fmt.Errorf("unknown -scheduler %q", kind)
	}
}

func systemFor(app string) (*repro.System, error) {
	switch app {
	case "cq-small":
		return repro.ContinuousQueries(repro.Small)
	case "cq-medium":
		return repro.ContinuousQueries(repro.Medium)
	case "cq-large":
		return repro.ContinuousQueries(repro.Large)
	case "log":
		return repro.LogStream()
	case "wc":
		return repro.WordCount()
	default:
		return nil, fmt.Errorf("unknown -app %q", app)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
