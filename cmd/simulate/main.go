// Command simulate runs one deployment of a benchmark system under a
// chosen scheduler on the discrete-event simulator and prints the
// average-tuple-processing-time windows — a single curve of the kind the
// paper's Figures 6, 8 and 10 are built from.
//
// Usage:
//
//	simulate -app cq-large -scheduler default -minutes 20
//	simulate -app wc -scheduler ac -minutes 20 -train 500
//	simulate -app cq-small -scheduler all       # every scheduler, in parallel
//	simulate -cluster-scenario examples/scenarios/drlmix.ndjson
//	simulate -tournament -tournament-out TOURNAMENT.json
//
// Schedulers are constructed through the sched registry — the scheduler
// flag accepts any registered name (sched.Names()) or "all".
//
// With -cluster-scenario, the named NDJSON scenario file is run on the
// shared-clock multi-topology engine (internal/multisim): every topology
// in the scenario shares one cluster's cores, slots and network, with the
// scenario's arrival traces and correlated fault schedule. Scenarios may
// place topologies with any registered scheduler, including the trained
// ones. -isolated re-runs the same topologies each on a private copy of
// the cluster — the no-interference baseline. Output is deterministic
// for a seed.
//
// With -tournament, every registered scheduler is swept across the
// default workload regimes (steady, bursty, diurnal, shifting, faulty,
// contended) and the win/loss matrix is printed as a table and written
// as deterministic JSON. -tournament-gate diffs the matrix against a
// committed baseline and exits non-zero on flipped winners or stabilized
// drift beyond -max-drift percent; -tournament-in gates a previously
// written matrix without re-running the sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/multisim"
	"repro/internal/sched"
	"repro/internal/tournament"
)

func main() {
	app := flag.String("app", "cq-small", "system: cq-small|cq-medium|cq-large|log|wc")
	scheduler := flag.String("scheduler", "default",
		fmt.Sprintf("scheduler: %s|all", strings.Join(sched.Names(), "|")))
	minutes := flag.Float64("minutes", 20, "simulated minutes")
	train := flag.Int("train", 500, "training budget for the learning schedulers")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "worker pool size for -scheduler all and -tournament (0 = one per CPU)")
	scenario := flag.String("cluster-scenario", "", "NDJSON scenario file: run its topology mix on one shared cluster")
	isolated := flag.Bool("isolated", false, "with -cluster-scenario: give each topology a private cluster copy (no-contention baseline)")
	tourney := flag.Bool("tournament", false, "sweep every scheduler across the workload regimes and emit the win/loss matrix")
	tourneyOut := flag.String("tournament-out", "TOURNAMENT.json", "with -tournament: matrix JSON output path (empty = table only)")
	tourneySecs := flag.Float64("tournament-duration", 120, "with -tournament: simulated seconds per regime")
	tourneyTiming := flag.Bool("tournament-timing", false, "with -tournament: record wall-clock columns (train_ms, ns_per_decision); breaks byte-identical output across machines")
	tourneyIn := flag.String("tournament-in", "", "gate an existing matrix JSON file instead of running the sweep")
	tourneyGate := flag.String("tournament-gate", "", "baseline matrix JSON to gate against (flipped winners and drift fail)")
	maxDrift := flag.Float64("max-drift", 25, "with -tournament-gate: allowed stabilized-latency drift per cell, percent")
	flag.Parse()

	if *tourney || *tourneyIn != "" {
		if err := runTournament(*tourneyIn, *tourneyOut, *tourneyGate,
			*tourneySecs, *maxDrift, *train, *seed, *workers, *tourneyTiming); err != nil {
			fail(err)
		}
		return
	}

	if *scenario != "" {
		if err := runScenario(*scenario, *isolated); err != nil {
			fail(err)
		}
		return
	}

	sys, err := systemFor(*app)
	if err != nil {
		fail(err)
	}

	if *scheduler == "all" {
		if err := compareAll(sys, *minutes, *train, *seed, *workers); err != nil {
			fail(err)
		}
		return
	}

	assign, _, err := schedule(sys, *scheduler, *train, *seed)
	if err != nil {
		fail(err)
	}

	s, err := repro.NewSimulator(sys, *seed)
	if err != nil {
		fail(err)
	}
	if err := s.Deploy(assign); err != nil {
		fail(err)
	}
	fmt.Printf("%s under %q for %.0f simulated minutes (N=%d, M=%d)\n",
		sys.Name, *scheduler, *minutes, sys.Top.NumExecutors(), sys.Cl.Size())
	s.RunUntil(*minutes * 60_000)

	fmt.Println(" minute   avg tuple time (ms)   tuples")
	for i, w := range s.Windows() {
		if i%3 != 2 { // every 30 s
			continue
		}
		fmt.Printf("  %5.1f   %12.3f   %10d\n", w.TimeMS/60_000, w.AvgMS, w.Count)
	}
	fmt.Printf("\nstabilized (last 5 windows): %.3f ms over %d completed tuples\n",
		s.AvgOverLastWindows(5), s.Completed())
}

// schedule constructs the named scheduler through the registry, trains
// it if trainable, and returns the assignment for the system's
// simulation environment plus the wall-clock nanoseconds spent
// (training + the frozen Schedule call).
func schedule(sys *repro.System, kind string, train int, seed int64) ([]int, int64, error) {
	s, err := sched.New(kind, sched.Config{
		Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals,
		Seed: seed, TrainBudget: train, Workers: 1,
	})
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if tr, ok := s.(sched.Trainable); ok {
		if err := tr.Train(train); err != nil {
			return nil, 0, err
		}
	}
	assign, err := s.Schedule(repro.NewSimEnv(sys, seed))
	if err != nil {
		return nil, 0, err
	}
	return assign, time.Since(start).Nanoseconds(), nil
}

// compareAll trains and deploys every registered scheduler concurrently
// (each task owns its agents, environments and simulator) and prints a
// comparison table in canonical registry order.
func compareAll(sys *repro.System, minutes float64, train int, seed int64, workers int) error {
	names := sched.Names()
	fmt.Printf("%s under all schedulers for %.0f simulated minutes (N=%d, M=%d)\n",
		sys.Name, minutes, sys.Top.NumExecutors(), sys.Cl.Size())
	type row struct {
		stabilized float64
		completed  int64
		decisionNS int64
	}
	rows, err := repro.ParallelMap(len(names), workers, func(i int) (row, error) {
		assign, elapsedNS, err := schedule(sys, names[i], train, seed)
		if err != nil {
			return row{}, err
		}
		// Scheduling cost per placement decision (one executor→machine
		// choice), training included for the learning schedulers.
		decisionNS := elapsedNS / int64(sys.Top.NumExecutors())
		s, err := repro.NewSimulator(sys, seed)
		if err != nil {
			return row{}, err
		}
		if err := s.Deploy(assign); err != nil {
			return row{}, err
		}
		s.RunUntil(minutes * 60_000)
		return row{stabilized: s.AvgOverLastWindows(5), completed: s.Completed(), decisionNS: decisionNS}, nil
	})
	if err != nil {
		return err
	}
	fmt.Println(" scheduler   stabilized (ms)      tuples   ns/decision")
	for i, r := range rows {
		fmt.Printf("  %-9s   %12.3f   %10d   %11d\n", names[i], r.stabilized, r.completed, r.decisionNS)
	}
	return nil
}

// runScenario loads an NDJSON cluster scenario and runs it on the
// shared-clock multi-topology engine, printing one deterministic row per
// topology. Wall-clock throughput goes to stderr so stdout can be diffed
// across runs.
func runScenario(path string, isolated bool) error {
	sc, err := multisim.LoadFile(path)
	if err != nil {
		return err
	}
	setups, cl, err := sc.Instances()
	if err != nil {
		return err
	}
	m, err := multisim.BuildInstances(sc, setups, cl, isolated)
	if err != nil {
		return err
	}
	mode := "shared cluster"
	if isolated {
		mode = "isolated baseline"
	}
	fmt.Printf("scenario %q: %d topologies on %d machines (%s), %.0f simulated seconds, seed %d\n",
		sc.Name, len(sc.Topologies), sc.Cluster.Machines, mode, sc.DurationMS/1_000, sc.Seed)
	for _, su := range setups {
		fmt.Printf("  %-16s placed by %s\n", su.Name, su.Scheduler)
	}
	start := time.Now()
	m.RunUntil(sc.DurationMS)
	elapsed := time.Since(start)

	fmt.Println(" topology          stabilized (ms)    p50 (ms)    p99 (ms)    completed    replayed   dropped")
	for _, r := range m.Results(5) {
		fmt.Printf("  %-16s   %13.3f   %9.3f   %9.3f   %10d   %9d   %7d\n",
			r.Name, r.StabilizedMS, r.P50MS, r.P99MS, r.Completed, r.Replayed, r.Dropped)
	}
	fmt.Printf("events processed: %d\n", m.EventsProcessed())
	fmt.Fprintf(os.Stderr, "wall clock: %v (%.0f events/sec)\n",
		elapsed.Round(time.Millisecond), float64(m.EventsProcessed())/elapsed.Seconds())
	return nil
}

// runTournament sweeps the matrix (or loads one with -tournament-in),
// prints the human table, writes the JSON, and optionally gates against
// a committed baseline.
func runTournament(inPath, outPath, gatePath string, durationSecs, maxDrift float64,
	train int, seed int64, workers int, timing bool) error {
	var m *tournament.Matrix
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		m, err = tournament.LoadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		m, err = tournament.Run(tournament.Options{
			Seed:        seed,
			DurationMS:  durationSecs * 1_000,
			TrainBudget: train,
			Timing:      timing,
			Workers:     workers,
		})
		if err != nil {
			return err
		}
	}

	m.WriteTable(os.Stdout)
	for _, s := range m.Schedulers {
		for _, r := range m.Regimes {
			if c := m.Cells[s][r]; c != nil && c.Error != "" {
				fmt.Fprintf(os.Stderr, "cell %s×%s errored: %s\n", s, r, c.Error)
			}
		}
	}

	if outPath != "" && inPath == "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := m.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmatrix written to %s\n", outPath)
	}

	if gatePath != "" {
		f, err := os.Open(gatePath)
		if err != nil {
			return err
		}
		baseline, err := tournament.LoadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		if violations := tournament.Gate(baseline, m, maxDrift); len(violations) > 0 {
			for _, viol := range violations {
				fmt.Fprintln(os.Stderr, "tournament gate:", viol)
			}
			return fmt.Errorf("tournament gate failed: %d violation(s) against %s", len(violations), gatePath)
		}
		fmt.Printf("tournament gate passed against %s (max drift %.1f%%)\n", gatePath, maxDrift)
	}
	return nil
}

func systemFor(app string) (*repro.System, error) {
	switch app {
	case "cq-small":
		return repro.ContinuousQueries(repro.Small)
	case "cq-medium":
		return repro.ContinuousQueries(repro.Medium)
	case "cq-large":
		return repro.ContinuousQueries(repro.Large)
	case "log":
		return repro.LogStream()
	case "wc":
		return repro.WordCount()
	default:
		return nil, fmt.Errorf("unknown -app %q", app)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
