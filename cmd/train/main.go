// Command train runs the offline + online training pipeline for a DRL
// scheduling agent on one of the benchmark systems and persists the trained
// networks and the transition-sample database.
//
// Usage:
//
//	train -app cq-large -agent ac -offline 2500 -online 800 -out ./models
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/core"
	"repro/internal/nn"
)

func main() {
	app := flag.String("app", "cq-small", "system: cq-small|cq-medium|cq-large|log|wc")
	agentKind := flag.String("agent", "ac", "agent: ac|dqn")
	offline := flag.Int("offline", 2500, "offline random-action samples (paper: 10000)")
	online := flag.Int("online", 800, "online learning epochs (paper: 1500-2000)")
	outDir := flag.String("out", "models", "output directory")
	seed := flag.Int64("seed", 1, "training seed")
	flag.Parse()

	sys, err := systemFor(*app)
	if err != nil {
		fail(err)
	}
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		fail(err)
	}

	var agent repro.Agent
	var ac *repro.ActorCritic
	switch *agentKind {
	case "ac":
		ac = repro.NewActorCriticAgent(sys, *seed)
		agent = ac
	case "dqn":
		agent = repro.NewDQNAgent(sys, *seed)
	default:
		fail(fmt.Errorf("unknown -agent %q", *agentKind))
	}

	ctrl := repro.NewController(trainEnv, agent)
	ctrl.DB = &core.Database{}

	fmt.Printf("collecting %d offline samples on %s...\n", *offline, sys.Name)
	if err := ctrl.CollectOffline(*offline); err != nil {
		fail(err)
	}
	fmt.Printf("online learning for %d epochs...\n", *online)
	ctrl.OnlineLearn(*online, func(epoch int, lat float64) {
		if (epoch+1)%100 == 0 {
			fmt.Printf("  epoch %4d: %.3f ms\n", epoch+1, lat)
		}
	})

	best := ctrl.GreedySolution()
	fmt.Printf("trained solution latency (analytic): %.3f ms\n", trainEnv.AvgTupleTimeMS(best))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	prefix := filepath.Join(*outDir, fmt.Sprintf("%s-%s", *app, *agentKind))
	if err := ctrl.DB.Save(prefix + ".samples.gob"); err != nil {
		fail(err)
	}
	fmt.Printf("saved %d transition samples to %s.samples.gob\n", ctrl.DB.Len(), prefix)
	if ac != nil {
		actor, _, critic, _ := ac.Networks()
		if err := saveNet(actor, prefix+".actor.gob"); err != nil {
			fail(err)
		}
		if err := saveNet(critic, prefix+".critic.gob"); err != nil {
			fail(err)
		}
		fmt.Printf("saved actor/critic networks to %s.{actor,critic}.gob\n", prefix)
	}
}

func systemFor(app string) (*repro.System, error) {
	switch app {
	case "cq-small":
		return repro.ContinuousQueries(repro.Small)
	case "cq-medium":
		return repro.ContinuousQueries(repro.Medium)
	case "cq-large":
		return repro.ContinuousQueries(repro.Large)
	case "log":
		return repro.LogStream()
	case "wc":
		return repro.WordCount()
	default:
		return nil, fmt.Errorf("unknown -app %q", app)
	}
}

func saveNet(n *nn.Network, path string) error {
	blob, err := n.MarshalBinary()
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
