// Command agentd is the DRL scheduling agent daemon: the external agent
// process of the paper's Figure 1 architecture, grown into a multi-tenant
// service. It accepts any number of concurrent scheduler sessions over the
// NDJSON protocol (one session per topology), coalesces their state→action
// requests into batched neural-network passes, sheds load explicitly under
// backpressure, and exports /metrics and /healthz over HTTP.
//
// Usage:
//
//	agentd -listen 127.0.0.1:7700 -http 127.0.0.1:7701
//
// Trained weights from cmd/train can be installed for one topology shape:
//
//	agentd -n 24 -m 8 -spouts 3 -actor actor.net -critic critic.net
//
// Sessions for other shapes get freshly initialized networks.
//
// With -learn the daemon keeps improving from live measurements: sessions
// feed their (state, action, reward) transitions into a per-model replay
// buffer, a background trainer runs batched actor-critic updates, and
// inference swaps in the new weights between micro-batches. -checkpoint-dir
// with -checkpoint-every persists the learned weights periodically:
//
//	agentd -learn -checkpoint-dir /var/lib/agentd -checkpoint-every 1m
//
// Disconnected schedulers resume their sessions by presenting the token
// from their first hello reply; detached session state is kept for
// -session-ttl.
//
// With -data-dir the daemon is crash-safe: session state, distilled
// transitions and learned weights are journaled to a CRC-framed WAL and
// compacted into atomic snapshots, and a restarted daemon — even after
// SIGKILL — recovers them on boot, so old resumption tokens keep working
// and learning continues from the last snapshot:
//
//	agentd -learn -data-dir /var/lib/agentd -fsync-interval 100ms -snapshot-every 1m
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/nn"
	"repro/internal/serve"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7700", "scheduler session listen address")
		httpAddr = flag.String("http", "127.0.0.1:7701", "HTTP control surface address (/metrics, /healthz); empty disables")
		sessions = flag.Int("max-sessions", 4096, "max concurrent scheduler sessions")
		shards   = flag.Int("accept-shards", 0, "accept-loop goroutines sharing the listener (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 1024, "per-model pending inference queue depth")
		window   = flag.Duration("batch-window", 200*time.Microsecond, "micro-batch gather window (negative disables coalescing)")
		maxBatch = flag.Int("max-batch", 64, "max inference micro-batch size (1 = per-request)")
		idle     = flag.Duration("idle-timeout", 2*time.Minute, "per-session idle timeout")
		k        = flag.Int("k", 8, "K-NN candidates scored by the critic")
		seed     = flag.Int64("seed", 1, "seed for per-model network initialization")
		n        = flag.Int("n", 0, "executors of the preloaded topology (with -actor/-critic)")
		m        = flag.Int("m", 0, "machines of the preloaded topology")
		spouts   = flag.Int("spouts", 0, "data sources of the preloaded topology")
		actorF   = flag.String("actor", "", "actor network checkpoint (cmd/train format)")
		criticF  = flag.String("critic", "", "critic network checkpoint (cmd/train format)")

		gemmW      = flag.Int("gemm-workers", 0, "workers the large inference/training GEMMs shard across (0 = pool default: one per CPU, 1 = no sharding)")
		learn      = flag.Bool("learn", false, "learn online from session measurements (batched AC updates + atomic weight swaps)")
		trainEvery = flag.Duration("train-interval", 100*time.Millisecond, "background trainer cadence (with -learn)")
		trainBatch = flag.Int("train-batch", 32, "training mini-batch size (with -learn)")
		updates    = flag.Int("train-updates", 4, "mini-batch updates per train round (with -learn)")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for periodic weight checkpoints (with -learn)")
		ckptEvery  = flag.Duration("checkpoint-every", time.Minute, "checkpoint cadence (with -learn and -checkpoint-dir)")
		sessTTL    = flag.Duration("session-ttl", 10*time.Minute, "how long detached sessions stay resumable")

		dataDir   = flag.String("data-dir", "", "durability directory: journal sessions/transitions to a CRC-framed WAL, compact into atomic snapshots, and recover everything on restart (empty disables)")
		fsyncInt  = flag.Duration("fsync-interval", 100*time.Millisecond, "WAL flush+fsync cadence — bounds acknowledged state a crash can lose (negative = fsync every record; with -data-dir)")
		snapEvery = flag.Duration("snapshot-every", time.Minute, "WAL compaction cadence; a final snapshot is always written on drain (with -data-dir)")

		replListen = flag.String("repl-listen", "", "WAL shipping listen address for followers (with -data-dir; empty disables)")
		replFrom   = flag.String("replicate-from", "", "run as a follower of the leader shipping on this address: tail its WAL into -data-dir instead of serving, until promoted via POST /promote")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		MaxSessions:     *sessions,
		AcceptShards:    *shards,
		QueueDepth:      *queue,
		BatchWindow:     *window,
		MaxBatch:        *maxBatch,
		IdleTimeout:     *idle,
		K:               *k,
		Seed:            *seed,
		SessionTTL:      *sessTTL,
		Learn:           *learn,
		TrainInterval:   *trainEvery,
		TrainBatch:      *trainBatch,
		UpdatesPerRound: *updates,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		GemmWorkers:     *gemmW,
		DataDir:         *dataDir,
		FsyncInterval:   *fsyncInt,
		SnapshotEvery:   *snapEvery,
		ReplListen:      *replListen,
		ReplicateFrom:   *replFrom,
	})
	if *learn {
		log.Printf("agentd: online learning enabled (train every %v, batch %d, %d updates/round)", *trainEvery, *trainBatch, *updates)
	}
	if *dataDir != "" {
		log.Printf("agentd: durable mode: data dir %s (fsync every %v, snapshot every %v); sessions and learned weights survive restarts", *dataDir, *fsyncInt, *snapEvery)
	}
	if *replFrom != "" {
		log.Printf("agentd: follower mode: tailing %s into %s (not serving until promoted)", *replFrom, *dataDir)
	}

	if *actorF != "" || *criticF != "" {
		if *n <= 0 || *m <= 0 || *spouts <= 0 {
			fail(fmt.Errorf("-actor/-critic need the topology shape: -n, -m and -spouts"))
		}
		pol, err := s.Preload(*n, *m, *spouts)
		if err != nil {
			fail(err)
		}
		actor, err := loadNet(*actorF)
		if err != nil {
			fail(err)
		}
		critic, err := loadNet(*criticF)
		if err != nil {
			fail(err)
		}
		if err := pol.SetNetworks(actor, critic); err != nil {
			fail(err)
		}
		log.Printf("agentd: preloaded %dx%d/%d model from %s, %s", *n, *m, *spouts, *actorF, *criticF)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	log.Printf("agentd: serving scheduler sessions on %s", l.Addr())

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: s.Handler()}
		go func() {
			log.Printf("agentd: control surface on http://%s/metrics", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("agentd: http: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = s.Serve(ctx, l)
	if *learn && *ckptDir != "" {
		// Final checkpoint on drain so an orderly shutdown never loses
		// more than the in-flight train round.
		if cerr := s.Checkpoint(*ckptDir); cerr != nil {
			log.Printf("agentd: final checkpoint: %v", cerr)
		} else {
			log.Printf("agentd: final checkpoint written to %s", *ckptDir)
		}
	}
	if httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = httpSrv.Shutdown(shutCtx)
		cancel()
	}
	if err != nil {
		fail(err)
	}
	log.Printf("agentd: drained, bye")
}

func loadNet(path string) (*nn.Network, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var net nn.Network
	if err := net.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &net, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "agentd:", err)
	os.Exit(1)
}
