// Command calibrate probes the consolidation/latency trade-off of the
// simulated systems and the quality of each scheduling method against it —
// the tool used to calibrate the reproduction's cost constants (DESIGN.md
// §5) and to sanity-check agent training.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/analytic"
	"repro/internal/apps"
	"repro/internal/sim"
)

func main() {
	mode := flag.String("mode", "curves", "curves|agents")
	app := flag.String("app", "", "restrict to one app: cq-small|cq-medium|cq-large|log|wc")
	offline := flag.Int("offline", 1500, "agent offline samples (agents mode)")
	online := flag.Int("online", 600, "agent online epochs (agents mode)")
	k := flag.Int("k", 0, "actor-critic K override (agents mode)")
	updates := flag.Int("updates", 0, "actor-critic updates per step override")
	epsDecay := flag.Float64("epsdecay", 0, "epsilon decay override")
	only := flag.String("only", "", "restrict agents mode to one method: mb|dqn|ac")
	flag.Parse()

	for _, entry := range []struct {
		key  string
		make func() (*apps.System, error)
	}{
		{"cq-small", func() (*apps.System, error) { return apps.ContinuousQueries(apps.Small) }},
		{"cq-medium", func() (*apps.System, error) { return apps.ContinuousQueries(apps.Medium) }},
		{"cq-large", func() (*apps.System, error) { return apps.ContinuousQueries(apps.Large) }},
		{"log", apps.LogStream},
		{"wc", apps.WordCount},
	} {
		if *app != "" && *app != entry.key {
			continue
		}
		sys, err := entry.make()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *mode {
		case "curves":
			curves(sys)
		case "agents":
			agents(sys, *offline, *online, *k, *epsDecay, *only, *updates)
		}
	}
}

func curves(sys *apps.System) {
	n, m := sys.Top.NumExecutors(), sys.Cl.Size()
	senv := &sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: 1, HorizonMS: 60000}
	aenv, _ := analytic.New(sys.Top, sys.Cl, sys.Arrivals)
	fmt.Printf("== %s (N=%d)\n", sys.Name, n)
	for k := 1; k <= m; k++ {
		a := make([]int, n)
		for i := range a {
			a[i] = i % k
		}
		fmt.Printf("  k=%2d  A=%8.3f DES=%8.3f\n", k, aenv.AvgTupleTimeMS(a), senv.AvgTupleTimeMS(a))
	}
	rng := rand.New(rand.NewSource(2))
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i % m
	}
	curV := aenv.AvgTupleTimeMS(cur)
	best := append([]int(nil), cur...)
	bestV := curV
	for it := 0; it < 20000; it++ {
		th, mm := rng.Intn(n), rng.Intn(m)
		old := cur[th]
		if old == mm {
			continue
		}
		cur[th] = mm
		v := aenv.AvgTupleTimeMS(cur)
		if v <= curV+0.01*rng.Float64() {
			curV = v
			if v < bestV {
				bestV = v
				copy(best, cur)
			}
		} else {
			cur[th] = old
		}
	}
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % m
	}
	fmt.Printf("  search best A=%.3f DES=%.3f | RR/best(DES)=%.2f\n",
		bestV, senv.AvgTupleTimeMS(best), senv.AvgTupleTimeMS(rr)/senv.AvgTupleTimeMS(best))
}

func agents(sys *apps.System, offline, online, k int, epsDecay float64, only string, updates int) {
	fmt.Printf("== %s agents (offline=%d online=%d k=%d eps=%v updates=%d)\n", sys.Name, offline, online, k, epsDecay, updates)
	senv := &sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: 7, HorizonMS: 60000}
	aenv, _ := analytic.New(sys.Top, sys.Cl, sys.Arrivals)
	n, m := sys.Top.NumExecutors(), sys.Cl.Size()
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % m
	}
	fmt.Printf("  round-robin        A=%.3f DES=%.3f\n", aenv.AvgTupleTimeMS(rr), senv.AvgTupleTimeMS(rr))

	if only == "" || only == "mb" {
		mb, err := repro.NewModelBasedScheduler(sys, 3).Schedule(aenv)
		if err != nil {
			fmt.Println("  model-based err:", err)
		} else {
			fmt.Printf("  model-based        A=%.3f DES=%.3f\n", aenv.AvgTupleTimeMS(mb), senv.AvgTupleTimeMS(mb))
		}
	}

	for _, kind := range []string{"dqn", "ac"} {
		if only != "" && only != kind {
			continue
		}
		var agent repro.Agent
		if kind == "ac" {
			cfg := repro.DefaultACConfig()
			if k > 0 {
				cfg.K = k
			}
			if epsDecay > 0 {
				cfg.Epsilon.Decay = epsDecay
			}
			if updates > 0 {
				cfg.UpdatesPerStep = updates
			}
			agent = repro.NewActorCriticAgentWith(sys, cfg, 9)
		} else {
			agent = repro.NewDQNAgent(sys, 9)
		}
		ctrl := repro.NewController(aenv, agent)
		if err := ctrl.CollectOffline(offline); err != nil {
			fmt.Println("  err:", err)
			continue
		}
		ctrl.OnlineLearn(online, nil)
		sol := ctrl.GreedySolution()
		fmt.Printf("  %-18s A=%.3f DES=%.3f\n", kind, aenv.AvgTupleTimeMS(sol), senv.AvgTupleTimeMS(sol))
	}
}
