// Chaos mode: `loadgen -chaos` spawns a three-member replicated agentd
// group behind an agentfleet gateway, parks a byte-tearing proxy between
// the clients and the gateway, and drives a seeded fault schedule
// (leader SIGKILL, leader SIGSTOP, torn client connections) against it.
// After every fault the harness requires the fleet to heal itself —
// exactly one leader, every survivor a replica, killed members restarted
// with plain leader flags and demoted+rejoined by the gateway, not by
// the harness — and then replays every session token through the proxy,
// failing unless all of them resume with zero protocol errors. The run
// ends with a quiesced snapshot barrier proving the group's weight
// checksums converged bitwise. The seed is printed first so a CI failure
// replays locally with one flag.
package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/serve"
)

// chaosOptions are the -chaos-specific knobs; the shared load shape
// (sessions, topology, seed, proto) comes from options.
type chaosOptions struct {
	agentdBin string // agentd binary to spawn
	fleetBin  string // agentfleet binary to spawn
	dir       string // work dir for data+logs ("" = temp, removed on pass)
	extra     int    // random events beyond the mandatory kill/kill/stall/tear
	steps     int    // steps per session per load phase
}

const (
	// chaosHealthInterval is the gateway poll cadence. The probe deadline
	// equals it, so a SIGSTOPped leader is declared dead after
	// chaosFailThreshold * ~2*interval even though its TCP stack answers.
	chaosHealthInterval = 100 * time.Millisecond
	chaosFailThreshold  = 3

	chaosSettleTimeout   = 45 * time.Second
	chaosHealTimeout     = 45 * time.Second
	chaosPhaseTimeout    = 2 * time.Minute
	chaosConvergeTimeout = 60 * time.Second
	chaosMinStall        = 500 * time.Millisecond
	chaosMaxStall        = 1500 * time.Millisecond
)

// chaosMember is one spawned agentd plus everything needed to restart it.
type chaosMember struct {
	name             string
	sess, http, repl string
	dir              string
	proc             *chaos.Proc
}

// chaosHarness owns the fleet, the proxy, the checker and the cumulative
// verdict counters for the final report.
type chaosHarness struct {
	opt  options
	copt chaosOptions
	out  io.Writer
	dir  string

	members []*chaosMember
	gateway *chaos.Proc
	proxy   *chaos.Proxy
	checker *chaos.Checker
	logs    []*os.File

	// tokens are the resumption tokens recorded after the last completed
	// load phase; the next phase must resume every one of them.
	tokens      []string
	pendingTear bool
	// rejoined marks members that were deposed (killed or stalled out of
	// leadership) and healed back in by the gateway; the golden coda
	// requires leadership to eventually land on one of them again.
	rejoined map[string]bool

	failovers, rejoins, tears  int
	steps, reconnects, resumes int64
}

// runChaos is the -chaos entry point; returns the process exit code.
func runChaos(opt options, copt chaosOptions, out io.Writer) int {
	if copt.agentdBin == "" || copt.fleetBin == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -chaos requires -agentd-bin and -agentfleet-bin")
		return 1
	}
	for _, bin := range []string{copt.agentdBin, copt.fleetBin} {
		if _, err := os.Stat(bin); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: chaos binary: %v\n", err)
			return 1
		}
	}
	dir := copt.dir
	scratch := false
	if dir == "" {
		d, err := os.MkdirTemp("", "loadgen-chaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
		dir, scratch = d, true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}

	h := &chaosHarness{opt: opt, copt: copt, out: out, dir: dir, rejoined: map[string]bool{}}
	// Reproducibility first: the seed is on stdout before anything can fail.
	fmt.Fprintf(out, "chaos: seed %d (replay with -seed %d)\n", opt.seed, opt.seed)
	err := h.run()
	h.teardown()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: chaos run FAILED (seed %d, artifacts kept in %s): %v\n",
			opt.seed, dir, err)
		return 1
	}
	if scratch {
		os.RemoveAll(dir)
	}
	fmt.Fprintf(out, "chaos: PASS\n")
	fmt.Fprintf(out, "events:      %d applied (%d failovers, %d automatic rejoins, %d tear events, %d torn connections)\n",
		h.failovers+h.rejoins+h.tears, h.failovers, h.rejoins, h.tears, h.proxy.Torn())
	fmt.Fprintf(out, "sessions:    %d, every token resumed through every fault\n", opt.sessions)
	fmt.Fprintf(out, "requests:    %d total (%d reconnects, %d resumes)\n", h.steps, h.reconnects, h.resumes)
	fmt.Fprintf(out, "errors:      0\n")
	fmt.Fprintf(out, "converged:   weight checksums bitwise-identical across the group at the final barrier\n")
	return 0
}

func (h *chaosHarness) logf(format string, args ...any) {
	fmt.Fprintf(h.out, format+"\n", args...)
}

// run drives the whole schedule; any error is terminal for the run.
func (h *chaosHarness) run() error {
	ctx := context.Background()
	if err := h.startFleet(); err != nil {
		return err
	}
	plan := chaos.Plan(h.opt.seed, h.copt.extra, chaosMinStall, chaosMaxStall)
	kinds := make([]string, len(plan))
	for i, ev := range plan {
		kinds[i] = ev.Kind.String()
	}
	h.logf("chaos: schedule: %s", strings.Join(kinds, " -> "))

	if _, err := h.checker.Settle(ctx, chaosSettleTimeout); err != nil {
		return fmt.Errorf("initial settle: %w", err)
	}
	if err := h.phase("baseline", false); err != nil {
		return err
	}
	for i, ev := range plan {
		h.logf("chaos: event %d/%d: %s", i+1, len(plan), ev.Kind)
		if err := h.inject(ev); err != nil {
			return fmt.Errorf("event %d (%s): %w", i+1, ev.Kind, err)
		}
		if err := h.phase(fmt.Sprintf("%d-%s", i+1, ev.Kind), true); err != nil {
			return err
		}
	}

	// Golden coda: the full circle the self-healing story promises is a
	// failover landing leadership BACK on a member that was previously
	// deposed and rejoined. The random schedule does not guarantee that
	// ordering, so keep killing leaders (each one rejoins) until it
	// happens — with three members, at most three more kills.
	for i := 0; ; i++ {
		m, err := h.currentLeader()
		if err != nil {
			return err
		}
		if h.rejoined[m.name] {
			h.logf("chaos: golden: leadership landed back on previously-deposed %s", m.name)
			break
		}
		if i >= len(h.members) {
			return fmt.Errorf("golden coda: leadership never returned to a rejoined member")
		}
		h.logf("chaos: golden %d: leader %s has never been deposed — killing it", i+1, m.name)
		if err := h.inject(chaos.Event{Kind: chaos.KillLeader}); err != nil {
			return fmt.Errorf("golden kill %d: %w", i+1, err)
		}
		if err := h.phase(fmt.Sprintf("golden-%d", i+1), true); err != nil {
			return err
		}
	}

	// Quiesced now (every phase pool is closed): drive the snapshot
	// barrier and require bitwise convergence across the group.
	leader, err := h.checker.Settle(ctx, chaosSettleTimeout)
	if err != nil {
		return fmt.Errorf("final settle: %w", err)
	}
	if err := h.checker.WaitConverged(ctx, leader, chaosConvergeTimeout); err != nil {
		return err
	}
	if h.tears > 0 && h.proxy.Torn() == 0 {
		return fmt.Errorf("tear events ran but the proxy severed nothing")
	}
	return nil
}

// inject applies one fault and waits for the fleet to heal itself. The
// harness never posts /promote, /demote or /rejoin — if the gateway does
// not do it, the run fails.
func (h *chaosHarness) inject(ev chaos.Event) error {
	ctx := context.Background()
	switch ev.Kind {
	case chaos.KillLeader:
		m, err := h.currentLeader()
		if err != nil {
			return err
		}
		h.logf("chaos: SIGKILL leader %s (pid %d)", m.name, m.proc.Pid())
		if err := m.proc.Kill(); err != nil {
			return err
		}
		if _, err := h.checker.Settle(ctx, chaosSettleTimeout); err != nil {
			return fmt.Errorf("failover after killing %s: %w", m.name, err)
		}
		h.failovers++
		// Restart the corpse with plain LEADER flags — what a dumb init
		// system would do. It boots believing it still leads; the gateway
		// must demote it and rejoin it as a tailing follower.
		m.proc.Args = h.leaderArgs(m)
		if err := m.proc.Start(); err != nil {
			return err
		}
		h.logf("chaos: restarted %s as a stray leader (pid %d); waiting for the gateway to heal it", m.name, m.proc.Pid())
		if err := h.checker.WaitRole(ctx, m.name, "replica", chaosHealTimeout); err != nil {
			return fmt.Errorf("gateway never rejoined restarted %s: %w", m.name, err)
		}
		h.rejoins++
		h.rejoined[m.name] = true
		if _, err := h.checker.Settle(ctx, chaosSettleTimeout); err != nil {
			return err
		}

	case chaos.StallLeader:
		m, err := h.currentLeader()
		if err != nil {
			return err
		}
		h.logf("chaos: SIGSTOP leader %s for %v (pid %d)", m.name, ev.Stall, m.proc.Pid())
		if err := m.proc.Stall(); err != nil {
			return err
		}
		stallEnd := time.Now().Add(ev.Stall)
		// The stalled process still completes TCP handshakes; only the
		// gateway's request-level probe deadline can declare it dead.
		if _, err := h.checker.Settle(ctx, chaosSettleTimeout); err != nil {
			_ = m.proc.Resume()
			return fmt.Errorf("failover after stalling %s: %w", m.name, err)
		}
		h.failovers++
		if d := time.Until(stallEnd); d > 0 {
			time.Sleep(d)
		}
		if err := m.proc.Resume(); err != nil {
			return err
		}
		h.logf("chaos: SIGCONT %s; it wakes believing it leads — gateway must heal it", m.name)
		if err := h.checker.WaitRole(ctx, m.name, "replica", chaosHealTimeout); err != nil {
			return fmt.Errorf("gateway never rejoined resumed %s: %w", m.name, err)
		}
		h.rejoins++
		h.rejoined[m.name] = true
		if _, err := h.checker.Settle(ctx, chaosSettleTimeout); err != nil {
			return err
		}

	case chaos.TearClients:
		// Arm a mid-frame fuse for the next connection and let the phase
		// tear the rest mid-flight; sessions must reconnect and resume.
		h.proxy.TearNextAfter(512)
		h.pendingTear = true
		h.tears++
	}
	return nil
}

// currentLeader settles the fleet and maps the leader back to its Proc.
func (h *chaosHarness) currentLeader() (*chaosMember, error) {
	lm, err := h.checker.Settle(context.Background(), chaosSettleTimeout)
	if err != nil {
		return nil, err
	}
	for _, m := range h.members {
		if m.name == lm.Name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("settled leader %q is not a member", lm.Name)
}

// phase drives one load round through the proxy: every session steps
// copt.steps times; with expectResumed every session must resume its
// recorded token. Protocol errors and unresumed sessions fail the run.
func (h *chaosHarness) phase(name string, expectResumed bool) error {
	pool := serve.NewPool(serve.ClientConfig{
		Addr:        h.proxy.Addr(),
		Hello:       serve.HelloMsg{Topology: "chaos", N: h.opt.n, M: h.opt.m, Spouts: h.opt.spouts},
		MaxAttempts: h.chaosAttempts(),
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		Proto:       h.opt.proto,
	}, h.opt.sessions)
	if expectResumed {
		if len(h.tokens) != h.opt.sessions {
			return fmt.Errorf("phase %s: %d recorded tokens, want %d", name, len(h.tokens), h.opt.sessions)
		}
		for i, tok := range h.tokens {
			pool.Session(i).SetToken(tok)
		}
	}
	// A tear phase slows each step down so the pool is still mid-stream
	// when the cut lands; the tear goroutine waits for live connections
	// instead of guessing a delay.
	tearing := h.pendingTear
	tornBefore := h.proxy.Torn()
	var think time.Duration
	if tearing {
		h.pendingTear = false
		think = 20 * time.Millisecond
		go func() {
			deadline := time.Now().Add(30 * time.Second)
			for h.proxy.Live() <= h.opt.sessions/2 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			time.Sleep(30 * time.Millisecond) // land mid-stream, not on the hellos
			h.proxy.Tear()
		}()
	}

	var notResumed atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), chaosPhaseTimeout)
	defer cancel()
	runErr := pool.Run(ctx, func(ctx context.Context, i int, sess *serve.Session) error {
		if expectResumed && !sess.Resumed() {
			notResumed.Add(1)
			return fmt.Errorf("session %d: daemon did not resume token %s", i, sess.Token())
		}
		rng := rand.New(rand.NewSource(h.opt.seed + int64(i)))
		base := 100 + 900*rng.Float64()
		meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: make([]float64, h.opt.spouts)}
		for step := 0; step < h.copt.steps && ctx.Err() == nil; step++ {
			for j := range meas.Workload {
				meas.Workload[j] = base * (0.8 + 0.4*rng.Float64())
			}
			if _, err := sess.Step(ctx, meas); err != nil {
				if benignEnd(err) {
					return nil
				}
				return fmt.Errorf("session %d: %w", i, err)
			}
			meas.AvgTupleTimeMS = 30 + 40*rng.Float64()
			if think > 0 {
				select {
				case <-time.After(think):
				case <-ctx.Done():
				}
			}
		}
		return nil
	})
	stats := pool.Stats()
	h.steps += stats.Steps.Load()
	h.reconnects += stats.Reconnects.Load()
	h.resumes += stats.Resumes.Load()
	if runErr != nil && !benignEnd(runErr) {
		return fmt.Errorf("phase %s: %w", name, runErr)
	}
	if ctx.Err() != nil {
		return fmt.Errorf("phase %s: timed out after %v", name, chaosPhaseTimeout)
	}
	if n := stats.Errors.Load(); n > 0 {
		return fmt.Errorf("phase %s: %d protocol errors", name, n)
	}
	if nr := notResumed.Load(); nr > 0 {
		return fmt.Errorf("phase %s: %d/%d sessions not resumed", name, nr, h.opt.sessions)
	}
	if tearing && h.proxy.Torn() == tornBefore {
		return fmt.Errorf("phase %s: tear event severed no live connection", name)
	}
	toks := make([]string, h.opt.sessions)
	for i := range toks {
		toks[i] = pool.Session(i).Token()
		if toks[i] == "" {
			return fmt.Errorf("phase %s: session %d finished without a resumption token", name, i)
		}
	}
	h.tokens = toks
	h.logf("chaos: phase %s: %d steps, %d reconnects, %d resumes, 0 errors",
		name, stats.Steps.Load(), stats.Reconnects.Load(), stats.Resumes.Load())
	return nil
}

// chaosAttempts is the per-step retry budget: wide enough to ride out a
// detection window plus promotion plus rejoin traffic.
func (h *chaosHarness) chaosAttempts() int {
	if h.opt.maxAttempts > 0 {
		return h.opt.maxAttempts
	}
	return 60
}

// startFleet spawns a (leader) + b, c (followers) + the gateway, waits
// for everyone to report in, and parks the tear proxy in front.
func (h *chaosHarness) startFleet() error {
	ctx := context.Background()
	for _, name := range []string{"a", "b", "c"} {
		sess, err := chaosFreeAddr()
		if err != nil {
			return err
		}
		httpA, err := chaosFreeAddr()
		if err != nil {
			return err
		}
		repl, err := chaosFreeAddr()
		if err != nil {
			return err
		}
		mdir := filepath.Join(h.dir, name)
		if err := os.MkdirAll(mdir, 0o755); err != nil {
			return err
		}
		logF, err := os.Create(filepath.Join(h.dir, name+".log"))
		if err != nil {
			return err
		}
		h.logs = append(h.logs, logF)
		m := &chaosMember{name: name, sess: sess, http: httpA, repl: repl, dir: mdir}
		m.proc = &chaos.Proc{Name: name, Bin: h.copt.agentdBin, Log: logF}
		h.members = append(h.members, m)
	}
	checkMembers := make([]chaos.Member, len(h.members))
	for i, m := range h.members {
		checkMembers[i] = chaos.Member{Name: m.name, Health: m.http}
	}
	h.checker = chaos.NewChecker(checkMembers, h.logf)

	head := h.members[0]
	head.proc.Args = h.leaderArgs(head)
	if err := head.proc.Start(); err != nil {
		return err
	}
	if err := h.checker.WaitRole(ctx, head.name, "leader", chaosHealTimeout); err != nil {
		return fmt.Errorf("head never came up: %w", err)
	}
	for _, m := range h.members[1:] {
		m.proc.Args = append(h.leaderArgs(m), "-replicate-from", head.repl)
		if err := m.proc.Start(); err != nil {
			return err
		}
	}
	for _, m := range h.members[1:] {
		if err := h.checker.WaitRole(ctx, m.name, "replica", chaosHealTimeout); err != nil {
			return fmt.Errorf("follower %s never tailed: %w", m.name, err)
		}
	}

	gwSess, err := chaosFreeAddr()
	if err != nil {
		return err
	}
	group := make([]string, len(h.members))
	for i, m := range h.members {
		group[i] = m.sess + "@" + m.http + "@" + m.repl
	}
	gwLog, err := os.Create(filepath.Join(h.dir, "gateway.log"))
	if err != nil {
		return err
	}
	h.logs = append(h.logs, gwLog)
	h.gateway = &chaos.Proc{
		Name: "gateway",
		Bin:  h.copt.fleetBin,
		Args: []string{
			"-listen", gwSess,
			"-group", strings.Join(group, ","),
			"-health-interval", chaosHealthInterval.String(),
			"-fail-threshold", strconv.Itoa(chaosFailThreshold),
		},
		Log: gwLog,
	}
	if err := h.gateway.Start(); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", gwSess, time.Second)
		if err == nil {
			c.Close()
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gateway never accepted on %s: %v", gwSess, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	h.proxy, err = chaos.NewProxy(gwSess, h.logf)
	if err != nil {
		return err
	}
	h.logf("chaos: fleet up: a=%s b=%s c=%s gateway=%s proxy=%s (artifacts in %s)",
		h.members[0].http, h.members[1].http, h.members[2].http, gwSess, h.proxy.Addr(), h.dir)
	return nil
}

// leaderArgs are the member's ordinary flags, sans -replicate-from: a
// durable learning leader. Restarts after a kill reuse these regardless
// of what role the member held — the gateway owns role repair.
func (h *chaosHarness) leaderArgs(m *chaosMember) []string {
	return []string{
		"-listen", m.sess,
		"-http", m.http,
		"-data-dir", m.dir,
		"-repl-listen", m.repl,
		"-learn",
		"-seed", strconv.FormatInt(h.opt.seed, 10),
		"-fsync-interval", "5ms",
		// Long enough that the final explicit /snapshot barrier is the
		// only snapshot in flight while convergence is checked.
		"-snapshot-every", "30s",
		"-train-interval", "50ms",
	}
}

// teardown stops everything, resuming stalled processes first so they
// can die; log files close after their writers are gone.
func (h *chaosHarness) teardown() {
	if h.proxy != nil {
		h.proxy.Close()
	}
	if h.gateway != nil {
		h.gateway.Stop()
	}
	for _, m := range h.members {
		if m.proc != nil {
			_ = m.proc.Resume()
			m.proc.Stop()
		}
	}
	for _, f := range h.logs {
		f.Close()
	}
}

// chaosFreeAddr reserves a loopback port by binding and releasing it.
func chaosFreeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}
