package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/multisim"
	"repro/internal/serve"
	"repro/internal/workload"
)

// runScenario replays a cluster scenario's arrival traces against a live
// daemon. Each topology in the scenario gets its own session (pools are
// per-topology because a pool shares one hello), reporting the topology's
// true executor/machine/spout dimensions and, every epoch, the trace's
// rate at the current simulated time — wall clock × -time-scale. Exit
// code semantics match the synthetic mode: zero only when every session
// survives to the deadline without a protocol error.
func runScenario(opt options, out io.Writer) int {
	sc, err := multisim.LoadFile(opt.scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	setups, cl, err := sc.Instances()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	timeScale := opt.timeScale
	if timeScale <= 0 {
		timeScale = 1
	}
	// The run covers the scenario horizon at the chosen speed, unless the
	// -duration budget is tighter.
	wall := time.Duration(sc.DurationMS / timeScale * float64(time.Millisecond))
	if opt.duration > 0 && opt.duration < wall {
		wall = opt.duration
	}

	type topoRun struct {
		pool   *serve.Pool
		trace  workload.ArrivalProcess
		spouts int
		epochs atomic.Int64
		err    error
	}
	runs := make([]*topoRun, len(setups))
	for i, su := range setups {
		tr := &topoRun{spouts: len(su.Arrivals)}
		for _, proc := range su.Arrivals { // all spouts share the topology's trace
			tr.trace = proc
			break
		}
		tr.pool = serve.NewPool(serve.ClientConfig{
			Addr:        opt.addr,
			Hello:       serve.HelloMsg{Topology: su.Name, N: len(su.Assign), M: cl.Size(), Spouts: tr.spouts},
			MaxAttempts: opt.maxAttempts,
			Proto:       opt.proto,
		}, 1)
		runs[i] = tr
	}

	var (
		lat      serve.Histogram
		failures atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), wall)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for i, tr := range runs {
		wg.Add(1)
		go func(i int, tr *topoRun) {
			defer wg.Done()
			tr.err = tr.pool.Run(ctx, func(ctx context.Context, _ int, sess *serve.Session) error {
				rng := rand.New(rand.NewSource(sc.Seed + int64(i)))
				meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: make([]float64, tr.spouts)}
				for ctx.Err() == nil {
					simMS := timeScale * float64(time.Since(start)) / float64(time.Millisecond)
					rate := tr.trace.RateAt(simMS)
					for j := range meas.Workload {
						meas.Workload[j] = rate
					}
					t0 := time.Now()
					if _, err := sess.Step(ctx, meas); err != nil {
						if benignEnd(err) {
							return nil
						}
						failures.Add(1)
						return fmt.Errorf("topology %s: %w", setups[i].Name, err)
					}
					lat.Observe(time.Since(t0))
					tr.epochs.Add(1)
					meas.AvgTupleTimeMS = 30 + 40*rng.Float64()
					if opt.think > 0 {
						select {
						case <-time.After(opt.think):
						case <-ctx.Done():
						}
					}
				}
				return nil
			})
			if tr.err != nil && benignEnd(tr.err) {
				tr.err = nil
			}
		}(i, tr)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > wall {
		elapsed = wall
	}

	var total, retries, reconnects, errCount int64
	for _, tr := range runs {
		total += tr.epochs.Load()
		st := tr.pool.Stats()
		retries += st.Retries.Load()
		reconnects += st.Reconnects.Load()
		errCount += st.Errors.Load()
	}
	fmt.Fprintf(out, "scenario:    %s (%d topologies on %d machines, time-scale %gx)\n",
		sc.Name, len(setups), cl.Size(), timeScale)
	for i, tr := range runs {
		fmt.Fprintf(out, "  %-16s %s epochs=%d\n", setups[i].Name, setups[i].Scheduler, tr.epochs.Load())
	}
	fmt.Fprintf(out, "duration:    %v (%.0f simulated seconds)\n",
		elapsed.Round(time.Millisecond), timeScale*elapsed.Seconds())
	fmt.Fprintf(out, "requests:    %d (%.0f req/s sustained)\n", total, float64(total)/elapsed.Seconds())
	fmt.Fprintf(out, "latency:     p50 %v  p99 %v  mean %v\n", lat.Quantile(0.5), lat.Quantile(0.99), lat.Mean())
	fmt.Fprintf(out, "retries:     %d (load-shed replies honored)\n", retries)
	fmt.Fprintf(out, "reconnects:  %d\n", reconnects)
	fmt.Fprintf(out, "errors:      %d\n", errCount+failures.Load())
	code := 0
	for _, tr := range runs {
		if tr.err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", tr.err)
			code = 1
		}
	}
	if errCount+failures.Load() > 0 {
		code = 1
	}
	return code
}
