// Command loadgen drives simulated scheduler sessions against an agentd
// daemon and reports sustained throughput and tail latency. Each session
// is one topology: it opens a connection, performs the hello handshake,
// then loops measurement→solution with a synthetic drifting workload,
// timing every round trip.
//
//	loadgen -addr 127.0.0.1:7700 -sessions 1000 -duration 10s
//
// The process exits non-zero if any session hits a protocol error, which
// is what the CI smoke job asserts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7700", "agentd address")
		sessions = flag.Int("sessions", 100, "concurrent scheduler sessions")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		n        = flag.Int("n", 12, "executors per topology")
		m        = flag.Int("m", 4, "machines per topology")
		spouts   = flag.Int("spouts", 2, "data sources per topology")
		think    = flag.Duration("think", 0, "per-session pause between epochs (0 = closed loop)")
		seed     = flag.Int64("seed", 1, "workload randomization seed")
	)
	flag.Parse()

	pool := serve.NewPool(serve.ClientConfig{
		Addr:  *addr,
		Hello: serve.HelloMsg{Topology: "loadgen", N: *n, M: *m, Spouts: *spouts},
	}, *sessions)

	var (
		lat      serve.Histogram
		epochs   atomic.Int64
		failures atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	runErr := pool.Run(ctx, func(ctx context.Context, i int, sess *serve.Session) error {
		rng := rand.New(rand.NewSource(*seed + int64(i)))
		base := 100 + 900*rng.Float64()
		meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: make([]float64, *spouts)}
		for ctx.Err() == nil {
			for j := range meas.Workload {
				meas.Workload[j] = base * (0.8 + 0.4*rng.Float64())
			}
			t0 := time.Now()
			if _, err := sess.Step(ctx, meas); err != nil {
				if ctx.Err() != nil {
					return nil // deadline hit mid-step: not a failure
				}
				failures.Add(1)
				return fmt.Errorf("session %d: %w", i, err)
			}
			lat.Observe(time.Since(t0))
			epochs.Add(1)
			meas.AvgTupleTimeMS = 30 + 40*rng.Float64()
			if *think > 0 {
				select {
				case <-time.After(*think):
				case <-ctx.Done():
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if elapsed > *duration {
		elapsed = *duration
	}
	// The deadline firing is how a run normally ends; only real failures
	// count.
	if errors.Is(runErr, context.DeadlineExceeded) || errors.Is(runErr, context.Canceled) {
		runErr = nil
	}

	stats := pool.Stats()
	total := epochs.Load()
	fmt.Printf("sessions:    %d (topology %dx%d/%d)\n", *sessions, *n, *m, *spouts)
	fmt.Printf("duration:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("requests:    %d (%.0f req/s sustained)\n", total, float64(total)/elapsed.Seconds())
	fmt.Printf("latency:     p50 %v  p99 %v  mean %v\n", lat.Quantile(0.5), lat.Quantile(0.99), lat.Mean())
	fmt.Printf("retries:     %d (load-shed replies honored)\n", stats.Retries.Load())
	fmt.Printf("reconnects:  %d\n", stats.Reconnects.Load())
	fmt.Printf("errors:      %d\n", stats.Errors.Load()+failures.Load())
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", runErr)
		os.Exit(1)
	}
	if stats.Errors.Load()+failures.Load() > 0 {
		os.Exit(1)
	}
}
