// Command loadgen drives simulated scheduler sessions against an agentd
// daemon and reports sustained throughput and tail latency. Each session
// is one topology: it opens a connection, performs the hello handshake,
// then loops measurement→solution with a synthetic drifting workload,
// timing every round trip.
//
//	loadgen -addr 127.0.0.1:7700 -sessions 1000 -duration 10s
//
// With -drop-every N each session deliberately drops its connection every
// N epochs and reconnects presenting its resumption token, exercising the
// daemon's session-resumption path under load.
//
// With -scenario file.ndjson the synthetic drifting workload is replaced
// by the scenario's topology mix: one session per topology, reporting that
// topology's real dimensions and replaying its arrival trace (steady,
// bursty, diurnal or shift) as the measured workload, with simulated time
// advanced -time-scale× faster than wall clock. The same NDJSON file
// drives `simulate -cluster-scenario` and a live daemon.
//
// The process exits non-zero if any session hits a protocol error or dies
// mid-run — including sessions still failing when the run deadline fires
// (serve.AbortedError) — which is what the CI smoke job asserts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// options collects the run parameters so tests can drive run directly.
type options struct {
	addr      string
	sessions  int
	duration  time.Duration
	n, m      int
	spouts    int
	think     time.Duration
	seed      int64
	dropEvery int
	// tokenPrefix, when set, gives session i the client-chosen resumption
	// token "<prefix>-<i>" instead of a daemon-issued one, so a later
	// loadgen run with the same prefix reclaims the same daemon-side
	// sessions — the restart-recovery smoke drives a durable daemon
	// through SIGKILL with it.
	tokenPrefix string
	// expectResumed makes a run fail unless every session resumed
	// daemon-side state on connect (the post-restart assertion).
	expectResumed bool
	// maxAttempts widens the client's per-step dial/shed retry budget
	// (0 = client default). Failover runs raise it: a leader kill costs
	// the gateway a detection window plus a promotion before retried
	// steps can land.
	maxAttempts int
	// scenario, when set, names an NDJSON cluster scenario whose arrival
	// traces are replayed against the daemon (one session per topology);
	// timeScale maps wall-clock to simulated milliseconds.
	scenario  string
	timeScale float64
	// proto selects the wire framing: auto (negotiate binary, fall back),
	// binary (require it), or ndjson.
	proto string
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7700", "agentd address")
		sessions  = flag.Int("sessions", 100, "concurrent scheduler sessions")
		duration  = flag.Duration("duration", 10*time.Second, "how long to drive load")
		n         = flag.Int("n", 12, "executors per topology")
		m         = flag.Int("m", 4, "machines per topology")
		spouts    = flag.Int("spouts", 2, "data sources per topology")
		think     = flag.Duration("think", 0, "per-session pause between epochs (0 = closed loop)")
		seed      = flag.Int64("seed", 1, "workload randomization seed")
		dropEvery = flag.Int("drop-every", 0, "drop and resume each session every N epochs (0 = never)")
		tokPrefix = flag.String("token-prefix", "", "present client-chosen resumption token <prefix>-<i> per session (restart-recovery testing; empty = daemon-issued tokens)")
		expectRes = flag.Bool("expect-resumed", false, "fail unless every session resumed existing daemon-side state on connect")
		maxAtt    = flag.Int("max-attempts", 0, "per-step dial/shed retry budget (0 = client default; raise for failover runs)")
		scenario  = flag.String("scenario", "", "NDJSON cluster scenario to replay (one session per topology; overrides -sessions/-n/-m/-spouts)")
		timeScale = flag.Float64("time-scale", 60, "with -scenario: simulated ms advanced per wall-clock ms")
		proto     = flag.String("proto", "auto", "wire framing: auto (binary hello, NDJSON fallback), binary (required), ndjson")

		chaosMode  = flag.Bool("chaos", false, "spawn a 3-member replicated fleet behind a gateway and drive a seeded fault schedule against it (ignores -addr)")
		agentdBin  = flag.String("agentd-bin", "", "agentd binary to spawn (with -chaos)")
		fleetBin   = flag.String("agentfleet-bin", "", "agentfleet binary to spawn (with -chaos)")
		chaosExtra = flag.Int("chaos-extra", 1, "random fault events beyond the mandatory kill/kill/stall/tear (with -chaos)")
		chaosDir   = flag.String("chaos-dir", "", "work directory for daemon data and logs (with -chaos; empty = temp dir, removed on pass, kept on failure)")
		chaosSteps = flag.Int("chaos-steps", 12, "steps per session per load phase (with -chaos)")
	)
	flag.Parse()
	opt := options{
		addr: *addr, sessions: *sessions, duration: *duration,
		n: *n, m: *m, spouts: *spouts,
		think: *think, seed: *seed, dropEvery: *dropEvery,
		tokenPrefix: *tokPrefix, expectResumed: *expectRes,
		maxAttempts: *maxAtt,
		scenario:    *scenario, timeScale: *timeScale,
		proto: *proto,
	}
	if *chaosMode {
		os.Exit(runChaos(opt, chaosOptions{
			agentdBin: *agentdBin, fleetBin: *fleetBin,
			dir: *chaosDir, extra: *chaosExtra, steps: *chaosSteps,
		}, os.Stdout))
	}
	if opt.scenario != "" {
		os.Exit(runScenario(opt, os.Stdout))
	}
	os.Exit(run(opt, os.Stdout))
}

// run drives the load and returns the process exit code: 0 only when every
// session survived to the deadline without a protocol error or an
// unrecovered failure.
func run(opt options, out io.Writer) int {
	pool := serve.NewPool(serve.ClientConfig{
		Addr:        opt.addr,
		Hello:       serve.HelloMsg{Topology: "loadgen", N: opt.n, M: opt.m, Spouts: opt.spouts},
		MaxAttempts: opt.maxAttempts,
		Proto:       opt.proto,
	}, opt.sessions)
	if opt.tokenPrefix != "" {
		for i := 0; i < opt.sessions; i++ {
			pool.Session(i).SetToken(fmt.Sprintf("%s-%d", opt.tokenPrefix, i))
		}
	}

	var (
		lat        serve.Histogram
		epochs     atomic.Int64
		drops      atomic.Int64
		failures   atomic.Int64
		notResumed atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), opt.duration)
	defer cancel()
	start := time.Now()
	runErr := pool.Run(ctx, func(ctx context.Context, i int, sess *serve.Session) error {
		if opt.expectResumed && !sess.Resumed() {
			notResumed.Add(1)
			return fmt.Errorf("session %d: daemon did not resume token %s (started a cold session)", i, sess.Token())
		}
		rng := rand.New(rand.NewSource(opt.seed + int64(i)))
		base := 100 + 900*rng.Float64()
		meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: make([]float64, opt.spouts)}
		for epoch := 1; ctx.Err() == nil; epoch++ {
			if opt.dropEvery > 0 && epoch%opt.dropEvery == 0 {
				// Deliberate kill: the next Step redials and presents the
				// session token, resuming server-side state.
				sess.Close()
				drops.Add(1)
			}
			for j := range meas.Workload {
				meas.Workload[j] = base * (0.8 + 0.4*rng.Float64())
			}
			t0 := time.Now()
			if _, err := sess.Step(ctx, meas); err != nil {
				if benignEnd(err) {
					return nil // the run's deadline ended this step
				}
				// A real failure — even one the deadline interrupted
				// recovery from — must reach the exit code.
				failures.Add(1)
				return fmt.Errorf("session %d: %w", i, err)
			}
			lat.Observe(time.Since(t0))
			epochs.Add(1)
			meas.AvgTupleTimeMS = 30 + 40*rng.Float64()
			if opt.think > 0 {
				select {
				case <-time.After(opt.think):
				case <-ctx.Done():
				}
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if elapsed > opt.duration {
		elapsed = opt.duration
	}
	// The deadline firing is how a run normally ends; only real failures
	// count.
	if runErr != nil && benignEnd(runErr) {
		runErr = nil
	}

	stats := pool.Stats()
	total := epochs.Load()
	fmt.Fprintf(out, "sessions:    %d (topology %dx%d/%d)\n", opt.sessions, opt.n, opt.m, opt.spouts)
	fmt.Fprintf(out, "duration:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "requests:    %d (%.0f req/s sustained)\n", total, float64(total)/elapsed.Seconds())
	fmt.Fprintf(out, "latency:     p50 %v  p99 %v  mean %v\n", lat.Quantile(0.5), lat.Quantile(0.99), lat.Mean())
	fmt.Fprintf(out, "retries:     %d (load-shed replies honored)\n", stats.Retries.Load())
	fmt.Fprintf(out, "reconnects:  %d\n", stats.Reconnects.Load())
	if opt.dropEvery > 0 {
		fmt.Fprintf(out, "drops:       %d (sessions resumed: %d)\n", drops.Load(), stats.Resumes.Load())
	}
	if opt.expectResumed {
		fmt.Fprintf(out, "resumed:     %d/%d sessions reclaimed pre-restart state\n",
			int64(opt.sessions)-notResumed.Load(), opt.sessions)
	}
	fmt.Fprintf(out, "errors:      %d\n", stats.Errors.Load()+failures.Load())
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", runErr)
		return 1
	}
	if stats.Errors.Load()+failures.Load() > 0 {
		return 1
	}
	if opt.dropEvery > 0 && drops.Load() > 0 && stats.Resumes.Load() == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: sessions were dropped but none resumed")
		return 1
	}
	return 0
}

// benignEnd reports whether err is purely the run deadline (or a sibling
// session's failure cancelling the pool) ending an otherwise healthy
// session. A context end that interrupted failure recovery arrives as a
// serve.AbortedError and is NOT benign — before that distinction, a
// session that died mid-run and was still backing off at the deadline
// made loadgen exit zero.
func benignEnd(err error) bool {
	var aborted *serve.AbortedError
	if errors.As(err, &aborted) {
		return false
	}
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
