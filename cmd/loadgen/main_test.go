package main

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// startDaemon runs an in-process agent daemon and returns its address and
// a kill func that tears it down (listener and all sessions).
func startDaemon(t *testing.T, cfg serve.Config) (string, func()) {
	t.Helper()
	s := serve.New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Serve(ctx, l)
	}()
	var once sync.Once
	return l.Addr().String(), func() {
		once.Do(func() {
			cancel()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Error("daemon did not drain")
			}
		})
	}
}

// TestRunHealthyExitsZero: a clean run against a live daemon exits 0.
func TestRunHealthyExitsZero(t *testing.T) {
	addr, kill := startDaemon(t, serve.Config{Seed: 1})
	defer kill()

	var out bytes.Buffer
	code := run(options{
		addr: addr, sessions: 4, duration: 500 * time.Millisecond,
		n: 6, m: 3, spouts: 2, seed: 1,
	}, &out)
	if code != 0 {
		t.Fatalf("healthy run exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "errors:      0") {
		t.Fatalf("healthy run reported errors:\n%s", out.String())
	}
}

// TestRunDropResumeExitsZero: deliberate drops with session resumption
// stay a healthy run — and the resumes actually happen.
func TestRunDropResumeExitsZero(t *testing.T) {
	addr, kill := startDaemon(t, serve.Config{Seed: 1, Learn: true, TrainInterval: 50 * time.Millisecond})
	defer kill()

	var out bytes.Buffer
	code := run(options{
		addr: addr, sessions: 3, duration: time.Second,
		n: 6, m: 3, spouts: 2, seed: 1, dropEvery: 5,
	}, &out)
	if code != 0 {
		t.Fatalf("drop/resume run exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "drops:") || strings.Contains(out.String(), "sessions resumed: 0)") {
		t.Fatalf("drop/resume run did not resume any session:\n%s", out.String())
	}
}

// TestRunSessionDeathExitsNonZero is the exit-code regression test: the
// daemon dies mid-run with no protocol error on the wire, and the run
// deadline fires while the sessions are still backing off trying to
// recover. loadgen used to classify that as a clean deadline end and exit
// zero; it must exit non-zero.
func TestRunSessionDeathExitsNonZero(t *testing.T) {
	addr, kill := startDaemon(t, serve.Config{Seed: 1})
	defer kill()

	go func() {
		time.Sleep(300 * time.Millisecond)
		kill() // daemon gone mid-run: sessions die without a protocol error
	}()
	// The reconnect backoff schedule needs ~1.3s to give up, so a 1s
	// deadline is guaranteed to fire while the sessions are still mid-
	// recovery — exactly the window the old classification misread as a
	// clean end.
	var out bytes.Buffer
	code := run(options{
		addr: addr, sessions: 3, duration: time.Second,
		n: 6, m: 3, spouts: 2, seed: 1,
	}, &out)
	if code == 0 {
		t.Fatalf("loadgen exited zero although every session died mid-run:\n%s", out.String())
	}
}
