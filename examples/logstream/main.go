// Log stream processing: the paper's second benchmark (Figure 4). The data
// plane runs synthetic IIS log lines through the LogRules/Indexer/Counter
// pipeline semantics; the control plane compares the default scheduler with
// a trained actor-critic agent on the 100-executor topology.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/workload"
)

func main() {
	// --- Data plane: rule-based log analysis ------------------------------
	rng := rand.New(rand.NewSource(1))
	gen := workload.NewLogGen(rng)
	index := map[string]int{} // Indexer bolt: hits per URI
	errors := 0               // Counter bolt: error entries
	const lines = 10_000
	for i := 0; i < lines; i++ {
		entry := gen.Next()
		// LogStash → Redis → spout → LogRules bolt (parse + rules).
		parsed, err := workload.ParseLine(entry.Line())
		if err != nil {
			log.Fatalf("log line failed to parse: %v", err)
		}
		index[parsed.URI]++
		if parsed.IsError() {
			errors++
		}
	}
	fmt.Printf("processed %d synthetic IIS log lines: %d distinct URIs, %d error entries (%.1f%%)\n",
		lines, len(index), errors, 100*float64(errors)/lines)

	// --- Control plane ----------------------------------------------------
	sys, err := repro.LogStream()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlog-stream topology: %d executors over %d machines\n",
		sys.Top.NumExecutors(), sys.Cl.Size())
	for _, c := range sys.Top.Components {
		fmt.Printf("  %-10s ×%d (%s)\n", c.Name, c.Parallelism, c.Kind)
	}

	simEnv := repro.NewSimEnv(sys, 3)
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		log.Fatal(err)
	}

	rr, err := repro.NewRoundRobinScheduler().Schedule(simEnv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDefault (round-robin): %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(rr))

	// A compressed training budget for the example (cmd/reprobench runs the
	// full budgets); extra SGD updates per epoch compensate somewhat.
	acCfg := repro.DefaultACConfig()
	acCfg.UpdatesPerStep = 3
	agent := repro.NewActorCriticAgentWith(sys, acCfg, 9)
	ctrl := repro.NewController(trainEnv, agent)
	fmt.Println("training actor-critic agent (compressed budget for the example)...")
	if err := ctrl.CollectOffline(900); err != nil {
		log.Fatal(err)
	}
	ctrl.OnlineLearn(450, nil)
	fmt.Printf("Actor-critic DRL:      %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(ctrl.GreedySolution()))
}
