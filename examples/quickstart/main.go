// Quickstart: define a small stream topology, train the paper's
// actor-critic scheduler on it, and compare the learned scheduling solution
// against Storm's default round-robin placement.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A three-stage pipeline: one data source, a heavy transform, a sink.
	top, err := repro.NewTopology("quickstart").
		AddSpout("source", 2, 0.05, 1, 200). // 2 executors, 0.05 ms/tuple, 200-byte tuples
		AddBolt("transform", 6, 0.8, 1, 150).
		AddBolt("sink", 4, 0.3, 0, 0).
		Connect("source", "transform", repro.Shuffle).
		Connect("transform", "sink", repro.Shuffle).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	sys := &repro.System{
		Name:     top.Name,
		Top:      top,
		Cl:       repro.NewCluster(4), // 4 worker machines
		Arrivals: map[string]repro.ArrivalProcess{"source": repro.ConstantRate{PerSecond: 1500}},
		BaseRate: 1500,
	}

	// Train against the fast analytic environment (as the experiments do),
	// evaluate on the discrete-event simulator (the stand-in for Storm).
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		log.Fatal(err)
	}
	agent := repro.NewActorCriticAgent(sys, 42)
	ctrl := repro.NewController(trainEnv, agent)

	fmt.Println("collecting 600 offline samples with random schedules...")
	if err := ctrl.CollectOffline(600); err != nil {
		log.Fatal(err)
	}
	fmt.Println("online learning for 300 decision epochs...")
	ctrl.OnlineLearn(300, func(epoch int, lat float64) {
		if (epoch+1)%100 == 0 {
			fmt.Printf("  epoch %3d: measured %.3f ms\n", epoch+1, lat)
		}
	})

	simEnv := repro.NewSimEnv(sys, 7)
	n, m := trainEnv.N(), trainEnv.M()
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % m
	}
	learned := ctrl.GreedySolution()

	fmt.Printf("\nround-robin (Storm default): %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(rr))
	fmt.Printf("actor-critic DRL schedule:   %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(learned))
	fmt.Printf("learned assignment: %v\n", learned)
}
