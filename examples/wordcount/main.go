// Word count (stream version): the paper's third benchmark (Figure 5). The
// data plane splits generated text lines and counts words with
// fields-grouping semantics (equal words always reach the same counter
// task); the control plane compares schedulers on the 100-executor
// topology.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
	"repro/internal/workload"
)

func main() {
	// --- Data plane: split + fields-grouped count --------------------------
	rng := rand.New(rand.NewSource(1))
	gen := workload.NewTextGen(rng)
	const counterTasks = 30
	counters := make([]*workload.WordCounter, counterTasks)
	for i := range counters {
		counters[i] = workload.NewWordCounter()
	}
	const lines = 5_000
	words := 0
	for i := 0; i < lines; i++ {
		for _, w := range workload.SplitWords(gen.NextLine()) {
			// Fields grouping: the task is a pure function of the word.
			counters[workload.FieldsHash(w, counterTasks)].Add(w)
			words++
		}
	}
	// Merge for display.
	total := map[string]int{}
	for _, c := range counters {
		for w, n := range c.Counts {
			total[w] += n
		}
	}
	type wc struct {
		w string
		n int
	}
	var top []wc
	for w, n := range total {
		top = append(top, wc{w, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Printf("counted %d words from %d lines; top five:\n", words, lines)
	for _, e := range top[:5] {
		fmt.Printf("  %-10s %6d\n", e.w, e.n)
	}
	// Verify fields grouping kept each word on exactly one task.
	for w := range total {
		owners := 0
		for _, c := range counters {
			if c.Counts[w] > 0 {
				owners++
			}
		}
		if owners != 1 {
			log.Fatalf("word %q counted on %d tasks; fields grouping broken", w, owners)
		}
	}
	fmt.Println("fields grouping invariant holds: every word lives on exactly one counter task")

	// --- Control plane ----------------------------------------------------
	sys, err := repro.WordCount()
	if err != nil {
		log.Fatal(err)
	}
	simEnv := repro.NewSimEnv(sys, 3)
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := repro.NewRoundRobinScheduler().Schedule(simEnv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDefault (round-robin): %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(rr))
	// A compressed training budget for the example (cmd/reprobench runs the
	// full budgets); extra SGD updates per epoch compensate somewhat.
	acCfg := repro.DefaultACConfig()
	acCfg.UpdatesPerStep = 3
	agent := repro.NewActorCriticAgentWith(sys, acCfg, 9)
	ctrl := repro.NewController(trainEnv, agent)
	fmt.Println("training actor-critic agent (compressed budget for the example)...")
	if err := ctrl.CollectOffline(900); err != nil {
		log.Fatal(err)
	}
	ctrl.OnlineLearn(450, nil)
	fmt.Printf("Actor-critic DRL:      %.3f ms avg tuple processing time\n",
		simEnv.AvgTupleTimeMS(ctrl.GreedySolution()))
}
