// Continuous queries: the paper's first benchmark (Figure 3). This example
// exercises both planes of the reproduction:
//
//   - the data plane: random vehicle-plate records, speeding-vehicle
//     queries and table scans from internal/workload (stood in for the
//     paper's in-memory database table), and
//   - the control plane: all four schedulers compared on the small-scale
//     setup, as in Figure 6(a).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/workload"
)

func main() {
	// --- Data plane -------------------------------------------------------
	rng := rand.New(rand.NewSource(1))
	gen := workload.NewQueryGen(rng, 2000) // 2000-row vehicle table
	fmt.Println("sample continuous queries against the in-memory table:")
	for i := int64(0); i < 3; i++ {
		q := gen.Next(i)
		hits := gen.Execute(q)
		fmt.Printf("  query %d: speed > %d mph -> %d matching vehicles (first: %+v)\n",
			q.ID, q.MinSpeed, len(hits), hits[0].Plate)
	}

	// --- Control plane ----------------------------------------------------
	sys, err := repro.ContinuousQueries(repro.Small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscheduling %d executors over %d machines (small-scale setup)\n",
		sys.Top.NumExecutors(), sys.Cl.Size())

	simEnv := repro.NewSimEnv(sys, 3)
	trainEnv, err := repro.NewAnalyticEnv(sys)
	if err != nil {
		log.Fatal(err)
	}

	// Storm default.
	rrSched := repro.NewRoundRobinScheduler()
	rr, err := rrSched.Schedule(simEnv)
	if err != nil {
		log.Fatal(err)
	}
	report("Default (round-robin)", simEnv, rr)

	// Traffic-aware heuristic (extra baseline).
	ta, err := repro.NewTrafficAwareScheduler(sys).Schedule(simEnv)
	if err != nil {
		log.Fatal(err)
	}
	report("Traffic-aware (T-Storm)", simEnv, ta)

	// Model-based [25].
	mb, err := repro.NewModelBasedScheduler(sys, 5).Schedule(trainEnv)
	if err != nil {
		log.Fatal(err)
	}
	report("Model-based (SVR)", simEnv, mb)

	// Actor-critic DRL (short training for the example).
	agent := repro.NewActorCriticAgent(sys, 9)
	ctrl := repro.NewController(trainEnv, agent)
	if err := ctrl.CollectOffline(600); err != nil {
		log.Fatal(err)
	}
	ctrl.OnlineLearn(300, nil)
	report("Actor-critic DRL", simEnv, ctrl.GreedySolution())
}

func report(name string, e repro.Environment, assign []int) {
	fmt.Printf("  %-26s %.3f ms\n", name, e.AvgTupleTimeMS(assign))
}
