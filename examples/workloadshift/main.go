// Workload shift: a miniature of Figure 12. An actor-critic agent trained
// across varying workloads reschedules the continuous-queries topology when
// the arrival rate jumps by 50% mid-run, and the average tuple processing
// time spikes briefly (moved executors pause) before re-stabilizing near
// its pre-shift level.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	sys, err := repro.ContinuousQueries(repro.Small)
	if err != nil {
		log.Fatal(err)
	}

	// Train while jittering the workload so the agent learns the
	// rate-dependence of good schedules (the "w" in the state s = (X, w)).
	agent := repro.NewActorCriticAgent(sys, 11)
	base := sys.BaseRate
	rate := &workload.ConstantRate{PerSecond: base}
	trainSys := *sys
	trainSys.Arrivals = map[string]repro.ArrivalProcess{"spout": rate}
	trainEnv, err := repro.NewAnalyticEnv(&trainSys)
	if err != nil {
		log.Fatal(err)
	}
	ctrl := repro.NewController(trainEnv, agent)
	fmt.Println("training across workload levels 0.6×–1.6× base rate...")
	for _, scale := range []float64{1.0, 0.6, 1.3, 1.6, 0.8, 1.5, 1.0} {
		rate.PerSecond = base * scale
		if err := ctrl.CollectOffline(120); err != nil {
			log.Fatal(err)
		}
		ctrl.OnlineLearn(60, nil)
	}
	rate.PerSecond = base

	// Deploy on a simulator whose workload steps +50% at minute 8 of 20.
	const stepMin = 8.0
	stepped := sys.WithStepWorkload(1.5, stepMin*60_000)
	cfg := sim.DefaultConfig(stepped.Top, stepped.Cl, stepped.Arrivals, 5)
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Deploy(ctrl.GreedySolution()); err != nil {
		log.Fatal(err)
	}

	// Run to just past the step, then let the agent react to the new
	// workload it observes.
	s.RunUntil((stepMin + 1) * 60_000)
	newWork := []float64{base * 1.5}
	resched := agent.Greedy(ctrl.GreedySolution(), newWork)
	moved := 0
	for i := range resched {
		if resched[i] != ctrl.GreedySolution()[i] {
			moved++
		}
	}
	fmt.Printf("workload stepped +50%% at minute %.0f; agent moves %d of %d executors\n",
		stepMin, moved, len(resched))
	if err := s.Deploy(resched); err != nil {
		log.Fatal(err)
	}
	s.RunUntil(20 * 60_000)

	fmt.Println("\n minute   avg tuple time (ms)")
	for i, w := range s.Windows() {
		if i%6 != 5 { // print one sample per simulated minute
			continue
		}
		marker := ""
		if w.TimeMS/60_000 > stepMin && w.TimeMS/60_000 < stepMin+2 {
			marker = "   <- workload step / reschedule"
		}
		fmt.Printf("  %5.0f    %8.3f%s\n", w.TimeMS/60_000, w.AvgMS, marker)
	}
	fmt.Printf("\nstabilized after shift: %.3f ms\n", s.AvgOverLastWindows(5))
}
