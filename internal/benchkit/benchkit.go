// Package benchkit runs the repo's signature performance benchmarks
// programmatically (via testing.Benchmark) and renders machine-readable
// results, so each PR can commit a BENCH_PRn.json snapshot and the perf
// trajectory of the hot paths — training steps, batched inference, the
// serving daemon's request throughput — is tracked in-repo rather than in
// commit messages.
//
// The suite deliberately reuses the public APIs the *_test.go benchmarks
// drive, at the same shapes, so `reprobench -bench-json` numbers are
// comparable with `go test -bench` output.
package benchkit

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/multisim"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// Result is one benchmark's outcome.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full machine-readable benchmark snapshot.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	KernelMode string   `json:"gemm_kernel_mode"`
	Results    []Result `json:"results"`
}

// Run executes the suite and returns the report. progress, when non-nil,
// receives one line per benchmark as it completes. A benchmark that fails
// internally (testing.Benchmark swallows b.Fatal and hands back a zero
// result) is reported as an error rather than silently recorded as
// 0 ns/op, so a corrupted snapshot can never look like a perf win.
func Run(progress func(string)) (Report, error) {
	var failed []string
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		KernelMode: kernelModeName(mat.CurrentKernelMode()),
	}
	add := func(name string, extra map[string]float64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			failed = append(failed, name)
			if progress != nil {
				progress(fmt.Sprintf("%-40s FAILED", name))
			}
			return
		}
		res := Result{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Metrics:     extra,
		}
		if opsPerSec, ok := r.Extra["req/s"]; ok {
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics["req/s"] = opsPerSec
		}
		rep.Results = append(rep.Results, res)
		if progress != nil {
			progress(fmt.Sprintf("%-40s %12.0f ns/op  %6d allocs/op", name, res.NsPerOp, res.AllocsPerOp))
		}
	}

	// GEMM kernels at the hot training shape (256×242 one-hot-dominated
	// batch against 64×242 layer-1 weights), blocked vs reference.
	add("mat/MatmulNT_onehot_blocked", nil, func(b *testing.B) { benchGemm(b, mat.KernelBlocked) })
	add("mat/MatmulNT_onehot_reference", nil, func(b *testing.B) { benchGemm(b, mat.KernelReference) })

	// One actor-critic / DQN training step (replay sampling + mini-batch
	// update) at the small continuous-queries scale (N=20, M=6), matching
	// BenchmarkTrainStepAC; the workers variants run the same TrainStep
	// with the GEMM row bands sharded across a pool.
	add("core/TrainStepAC", nil, func(b *testing.B) { benchTrainAC(b, 1) })
	add("core/TrainStepDQN", nil, benchTrainDQN)
	for _, w := range []int{2, 4} {
		w := w
		add(fmt.Sprintf("core/TrainStepAC_workers=%d", w), nil, func(b *testing.B) { benchTrainAC(b, w) })
	}

	// Batched inference-only forward over a 64-row one-hot micro-batch
	// (the serving path's kernel), matching nn.ForwardBatchInfer usage.
	add("nn/ForwardBatchInfer64", nil, benchInfer)

	// End-to-end serving throughput over loopback TCP, 64 concurrent
	// sessions, micro-batch GEMMs sharded across 1/2/4 workers.
	for _, w := range []int{1, 2, 4} {
		w := w
		add(fmt.Sprintf("serve/Requests64Sessions_gemmworkers=%d", w), nil, func(b *testing.B) { benchServe(b, w) })
	}

	// Shared-clock multi-topology stepping at steady state: one global
	// event through the instance heap plus the owning simulator's event
	// heap, as resident topology count grows (matching
	// multisim.BenchmarkClusterStep).
	for _, n := range []int{1, 4} {
		n := n
		add(fmt.Sprintf("multisim/ClusterStep_topologies=%d", n), nil, func(b *testing.B) { benchMultisim(b, n) })
	}
	if len(failed) > 0 {
		return rep, fmt.Errorf("benchkit: %d benchmark(s) failed: %v", len(failed), failed)
	}
	return rep, nil
}

// WriteJSON renders the report to path (pretty-printed, trailing newline).
func WriteJSON(rep Report, path string) error {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func kernelModeName(m mat.KernelMode) string {
	if m == mat.KernelReference {
		return "reference"
	}
	return "blocked"
}

func benchGemm(b *testing.B, mode mat.KernelMode) {
	prev := mat.SetKernelMode(mode)
	defer mat.SetKernelMode(prev)
	rng := rand.New(rand.NewSource(1))
	x := mat.NewMatrix(256, 242)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for i := 0; i < 40; i++ {
			row[rng.Intn(len(row))] = 1
		}
	}
	w := mat.NewMatrix(64, 242)
	w.Randomize(rng, 1)
	dst := mat.NewMatrix(256, 64)
	ws := &mat.Workspace{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatmulNTP(dst, x, w, ws, nil)
	}
}

// seedAgent fills an agent's replay buffer through the public collection
// API so TrainStep performs real updates.
func seedAgent(agent core.Agent, n, m, numSpouts, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % m
	}
	work := make([]float64, numSpouts)
	for i := range work {
		work[i] = 100 + 10*rng.Float64()
	}
	for i := 0; i < count; i++ {
		next := agent.RandomAssignment(assign)
		agent.Observe(assign, work, -(1 + rng.Float64()), next, work)
		assign = next
	}
}

func benchTrainAC(b *testing.B, workers int) {
	cfg := core.DefaultACConfig()
	cfg.UpdatesPerStep = 1
	a := core.NewActorCritic(20, 6, 2, cfg, 1)
	seedAgent(a, 20, 6, 2, 2*cfg.BatchSize, 2)
	if workers > 1 {
		a.SetPool(nn.NewPool(parallel.NewSem(workers - 1)))
	}
	a.TrainStep() // warm the grow-only workspaces so allocs/op reflects steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TrainStep()
	}
}

func benchTrainDQN(b *testing.B) {
	d := core.NewDQN(20, 6, 2, core.DefaultDQNConfig(), 1)
	seedAgent(d, 20, 6, 2, 64, 2)
	d.TrainStep() // warm the grow-only workspaces
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TrainStep()
	}
}

func benchInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	net := nn.New([]int{122, 64, 32, 120}, nn.Tanh, nn.Tanh, rng)
	x := mat.NewMatrix(64, 122)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		for i := 0; i < 20; i++ {
			row[rng.Intn(120)] = 1
		}
		row[120] = rng.Float64()
		row[121] = rng.Float64()
	}
	net.ForwardBatchInfer(x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInfer(x)
	}
}

// benchMultisim steps an n-topology contended shared cluster (10 machines,
// the benchmark app mix) warmed to steady state.
func benchMultisim(b *testing.B, n int) {
	apps := []string{"cq-small", "wc", "log", "cq-medium"}
	sc := &multisim.Scenario{
		Name:       "bench",
		Seed:       1,
		DurationMS: 1e18, // stepped manually; no horizon
		Cluster:    multisim.ClusterSpec{Machines: 10},
	}
	for i := 0; i < n; i++ {
		sc.Topologies = append(sc.Topologies, multisim.TopologySpec{
			App:  apps[i%len(apps)],
			Name: fmt.Sprintf("%s-%d", apps[i%len(apps)], i),
		})
	}
	m, err := multisim.Build(sc, false)
	if err != nil {
		b.Fatal(err)
	}
	m.RunUntil(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step() {
			b.Fatal("ran out of events")
		}
	}
}

func benchServe(b *testing.B, gemmWorkers int) {
	const sessions = 64
	s := serve.New(serve.Config{MaxBatch: 64, Seed: 1, GemmWorkers: gemmWorkers})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	defer func() {
		cancel()
		<-done
	}()

	pool := serve.NewPool(serve.ClientConfig{
		Addr:  l.Addr().String(),
		Hello: serve.HelloMsg{Topology: "bench", N: 24, M: 8, Spouts: 3},
	}, sessions)
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	start := time.Now()
	b.ResetTimer()
	err = pool.Run(context.Background(), func(ctx context.Context, i int, sess *serve.Session) error {
		meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{100, 200, 300}}
		for remaining.Add(-1) >= 0 {
			if _, err := sess.Step(ctx, meas); err != nil {
				return fmt.Errorf("session %d: %w", i, err)
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
}
