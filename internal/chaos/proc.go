package chaos

import (
	"fmt"
	"io"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// Proc is one spawned daemon under chaos control. It exists to deliver
// the two fault signals a polite in-process shutdown cannot model:
// SIGKILL (death between fsyncs — nothing flushes, nothing drains) and
// SIGSTOP (alive to the kernel, dead to every request). Restarting a
// killed Proc re-runs the same binary with the same arguments, which is
// exactly what an init system would do — and what turns a dead leader
// into a stray one the fleet must heal.
type Proc struct {
	// Name labels the process in logs ("a", "b", "gateway").
	Name string
	// Bin and Args are the command line; Log receives stdout+stderr.
	Bin  string
	Args []string
	Log  io.Writer

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{} // closed when Wait returns for the current cmd
}

// Start launches (or relaunches) the process. The previous incarnation,
// if any, must be dead.
func (p *Proc) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil && p.alive() {
		return fmt.Errorf("chaos: %s already running (pid %d)", p.Name, p.cmd.Process.Pid)
	}
	cmd := exec.Command(p.Bin, p.Args...)
	cmd.Stdout = p.Log
	cmd.Stderr = p.Log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: start %s: %w", p.Name, err)
	}
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait() // chaos kills on purpose; the exit status is not a verdict
		close(done)
	}()
	p.cmd, p.done = cmd, done
	return nil
}

// Pid returns the current process id (0 when never started).
func (p *Proc) Pid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return 0
	}
	return p.cmd.Process.Pid
}

// alive reports liveness; callers hold p.mu.
func (p *Proc) alive() bool {
	if p.cmd == nil {
		return false
	}
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// Alive reports whether the current incarnation is still running. A
// SIGSTOPped process is alive.
func (p *Proc) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive()
}

// signal delivers sig to the current incarnation.
func (p *Proc) signal(sig syscall.Signal) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil {
		return fmt.Errorf("chaos: %s never started", p.Name)
	}
	return p.cmd.Process.Signal(sig)
}

// Kill SIGKILLs the process and waits for the kernel to reap it: no
// flush, no drain snapshot, no goodbye — the crash the WAL exists for.
// A SIGSTOPped process is killable (SIGKILL cannot be blocked), so Kill
// needs no Resume first.
func (p *Proc) Kill() error {
	if err := p.signal(syscall.SIGKILL); err != nil {
		return err
	}
	p.mu.Lock()
	done := p.done
	p.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-time.After(10 * time.Second):
		return fmt.Errorf("chaos: %s did not die within 10s of SIGKILL", p.Name)
	}
}

// Stall SIGSTOPs the process: sockets stay open, handshakes complete,
// requests hang. The stalled-leader failure mode.
func (p *Proc) Stall() error { return p.signal(syscall.SIGSTOP) }

// Resume SIGCONTs a stalled process.
func (p *Proc) Resume() error { return p.signal(syscall.SIGCONT) }

// Stop ends the process for cleanup: SIGTERM, a grace period, then
// SIGKILL. Unlike Kill it is not a fault — it is how the harness exits.
func (p *Proc) Stop() {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.mu.Unlock()
	if cmd == nil {
		return
	}
	select {
	case <-done:
		return
	default:
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = cmd.Process.Kill()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			// Wait can outlive the process when an orphaned grandchild
			// holds the stdout pipe open; cleanup must not hang on it.
		}
	}
}
