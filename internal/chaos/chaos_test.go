package chaos

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestPlanSeededAndComplete: the same seed yields the same schedule, a
// different seed (almost surely) a different order, and every plan
// carries the mandatory fault mix — two kills, a stall, a tear.
func TestPlanSeededAndComplete(t *testing.T) {
	a := Plan(42, 3, 500*time.Millisecond, time.Second)
	b := Plan(42, 3, 500*time.Millisecond, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	counts := map[Kind]int{}
	for _, ev := range a {
		counts[ev.Kind]++
		if ev.Kind == StallLeader {
			if ev.Stall < 500*time.Millisecond || ev.Stall > time.Second {
				t.Fatalf("stall %v outside [500ms, 1s]", ev.Stall)
			}
		} else if ev.Stall != 0 {
			t.Fatalf("%v event carries a stall duration", ev.Kind)
		}
	}
	if counts[KillLeader] < 2 || counts[StallLeader] < 1 || counts[TearClients] < 1 {
		t.Fatalf("plan misses mandatory faults: %v", counts)
	}
	if len(a) != 4+3 {
		t.Fatalf("plan has %d events, want 7", len(a))
	}
}

// echoBackend accepts connections and echoes bytes until closed.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestProxyRelaysAndTears: bytes flow verbatim through the proxy, Tear
// severs a live connection mid-stream, and a fresh connection works
// afterwards (tearing is per-connection, not fatal to the proxy).
func TestProxyRelaysAndTears(t *testing.T) {
	backend := echoBackend(t)
	p, err := NewProxy(backend.Addr().String(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	msg := []byte("through-the-proxy\n")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("relayed %q, want %q", got, msg)
	}
	if n := p.Live(); n != 1 {
		t.Fatalf("Live() = %d with one relayed connection, want 1", n)
	}

	if n := p.Tear(); n != 1 {
		t.Fatalf("Tear cut %d connections, want 1", n)
	}
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on a torn connection succeeded")
	}

	// The proxy still accepts and relays after a tear.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn2.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, got); err != nil {
		t.Fatalf("relay after tear: %v", err)
	}
}

// TestProxyFuseSeversMidStream: an armed fuse severs the next connection
// after the byte budget, leaving later connections untouched.
func TestProxyFuseSeversMidStream(t *testing.T) {
	backend := echoBackend(t)
	p, err := NewProxy(backend.Addr().String(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.TearNextAfter(64)
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	// Push well past the budget; the echo path doubles the byte count, so
	// the fuse must blow long before everything comes back.
	payload := bytes.Repeat([]byte("x"), 4096)
	torn := false
	for i := 0; i < 64; i++ {
		if _, err := conn.Write(payload); err != nil {
			torn = true
			break
		}
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(conn, buf); err != nil {
			torn = true
			break
		}
	}
	if !torn {
		t.Fatal("fused connection survived 256KiB past a 64-byte budget")
	}
	if p.Torn() == 0 {
		t.Fatal("fuse sever not counted")
	}

	// The fuse was consumed: the next connection relays unbounded.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	conn2.SetDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < 8; i++ {
		if _, err := conn2.Write(payload); err != nil {
			t.Fatalf("post-fuse write %d: %v", i, err)
		}
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(conn2, buf); err != nil {
			t.Fatalf("post-fuse read %d: %v", i, err)
		}
	}
}

// TestProcLifecycle: start, stall (still alive), resume, kill (dead),
// restart — the primitive sequence every chaos schedule is built from.
func TestProcLifecycle(t *testing.T) {
	// Signal the target directly (no shell in between: sh does not forward
	// SIGTERM, which would orphan the child and leak it past the test).
	p := &Proc{Name: "sleeper", Bin: "/bin/sleep", Args: []string{"60"}, Log: io.Discard}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if !p.Alive() {
		t.Fatal("started process not alive")
	}
	if err := p.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
	if err := p.Stall(); err != nil {
		t.Fatal(err)
	}
	if !p.Alive() {
		t.Fatal("SIGSTOPped process reported dead")
	}
	if err := p.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatal("SIGKILLed process reported alive")
	}
	if err := p.Start(); err != nil {
		t.Fatalf("restart after kill: %v", err)
	}
	if !p.Alive() {
		t.Fatal("restarted process not alive")
	}
	p.Stop()
}
