package chaos

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a byte-level TCP relay the chaos harness parks between the
// clients and the gateway. It forwards bytes verbatim — sessions run
// through it untouched — until told to misbehave:
//
//   - Tear() closes every live relayed connection immediately, in
//     whatever mid-frame state the streams happen to be. Clients see a
//     torn transport, not a clean shutdown.
//   - TearNextAfter(n) arms a fuse for the NEXT accepted connection:
//     after about n relayed bytes (counting both directions) the pair is
//     severed. That lands the cut inside a frame deterministically-ish,
//     which a whole-connection Tear alone cannot guarantee.
//
// Either way the client's next read or write fails and its reconnect
// path — redial, hello with resumption token, resume — is what the
// harness is actually testing.
type Proxy struct {
	target string
	logf   func(string, ...any)
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]net.Conn // client -> backend, live pairs
	fuse   int64                 // armed byte budget for the next accept; 0 = none
	torn   int64
	closed bool
}

// NewProxy starts a relay on a fresh loopback port toward target.
func NewProxy(target string, logf func(string, ...any)) (*Proxy, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{target: target, logf: logf, ln: ln, conns: map[net.Conn]net.Conn{}}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients dial instead of the gateway.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Torn reports how many connections have been severed so far.
func (p *Proxy) Torn() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.torn
}

// Live reports how many relayed connection pairs are currently open —
// what a Tear would cut. Harnesses wait on this before tearing so the
// cut lands on live traffic instead of an already-drained pool.
func (p *Proxy) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// TearNextAfter arms the mid-frame fuse: the next accepted connection is
// severed after about n relayed bytes.
func (p *Proxy) TearNextAfter(n int64) {
	p.mu.Lock()
	p.fuse = n
	p.mu.Unlock()
}

// Tear severs every live relayed connection and returns how many pairs
// it cut.
func (p *Proxy) Tear() int {
	p.mu.Lock()
	n := len(p.conns)
	for c, b := range p.conns {
		c.Close()
		b.Close()
	}
	p.torn += int64(n)
	p.mu.Unlock()
	if n > 0 {
		p.logf("chaos: proxy tore %d live connections", n)
	}
	return n
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Tear()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		fuse := p.fuse
		p.fuse = 0
		closed := p.closed
		p.mu.Unlock()
		if closed {
			client.Close()
			return
		}
		go p.relay(client, fuse)
	}
}

// relay dials the backend and splices bytes both ways. A non-zero fuse
// is a shared countdown across both directions; hitting zero severs the
// pair wherever the streams happen to be.
func (p *Proxy) relay(client net.Conn, fuse int64) {
	backend, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.logf("chaos: proxy dial %s: %v", p.target, err)
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		backend.Close()
		return
	}
	p.conns[client] = backend
	p.mu.Unlock()

	var budget *atomic.Int64
	if fuse > 0 {
		budget = &atomic.Int64{}
		budget.Store(fuse)
	}
	sever := func(fused bool) {
		// Bookkeeping first: the instant the close lands, the client side
		// can observe the tear and ask Torn() — the count must already be
		// there.
		p.mu.Lock()
		if _, live := p.conns[client]; live {
			delete(p.conns, client)
			if fused {
				p.torn++
			}
		}
		p.mu.Unlock()
		client.Close()
		backend.Close()
	}
	var wg sync.WaitGroup
	pump := func(dst, src net.Conn) {
		defer wg.Done()
		buf := make([]byte, 512) // small reads: a fused cut lands mid-frame, not on a frame boundary
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					sever(false)
					return
				}
				if budget != nil && budget.Add(int64(-n)) <= 0 {
					p.logf("chaos: proxy fuse blew after budget on %s", client.RemoteAddr())
					sever(true)
					return
				}
			}
			if err != nil {
				sever(false)
				return
			}
		}
	}
	wg.Add(2)
	go pump(backend, client)
	go pump(client, backend)
	wg.Wait()
}
