// Package chaos is the fault-injection harness behind `loadgen -chaos`:
// seeded, randomized-but-reproducible fault schedules against a live
// replicated agentd fleet, with the invariants the self-healing story
// promises checked after every event.
//
// The harness owns three fault primitives:
//
//   - Proc: a spawned daemon process it can SIGKILL (crash without
//     flushing), SIGSTOP/SIGCONT (a stalled-but-alive leader — the
//     failure a connect-only health check cannot see), and restart.
//   - Proxy: a byte-level TCP relay in front of the gateway that tears
//     live connections mid-frame, so clients exercise the torn-tail
//     reconnect path rather than clean FIN shutdowns.
//   - Plan: a seeded schedule over those primitives. The same seed
//     replays the same schedule; the seed is printed so a CI failure is
//     reproducible locally with one flag.
//
// The Checker polls every member's /healthz control surface and holds
// the fleet to the invariants that make the chaos run a proof rather
// than a stress test: at most one serving leader at any probe, exactly
// one once the fleet has settled after an event, per-member replication
// generations that never move backwards, and — at the final quiesced
// barrier — bitwise-identical weight checksums across the group
// (/checksums). Token resumption and protocol-error counting live with
// the load driver (cmd/loadgen), which owns the client sessions.
package chaos

import (
	"math/rand"
	"time"
)

// Kind is one fault class in a schedule.
type Kind int

const (
	// KillLeader SIGKILLs the current leader (no flush, no final
	// snapshot), waits for the gateway to fail over, then restarts the
	// dead member with its ordinary leader flags — the restarted stray
	// must be demoted and rejoined by the gateway, not by an operator.
	KillLeader Kind = iota
	// StallLeader SIGSTOPs the current leader for Stall: the kernel keeps
	// completing TCP handshakes while the process answers nothing, so
	// only a request-level health deadline can declare it dead. After the
	// failover the process is SIGCONTed and must be healed back in as a
	// follower.
	StallLeader
	// TearClients severs every client connection flowing through the
	// harness proxy mid-byte, and arms a mid-frame tear on the next
	// connection. Sessions must reconnect and resume with zero protocol
	// errors.
	TearClients
)

// String names the fault for logs.
func (k Kind) String() string {
	switch k {
	case KillLeader:
		return "kill-leader"
	case StallLeader:
		return "stall-leader"
	case TearClients:
		return "tear-clients"
	default:
		return "unknown"
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Stall is how long a StallLeader event holds the process stopped;
	// zero for other kinds.
	Stall time.Duration
}

// Plan builds a seeded fault schedule: the base set every run must
// contain — two leader kills (two full failovers plus two automatic
// rejoins of the restarted members), one stall (the failure mode that
// distinguishes request-level liveness from connect-level), and one
// client-side tear — plus extra additional random events, shuffled
// deterministically. Stall durations are drawn from [minStall,
// maxStall]. The same (seed, extra, minStall, maxStall) always yields
// the same schedule.
func Plan(seed int64, extra int, minStall, maxStall time.Duration) []Event {
	rng := rand.New(rand.NewSource(seed))
	stall := func() time.Duration {
		if maxStall <= minStall {
			return minStall
		}
		return minStall + time.Duration(rng.Int63n(int64(maxStall-minStall)+1))
	}
	events := []Event{
		{Kind: KillLeader},
		{Kind: KillLeader},
		{Kind: StallLeader, Stall: stall()},
		{Kind: TearClients},
	}
	for i := 0; i < extra; i++ {
		switch rng.Intn(3) {
		case 0:
			events = append(events, Event{Kind: KillLeader})
		case 1:
			events = append(events, Event{Kind: StallLeader, Stall: stall()})
		default:
			events = append(events, Event{Kind: TearClients})
		}
	}
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	return events
}
