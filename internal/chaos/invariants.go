package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Member is one fleet member's control surface, as the checker sees it.
type Member struct {
	Name   string
	Health string // host:port of the daemon's HTTP control surface
}

// Health is one /healthz probe result. A member that did not answer has
// OK false and zero values everywhere else.
type Health struct {
	OK         bool
	Role       string // "leader", "replica", "demoted"
	Generation int64
	ReplLag    int64
}

// Checker polls the members and enforces the run's structural
// invariants. It is the difference between a chaos run and a stress
// test: every fault is followed by a Settle that proves the fleet
// healed itself, and a generation regression at any probe fails the run
// immediately — monotone generations are what make "exactly one leader"
// meaningful across failovers.
type Checker struct {
	Members []Member
	Logf    func(string, ...any)

	client  *http.Client
	lastGen map[string]int64
}

// NewChecker builds a checker over members.
func NewChecker(members []Member, logf func(string, ...any)) *Checker {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Checker{
		Members: members,
		Logf:    logf,
		client:  &http.Client{Timeout: 2 * time.Second},
		lastGen: map[string]int64{},
	}
}

// Probe GETs one member's /healthz.
func (c *Checker) Probe(m Member) Health {
	resp, err := c.client.Get("http://" + m.Health + "/healthz")
	if err != nil {
		return Health{}
	}
	defer resp.Body.Close()
	var body struct {
		Role       string `json:"role"`
		Generation int64  `json:"generation"`
		ReplLag    int64  `json:"repl_lag_records"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err != nil {
		return Health{}
	}
	return Health{
		OK:         resp.StatusCode == http.StatusOK,
		Role:       body.Role,
		Generation: body.Generation,
		ReplLag:    body.ReplLag,
	}
}

// probeAll probes every member and enforces generation monotonicity: a
// member whose generation moved backwards since any earlier probe is a
// split-generation bug, terminal for the run.
func (c *Checker) probeAll() (map[string]Health, error) {
	hs := make(map[string]Health, len(c.Members))
	for _, m := range c.Members {
		h := c.Probe(m)
		hs[m.Name] = h
		if !h.OK {
			continue
		}
		if last, seen := c.lastGen[m.Name]; seen && h.Generation < last {
			return hs, fmt.Errorf("chaos: generation regressed on %s: %d -> %d", m.Name, last, h.Generation)
		}
		c.lastGen[m.Name] = h.Generation
	}
	return hs, nil
}

// describe formats a probe map for error messages, sorted by name.
func describe(hs map[string]Health) string {
	names := make([]string, 0, len(hs))
	for n := range hs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		h := hs[n]
		if !h.OK {
			fmt.Fprintf(&b, "%s=down ", n)
			continue
		}
		fmt.Fprintf(&b, "%s=%s(gen %d, lag %d) ", n, h.Role, h.Generation, h.ReplLag)
	}
	return strings.TrimSpace(b.String())
}

// Settle waits until the fleet has converged after a fault: exactly one
// responding member is the leader and every other responding member is
// an unpromoted replica — no demoted stragglers, no second leader.
// Generations are checked at every poll. Members that do not respond
// (killed, stalled) are excluded; the caller decides whether that is
// expected. Returns the settled leader.
func (c *Checker) Settle(ctx context.Context, timeout time.Duration) (Member, error) {
	deadline := time.Now().Add(timeout)
	var last map[string]Health
	for time.Now().Before(deadline) && ctx.Err() == nil {
		hs, err := c.probeAll()
		if err != nil {
			return Member{}, err
		}
		last = hs
		leaders := 0
		var leader Member
		settled := true
		for _, m := range c.Members {
			h := hs[m.Name]
			if !h.OK {
				continue
			}
			switch h.Role {
			case "leader":
				leaders++
				leader = m
			case "replica":
			default:
				settled = false // demoted (or unknown): healing not finished
			}
		}
		if settled && leaders == 1 {
			return leader, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ctx.Err() != nil {
		return Member{}, ctx.Err()
	}
	return Member{}, fmt.Errorf("chaos: fleet did not settle within %v: %s", timeout, describe(last))
}

// WaitRole waits until one member responds with the wanted role —
// "replica" after a heal, "leader" after a promotion. Generation
// monotonicity is enforced along the way.
func (c *Checker) WaitRole(ctx context.Context, name, role string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var member *Member
	for i := range c.Members {
		if c.Members[i].Name == name {
			member = &c.Members[i]
		}
	}
	if member == nil {
		return fmt.Errorf("chaos: unknown member %q", name)
	}
	var last Health
	for time.Now().Before(deadline) && ctx.Err() == nil {
		hs, err := c.probeAll()
		if err != nil {
			return err
		}
		last = hs[name]
		if last.OK && last.Role == role {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("chaos: %s never reached role %q within %v (last: ok=%v role=%q)",
		name, role, timeout, last.OK, last.Role)
}

// Checksums fetches one member's /checksums: live trainer sums and the
// sums of the last snapshot barrier it captured or applied, per model
// key, as %016x strings.
func (c *Checker) Checksums(m Member) (live, snapshot map[string][2]string, err error) {
	resp, err := c.client.Get("http://" + m.Health + "/checksums")
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("chaos: %s /checksums: status %d", m.Name, resp.StatusCode)
	}
	var body struct {
		Live     map[string][2]string `json:"live"`
		Snapshot map[string][2]string `json:"snapshot"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return nil, nil, err
	}
	return body.Live, body.Snapshot, nil
}

// PostControl POSTs a control path (/snapshot, /promote, ...) to m.
func (c *Checker) PostControl(m Member, path string) error {
	resp, err := c.client.Post("http://"+m.Health+path, "", nil)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: %s %s: status %d: %s", m.Name, path, resp.StatusCode, body)
	}
	return nil
}

// WaitConverged drives the final bitwise-convergence barrier: POST
// /snapshot on the leader, then wait until every follower in members
// (responding members other than the leader) reports snapshot sums
// equal to the leader's AND live sums equal to its own snapshot sums —
// i.e. the barrier propagated byte-exactly and nothing trained against
// it. The leader's live sums are deliberately NOT compared: its trainer
// keeps moving after the barrier.
func (c *Checker) WaitConverged(ctx context.Context, leader Member, timeout time.Duration) error {
	if err := c.PostControl(leader, "/snapshot"); err != nil {
		return fmt.Errorf("chaos: snapshot barrier: %w", err)
	}
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) && ctx.Err() == nil {
		lastErr = c.convergedOnce(leader)
		if lastErr == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("chaos: group never converged within %v: %w", timeout, lastErr)
}

func (c *Checker) convergedOnce(leader Member) error {
	_, leaderSnap, err := c.Checksums(leader)
	if err != nil {
		return err
	}
	if len(leaderSnap) == 0 {
		return fmt.Errorf("leader %s has no snapshot checksums", leader.Name)
	}
	checked := 0
	for _, m := range c.Members {
		if m.Name == leader.Name {
			continue
		}
		h := c.Probe(m)
		if !h.OK || h.Role != "replica" {
			continue // down or not following; not part of the barrier
		}
		live, snap, err := c.Checksums(m)
		if err != nil {
			return err
		}
		for key, want := range leaderSnap {
			if got := snap[key]; got != want {
				return fmt.Errorf("%s snapshot sums for %s = %v, leader's barrier %v", m.Name, key, got, want)
			}
			if got := live[key]; got != want {
				return fmt.Errorf("%s live sums for %s = %v diverged from the barrier %v", m.Name, key, got, want)
			}
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no responding follower to check against leader %s", leader.Name)
	}
	return nil
}
