package durable

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TailHandler receives what the tailer verified: whole snapshots and
// individual WAL records, in stream order. Both run on the tailer's
// goroutine; an error from either aborts the connection (the tailer
// reconnects and the leader re-ships from the mirror's position, so apply
// must be idempotent — which the generation-guarded replay path is).
type TailHandler interface {
	// ApplySnapshot delivers a shipped snapshot. reset=true means the
	// follower could not resume (its state must be rebuilt from the
	// snapshot alone); reset=false is a compaction marker — the records
	// the snapshot covers were already applied, only bookkeeping moves.
	ApplySnapshot(snap *Snapshot, reset bool) error
	// ApplyRecord delivers one CRC-verified WAL record.
	ApplyRecord(rec *Record) error
}

// TailConfig configures a Tailer.
type TailConfig struct {
	Dir     string // mirror data directory
	Addr    string // leader's replication listen address
	Handler TailHandler

	// Dial overrides the leader connection (tests); default is a TCP dial
	// of Addr.
	Dial func(ctx context.Context) (net.Conn, error)

	// BaseBackoff/MaxBackoff bound the reconnect schedule (defaults
	// 50ms/2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	Logf func(format string, args ...any)

	Applied      Counter // records applied
	SnapsApplied Counter // snapshots applied (resets + compaction markers)
	Reconnects   Counter // connection (re)establishments
	SegsReceived Counter // seg frames received
	Lag          Gauge   // leader flushed recs − applied recs
	Gen          Gauge   // newest leader generation accepted
}

// Tailer is the follower side of replication: it keeps a byte-exact
// mirror of the leader's data directory (same snap-/wal- file naming, so
// the mirror is itself a valid data dir that durable.Open can open at
// promotion or after a follower restart) while feeding every verified
// record through the handler into warm state.
//
// Ordering: mirror bytes hit the OS before the handler runs, so on a
// follower crash the mirror is always at or ahead of what warm state saw
// — the restart warms from the mirror and resumes tailing from its
// position, and re-shipped records replay as no-ops.
type Tailer struct {
	cfg TailConfig
	gen uint64 // newest leader generation seen (persisted in Dir)

	applied    atomic.Uint64 // lifetime records applied (snapshot base included)
	leader     atomic.Uint64 // leader's flushed recs, from frame metadata
	seg        uint64        // mirror position: current segment
	off        int64         // mirror position: bytes into it
	snapSeq    uint64        // mirror's newest snapshot
	f          *os.File      // open mirror segment
	stopping   atomic.Bool
	progressed atomic.Bool // a frame was applied on the current connection

	connMu sync.Mutex // guards conn and addr against Stop/Retarget
	conn   net.Conn
	addr   string // current leader address (Retarget moves it)
}

// NewTailer prepares a tailer over an existing mirror state. st is the
// mirror's scanned position (from Recover on Dir); the live segment's
// torn tail, if any, is truncated so appended bytes continue a clean
// frame sequence.
func NewTailer(cfg TailConfig, st DirState) (*Tailer, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if fi, err := os.Stat(walPath(cfg.Dir, st.WalSeq)); err == nil && fi.Size() > st.WalOff {
		if err := os.Truncate(walPath(cfg.Dir, st.WalSeq), st.WalOff); err != nil {
			return nil, fmt.Errorf("durable: truncate mirror torn tail: %w", err)
		}
	}
	t := &Tailer{cfg: cfg, gen: ReadGen(cfg.Dir), seg: st.WalSeq, off: st.WalOff, snapSeq: st.SnapSeq, addr: cfg.Addr}
	t.applied.Store(st.Recs)
	if cfg.Gen != nil {
		cfg.Gen.Set(int64(t.gen))
	}
	if t.cfg.Dial == nil {
		t.cfg.Dial = func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", t.Addr())
		}
	}
	return t, nil
}

// Addr returns the leader address the tailer currently (re)connects to.
func (t *Tailer) Addr() string {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	return t.addr
}

// Retarget points the tailer at a new leader address — after a failover,
// surviving followers move to the promoted node this way. The current
// connection, if any, is closed so the switch takes effect immediately;
// the reconnect hello carries the mirror position, so the new leader
// resumes shipping exactly where the old one stopped.
func (t *Tailer) Retarget(addr string) {
	t.connMu.Lock()
	t.addr = addr
	if t.conn != nil {
		t.conn.Close()
	}
	t.connMu.Unlock()
}

// Pos returns the applied position (mirror segment/offset, lifetime
// records).
func (t *Tailer) Pos() Position {
	return Position{Seg: t.seg, Off: t.off, Recs: t.applied.Load()}
}

// AppliedRecs returns the lifetime count of records this follower has
// applied (snapshot bases included).
func (t *Tailer) AppliedRecs() uint64 { return t.applied.Load() }

// LeaderRecs returns the leader's last-announced flushed record count;
// lag in records is LeaderRecs − AppliedRecs.
func (t *Tailer) LeaderRecs() uint64 { return t.leader.Load() }

// Gen returns the newest leader generation this tailer has accepted.
func (t *Tailer) Gen() uint64 { return t.gen }

// Stop makes Run return after the in-flight frame finishes applying.
// Frames are applied whole (mirror + warm state together), so a stopped
// tailer's warm state always matches its mirror — the promotion
// invariant.
func (t *Tailer) Stop() {
	t.stopping.Store(true)
	t.connMu.Lock()
	if t.conn != nil {
		t.conn.Close()
	}
	t.connMu.Unlock()
}

// errStaleLeader marks a terminal refusal: the dialed leader's generation
// predates one this mirror has already followed. Retrying cannot help —
// a generation never grows back.
var errStaleLeader = fmt.Errorf("durable: leader generation is stale for this mirror")

// Run tails the leader until ctx is cancelled, Stop is called, or the
// leader turns out to be generation-stale. Connection failures reconnect
// with backoff; the hello carries the mirror position so the leader
// re-ships only what is missing.
func (t *Tailer) Run(ctx context.Context) error {
	// A live leader that has nothing to ship leaves the tailer parked in a
	// blocking read, where ctx cancellation alone cannot reach it. Stop
	// severs the in-flight connection, so wiring it to ctx makes drain
	// prompt even when the leader is healthy and idle.
	unhook := context.AfterFunc(ctx, t.Stop)
	defer unhook()
	defer func() {
		if t.f != nil {
			_ = t.f.Sync() // best-effort: the mirror is re-validated on reconnect
			_ = t.f.Close()
			t.f = nil
		}
	}()
	backoff := t.cfg.BaseBackoff
	for {
		if ctx.Err() != nil || t.stopping.Load() {
			return nil
		}
		t.progressed.Store(false)
		err := t.tailOnce(ctx)
		if t.stopping.Load() || ctx.Err() != nil {
			return nil
		}
		if err == errStaleLeader {
			return err
		}
		if t.progressed.Load() {
			// The connection did useful work, so this failure is a fresh
			// incident, not a continuation of the last one: restart the
			// schedule. Without the reset, a few early failures would tax
			// every later reconnect (torn-chunk resyncs included) with
			// MaxBackoff forever.
			backoff = t.cfg.BaseBackoff
		}
		if err != nil {
			t.cfg.Logf("durable: tail %s: %v (reconnecting in %v)", t.Addr(), err, backoff)
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return nil
		}
		if backoff *= 2; backoff > t.cfg.MaxBackoff {
			backoff = t.cfg.MaxBackoff
		}
	}
}

func (t *Tailer) tailOnce(ctx context.Context) error {
	conn, err := t.cfg.Dial(ctx)
	if err != nil {
		return err
	}
	t.connMu.Lock()
	t.conn = conn
	stopped := t.stopping.Load()
	t.connMu.Unlock()
	if stopped {
		conn.Close()
		return nil
	}
	defer func() {
		t.connMu.Lock()
		t.conn = nil
		t.connMu.Unlock()
		conn.Close()
	}()
	if t.cfg.Reconnects != nil {
		t.cfg.Reconnects.Add(1)
	}

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 4096)
	hello := shipFrame{T: "hello", Gen: t.gen, Snap: t.snapSeq, Wal: t.seg, Off: t.off, Recs: t.applied.Load()}
	if err := writeFrame(bw, &hello); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	reply, err := readFrame(br)
	if err != nil {
		return err
	}
	switch reply.T {
	case "gen":
		if reply.Gen < t.gen {
			return errStaleLeader
		}
		if reply.Gen > t.gen {
			t.gen = reply.Gen
			if err := WriteGen(t.cfg.Dir, t.gen); err != nil {
				return err
			}
			if t.cfg.Gen != nil {
				t.cfg.Gen.Set(int64(t.gen))
			}
		}
	case "err":
		return fmt.Errorf("leader refused: %s", reply.Msg)
	default:
		return fmt.Errorf("unexpected %q reply to hello", reply.T)
	}

	for {
		fr, err := readFrame(br)
		if err != nil {
			if t.stopping.Load() {
				return nil
			}
			return err
		}
		switch fr.T {
		case "seg":
			if err := t.applySeg(fr, br); err != nil {
				return err
			}
		case "snap":
			if err := t.applySnap(fr, br); err != nil {
				return err
			}
		case "pos":
			t.leader.Store(fr.Recs)
			t.updateLag()
		default:
			return fmt.Errorf("unexpected frame %q", fr.T)
		}
		t.progressed.Store(true)
		// Ack what has been applied; the leader drains these to know the
		// follower is alive and caught up.
		ack := shipFrame{T: "ack", Wal: t.seg, Off: t.off, Recs: t.applied.Load()}
		if err := writeFrame(bw, &ack); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// jitter spreads a backoff sleep over [d/2, d]: a leader death disconnects
// every follower of the group at the same instant, and without jitter
// their reconnect schedules stay phase-locked — each retry wave hits the
// promoted node simultaneously (thundering herd) instead of spreading
// over the window.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// ResetMirror clears a data directory's snapshots and WAL segments while
// keeping the replication generation file, so the next tailer hello
// carries position zero under the generations this mirror has already
// followed — the leader answers with a full reset snapshot (the lagged-
// follower resync path) and the generation guard still refuses a stale
// leader. Rejoin uses it: a deposed leader's local history diverged at
// the failover and must not be resumed from.
func ResetMirror(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if n := e.Name(); strings.HasPrefix(n, "snap-") || strings.HasPrefix(n, "wal-") {
			if err := os.Remove(filepath.Join(dir, n)); err != nil {
				return err
			}
		}
	}
	return syncDir(dir)
}

func readFrame(br *bufio.Reader) (*shipFrame, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	fr := &shipFrame{}
	if err := json.Unmarshal(line, fr); err != nil {
		return nil, fmt.Errorf("bad frame %.80q: %w", line, err)
	}
	return fr, nil
}

// applySeg verifies and applies one shipped byte range: CRC-scan the
// chunk, mirror the intact prefix, then run each record through the
// handler. A torn tail inside the chunk (leader died mid-frame, proxy
// mangled bytes) drops the unverified remainder and forces a reconnect —
// the hello then resumes from exactly the last intact frame.
func (t *Tailer) applySeg(fr *shipFrame, br *bufio.Reader) error {
	switch {
	case fr.Seq == t.seg && fr.Off == t.off:
		// contiguous: the common case
	case fr.Seq == t.seg+1 && fr.Off == 0 && fr.Seq > t.snapSeq:
		// previous segment sealed without a compaction marker (the leader
		// only retains its newest snapshot); advance the mirror
		if err := t.closeSeg(); err != nil {
			return err
		}
		t.seg, t.off = fr.Seq, 0
	default:
		// Backward or disjoint motion is refused outright: a stale or
		// confused leader must not rewind the mirror.
		return fmt.Errorf("refusing stale/disjoint seg frame wal-%d@%d (mirror at wal-%d@%d)", fr.Seq, fr.Off, t.seg, t.off)
	}
	// The soft cap (shipChunkMax) does not bound a frame here: a chunk
	// carrying one record frame larger than the cap is legal — only the
	// hard single-frame bound is enforced.
	if fr.Len < 0 || fr.Len > shipFrameMax {
		return fmt.Errorf("seg frame len %d out of range", fr.Len)
	}
	buf := make([]byte, fr.Len)
	if _, err := io.ReadFull(br, buf); err != nil {
		return err
	}
	if t.cfg.SegsReceived != nil {
		t.cfg.SegsReceived.Add(1)
	}
	recs, validLen, truncated := scanWALBytes(buf)
	if validLen > 0 {
		if err := t.mirrorWrite(buf[:validLen]); err != nil {
			return err
		}
		for _, r := range recs {
			if err := t.cfg.Handler.ApplyRecord(r); err != nil {
				return fmt.Errorf("apply record: %w", err)
			}
		}
		t.off += validLen
		t.applied.Add(uint64(len(recs)))
		t.progressed.Store(true) // even a torn chunk's intact prefix is progress
		if t.cfg.Applied != nil {
			t.cfg.Applied.Add(int64(len(recs)))
		}
	}
	t.leader.Store(fr.LRecs)
	t.updateLag()
	if truncated {
		return fmt.Errorf("torn frame inside shipped chunk at wal-%d@%d; dropping unverified tail and resyncing", t.seg, t.off)
	}
	return nil
}

// applySnap receives a shipped snapshot: mirror it atomically, hand it to
// the handler, and compact/reposition the mirror exactly as the leader's
// rotation did.
func (t *Tailer) applySnap(fr *shipFrame, br *bufio.Reader) error {
	if fr.Len <= 0 || fr.Len > 1<<31 {
		return fmt.Errorf("snap frame len %d out of range", fr.Len)
	}
	buf := make([]byte, fr.Len)
	if _, err := io.ReadFull(br, buf); err != nil {
		return err
	}
	if !fr.Reset && fr.Seq < t.snapSeq {
		return fmt.Errorf("refusing stale snapshot snap-%d (mirror at snap-%d)", fr.Seq, t.snapSeq)
	}
	snap, err := parseSnapshot(buf)
	if err != nil {
		return fmt.Errorf("shipped snapshot: %w", err)
	}
	if err := t.closeSeg(); err != nil {
		return err
	}
	if fr.Reset {
		// The mirror's history is useless (too far behind to resume):
		// clear it before installing the snapshot.
		entries, err := os.ReadDir(t.cfg.Dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if n := e.Name(); strings.HasPrefix(n, "snap-") || strings.HasPrefix(n, "wal-") {
				os.Remove(filepath.Join(t.cfg.Dir, n))
			}
		}
	}
	if err := writeSnapshotBytes(snapPath(t.cfg.Dir, fr.Seq), buf); err != nil {
		return err
	}
	if err := t.cfg.Handler.ApplySnapshot(snap, fr.Reset); err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	// Compact the mirror like the leader's rotation: superseded segments
	// and the previous snapshot go away.
	for seq := fr.Seq; seq > 0 && seq+8 > fr.Seq; seq-- {
		os.Remove(walPath(t.cfg.Dir, seq))
	}
	if t.snapSeq > 0 && t.snapSeq != fr.Seq {
		os.Remove(snapPath(t.cfg.Dir, t.snapSeq))
	}
	syncDir(t.cfg.Dir)
	t.snapSeq = fr.Seq
	t.seg, t.off = fr.Seq+1, 0
	t.applied.Store(snap.Recs)
	t.leader.Store(fr.LRecs)
	t.updateLag()
	if t.cfg.SnapsApplied != nil {
		t.cfg.SnapsApplied.Add(1)
	}
	return nil
}

// mirrorWrite appends verified bytes to the mirror's current segment.
// Plain OS writes, no per-chunk fsync: the mirror's durability window is
// the follower process's life, which is the same window its warm state
// lives in — Stop/promotion syncs before handing the dir to durable.Open.
func (t *Tailer) mirrorWrite(b []byte) error {
	if t.f == nil {
		f, err := os.OpenFile(walPath(t.cfg.Dir, t.seg), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		t.f = f
	}
	_, err := t.f.WriteAt(b, t.off)
	return err
}

func (t *Tailer) closeSeg() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Sync()
	if cerr := t.f.Close(); err == nil {
		err = cerr
	}
	t.f = nil
	return err
}

func (t *Tailer) updateLag() {
	if t.cfg.Lag == nil {
		return
	}
	lag := int64(t.leader.Load()) - int64(t.applied.Load())
	if lag < 0 {
		lag = 0
	}
	t.cfg.Lag.Set(lag)
}

// writeSnapshotBytes mirrors already-encoded snapshot bytes atomically
// (tmp, fsync, rename, dir fsync) — the same discipline writeSnapshot
// applies to locally captured snapshots.
func writeSnapshotBytes(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}
