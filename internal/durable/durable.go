// Package durable is the crash-safe persistence layer for the serving
// daemon: an append-only, CRC-framed, NDJSON write-ahead log of session
// lifecycle events and distilled transitions, periodically compacted into
// an atomic snapshot of the full serving state (session table, per-model
// replay shards, learned weights). Recovery replays the WAL over the
// newest snapshot, so a restarted daemon accepts the resumption tokens it
// issued before the crash and keeps the weights it learned.
//
// Layout of a data directory:
//
//	snap-<seq>.json   newest complete snapshot (atomic tmp+rename)
//	wal-<seq>.log     the WAL segment opened after snap-<seq-1>
//
// One record per line: "crc32c<space>json\n", where the CRC covers the
// JSON payload bytes. The framing is what recovery trusts: a torn tail
// (power cut mid-append), a partial record, or trailing garbage fails its
// CRC and truncates the log at the last intact record instead of
// poisoning the replay. Records carry full per-session state (not
// deltas) plus monotone generation / write-sequence numbers, so replaying
// a record the snapshot already covers is a no-op — the property that
// makes the snapshot cut safe to take concurrently with appends.
//
// All appends go through a buffered asynchronous writer (the daemon's
// batch loop and trainer never block on fsync); the fsync interval bounds
// how much acknowledged state a crash can lose. Snapshots are serialized
// through the same writer, so a snapshot always sits at a record boundary.
package durable

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/rl"
)

// SnapshotVersion is the on-disk snapshot format version. Loading any
// other version is a hard, explicit error: silently misreading persisted
// learning state would be far worse than refusing to start.
//
// Version history:
//
//	1  PR 5: sessions, replay shards, weight blobs.
//	2  PR 6: + per-model Adam optimizer moments (a v1 reader would
//	   silently reset every trainer's moment estimates) and the lifetime
//	   record count at the snapshot cut (replication lag accounting).
const SnapshotVersion = 2

// SessionKey is a model identity — the topology shape sessions of that
// model share.
type SessionKey struct {
	N      int `json:"n"`
	M      int `json:"m"`
	Spouts int `json:"s"`
}

func (k SessionKey) String() string { return fmt.Sprintf("%dx%d/%d", k.N, k.M, k.Spouts) }

// F64s is a []float64 that serializes as base64 of the raw little-endian
// IEEE-754 bits instead of decimal JSON numbers. Two reasons: exactness
// is structural (every bit pattern round-trips, so recovered state is
// bitwise state, no shortest-float reasoning needed), and encoding cost —
// a WAL record is mostly float vectors, and encoding them as bytes keeps
// the async writer far off the serving path's critical core.
type F64s []float64

// MarshalJSON implements json.Marshaler.
func (f F64s) MarshalJSON() ([]byte, error) {
	raw := make([]byte, 8*len(f))
	for i, v := range f {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	out := make([]byte, 2+base64.StdEncoding.EncodedLen(len(raw)))
	out[0] = '"'
	base64.StdEncoding.Encode(out[1:], raw)
	out[len(out)-1] = '"'
	return out, nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64s) UnmarshalJSON(data []byte) error {
	var raw []byte
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if len(raw)%8 != 0 {
		return fmt.Errorf("durable: float vector has %d bytes, not a multiple of 8", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	*f = out
	return nil
}

// TransitionRec is one distilled (s, a, r, s′) transition as journaled
// and snapshotted.
type TransitionRec struct {
	S  F64s    `json:"s"`
	A  F64s    `json:"a"`
	R  float64 `json:"r"`
	NS F64s    `json:"ns"`
}

// FromTransition converts an rl.Transition, sharing its backing arrays
// (stored transitions are immutable).
func FromTransition(t rl.Transition) TransitionRec {
	return TransitionRec{S: t.State, A: t.Action, R: t.Reward, NS: t.NextState}
}

// ToTransition converts back to the rl form, sharing backing arrays.
func (t TransitionRec) ToTransition() rl.Transition {
	return rl.Transition{State: t.S, Action: t.A, Reward: t.R, NextState: t.NS}
}

// Record types.
const (
	// RecEpoch carries one session's resumable state after a served
	// decision epoch. The heavy vectors are deliberately NOT journaled:
	// the state encoding is a pure function of the previous epoch's
	// solution and this epoch's workload, and the distilled transition's
	// vectors are the previous and current state encodings — so the
	// record carries only the scalars, the solution, the raw workload and
	// the normalized reward, and recovery re-derives the rest by running
	// the same encoding the live path ran. That cuts the per-epoch WAL
	// cost by ~8× (the difference between ~6% and ~40% serving overhead
	// on one core) without losing a bit: the derivation is exactly the
	// live computation, so recovered state is still bitwise.
	RecEpoch = "epoch"
	// RecEvict marks a session's state dropped from the table (TTL sweep
	// or capacity eviction), so recovery does not resurrect it.
	RecEvict = "evict"
)

// Record is one WAL entry.
type Record struct {
	T     string     `json:"t"`
	Token string     `json:"tok"`
	Key   SessionKey `json:"k"`
	// Gen is the session table's monotone mutation counter at the time of
	// this record. Replay applies a record only when it is newer than the
	// state already restored (from the snapshot or an earlier record);
	// evictions likewise only drop state older than themselves, so an
	// evict must never kill a later re-creation under the same token.
	Gen uint64 `json:"g"`

	// Per-session resumable state (RecEpoch). Scalar floats travel as
	// IEEE-754 bit patterns in integer fields (math.Float64bits): integer
	// literals encode/decode faster than floats and every bit pattern —
	// including non-finite ones a hostile client might provoke — stays
	// representable JSON.
	Epoch        int    `json:"e,omitempty"`
	Assign       []int  `json:"a,omitempty"`
	LearnEpoch   int    `json:"le,omitempty"`
	RNGDraws     uint64 `json:"rd,omitempty"`
	NormMeanBits uint64 `json:"nm,omitempty"`
	NormVarBits  uint64 `json:"nv,omitempty"`
	NormN        int    `json:"nn,omitempty"`

	// Workload is the epoch's measured spout rates (learning mode only):
	// together with the previous record's Assign it re-derives the state
	// encoding s_t that the live path stored as the pending transition.
	Workload F64s `json:"w,omitempty"`
	// TransSeq, when non-zero, says this epoch distilled a transition
	// into the session's replay shard (its write sequence, for deduping
	// against the snapshot), with RewardBits as the stored normalized
	// reward; the transition's state/action vectors are re-derived from
	// the record chain.
	TransSeq   uint64 `json:"ts,omitempty"`
	RewardBits uint64 `json:"r,omitempty"`
}

// SessionSnap is one session's state inside a snapshot — the same fields
// an epoch record carries.
type SessionSnap struct {
	Token      string     `json:"tok"`
	Key        SessionKey `json:"k"`
	Gen        uint64     `json:"g"`
	Epoch      int        `json:"e"`
	Assign     []int      `json:"a"`
	LearnEpoch int        `json:"le,omitempty"`
	RNGDraws   uint64     `json:"rd,omitempty"`
	NormMean   float64    `json:"nm,omitempty"`
	NormVar    float64    `json:"nv,omitempty"`
	NormN      int        `json:"nn,omitempty"`
	PrevState  F64s       `json:"ps,omitempty"`
	PrevAssign []int      `json:"pa,omitempty"`
	HasPrev    bool       `json:"hp,omitempty"`
}

// ShardSnap is one replay shard: transitions oldest→newest plus the
// shard's write sequence.
type ShardSnap struct {
	Token string          `json:"tok"`
	Added uint64          `json:"added"`
	Trans []TransitionRec `json:"trans"`
}

// OptimSnap is one Adam optimizer's persisted trajectory: the step
// counter and the per-layer moment estimates, as F64s so every bit
// pattern round-trips. An absent OptimSnap (or one with T=0 and no
// moments) restores the "never stepped" state.
type OptimSnap struct {
	T  int    `json:"t"`
	MW []F64s `json:"mw,omitempty"`
	VW []F64s `json:"vw,omitempty"`
	MB []F64s `json:"mb,omitempty"`
	VB []F64s `json:"vb,omitempty"`
}

// ModelSnap is one learning model's state: the four network weight blobs
// (nn binary format), their checksums (verified on load — a snapshot
// whose weights do not hash to what was recorded is corrupt), the update
// count, the actor/critic optimizer moments, and the replay shards in
// sorted-token order.
type ModelSnap struct {
	Key       SessionKey  `json:"k"`
	Actor     []byte      `json:"actor"`
	Critic    []byte      `json:"critic"`
	ActorT    []byte      `json:"actor_t,omitempty"`
	CriticT   []byte      `json:"critic_t,omitempty"`
	ActorSum  uint64      `json:"actor_sum"`
	CriticSum uint64      `json:"critic_sum"`
	Updates   int         `json:"updates"`
	ActorOpt  *OptimSnap  `json:"actor_opt,omitempty"`
	CriticOpt *OptimSnap  `json:"critic_opt,omitempty"`
	Shards    []ShardSnap `json:"shards"`
}

// Snapshot is the full compacted serving state at one WAL cut.
type Snapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	// Seed is the serving seed the state was generated under. Session
	// exploration RNGs are derived from it, so recovering under a
	// different seed would silently change every recovered session's
	// exploration stream — refused instead.
	Seed    int64  `json:"seed"`
	NextGen uint64 `json:"next_gen"`
	// Recs is the lifetime count of WAL records ever written to this data
	// directory at the snapshot cut (records in segments the snapshot
	// supersedes included). It survives restarts — Open rebases its
	// counter on it — and is the unit the replication protocol measures
	// follower lag in.
	Recs     uint64        `json:"recs,omitempty"`
	Sessions []SessionSnap `json:"sessions"`
	Models   []ModelSnap   `json:"models"`
}

// Counter is the metric hook the log increments (wal_records, wal_bytes,
// wal_dropped, snapshots); the serving daemon passes its registry
// counters. A nil Counter field is simply not counted.
type Counter interface{ Add(n int64) }

// Gauge is the settable metric hook for instantaneous values (the
// replication layer's follower lag). A nil Gauge is simply not set.
type Gauge interface{ Set(v int64) }

// Metrics collects the log's counter hooks.
type Metrics struct {
	Records   Counter // records appended
	Bytes     Counter // bytes appended
	Dropped   Counter // records dropped because the async buffer was full
	Snapshots Counter // snapshots written
}

func (m Metrics) add(c Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}
