package durable

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// recHandler records everything the tailer verified, in apply order.
type recHandler struct {
	mu     sync.Mutex
	recs   []*Record
	snaps  []*Snapshot
	resets int
}

func (h *recHandler) ApplySnapshot(s *Snapshot, reset bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snaps = append(h.snaps, s)
	if reset {
		h.resets++
	}
	return nil
}

func (h *recHandler) ApplyRecord(r *Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recs = append(h.recs, r)
	return nil
}

func (h *recHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.recs)
}

func (h *recHandler) epochs() []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int, len(h.recs))
	for i, r := range h.recs {
		out[i] = r.Epoch
	}
	return out
}

func (h *recHandler) stats() (snaps, resets int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.snaps), h.resets
}

// startShip serves lg over a loopback listener and returns its address.
func startShip(t *testing.T, lg *Log, gen uint64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewShipServer(ShipConfig{Log: lg, Gen: gen, HeartbeatEvery: 10 * time.Millisecond})
	go ss.Serve(ln)
	t.Cleanup(func() {
		ln.Close()
		ss.Close()
	})
	return ln.Addr().String()
}

// startTail recovers dir's mirror state and runs a tailer against addr.
func startTail(t *testing.T, dir, addr string, h TailHandler) (*Tailer, chan error) {
	t.Helper()
	_, st, err := Recover(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: dir, Addr: addr, Handler: h,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tl.Run(context.Background()) }()
	t.Cleanup(tl.Stop)
	return tl, done
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShipTailLiveFollowAndRotation drives the full happy path: bulk
// catch-up from a cold connect, the live tail as the leader keeps
// flushing, a rotation while the follower is attached (the snapshot ships
// as a compaction marker), and post-rotation records — after which the
// follower's mirror is position-identical to the leader's directory and
// every record was applied exactly once, in order.
func TestShipTailLiveFollowAndRotation(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 20; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}

	addr := startShip(t, lg, 1)
	h := &recHandler{}
	tl, done := startTail(t, followerDir, addr, h)
	waitUntil(t, "bulk catch-up", func() bool { return tl.AppliedRecs() == 20 })

	// Live tail.
	for i := 20; i < 30; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "live tail", func() bool { return tl.AppliedRecs() == 30 })

	// Rotation while the follower is attached: the new snapshot ships as a
	// compaction marker, never as a reset.
	if err := lg.Snapshot(func() (*Snapshot, error) {
		return &Snapshot{Seed: 9, NextGen: 30}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "post-rotation records", func() bool { return tl.AppliedRecs() == 35 && h.count() == 35 })
	waitUntil(t, "leader position frame", func() bool { return tl.LeaderRecs() == 35 })

	if snaps, resets := h.stats(); snaps != 1 || resets != 0 {
		t.Fatalf("follower saw %d snapshots (%d resets); want exactly one compaction marker", snaps, resets)
	}
	for i, e := range h.epochs() {
		if e != i {
			t.Fatalf("record %d applied with epoch %d; stream order broken", i, e)
		}
	}

	tl.Stop()
	if err := <-done; err != nil {
		t.Fatalf("tailer: %v", err)
	}
	// The stopped mirror is a valid data dir at exactly the leader's
	// durable position.
	_, lst, err := Recover(leaderDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, fst, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fst != lst {
		t.Fatalf("mirror position %+v != leader position %+v", fst, lst)
	}
	frec, _, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if frec.Snapshot == nil || frec.Snapshot.Seed != 9 || len(frec.Records) != 5 {
		t.Fatalf("mirror recovers snapshot=%v records=%d; want the leader's snapshot + 5 tail records",
			frec.Snapshot, len(frec.Records))
	}
}

// TestShipResetsLaggedFollower: a follower whose position predates the
// leader's newest snapshot (here: a fresh one attaching after a rotation
// already deleted the early segments) cannot resume and is rebuilt from
// the snapshot — ApplySnapshot(reset) carries the base, and only the
// post-snapshot records stream as WAL frames.
func TestShipResetsLaggedFollower(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 10; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Snapshot(func() (*Snapshot, error) {
		return &Snapshot{Seed: 3, NextGen: 10}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}

	addr := startShip(t, lg, 1)
	h := &recHandler{}
	tl, _ := startTail(t, followerDir, addr, h)
	waitUntil(t, "reset + catch-up", func() bool { return tl.AppliedRecs() == 15 })

	if snaps, resets := h.stats(); snaps != 1 || resets != 1 {
		t.Fatalf("follower saw %d snapshots (%d resets); want exactly one reset", snaps, resets)
	}
	if h.snaps[0].Seed != 3 || h.snaps[0].Recs != 10 {
		t.Fatalf("reset snapshot came through as %+v", h.snaps[0])
	}
	if got := h.epochs(); len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Fatalf("streamed records %v; want exactly the post-snapshot tail 10..14", got)
	}
}

// TestShipRefusesFutureGenFollower: a leader must refuse a follower that
// has already followed a newer generation (the leader is the resurrected
// stale node). The follower's mirror is never rewound — it applies
// nothing and keeps retrying until an operator intervenes or a real
// leader appears.
func TestShipRefusesFutureGenFollower(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	lg.Append(testRecord(0))
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := WriteGen(followerDir, 5); err != nil {
		t.Fatal(err)
	}

	addr := startShip(t, lg, 1) // generation 1 < the follower's 5
	var recon countingCounter
	_, st, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: followerDir, Addr: addr, Handler: &recHandler{},
		BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		Reconnects: &recon,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tl.Run(context.Background()) }()
	waitUntil(t, "repeated refusals", func() bool { return recon.n.Load() >= 3 })
	if tl.AppliedRecs() != 0 {
		t.Fatalf("stale leader shipped %d records into a generation-5 mirror", tl.AppliedRecs())
	}
	tl.Stop()
	if err := <-done; err != nil {
		t.Fatalf("tailer: %v", err)
	}
}

// TestTailStaleLeaderGenTerminal: if a dialed leader somehow ACCEPTS the
// hello but announces a generation below what this mirror has already
// followed, the tailer treats it as terminal (retrying a generation that
// can never grow back is pointless) rather than reconnecting forever.
func TestTailStaleLeaderGenTerminal(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGen(dir, 5); err != nil {
		t.Fatal(err)
	}
	srv, cli := net.Pipe()
	defer srv.Close()
	_, st, err := Recover(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: dir, Addr: "pipe", Handler: &recHandler{},
		Dial: func(context.Context) (net.Conn, error) { return cli, nil },
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		br := bufio.NewReader(srv)
		if _, err := br.ReadBytes('\n'); err != nil {
			return
		}
		b, _ := json.Marshal(&shipFrame{T: "gen", Gen: 3})
		srv.Write(append(b, '\n'))
	}()
	if err := tl.Run(context.Background()); err != errStaleLeader {
		t.Fatalf("Run returned %v; want the terminal errStaleLeader", err)
	}
}

// TestTailRefusesDisjointSegFrames: a seg frame that moves the mirror
// backward, skips a segment, or leaves a byte gap is refused outright — a
// stale or confused leader must not be able to rewind or hole the mirror.
func TestTailRefusesDisjointSegFrames(t *testing.T) {
	for _, fr := range []*shipFrame{
		{T: "seg", Seq: 2, Off: 0},  // backward segment
		{T: "seg", Seq: 3, Off: 39}, // backward offset
		{T: "seg", Seq: 3, Off: 41}, // byte gap
		{T: "seg", Seq: 5, Off: 0},  // skipped segment
	} {
		tl := &Tailer{cfg: TailConfig{Dir: t.TempDir(), Handler: &recHandler{}}, seg: 3, off: 40}
		err := tl.applySeg(fr, bufio.NewReader(bytes.NewReader(nil)))
		if err == nil || !strings.Contains(err.Error(), "refusing stale/disjoint") {
			t.Fatalf("frame %+v: got %v; want a stale/disjoint refusal", fr, err)
		}
	}
}

// TestTailTornChunkAppliesIntactPrefix: a chunk whose tail fails CRC
// verification (leader died mid-frame, bytes mangled in transit) applies
// and mirrors exactly the intact frame prefix, then errors so the
// reconnect hello resumes from the last verified byte.
func TestTailTornChunkAppliesIntactPrefix(t *testing.T) {
	dir := t.TempDir()
	h := &recHandler{}
	tl := &Tailer{cfg: TailConfig{Dir: dir, Handler: h}, seg: 1, off: 0}
	var payload []byte
	var err error
	for i := 0; i < 2; i++ {
		if payload, err = appendRecord(payload, testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	valid := int64(len(payload))
	payload = append(payload, []byte("deadbeef torn mid-frame")...)

	err = tl.applySeg(&shipFrame{T: "seg", Seq: 1, Off: 0, Len: int64(len(payload))},
		bufio.NewReader(bytes.NewReader(payload)))
	if err == nil || !strings.Contains(err.Error(), "torn frame") {
		t.Fatalf("torn chunk returned %v; want a torn-frame resync error", err)
	}
	if h.count() != 2 || tl.off != valid || tl.AppliedRecs() != 2 {
		t.Fatalf("applied %d records, mirror at %d (want 2 records at %d)", h.count(), tl.off, valid)
	}
	fi, err := os.Stat(walPath(dir, 1))
	if err != nil || fi.Size() != valid {
		t.Fatalf("mirror segment holds %v bytes (err %v); the unverified tail must never hit disk", fi, err)
	}
}

// TestShipTailFollowerRestartResume: a stopped follower that restarts —
// even with a torn tail scribbled onto its mirror in between — truncates
// to the intact prefix, hellos with its position, and receives exactly
// the missing suffix: nothing is re-applied, nothing is skipped.
func TestShipTailFollowerRestartResume(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 10; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	addr := startShip(t, lg, 1)

	h1 := &recHandler{}
	tl1, done1 := startTail(t, followerDir, addr, h1)
	waitUntil(t, "first tailer catch-up", func() bool { return tl1.AppliedRecs() == 10 })
	tl1.Stop()
	if err := <-done1; err != nil {
		t.Fatal(err)
	}

	// The leader moves on while the follower is down; the follower's
	// mirror grows a torn tail (unsynced page the crash half-wrote).
	for i := 10; i < 20; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath(followerDir, 1), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("half-written torn tail")
	f.Close()

	h2 := &recHandler{}
	tl2, done2 := startTail(t, followerDir, addr, h2)
	waitUntil(t, "resumed catch-up", func() bool { return tl2.AppliedRecs() == 20 })
	if got := h2.epochs(); len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("restart re-shipped %v; want exactly the missed suffix 10..19", got)
	}
	tl2.Stop()
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	_, lst, err := Recover(leaderDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, fst, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fst != lst {
		t.Fatalf("mirror position %+v != leader position %+v", fst, lst)
	}
}

// TestLogBarrierBlocksUntilDrainNoStraddle pins the durability-loss fix:
// a barrier (Sync here; Snapshot and Close share the path) must drain the
// queue it joined — it cannot jump ahead of a full buffer — and every
// record the log ACCEPTED before the barrier returned is on disk
// afterwards, even when overflow was dropping records around it. A drop
// can therefore never straddle a barrier: what was dropped was never
// acknowledged, and what was acknowledged is durable.
func TestLogBarrierBlocksUntilDrainNoStraddle(t *testing.T) {
	dir := t.TempDir()
	var dropped countingCounter
	gate := make(chan struct{})
	lg, _, err := Open(dir, LogConfig{
		FsyncInterval: time.Hour, Buffer: 4,
		Metrics: Metrics{Dropped: &dropped},
		gate:    gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Park the writer: it dequeues this record, then blocks on the gate.
	lg.Append(testRecord(0))
	// Wait until the writer has actually dequeued it and parked — only a
	// parked writer keeps the ops queue full once overflowed. If the
	// overflow below ran first, the writer's eventual dequeue would free a
	// slot and let the blocking append slip in ahead of the stall.
	waitUntil(t, "writer parked at the gate", func() bool { return len(lg.ops) == 0 })
	// Overflow the 4-slot buffer behind the stall.
	appended := 0
	for dropped.n.Load() == 0 && appended < 1000 {
		appended++
		lg.Append(testRecord(appended))
	}
	if dropped.n.Load() == 0 {
		t.Fatal("could not overflow the buffer")
	}
	// A blocking append (eviction tombstone) and a sync barrier both queue
	// behind the stalled writer...
	abDone := make(chan bool, 1)
	go func() { abDone <- lg.AppendBlocking(&Record{T: RecEvict, Token: "tomb"}) }()
	syncDone := make(chan error, 1)
	go func() { syncDone <- lg.Sync() }()
	select {
	case <-abDone:
		t.Fatal("AppendBlocking completed while the writer was stalled")
	case err := <-syncDone:
		t.Fatalf("Sync returned %v while the writer was stalled — the barrier jumped the queue", err)
	case <-time.After(50 * time.Millisecond):
		// ...and neither completes until the writer drains.
	}
	close(gate)
	if !<-abDone {
		t.Fatal("AppendBlocking reported the log closed")
	}
	if err := <-syncDone; err != nil {
		t.Fatal(err)
	}
	// A final barrier covers the tombstone regardless of which side of the
	// first barrier it landed on, then an unflushed crash: everything the
	// log accepted must already be on disk.
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	lg.Crash()

	_, rec := openTest(t, dir)
	accepted := 1 + appended - int(dropped.n.Load()) + 1
	if len(rec.Records) != accepted {
		t.Fatalf("recovered %d records; parked 1 + appended %d − dropped %d + tombstone 1 = %d — a drop straddled a barrier",
			len(rec.Records), appended, dropped.n.Load(), accepted)
	}
	tomb := false
	for _, r := range rec.Records {
		if r.T == RecEvict && r.Token == "tomb" {
			tomb = true
		}
	}
	if !tomb {
		t.Fatal("the blocking-appended tombstone was dropped")
	}
}

// TestReadFrameChunkAligns pins the chunk-cut invariant: every chunk
// readFrameChunk returns ends on a record-frame boundary, and a frame
// larger than the soft cap ships whole instead of torn.
func TestReadFrameChunkAligns(t *testing.T) {
	dir := t.TempDir()
	var data []byte
	var err error
	for i := 0; i < 50; i++ {
		if data, err = appendRecord(data, testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := walPath(dir, 1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	limit := int64(len(data))
	var off int64
	total, chunks := 0, 0
	for off < limit {
		buf, err := readFrameChunk(f, off, limit, 256)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) == 0 || int64(len(buf)) > limit-off {
			t.Fatalf("chunk at %d has %d bytes", off, len(buf))
		}
		recs, validLen, truncated := scanWALBytes(buf)
		if truncated || validLen != int64(len(buf)) {
			t.Fatalf("chunk at %d cut mid-frame: %d bytes, %d valid", off, len(buf), validLen)
		}
		total += len(recs)
		chunks++
		off += int64(len(buf))
	}
	if total != 50 {
		t.Fatalf("chunks carried %d records, want 50", total)
	}
	if chunks < 10 {
		t.Fatalf("backlog shipped in %d chunks; the 256-byte cap never split it", chunks)
	}

	// A single frame bigger than the cap: the chunk grows to carry it whole.
	big := testRecord(0)
	big.Workload = make(F64s, 200) // frame far beyond the 256-byte cap
	bigData, err := appendRecord(nil, big)
	if err != nil {
		t.Fatal(err)
	}
	data2 := append([]byte{}, bigData...)
	for i := 1; i <= 40; i++ { // a long tail, so growth stops at a frame cut, not at EOF
		if data2, err = appendRecord(data2, testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	path2 := walPath(dir, 2)
	if err := os.WriteFile(path2, data2, 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(path2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	buf, err := readFrameChunk(f2, 0, int64(len(data2)), 256)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(buf)) < int64(len(bigData)) {
		t.Fatalf("oversize frame cut at %d bytes; the whole %d-byte frame must ship", len(buf), len(bigData))
	}
	recs, validLen, truncated := scanWALBytes(buf)
	if truncated || validLen != int64(len(buf)) || len(recs) == 0 {
		t.Fatalf("oversize chunk not frame-aligned: %d bytes, %d valid, %d records", len(buf), validLen, len(recs))
	}
	if len(recs[0].Workload) != 200 {
		t.Fatalf("first record of the grown chunk is not the oversize frame (workload %d)", len(recs[0].Workload))
	}
}

// TestShipTailBigBacklogSingleConnection: a catch-up backlog well past
// shipChunkMax — including one record whose frame alone exceeds the cap —
// streams over ONE connection. Before frame-aligned cuts, every chunk
// boundary landed mid-frame, each costing the follower a torn-tail
// reconnect (and a frame over the cap livelocked replication for good).
func TestShipTailBigBacklogSingleConnection(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 128; i++ {
		r := testRecord(i)
		r.Workload = make(F64s, 1024) // ~11 KiB per frame
		for j := range r.Workload {
			r.Workload[j] = float64(i*1024 + j)
		}
		lg.Append(r)
	}
	huge := testRecord(128)
	huge.Workload = make(F64s, 131072) // one frame ~1.4 MiB > shipChunkMax
	for j := range huge.Workload {
		huge.Workload[j] = float64(j) / 3
	}
	lg.Append(huge)
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}

	addr := startShip(t, lg, 1)
	var recon, segs countingCounter
	h := &recHandler{}
	_, st, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: followerDir, Addr: addr, Handler: h,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		Reconnects: &recon, SegsReceived: &segs,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tl.Run(context.Background()) }()
	waitUntil(t, "big-backlog catch-up", func() bool { return tl.AppliedRecs() == 129 })

	if got := recon.n.Load(); got != 1 {
		t.Fatalf("catch-up took %d connections; frame-aligned chunks need exactly 1 (no torn-tail resyncs)", got)
	}
	if got := segs.n.Load(); got < 2 {
		t.Fatalf("backlog arrived in %d chunk(s); the soft cap should have split it", got)
	}
	h.mu.Lock()
	last := h.recs[len(h.recs)-1]
	h.mu.Unlock()
	if len(last.Workload) != len(huge.Workload) || last.Workload[131071] != huge.Workload[131071] {
		t.Fatal("oversize record did not round-trip intact")
	}
	tl.Stop()
	if err := <-done; err != nil {
		t.Fatalf("tailer: %v", err)
	}
	_, lst, err := Recover(leaderDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, fst, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if fst != lst {
		t.Fatalf("mirror position %+v != leader position %+v", fst, lst)
	}
}

// TestTailBackoffResetsAfterProgress: dial failures drive the reconnect
// backoff toward MaxBackoff, but a connection that applies frames resets
// the schedule — the next disconnect reconnects at BaseBackoff, not at
// the accumulated maximum.
func TestTailBackoffResetsAfterProgress(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 5; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss := NewShipServer(ShipConfig{Log: lg, Gen: 1, HeartbeatEvery: 5 * time.Millisecond})
	go ss.Serve(ln)
	t.Cleanup(func() { ln.Close(); ss.Close() })

	var mu sync.Mutex
	var dials []time.Time
	const failures = 10 // enough doublings to pin backoff at MaxBackoff
	_, st, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: followerDir, Addr: ln.Addr().String(), Handler: &recHandler{},
		BaseBackoff: time.Millisecond, MaxBackoff: 300 * time.Millisecond,
		Dial: func(ctx context.Context) (net.Conn, error) {
			mu.Lock()
			dials = append(dials, time.Now())
			n := len(dials)
			mu.Unlock()
			if n <= failures {
				return nil, errSyntheticDial
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", ln.Addr().String())
		},
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	go tl.Run(context.Background())
	t.Cleanup(tl.Stop)
	waitUntil(t, "catch-up after injected dial failures", func() bool { return tl.AppliedRecs() == 5 })

	mu.Lock()
	pre := len(dials)
	mu.Unlock()
	tClose := time.Now()
	ss.Close() // sever the live connection; the tailer must come back fast
	waitUntil(t, "reconnect after sever", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(dials) > pre
	})
	mu.Lock()
	gap := dials[pre].Sub(tClose)
	mu.Unlock()
	if gap > 150*time.Millisecond {
		t.Fatalf("reconnect after progress waited %v; backoff was not reset toward BaseBackoff", gap)
	}
}

var errSyntheticDial = fmt.Errorf("synthetic dial failure")

// TestTailerRetargetSwitchesLeader: Retarget moves a live tailer to a new
// shipping address (a promoted node after failover); the reconnect hello
// resumes from the mirror position, so nothing is re-applied or lost.
func TestTailerRetargetSwitchesLeader(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	lg, _ := openTest(t, leaderDir)
	defer lg.Close()
	for i := 0; i < 10; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}

	// Two shipping endpoints over the same log stand in for the old and
	// the promoted leader (same history, same generation).
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ss1 := NewShipServer(ShipConfig{Log: lg, Gen: 1, HeartbeatEvery: 5 * time.Millisecond})
	go ss1.Serve(ln1)
	addr2 := startShip(t, lg, 1)

	h := &recHandler{}
	var recon countingCounter
	_, st, err := Recover(followerDir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTailer(TailConfig{
		Dir: followerDir, Addr: ln1.Addr().String(), Handler: h,
		BaseBackoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
		Reconnects: &recon,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tl.Run(context.Background()) }()
	t.Cleanup(tl.Stop)
	waitUntil(t, "catch-up on the first leader", func() bool { return tl.AppliedRecs() == 10 })

	tl.Retarget(addr2)
	ss1.Close() // the old endpoint is gone for good
	ln1.Close()
	if got := tl.Addr(); got != addr2 {
		t.Fatalf("Addr() = %q after Retarget, want %q", got, addr2)
	}
	for i := 10; i < 20; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "live tail from the new leader", func() bool { return tl.AppliedRecs() == 20 })
	if got := h.epochs(); len(got) != 20 || got[10] != 10 || got[19] != 19 {
		t.Fatalf("retarget re-applied or skipped records: epochs %v", got)
	}
	tl.Stop()
	if err := <-done; err != nil {
		t.Fatalf("tailer: %v", err)
	}
}
