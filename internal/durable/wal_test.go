package durable

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
)

func testRecord(i int) *Record {
	return &Record{
		T:            RecEpoch,
		Token:        fmt.Sprintf("tok-%d", i),
		Key:          SessionKey{N: 6, M: 3, Spouts: 2},
		Gen:          uint64(i + 1),
		Epoch:        i,
		Assign:       []int{0, 1, 2, 0, 1, 2},
		LearnEpoch:   i,
		RNGDraws:     uint64(3 * i),
		NormMeanBits: math.Float64bits(-42.5 + float64(i)),
		NormVarBits:  math.Float64bits(1.25),
		NormN:        i,
		Workload:     F64s{101.25, 87.5},
		TransSeq:     uint64(i),
		RewardBits:   math.Float64bits(-1.5),
	}
}

func encodeAll(t *testing.T, recs ...*Record) []byte {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		var err error
		buf, err = appendRecord(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// TestWALRoundTrip: framed records decode back to deep-equal values,
// including exact float bit patterns through the base64 F64s encoding.
func TestWALRoundTrip(t *testing.T) {
	recs := []*Record{testRecord(0), testRecord(1), testRecord(2)}
	// Bit patterns that decimal formatting mangles or loses: -0, denormals,
	// and values with no short decimal form.
	recs[1].Workload = F64s{math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.Pi, 1.0 / 3.0, math.MaxFloat64}
	data := encodeAll(t, recs...)

	got, validLen, truncated := scanWALBytes(data)
	if truncated {
		t.Fatal("clean log reported a truncated tail")
	}
	if validLen != int64(len(data)) {
		t.Fatalf("validLen %d, want %d", validLen, len(data))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d did not round trip:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
	for i, v := range recs[1].Workload {
		if math.Float64bits(got[1].Workload[i]) != math.Float64bits(v) {
			t.Fatalf("float bit pattern %d did not survive: %x vs %x", i, math.Float64bits(got[1].Workload[i]), math.Float64bits(v))
		}
	}
}

// TestWALTornTail: a record cut mid-line (crash during append) is
// discarded; everything before it survives and the truncation point sits
// exactly at the last intact record's end.
func TestWALTornTail(t *testing.T) {
	full := encodeAll(t, testRecord(0), testRecord(1))
	first := encodeAll(t, testRecord(0))
	for cut := len(first) + 1; cut < len(full); cut++ {
		got, validLen, truncated := scanWALBytes(full[:cut])
		if !truncated {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if len(got) != 1 || validLen != int64(len(first)) {
			t.Fatalf("cut at %d: got %d records, validLen %d; want 1 record, validLen %d", cut, len(got), validLen, len(first))
		}
	}
}

// TestWALCRCRejection: any single corrupted byte in a record's payload
// stops the scan at that record — a partial overwrite can never replay as
// valid state.
func TestWALCRCRejection(t *testing.T) {
	data := encodeAll(t, testRecord(0), testRecord(1), testRecord(2))
	one := len(encodeAll(t, testRecord(0)))
	for off := one + 9; off < 2*one-1; off += 7 { // corrupt bytes inside record 1's payload
		mut := append([]byte(nil), data...)
		if mut[off] == '\n' {
			continue
		}
		mut[off] ^= 0x20
		got, validLen, truncated := scanWALBytes(mut)
		if !truncated {
			t.Fatalf("corruption at byte %d was not detected", off)
		}
		if len(got) != 1 || validLen != int64(one) {
			t.Fatalf("corruption at byte %d: got %d records, validLen %d; want 1, %d", off, len(got), validLen, one)
		}
	}
}

// TestWALTrailingGarbage: arbitrary junk appended after valid records
// (a partially recycled block, an editor accident) truncates cleanly.
func TestWALTrailingGarbage(t *testing.T) {
	clean := encodeAll(t, testRecord(0), testRecord(1))
	for _, junk := range [][]byte{
		[]byte("garbage\n"),
		[]byte("deadbeef not-json\n"),
		[]byte("00000000 {\"t\":\"epoch\"}\n"), // wrong CRC for the payload
		{0xff, 0x00, 0x17},
		bytes.Repeat([]byte{'z'}, 4096),
	} {
		data := append(append([]byte(nil), clean...), junk...)
		got, validLen, truncated := scanWALBytes(data)
		if !truncated {
			t.Fatalf("junk %q not detected", junk[:min(8, len(junk))])
		}
		if len(got) != 2 || validLen != int64(len(clean)) {
			t.Fatalf("junk %q: got %d records, validLen %d; want 2, %d", junk[:min(8, len(junk))], len(got), validLen, len(clean))
		}
	}
}
