package durable

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strconv"
)

// WAL record framing: one record per line,
//
//	%08x<space><json payload>\n
//
// where the hex field is the CRC-32C (Castagnoli) of the payload bytes.
// The newline is the frame delimiter and the CRC is the integrity check;
// together they make every corruption mode detectable: a torn tail has no
// newline, a partial or bit-flipped record fails its CRC, and trailing
// garbage fails to parse a CRC field at all.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const hexDigits = "0123456789abcdef"

// appendRecord encodes r framed for the WAL onto buf and returns it. The
// payload is built by a hand-rolled emitter rather than encoding/json:
// the WAL writer shares one core with the serving path, and reflection
// marshal was measured at ~6% of daemon CPU under load — the emitter
// makes it noise. Output stays plain JSON that the std decoder reads
// back (asserted by the round-trip tests and the fuzz target).
func appendRecord(buf []byte, r *Record) ([]byte, error) {
	start := len(buf)
	buf = append(buf, "00000000 "...) // CRC placeholder, patched below
	p0 := len(buf)
	buf = appendRecordJSON(buf, r)
	crc := crc32.Checksum(buf[p0:], crcTable)
	for i := 7; i >= 0; i-- {
		buf[start+i] = hexDigits[crc&0xf]
		crc >>= 4
	}
	buf = append(buf, '\n')
	return buf, nil
}

// appendRecordJSON emits r as one JSON object, matching the Record
// struct's field tags (omitempty semantics included, so encoder output is
// also byte-stable for identical records).
func appendRecordJSON(b []byte, r *Record) []byte {
	b = append(b, `{"t":`...)
	b = appendJSONString(b, r.T)
	b = append(b, `,"tok":`...)
	b = appendJSONString(b, r.Token)
	b = append(b, `,"k":{"n":`...)
	b = strconv.AppendInt(b, int64(r.Key.N), 10)
	b = append(b, `,"m":`...)
	b = strconv.AppendInt(b, int64(r.Key.M), 10)
	b = append(b, `,"s":`...)
	b = strconv.AppendInt(b, int64(r.Key.Spouts), 10)
	b = append(b, `},"g":`...)
	b = strconv.AppendUint(b, r.Gen, 10)
	if r.Epoch != 0 {
		b = append(b, `,"e":`...)
		b = strconv.AppendInt(b, int64(r.Epoch), 10)
	}
	if r.Assign != nil {
		b = append(b, `,"a":[`...)
		for i, v := range r.Assign {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, ']')
	}
	if r.LearnEpoch != 0 {
		b = append(b, `,"le":`...)
		b = strconv.AppendInt(b, int64(r.LearnEpoch), 10)
	}
	if r.RNGDraws != 0 {
		b = append(b, `,"rd":`...)
		b = strconv.AppendUint(b, r.RNGDraws, 10)
	}
	if r.NormMeanBits != 0 {
		b = append(b, `,"nm":`...)
		b = strconv.AppendUint(b, r.NormMeanBits, 10)
	}
	if r.NormVarBits != 0 {
		b = append(b, `,"nv":`...)
		b = strconv.AppendUint(b, r.NormVarBits, 10)
	}
	if r.NormN != 0 {
		b = append(b, `,"nn":`...)
		b = strconv.AppendInt(b, int64(r.NormN), 10)
	}
	if len(r.Workload) > 0 {
		b = append(b, `,"w":`...)
		b = appendF64sJSON(b, r.Workload)
	}
	if r.TransSeq != 0 {
		b = append(b, `,"ts":`...)
		b = strconv.AppendUint(b, r.TransSeq, 10)
	}
	if r.RewardBits != 0 {
		b = append(b, `,"r":`...)
		b = strconv.AppendUint(b, r.RewardBits, 10)
	}
	return append(b, '}')
}

// appendJSONString emits s as a JSON string. Tokens are client-chosen
// bytes, so quotes, backslashes and control characters must escape; other
// bytes pass through (the std decoder treats them as UTF-8, exactly as
// encoding/json would have emitted them).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendF64sJSON emits v in the F64s wire form (base64 of little-endian
// bits) without the intermediate allocations of the MarshalJSON path.
// Blocks of 3 floats are 24 bytes — a whole number of base64 quanta — so
// concatenated blocks decode identically to one-shot encoding.
func appendF64sJSON(b []byte, v F64s) []byte {
	b = append(b, '"')
	enc := base64.StdEncoding
	var block [24]byte
	var out [32]byte
	for i := 0; i < len(v); i += 3 {
		n := len(v) - i
		if n > 3 {
			n = 3
		}
		for j := 0; j < n; j++ {
			binary.LittleEndian.PutUint64(block[j*8:], math.Float64bits(v[i+j]))
		}
		m := enc.EncodedLen(n * 8)
		enc.Encode(out[:m], block[:n*8])
		b = append(b, out[:m]...)
	}
	return append(b, '"')
}

// decodeLine parses one framed line (without its trailing newline).
func decodeLine(line []byte) (*Record, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("durable: malformed frame header")
	}
	var crc uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &crc); err != nil {
		return nil, fmt.Errorf("durable: malformed frame crc: %w", err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != crc {
		return nil, fmt.Errorf("durable: frame crc mismatch: recorded %08x, computed %08x", crc, got)
	}
	rec := &Record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, fmt.Errorf("durable: frame payload: %w", err)
	}
	return rec, nil
}

// scanWALBytes decodes framed records from data. It returns the decoded
// records, the byte offset of the end of the last intact record (the
// truncation point for reopening the segment), and whether anything after
// that offset was discarded (torn tail, CRC failure, or trailing
// garbage). Scanning stops at the first bad frame: ordering after a hole
// cannot be trusted, and in practice the only holes a crash produces are
// at the tail.
func scanWALBytes(data []byte) (recs []*Record, validLen int64, truncated bool) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return recs, int64(off), true // torn tail: no frame delimiter
		}
		rec, err := decodeLine(data[off : off+nl])
		if err != nil {
			return recs, int64(off), true
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, int64(off), false
}

// scanWALFile reads and decodes a whole segment file.
func scanWALFile(path string) (recs []*Record, validLen int64, truncated bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, err
	}
	recs, validLen, truncated = scanWALBytes(data)
	return recs, validLen, truncated, nil
}
