package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"time"
)

// Segment shipping (leader side of replication). A follower connects over
// TCP, hellos with its mirror's durable position, and the leader streams
// everything after it: the newest snapshot when the follower is too far
// behind to resume (reset), then WAL segment bytes up to the flushed
// position, then the live tail as flushes land. Every shipped byte range
// starts and ends on a record-frame boundary (positions come from frame
// scans on both sides), so the follower CRC-verifies each frame exactly
// as crash recovery does.
//
// Wire protocol: NDJSON control frames, each optionally followed by
// exactly Len raw payload bytes.
//
//	follower → leader  {"t":"hello","gen":G,"snap":S,"wal":W,"off":O,"recs":R}
//	leader → follower  {"t":"gen","gen":G}            accepted; shipping begins
//	leader → follower  {"t":"err","msg":"..."}        refused (stale generation)
//	leader → follower  {"t":"snap","seq":S,"len":L,"reset":B,"lrecs":R} + L bytes
//	leader → follower  {"t":"seg","seq":S,"off":O,"len":L,"lrecs":R} + L bytes
//	leader → follower  {"t":"pos","wal":W,"off":O,"recs":R}   caught up / heartbeat
//	follower → leader  {"t":"ack","wal":W,"off":O,"recs":R}   applied through here
//
// lrecs is the leader's lifetime flushed record count at send time; the
// follower's lag in records is lrecs minus its own applied count.
//
// Generations guard against a resurrected stale leader: every shipping
// endpoint carries a generation number that increments at each
// promotion (persisted as a "repl-gen" file in the data dir). A follower
// that has tailed generation G refuses any leader announcing less than G,
// and a leader refuses a follower announcing more than its own — after a
// failover, the old leader coming back from the dead cannot rewind a
// follower that has moved on.
type shipFrame struct {
	T     string `json:"t"`
	Gen   uint64 `json:"gen,omitempty"`
	Snap  uint64 `json:"snap,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	Wal   uint64 `json:"wal,omitempty"`
	Off   int64  `json:"off,omitempty"`
	Len   int64  `json:"len,omitempty"`
	Recs  uint64 `json:"recs,omitempty"`
	LRecs uint64 `json:"lrecs,omitempty"`
	Reset bool   `json:"reset,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// shipChunkMax caps one seg frame's payload; the live tail is shipped in
// at most this many bytes per frame so acks and position frames interleave
// with bulk catch-up traffic. It is a soft cap: chunks always end on a
// record-frame boundary, so a single frame larger than the cap ships
// whole (readFrameChunk) rather than torn — a mid-frame cut would make
// the follower drop the partial tail and reconnect, and a frame that
// never fits would livelock replication entirely.
const shipChunkMax = 1 << 20

// shipFrameMax is the hard bound on one seg frame: the most the follower
// will buffer for a single chunk, and therefore the largest record frame
// replication can carry. WAL records are session-sized (far below this);
// hitting the bound means a corrupt segment, not a big record.
const shipFrameMax = 64 << 20

// genFile is the per-data-dir replication generation marker.
const genFile = "repl-gen"

// ReadGen returns the data dir's persisted replication generation
// (0 when none has been recorded).
func ReadGen(dir string) uint64 {
	b, err := os.ReadFile(dirJoin(dir, genFile))
	if err != nil {
		return 0
	}
	g, _ := strconv.ParseUint(string(b), 10, 64)
	return g
}

// WriteGen persists the replication generation marker (atomic rename).
func WriteGen(dir string, gen uint64) error {
	tmp := dirJoin(dir, genFile+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(gen, 10)), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dirJoin(dir, genFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

func dirJoin(dir, name string) string { return dir + string(os.PathSeparator) + name }

// ShipConfig configures a ShipServer.
type ShipConfig struct {
	Log *Log   // live log to ship from
	Gen uint64 // this leader's replication generation

	// HeartbeatEvery is the idle position-frame cadence (default 500ms);
	// it bounds how stale a caught-up follower's lag reading can get.
	HeartbeatEvery time.Duration

	Logf func(format string, args ...any)

	SegmentsShipped  Counter // seg frames sent
	SnapshotsShipped Counter // snap frames sent
}

// ShipServer streams a Log's snapshot + WAL to follower connections.
type ShipServer struct {
	cfg ShipConfig

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewShipServer returns a shipping server for cfg.Log.
func NewShipServer(cfg ShipConfig) *ShipServer {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &ShipServer{cfg: cfg, conns: map[net.Conn]struct{}{}}
}

// Serve accepts follower connections until the listener closes.
func (ss *ShipServer) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		ss.mu.Lock()
		if ss.closed {
			ss.mu.Unlock()
			conn.Close()
			return nil
		}
		ss.conns[conn] = struct{}{}
		ss.mu.Unlock()
		go func() {
			defer func() {
				ss.mu.Lock()
				delete(ss.conns, conn)
				ss.mu.Unlock()
				conn.Close()
			}()
			if err := ss.serveConn(conn); err != nil && err != io.EOF {
				ss.cfg.Logf("durable: ship %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close drops every follower connection. The listener is the caller's to
// close (Serve returns when it does).
func (ss *ShipServer) Close() {
	ss.mu.Lock()
	ss.closed = true
	for c := range ss.conns {
		c.Close()
	}
	ss.mu.Unlock()
}

func writeFrame(bw *bufio.Writer, f *shipFrame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if _, err := bw.Write(b); err != nil {
		return err
	}
	return bw.WriteByte('\n')
}

// serveConn drives one follower: hello, position negotiation, then the
// ship loop. A second goroutine drains the follower's acks (their content
// is informational; draining keeps the connection from stalling).
func (ss *ShipServer) serveConn(conn net.Conn) error {
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("read hello: %w", err)
	}
	var hello shipFrame
	if err := json.Unmarshal(line, &hello); err != nil || hello.T != "hello" {
		return fmt.Errorf("bad hello %q", line)
	}
	if hello.Gen > ss.cfg.Gen {
		_ = writeFrame(bw, &shipFrame{T: "err", Msg: fmt.Sprintf("follower has seen generation %d, this leader is generation %d (stale leader)", hello.Gen, ss.cfg.Gen)})
		_ = bw.Flush() // best-effort refusal note; the follower is being dropped
		return fmt.Errorf("refused follower at generation %d > ours %d", hello.Gen, ss.cfg.Gen)
	}
	if err := writeFrame(bw, &shipFrame{T: "gen", Gen: ss.cfg.Gen}); err != nil {
		return err
	}

	// Acks are drained concurrently; the read side closing doubles as the
	// follower-gone signal (conn.Close unblocks the ship loop's writes).
	go func() {
		for {
			if _, err := br.ReadBytes('\n'); err != nil {
				conn.Close()
				return
			}
		}
	}()

	pos, err := ss.negotiate(bw, &hello)
	if err != nil {
		return err
	}
	return ss.shipLoop(conn, bw, pos)
}

// negotiate decides where shipping starts. The follower can resume from
// its position iff every byte after it is still on disk here: its segment
// must postdate the newest snapshot (older segments are deleted by
// rotation) and its offset must exist in that segment. Anything else gets
// a full reset from the newest snapshot.
func (ss *ShipServer) negotiate(bw *bufio.Writer, hello *shipFrame) (Position, error) {
	l := ss.cfg.Log
	flushed := l.FlushedPos()
	snapSeq := l.SnapSeq()

	if hello.Wal > snapSeq && hello.Wal <= flushed.Seg && hello.Off >= 0 {
		limit := flushed.Off
		ok := true
		if hello.Wal < flushed.Seg {
			fi, err := os.Stat(walPath(l.dir, hello.Wal))
			ok = err == nil
			if ok {
				limit = fi.Size()
			}
		}
		if ok && hello.Off <= limit {
			return Position{Seg: hello.Wal, Off: hello.Off, Recs: hello.Recs}, nil
		}
	}
	// Reset: ship the newest snapshot (when one exists) and restart the
	// follower at the segment after it.
	if snapSeq > 0 {
		if err := ss.shipSnapshot(bw, snapSeq, true, flushed.Recs); err != nil {
			return Position{}, err
		}
		snap, err := loadSnapshot(snapPath(l.dir, snapSeq))
		if err != nil {
			return Position{}, err
		}
		return Position{Seg: snapSeq + 1, Off: 0, Recs: snap.Recs}, nil
	}
	// Fresh leader, no snapshot yet: the follower starts from segment 1.
	return Position{Seg: snapSeq + 1, Off: 0, Recs: 0}, nil
}

func (ss *ShipServer) shipSnapshot(bw *bufio.Writer, seq uint64, reset bool, lrecs uint64) error {
	data, err := os.ReadFile(snapPath(ss.cfg.Log.dir, seq))
	if err != nil {
		return fmt.Errorf("snapshot snap-%d vanished mid-ship: %w", seq, err)
	}
	if err := writeFrame(bw, &shipFrame{T: "snap", Seq: seq, Len: int64(len(data)), Reset: reset, LRecs: lrecs}); err != nil {
		return err
	}
	if _, err := bw.Write(data); err != nil {
		return err
	}
	if ss.cfg.SnapshotsShipped != nil {
		ss.cfg.SnapshotsShipped.Add(1)
	}
	return nil
}

// readFrameChunk reads shippable bytes from f at [off, limit) and cuts
// the chunk on a record-frame boundary: at most chunkMax bytes normally,
// more only when a single frame is larger than the whole chunk. The
// range's end is frame-aligned by construction (limit is a flushed
// position or a sealed segment's size, both from frame scans), so an
// uncapped read needs no alignment; a capped read is aligned down to its
// last '\n' — record frames never contain a raw newline
// (appendJSONString escapes control bytes), so every one is a frame
// boundary.
func readFrameChunk(f *os.File, off, limit, chunkMax int64) ([]byte, error) {
	n := limit - off
	if n > chunkMax {
		n = chunkMax
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		return nil, err
	}
	for off+int64(len(buf)) < limit {
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			return buf[:i+1], nil
		}
		// No delimiter yet: one frame spans the whole chunk. Grow until
		// its end so the follower always receives whole frames — a
		// partial frame would be dropped as torn and the connection
		// cycled without ever advancing.
		grow := int64(len(buf))
		if rem := limit - off - int64(len(buf)); grow > rem {
			grow = rem
		}
		if int64(len(buf))+grow > shipFrameMax {
			return nil, fmt.Errorf("no frame boundary within %d bytes", shipFrameMax)
		}
		ext := make([]byte, grow)
		if _, err := io.ReadFull(io.NewSectionReader(f, off+int64(len(buf)), grow), ext); err != nil {
			return nil, err
		}
		buf = append(buf, ext...)
	}
	return buf, nil
}

// shipLoop streams from pos forever: drain to the flushed position, send
// a pos frame, wait for the next flush (or heartbeat), repeat. Returns on
// connection error (follower gone) or log close.
func (ss *ShipServer) shipLoop(conn net.Conn, bw *bufio.Writer, pos Position) error {
	l := ss.cfg.Log
	wake, cancel := l.Watch()
	defer cancel()
	hb := time.NewTicker(ss.cfg.HeartbeatEvery)
	defer hb.Stop()

	// f is the open handle on the segment currently being shipped. Keeping
	// it open across rotations is what makes shipping safe against
	// retention deletes: on Linux an open deleted file stays readable.
	var f *os.File
	var fSeq uint64
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	for {
		flushed := l.FlushedPos()
		for pos.Seg < flushed.Seg || (pos.Seg == flushed.Seg && pos.Off < flushed.Off) {
			if f == nil || fSeq != pos.Seg {
				if f != nil {
					f.Close()
					f = nil
				}
				nf, err := os.Open(walPath(l.dir, pos.Seg))
				if err != nil {
					// Segment deleted before we opened it (the follower
					// lagged past the retention window): restart it from
					// the newest snapshot.
					ss.cfg.Logf("durable: ship %s: wal-%d gone, resetting follower from snapshot", conn.RemoteAddr(), pos.Seg)
					np, nerr := ss.negotiate(bw, &shipFrame{T: "hello"})
					if nerr != nil {
						return nerr
					}
					pos = np
					continue
				}
				f, fSeq = nf, pos.Seg
			}
			// Shippable bytes: the flushed offset on the live segment, the
			// final size (fstat — the path may already be rotated away, but
			// the open handle keeps the inode readable) on sealed ones.
			limit := flushed.Off
			if pos.Seg < flushed.Seg {
				fi, err := f.Stat()
				if err != nil {
					return fmt.Errorf("stat wal-%d: %w", pos.Seg, err)
				}
				limit = fi.Size()
			}
			if pos.Off < limit {
				buf, err := readFrameChunk(f, pos.Off, limit, shipChunkMax)
				if err != nil {
					return fmt.Errorf("read wal-%d @%d: %w", pos.Seg, pos.Off, err)
				}
				if err := writeFrame(bw, &shipFrame{T: "seg", Seq: pos.Seg, Off: pos.Off, Len: int64(len(buf)), LRecs: flushed.Recs}); err != nil {
					return err
				}
				if _, err := bw.Write(buf); err != nil {
					return err
				}
				if ss.cfg.SegmentsShipped != nil {
					ss.cfg.SegmentsShipped.Add(1)
				}
				pos.Off += int64(len(buf))
				continue
			}
			// Segment drained and the leader has moved past it. If the
			// newest snapshot covers it, ship the snapshot as a compaction
			// marker (the follower mirrors it and deletes its own old
			// segments); either way advance to the next segment.
			if snapSeq := l.SnapSeq(); snapSeq == pos.Seg {
				if err := ss.shipSnapshot(bw, snapSeq, false, flushed.Recs); err != nil {
					return err
				}
			}
			f.Close()
			f, fSeq = nil, 0
			pos = Position{Seg: pos.Seg + 1, Off: 0}
		}
		if err := writeFrame(bw, &shipFrame{T: "pos", Wal: pos.Seg, Off: pos.Off, Recs: flushed.Recs}); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		select {
		case <-wake:
		case <-hb.C:
		case <-l.Done():
			return fmt.Errorf("log closed")
		}
	}
}
