package durable

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Log is an open durable data directory: the current WAL segment behind a
// buffered asynchronous writer, plus the snapshot rotation machinery.
//
// Appends never block the caller: records go into a bounded channel the
// writer goroutine drains (dropping — and counting — records when the
// buffer is full, so a stalled disk degrades durability visibly instead
// of stalling the serving path). AppendBlocking is the exception for
// records whose loss is not a bounded-window data loss but a permanent
// correctness error (eviction tombstones: a dropped tombstone resurrects
// the evicted session on every future recovery).
//
// Sync, Snapshot and Close are barriers: their op goes through the same
// FIFO channel the records do, and enqueueing it blocks until the buffer
// has room — so a full buffer delays the barrier rather than letting it
// jump the queue, and every record accepted before the barrier call is
// durably on disk when the barrier returns. A drop can therefore never
// straddle a barrier: records the barrier caller observed as accepted are
// flushed by it, and records dropped before it were never accepted.
type Log struct {
	dir string
	cfg LogConfig

	ops  chan walOp
	done chan struct{}

	closed atomic.Bool // appends after close are dropped, not sent

	mu sync.Mutex // serializes barrier ops (Sync/Snapshot/Close/Crash)

	// Sequence numbers are atomics, NOT guarded by mu: the writer
	// goroutine updates them during rotation while a barrier caller may
	// be blocked holding mu on a full ops channel that only the writer
	// can drain — guarding them with mu would deadlock that pair.
	walSeq  atomic.Uint64 // current segment number
	snapSeq atomic.Uint64 // newest snapshot number (0 = none)

	// posMu guards pos, the flushed (readable-for-replication) position.
	// A leaf lock: the writer takes it briefly after each flush, readers
	// (the shipping server) poll it on flush notifications.
	posMu sync.Mutex
	pos   Position

	// watchMu guards watchers, each a 1-buffered channel signalled
	// (coalesced) after every flush and rotation.
	watchMu  sync.Mutex
	watchers []chan struct{}

	// writer-goroutine state
	f     *os.File
	bw    *bufio.Writer
	buf   []byte
	dirty bool
	off   int64  // bytes written to the current segment (buffered included)
	recs  uint64 // lifetime records written to this data dir (see Position)
}

// Position is a durable stream position: a byte offset into one WAL
// segment, plus the lifetime count of records at or before it. Recs
// counts every record ever written to the data directory — it is rebased
// from the newest snapshot's Recs field on Open, so it survives restarts
// and compactions; replication lag is the difference between two Recs.
type Position struct {
	Seg  uint64 // segment the offset refers to
	Off  int64  // flushed bytes into that segment
	Recs uint64 // lifetime records flushed
}

// LogConfig configures Open.
type LogConfig struct {
	// FsyncInterval is how often buffered records are flushed and fsynced
	// (default 100ms); it bounds the state a crash can lose. Negative
	// syncs after every record.
	FsyncInterval time.Duration
	// Buffer is the async append queue depth (default 8192 records).
	Buffer int
	// Metrics are optional counter hooks.
	Metrics Metrics
	// Logf, when set, receives recovery/rotation diagnostics.
	Logf func(format string, args ...any)

	// gate, when set (tests only), is received from before the writer
	// processes each op — the hook that holds the writer mid-queue so
	// buffer-overflow and barrier-ordering behavior is reproducible.
	// Close the channel to release the writer permanently.
	gate chan struct{}
}

// Recovered is what Open found on disk: the newest snapshot (nil on a
// fresh directory) and every WAL record after it, in append order. The
// caller applies it (snapshot first, then records) before serving.
type Recovered struct {
	Snapshot *Snapshot
	Records  []*Record
	// Truncated reports that a torn tail / bad frame was discarded from
	// the live segment (the file was truncated to the last intact
	// record before reopening for append).
	Truncated bool
}

// DirState is a scanned data directory's durable position: where Open
// would resume appending, and the lifetime record count at that point.
// The replication follower hellos with it so the leader ships exactly the
// suffix it is missing.
type DirState struct {
	SnapSeq uint64 // newest snapshot seq (0 = none)
	WalSeq  uint64 // segment Open appends to
	WalOff  int64  // intact-prefix size of that segment (0 if absent)
	Recs    uint64 // lifetime record count (snapshot base + scanned tail)
}

type walOp struct {
	rec   *Record
	block bool          // rec came through AppendBlocking (tombstones)
	sync  chan error    // non-nil: flush+fsync barrier, reply on chan
	snap  *snapshotOp   // non-nil: snapshot + rotate
	stop  chan error    // non-nil: flush, fsync, close file, exit
	die   chan struct{} // non-nil: close file without flushing (crash test hook)
}

type snapshotOp struct {
	capture func() (*Snapshot, error)
	reply   chan error
}

func (c LogConfig) withDefaults() LogConfig {
	if c.FsyncInterval == 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d.json", seq))
}
func walPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", seq))
}

// Recover scans a data directory read-only: it loads the newest snapshot,
// replays every surviving WAL segment, and reports the durable position —
// without opening the directory for append or truncating anything. The
// replication follower uses it to warm its state from the mirror it kept
// before tailing the leader for the rest.
func Recover(dir string, cfg LogConfig) (*Recovered, DirState, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, DirState{}, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	return recoverDir(dir, cfg)
}

// recoverDir is the shared scan behind Open and Recover.
func recoverDir(dir string, cfg LogConfig) (*Recovered, DirState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, DirState{}, fmt.Errorf("durable: open %s: %w", dir, err)
	}

	var snapSeqs, walSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json"):
			if seq, err := strconv.ParseUint(name[5:len(name)-5], 10, 64); err == nil {
				snapSeqs = append(snapSeqs, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64); err == nil {
				walSeqs = append(walSeqs, seq)
			}
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] < snapSeqs[j] })
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })

	rec := &Recovered{}
	st := DirState{}
	if n := len(snapSeqs); n > 0 {
		st.SnapSeq = snapSeqs[n-1]
		snap, err := loadSnapshot(snapPath(dir, st.SnapSeq))
		if err != nil {
			// A half-written snapshot cannot exist (tmp+rename), so a
			// snapshot that fails to load is real corruption or a version
			// gap — refuse loudly rather than silently discard learned
			// state.
			return nil, st, fmt.Errorf("durable: snapshot %s: %w", snapPath(dir, st.SnapSeq), err)
		}
		rec.Snapshot = snap
		st.Recs = snap.Recs
	}

	// Replay every surviving segment in order. Segments at or below the
	// snapshot seq can linger if a crash hit the rotation window between
	// snapshot rename and segment deletion; their records predate the
	// snapshot and replay as no-ops under the generation guards (their
	// record count is already inside the snapshot's Recs base, so they do
	// not count again).
	st.WalSeq = st.SnapSeq + 1
	if n := len(walSeqs); n > 0 && walSeqs[n-1] >= st.WalSeq {
		st.WalSeq = walSeqs[n-1]
	}
	for _, seq := range walSeqs {
		recs, validLen, truncated, err := scanWALFile(walPath(dir, seq))
		if err != nil {
			return nil, st, fmt.Errorf("durable: wal %s: %w", walPath(dir, seq), err)
		}
		rec.Records = append(rec.Records, recs...)
		if seq > st.SnapSeq {
			st.Recs += uint64(len(recs))
		}
		if seq == st.WalSeq {
			st.WalOff = validLen
		}
		if truncated {
			rec.Truncated = true
			cfg.Logf("durable: wal-%d: discarded torn/corrupt tail after %d bytes (%d intact records)", seq, validLen, len(recs))
		}
	}
	return rec, st, nil
}

// Open opens (creating if needed) a data directory, recovers its
// contents, and starts the async writer on the live segment. The returned
// Recovered holds everything the caller must re-apply; the Log is ready
// for appends immediately.
func Open(dir string, cfg LogConfig) (*Log, *Recovered, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: open %s: %w", dir, err)
	}
	rec, st, err := recoverDir(dir, cfg)
	if err != nil {
		return nil, nil, err
	}
	if rec.Truncated {
		// The live segment is reopened for append below; cut the garbage
		// first so the file stays a clean frame sequence. (Torn tails in
		// older segments are left alone — they are never appended to.)
		if fi, serr := os.Stat(walPath(dir, st.WalSeq)); serr == nil && fi.Size() > st.WalOff {
			if err := os.Truncate(walPath(dir, st.WalSeq), st.WalOff); err != nil {
				return nil, nil, fmt.Errorf("durable: truncate torn tail of wal-%d: %w", st.WalSeq, err)
			}
		}
	}
	f, err := os.OpenFile(walPath(dir, st.WalSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open wal-%d: %w", st.WalSeq, err)
	}

	l := &Log{
		dir:  dir,
		cfg:  cfg,
		ops:  make(chan walOp, cfg.Buffer),
		done: make(chan struct{}),
		f:    f,
		bw:   bufio.NewWriterSize(f, 1<<16),
		off:  st.WalOff,
		recs: st.Recs,
	}
	l.walSeq.Store(st.WalSeq)
	l.snapSeq.Store(st.SnapSeq)
	l.pos = Position{Seg: st.WalSeq, Off: st.WalOff, Recs: st.Recs}
	go l.writer()
	return l, rec, nil
}

// SnapSeq returns the newest snapshot's sequence number (0 before any).
func (l *Log) SnapSeq() uint64 { return l.snapSeq.Load() }

// Dir returns the data directory this log writes.
func (l *Log) Dir() string { return l.dir }

// FlushedPos returns the durable stream position: everything at or before
// it is flushed to the segment file and safe for a replication reader.
func (l *Log) FlushedPos() Position {
	l.posMu.Lock()
	defer l.posMu.Unlock()
	return l.pos
}

// Watch returns a channel signalled (coalesced to one pending signal)
// after every flush and rotation — the replication shipper's cue that
// FlushedPos moved — plus a cancel that unregisters it (follower
// connections come and go; their watchers must not accumulate).
func (l *Log) Watch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	l.watchMu.Lock()
	l.watchers = append(l.watchers, ch)
	l.watchMu.Unlock()
	cancel := func() {
		l.watchMu.Lock()
		for i, w := range l.watchers {
			if w == ch {
				l.watchers = append(l.watchers[:i], l.watchers[i+1:]...)
				break
			}
		}
		l.watchMu.Unlock()
	}
	return ch, cancel
}

// Done returns a channel closed when the writer goroutine has exited
// (after Close or Crash).
func (l *Log) Done() <-chan struct{} { return l.done }

func (l *Log) notifyWatchers() {
	l.watchMu.Lock()
	for _, ch := range l.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	l.watchMu.Unlock()
}

// Append enqueues one record. It never blocks and never takes the
// barrier lock: when the async buffer is full (or the log is closed) the
// record is dropped and counted — durability backpressure must not become
// serving backpressure.
func (l *Log) Append(r *Record) {
	if l.closed.Load() {
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
		return
	}
	select {
	case l.ops <- walOp{rec: r}:
	default:
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
	}
}

// AppendBlocking enqueues one record, waiting for buffer space instead of
// dropping on overflow. It exists for records whose loss is a permanent
// correctness error rather than a bounded data loss: an eviction
// tombstone that is dropped silently resurrects the evicted session on
// every future recovery, where a dropped epoch record merely loses one
// epoch's tail. Returns false only when the log is already closed (the
// record then cannot be written at all, which is counted as a drop).
func (l *Log) AppendBlocking(r *Record) bool {
	if l.closed.Load() {
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
		return false
	}
	select {
	case l.ops <- walOp{rec: r, block: true}:
		return true
	case <-l.done:
		// The writer exited (Close/Crash raced ahead of us).
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
		return false
	}
}

// barrier sends op and waits for the writer's reply; reply must be a
// 1-buffered channel already stored in op. The send blocks until the
// (FIFO) buffer has room, so everything accepted before the barrier is
// processed before it.
func (l *Log) barrier(op walOp, reply chan error) error {
	l.mu.Lock()
	if l.closed.Load() {
		l.mu.Unlock()
		return fmt.Errorf("durable: log closed")
	}
	l.ops <- op
	l.mu.Unlock()
	return <-reply
}

// Sync flushes and fsyncs everything appended before the call.
func (l *Log) Sync() error {
	reply := make(chan error, 1)
	return l.barrier(walOp{sync: reply}, reply)
}

// Snapshot drains pending appends, captures a snapshot via the callback
// (which runs on the writer goroutine, so it sits at a record boundary),
// writes it atomically, rotates to a fresh WAL segment, and deletes the
// superseded files. The callback's Snapshot gets its Version, Seq and
// Recs filled in here. A capture error aborts the snapshot; the current
// segment keeps appending.
func (l *Log) Snapshot(capture func() (*Snapshot, error)) error {
	reply := make(chan error, 1)
	return l.barrier(walOp{snap: &snapshotOp{capture: capture, reply: reply}}, reply)
}

// Close flushes, fsyncs and closes the log. Further appends are dropped.
func (l *Log) Close() error {
	reply := make(chan error, 1)
	l.mu.Lock()
	if l.closed.Swap(true) {
		l.mu.Unlock()
		return nil
	}
	l.ops <- walOp{stop: reply}
	l.mu.Unlock()
	err := <-reply
	<-l.done
	return err
}

// Crash closes the log WITHOUT flushing buffered records — the test hook
// that makes "the process died between fsyncs" reproducible in-process.
func (l *Log) Crash() {
	die := make(chan struct{})
	l.mu.Lock()
	if l.closed.Swap(true) {
		l.mu.Unlock()
		return
	}
	l.ops <- walOp{die: die}
	l.mu.Unlock()
	<-die
	<-l.done
}

// writer is the single goroutine that owns the segment file.
func (l *Log) writer() {
	defer close(l.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if l.cfg.FsyncInterval > 0 {
		tick = time.NewTicker(l.cfg.FsyncInterval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case op := <-l.ops:
			if l.cfg.gate != nil {
				<-l.cfg.gate
			}
			switch {
			case op.rec != nil:
				l.writeRecord(op.rec)
				if l.cfg.FsyncInterval < 0 {
					l.flushSync()
				}
			case op.sync != nil:
				op.sync <- l.flushSync()
			case op.snap != nil:
				op.snap.reply <- l.rotate(op.snap.capture)
			case op.stop != nil:
				err := l.flushSync()
				if cerr := l.f.Close(); err == nil {
					err = cerr
				}
				op.stop <- err
				return
			case op.die != nil:
				l.f.Close() // deliberately no flush: simulated crash
				close(op.die)
				return
			}
		case <-tickC:
			if l.dirty {
				l.flushSync()
			}
		}
	}
}

func (l *Log) writeRecord(r *Record) {
	var err error
	l.buf, err = appendRecord(l.buf[:0], r)
	if err != nil {
		l.cfg.Logf("durable: dropping unencodable record: %v", err)
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
		return
	}
	if _, err := l.bw.Write(l.buf); err != nil {
		l.cfg.Logf("durable: wal-%d write: %v", l.walSeq.Load(), err)
		l.cfg.Metrics.add(l.cfg.Metrics.Dropped, 1)
		return
	}
	l.dirty = true
	l.off += int64(len(l.buf))
	l.recs++
	l.cfg.Metrics.add(l.cfg.Metrics.Records, 1)
	l.cfg.Metrics.add(l.cfg.Metrics.Bytes, int64(len(l.buf)))
}

func (l *Log) flushSync() error {
	if err := l.bw.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.publishPos()
	return nil
}

// publishPos records the flushed position and wakes replication watchers.
func (l *Log) publishPos() {
	l.posMu.Lock()
	l.pos = Position{Seg: l.walSeq.Load(), Off: l.off, Recs: l.recs}
	l.posMu.Unlock()
	l.notifyWatchers()
}

// rotate is the compaction step: capture → write snap-<walSeq> → open
// wal-<walSeq+1> → delete superseded files.
func (l *Log) rotate(capture func() (*Snapshot, error)) error {
	if err := l.flushSync(); err != nil {
		return fmt.Errorf("durable: pre-snapshot sync: %w", err)
	}
	snap, err := capture()
	if err != nil {
		return fmt.Errorf("durable: snapshot capture: %w", err)
	}
	oldWal, oldSnap := l.walSeq.Load(), l.snapSeq.Load()
	snap.Version = SnapshotVersion
	snap.Seq = oldWal
	snap.Recs = l.recs
	if err := writeSnapshot(snapPath(l.dir, oldWal), snap); err != nil {
		return err
	}
	newSeq := oldWal + 1
	nf, err := os.OpenFile(walPath(l.dir, newSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open wal-%d: %w", newSeq, err)
	}
	l.f.Close()

	l.f = nf
	l.bw = bufio.NewWriterSize(nf, 1<<16)
	l.dirty = false
	l.off = 0
	l.walSeq.Store(newSeq)
	l.snapSeq.Store(oldWal)
	l.publishPos()

	// Best-effort cleanup: leftovers are harmless (replay no-ops) and
	// removed at the next rotation.
	for seq := oldWal; seq > 0 && seq+8 > oldWal; seq-- {
		os.Remove(walPath(l.dir, seq))
	}
	if oldSnap > 0 {
		os.Remove(snapPath(l.dir, oldSnap))
	}
	syncDir(l.dir)
	l.cfg.Metrics.add(l.cfg.Metrics.Snapshots, 1)
	l.cfg.Logf("durable: snapshot snap-%d written, wal rotated to wal-%d", oldWal, newSeq)
	return nil
}

// writeSnapshot writes snap atomically: tmp file, fsync, rename, dir
// fsync. A crash at any point leaves either the old snapshot set or the
// new one, never a half-written file under the final name. The JSON is
// streamed through a buffered writer — replay-heavy snapshots run to
// tens of MB, and materializing them with json.Marshal doubles the
// snapshot's GC bill on the core the serving path is using.
func writeSnapshot(path string, snap *Snapshot) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := json.NewEncoder(bw).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("durable: encode snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// parseSnapshot decodes snapshot bytes with the same version policy as
// loading from disk: any version other than this build's is a hard error.
func parseSnapshot(data []byte) (*Snapshot, error) {
	// One decode on the happy path (snapshots run to tens of MB; parsing
	// twice doubles recovery's JSON bill). A failed decode re-probes just
	// the version field so a format bump still fails with "unsupported
	// version" rather than an opaque field error.
	snap := &Snapshot{}
	if decodeErr := json.Unmarshal(data, snap); decodeErr != nil {
		var head struct {
			Version int `json:"version"`
		}
		if json.Unmarshal(data, &head) == nil && head.Version != SnapshotVersion {
			return nil, fmt.Errorf("unsupported snapshot version %d (this build reads version %d); refusing to guess at persisted state",
				head.Version, SnapshotVersion)
		}
		return nil, fmt.Errorf("corrupt snapshot: %w", decodeErr)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("unsupported snapshot version %d (this build reads version %d); refusing to guess at persisted state",
			snap.Version, SnapshotVersion)
	}
	return snap, nil
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseSnapshot(data)
}

// syncDir fsyncs a directory so renames/creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
