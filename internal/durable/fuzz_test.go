package durable

import (
	"bytes"
	"sync/atomic"
	"testing"
)

type countingCounter struct{ n atomic.Int64 }

func (c *countingCounter) Add(n int64) { c.n.Add(n) }

// FuzzWALRecords fuzzes the WAL frame decoder the same way FuzzWireFrames
// fuzzes the NDJSON wire decoder: arbitrary bytes must never panic, every
// decoded prefix must re-encode to byte-identical frames (round-trip
// property), and the reported truncation point must always sit at a frame
// boundary within the input.
func FuzzWALRecords(f *testing.F) {
	valid, err := appendRecord(nil, testRecord(3))
	if err != nil {
		f.Fatal(err)
	}
	two, _ := appendRecord(append([]byte(nil), valid...), testRecord(4))
	f.Add([]byte(""))
	f.Add(valid)
	f.Add(two)
	f.Add(valid[:len(valid)/2])                              // torn tail
	f.Add(append(append([]byte(nil), two...), "garbage"...)) // trailing junk
	f.Add([]byte("00000000 {}\n"))
	f.Add([]byte("zzzzzzzz {}\n"))
	f.Add([]byte("00000000{}\n")) // missing space
	f.Add(bytes.Repeat([]byte("\n"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, truncated := scanWALBytes(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of range [0,%d]", validLen, len(data))
		}
		if !truncated && validLen != int64(len(data)) {
			t.Fatalf("clean scan must consume everything: validLen %d of %d", validLen, len(data))
		}
		// Round trip: whatever decoded must re-encode into frames that
		// scan back cleanly to the same record count (fuzzed payloads may
		// normalize — field order, whitespace — so byte identity is only
		// guaranteed for encoder output, not asserted here).
		var re []byte
		for _, r := range recs {
			var err error
			re, err = appendRecord(re, r)
			if err != nil {
				t.Fatalf("decoded record failed to re-encode: %v", err)
			}
		}
		recs2, validLen2, truncated2 := scanWALBytes(re)
		if truncated2 || len(recs2) != len(recs) || validLen2 != int64(len(re)) {
			t.Fatalf("re-encoded prefix did not re-scan cleanly: %d vs %d records", len(recs2), len(recs))
		}
	})
}
