package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string) (*Log, *Recovered) {
	t.Helper()
	lg, rec, err := Open(dir, LogConfig{FsyncInterval: time.Hour}) // explicit Sync only
	if err != nil {
		t.Fatal(err)
	}
	return lg, rec
}

// TestLogEmptyDir: a fresh data dir opens with nothing to recover and is
// immediately appendable.
func TestLogEmptyDir(t *testing.T) {
	dir := t.TempDir()
	lg, rec := openTest(t, dir)
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	lg.Append(testRecord(0))
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = openTest(t, dir)
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records after close, want 1", len(rec.Records))
	}
}

// TestLogAppendSyncRecover: records survive Sync (not just Close) and a
// reopened log appends after them without damaging the prefix.
func TestLogAppendSyncRecover(t *testing.T) {
	dir := t.TempDir()
	lg, _ := openTest(t, dir)
	for i := 0; i < 5; i++ {
		lg.Append(testRecord(i))
	}
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	lg.Crash() // synced records must survive an unflushed death

	lg2, rec := openTest(t, dir)
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.Epoch != i {
			t.Fatalf("record %d has epoch %d; order not preserved", i, r.Epoch)
		}
	}
	lg2.Append(testRecord(5))
	if err := lg2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = openTest(t, dir)
	if len(rec.Records) != 6 || rec.Records[5].Epoch != 5 {
		t.Fatalf("append after recovery: got %d records", len(rec.Records))
	}
}

// TestLogCrashLosesUnsyncedTail: records appended after the last Sync die
// with a Crash — and that is all that dies.
func TestLogCrashLosesUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	lg, _ := openTest(t, dir)
	lg.Append(testRecord(0))
	if err := lg.Sync(); err != nil {
		t.Fatal(err)
	}
	lg.Append(testRecord(1)) // never synced
	lg.Crash()
	_, rec := openTest(t, dir)
	if len(rec.Records) != 1 || rec.Records[0].Epoch != 0 {
		t.Fatalf("recovered %d records, want exactly the synced prefix", len(rec.Records))
	}
}

// TestLogSnapshotRotation: a snapshot compacts the WAL — recovery sees
// the snapshot plus only post-snapshot records, and superseded files are
// gone.
func TestLogSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	lg, _ := openTest(t, dir)
	lg.Append(testRecord(0))
	lg.Append(testRecord(1))
	state := &Snapshot{Seed: 7, NextGen: 2, Sessions: []SessionSnap{{Token: "tok-1", Gen: 2, Epoch: 1}}}
	if err := lg.Snapshot(func() (*Snapshot, error) { return state, nil }); err != nil {
		t.Fatal(err)
	}
	lg.Append(testRecord(2))
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := openTest(t, dir)
	if rec.Snapshot == nil {
		t.Fatal("no snapshot recovered")
	}
	if rec.Snapshot.Seed != 7 || len(rec.Snapshot.Sessions) != 1 {
		t.Fatalf("snapshot content mangled: %+v", rec.Snapshot)
	}
	if rec.Snapshot.Version != SnapshotVersion || rec.Snapshot.Seq == 0 {
		t.Fatalf("snapshot version/seq not stamped: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Epoch != 2 {
		t.Fatalf("recovered %d records after snapshot, want only the post-snapshot one", len(rec.Records))
	}
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 { // snap-1.json + wal-2.log
		t.Fatalf("rotation left %v, want exactly one snapshot + one live segment", names)
	}
}

// TestLogSnapshotNewerThanWALTail simulates a crash inside the rotation
// window: the snapshot was renamed into place but the superseded segment
// was not yet deleted. Recovery must return the snapshot and replay the
// stale segment's records (the caller's generation guards no-op them) —
// never lose the snapshot or double-open the log.
func TestLogSnapshotNewerThanWALTail(t *testing.T) {
	dir := t.TempDir()
	lg, _ := openTest(t, dir)
	lg.Append(testRecord(0))
	if err := lg.Snapshot(func() (*Snapshot, error) { return &Snapshot{NextGen: 1}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a stale pre-snapshot segment, as the crash would leave it.
	stale, err := appendRecord(nil, testRecord(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	lg2, rec := openTest(t, dir)
	defer lg2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 {
		t.Fatalf("snapshot lost: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Gen > rec.Snapshot.NextGen {
		t.Fatalf("stale segment should replay (guarded by gen): %d records", len(rec.Records))
	}
}

// TestLogVersionMismatch: a snapshot from a different format version is a
// clear, actionable error — not a panic, not a silent cold start.
func TestLogVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-3.json"), []byte(`{"version":99,"seq":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, LogConfig{})
	if err == nil {
		t.Fatal("version-mismatched snapshot was accepted")
	}
	if !strings.Contains(err.Error(), "version 99") || !strings.Contains(err.Error(), fmt.Sprint(SnapshotVersion)) {
		t.Fatalf("error does not name the versions: %v", err)
	}
}

// TestLogCorruptSnapshot: a snapshot that fails to parse refuses to open
// (rename atomicity means it cannot be a crash artifact).
func TestLogCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-1.json"), []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, LogConfig{}); err == nil {
		t.Fatal("corrupt snapshot was accepted")
	}
}

// TestLogTornTailTruncatedOnReopen: garbage at the live segment's tail is
// physically truncated before appends resume, so the recovered prefix +
// new appends replay as one clean sequence.
func TestLogTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	lg, _ := openTest(t, dir)
	lg.Append(testRecord(0))
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal-1.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("torn tail without newline")
	f.Close()

	lg2, rec := openTest(t, dir)
	if !rec.Truncated || len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, truncated=%v", len(rec.Records), rec.Truncated)
	}
	lg2.Append(testRecord(1))
	if err := lg2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec = openTest(t, dir)
	if rec.Truncated || len(rec.Records) != 2 {
		t.Fatalf("after truncate+append: %d records, truncated=%v; want 2 clean", len(rec.Records), rec.Truncated)
	}
}

// TestLogDropCounting: a full async buffer drops records (never blocks)
// and counts every drop.
func TestLogDropCounting(t *testing.T) {
	dir := t.TempDir()
	var dropped countingCounter
	lg, _, err := Open(dir, LogConfig{FsyncInterval: time.Hour, Buffer: 1, Metrics: Metrics{Dropped: &dropped}})
	if err != nil {
		t.Fatal(err)
	}
	// Stall the writer with a capture that blocks until we release it, so
	// appends pile into the 1-slot buffer deterministically.
	hold := make(chan struct{})
	captured := make(chan struct{})
	go lg.Snapshot(func() (*Snapshot, error) {
		close(captured)
		<-hold
		return &Snapshot{}, nil
	})
	<-captured
	for i := 0; i < 10; i++ {
		lg.Append(testRecord(i))
	}
	close(hold)
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	if dropped.n.Load() < 9 {
		t.Fatalf("dropped %d records with a 1-slot buffer and a stalled writer, want >= 9", dropped.n.Load())
	}
	_, rec := openTest(t, dir)
	if got := len(rec.Records) + int(dropped.n.Load()); got != 10 {
		t.Fatalf("written (%d) + dropped (%d) != appended (10)", len(rec.Records), dropped.n.Load())
	}
}
