// Package env defines the control-plane contract between schedulers (the
// DRL agents and the baselines) and the DSDPS under control.
//
// The paper's framework interacts with Storm through exactly this narrow
// interface (§3.1): push a scheduling solution, wait for the system to
// re-stabilize, and read back the average end-to-end tuple processing time.
// Two implementations exist: the discrete-event simulator (internal/sim),
// which stands in for the physical Storm cluster, and the fast analytic
// queueing evaluator (internal/analytic) used inside training loops.
package env

import "math/rand"

// Environment is a DSDPS that can be scheduled and measured.
type Environment interface {
	// N returns the number of schedulable threads (executors).
	N() int
	// M returns the number of worker machines.
	M() int
	// Workload returns the current tuple arrival rate of each data source
	// (spout component), in tuples/second — the w part of the DRL state.
	Workload() []float64
	// AvgTupleTimeMS deploys the assignment (len N, values in [0,M)),
	// lets the system stabilize, and returns the measured average
	// end-to-end tuple processing time in milliseconds.
	AvgTupleTimeMS(assign []int) float64
}

// Noisy wraps an Environment and perturbs measurements with multiplicative
// Gaussian noise, modeling real-cluster measurement jitter.
type Noisy struct {
	Environment
	Sigma float64
	Rng   *rand.Rand
}

// AvgTupleTimeMS implements Environment with jitter.
func (n *Noisy) AvgTupleTimeMS(assign []int) float64 {
	v := n.Environment.AvgTupleTimeMS(assign)
	return v * (1 + n.Sigma*n.Rng.NormFloat64())
}
