// Package env defines the control-plane contract between schedulers (the
// DRL agents and the baselines) and the DSDPS under control.
//
// The paper's framework interacts with Storm through exactly this narrow
// interface (§3.1): push a scheduling solution, wait for the system to
// re-stabilize, and read back the average end-to-end tuple processing time.
// Two implementations exist: the discrete-event simulator (internal/sim),
// which stands in for the physical Storm cluster, and the fast analytic
// queueing evaluator (internal/analytic) used inside training loops.
package env

import "math/rand"

// Environment is a DSDPS that can be scheduled and measured.
type Environment interface {
	// N returns the number of schedulable threads (executors).
	N() int
	// M returns the number of worker machines.
	M() int
	// Workload returns the current tuple arrival rate of each data source
	// (spout component), in tuples/second — the w part of the DRL state.
	Workload() []float64
	// AvgTupleTimeMS deploys the assignment (len N, values in [0,M)),
	// lets the system stabilize, and returns the measured average
	// end-to-end tuple processing time in milliseconds.
	AvgTupleTimeMS(assign []int) float64
}

// SlotMeasurer is an Environment whose measurements can also be taken by
// slot: AvgTupleTimeMSSlot derives any measurement jitter from a
// dedicated per-slot RNG stream, so the result depends only on
// (slot, assign) — never on call order — and independent rollouts can fan
// out across a worker pool while staying deterministic for every worker
// count. SlotsConcurrent reports whether distinct slots may actually be
// measured from different goroutines (a wrapper can only be as safe as
// the environment it wraps).
type SlotMeasurer interface {
	Environment
	AvgTupleTimeMSSlot(slot int64, assign []int) float64
	SlotsConcurrent() bool
}

// Noisy wraps an Environment and perturbs measurements with multiplicative
// Gaussian noise, modeling real-cluster measurement jitter.
type Noisy struct {
	Environment
	Sigma float64
	Rng   *rand.Rand
	// StreamSeed seeds the per-slot jitter streams of AvgTupleTimeMSSlot
	// (the ordered AvgTupleTimeMS path keeps drawing from Rng).
	StreamSeed int64
}

// AvgTupleTimeMS implements Environment with jitter.
func (n *Noisy) AvgTupleTimeMS(assign []int) float64 {
	v := n.Environment.AvgTupleTimeMS(assign)
	return v * (1 + n.Sigma*n.Rng.NormFloat64())
}

// AvgTupleTimeMSSlot implements SlotMeasurer: the jitter comes from a
// stream derived from (StreamSeed, slot), so a batch of rollouts measured
// out of order — or concurrently — produces exactly the values an
// in-order run would.
func (n *Noisy) AvgTupleTimeMSSlot(slot int64, assign []int) float64 {
	var v float64
	if sm, ok := n.Environment.(SlotMeasurer); ok {
		v = sm.AvgTupleTimeMSSlot(slot, assign)
	} else {
		v = n.Environment.AvgTupleTimeMS(assign)
	}
	rng := rand.New(rand.NewSource(n.StreamSeed ^ int64(uint64(slot+1)*0x9E3779B97F4A7C15)))
	return v * (1 + n.Sigma*rng.NormFloat64())
}

// SlotsConcurrent implements SlotMeasurer: the wrapper adds no shared
// state on the slot path, so concurrency is inherited from the wrapped
// environment.
func (n *Noisy) SlotsConcurrent() bool {
	sm, ok := n.Environment.(SlotMeasurer)
	return ok && sm.SlotsConcurrent()
}
