package env

import (
	"math"
	"math/rand"
	"testing"
)

// fixed is a stub environment with a constant measurement.
type fixed struct{ v float64 }

func (f fixed) N() int                         { return 4 }
func (f fixed) M() int                         { return 2 }
func (f fixed) Workload() []float64            { return []float64{100} }
func (f fixed) AvgTupleTimeMS(a []int) float64 { return f.v }

func TestNoisyPerturbsAroundTruth(t *testing.T) {
	n := &Noisy{Environment: fixed{v: 10}, Sigma: 0.05, Rng: rand.New(rand.NewSource(1))}
	var sum, sumSq float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		v := n.AvgTupleTimeMS(nil)
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("noisy mean %v want ≈10", mean)
	}
	if std < 0.3 || std > 0.7 {
		t.Fatalf("noisy std %v want ≈0.5", std)
	}
}

func TestNoisyDelegates(t *testing.T) {
	n := &Noisy{Environment: fixed{v: 1}, Sigma: 0, Rng: rand.New(rand.NewSource(2))}
	if n.N() != 4 || n.M() != 2 || n.Workload()[0] != 100 {
		t.Fatal("Noisy must delegate metadata")
	}
	if n.AvgTupleTimeMS(nil) != 1 {
		t.Fatal("zero sigma should pass measurements through")
	}
}
