package mat

import "fmt"

// Shape-mismatch panics. Every dimension panic in this package goes
// through shapePanic so the messages are uniform: they start with
// "mat: <op>:" (naming the kernel the caller misused), and shapes are
// always rendered R×C as "%dx%d" — transposed operands as "(RxC)ᵀ" —
// rather than each call site inventing its own format.

// dims renders an R×C shape.
func dims(r, c int) string { return fmt.Sprintf("%dx%d", r, c) }

// dimsT renders the shape of a transposed operand.
func dimsT(r, c int) string { return "(" + dims(r, c) + ")ᵀ" }

// vec renders a vector-length operand.
func vec(name string, n int) string { return fmt.Sprintf("|%s|=%d", name, n) }

// shapePanic raises the uniform dimension-mismatch panic for op.
func shapePanic(op, format string, args ...any) {
	panic(fmt.Sprintf("mat: %s: %s", op, fmt.Sprintf(format, args...)))
}
