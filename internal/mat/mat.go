// Package mat provides the dense float64 vector and matrix kernels used by
// the neural-network and reinforcement-learning packages.
//
// The package is deliberately small: it implements exactly the operations a
// 2-layer feedforward network with backpropagation needs (GEMM, GEMV, outer
// products, element-wise maps, axpy) plus a handful of statistics helpers.
// Matrices are stored row-major in a single backing slice so that the hot
// loops are cache-friendly and allocation-free when the caller reuses
// destinations.
package mat

import (
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		shapePanic("NewMatrix", "negative dimensions %s", dims(rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Reshape resizes m to rows×cols in place: the backing array is reused
// (and its retained prefix preserved) when it has capacity, and grown —
// zeroed, prior contents discarded — otherwise. Grow-only workspaces use
// it to track fluctuating batch sizes off one high-water-mark allocation
// instead of reallocating whenever the batch size changes.
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		shapePanic("Reshape", "negative dimensions %s", dims(rows, cols))
	}
	if cap(m.Data) < rows*cols {
		m.Data = make([]float64, rows*cols)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:rows*cols]
}

// FromSlice wraps data (row-major) as a rows×cols matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		shapePanic("FromSlice", "got %d values for %s", len(data), dims(rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		shapePanic("CopyFrom", "%s vs %s", dims(m.Rows, m.Cols), dims(src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Randomize fills m with samples from U[-scale, scale] drawn from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// XavierInit fills m with the Glorot/Xavier uniform initialization for a
// layer with fanIn inputs and fanOut outputs.
func (m *Matrix) XavierInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.Randomize(rng, limit)
}

// MulVec computes dst = m · x (GEMV). dst must have length m.Rows and x
// length m.Cols. dst may not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		shapePanic("MulVec", "%s with %s %s", dims(m.Rows, m.Cols), vec("x", len(x)), vec("dst", len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = dot(m.Data[i*m.Cols:(i+1)*m.Cols], x)
	}
}

// dot is the unrolled inner-product kernel shared by the GEMV and GEMM
// routines. Four independent accumulators break the 4-cycle FP-add
// dependency chain of a naive loop (~3× on long rows); using one kernel
// everywhere keeps per-sample and batched passes bitwise identical.
func dot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	b = b[:len(a)]
	for t := 0; t < n; t += 4 {
		s0 += a[t] * b[t]
		s1 += a[t+1] * b[t+1]
		s2 += a[t+2] * b[t+2]
		s3 += a[t+3] * b[t+3]
	}
	for t := n; t < len(a); t++ {
		s0 += a[t] * b[t]
	}
	return (s0 + s1) + (s2 + s3)
}

// dot2 computes the inner products of a with b1 and with b2 in one pass,
// each with exactly dot's 4-lane accumulation order — bitwise identical
// to two dot calls — while loading a once instead of twice.
func dot2(a, b1, b2 []float64) (float64, float64) {
	var s0, s1, s2, s3 float64
	var t0, t1, t2, t3 float64
	n := len(a) &^ 3
	b1 = b1[:len(a)]
	b2 = b2[:len(a)]
	for t := 0; t < n; t += 4 {
		a0, a1, a2, a3 := a[t], a[t+1], a[t+2], a[t+3]
		s0 += a0 * b1[t]
		s1 += a1 * b1[t+1]
		s2 += a2 * b1[t+2]
		s3 += a3 * b1[t+3]
		t0 += a0 * b2[t]
		t1 += a1 * b2[t+1]
		t2 += a2 * b2[t+2]
		t3 += a3 * b2[t+3]
	}
	for t := n; t < len(a); t++ {
		s0 += a[t] * b1[t]
		t0 += a[t] * b2[t]
	}
	return (s0 + s1) + (s2 + s3), (t0 + t1) + (t2 + t3)
}

// axpy2 performs dst += f1·s1 followed by dst += f2·s2 in one pass. The
// two updates stay separate adds per element (the intermediate simply is
// not stored), so the result is bitwise identical to two consecutive axpy
// calls — but dst is loaded and stored once instead of twice, which
// matters because the rowwise GEMM form is store-bound.
func axpy2(dst, s1, s2 []float64, f1, f2 float64) {
	n := len(dst) &^ 3
	s1 = s1[:len(dst)]
	s2 = s2[:len(dst)]
	for t := 0; t < n; t += 4 {
		v0 := dst[t] + f1*s1[t]
		v1 := dst[t+1] + f1*s1[t+1]
		v2 := dst[t+2] + f1*s1[t+2]
		v3 := dst[t+3] + f1*s1[t+3]
		dst[t] = v0 + f2*s2[t]
		dst[t+1] = v1 + f2*s2[t+1]
		dst[t+2] = v2 + f2*s2[t+2]
		dst[t+3] = v3 + f2*s2[t+3]
	}
	for t := n; t < len(dst); t++ {
		v := dst[t] + f1*s1[t]
		dst[t] = v + f2*s2[t]
	}
}

// axpy is the unrolled dst += f·src kernel shared by the GEMV and GEMM
// routines. Unrolling amortizes bounds checks and loop overhead; since every
// element is independent, results are bitwise identical to the naive loop.
func axpy(dst, src []float64, f float64) {
	n := len(dst) &^ 3
	src = src[:len(dst)]
	for t := 0; t < n; t += 4 {
		dst[t] += f * src[t]
		dst[t+1] += f * src[t+1]
		dst[t+2] += f * src[t+2]
		dst[t+3] += f * src[t+3]
	}
	for t := n; t < len(dst); t++ {
		dst[t] += f * src[t]
	}
}

// MulVecT computes dst = mᵀ · x. dst must have length m.Cols and x length
// m.Rows. Used for backpropagating deltas through a weight matrix.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		shapePanic("MulVecT", "%s with %s %s", dimsT(m.Rows, m.Cols), vec("x", len(x)), vec("dst", len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		axpy(dst, m.Data[i*m.Cols:(i+1)*m.Cols], xi)
	}
}

// AddOuterScaled accumulates m += scale · a ⊗ b, where a has length m.Rows
// and b length m.Cols. Used for weight-gradient accumulation.
func (m *Matrix) AddOuterScaled(a, b []float64, scale float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		shapePanic("AddOuterScaled", "%s with %s %s", dims(m.Rows, m.Cols), vec("a", len(a)), vec("b", len(b)))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		axpy(m.Data[i*m.Cols:(i+1)*m.Cols], b, ai*scale)
	}
}

// Axpy computes m += scale · other element-wise.
func (m *Matrix) Axpy(other *Matrix, scale float64) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		shapePanic("Axpy", "%s vs %s", dims(m.Rows, m.Cols), dims(other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += scale * v
	}
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MaxAbs returns the largest absolute element value in m (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Vector helpers ------------------------------------------------------------

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		shapePanic("Dot", "%s vs %s", vec("a", len(a)), vec("b", len(b)))
	}
	return dot(a, b)
}

// AxpyVec computes dst += scale · src element-wise.
func AxpyVec(dst, src []float64, scale float64) {
	if len(dst) != len(src) {
		shapePanic("AxpyVec", "%s vs %s", vec("dst", len(dst)), vec("src", len(src)))
	}
	axpy(dst, src, scale)
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// SumVec returns the sum of the elements of v.
func SumVec(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// MeanVec returns the arithmetic mean of v (0 for empty input).
func MeanVec(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// Argmax returns the index of the largest element of v (-1 for empty input).
// Ties resolve to the lowest index.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Argmin returns the index of the smallest element of v (-1 for empty input).
func Argmin(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] < best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		shapePanic("SqDist", "%s vs %s", vec("a", len(a)), vec("b", len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Clip bounds every element of v to [lo, hi] in place.
func Clip(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// Softmax writes the softmax of src into dst (numerically stable).
func Softmax(dst, src []float64) {
	if len(dst) != len(src) {
		shapePanic("Softmax", "%s vs %s", vec("dst", len(dst)), vec("src", len(src)))
	}
	if len(src) == 0 {
		return
	}
	mx := src[0]
	for _, v := range src[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - mx)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}
