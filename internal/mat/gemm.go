package mat

// Batched GEMM entry points for minibatch neural-network passes.
//
// Two execution engines sit behind the three routines (see blocked.go for
// the engine itself and the dispatch rules):
//
//   - the **reference** engine: the PR 1 scalar kernels whose per-row
//     accumulation order matches the per-sample GEMV kernels (MulVec,
//     MulVecT, AddOuterScaled) bitwise — a batched pass over H rows equals
//     H per-sample passes exactly;
//   - the **blocked** engine (default): a register- and cache-blocked GEMM
//     with packed tiles and a 4×4 micro-kernel. It reassociates each
//     output element's reduction (one strict ascending-k chain instead of
//     the GEMV kernels' 4-lane split), so it agrees with the reference
//     engine to ~1e-12 relative error rather than bitwise. Its order is
//     fixed by the shape alone, so results are bitwise reproducible
//     run-to-run and identical for every worker count.
//
// SetKernelMode(KernelReference) forces the reference engine everywhere —
// the mode the bitwise batched-vs-per-sample equivalences hold in.
//
// The P variants (MatmulP, MatmulNTP, AddMatmulTNScaledP) additionally
// shard fixed row bands of the output across a shared parallel.Sem worker
// pool; the plain forms are the P forms with no pool.

// Matmul computes dst = a · b. a is R×K, b is K×C, dst is R×C. dst may not
// alias a or b. The inner loop runs over contiguous rows of b (axpy form)
// and zero coefficients of a are skipped — the shape that keeps
// one-hot-dominated inputs and ReLU backward passes cheap. This form runs
// the rowwise kernels in both engine modes: each output row is computed
// independently of the others, so a row's result is bitwise invariant to
// the batch it arrives in — the property the serving path's
// timing-dependent micro-batching relies on (see blocked.go).
func Matmul(dst, a, b *Matrix) {
	MatmulP(dst, a, b, nil, nil)
}

// MatmulNT computes dst = a · bᵀ. a is R×K, b is C×K (transposed operand),
// dst is R×C. In the reference engine every dst element is a dot product of
// two contiguous row-major rows — the layout of a forward pass Y = X·Wᵀ
// with row-major weights W (Out×In), needing no transposed weight copy. The
// blocked engine packs both operands instead, trading the copy for 4×4
// register reuse.
func MatmulNT(dst, a, b *Matrix) {
	MatmulNTP(dst, a, b, nil, nil)
}

// AddMatmulTNScaled accumulates m += scale · aᵀ · b. a is H×R, b is H×C, m
// is R×C. This is the weight-gradient kernel: with a = batch deltas and b =
// batch inputs it accumulates the same sum of scaled outer products as H
// AddOuterScaled calls (in the same order, in the reference engine).
func (m *Matrix) AddMatmulTNScaled(a, b *Matrix, scale float64) {
	m.AddMatmulTNScaledP(a, b, scale, nil, nil)
}

// Reference band kernels ----------------------------------------------------
//
// Each computes rows [lo, hi) of the output with the PR 1 scalar loops.
// Per output row the arithmetic is identical to the full-range loop, so a
// banded run — sequential or sharded — is bitwise identical to the
// original single-loop kernels.

// matmulRefBand: dst rows [lo, hi) of dst = a·b, axpy form with zero
// skipping on a's coefficients. Consecutive nonzero coefficients are
// consumed in pairs through the fused axpy2 kernel — bitwise identical to
// one axpy per coefficient, with half the dst traffic.
func matmulRefBand(dst, a, b *Matrix, lo, hi int) {
	bc := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		k := 0
		for k < len(arow) {
			f1 := arow[k]
			if f1 == 0 {
				k++
				continue
			}
			k1 := k
			for k++; k < len(arow) && arow[k] == 0; k++ {
			}
			if k == len(arow) {
				axpy(drow, b.Data[k1*bc:(k1+1)*bc], f1)
				break
			}
			axpy2(drow, b.Data[k1*bc:(k1+1)*bc], b.Data[k*bc:(k+1)*bc], f1, arow[k])
			k++
		}
	}
}

// matmulNTRefBand: dst rows [lo, hi) of dst = a·bᵀ, dot form. Output
// columns are consumed in pairs through the fused dot2 kernel — bitwise
// identical to one dot per column, loading the shared a row half as often.
func matmulNTRefBand(dst, a, b *Matrix, lo, hi int) {
	bc := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		j := 0
		for ; j+1 < b.Rows; j += 2 {
			drow[j], drow[j+1] = dot2(arow, b.Data[j*bc:(j+1)*bc], b.Data[(j+1)*bc:(j+2)*bc])
		}
		if j < b.Rows {
			drow[j] = dot(arow, b.Data[j*bc:(j+1)*bc])
		}
	}
}

// addMatmulTNScaledRefBand: m rows [lo, hi) of m += scale·aᵀ·b. The loop
// is the reference kernel's with the (h, i) loops interchanged; per output
// row i the contributions still arrive in ascending-h order, so the result
// is bitwise identical to the reference kernel.
func addMatmulTNScaledRefBand(m, a, b *Matrix, scale float64, lo, hi int) {
	for h := 0; h < a.Rows; h++ {
		arow := a.Row(h)
		brow := b.Row(h)
		for i := lo; i < hi; i++ {
			ai := arow[i]
			if ai == 0 {
				continue
			}
			axpy(m.Data[i*m.Cols:(i+1)*m.Cols], brow, ai*scale)
		}
	}
}

// AddColSumScaled accumulates dst += scale · column-sums of a: the batched
// bias-gradient kernel. dst has length a.Cols.
func AddColSumScaled(dst []float64, a *Matrix, scale float64) {
	if len(dst) != a.Cols {
		shapePanic("AddColSumScaled", "%s for %s", vec("dst", len(dst)), dims(a.Rows, a.Cols))
	}
	for h := 0; h < a.Rows; h++ {
		row := a.Row(h)
		for j, v := range row {
			dst[j] += scale * v
		}
	}
}
