package mat

import "fmt"

// Batched GEMM kernels for minibatch neural-network passes. All three
// routines are written so their per-row accumulation order matches the
// per-sample GEMV kernels (MulVec, MulVecT, AddOuterScaled): a batched
// forward/backward pass over H rows produces bitwise-identical results to H
// per-sample passes, which keeps the batched training path numerically
// interchangeable with the per-sample one.

// Matmul computes dst = a · b. a is R×K, b is K×C, dst is R×C. dst may not
// alias a or b. The inner loop runs over contiguous rows of b (axpy form),
// so the row-major layout is traversed sequentially; zero coefficients are
// skipped, which also makes the backward pass through ReLU layers cheap.
func Matmul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Matmul %dx%d · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, f := range arow {
			if f == 0 {
				continue
			}
			axpy(drow, b.Data[k*b.Cols:(k+1)*b.Cols], f)
		}
	}
}

// MatmulNT computes dst = a · bᵀ. a is R×K, b is C×K (transposed operand),
// dst is R×C. Every dst element is a dot product of two contiguous
// row-major rows, the cache-ideal layout for a forward pass Y = X·Wᵀ with
// row-major weights W (Out×In): no transposed weight copy is needed.
func MatmulNT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatmulNT %dx%d · (%dx%d)ᵀ -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = dot(arow, b.Data[j*b.Cols:(j+1)*b.Cols])
		}
	}
}

// AddMatmulTNScaled accumulates m += scale · aᵀ · b. a is H×R, b is H×C, m
// is R×C. This is the weight-gradient kernel: with a = batch deltas and b =
// batch inputs it accumulates the same sum of scaled outer products as H
// AddOuterScaled calls, in the same order.
func (m *Matrix) AddMatmulTNScaled(a, b *Matrix, scale float64) {
	if a.Rows != b.Rows || m.Rows != a.Cols || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: AddMatmulTNScaled (%dx%d)ᵀ · %dx%d -> %dx%d", a.Rows, a.Cols, b.Rows, b.Cols, m.Rows, m.Cols))
	}
	for h := 0; h < a.Rows; h++ {
		arow := a.Row(h)
		brow := b.Row(h)
		for i, ai := range arow {
			if ai == 0 {
				continue
			}
			axpy(m.Data[i*m.Cols:(i+1)*m.Cols], brow, ai*scale)
		}
	}
}

// AddColSumScaled accumulates dst += scale · column-sums of a: the batched
// bias-gradient kernel. dst has length a.Cols.
func AddColSumScaled(dst []float64, a *Matrix, scale float64) {
	if len(dst) != a.Cols {
		panic(fmt.Sprintf("mat: AddColSumScaled |dst|=%d for %dx%d", len(dst), a.Rows, a.Cols))
	}
	for h := 0; h < a.Rows; h++ {
		row := a.Row(h)
		for j, v := range row {
			dst[j] += scale * v
		}
	}
}
