package mat

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// Benchmark shapes mirror the repo's hot GEMMs: the actor-critic target
// pass scores H·K=256 candidate rows of width 242 against 64×242 layer-1
// weights (MatmulNT), and the weight-gradient kernel accumulates the
// transposed product of the same batch (AddMatmulTNScaled).

func benchNT(b *testing.B, mode KernelMode, workers int, sparse bool) {
	prev := SetKernelMode(mode)
	defer SetKernelMode(prev)
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 256, 242)
	if sparse {
		// One-hot-dominated rows: ~17% density, the serving/candidate
		// layer-1 shape.
		x.Zero()
		for r := 0; r < x.Rows; r++ {
			row := x.Row(r)
			for i := 0; i < 40; i++ {
				row[rng.Intn(len(row))] = 1
			}
		}
	}
	w := randMat(rng, 64, 242)
	dst := NewMatrix(256, 64)
	var pool *parallel.Sem
	if workers > 1 {
		pool = parallel.NewSem(workers - 1)
	}
	ws := new(Workspace)
	b.ReportAllocs()
	b.SetBytes(int64(8 * 256 * 242 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatmulNTP(dst, x, w, ws, pool)
	}
}

func BenchmarkMatmulNTReference(b *testing.B)     { benchNT(b, KernelReference, 1, false) }
func BenchmarkMatmulNTBlocked(b *testing.B)       { benchNT(b, KernelBlocked, 1, false) }
func BenchmarkMatmulNTBlockedOneHot(b *testing.B) { benchNT(b, KernelBlocked, 1, true) }
func BenchmarkMatmulNTRefOneHot(b *testing.B)     { benchNT(b, KernelReference, 1, true) }

func benchTN(b *testing.B, mode KernelMode, sparse bool) {
	prev := SetKernelMode(mode)
	defer SetKernelMode(prev)
	rng := rand.New(rand.NewSource(1))
	delta := randMat(rng, 256, 64)
	x := randMat(rng, 256, 242)
	if sparse {
		// The weight-gradient form's b operand is the layer input batch:
		// one-hot dominated on layer 1.
		x.Zero()
		for r := 0; r < x.Rows; r++ {
			row := x.Row(r)
			for i := 0; i < 40; i++ {
				row[rng.Intn(len(row))] = 1
			}
		}
	}
	m := NewMatrix(64, 242)
	ws := new(Workspace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddMatmulTNScaledP(delta, x, 1.0/256, ws, nil)
	}
}

func BenchmarkAddMatmulTNReference(b *testing.B)     { benchTN(b, KernelReference, false) }
func BenchmarkAddMatmulTNBlocked(b *testing.B)       { benchTN(b, KernelBlocked, false) }
func BenchmarkAddMatmulTNRefOneHot(b *testing.B)     { benchTN(b, KernelReference, true) }
func BenchmarkAddMatmulTNBlockedOneHot(b *testing.B) { benchTN(b, KernelBlocked, true) }
