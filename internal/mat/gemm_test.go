package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	m.Randomize(rng, 2)
	return m
}

// naive reference: dst[i][j] = Σ_k a[i][k]·b[k][j]
func naiveMatmul(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func TestMatmulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {32, 122, 64}, {9, 4, 13}} {
		r, k, c := dims[0], dims[1], dims[2]
		a, b := randMat(rng, r, k), randMat(rng, k, c)
		dst := NewMatrix(r, c)
		Matmul(dst, a, b)
		want := naiveMatmul(a, b)
		for i, v := range dst.Data {
			if math.Abs(v-want.Data[i]) > 1e-12 {
				t.Fatalf("Matmul %dx%dx%d: element %d got %g want %g", r, k, c, i, v, want.Data[i])
			}
		}
	}
}

// TestMatmulNTMatchesMulVec pins the two-tier numerical contract against
// the per-sample GEMV path: bitwise identity in reference mode (the
// kernels share one accumulation order), 1e-12 agreement in the default
// blocked mode (the blocked engine reassociates each reduction).
func TestMatmulNTMatchesMulVec(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    KernelMode
		bitwise bool
	}{
		{"reference", KernelReference, true},
		{"blocked", KernelBlocked, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prev := SetKernelMode(tc.mode)
			defer SetKernelMode(prev)
			rng := rand.New(rand.NewSource(2))
			a := randMat(rng, 68, 161) // batch of 68 inputs (big enough to engage the blocked engine)
			w := randMat(rng, 23, 161) // Out×In weights
			dst := NewMatrix(68, 23)
			MatmulNT(dst, a, w)
			row := make([]float64, 23)
			for h := 0; h < 68; h++ {
				w.MulVec(row, a.Row(h))
				for j, v := range row {
					if tc.bitwise && dst.At(h, j) != v {
						t.Fatalf("MatmulNT row %d col %d: %g != MulVec %g (must be bitwise identical in reference mode)", h, j, dst.At(h, j), v)
					}
					if d := math.Abs(dst.At(h, j) - v); d > 1e-12 {
						t.Fatalf("MatmulNT row %d col %d: %g vs MulVec %g (|Δ|=%g)", h, j, dst.At(h, j), v, d)
					}
				}
			}
		})
	}
}

// TestAddMatmulTNScaledMatchesOuterSum: same two-tier contract for the
// weight-gradient kernel against per-sample outer products.
func TestAddMatmulTNScaledMatchesOuterSum(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mode    KernelMode
		bitwise bool
	}{
		{"reference", KernelReference, true},
		{"blocked", KernelBlocked, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prev := SetKernelMode(tc.mode)
			defer SetKernelMode(prev)
			rng := rand.New(rand.NewSource(3))
			delta := randMat(rng, 41, 29)
			x := randMat(rng, 41, 34)
			got := NewMatrix(29, 34)
			got.Fill(0.5)
			want := got.Clone()
			got.AddMatmulTNScaled(delta, x, 0.25)
			for h := 0; h < 41; h++ {
				want.AddOuterScaled(delta.Row(h), x.Row(h), 0.25)
			}
			for i, v := range got.Data {
				if tc.bitwise && v != want.Data[i] {
					t.Fatalf("element %d: %g != %g (must be bitwise identical in reference mode)", i, v, want.Data[i])
				}
				if d := math.Abs(v - want.Data[i]); d > 1e-12 {
					t.Fatalf("element %d: %g vs %g (|Δ|=%g)", i, v, want.Data[i], d)
				}
			}
		})
	}
}

func TestAddColSumScaled(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	dst := []float64{1, 1, 1}
	AddColSumScaled(dst, a, 2)
	want := []float64{11, 15, 19}
	for i, v := range dst {
		if v != want[i] {
			t.Fatalf("col %d: got %g want %g", i, v, want[i])
		}
	}
}

// BenchmarkMatmul measures the batched forward-pass GEMM at the critic's
// candidate-scoring shape: a 256×242 minibatch against 64×242 weights.
func BenchmarkMatmul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 256, 242)
	w := randMat(rng, 64, 242)
	dst := NewMatrix(256, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatmulNT(dst, x, w)
	}
	b.SetBytes(int64(8 * 256 * 242 * 64))
}
