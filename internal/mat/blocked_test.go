package mat

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/parallel"
)

// forms under test, with closures that run each engine explicitly.
var gemmForms = []struct {
	name string
	form gemmForm
}{
	{"NN", formNN},
	{"NT", formNT},
	{"TNAdd", formTNAdd},
}

// operands builds (a, b, dst) for a form given output R×C and reduction K.
func operands(rng *rand.Rand, form gemmForm, r, k, c int, sparsify float64) (a, b, dst *Matrix) {
	switch form {
	case formNN:
		a, b = randMat(rng, r, k), randMat(rng, k, c)
	case formNT:
		a, b = randMat(rng, r, k), randMat(rng, c, k)
	default: // formTNAdd: a is K×R, b is K×C
		a, b = randMat(rng, k, r), randMat(rng, k, c)
	}
	if sparsify > 0 {
		for _, m := range []*Matrix{a, b} {
			for i := range m.Data {
				if rng.Float64() < sparsify {
					m.Data[i] = 0
				}
			}
		}
	}
	dst = NewMatrix(r, c)
	dst.Randomize(rng, 1) // nonzero so the TNAdd accumulate semantics are exercised
	return a, b, dst
}

// runRef computes the product on the reference band kernels.
func runRef(dst, a, b *Matrix, form gemmForm, scale float64) {
	refBand(dst, a, b, form, scale, 0, dst.Rows)
}

// runBlocked forces the blocked engine regardless of the dispatch
// thresholds, so odd and tiny shapes exercise the packing/edge handling.
func runBlocked(dst, a, b *Matrix, form gemmForm, scale float64) {
	ws := new(Workspace)
	gemmBlocked(dst, a, b, form, scale, ws, 0, dst.Rows)
}

// TestBlockedMatchesReferenceOddShapes is the blocked engine's property
// test: for every form, across shapes chosen to hit each edge case — 1×1,
// prime dimensions, R/C/K that are not multiples of the 4×4 tile or of
// the 64-row shard band, empty matrices, K=0, all-zero rows and one-hot
// sparsity (which flips the engine between its dense, lane-skipping and
// row-skipping kernels) — the blocked result must agree with the scalar
// reference to 1e-12.
func TestBlockedMatchesReferenceOddShapes(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {3, 1, 2},
		{5, 7, 11}, {13, 17, 19}, // primes
		{4, 4, 4}, {8, 16, 8},
		{6, 10, 9}, {63, 65, 67}, {66, 127, 70}, // non-multiples of mr/nr/bandRows
		{64, 256, 64},                   // exact tile/panel/band multiples
		{70, 300, 257},                  // crosses the kc and nc panel boundaries
		{130, 242, 64},                  // the hot training shape family
		{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, // empty
	}
	for _, f := range gemmForms {
		for _, sp := range []float64{0, 0.5, 0.9} {
			for _, sh := range shapes {
				r, k, c := sh[0], sh[1], sh[2]
				rng := rand.New(rand.NewSource(int64(1000*r + 10*k + c + int(sp*7))))
				a, b, dst := operands(rng, f.form, r, k, c, sp)
				want := dst.Clone()
				runRef(want, a, b, f.form, 0.25)
				got := dst.Clone()
				runBlocked(got, a, b, f.form, 0.25)
				for i := range got.Data {
					if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
						t.Fatalf("%s %dx%dx%d sparsity %.1f: element %d blocked=%g ref=%g (|Δ|=%g)",
							f.name, r, k, c, sp, i, got.Data[i], want.Data[i], d)
					}
				}
			}
		}
	}
}

// TestBlockedAllZeroRows: rows of zeros must produce exactly-zero output
// rows (and trigger the lane-skipping kernel) in every engine.
func TestBlockedAllZeroRows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b, dst := operands(rng, formNT, 24, 40, 12, 0)
	for r := 0; r < 24; r += 2 {
		row := a.Row(r)
		for i := range row {
			row[i] = 0
		}
	}
	dst.Zero()
	runBlocked(dst, a, b, formNT, 0)
	for r := 0; r < 24; r += 2 {
		for j := 0; j < 12; j++ {
			if dst.At(r, j) != 0 {
				t.Fatalf("zero input row %d produced nonzero output %g", r, dst.At(r, j))
			}
		}
	}
}

// TestPublicDispatchMatchesReference drives the public entry points (which
// pick engines by sparsity and size) against the reference kernels across
// the density spectrum, including the transpose (NT) and swapped-gradient
// (TNAdd) sparse fast paths.
func TestPublicDispatchMatchesReference(t *testing.T) {
	prev := SetKernelMode(KernelBlocked)
	defer SetKernelMode(prev)
	for _, f := range gemmForms {
		for _, sp := range []float64{0, 0.3, 0.6, 0.85, 1.0} {
			rng := rand.New(rand.NewSource(int64(100 * (sp + 1))))
			a, b, dst := operands(rng, f.form, 66, 150, 30, sp)
			want := dst.Clone()
			got := dst.Clone()
			switch f.form {
			case formNN:
				runRef(want, a, b, formNN, 0)
				MatmulP(got, a, b, nil, nil)
			case formNT:
				runRef(want, a, b, formNT, 0)
				MatmulNTP(got, a, b, nil, nil)
			default:
				runRef(want, a, b, formTNAdd, 0.5)
				got.AddMatmulTNScaledP(a, b, 0.5, nil, nil)
			}
			for i := range got.Data {
				if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
					t.Fatalf("%s sparsity %.2f: element %d got %g want %g (|Δ|=%g)",
						f.name, sp, i, got.Data[i], want.Data[i], d)
				}
			}
		}
	}
}

// TestShardedBitwiseEqualsSequential is the determinism guarantee of the
// P variants: for every pool capacity (including a saturated pool whose
// helpers rarely win tokens), the sharded result must be *bitwise*
// identical to the same engine run with no pool at all — the tile→worker
// assignment moves work between goroutines, never arithmetic.
func TestShardedBitwiseEqualsSequential(t *testing.T) {
	for _, mode := range []KernelMode{KernelBlocked, KernelReference} {
		for _, sp := range []float64{0, 0.5, 0.85} {
			rng := rand.New(rand.NewSource(int64(31 + sp*10)))
			// Big enough to form several bands and exceed shardMinMACs.
			r, k, c := 300, 242, 64
			aNN, bNN, dstNN := operands(rng, formNN, r, k, c, sp)
			aNT, bNT, dstNT := operands(rng, formNT, r, k, c, sp)
			aTN, bTN, dstTN := operands(rng, formTNAdd, 300, 257, 66, sp)

			prev := SetKernelMode(mode)
			seqNN, seqNT, seqTN := dstNN.Clone(), dstNT.Clone(), dstTN.Clone()
			MatmulP(seqNN, aNN, bNN, nil, nil)
			MatmulNTP(seqNT, aNT, bNT, nil, nil)
			seqTN.AddMatmulTNScaledP(aTN, bTN, 0.5, nil, nil)

			for _, workers := range []int{1, 2, 4, 8} {
				pool := parallel.NewSem(workers - 1)
				gotNN, gotNT, gotTN := dstNN.Clone(), dstNT.Clone(), dstTN.Clone()
				if shards := MatmulNTP(gotNT, aNT, bNT, nil, pool); workers > 1 && shards == 0 {
					t.Fatalf("mode %v workers %d: expected MatmulNTP to shard", mode, workers)
				}
				MatmulP(gotNN, aNN, bNN, nil, pool)
				gotTN.AddMatmulTNScaledP(aTN, bTN, 0.5, nil, pool)
				for i := range gotNN.Data {
					if gotNN.Data[i] != seqNN.Data[i] {
						t.Fatalf("mode %v sparsity %.2f workers %d: NN element %d %g != sequential %g",
							mode, sp, workers, i, gotNN.Data[i], seqNN.Data[i])
					}
				}
				for i := range gotNT.Data {
					if gotNT.Data[i] != seqNT.Data[i] {
						t.Fatalf("mode %v sparsity %.2f workers %d: NT element %d %g != sequential %g",
							mode, sp, workers, i, gotNT.Data[i], seqNT.Data[i])
					}
				}
				for i := range gotTN.Data {
					if gotTN.Data[i] != seqTN.Data[i] {
						t.Fatalf("mode %v sparsity %.2f workers %d: TN element %d %g != sequential %g",
							mode, sp, workers, i, gotTN.Data[i], seqTN.Data[i])
					}
				}
			}
			SetKernelMode(prev)
		}
	}
}

// TestShardedConcurrentSaturatedPool hammers the P variants from many
// goroutines sharing one small pool (run under -race in CI): every
// concurrent caller must still get the canonical sequential result while
// helpers contend for tokens.
func TestShardedConcurrentSaturatedPool(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a, b, dst := operands(rng, formNT, 256, 242, 64, 0.8)
	dst.Zero()
	want := dst.Clone()
	MatmulNTP(want, a, b, nil, nil)

	pool := parallel.NewSem(2)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := NewMatrix(256, 64)
			ws := new(Workspace)
			for it := 0; it < 5; it++ {
				MatmulNTP(out, a, b, ws, pool)
				for i := range out.Data {
					if out.Data[i] != want.Data[i] {
						errs <- fmt.Sprintf("element %d: %g != %g", i, out.Data[i], want.Data[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestShapePanicsNameTheKernel: every mismatched-shape panic must name the
// kernel the caller misused and render shapes in the uniform RxC form.
func TestShapePanicsNameTheKernel(t *testing.T) {
	m32 := NewMatrix(3, 2)
	m23 := NewMatrix(2, 3)
	m44 := NewMatrix(4, 4)
	v2 := make([]float64, 2)
	v3 := make([]float64, 3)
	cases := []struct {
		op   string
		call func()
	}{
		{"Matmul", func() { Matmul(m32, m32, m32) }},
		{"MatmulNT", func() { MatmulNT(m32, m32, m44) }},
		{"AddMatmulTNScaled", func() { m32.AddMatmulTNScaled(m23, m44, 1) }},
		{"AddColSumScaled", func() { AddColSumScaled(v2, m23, 1) }},
		{"MulVec", func() { m32.MulVec(v2, v2) }},
		{"MulVecT", func() { m32.MulVecT(v3, v3) }},
		{"AddOuterScaled", func() { m32.AddOuterScaled(v2, v2, 1) }},
		{"CopyFrom", func() { m32.CopyFrom(m23) }},
		{"Axpy", func() { m32.Axpy(m23, 1) }},
		{"Dot", func() { Dot(v2, v3) }},
		{"AxpyVec", func() { AxpyVec(v2, v3, 1) }},
		{"SqDist", func() { SqDist(v2, v3) }},
		{"Softmax", func() { Softmax(v2, v3) }},
		{"FromSlice", func() { FromSlice(2, 2, v3) }},
		{"NewMatrix", func() { NewMatrix(-1, 2) }},
		{"Reshape", func() { m32.Reshape(-1, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.op, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: expected a shape panic", tc.op)
				}
				msg, ok := r.(string)
				if !ok {
					t.Fatalf("%s: panic value %T, want string", tc.op, r)
				}
				if !strings.HasPrefix(msg, "mat: "+tc.op+":") {
					t.Fatalf("%s: panic %q does not start with %q", tc.op, msg, "mat: "+tc.op+":")
				}
			}()
			tc.call()
		})
	}
}

// TestMatmulRowInvariantToBatchComposition pins the serving-path
// guarantee: the Matmul form computes each output row independently, so a
// row's result is bitwise identical whether it is measured alone or
// coalesced into a larger batch — for any density, including the medium
// sparsity and k > kcBlock shapes where the batched engines reassociate.
// (ForwardBatchInfer rides on this: micro-batch composition is
// timing-dependent, a request's action must not be.)
func TestMatmulRowInvariantToBatchComposition(t *testing.T) {
	prev := SetKernelMode(KernelBlocked)
	defer SetKernelMode(prev)
	for _, sp := range []float64{0, 0.5, 0.9} {
		rng := rand.New(rand.NewSource(int64(51 + sp*10)))
		const k, c, h = 387, 64, 8
		batch, b, _ := operands(rng, formNN, h, k, c, sp)
		alone := NewMatrix(1, c)
		got := NewMatrix(h, c)
		MatmulP(got, batch, b, nil, nil)
		for r := 0; r < h; r++ {
			row := FromSlice(1, k, batch.Row(r))
			MatmulP(alone, row, b, nil, nil)
			for j := 0; j < c; j++ {
				if alone.At(0, j) != got.At(r, j) {
					t.Fatalf("sparsity %.1f row %d col %d: alone %g != batched %g (Matmul must be row-invariant)",
						sp, r, j, alone.At(0, j), got.At(r, j))
				}
			}
		}
	}
}
