package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	m.Set(0, 1, 42)
	if d[1] != 42 {
		t.Fatal("FromSlice should wrap, not copy")
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2)=%v want 6", m.At(1, 2))
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, []float64{1})
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestMulVec(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec got %v want [-2 -2]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	m.MulVecT(dst, x)
	want := []float64{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT got %v want %v", dst, want)
		}
	}
}

// Property: MulVecT(x) agrees with explicitly transposing the matrix.
func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		m.Randomize(rng, 1)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulVecT(got, x)
		// Explicit transpose.
		tr := NewMatrix(cols, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				tr.Set(j, i, m.At(i, j))
			}
		}
		want := make([]float64, cols)
		tr.MulVec(want, x)
		for j := range want {
			if !almostEqual(got[j], want[j], 1e-12) {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled([]float64{1, 2}, []float64{3, 4}, 0.5)
	want := []float64{1.5, 2, 3, 4}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("got %v want %v", m.Data, want)
		}
	}
}

func TestAxpyAndScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 1, 1})
	a.Axpy(b, 2)
	a.Scale(0.5)
	want := []float64{1.5, 2, 2.5}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("got %v want %v", a.Data, want)
		}
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMatrix(16, 16)
	m.XavierInit(rng, 16, 16)
	limit := math.Sqrt(6.0 / 32.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier init produced all zeros")
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 {
		t.Fatalf("Dot=%v", Dot(a, a))
	}
	if Norm2(a) != 5 {
		t.Fatalf("Norm2=%v", Norm2(a))
	}
}

func TestSqDist(t *testing.T) {
	if d := SqDist([]float64{1, 2}, []float64{4, 6}); d != 25 {
		t.Fatalf("SqDist=%v want 25", d)
	}
}

func TestArgmaxArgmin(t *testing.T) {
	v := []float64{1, 5, 3, 5, -2}
	if Argmax(v) != 1 {
		t.Fatalf("Argmax=%d want 1 (first of ties)", Argmax(v))
	}
	if Argmin(v) != 4 {
		t.Fatalf("Argmin=%d", Argmin(v))
	}
	if Argmax(nil) != -1 || Argmin(nil) != -1 {
		t.Fatal("empty input should return -1")
	}
}

func TestClip(t *testing.T) {
	v := []float64{-2, 0.5, 3}
	Clip(v, -1, 1)
	want := []float64{-1, 0.5, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("got %v want %v", v, want)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	src := []float64{1, 2, 3, 1000} // large value exercises stability
	dst := make([]float64, 4)
	Softmax(dst, src)
	if !almostEqual(SumVec(dst), 1, 1e-12) {
		t.Fatalf("softmax sums to %v", SumVec(dst))
	}
	if Argmax(dst) != 3 {
		t.Fatal("softmax should preserve argmax")
	}
}

func TestMeanVec(t *testing.T) {
	if MeanVec(nil) != 0 {
		t.Fatal("MeanVec(nil) != 0")
	}
	if MeanVec([]float64{1, 2, 3}) != 2 {
		t.Fatal("MeanVec wrong")
	}
}

// Property-based: Dot is symmetric and linear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		if len(raw) < 2 {
			return true
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.Abs(scale) > 1e6 {
			return true
		}
		// Symmetry.
		if !almostEqual(Dot(a, b), Dot(b, a), 1e-6*(1+math.Abs(Dot(a, b)))) {
			return false
		}
		// Linearity: Dot(scale*a, b) == scale*Dot(a, b).
		sa := make([]float64, n)
		copy(sa, a)
		ScaleVec(sa, scale)
		lhs, rhs := Dot(sa, b), scale*Dot(a, b)
		return almostEqual(lhs, rhs, 1e-6*(1+math.Abs(rhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: SqDist(a,b) == ‖a‖² + ‖b‖² − 2·Dot(a,b).
func TestSqDistIdentity(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw[:2*n] {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e4 {
				return true
			}
		}
		lhs := SqDist(a, b)
		rhs := Dot(a, a) + Dot(b, b) - 2*Dot(a, b)
		return almostEqual(lhs, rhs, 1e-6*(1+math.Abs(rhs)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewMatrix(64, 64)
	m.Randomize(rng, 1)
	x := make([]float64, 64)
	dst := make([]float64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

// TestReshape pins the grow-only workspace contract: growth reallocates
// zeroed storage, shrink-then-regrow within capacity reuses the backing
// array and preserves the retained prefix.
func TestReshape(t *testing.T) {
	var m Matrix
	m.Reshape(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("after grow: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("grown storage not zeroed at %d: %v", i, v)
		}
	}
	for i := range m.Data {
		m.Data[i] = float64(i + 1)
	}
	backing := &m.Data[0]
	m.Reshape(1, 3)
	if m.Rows != 1 || len(m.Data) != 3 || &m.Data[0] != backing {
		t.Fatal("shrink within capacity must reuse the backing array")
	}
	m.Reshape(2, 3)
	if &m.Data[0] != backing {
		t.Fatal("regrow within capacity must reuse the backing array")
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6} {
		if m.Data[i] != want {
			t.Fatalf("retained prefix clobbered at %d: %v", i, m.Data[i])
		}
	}
	m.Reshape(4, 3)
	if m.Rows != 4 || len(m.Data) != 12 {
		t.Fatalf("after realloc: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}
