package mat

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Blocked multi-core GEMM engine.
//
// The engine is a classical register- and cache-blocked GEMM specialized
// to this repo's three product forms (NN, NT, and TN-accumulate):
//
//   - the K dimension is split into panels of kcBlock and the output
//     columns into panels of ncBlock; for each (column, K) panel the B
//     operand is packed once into nr-wide strips (kcBlock·nr floats ≈ 8 KiB
//     per strip — L1-resident; the whole packed panel ≈ 512 KiB — L2);
//   - output rows are walked in mr-row strips; each strip of A is packed
//     into a column-major-by-k tile (mr·kcBlock ≈ 8 KiB, L1-resident);
//   - a 4×4 micro-kernel multiplies one packed A strip by one packed B
//     strip with 16 independent scalar accumulators — the FMA-style
//     unrolled form: every k step issues 8 loads and 16 multiply-adds, so
//     the kernel is arithmetic-bound where the dot/axpy reference kernels
//     are load-bound (2 loads per multiply-add).
//
// Zero-skipping is preserved two ways. The Matmul (NN) form — the
// serving path's inference engine — always runs the rowwise zero-skipping
// axpy form, which elides entire coefficient rows and computes each
// output row independently of the rest of the batch (see the dispatch in
// gemm for why that row invariance is load-bearing). Inside the blocked
// engine, packed A strips with enough zeros run a lane-skipping
// micro-kernel: it omits multiply-adds whose A
// coefficient is exactly zero, which is *bitwise identical* to the dense
// kernel — the skipped products are ±0, adding ±0 to an accumulator that
// is never −0 (accumulators start at +0 and a rounded sum is −0 only when
// both addends are −0) returns it unchanged — so the skip is purely a
// performance dispatch, never a numerical one.
//
// Determinism: every output element's reduction runs in ascending-k order
// within a K panel, panels combine in ascending-panel order, and the
// sharded variants split the output into *fixed* bandRows-row bands, each
// computed wholly by one task. The tile→worker assignment moves work, not
// arithmetic: results are bitwise identical for every worker count
// (including a nil or exhausted pool) and reproducible run-to-run. What
// the engine does reassociate is the reduction *relative to the reference
// kernels* (one strict chain instead of dot's 4-lane split), which is why
// the batched-vs-per-sample equivalences hold to ~1e-12 in blocked mode
// and bitwise only in KernelReference mode.

// KernelMode selects the GEMM execution engine behind Matmul/MatmulNT/
// AddMatmulTNScaled and their P variants.
type KernelMode int32

const (
	// KernelBlocked (default) runs the packed-tile 4×4 micro-kernel
	// engine where profitable, falling back to the reference kernels for
	// small or heavily sparse operands.
	KernelBlocked KernelMode = iota
	// KernelReference forces the scalar reference kernels everywhere —
	// the accumulation order that matches the per-sample GEMV path
	// bitwise. Sharding still applies (band results are order-independent).
	KernelReference
)

var kernelMode atomic.Int32 // holds a KernelMode; zero value = KernelBlocked

// SetKernelMode switches the GEMM engine process-wide and returns the
// previous mode. Intended for tests and benchmark harnesses; production
// code runs the default blocked engine.
func SetKernelMode(m KernelMode) KernelMode {
	return KernelMode(kernelMode.Swap(int32(m)))
}

// CurrentKernelMode reports the active GEMM engine.
func CurrentKernelMode() KernelMode { return KernelMode(kernelMode.Load()) }

// Tiling parameters. bandRows is the sharding granularity and must be a
// multiple of mr: bands are a fixed function of the output shape so the
// tile→worker assignment never depends on pool capacity or timing.
const (
	mr       = 4   // micro-kernel rows
	nr       = 4   // micro-kernel cols
	kcBlock  = 256 // K panel: one packed A or B strip is kcBlock·4·8 B = 8 KiB (L1)
	ncBlock  = 256 // column panel: packed B panel ≤ kcBlock·ncBlock·8 B = 512 KiB (L2)
	bandRows = 64  // rows per shard task

	// blockedMinMACs is the R·K·C work below which packing overhead beats
	// the register-blocking win and the reference kernels run instead.
	blockedMinMACs = 1 << 13
	// shardMinMACs is the work below which a GEMM is not worth fanning
	// out at all.
	shardMinMACs = 1 << 18
	// sparseRowCut is the operand zero fraction above which the rowwise
	// zero-skipping axpy form (which elides whole coefficient rows) beats
	// the blocked kernel's lane skipping, flipping the NT/TN forms onto
	// their transpose/swap fast paths.
	sparseRowCut = 0.75
	// laneEngageCut is the operand zero fraction below which the blocked
	// engine does not engage at all. On scalar float64 the reference
	// dot/axpy kernels already saturate the FP ports for dense operands
	// (mul and add share the two FMA ports, capping any scalar kernel at
	// ~1 MAC/cycle), so register blocking buys nothing there; the blocked
	// engine's edge is its zero-skipping micro-kernels, which only pay
	// off once a meaningful fraction of coefficient lanes vanishes —
	// exactly the shape of this repo's one-hot-dominated layer-1 batches.
	laneEngageCut = 0.25
	// laneSkipCut is the zero fraction of one packed A strip at which the
	// lane-skipping micro-kernel takes over from the dense one. The two
	// are bitwise identical; this is a pure performance dispatch.
	laneSkipCut = 0.2
)

// Workspace holds the grow-only packing buffers of the blocked engine. A
// long-lived caller (a nn layer's batch workspace, a serving policy)
// owns one so steady-state GEMMs allocate nothing; kernels called with a
// nil Workspace borrow one from an internal pool, which amortizes to zero
// allocations as well.
type Workspace struct {
	bpack []float64   // packed B panel, nr-wide strips
	apack [][]float64 // per-band packed A strips (band i owns apack[i])
	wt    []float64   // transposed NT operand (sparse-A fast path)
	g     []float64   // transposed gradient scratch (sparse-B TN fast path)
	btm   Matrix      // header over wt (kept here so it never escapes per call)
}

func (ws *Workspace) bbuf(n int) []float64 {
	if cap(ws.bpack) < n {
		ws.bpack = make([]float64, n)
	}
	return ws.bpack[:n]
}

// ensureBands pre-sizes the per-band buffer table on the calling
// goroutine before a fan-out; band tasks then only touch their own entry
// (abuf may still allocate that entry's backing array — distinct indices,
// so concurrent bands never write the same element).
func (ws *Workspace) ensureBands(n int) {
	for len(ws.apack) < n {
		ws.apack = append(ws.apack, nil)
	}
}

func (ws *Workspace) abuf(band, n int) []float64 {
	if cap(ws.apack[band]) < n {
		ws.apack[band] = make([]float64, n)
	}
	return ws.apack[band][:n]
}

func (ws *Workspace) wtbuf(n int) []float64 {
	if cap(ws.wt) < n {
		ws.wt = make([]float64, n)
	}
	return ws.wt[:n]
}

func (ws *Workspace) gbuf(n int) []float64 {
	if cap(ws.g) < n {
		ws.g = make([]float64, n)
	}
	return ws.g[:n]
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// gemmForm distinguishes the three product forms the engine serves.
type gemmForm int

const (
	formNN    gemmForm = iota // dst = a·b        (a R×K, b K×C)
	formNT                    // dst = a·bᵀ       (a R×K, b C×K)
	formTNAdd                 // dst += s·aᵀ·b    (a K×R, b K×C)
)

// MatmulP is Matmul with deterministic multi-core sharding: fixed
// bandRows-row bands of dst are distributed over the shared worker pool
// (the caller's goroutine participates; a nil pool runs everything on it).
// The result is bitwise identical for every pool capacity. ws, when
// non-nil, supplies the packing buffers (grow-only); nil borrows pooled
// ones. Returns the number of shard tasks dispatched to the pool (0 when
// the GEMM ran unsharded) — the observability hook for the serving
// daemon's serve_gemm_shards_total metric.
func MatmulP(dst, a, b *Matrix, ws *Workspace, pool *parallel.Sem) int {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		shapePanic("Matmul", "%s · %s -> %s",
			dims(a.Rows, a.Cols), dims(b.Rows, b.Cols), dims(dst.Rows, dst.Cols))
	}
	return gemm(dst, a, b, formNN, 0, ws, pool)
}

// MatmulNTP is MatmulNT with deterministic multi-core sharding (see
// MatmulP for the contract).
func MatmulNTP(dst, a, b *Matrix, ws *Workspace, pool *parallel.Sem) int {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		shapePanic("MatmulNT", "%s · %s -> %s",
			dims(a.Rows, a.Cols), dimsT(b.Rows, b.Cols), dims(dst.Rows, dst.Cols))
	}
	return gemm(dst, a, b, formNT, 0, ws, pool)
}

// AddMatmulTNScaledP is AddMatmulTNScaled with deterministic multi-core
// sharding (see MatmulP for the contract). Bands are rows of m, i.e.
// columns of a; the h reduction stays inside each band in fixed order.
func (m *Matrix) AddMatmulTNScaledP(a, b *Matrix, scale float64, ws *Workspace, pool *parallel.Sem) int {
	if a.Rows != b.Rows || m.Rows != a.Cols || m.Cols != b.Cols {
		shapePanic("AddMatmulTNScaled", "%s · %s -> %s",
			dimsT(a.Rows, a.Cols), dims(b.Rows, b.Cols), dims(m.Rows, m.Cols))
	}
	return gemm(m, a, b, formTNAdd, scale, ws, pool)
}

// gemmEngine names the execution strategies gemm can dispatch to.
type gemmEngine int

const (
	// engRef: the scalar reference kernels (which already zero-skip
	// Matmul-form coefficients row-wise).
	engRef gemmEngine = iota
	// engBlocked: packed tiles + 4×4 micro-kernel with lane skipping.
	engBlocked
	// engNTTranspose: transpose the NT operand once (grow-only buffer)
	// and run the rowwise zero-skipping axpy form — for one-hot-dominated
	// A this elides ~80% of the multiply-accumulates outright, far more
	// than the micro-kernel's 4-lane group skip can.
	engNTTranspose
	// engTNSwapped: compute scale·bᵀ·a into a transposed scratch with b's
	// zeros skipped row-wise, then transpose-add — the same trick for the
	// weight-gradient form, whose sparse operand (the layer-1 input
	// batch) is b.
	engTNSwapped
)

// gemm dispatches one product to an engine and a sharding plan. Every
// choice below depends only on shapes, operand values and the
// process-wide kernel mode — never on pool capacity or timing — so a
// given input produces one canonical result for every worker count.
func gemm(dst, a, b *Matrix, form gemmForm, scale float64, ws *Workspace, pool *parallel.Sem) int {
	r, c := dst.Rows, dst.Cols
	k := a.Cols
	if form == formTNAdd {
		k = a.Rows
	}
	if r == 0 || c == 0 {
		return 0
	}
	if pool != nil && pool.Cap() == 0 {
		// A capacity-0 semaphore can never grant a helper a token: treat
		// it as "no pool" so single-worker configurations skip the
		// fan-out machinery entirely (and report zero shards) instead of
		// paying for helpers that cannot run.
		pool = nil
	}
	macs := r * c * k

	// Engine choice is data-driven but deterministic: operand zero
	// fractions decide, and the O(R·K) scans are noise next to the
	// O(R·C·K) product. Dense operands stay on the reference kernels —
	// scalar mul and add share the FP ports, so dense register blocking
	// cannot beat the dot/axpy forms; the blocked engine's edge is
	// skipping the zeros of one-hot-dominated operands.
	// The Matmul (NN) form ALWAYS runs the rowwise reference engine, and
	// not only because it already zero-skips coefficients row-wise: its
	// per-row arithmetic is completely independent of the other rows (no
	// batch-aggregate dispatch, no K-panel partial sums), so a row's
	// result is bitwise invariant to the batch it arrives in. The serving
	// path's inference (ForwardBatchInfer = Matmul against the cached
	// transpose) rides on exactly that: micro-batch composition is
	// timing-dependent, and a request's action must not be. The
	// training-only forms (NT, TNAdd) may reassociate per batch — their
	// batches are fixed-size and deterministic.
	engine := engRef
	if form != formNN && CurrentKernelMode() == KernelBlocked && macs >= blockedMinMACs {
		zfA := zeroFrac(a.Data)
		tileable := r >= mr && c >= nr
		if form == formNT {
			if zfA >= sparseRowCut {
				engine = engNTTranspose
			} else if zfA >= laneEngageCut && tileable {
				engine = engBlocked
			}
		} else {
			if zeroFrac(b.Data) >= sparseRowCut {
				engine = engTNSwapped
			} else if zfA >= laneEngageCut && tileable {
				engine = engBlocked
			}
		}
	}

	if engine == engTNSwapped {
		// Small by construction in this repo (the reduction is the batch
		// dimension); not worth sharding.
		if ws == nil {
			w := wsPool.Get().(*Workspace)
			defer wsPool.Put(w)
			ws = w
		}
		tnSwapped(dst, a, b, scale, ws)
		return 0
	}

	if engine == engNTTranspose {
		// One transpose pays for itself many times over; after it the
		// product is a plain Matmul-form run on the rowwise-skipping
		// reference kernel (shardable like any other).
		if ws == nil {
			w := wsPool.Get().(*Workspace)
			defer wsPool.Put(w)
			ws = w
		}
		wt := ws.wtbuf(k * c)
		for j := 0; j < c; j++ {
			brow := b.Data[j*k : (j+1)*k]
			for kk, v := range brow {
				wt[kk*c+j] = v
			}
		}
		ws.btm = Matrix{Rows: k, Cols: c, Data: wt}
		return gemmRows(dst, a, &ws.btm, formNN, 0, engRef, nil, macs, pool)
	}

	if engine == engBlocked && ws == nil {
		w := wsPool.Get().(*Workspace)
		defer wsPool.Put(w)
		ws = w
	}
	return gemmRows(dst, a, b, form, scale, engine, ws, macs, pool)
}

// gemmRows runs the chosen engine over the output rows, sharding fixed
// bandRows-row bands across the pool when the product is big enough.
func gemmRows(dst, a, b *Matrix, form gemmForm, scale float64, engine gemmEngine, ws *Workspace, macs int, pool *parallel.Sem) int {
	r := dst.Rows
	bands := (r + bandRows - 1) / bandRows
	if pool == nil || bands < 2 || macs < shardMinMACs {
		if engine == engBlocked {
			gemmBlocked(dst, a, b, form, scale, ws, 0, r)
		} else {
			refBand(dst, a, b, form, scale, 0, r)
		}
		return 0
	}

	if engine != engBlocked {
		_ = parallel.ForEachSem(context.Background(), pool, bands, 0, func(_ context.Context, band int) error {
			lo := band * bandRows
			hi := min(lo+bandRows, r)
			refBand(dst, a, b, form, scale, lo, hi)
			return nil
		})
		return bands
	}

	c := dst.Cols
	k := a.Cols
	if form == formTNAdd {
		k = a.Rows
	}
	shards := 0
	// The B panel is packed once per (column, K) panel on the calling
	// goroutine and then read by every band task; bands write disjoint
	// rows of dst and pack A into their own per-band buffers.
	ws.ensureBands(bands)
	for jc := 0; jc < c; jc += ncBlock {
		ncEff := min(ncBlock, c-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kcEff := min(kcBlock, k-pc)
			strips := (ncEff + nr - 1) / nr
			bpack := ws.bbuf(strips * kcEff * nr)
			packB(bpack, b, form, jc, pc, ncEff, kcEff)
			first := pc == 0
			_ = parallel.ForEachSem(context.Background(), pool, bands, 0, func(_ context.Context, band int) error {
				lo := band * bandRows
				hi := min(lo+bandRows, r)
				apack := ws.abuf(band, mr*kcEff)
				blockedBand(dst, a, form, scale, apack, bpack, lo, hi, jc, pc, ncEff, kcEff, first)
				return nil
			})
			shards += bands
		}
	}
	return shards
}

// tnSwapped computes m += scale·aᵀ·b for a b that is mostly zeros: it
// accumulates g = scale·bᵀ·a with b's zero coefficients skipped row-wise
// (the axpy form, transposed), then adds gᵀ into m. The O(R·C) scratch
// zeroing and transpose-add are noise next to the skipped products.
func tnSwapped(m, a, b *Matrix, scale float64, ws *Workspace) {
	r, c := m.Rows, m.Cols // g is c×r
	g := ws.gbuf(c * r)
	for i := range g {
		g[i] = 0
	}
	for h := 0; h < a.Rows; h++ {
		arow := a.Row(h)
		brow := b.Row(h)
		for j, bv := range brow {
			if bv == 0 {
				continue
			}
			axpy(g[j*r:(j+1)*r], arow, bv*scale)
		}
	}
	for i := 0; i < r; i++ {
		mrow := m.Data[i*c : (i+1)*c]
		for j := range mrow {
			mrow[j] += g[j*r+i]
		}
	}
}

// refBand runs one output band on the reference engine.
func refBand(dst, a, b *Matrix, form gemmForm, scale float64, lo, hi int) {
	switch form {
	case formNN:
		matmulRefBand(dst, a, b, lo, hi)
	case formNT:
		matmulNTRefBand(dst, a, b, lo, hi)
	default:
		addMatmulTNScaledRefBand(dst, a, b, scale, lo, hi)
	}
}

// gemmBlocked runs rows [lo, hi) of the blocked engine on the calling
// goroutine: the same panel loop as the sharded path with a single band.
func gemmBlocked(dst, a, b *Matrix, form gemmForm, scale float64, ws *Workspace, lo, hi int) {
	c := dst.Cols
	k := a.Cols
	if form == formTNAdd {
		k = a.Rows
	}
	if k == 0 {
		// Empty reduction: a·b is the zero matrix (the accumulate form
		// adds nothing).
		if form != formTNAdd {
			for i := lo; i < hi; i++ {
				row := dst.Row(i)
				for j := range row {
					row[j] = 0
				}
			}
		}
		return
	}
	ws.ensureBands(1)
	for jc := 0; jc < c; jc += ncBlock {
		ncEff := min(ncBlock, c-jc)
		for pc := 0; pc < k; pc += kcBlock {
			kcEff := min(kcBlock, k-pc)
			strips := (ncEff + nr - 1) / nr
			bpack := ws.bbuf(strips * kcEff * nr)
			packB(bpack, b, form, jc, pc, ncEff, kcEff)
			apack := ws.abuf(0, mr*kcEff)
			blockedBand(dst, a, form, scale, apack, bpack, lo, hi, jc, pc, ncEff, kcEff, pc == 0)
		}
	}
}

// packB packs columns [jc, jc+ncEff) × k-range [pc, pc+kcEff) of the B
// operand into nr-wide strips: strip s holds element (k, c) at
// s·kcEff·nr + k·nr + c, with missing edge columns zero-padded (their
// products land in discarded accumulator lanes).
func packB(bpack []float64, b *Matrix, form gemmForm, jc, pc, ncEff, kcEff int) {
	strips := (ncEff + nr - 1) / nr
	for s := 0; s < strips; s++ {
		j0 := jc + s*nr
		w := min(nr, jc+ncEff-j0)
		dst := bpack[s*kcEff*nr : (s+1)*kcEff*nr]
		if form == formNT {
			// B columns are rows of the transposed operand.
			for c := 0; c < w; c++ {
				brow := b.Data[(j0+c)*b.Cols+pc : (j0+c)*b.Cols+pc+kcEff]
				for k, v := range brow {
					dst[k*nr+c] = v
				}
			}
			for c := w; c < nr; c++ {
				for k := 0; k < kcEff; k++ {
					dst[k*nr+c] = 0
				}
			}
			continue
		}
		for k := 0; k < kcEff; k++ {
			brow := b.Data[(pc+k)*b.Cols+j0:]
			o := k * nr
			for c := 0; c < w; c++ {
				dst[o+c] = brow[c]
			}
			for c := w; c < nr; c++ {
				dst[o+c] = 0
			}
		}
	}
}

// packA packs the mr-row strip starting at output row ir (k-range
// [pc, pc+kcEff)) of the A operand into column-major-by-k order:
// element (r, k) at k·mr + r. Missing edge rows are zero-padded. Returns
// the number of valid rows and the count of zero coefficients (padding
// included — padded lanes benefit from the lane-skipping kernel too).
func packA(apack []float64, a *Matrix, form gemmForm, ir, pc, kcEff, rowLimit int) (rows, zeros int) {
	rows = min(mr, rowLimit-ir)
	if form == formTNAdd {
		// A is used transposed: output row i is column i of a.
		for k := 0; k < kcEff; k++ {
			arow := a.Data[(pc+k)*a.Cols+ir:]
			o := k * mr
			for r := 0; r < rows; r++ {
				v := arow[r]
				apack[o+r] = v
				if v == 0 {
					zeros++
				}
			}
			for r := rows; r < mr; r++ {
				apack[o+r] = 0
			}
		}
	} else {
		for r := 0; r < rows; r++ {
			arow := a.Data[(ir+r)*a.Cols+pc : (ir+r)*a.Cols+pc+kcEff]
			for k, v := range arow {
				apack[k*mr+r] = v
				if v == 0 {
					zeros++
				}
			}
		}
		for r := rows; r < mr; r++ {
			for k := 0; k < kcEff; k++ {
				apack[k*mr+r] = 0
			}
		}
	}
	zeros += (mr - rows) * kcEff
	return rows, zeros
}

// blockedBand computes output rows [lo, hi) against one packed B panel.
// Kernel selection (dense vs lane-skipping) is per A strip from its zero
// count; the two kernels are bitwise identical, so the choice never
// changes the result.
func blockedBand(dst, a *Matrix, form gemmForm, scale float64, apack, bpack []float64, lo, hi, jc, pc, ncEff, kcEff int, first bool) {
	c := dst.Cols
	strips := (ncEff + nr - 1) / nr
	for ir := lo; ir < hi; ir += mr {
		rows, zeros := packA(apack, a, form, ir, pc, kcEff, hi)
		skipA := float64(zeros) >= laneSkipCut*float64(mr*kcEff)
		for s := 0; s < strips; s++ {
			bp := bpack[s*kcEff*nr : (s+1)*kcEff*nr]
			var acc [mr * nr]float64
			if skipA {
				micro4x4Skip(&acc, apack, bp, kcEff)
			} else {
				micro4x4(&acc, apack, bp, kcEff)
			}
			j0 := jc + s*nr
			w := min(nr, jc+ncEff-j0)
			for r := 0; r < rows; r++ {
				drow := dst.Data[(ir+r)*c+j0 : (ir+r)*c+j0+w]
				t := acc[r*nr:]
				switch {
				case form == formTNAdd:
					for cc := range drow {
						drow[cc] += scale * t[cc]
					}
				case first:
					for cc := range drow {
						drow[cc] = t[cc]
					}
				default:
					for cc := range drow {
						drow[cc] += t[cc]
					}
				}
			}
		}
	}
}

// micro4x4 is the dense 4×4 micro-kernel: 16 independent scalar
// accumulators, 8 loads and 16 unrolled multiply-adds per k step. Each
// accumulator's additions run in ascending-k order.
func micro4x4(acc *[mr * nr]float64, ap, bp []float64, kc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*4 : kc*4]
	for o := 0; o < len(ap); o += 4 {
		a0, a1, a2, a3 := ap[o], ap[o+1], ap[o+2], ap[o+3]
		b0, b1, b2, b3 := bp[o], bp[o+1], bp[o+2], bp[o+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	*acc = [mr * nr]float64{
		c00, c01, c02, c03,
		c10, c11, c12, c13,
		c20, c21, c22, c23,
		c30, c31, c32, c33,
	}
}

// micro4x4Skip is micro4x4 with zero-coefficient lanes elided. Skipped
// products are exactly ±0 and the accumulators are never −0, so the
// result is bitwise identical to micro4x4 — the dispatch between the two
// is purely about speed on sparse strips.
func micro4x4Skip(acc *[mr * nr]float64, ap, bp []float64, kc int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*4 : kc*4]
	for o := 0; o < len(ap); o += 4 {
		a0, a1, a2, a3 := ap[o], ap[o+1], ap[o+2], ap[o+3]
		if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
			continue
		}
		b0, b1, b2, b3 := bp[o], bp[o+1], bp[o+2], bp[o+3]
		if a0 != 0 {
			c00 += a0 * b0
			c01 += a0 * b1
			c02 += a0 * b2
			c03 += a0 * b3
		}
		if a1 != 0 {
			c10 += a1 * b0
			c11 += a1 * b1
			c12 += a1 * b2
			c13 += a1 * b3
		}
		if a2 != 0 {
			c20 += a2 * b0
			c21 += a2 * b1
			c22 += a2 * b2
			c23 += a2 * b3
		}
		if a3 != 0 {
			c30 += a3 * b0
			c31 += a3 * b1
			c32 += a3 * b2
			c33 += a3 * b3
		}
	}
	*acc = [mr * nr]float64{
		c00, c01, c02, c03,
		c10, c11, c12, c13,
		c20, c21, c22, c23,
		c30, c31, c32, c33,
	}
}

// zeroFrac estimates the fraction of exactly-zero entries in v. Large
// operands are strided-sampled: the estimate is a pure function of the
// data (fixed stride, fixed start), so engine dispatch stays deterministic
// and run-to-run reproducible — a misestimate can only cost speed, never
// correctness, because every engine computes a valid product.
func zeroFrac(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	const maxProbe = 2048
	stride := 1
	if len(v) > maxProbe {
		stride = len(v) / maxProbe
	}
	z, n := 0, 0
	for i := 0; i < len(v); i += stride {
		if v[i] == 0 {
			z++
		}
		n++
	}
	return float64(z) / float64(n)
}
