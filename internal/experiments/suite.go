package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/apps"
	"repro/internal/parallel"
)

// FigureIDs lists every figure of the evaluation in the paper's order.
var FigureIDs = []string{"6a", "6b", "6c", "7", "8", "9", "10", "11", "12a", "12b", "12c"}

// TupleTimeFigureIDs lists the figures that report stabilized average tuple
// processing times — the set the headline Summary aggregates.
var TupleTimeFigureIDs = []string{"6a", "6b", "6c", "8", "10"}

// Run regenerates one figure by id ("6a" ... "12c"). ctx cancellation
// propagates into every stage of the figure's pipeline.
func Run(ctx context.Context, id string, cfg Config) (*Result, error) {
	cfg = cfg.withSem()
	switch id {
	case "6a":
		return Fig6(ctx, apps.Small, cfg)
	case "6b":
		return Fig6(ctx, apps.Medium, cfg)
	case "6c":
		return Fig6(ctx, apps.Large, cfg)
	case "7":
		return Fig7(ctx, cfg)
	case "8":
		return Fig8(ctx, cfg)
	case "9":
		return Fig9(ctx, cfg)
	case "10":
		return Fig10(ctx, cfg)
	case "11":
		return Fig11(ctx, cfg)
	case "12a":
		return Fig12(ctx, "cq", cfg)
	case "12b":
		return Fig12(ctx, "log", cfg)
	case "12c":
		return Fig12(ctx, "wc", cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

// RunFigures regenerates a whole figure suite on the worker pool: figures
// fan out across workers, the first error cancels figures not yet started,
// and results come back in input order — the output is byte-identical to
// running the ids sequentially. Progress lines are prefixed with the figure
// id so interleaved output stays attributable.
func RunFigures(ctx context.Context, ids []string, cfg Config) ([]*Result, error) {
	return RunFiguresStream(ctx, ids, cfg, nil)
}

// RunFiguresStream is RunFigures with streaming delivery: when emit is
// non-nil it is called once per figure, in input order, as soon as that
// figure and all earlier ones have completed — so long suites print/persist
// finished figures instead of withholding everything until the end, and a
// late failure cannot discard already-delivered results. emit is never
// called concurrently. Errors are tagged with the failing figure's id.
//
// All levels — suite, per-figure stages, offline-rollout chunks and GEMM
// row bands — share one weighted semaphore sized to the pool (capacity
// PoolSize−1 plus the calling goroutine), so total in-flight work stays
// bounded by the pool size without multiplying to Workers × per-level
// fan-out — and when the suite drains to its last slow figures, the
// tokens released by finished figures are reclaimed by the survivors'
// inner stages instead of idling in a static per-level share. Single-
// figure runs share the same semaphore across their internal levels for
// the same reason.
func RunFiguresStream(ctx context.Context, ids []string, cfg Config, emit func(i int, r *Result)) ([]*Result, error) {
	cfg = cfg.withSem()
	results := make([]*Result, len(ids))
	var (
		mu        sync.Mutex
		delivered int
	)
	err := parallel.ForEachSem(ctx, cfg.sem, len(ids), cfg.Workers, func(ctx context.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		fcfg := cfg
		if cfg.Progress != nil && len(ids) > 1 {
			fcfg.Progress = &prefixWriter{w: cfg.Progress, prefix: "[fig " + ids[i] + "] "}
		}
		res, err := Run(ctx, ids[i], fcfg)
		if err != nil {
			return fmt.Errorf("figure %s: %w", ids[i], err)
		}
		mu.Lock()
		defer mu.Unlock()
		results[i] = res
		if emit != nil {
			for delivered < len(results) && results[delivered] != nil {
				emit(delivered, results[delivered])
				delivered++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// prefixWriter tags every line of progress output with its figure id.
// Writes arrive whole-line from Config.logf under progressMu, so simple
// per-line prefixing is race-free.
type prefixWriter struct {
	w      io.Writer
	prefix string
}

func (p *prefixWriter) Write(b []byte) (int, error) {
	n := len(b)
	var buf bytes.Buffer
	for len(b) > 0 {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			buf.WriteString(p.prefix)
			buf.Write(b)
			break
		}
		buf.WriteString(p.prefix)
		buf.Write(b[:i+1])
		b = b[i+1:]
	}
	if _, err := p.w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return n, nil
}
