package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/apps"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// schedulerOrder is the paper's legend order, extended with the
// statistics-free greedy baseline (not in the paper's comparison set; it
// anchors the "is the NN worth its decision cost" question).
var schedulerOrder = []string{"Default", "Greedy", "Model-based", "DQN-based DRL", "Actor-critic-based DRL"}

// Fig6 reproduces Figure 6(a/b/c): average tuple processing time over 20
// minutes for the four schedulers on the continuous-queries topology at the
// given scale.
func Fig6(ctx context.Context, scale apps.Scale, cfg Config) (*Result, error) {
	sys, err := apps.ContinuousQueries(scale)
	if err != nil {
		return nil, err
	}
	sub := map[apps.Scale]string{apps.Small: "a", apps.Medium: "b", apps.Large: "c"}[scale]
	return tupleTimeFigure(ctx, fmt.Sprintf("6%s", sub),
		fmt.Sprintf("Average tuple processing time, continuous queries (%s)", scale), sys, cfg)
}

// Fig8 reproduces Figure 8 (log stream processing, large-scale).
func Fig8(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := apps.LogStream()
	if err != nil {
		return nil, err
	}
	return tupleTimeFigure(ctx, "8", "Average tuple processing time, log stream processing", sys, cfg)
}

// Fig10 reproduces Figure 10 (word count, large-scale).
func Fig10(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := apps.WordCount()
	if err != nil {
		return nil, err
	}
	return tupleTimeFigure(ctx, "10", "Average tuple processing time, word count", sys, cfg)
}

func tupleTimeFigure(ctx context.Context, id, title string, sys *apps.System, cfg Config) (*Result, error) {
	cfg.logf("figure %s: %s", id, sys.Name)
	sols, err := solutions(ctx, sys, cfg, 0)
	if err != nil {
		return nil, err
	}
	// The four deployment simulations are independent (each owns a cold DES
	// seeded from its legend position); fan them out and assemble in legend
	// order so the figure is identical for any Workers setting.
	type curveOut struct {
		ser  Series
		stab float64
	}
	outs, err := parallel.MapSem(ctx, cfg.sem, len(schedulerOrder), cfg.Workers,
		func(_ context.Context, i int) (curveOut, error) {
			name := schedulerOrder[i]
			cfg.logf("  simulating %q deployment (%.0f min)", name, cfg.CurveMinutes)
			ser, stab, err := curve(sys, sols.assignments[name], cfg.CurveMinutes, cfg.Seed+int64(1000+i))
			if err != nil {
				return curveOut{}, err
			}
			ser.Name = name
			return curveOut{ser: ser, stab: stab}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: id, Title: title, Stabilized: map[string]float64{}}
	for i, out := range outs {
		res.Series = append(res.Series, out.ser)
		res.Stabilized[schedulerOrder[i]] = out.stab
	}
	return res, nil
}

// Fig7 reproduces Figure 7: normalized smoothed reward over T = 2000 online
// decision epochs, actor-critic vs DQN, continuous queries (large).
func Fig7(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := apps.ContinuousQueries(apps.Large)
	if err != nil {
		return nil, err
	}
	return rewardFigure(ctx, "7", "Normalized reward, continuous queries (large)", sys, cfg, 2000)
}

// Fig9 reproduces Figure 9: reward over T = 1500 epochs on log stream.
func Fig9(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := apps.LogStream()
	if err != nil {
		return nil, err
	}
	return rewardFigure(ctx, "9", "Normalized reward, log stream processing", sys, cfg, 1500)
}

// Fig11 reproduces Figure 11: reward over T = 1500 epochs on word count.
func Fig11(ctx context.Context, cfg Config) (*Result, error) {
	sys, err := apps.WordCount()
	if err != nil {
		return nil, err
	}
	return rewardFigure(ctx, "11", "Normalized reward, word count", sys, cfg, 1500)
}

func rewardFigure(ctx context.Context, id, title string, sys *apps.System, cfg Config, paperEpochs int) (*Result, error) {
	epochs := paperEpochs
	if cfg.OnlineEpochs < paperEpochs {
		epochs = cfg.OnlineEpochs // honor reduced/quick configurations
	}
	cfg.logf("figure %s: %s (T=%d)", id, sys.Name, epochs)
	scfg := cfg.schedConfig(sys)
	scfg.OnlineEpochs = epochs

	// The two agents learn independently (own seeds, own environments);
	// train them concurrently, each constructed through the registry.
	var acRewards, dqnRewards []float64
	trainOne := func(name string, dst *[]float64) func() error {
		return func() error {
			cfg.logf("  training %q online", name)
			s, err := sched.New(name, scfg)
			if err != nil {
				return err
			}
			drl, ok := s.(*sched.DRL)
			if !ok {
				return fmt.Errorf("experiments: %q is not a DRL scheduler", name)
			}
			if err := drl.Train(cfg.OfflineSamples); err != nil {
				return err
			}
			*dst = drl.Rewards()
			return nil
		}
	}
	err := parallel.RunSem(ctx, cfg.sem, cfg.Workers,
		trainOne("ac", &acRewards),
		trainOne("dqn", &dqnRewards),
	)
	if err != nil {
		return nil, err
	}

	res := &Result{ID: id, Title: title}
	for _, cur := range []struct {
		name    string
		rewards []float64
	}{
		{"Actor-critic-based DRL", acRewards},
		{"DQN-based DRL", dqnRewards},
	} {
		// The paper normalizes with (r−rmin)/(rmax−rmin) and smooths with
		// forward-backward filtering (§4.2).
		norm := stats.Normalize(cur.rewards)
		smooth := stats.FiltFilt(norm, 0.05)
		ser := Series{Name: cur.name}
		for i, v := range smooth {
			ser.X = append(ser.X, float64(i))
			ser.Y = append(ser.Y, v)
		}
		res.Series = append(res.Series, ser)
	}
	return res, nil
}

// Fig12 reproduces Figure 12(a/b/c): model-based vs actor-critic under a
// +50% workload step at 20 minutes, over 50 minutes, for the named
// topology ("cq", "log" or "wc").
func Fig12(ctx context.Context, which string, cfg Config) (*Result, error) {
	var sys *apps.System
	var err error
	var sub, title string
	switch which {
	case "cq":
		sys, err = apps.ContinuousQueries(apps.Large)
		sub, title = "a", "continuous queries"
	case "log":
		sys, err = apps.LogStream()
		sub, title = "b", "log stream processing"
	case "wc":
		sys, err = apps.WordCount()
		sub, title = "c", "word count"
	default:
		return nil, fmt.Errorf("experiments: unknown Fig12 topology %q (want cq, log or wc)", which)
	}
	if err != nil {
		return nil, err
	}

	total := 2.5 * cfg.CurveMinutes // paper: 50 min for a 20-min baseline
	stepAt := 0.4 * total           // paper: step at minute 20 of 50
	reactAt := stepAt + total/50    // the control plane reacts ~1 min later
	stepped := sys.WithStepWorkload(1.5, stepAt*60_000)

	cfg.logf("figure 12%s: %s with +50%% workload at %.0f min", sub, sys.Name, stepAt)

	// Train the actor-critic agent at the base workload (with jitter, so
	// the workload state input carries signal) and fit the model-based
	// baseline concurrently: the two pipelines share only read-only system
	// state. Both schedulers come from the registry and freeze after
	// training; the frozen policies are then re-projected under the
	// stepped workload below.
	n, m, numSpouts := sys.Top.NumExecutors(), sys.Cl.Size(), sys.NumSpouts()
	scfg := cfg.schedConfig(sys)
	var (
		drl            *sched.DRL
		mbT            sched.Trainable
		acBase, mbBase []int
	)
	err = parallel.RunSem(ctx, cfg.sem, cfg.Workers,
		func() error {
			cfg.logf("  training actor-critic agent")
			s, err := sched.New("ac", scfg)
			if err != nil {
				return err
			}
			drl = s.(*sched.DRL)
			if err := drl.Train(cfg.OfflineSamples); err != nil {
				return err
			}
			acBase, err = drl.Schedule(&sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: cfg.Seed})
			return err
		},
		func() error {
			cfg.logf("  fitting model-based scheduler")
			s, err := sched.New("model", scfg)
			if err != nil {
				return err
			}
			var ok bool
			if mbT, ok = s.(sched.Trainable); !ok {
				return fmt.Errorf("experiments: model scheduler is not Trainable")
			}
			if err := mbT.Train(cfg.MBSamples); err != nil {
				return err
			}
			mbBase, err = mbT.Schedule(&sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: cfg.Seed})
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	// The reaction workload both frozen schedulers see: the per-spout
	// rates after the step.
	stepW := make([]float64, numSpouts)
	for i, sp := range sys.Top.Spouts() {
		stepW[i] = stepped.Arrivals[sp.Name].RateAt(reactAt * 60_000)
	}

	res := &Result{ID: "12" + sub,
		Title:      fmt.Sprintf("Workload change, %s (large-scale)", title),
		Stabilized: map[string]float64{}}

	runs := []struct {
		name string
		base []int
		next func(cur []int) ([]int, error)
		seed int64
	}{
		{
			name: "Model-based",
			base: mbBase,
			next: func(cur []int) ([]int, error) {
				// The model-based scheduler re-predicts with the new
				// workload features and re-searches ([25]'s procedure);
				// the fitted model itself is frozen.
				return mbT.Schedule(sched.StaticEnv{NExec: n, NMach: m, Rates: stepW})
			},
			seed: cfg.Seed + 2000,
		},
		{
			name: "Actor-critic-based DRL",
			base: acBase,
			next: func(cur []int) ([]int, error) {
				// The agent sees the new workload in its state and emits a
				// new scheduling solution directly — no re-training.
				return drl.Policy(cur, stepW), nil
			},
			seed: cfg.Seed + 2001,
		},
	}
	// The two deployment runs touch disjoint mutable state (the model-based
	// run re-fits against te, the DRL run queries its own agent), so they
	// fan out too; results assemble in the fixed legend order above.
	type runOut struct {
		ser  Series
		stab float64
	}
	outs, err := parallel.MapSem(ctx, cfg.sem, len(runs), cfg.Workers,
		func(_ context.Context, i int) (runOut, error) {
			run := runs[i]
			cfg.logf("  simulating %q over %.0f min", run.name, total)
			simCfg := sim.DefaultConfig(stepped.Top, stepped.Cl, stepped.Arrivals, run.seed)
			s, err := sim.New(simCfg)
			if err != nil {
				return runOut{}, err
			}
			if err := s.Deploy(run.base); err != nil {
				return runOut{}, err
			}
			s.RunUntil(reactAt * 60_000)
			nxt, err := run.next(run.base)
			if err != nil {
				return runOut{}, err
			}
			if err := s.Deploy(nxt); err != nil {
				return runOut{}, err
			}
			s.RunUntil(total * 60_000)
			ser := Series{Name: run.name}
			for _, w := range s.Windows() {
				ser.X = append(ser.X, w.TimeMS/60_000)
				ser.Y = append(ser.Y, w.AvgMS)
			}
			return runOut{ser: ser, stab: s.AvgOverLastWindows(5)}, nil
		})
	if err != nil {
		return nil, err
	}
	for i, out := range outs {
		res.Series = append(res.Series, out.ser)
		res.Stabilized[runs[i].name] = out.stab
	}
	return res, nil
}

// Summary aggregates stabilized values across tuple-time figures into the
// paper's headline claim: average improvement of the actor-critic method
// over the default scheduler and over the model-based method.
func Summary(results []*Result) (overDefault, overModelBased float64, lines []string) {
	var dSum, mSum float64
	var count int
	for _, r := range results {
		if r.Stabilized == nil {
			continue
		}
		ac, ok1 := r.Stabilized["Actor-critic-based DRL"]
		def, ok2 := r.Stabilized["Default"]
		mb, ok3 := r.Stabilized["Model-based"]
		if !ok1 || !ok2 || !ok3 || def <= 0 || mb <= 0 {
			continue
		}
		dImp := (def - ac) / def * 100
		mImp := (mb - ac) / mb * 100
		dSum += dImp
		mSum += mImp
		count++
		lines = append(lines, fmt.Sprintf("fig %-3s  default=%6.2fms  model-based=%6.2fms  dqn=%6.2fms  actor-critic=%6.2fms  (-%.1f%% vs default, -%.1f%% vs model-based)",
			r.ID, def, mb, r.Stabilized["DQN-based DRL"], ac, dImp, mImp))
	}
	if count == 0 {
		return 0, 0, nil
	}
	sort.Strings(lines)
	return dSum / float64(count), mSum / float64(count), lines
}
