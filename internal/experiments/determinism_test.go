package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mat"
)

// tinyConfig is the smallest configuration that exercises every stage of a
// tuple-time figure (model-based fit, DQN + actor-critic training, four DES
// deployments); the determinism test runs the whole pipeline twice, and in
// CI it runs under -race.
func tinyConfig() Config {
	return Config{
		OfflineSamples: 120,
		OnlineEpochs:   60,
		MBSamples:      40,
		CurveMinutes:   2,
		MeasureSigma:   0.02,
		WorkloadJitter: 0.5,
		Seed:           1,
	}
}

// TestParallelFigureMatchesSequential is the determinism guarantee of the
// parallel experiment engine: every task owns its RNGs and results are
// assembled by index, so a fully parallel run must be *identical* — every
// curve point, every stabilized value — to a sequential (Workers=1) run
// with the same seed.
func TestParallelFigureMatchesSequential(t *testing.T) {
	seqCfg := tinyConfig()
	seqCfg.Workers = 1
	parCfg := tinyConfig()
	parCfg.Workers = 8

	seq, err := Run(context.Background(), "6a", seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), "6a", parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq.Series {
			if !reflect.DeepEqual(seq.Series[i], par.Series[i]) {
				t.Errorf("series %q differs between sequential and parallel runs", seq.Series[i].Name)
			}
		}
		t.Fatalf("parallel figure output differs from sequential:\nsequential stabilized: %v\nparallel stabilized:   %v",
			seq.Stabilized, par.Stabilized)
	}
}

// TestParallelFigureMatchesSequentialReference is the same guarantee in
// mat.KernelReference mode (reprobench -gemm reference): the reference
// kernels run banded under the same fixed tile→worker assignment, so a
// parallel run must stay byte-identical to a sequential one there too. A
// smaller budget keeps the doubled pipeline cheap.
func TestParallelFigureMatchesSequentialReference(t *testing.T) {
	prev := mat.SetKernelMode(mat.KernelReference)
	defer mat.SetKernelMode(prev)
	cfg := tinyConfig()
	cfg.OfflineSamples = 60
	cfg.OnlineEpochs = 30
	cfg.MBSamples = 20
	cfg.CurveMinutes = 1
	seqCfg := cfg
	seqCfg.Workers = 1
	parCfg := cfg
	parCfg.Workers = 8

	seq, err := Run(context.Background(), "6a", seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), "6a", parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("reference-mode parallel figure output differs from sequential:\nsequential stabilized: %v\nparallel stabilized:   %v",
			seq.Stabilized, par.Stabilized)
	}
}

// TestRunFiguresMatchesIndividualRuns: the suite-level fan-out must return
// the same results, in input order, as running each figure alone.
func TestRunFiguresMatchesIndividualRuns(t *testing.T) {
	cfg := tinyConfig()
	ids := []string{"6a", "12a"}

	suite, err := RunFigures(context.Background(), ids, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(ids) {
		t.Fatalf("got %d results for %d ids", len(suite), len(ids))
	}
	for i, id := range ids {
		alone, err := Run(context.Background(), id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(suite[i], alone) {
			t.Fatalf("figure %s from RunFigures differs from a standalone run", id)
		}
	}
}

// TestRunFiguresUnknownID: a bad id must fail the whole suite with a
// helpful error rather than panic mid-pool.
func TestRunFiguresUnknownID(t *testing.T) {
	_, err := RunFigures(context.Background(), []string{"99x"}, tinyConfig())
	if err == nil {
		t.Fatal("expected an error for unknown figure id")
	}
}
