package experiments

import (
	"context"
	"testing"

	"repro/internal/apps"
)

func TestQuickFig6aOrderingAndShape(t *testing.T) {
	cfg := Quick()
	res, err := Fig6(context.Background(), apps.Small, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "6a" || len(res.Series) != 5 {
		t.Fatalf("ID=%q series=%d", res.ID, len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("series %q malformed: %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
	def := res.Stabilized["Default"]
	ac := res.Stabilized["Actor-critic-based DRL"]
	if def <= 0 || ac <= 0 {
		t.Fatalf("stabilized values missing: %v", res.Stabilized)
	}
	if res.Stabilized["Greedy"] <= 0 {
		t.Fatalf("greedy baseline missing from figure fan-out: %v", res.Stabilized)
	}
	// Even with smoke-test training budgets the trained agent must at
	// least not lose to round-robin.
	if ac > def*1.05 {
		t.Fatalf("actor-critic %.3f worse than default %.3f", ac, def)
	}
}

func TestQuickRewardFigure(t *testing.T) {
	cfg := Quick()
	res, err := rewardFigureForTest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Y) != cfg.OnlineEpochs {
			t.Fatalf("series %q has %d points want %d", s.Name, len(s.Y), cfg.OnlineEpochs)
		}
		for _, v := range s.Y {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("normalized reward %v outside [0,1]", v)
			}
		}
	}
}

// rewardFigureForTest runs the reward figure machinery on the small CQ
// system (the large-scale one used by Fig7 is too slow for a unit test).
func rewardFigureForTest(cfg Config) (*Result, error) {
	sys, err := apps.ContinuousQueries(apps.Small)
	if err != nil {
		return nil, err
	}
	return rewardFigure(context.Background(), "7-test", "test", sys, cfg, cfg.OnlineEpochs)
}

func TestQuickFig12Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfg := Quick()
	res, err := Fig12(context.Background(), "cq", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "12a" || len(res.Series) != 2 {
		t.Fatalf("ID=%q series=%d", res.ID, len(res.Series))
	}
	// The step at 40% of the horizon must be visible as increased load:
	// completions keep flowing and the series covers the full span.
	total := 2.5 * cfg.CurveMinutes
	for _, s := range res.Series {
		if len(s.X) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		if last := s.X[len(s.X)-1]; last < total*0.9 {
			t.Fatalf("series %q ends at %.1f min want ≈%.1f", s.Name, last, total)
		}
	}
	if res.Stabilized["Actor-critic-based DRL"] <= 0 || res.Stabilized["Model-based"] <= 0 {
		t.Fatalf("stabilized: %v", res.Stabilized)
	}
}

func TestFig12RejectsUnknownTopology(t *testing.T) {
	if _, err := Fig12(context.Background(), "nope", Quick()); err == nil {
		t.Fatal("expected error")
	}
}

func TestSummary(t *testing.T) {
	results := []*Result{
		{ID: "6a", Stabilized: map[string]float64{
			"Default": 2.0, "Model-based": 1.5, "DQN-based DRL": 1.6, "Actor-critic-based DRL": 1.2,
		}},
		{ID: "8", Stabilized: map[string]float64{
			"Default": 10.0, "Model-based": 8.0, "DQN-based DRL": 8.5, "Actor-critic-based DRL": 7.0,
		}},
		{ID: "7"}, // reward figure: no stabilized values, skipped
	}
	overDef, overMB, lines := Summary(results)
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	// fig6a: 40% over default, 20% over MB; fig8: 30%, 12.5% → means 35, 16.25.
	if overDef < 34.9 || overDef > 35.1 {
		t.Fatalf("overDefault=%v", overDef)
	}
	if overMB < 16.2 || overMB > 16.3 {
		t.Fatalf("overModelBased=%v", overMB)
	}
	if _, _, l := Summary(nil); l != nil {
		t.Fatal("empty input should produce no lines")
	}
}

func TestConfigPresets(t *testing.T) {
	full, red, quick := Defaults(), Reduced(), Quick()
	if full.OfflineSamples != 10_000 || full.OnlineEpochs != 2_000 {
		t.Fatalf("paper budgets wrong: %+v", full)
	}
	if red.OfflineSamples >= full.OfflineSamples || red.ACUpdates < 2 {
		t.Fatalf("reduced preset wrong: %+v", red)
	}
	if quick.OfflineSamples >= red.OfflineSamples {
		t.Fatalf("quick preset wrong: %+v", quick)
	}
	if full.acConfig().UpdatesPerStep != 0 && full.acConfig().UpdatesPerStep != 1 {
		t.Fatalf("full fidelity should use the paper's single update per epoch")
	}
	if red.acConfig().UpdatesPerStep != 2 {
		t.Fatalf("reduced fidelity should compensate with 2 updates, got %d", red.acConfig().UpdatesPerStep)
	}
}
