// Package experiments regenerates every figure of the paper's evaluation
// (§4.2): the 20-minute average-tuple-processing-time curves for the four
// schedulers (Figures 6, 8, 10), the online-learning reward curves
// (Figures 7, 9, 11), and the +50% workload-change comparison (Figure 12),
// plus the headline aggregate improvements.
//
// Training runs against the fast analytic environment (with measurement
// jitter); the resulting scheduling solutions are then deployed on the
// discrete-event simulator — the stand-in for the paper's Storm cluster —
// to produce the reported curves.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"repro/internal/analytic"
	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/env"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config controls experiment fidelity. Defaults() follows the paper;
// Quick() shrinks training for smoke tests and benchmarks.
type Config struct {
	// OfflineSamples is the number of random-action transition samples
	// collected before online learning (paper: 10,000).
	OfflineSamples int
	// OnlineEpochs is the number of online decision epochs for the
	// 20-minute-curve experiments (reward-curve figures override it with
	// the paper's T per figure).
	OnlineEpochs int
	// MBSamples is the model-based baseline's training-set size.
	MBSamples int
	// CurveMinutes is the simulated span of the tuple-time figures.
	CurveMinutes float64
	// MeasureSigma is the multiplicative jitter on training measurements.
	MeasureSigma float64
	// WorkloadJitter trains the agents across rate scales in
	// [1−WorkloadJitter, 1+WorkloadJitter] so the workload part of the
	// state carries signal (the adaptivity the paper validates in Fig 12).
	WorkloadJitter float64
	// ACUpdates is the actor-critic UpdatesPerStep (extra SGD per decision
	// epoch); reduced-budget configurations compensate with more updates.
	ACUpdates int
	Seed      int64
	// Workers bounds the experiment engine's worker pool: scheduler
	// training, deployment simulations and (via RunFigures) whole figures
	// run concurrently on up to Workers goroutines. Zero means one worker
	// per CPU (GOMAXPROCS); 1 forces fully sequential execution. Every
	// task owns its RNGs and results are assembled by index, so the output
	// is byte-identical for every Workers setting (see PERFORMANCE.md).
	Workers int
	// Progress, if non-nil, receives human-readable progress lines.
	Progress io.Writer

	// sem is the weighted semaphore shared across the suite and per-figure
	// fan-out levels; RunFiguresStream installs it so workers idled by a
	// draining suite are reclaimed by the remaining figures' inner stages
	// (see internal/parallel.Sem). Nil outside suite runs, in which case
	// every fan-out falls back to its own Workers-bounded pool.
	sem *parallel.Sem
}

// Defaults returns paper-faithful settings (a full run takes tens of
// minutes; see EXPERIMENTS.md).
func Defaults() Config {
	return Config{
		OfflineSamples: 10_000,
		OnlineEpochs:   2_000,
		MBSamples:      300,
		CurveMinutes:   20,
		MeasureSigma:   0.02,
		WorkloadJitter: 0.5,
		Seed:           1,
	}
}

// Reduced returns settings that preserve every qualitative result at
// roughly 10× less compute (the default for cmd/reprobench).
func Reduced() Config {
	c := Defaults()
	c.OfflineSamples = 2_500
	c.OnlineEpochs = 800
	c.ACUpdates = 2
	return c
}

// Lite returns the smallest settings that still separate the schedulers,
// sized for single-core machines (the recorded EXPERIMENTS.md run).
func Lite() Config {
	c := Defaults()
	c.OfflineSamples = 600
	c.OnlineEpochs = 300
	c.ACUpdates = 2
	c.MBSamples = 200
	c.CurveMinutes = 12
	return c
}

// Quick returns smoke-test settings for tests and benchmarks.
func Quick() Config {
	return Config{
		OfflineSamples: 300,
		OnlineEpochs:   150,
		MBSamples:      80,
		CurveMinutes:   3,
		MeasureSigma:   0.02,
		WorkloadJitter: 0.5,
		Seed:           1,
	}
}

// progressMu serializes progress lines: figure pipelines run concurrently
// and usually share one Progress writer (stderr).
var progressMu sync.Mutex

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64 // minutes (tuple-time figures) or epochs (reward figures)
	Y    []float64
}

// Result holds everything a figure reports.
type Result struct {
	ID     string
	Title  string
	Series []Series
	// Stabilized maps scheduler name to the stabilized average tuple
	// processing time (mean of the last 5 windows), for tuple-time
	// figures.
	Stabilized map[string]float64
}

// trainEnv builds the mutable-rate analytic environment used for training:
// the returned rates can be scaled to expose the agent to varying
// workloads.
type trainEnv struct {
	*analytic.Evaluator
	rates map[string]*workload.ConstantRate
	base  map[string]float64
}

func newTrainEnv(sys *apps.System) (*trainEnv, error) {
	rates := map[string]*workload.ConstantRate{}
	base := map[string]float64{}
	arr := map[string]workload.ArrivalProcess{}
	for name, p := range sys.Arrivals {
		r := &workload.ConstantRate{PerSecond: p.RateAt(0)}
		rates[name] = r
		base[name] = r.PerSecond
		arr[name] = r
	}
	ev, err := analytic.New(sys.Top, sys.Cl, arr)
	if err != nil {
		return nil, err
	}
	return &trainEnv{Evaluator: ev, rates: rates, base: base}, nil
}

// setScale multiplies all base rates by s.
func (te *trainEnv) setScale(s float64) {
	for name, r := range te.rates {
		r.PerSecond = te.base[name] * s
	}
}

// trained bundles a trained agent with its controller and reward history.
type trained struct {
	ctrl    *core.Controller
	rewards []float64 // raw online-learning rewards (−ms)
}

// jitterer perturbs the training workload every few epochs.
type jitterer struct {
	te    *trainEnv
	cfg   Config
	rng   *rand.Rand
	count int
}

func (j *jitterer) maybe() {
	if j.cfg.WorkloadJitter <= 0 {
		return
	}
	j.count++
	s := 1 + j.cfg.WorkloadJitter*(2*j.rng.Float64()-1)
	j.te.setScale(s)
}

// trainAgent runs offline collection plus online learning for an agent on
// the system's analytic environment and returns the controller and reward
// history. epochs overrides cfg.OnlineEpochs when positive.
//
// Intra-run parallelism: the offline phase's environment rollouts fan out
// over the shared pool in chunks (per-slot jitter streams, results
// replayed in sample order — see core.Controller.CollectOfflineParallel),
// and the agent's batched training GEMMs shard across the same pool
// (SetPool). Both are invariant to the pool capacity, so figure output
// stays byte-identical for every Workers setting.
func trainAgent(sys *apps.System, agent core.Agent, cfg Config, epochs int) (*trained, error) {
	te, err := newTrainEnv(sys)
	if err != nil {
		return nil, err
	}
	noisy := &env.Noisy{
		Environment: te,
		Sigma:       cfg.MeasureSigma,
		Rng:         rand.New(rand.NewSource(cfg.Seed + 100)),
		StreamSeed:  cfg.Seed + 101,
	}
	ctrl := core.NewController(noisy, agent)
	jit := &jitterer{te: te, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed + 200))}
	if p := cfg.gemmPool(); p != nil {
		type pooled interface{ SetPool(*nn.Pool) }
		if ag, ok := agent.(pooled); ok {
			ag.SetPool(p)
		}
	}

	// Offline phase: collect in chunks so the workload can vary between
	// chunks (the paper collects 10,000 samples "for each experimental
	// setup"); within a chunk the rollouts run concurrently.
	remaining := cfg.OfflineSamples
	for remaining > 0 {
		chunk := 25
		if chunk > remaining {
			chunk = remaining
		}
		if err := ctrl.CollectOfflineParallel(chunk, chunk, cfg.sem, cfg.Workers); err != nil {
			return nil, err
		}
		remaining -= chunk
		jit.maybe()
	}

	// Online phase.
	if epochs <= 0 {
		epochs = cfg.OnlineEpochs
	}
	for t := 0; t < epochs; t += 25 {
		n := 25
		if t+n > epochs {
			n = epochs - t
		}
		ctrl.OnlineLearn(n, nil)
		jit.maybe()
	}
	// Leave the environment at the base workload so the extracted greedy
	// solution targets the nominal rates.
	te.setScale(1)
	return &trained{ctrl: ctrl, rewards: ctrl.Rewards}, nil
}

// solutionSet computes the final scheduling solution of every method for a
// system. Reward histories for the two DRL methods are returned for the
// reward-curve figures. epochs overrides the online epoch count.
type solutionSet struct {
	assignments map[string][]int
	acRewards   []float64
	dqnRewards  []float64
}

func solutions(ctx context.Context, sys *apps.System, cfg Config, epochs int) (*solutionSet, error) {
	n, m := sys.Top.NumExecutors(), sys.Cl.Size()
	numSpouts := sys.NumSpouts()

	// Default: Storm's round-robin.
	rr := make([]int, n)
	for i := range rr {
		rr[i] = i % m
	}

	// Greedy: the statistics-free baseline places executors in one pass
	// over static structure — no training, no environment measurements, so
	// it runs inline before the pool fans out.
	greedy := &sched.Greedy{Top: sys.Top, Cl: sys.Cl}
	grAssign, err := greedy.Schedule(&sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	// The three trained schedulers are independent: each task builds its
	// own environment and agent from its own seed, so they fan out on the
	// worker pool. Results land in per-task variables and are assembled
	// into the map after the pool drains (map writes are not concurrent).
	var (
		mbAssign           []int
		dqnTrained, acQual *trained
	)
	err = parallel.RunSem(ctx, cfg.sem, cfg.Workers,
		func() error {
			// Model-based [25].
			te, err := newTrainEnv(sys)
			if err != nil {
				return err
			}
			mb := &sched.ModelBased{
				Top: sys.Top, Cl: sys.Cl,
				Rng:     rand.New(rand.NewSource(cfg.Seed + 300)),
				Samples: cfg.MBSamples,
				Sem:     cfg.sem,
				Workers: cfg.Workers,
			}
			cfg.logf("  fitting model-based scheduler (%d samples)", cfg.MBSamples)
			mbAssign, err = mb.Schedule(&env.Noisy{Environment: te, Sigma: cfg.MeasureSigma,
				Rng:        rand.New(rand.NewSource(cfg.Seed + 301)),
				StreamSeed: cfg.Seed + 302})
			return err
		},
		func() error {
			// DQN-based DRL (§3.2).
			cfg.logf("  training DQN agent (%d offline, %d online)", cfg.OfflineSamples, max(epochs, cfg.OnlineEpochs))
			dqn := core.NewDQN(n, m, numSpouts, core.DefaultDQNConfig(), cfg.Seed+400)
			var err error
			dqnTrained, err = trainAgent(sys, dqn, cfg, epochs)
			return err
		},
		func() error {
			// Actor-critic-based DRL (Algorithm 1).
			cfg.logf("  training actor-critic agent (%d offline, %d online)", cfg.OfflineSamples, max(epochs, cfg.OnlineEpochs))
			ac := core.NewActorCritic(n, m, numSpouts, cfg.acConfig(), cfg.Seed+500)
			var err error
			acQual, err = trainAgent(sys, ac, cfg, epochs)
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	out := &solutionSet{assignments: map[string][]int{
		"Default":                rr,
		"Greedy":                 grAssign,
		"Model-based":            mbAssign,
		"DQN-based DRL":          dqnTrained.ctrl.GreedySolution(),
		"Actor-critic-based DRL": acQual.ctrl.GreedySolution(),
	}}
	out.dqnRewards = dqnTrained.rewards
	out.acRewards = acQual.rewards
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// acConfig returns the actor-critic hyperparameters for this experiment
// configuration.
func (c Config) acConfig() core.ACConfig {
	ac := core.DefaultACConfig()
	if c.ACUpdates > 0 {
		ac.UpdatesPerStep = c.ACUpdates
	}
	return ac
}

// withSem installs the weighted semaphore every fan-out level of a run
// shares (suite, per-figure stages, rollout chunks, GEMM row bands), so
// total in-flight work stays bounded by one pool size instead of
// multiplying across nesting levels. Idempotent; a no-op for
// single-worker configurations.
func (c Config) withSem() Config {
	if c.sem == nil && parallel.PoolSize(c.Workers) > 1 {
		c.sem = parallel.NewSem(parallel.PoolSize(c.Workers) - 1)
	}
	return c
}

// gemmPool returns the worker pool a training run's GEMM row bands shard
// across: the run-shared semaphore, or nil (sequential) when the
// configuration is single-worker. The kernels are bitwise invariant to
// the pool, so this never affects figure output.
func (c Config) gemmPool() *nn.Pool {
	if c.sem == nil {
		return nil
	}
	return nn.NewPool(c.sem)
}

// curve runs one 20-minute deployment of an assignment on a cold DES and
// returns per-window samples (the paper's measurement procedure, §3.1/§4.2).
func curve(sys *apps.System, assign []int, minutes float64, seed int64) (Series, float64, error) {
	cfg := sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, seed)
	if minutes < 20 {
		// Shortened smoke-test curves: scale the warm-up transient so the
		// decay completes within the window, preserving the figure shape.
		cfg.WarmupTauMS *= minutes / 20
	}
	s, err := sim.New(cfg)
	if err != nil {
		return Series{}, 0, err
	}
	if err := s.Deploy(assign); err != nil {
		return Series{}, 0, err
	}
	s.RunUntil(minutes * 60_000)
	wins := s.Windows()
	var ser Series
	for _, w := range wins {
		ser.X = append(ser.X, w.TimeMS/60_000)
		ser.Y = append(ser.Y, w.AvgMS)
	}
	return ser, s.AvgOverLastWindows(5), nil
}
