// Package experiments regenerates every figure of the paper's evaluation
// (§4.2): the 20-minute average-tuple-processing-time curves for the four
// schedulers (Figures 6, 8, 10), the online-learning reward curves
// (Figures 7, 9, 11), and the +50% workload-change comparison (Figure 12),
// plus the headline aggregate improvements.
//
// Training runs against the fast analytic environment (with measurement
// jitter); the resulting scheduling solutions are then deployed on the
// discrete-event simulator — the stand-in for the paper's Storm cluster —
// to produce the reported curves.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config controls experiment fidelity. Defaults() follows the paper;
// Quick() shrinks training for smoke tests and benchmarks.
type Config struct {
	// OfflineSamples is the number of random-action transition samples
	// collected before online learning (paper: 10,000).
	OfflineSamples int
	// OnlineEpochs is the number of online decision epochs for the
	// 20-minute-curve experiments (reward-curve figures override it with
	// the paper's T per figure).
	OnlineEpochs int
	// MBSamples is the model-based baseline's training-set size.
	MBSamples int
	// CurveMinutes is the simulated span of the tuple-time figures.
	CurveMinutes float64
	// MeasureSigma is the multiplicative jitter on training measurements.
	MeasureSigma float64
	// WorkloadJitter trains the agents across rate scales in
	// [1−WorkloadJitter, 1+WorkloadJitter] so the workload part of the
	// state carries signal (the adaptivity the paper validates in Fig 12).
	WorkloadJitter float64
	// ACUpdates is the actor-critic UpdatesPerStep (extra SGD per decision
	// epoch); reduced-budget configurations compensate with more updates.
	ACUpdates int
	Seed      int64
	// Workers bounds the experiment engine's worker pool: scheduler
	// training, deployment simulations and (via RunFigures) whole figures
	// run concurrently on up to Workers goroutines. Zero means one worker
	// per CPU (GOMAXPROCS); 1 forces fully sequential execution. Every
	// task owns its RNGs and results are assembled by index, so the output
	// is byte-identical for every Workers setting (see PERFORMANCE.md).
	Workers int
	// Progress, if non-nil, receives human-readable progress lines.
	Progress io.Writer

	// sem is the weighted semaphore shared across the suite and per-figure
	// fan-out levels; RunFiguresStream installs it so workers idled by a
	// draining suite are reclaimed by the remaining figures' inner stages
	// (see internal/parallel.Sem). Nil outside suite runs, in which case
	// every fan-out falls back to its own Workers-bounded pool.
	sem *parallel.Sem
}

// Defaults returns paper-faithful settings (a full run takes tens of
// minutes; see EXPERIMENTS.md).
func Defaults() Config {
	return Config{
		OfflineSamples: 10_000,
		OnlineEpochs:   2_000,
		MBSamples:      300,
		CurveMinutes:   20,
		MeasureSigma:   0.02,
		WorkloadJitter: 0.5,
		Seed:           1,
	}
}

// Reduced returns settings that preserve every qualitative result at
// roughly 10× less compute (the default for cmd/reprobench).
func Reduced() Config {
	c := Defaults()
	c.OfflineSamples = 2_500
	c.OnlineEpochs = 800
	c.ACUpdates = 2
	return c
}

// Lite returns the smallest settings that still separate the schedulers,
// sized for single-core machines (the recorded EXPERIMENTS.md run).
func Lite() Config {
	c := Defaults()
	c.OfflineSamples = 600
	c.OnlineEpochs = 300
	c.ACUpdates = 2
	c.MBSamples = 200
	c.CurveMinutes = 12
	return c
}

// Quick returns smoke-test settings for tests and benchmarks.
func Quick() Config {
	return Config{
		OfflineSamples: 300,
		OnlineEpochs:   150,
		MBSamples:      80,
		CurveMinutes:   3,
		MeasureSigma:   0.02,
		WorkloadJitter: 0.5,
		Seed:           1,
	}
}

// progressMu serializes progress lines: figure pipelines run concurrently
// and usually share one Progress writer (stderr).
var progressMu sync.Mutex

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64 // minutes (tuple-time figures) or epochs (reward figures)
	Y    []float64
}

// Result holds everything a figure reports.
type Result struct {
	ID     string
	Title  string
	Series []Series
	// Stabilized maps scheduler name to the stabilized average tuple
	// processing time (mean of the last 5 windows), for tuple-time
	// figures.
	Stabilized map[string]float64
}

// schedConfig maps an experiment configuration onto a registry
// configuration for one system: same seed, same budgets, same training
// noise, and the shared worker pool — the scheduler adapters in
// internal/sched use the same per-scheduler seed offsets this package's
// hand-rolled pipelines always did.
func (c Config) schedConfig(sys *apps.System) sched.Config {
	return sched.Config{
		Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals,
		Seed:           c.Seed,
		TrainBudget:    c.OfflineSamples,
		OnlineEpochs:   c.OnlineEpochs,
		MeasureSigma:   c.MeasureSigma,
		WorkloadJitter: c.WorkloadJitter,
		ACUpdates:      c.ACUpdates,
		Sem:            c.sem,
		Workers:        c.Workers,
	}
}

// trainBudget is the offline budget for one registry scheduler under this
// configuration (the model-based baseline has its own training-set size).
func (c Config) trainBudget(name string) int {
	if name == "model" {
		return c.MBSamples
	}
	return c.OfflineSamples
}

// figureSchedulers is the comparison set of the paper's figures, as
// registry names in legend order (matching schedulerOrder): the paper's
// four schedulers plus the statistics-free greedy baseline. The full
// registry also carries "traffic" and "random"; the tournament harness
// sweeps those.
var figureSchedulers = []string{"default", "greedy", "model", "dqn", "ac"}

// solutionSet computes the final scheduling solution of every method for a
// system. Reward histories for the two DRL methods are returned for the
// reward-curve figures. epochs overrides the online epoch count.
type solutionSet struct {
	assignments map[string][]int
	acRewards   []float64
	dqnRewards  []float64
}

func solutions(ctx context.Context, sys *apps.System, cfg Config, epochs int) (*solutionSet, error) {
	scfg := cfg.schedConfig(sys)
	if epochs > 0 {
		scfg.OnlineEpochs = epochs
	}

	// Every scheduler comes from the registry and runs as one pool task:
	// each task builds its own environments and agents from its own fixed
	// seeds, so results are identical for any Workers setting. Intra-task
	// parallelism (offline rollout chunks, training GEMM row bands) shares
	// the same pool and is bitwise pool-invariant.
	type out struct {
		name    string // display name
		assign  []int
		rewards []float64
	}
	outs, err := parallel.MapSem(ctx, cfg.sem, len(figureSchedulers), cfg.Workers,
		func(_ context.Context, i int) (out, error) {
			name := figureSchedulers[i]
			s, err := sched.New(name, scfg)
			if err != nil {
				return out{}, err
			}
			if tr, ok := s.(sched.Trainable); ok {
				cfg.logf("  training %q (budget %d, %d online)", name, cfg.trainBudget(name), scfg.OnlineEpochs)
				if err := tr.Train(cfg.trainBudget(name)); err != nil {
					return out{}, err
				}
			}
			assign, err := s.Schedule(&sim.Env{Top: sys.Top, Cl: sys.Cl, Arrivals: sys.Arrivals, Seed: cfg.Seed})
			if err != nil {
				return out{}, err
			}
			o := out{name: s.Name(), assign: assign}
			if rw, ok := s.(interface{ Rewards() []float64 }); ok {
				o.rewards = rw.Rewards()
			}
			return o, nil
		})
	if err != nil {
		return nil, err
	}

	res := &solutionSet{assignments: map[string][]int{}}
	for _, o := range outs {
		res.assignments[o.name] = o.assign
		switch o.name {
		case "DQN-based DRL":
			res.dqnRewards = o.rewards
		case "Actor-critic-based DRL":
			res.acRewards = o.rewards
		}
	}
	return res, nil
}

// acConfig returns the actor-critic hyperparameters for this experiment
// configuration.
func (c Config) acConfig() core.ACConfig {
	ac := core.DefaultACConfig()
	if c.ACUpdates > 0 {
		ac.UpdatesPerStep = c.ACUpdates
	}
	return ac
}

// withSem installs the weighted semaphore every fan-out level of a run
// shares (suite, per-figure stages, rollout chunks, GEMM row bands), so
// total in-flight work stays bounded by one pool size instead of
// multiplying across nesting levels. Idempotent; a no-op for
// single-worker configurations.
func (c Config) withSem() Config {
	if c.sem == nil && parallel.PoolSize(c.Workers) > 1 {
		c.sem = parallel.NewSem(parallel.PoolSize(c.Workers) - 1)
	}
	return c
}

// curve runs one 20-minute deployment of an assignment on a cold DES and
// returns per-window samples (the paper's measurement procedure, §3.1/§4.2).
func curve(sys *apps.System, assign []int, minutes float64, seed int64) (Series, float64, error) {
	cfg := sim.DefaultConfig(sys.Top, sys.Cl, sys.Arrivals, seed)
	if minutes < 20 {
		// Shortened smoke-test curves: scale the warm-up transient so the
		// decay completes within the window, preserving the figure shape.
		cfg.WarmupTauMS *= minutes / 20
	}
	s, err := sim.New(cfg)
	if err != nil {
		return Series{}, 0, err
	}
	if err := s.Deploy(assign); err != nil {
		return Series{}, 0, err
	}
	s.RunUntil(minutes * 60_000)
	wins := s.Windows()
	var ser Series
	for _, w := range wins {
		ser.X = append(ser.X, w.TimeMS/60_000)
		ser.Y = append(ser.Y, w.AvgMS)
	}
	return ser, s.AvgOverLastWindows(5), nil
}
