package core

import (
	"context"
	"fmt"

	"repro/internal/env"
	"repro/internal/parallel"
	"repro/internal/rl"
)

// Controller wires an Agent to an Environment and runs the two phases of
// Algorithm 1: offline training from randomly-deployed schedules and online
// learning with the trained policy in the loop. It plays the role of the
// "DRL-based Control" half of Figure 1, with the environment standing in
// for the DSDPS + custom scheduler.
type Controller struct {
	Env   env.Environment
	Agent Agent
	// DB optionally records every raw transition for persistence
	// (Figure 1's Database component).
	DB *Database

	// Assign is the currently deployed scheduling solution.
	Assign []int
	// Rewards is the raw reward history (−avg tuple time, ms) of online
	// learning, one entry per decision epoch.
	Rewards []float64
	// RewardClipMS caps the latency used for rewards: schedules that
	// overload a machine produce latencies orders of magnitude above
	// normal, and unclipped they dominate the critic's mean-squared error.
	// Zero auto-calibrates to 10× the round-robin deployment's latency on
	// first use.
	RewardClipMS float64

	// slot numbers the environment rollouts issued by the parallel
	// offline collector (each rollout draws its measurement jitter from
	// its own slot stream; see env.SlotMeasurer).
	slot int64
}

// pendingAction is the action record an agent keeps between a selection
// and the matching Observe call; capturing it lets the offline collector
// draw a whole chunk of chained random actions before any of their
// rewards has been measured.
type pendingAction struct {
	act  []float64 // actor-critic: flat one-hot action
	move int       // DQN: flat move index
}

// offlineBatcher is implemented by agents whose offline collection can be
// pipelined: takePending removes the record of the latest selection and
// restorePending reinstates it immediately before the matching Observe.
type offlineBatcher interface {
	takePending() pendingAction
	restorePending(pendingAction)
}

// NewController starts from the environment's round-robin default
// deployment (what a fresh Storm cluster runs before any rescheduling).
func NewController(e env.Environment, agent Agent) *Controller {
	assign := make([]int, e.N())
	for i := range assign {
		assign[i] = i % e.M()
	}
	return &Controller{Env: e, Agent: agent, Assign: assign}
}

// CollectOffline performs the offline-training phase (§3.2.1: "we first
// collected 10,000 transition samples with random actions ... and then
// pre-trained the actor and critic networks offline"): deploy random
// actions, record transitions, and interleave training steps once the
// replay buffer warms up.
func (c *Controller) CollectOffline(samples int) error {
	if samples <= 0 {
		return fmt.Errorf("core: offline sample count must be positive, got %d", samples)
	}
	work := c.Env.Workload()
	for i := 0; i < samples; i++ {
		next := c.Agent.RandomAssignment(c.Assign)
		lat := c.Env.AvgTupleTimeMS(next)
		reward := c.reward(lat)
		nextWork := c.Env.Workload()
		c.Agent.Observe(c.Assign, work, reward, next, nextWork)
		if c.DB != nil {
			c.DB.Add(rl.Transition{
				State:     floatsOf(c.Assign, work),
				Action:    floatsOf(next, nil),
				Reward:    reward,
				NextState: floatsOf(next, nextWork),
			})
		}
		c.Agent.TrainStep()
		c.Assign = next
		work = nextWork
	}
	return nil
}

// CollectOfflineParallel is CollectOffline with the environment rollouts
// of each chunk fanned out over the shared worker pool: the chunk's
// random actions are drawn first (chained, on the calling goroutine, so
// the agent's RNG stream is untouched by scheduling), the chunk's
// measurements then run concurrently — each drawing its jitter from its
// own slot stream — and finally the observe/train steps replay in sample
// order. Results are therefore identical for every pool capacity,
// including none. Falls back to CollectOffline when the agent cannot
// capture pending actions or the environment cannot measure slots
// concurrently.
func (c *Controller) CollectOfflineParallel(samples, chunk int, sem *parallel.Sem, workers int) error {
	ob, okA := c.Agent.(offlineBatcher)
	sm, okE := c.Env.(env.SlotMeasurer)
	if !okA || !okE || !sm.SlotsConcurrent() {
		return c.CollectOffline(samples)
	}
	if samples <= 0 {
		return fmt.Errorf("core: offline sample count must be positive, got %d", samples)
	}
	if chunk <= 0 {
		chunk = 25
	}
	nexts := make([][]int, chunk)
	pends := make([]pendingAction, chunk)
	lats := make([]float64, chunk)
	work := c.Env.Workload()
	for done := 0; done < samples; {
		n := chunk
		if n > samples-done {
			n = samples - done
		}
		// Phase 1: draw the chunk's chained random actions.
		cur := c.Assign
		for i := 0; i < n; i++ {
			nexts[i] = c.Agent.RandomAssignment(cur)
			pends[i] = ob.takePending()
			cur = nexts[i]
		}
		// Phase 2: measure every rollout, fanned out over the pool.
		base := c.slot
		_ = parallel.ForEachSem(context.Background(), sem, n, workers, func(_ context.Context, i int) error {
			lats[i] = sm.AvgTupleTimeMSSlot(base+int64(i), nexts[i])
			return nil
		})
		c.slot += int64(n)
		// Phase 3: observe and train, in sample order.
		prev := c.Assign
		for i := 0; i < n; i++ {
			reward := c.reward(lats[i])
			nextWork := c.Env.Workload()
			ob.restorePending(pends[i])
			c.Agent.Observe(prev, work, reward, nexts[i], nextWork)
			if c.DB != nil {
				c.DB.Add(rl.Transition{
					State:     floatsOf(prev, work),
					Action:    floatsOf(nexts[i], nil),
					Reward:    reward,
					NextState: floatsOf(nexts[i], nextWork),
				})
			}
			c.Agent.TrainStep()
			prev = nexts[i]
			work = nextWork
		}
		c.Assign = prev
		done += n
	}
	return nil
}

// OnlineLearn runs T decision epochs of online learning (Algorithm 1 lines
// 7–19). cb, if non-nil, is invoked after each epoch with the measured
// average tuple processing time. Rewards are appended to c.Rewards.
func (c *Controller) OnlineLearn(T int, cb func(epoch int, avgTupleMS float64)) {
	work := c.Env.Workload()
	for t := 0; t < T; t++ {
		next := c.Agent.SelectAssignment(c.Assign, work)
		lat := c.Env.AvgTupleTimeMS(next)
		reward := c.reward(lat)
		nextWork := c.Env.Workload()
		c.Agent.Observe(c.Assign, work, reward, next, nextWork)
		c.Agent.TrainStep()
		c.Assign = next
		work = nextWork
		c.Rewards = append(c.Rewards, reward)
		if cb != nil {
			cb(t, lat)
		}
	}
}

// GreedySolution returns the trained agent's exploitation-only scheduling
// solution from the current state — what gets deployed to the cluster for
// the 20-minute measurement runs of Figures 6, 8 and 10.
func (c *Controller) GreedySolution() []int {
	type greedy interface {
		Greedy(assign []int, work []float64) []int
	}
	if g, ok := c.Agent.(greedy); ok {
		return g.Greedy(c.Assign, c.Env.Workload())
	}
	return append([]int(nil), c.Assign...)
}

// reward converts a measured latency into the (clipped) reward.
func (c *Controller) reward(lat float64) float64 {
	if c.RewardClipMS == 0 {
		// Auto-calibrate against the round-robin baseline.
		rr := make([]int, c.Env.N())
		for i := range rr {
			rr[i] = i % c.Env.M()
		}
		base := c.Env.AvgTupleTimeMS(rr)
		if base <= 0 {
			base = 1
		}
		c.RewardClipMS = 10 * base
	}
	if lat > c.RewardClipMS {
		lat = c.RewardClipMS
	}
	return -lat
}

// floatsOf flattens an assignment plus optional workload into a float
// vector for Database storage.
func floatsOf(assign []int, work []float64) []float64 {
	out := make([]float64, 0, len(assign)+len(work))
	for _, m := range assign {
		out = append(out, float64(m))
	}
	return append(out, work...)
}
