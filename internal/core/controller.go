package core

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/rl"
)

// Controller wires an Agent to an Environment and runs the two phases of
// Algorithm 1: offline training from randomly-deployed schedules and online
// learning with the trained policy in the loop. It plays the role of the
// "DRL-based Control" half of Figure 1, with the environment standing in
// for the DSDPS + custom scheduler.
type Controller struct {
	Env   env.Environment
	Agent Agent
	// DB optionally records every raw transition for persistence
	// (Figure 1's Database component).
	DB *Database

	// Assign is the currently deployed scheduling solution.
	Assign []int
	// Rewards is the raw reward history (−avg tuple time, ms) of online
	// learning, one entry per decision epoch.
	Rewards []float64
	// RewardClipMS caps the latency used for rewards: schedules that
	// overload a machine produce latencies orders of magnitude above
	// normal, and unclipped they dominate the critic's mean-squared error.
	// Zero auto-calibrates to 10× the round-robin deployment's latency on
	// first use.
	RewardClipMS float64
}

// NewController starts from the environment's round-robin default
// deployment (what a fresh Storm cluster runs before any rescheduling).
func NewController(e env.Environment, agent Agent) *Controller {
	assign := make([]int, e.N())
	for i := range assign {
		assign[i] = i % e.M()
	}
	return &Controller{Env: e, Agent: agent, Assign: assign}
}

// CollectOffline performs the offline-training phase (§3.2.1: "we first
// collected 10,000 transition samples with random actions ... and then
// pre-trained the actor and critic networks offline"): deploy random
// actions, record transitions, and interleave training steps once the
// replay buffer warms up.
func (c *Controller) CollectOffline(samples int) error {
	if samples <= 0 {
		return fmt.Errorf("core: offline sample count must be positive, got %d", samples)
	}
	work := c.Env.Workload()
	for i := 0; i < samples; i++ {
		next := c.Agent.RandomAssignment(c.Assign)
		lat := c.Env.AvgTupleTimeMS(next)
		reward := c.reward(lat)
		nextWork := c.Env.Workload()
		c.Agent.Observe(c.Assign, work, reward, next, nextWork)
		if c.DB != nil {
			c.DB.Add(rl.Transition{
				State:     floatsOf(c.Assign, work),
				Action:    floatsOf(next, nil),
				Reward:    reward,
				NextState: floatsOf(next, nextWork),
			})
		}
		c.Agent.TrainStep()
		c.Assign = next
		work = nextWork
	}
	return nil
}

// OnlineLearn runs T decision epochs of online learning (Algorithm 1 lines
// 7–19). cb, if non-nil, is invoked after each epoch with the measured
// average tuple processing time. Rewards are appended to c.Rewards.
func (c *Controller) OnlineLearn(T int, cb func(epoch int, avgTupleMS float64)) {
	work := c.Env.Workload()
	for t := 0; t < T; t++ {
		next := c.Agent.SelectAssignment(c.Assign, work)
		lat := c.Env.AvgTupleTimeMS(next)
		reward := c.reward(lat)
		nextWork := c.Env.Workload()
		c.Agent.Observe(c.Assign, work, reward, next, nextWork)
		c.Agent.TrainStep()
		c.Assign = next
		work = nextWork
		c.Rewards = append(c.Rewards, reward)
		if cb != nil {
			cb(t, lat)
		}
	}
}

// GreedySolution returns the trained agent's exploitation-only scheduling
// solution from the current state — what gets deployed to the cluster for
// the 20-minute measurement runs of Figures 6, 8 and 10.
func (c *Controller) GreedySolution() []int {
	type greedy interface {
		Greedy(assign []int, work []float64) []int
	}
	if g, ok := c.Agent.(greedy); ok {
		return g.Greedy(c.Assign, c.Env.Workload())
	}
	return append([]int(nil), c.Assign...)
}

// reward converts a measured latency into the (clipped) reward.
func (c *Controller) reward(lat float64) float64 {
	if c.RewardClipMS == 0 {
		// Auto-calibrate against the round-robin baseline.
		rr := make([]int, c.Env.N())
		for i := range rr {
			rr[i] = i % c.Env.M()
		}
		base := c.Env.AvgTupleTimeMS(rr)
		if base <= 0 {
			base = 1
		}
		c.RewardClipMS = 10 * base
	}
	if lat > c.RewardClipMS {
		lat = c.RewardClipMS
	}
	return -lat
}

// floatsOf flattens an assignment plus optional workload into a float
// vector for Database storage.
func floatsOf(assign []int, work []float64) []float64 {
	out := make([]float64, 0, len(assign)+len(work))
	for _, m := range assign {
		out = append(out, float64(m))
	}
	return append(out, work...)
}
