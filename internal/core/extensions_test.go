package core

import "testing"

// TestDoubleDQNLearnsToy verifies the double Q-learning variant [23] also
// learns the toy scheduling problem.
func TestDoubleDQNLearnsToy(t *testing.T) {
	cfg := DefaultDQNConfig()
	cfg.Double = true
	cfg.Epsilon.Decay = 150
	agent := NewDQN(6, 3, 1, cfg, 31)
	c := trainController(t, agent, 300, 400)
	e := c.Env.(*toyEnv)
	got := e.AvgTupleTimeMS(c.GreedySolution())
	rr := make([]int, 6)
	for i := range rr {
		rr[i] = i % 3
	}
	if got >= e.AvgTupleTimeMS(rr) {
		t.Fatalf("double DQN %.2f not better than round-robin %.2f", got, e.AvgTupleTimeMS(rr))
	}
}

// TestOUNoiseACLearnsToy verifies the Ornstein-Uhlenbeck exploration
// variant [26] also learns the toy problem.
func TestOUNoiseACLearnsToy(t *testing.T) {
	cfg := DefaultACConfig()
	cfg.UseOUNoise = true
	cfg.Epsilon.Decay = 150
	agent := NewActorCritic(6, 3, 1, cfg, 33)
	c := trainController(t, agent, 300, 400)
	e := c.Env.(*toyEnv)
	got := e.AvgTupleTimeMS(c.GreedySolution())
	rr := make([]int, 6)
	for i := range rr {
		rr[i] = i % 3
	}
	if got >= e.AvgTupleTimeMS(rr) {
		t.Fatalf("OU-noise AC %.2f not better than round-robin %.2f", got, e.AvgTupleTimeMS(rr))
	}
}

// TestUpdatesPerStep verifies the multi-update option performs the extra
// SGD steps (observable through faster convergence on the toy problem with
// the same number of environment interactions).
func TestUpdatesPerStep(t *testing.T) {
	run := func(updates int) float64 {
		cfg := DefaultACConfig()
		cfg.UpdatesPerStep = updates
		cfg.Epsilon.Decay = 100
		agent := NewActorCritic(6, 3, 1, cfg, 35)
		c := trainController(t, agent, 200, 150)
		return c.Env.(*toyEnv).AvgTupleTimeMS(c.GreedySolution())
	}
	one := run(1)
	four := run(4)
	// Both must learn; the multi-update variant must not be degenerate.
	rrLat := newToy().AvgTupleTimeMS([]int{0, 1, 2, 0, 1, 2})
	if one >= rrLat || four >= rrLat {
		t.Fatalf("variants failed to learn: 1-update %.2f, 4-update %.2f, rr %.2f", one, four, rrLat)
	}
}

func TestRewardNormStandardizes(t *testing.T) {
	var rn rewardNorm
	if got := rn.normalize(-5); got != 0 {
		t.Fatalf("first sample should normalize to 0, got %v", got)
	}
	// A long stream of values around −5 ± 1: normalized outputs should be
	// bounded and roughly centered.
	var sum float64
	n := 0
	for i := 0; i < 2000; i++ {
		r := -5.0
		if i%2 == 0 {
			r = -4.0
		} else {
			r = -6.0
		}
		z := rn.normalize(r)
		if z < -5 || z > 5 {
			t.Fatalf("normalized value %v outside clip range", z)
		}
		if i > 500 {
			sum += z
			n++
		}
	}
	if mean := sum / float64(n); mean < -0.5 || mean > 0.5 {
		t.Fatalf("normalized stream mean %v not centered", mean)
	}
	// A clear outlier maps to a large positive value (better reward).
	if z := rn.normalize(100); z < 3 {
		t.Fatalf("outlier normalized to %v, want clipped high", z)
	}
}
