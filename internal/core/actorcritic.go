package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/actionspace"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rl"
)

// ACConfig holds the actor-critic hyperparameters. Defaults follow §3.2.1:
// two hidden layers of 64 and 32 tanh neurons for both networks, τ = 0.01,
// γ = 0.99, replay buffer |B| = 1000, mini-batch H = 32, uniform [0,1]
// exploration noise applied with a decaying probability ε.
type ACConfig struct {
	K           int     // K-NN candidates scored by the critic
	Gamma       float64 // discount factor γ
	Tau         float64 // target-network tracking rate τ
	BufferSize  int     // replay buffer capacity |B|
	BatchSize   int     // mini-batch size H
	ActorLR     float64
	CriticLR    float64
	Hidden      []int // hidden layer widths
	Epsilon     rl.EpsilonSchedule
	RewardScale float64 // multiplies raw rewards before storage
	GradClip    float64 // global L2 gradient clip (0 disables)
	// UpdatesPerStep runs this many mini-batch updates per TrainStep call
	// (default 1). Each environment measurement is expensive relative to a
	// gradient step, so squeezing more SGD out of the replay buffer speeds
	// convergence per decision epoch.
	UpdatesPerStep int
	// UseOUNoise replaces the paper's uniform exploration noise with the
	// Ornstein-Uhlenbeck process of the original DDPG paper [26]
	// (exploration-noise ablation).
	UseOUNoise bool
}

// DefaultACConfig returns the paper's hyperparameters.
func DefaultACConfig() ACConfig {
	return ACConfig{
		K:           8,
		Gamma:       0.99,
		Tau:         0.01,
		BufferSize:  1000,
		BatchSize:   32,
		ActorLR:     1e-3,
		CriticLR:    1e-3,
		Hidden:      []int{64, 32},
		Epsilon:     rl.EpsilonSchedule{Start: 1.0, End: 0.05, Decay: 500, Kind: rl.ExpDecay},
		RewardScale: 1.0,
		GradClip:    1.0,
	}
}

// ActorCritic is the paper's proposed agent (Algorithm 1): an actor network
// f(s;θπ) emits a continuous proto-action â; the K nearest feasible
// scheduling solutions are found exactly (the MIQP-NN step, here solved by
// internal/actionspace); the critic Q(s,a;θQ) scores the K candidates and
// the argmax is executed. Both networks have slowly-tracked target copies
// and learn from a uniform replay buffer.
type ActorCritic struct {
	cfg   ACConfig
	space *actionspace.Space
	codec *StateCodec

	actor, actorT   *nn.Network
	critic, criticT *nn.Network
	actorOpt        *nn.Adam
	criticOpt       *nn.Adam

	buffer *rl.ReplayBuffer
	rng    *rand.Rand
	norm   rewardNorm
	ou     *rl.OUNoise
	epoch  int

	lastAction []float64 // flat one-hot action recorded by the last selection

	// scratch
	batch []rl.Transition
	sa    []float64 // concat(state, action) input for the critic
	sc    acScratch
}

// acScratch holds the preallocated minibatch workspaces of trainOnce; all
// buffers are sized on first use and reused while the batch size stays
// constant, so steady-state training does not allocate.
type acScratch struct {
	states, nextStates *mat.Matrix // H×sdim minibatch states
	saCand             *mat.Matrix // (H·K)×(sdim+adim) candidate-scoring rows
	saCandView         mat.Matrix  // rows-trimmed view of saCand
	sa                 *mat.Matrix // H×(sdim+adim) critic inputs
	dQ                 *mat.Matrix // H×1 critic output gradients
	ones               *mat.Matrix // H×1 unit output gradients (∇â Q probe)
	dProto             *mat.Matrix // H×adim actor upstream gradients
	targets            []float64
	candCount          []int
	knn                [][]int

	// Action-selection scratch (SelectAssignment/Greedy run once per
	// decision epoch; only the chosen assignment and the recorded one-hot
	// action escape, so everything else is reused).
	selState, selProto, selNoise, selFlat []float64
	selKnn                                [][]int
}

// NewActorCritic builds the agent for an N×M action space with numSpouts
// data sources.
func NewActorCritic(n, m, numSpouts int, cfg ACConfig, seed int64) *ActorCritic {
	rng := rand.New(rand.NewSource(seed))
	space := actionspace.NewSpace(n, m)
	codec := NewStateCodec(space, numSpouts)
	actorSizes := append(append([]int{codec.Dim()}, cfg.Hidden...), space.Dim())
	criticSizes := append(append([]int{codec.Dim() + space.Dim()}, cfg.Hidden...), 1)
	a := &ActorCritic{
		cfg:       cfg,
		space:     space,
		codec:     codec,
		actor:     nn.New(actorSizes, nn.Tanh, nn.Tanh, rng),
		critic:    nn.New(criticSizes, nn.Tanh, nn.Identity, rng),
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		buffer:    rl.NewReplayBuffer(cfg.BufferSize),
		rng:       rng,
		sa:        make([]float64, codec.Dim()+space.Dim()),
	}
	a.actorT = a.actor.Clone()
	a.criticT = a.critic.Clone()
	if cfg.UseOUNoise {
		a.ou = rl.NewOUNoise(space.Dim())
	}
	return a
}

// NewActorCriticFrom builds the agent around existing actor/critic
// networks instead of freshly initialized ones — the online-learning path
// of the serving daemon starts training from whatever weights it is
// currently serving (random or a loaded checkpoint). The networks are
// owned by the agent afterwards; target copies are cloned from them. seed
// seeds the agent's sampling/exploration RNG only.
func NewActorCriticFrom(n, m, numSpouts int, cfg ACConfig, seed int64, actor, critic *nn.Network) (*ActorCritic, error) {
	space := actionspace.NewSpace(n, m)
	codec := NewStateCodec(space, numSpouts)
	if actor.InDim() != codec.Dim() || actor.OutDim() != space.Dim() {
		return nil, fmt.Errorf("core: actor is %d→%d, agent needs %d→%d",
			actor.InDim(), actor.OutDim(), codec.Dim(), space.Dim())
	}
	if critic.InDim() != codec.Dim()+space.Dim() || critic.OutDim() != 1 {
		return nil, fmt.Errorf("core: critic is %d→%d, agent needs %d→1",
			critic.InDim(), critic.OutDim(), codec.Dim()+space.Dim())
	}
	a := &ActorCritic{
		cfg:       cfg,
		space:     space,
		codec:     codec,
		actor:     actor,
		critic:    critic,
		actorOpt:  nn.NewAdam(cfg.ActorLR),
		criticOpt: nn.NewAdam(cfg.CriticLR),
		buffer:    rl.NewReplayBuffer(cfg.BufferSize),
		rng:       rand.New(rand.NewSource(seed)),
		sa:        make([]float64, codec.Dim()+space.Dim()),
	}
	a.actorT = a.actor.Clone()
	a.criticT = a.critic.Clone()
	if cfg.UseOUNoise {
		a.ou = rl.NewOUNoise(space.Dim())
	}
	return a, nil
}

// SetPool installs a shared GEMM worker pool on all four networks, so one
// training run's batched passes shard their row bands across the pool
// (intra-run training parallelism). Results are bitwise identical for
// every pool capacity; pass nil to restore single-goroutine execution.
func (a *ActorCritic) SetPool(p *nn.Pool) {
	a.actor.SetPool(p)
	a.actorT.SetPool(p)
	a.critic.SetPool(p)
	a.criticT.SetPool(p)
}

// Name implements Agent.
func (*ActorCritic) Name() string { return "Actor-critic-based DRL" }

// Epoch implements Agent.
func (a *ActorCritic) Epoch() int { return a.epoch }

// Space exposes the action space (used by experiment harnesses).
func (a *ActorCritic) Space() *actionspace.Space { return a.space }

// qValue runs the online critic on (state, flatAction).
func (a *ActorCritic) qValue(net *nn.Network, state, action []float64) float64 {
	copy(a.sa[:len(state)], state)
	copy(a.sa[len(state):], action)
	return net.Forward(a.sa)[0]
}

// SelectAssignment implements Agent: Algorithm 1 lines 8–11.
func (a *ActorCritic) SelectAssignment(assign []int, work []float64) []int {
	state := a.codec.Encode(assign, work, ensureFloats(&a.sc.selState, a.codec.Dim()))
	proto := ensureFloats(&a.sc.selProto, a.space.Dim())
	copy(proto, a.actor.Forward(state))
	// Line 9: exploration R(â) = â + ε·I, applied with probability ε; each
	// element of I is uniform in [0,1] (§3.2.1).
	eps := a.cfg.Epsilon.At(a.epoch)
	if a.ou != nil {
		noise := ensureFloats(&a.sc.selNoise, len(proto))
		a.ou.Sample(a.rng, noise)
		for i := range proto {
			proto[i] += eps * noise[i]
		}
	} else if a.rng.Float64() < eps {
		for i := range proto {
			proto[i] += eps * a.rng.Float64()
		}
	}
	chosen := a.criticArgmax(state, proto)
	a.lastAction = a.space.Encode(chosen, nil)
	a.epoch++
	return chosen
}

// criticArgmax performs lines 10–11: K-NN candidates of the proto-action,
// critic argmax over them. The returned assignment is caller-owned (copied
// out of the selection scratch).
func (a *ActorCritic) criticArgmax(state, proto []float64) []int {
	// Line 10: K nearest feasible actions of the proto-action.
	a.sc.selKnn = a.space.KNearestInto(proto, a.cfg.K, a.sc.selKnn)
	cands := a.sc.selKnn
	// Line 11: critic argmax over the candidate set.
	bestIdx, bestQ := 0, 0.0
	flat := ensureFloats(&a.sc.selFlat, a.space.Dim())
	for i, cand := range cands {
		a.space.Encode(cand, flat)
		q := a.qValue(a.critic, state, flat)
		if i == 0 || q > bestQ {
			bestIdx, bestQ = i, q
		}
	}
	return append([]int(nil), cands[bestIdx]...)
}

// takePending/restorePending implement offlineBatcher (see controller.go):
// they move the recorded one-hot action of the latest selection out of
// and back into the agent, bracketing a batched rollout chunk.
func (a *ActorCritic) takePending() pendingAction {
	p := pendingAction{act: a.lastAction}
	a.lastAction = nil
	return p
}

func (a *ActorCritic) restorePending(p pendingAction) { a.lastAction = p.act }

// RandomAssignment implements Agent: a random scheduling solution for
// offline sample collection. Half the draws are uniform over assignments
// and half are stratified by consolidation level, so the collected
// transitions cover the full spectrum from all-on-one-machine to fully
// spread — the action-space coverage the paper credits the full-action
// method with (§3.2).
func (a *ActorCritic) RandomAssignment([]int) []int {
	var chosen []int
	if a.rng.Intn(2) == 0 {
		chosen = a.space.Random(a.rng)
	} else {
		chosen = a.space.RandomStratified(a.rng)
	}
	a.lastAction = a.space.Encode(chosen, nil)
	return chosen
}

// Observe implements Agent (Algorithm 1 line 13).
func (a *ActorCritic) Observe(prevAssign []int, prevWork []float64, reward float64, nextAssign []int, nextWork []float64) {
	if a.lastAction == nil {
		panic("core: Observe called before any selection")
	}
	t := rl.Transition{
		State:     a.codec.Encode(prevAssign, prevWork, nil),
		Action:    a.lastAction,
		Reward:    a.norm.normalize(reward) * a.cfg.RewardScale,
		NextState: a.codec.Encode(nextAssign, nextWork, nil),
	}
	a.lastAction = nil
	a.buffer.Add(t)
}

// AddTransition inserts a pre-built raw transition (offline pretraining
// from a Database); reward scaling is applied here.
func (a *ActorCritic) AddTransition(t rl.Transition) {
	t.Reward *= a.cfg.RewardScale
	a.buffer.Add(t)
}

// TrainStep implements Agent: Algorithm 1 lines 14–18.
func (a *ActorCritic) TrainStep() {
	n := a.cfg.UpdatesPerStep
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		a.trainOnce()
	}
}

func (a *ActorCritic) trainOnce() {
	if a.buffer.Len() < a.cfg.BatchSize {
		return
	}
	a.batch = a.buffer.Sample(a.rng, a.cfg.BatchSize, a.batch)
	a.TrainOnBatch(a.batch)
}

// TrainOnBatch runs one batched actor-critic update (Algorithm 1 lines
// 15–18) on an externally sampled mini-batch — the incremental trainer API
// used by the serving daemon, whose replay buffer lives outside the agent
// (sharded per session, internal/rl.ShardedReplay). The internal training
// path (TrainStep) samples from the agent's own buffer and funnels through
// here, so both paths share one update implementation.
func (a *ActorCritic) TrainOnBatch(batch []rl.Transition) {
	if len(batch) == 0 {
		return
	}
	hN := len(batch)
	h := float64(hN)
	sdim := a.codec.Dim()
	adim := a.space.Dim()

	st := ensureMat(&a.sc.states, hN, sdim)
	nx := ensureMat(&a.sc.nextStates, hN, sdim)
	for i, tr := range batch {
		copy(st.Row(i), tr.State)
		copy(nx.Row(i), tr.NextState)
	}

	// Line 15: targets y_i = r_i + γ·max_{a∈A_K(f′(s_{i+1}))} Q′(s_{i+1}, a).
	// One batched target-actor pass over the H next states, then one batched
	// target-critic pass over all H·K candidate (s′, a) rows, instead of
	// H·(1+K) per-sample forwards.
	protoNext := a.actorT.ForwardBatch(nx)
	saCand := ensureMat(&a.sc.saCand, hN*a.cfg.K, sdim+adim)
	candCount := ensureInts(&a.sc.candCount, hN)
	rows := 0
	for i := range batch {
		a.sc.knn = a.space.KNearestInto(protoNext.Row(i), a.cfg.K, a.sc.knn)
		candCount[i] = len(a.sc.knn)
		for _, cand := range a.sc.knn {
			row := saCand.Row(rows)
			copy(row[:sdim], batch[i].NextState)
			a.space.Encode(cand, row[sdim:])
			rows++
		}
	}
	// KNearest can return fewer than K candidates under capacity
	// constraints; score only the rows actually filled.
	a.sc.saCandView = mat.Matrix{Rows: rows, Cols: sdim + adim, Data: saCand.Data[:rows*(sdim+adim)]}
	qCand := a.criticT.ForwardBatch(&a.sc.saCandView)
	targets := ensureFloats(&a.sc.targets, hN)
	rows = 0
	for i, tr := range batch {
		best := 0.0
		for j := 0; j < candCount[i]; j++ {
			if q := qCand.Row(rows)[0]; j == 0 || q > best {
				best = q
			}
			rows++
		}
		targets[i] = tr.Reward + a.cfg.Gamma*best
	}

	// Line 16: critic regression toward the targets (MSE), one batched
	// forward/backward pair.
	sa := ensureMat(&a.sc.sa, hN, sdim+adim)
	for i, tr := range batch {
		row := sa.Row(i)
		copy(row[:sdim], tr.State)
		copy(row[sdim:], tr.Action)
	}
	qs := a.critic.ForwardBatch(sa)
	dQ := ensureMat(&a.sc.dQ, hN, 1)
	for i := range batch {
		dQ.Row(i)[0] = (qs.Row(i)[0] - targets[i]) / h
	}
	a.critic.ZeroGrads()
	a.critic.BackwardBatchGrads(dQ, 1)
	if a.cfg.GradClip > 0 {
		a.critic.ClipGrads(a.cfg.GradClip)
	}
	a.criticOpt.Step(a.critic)

	// Line 17: deterministic policy gradient
	// ∇θπ f ≈ 1/H Σ ∇â Q(s, â)|â=f(s_i) · ∇θπ f(s)|s_i.
	// ∇â Q for all samples at once: critic forward on (s, f(s)) rows, then a
	// unit-output-gradient backward with weight-gradient scale 0; the action
	// columns of the critic's input gradient are ∇â Q.
	proto := a.actor.ForwardBatch(st)
	for i, tr := range batch {
		row := sa.Row(i)
		copy(row[:sdim], tr.State)
		copy(row[sdim:], proto.Row(i))
	}
	a.critic.ForwardBatch(sa)
	ones := ensureMat(&a.sc.ones, hN, 1)
	ones.Fill(1)
	dIn := a.critic.BackwardBatch(ones, 0) // scale 0: no weight grads
	dProto := ensureMat(&a.sc.dProto, hN, adim)
	for i := 0; i < hN; i++ {
		gradA := dIn.Row(i)[sdim:]
		// Ascend Q: upstream gradient for the actor is −∇â Q (we minimize).
		up := dProto.Row(i)
		for j, g := range gradA {
			up[j] = -g / h
		}
	}
	a.actor.ZeroGrads()
	a.actor.BackwardBatchGrads(dProto, 1)
	if a.cfg.GradClip > 0 {
		a.actor.ClipGrads(a.cfg.GradClip)
	}
	a.actorOpt.Step(a.actor)

	// Line 18: soft-update both target networks.
	a.criticT.SoftUpdate(a.critic, a.cfg.Tau)
	a.actorT.SoftUpdate(a.actor, a.cfg.Tau)
}

// Greedy returns the agent's exploitation-only choice for a state: proto
// action without noise, K-NN, critic argmax. Used to extract the final
// scheduling solution of a trained agent.
func (a *ActorCritic) Greedy(assign []int, work []float64) []int {
	state := a.codec.Encode(assign, work, ensureFloats(&a.sc.selState, a.codec.Dim()))
	proto := ensureFloats(&a.sc.selProto, a.space.Dim())
	copy(proto, a.actor.Forward(state))
	return a.criticArgmax(state, proto)
}

// Networks returns the four networks (actor, actor target, critic, critic
// target) for serialization by cmd/train.
func (a *ActorCritic) Networks() (actor, actorT, critic, criticT *nn.Network) {
	return a.actor, a.actorT, a.critic, a.criticT
}

// Optimizers returns the actor and critic Adam optimizers, so the
// durability layer can snapshot and restore the full training trajectory
// (weights alone resume from the right point in parameter space but with
// reset moment estimates — a different trajectory).
func (a *ActorCritic) Optimizers() (actorOpt, criticOpt *nn.Adam) {
	return a.actorOpt, a.criticOpt
}

// protoSanity reports the max |â| of the current policy on a state; used in
// tests to detect divergence.
func (a *ActorCritic) protoSanity(assign []int, work []float64) float64 {
	state := a.codec.Encode(assign, work, nil)
	out := a.actor.Forward(state)
	m := 0.0
	for _, v := range out {
		if x := math.Abs(v); x > m {
			m = x
		}
	}
	return m
}
