package core

import "math"

// rewardNorm standardizes rewards with running estimates of their mean and
// variance (exponential moving averages). Scheduling rewards are negative
// latencies clustered far from zero; with γ = 0.99 the raw value function
// is ≈ 100× the per-step reward, so the critic would spend its capacity
// representing a constant while the action-ranking signal hides in a ~1%
// residual. Standardizing the reward stream is an affine transform — it
// preserves the argmax over actions — and makes the residual the whole
// signal.
type rewardNorm struct {
	mean, varEst float64
	n            int
}

const rewardNormAlpha = 0.01

// RewardNormalizer is the exported form of the running reward
// standardization, for training loops that live outside this package (the
// serving daemon normalizes each session's reward stream with its own
// normalizer, so the statistics — and therefore the stored transitions —
// depend only on that session's history, never on cross-session timing).
type RewardNormalizer struct{ rn rewardNorm }

// Normalize folds r into the running statistics and returns the
// standardized value, clipped to ±5 standard deviations.
func (r *RewardNormalizer) Normalize(v float64) float64 { return r.rn.normalize(v) }

// State exposes the normalizer's running statistics for persistence: the
// serving daemon journals each session's normalizer alongside the rest of
// its resumable state, so a recovered session standardizes its reward
// stream from exactly where it left off instead of re-warming from zero.
func (r *RewardNormalizer) State() (mean, varEst float64, n int) {
	return r.rn.mean, r.rn.varEst, r.rn.n
}

// SetState restores statistics previously captured with State.
func (r *RewardNormalizer) SetState(mean, varEst float64, n int) {
	r.rn.mean, r.rn.varEst, r.rn.n = mean, varEst, n
}

// normalize folds r into the running statistics and returns the
// standardized value, clipped to ±5 standard deviations.
func (rn *rewardNorm) normalize(r float64) float64 {
	rn.n++
	if rn.n == 1 {
		rn.mean = r
		rn.varEst = 1
		return 0
	}
	// Warm-up: average quickly at first, then settle to the EMA rate.
	alpha := rewardNormAlpha
	if warm := 1.0 / float64(rn.n); warm > alpha {
		alpha = warm
	}
	delta := r - rn.mean
	rn.mean += alpha * delta
	rn.varEst = (1-alpha)*rn.varEst + alpha*delta*delta
	std := math.Sqrt(rn.varEst)
	if std < 1e-6 {
		std = 1e-6
	}
	z := (r - rn.mean) / std
	if z > 5 {
		z = 5
	} else if z < -5 {
		z = -5
	}
	return z
}
