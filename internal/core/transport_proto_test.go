package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWireRoundTrip pins the NDJSON wire format: both message types must
// survive encode→decode unchanged, including the error paths, and the
// encoded form must be a single '\n'-terminated line (the framing the
// serving daemon's line reader relies on).
func TestWireRoundTrip(t *testing.T) {
	sols := []SolutionMsg{
		{Epoch: 7, Assign: []int{0, 2, 1, 2}},
		{Epoch: 0, Assign: nil, Err: "no feasible solution"},
		{Epoch: 3, Err: "retry: inference queue full", Retry: true},
	}
	for _, in := range sols {
		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out SolutionMsg
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("SolutionMsg round trip: %+v -> %s -> %+v", in, blob, out)
		}
	}
	// Err/Retry must stay off the wire for plain solutions (old peers see
	// the exact seed protocol).
	if blob, _ := json.Marshal(sols[0]); strings.Contains(string(blob), "err") || strings.Contains(string(blob), "retry") {
		t.Fatalf("plain solution leaked error fields: %s", blob)
	}

	meas := []MeasurementMsg{
		{AvgTupleTimeMS: 41.25, Workload: []float64{120, 80.5}},
		{Err: "deploy refused"},
	}
	for _, in := range meas {
		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out MeasurementMsg
		if err := json.Unmarshal(blob, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("MeasurementMsg round trip: %+v -> %s -> %+v", in, blob, out)
		}
	}

	// One message per line, as produced by json.Encoder.
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	if err := enc.Encode(&sols[0]); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); strings.Count(got, "\n") != 1 || !strings.HasSuffix(got, "\n") {
		t.Fatalf("encoded frame is not one line: %q", got)
	}
}

// TestSessionGarbageLine: a non-JSON line must terminate the session
// cleanly (no reply, no hang) rather than desynchronize the stream.
func TestSessionGarbageLine(t *testing.T) {
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		HandleSchedulerSession(server, &simDeployer{env: newToy()})
		server.Close()
		close(done)
	}()
	if _, err := client.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The session must end; the client sees EOF (or a closed pipe) instead
	// of a reply.
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if n, err := client.Read(buf); err == nil {
		t.Fatalf("got %q after garbage, want closed session", buf[:n])
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not terminate on garbage input")
	}
	client.Close()
}

// TestSessionMidMessageDrop: the peer vanishing halfway through a frame
// must terminate the session, and the client side must surface an error
// from Push rather than blocking.
func TestSessionMidMessageDrop(t *testing.T) {
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		HandleSchedulerSession(server, &simDeployer{env: newToy()})
		close(done)
	}()
	// Half a SolutionMsg, then hang up.
	if _, err := client.Write([]byte(`{"epoch":1,"assign":[0,1,`)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("session did not terminate on mid-message drop")
	}

	// Client side: server drops mid-reply.
	server2, client2 := net.Pipe()
	go func() {
		dec := json.NewDecoder(bufio.NewReader(server2))
		var msg SolutionMsg
		if err := dec.Decode(&msg); err == nil {
			server2.Write([]byte(`{"avg_tuple_time_ms":12`)) // truncated reply
		}
		server2.Close()
	}()
	c := NewAgentClient(client2)
	defer c.Close()
	if _, _, err := c.Push(1, []int{0, 0}); err == nil {
		t.Fatal("Push succeeded across a mid-message drop")
	}
}

// TestPushSurfacesRemoteError pins the client-side Err path end to end.
func TestPushSurfacesRemoteError(t *testing.T) {
	server, client := net.Pipe()
	go HandleSchedulerSession(server, &simDeployer{env: newToy(), fail: true})
	c := NewAgentClient(client)
	defer c.Close()
	_, _, err := c.Push(1, []int{0, 0, 0, 0, 0, 0})
	if err == nil || !strings.Contains(err.Error(), "deploy refused") {
		t.Fatalf("err = %v, want remote deploy refusal", err)
	}
}

// countingDeployer tracks concurrent Deploy+Measure critical sections.
type countingDeployer struct {
	env               *toyEnv
	inside, maxInside atomic.Int32
	calls             atomic.Int32
	assign            []int
	mu                sync.Mutex
}

func (d *countingDeployer) Deploy(assign []int) error {
	n := d.inside.Add(1)
	for {
		old := d.maxInside.Load()
		if n <= old || d.maxInside.CompareAndSwap(old, n) {
			break
		}
	}
	d.mu.Lock()
	d.assign = append(d.assign[:0], assign...)
	d.mu.Unlock()
	time.Sleep(time.Millisecond) // widen the race window
	return nil
}

func (d *countingDeployer) Measure() (float64, []float64) {
	d.calls.Add(1)
	d.mu.Lock()
	a := append([]int(nil), d.assign...)
	d.mu.Unlock()
	d.inside.Add(-1)
	return d.env.AvgTupleTimeMS(a), d.env.Workload()
}

// TestServeSchedulerConcurrentSessions: several agents hold sessions at
// once, every push gets a valid measurement, and Deploy+Measure pairs
// never interleave (the lock in ServeScheduler).
func TestServeSchedulerConcurrentSessions(t *testing.T) {
	d := &countingDeployer{env: newToy()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeScheduler(l, d) }()

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := DialScheduler(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for e := 1; e <= 5; e++ {
				avg, work, err := c.Push(e, []int{0, 0, 1, 1, 2, 2})
				if err != nil {
					errs <- fmt.Errorf("session %d epoch %d: %w", s, e, err)
					return
				}
				if avg <= 0 || len(work) == 0 {
					errs <- fmt.Errorf("session %d: bad measurement %v %v", s, avg, work)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("server error: %v", err)
	}
	if got := d.calls.Load(); got != sessions*5 {
		t.Fatalf("measured %d deployments, want %d", got, sessions*5)
	}
	if m := d.maxInside.Load(); m != 1 {
		t.Fatalf("Deploy+Measure critical sections overlapped (max %d inside)", m)
	}
}

// tempErrListener injects a temporary accept error before delegating.
type tempErrListener struct {
	net.Listener
	fails atomic.Int32
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: resource temporarily unavailable" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *tempErrListener) Accept() (net.Conn, error) {
	if l.fails.Add(-1) >= 0 {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

// TestServeSchedulerTemporaryAcceptError: transient accept failures must
// be retried with backoff, not returned.
func TestServeSchedulerTemporaryAcceptError(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &tempErrListener{Listener: inner}
	l.fails.Store(3)
	done := make(chan error, 1)
	go func() { done <- ServeScheduler(l, &simDeployer{env: newToy()}) }()

	c, err := DialScheduler(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Push(1, []int{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatalf("push after temporary accept errors: %v", err)
	}
	c.Close()
	inner.Close()
	if err := <-done; err != nil {
		t.Fatalf("server returned %v after temporary accept errors", err)
	}
	if l.fails.Load() >= 0 {
		t.Fatal("injected failures were not consumed")
	}
}

// TestServeSchedulerShutdownUnblocksIdleSession: closing the listener
// must return even while a connected agent sits idle — the drain kicks
// the session out of its blocking read instead of waiting on it forever.
func TestServeSchedulerShutdownUnblocksIdleSession(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeScheduler(l, &simDeployer{env: newToy()}) }()

	c, err := DialScheduler(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Exchange once so the session is definitely established, then go idle.
	if _, _, err := c.Push(1, []int{0, 0, 0, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server returned %v after listener close", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeScheduler did not return: idle session pinned the drain")
	}
}

// TestServeSchedulerFatalAcceptError: non-temporary accept errors still
// surface.
func TestServeSchedulerFatalAcceptError(t *testing.T) {
	boom := errors.New("accept: fatal")
	if err := ServeScheduler(fatalListener{err: boom}, &simDeployer{env: newToy()}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fatal accept error", err)
	}
}

type fatalListener struct{ err error }

func (l fatalListener) Accept() (net.Conn, error) { return nil, l.err }
func (l fatalListener) Close() error              { return nil }
func (l fatalListener) Addr() net.Addr            { return &net.TCPAddr{} }

// TestServeSchedulerSequentialStillWorks keeps the figure pipeline's
// one-at-a-time path covered.
func TestServeSchedulerSequentialStillWorks(t *testing.T) {
	deployer := &simDeployer{env: newToy()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeSchedulerSequential(l, deployer) }()
	for i := 0; i < 3; i++ {
		c, err := DialScheduler(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Push(1, []int{0, 0, 0, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("server error: %v", err)
	}
}
