package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// This file reproduces the control-plane plumbing of Figure 1: "A socket is
// implemented for communications between the custom scheduler and the DRL
// agent" (§3.1). The DRL agent runs as an external process and pushes
// scheduling solutions over a socket; the custom scheduler (inside
// Nimbus/the master) deploys them and replies with the measured average
// tuple processing time and the current workload. Keeping the agent
// external is what enables hot swapping of control algorithms without
// shutting down the DSDPS.
//
// The wire protocol is newline-delimited JSON, one request/response pair
// per decision epoch.

// SolutionMsg is the agent→scheduler message carrying a scheduling
// solution.
type SolutionMsg struct {
	// Epoch is the agent's decision epoch (informational).
	Epoch int `json:"epoch"`
	// Assign maps executor index to machine index.
	Assign []int `json:"assign"`
	// Err carries an agent-side failure (empty on success). The serving
	// daemon (internal/serve) uses it to reject malformed sessions and,
	// with Retry set, to shed load.
	Err string `json:"err,omitempty"`
	// Retry marks a load-shedding reply: the request was not processed and
	// the scheduler should resubmit the same measurement after a short
	// backoff (admission control, internal/serve).
	Retry bool `json:"retry,omitempty"`
	// Token is the session-resumption token, set by the serving daemon on
	// its hello reply. A reconnecting client presents it in its next hello
	// to restore the session's per-topology state instead of starting cold
	// (internal/serve).
	Token string `json:"token,omitempty"`
	// Resumed marks a hello reply that restored a prior session's state;
	// Epoch and Assign then carry where that session left off.
	Resumed bool `json:"resumed,omitempty"`
}

// MeasurementMsg is the scheduler→agent reply after deployment and
// re-stabilization.
type MeasurementMsg struct {
	// Epoch, when non-zero, echoes 1 + the decision epoch of the
	// solution this measurement observed (1-based so that observing the
	// hello solution, epoch 0, is distinguishable from peers that
	// predate the field and send nothing). The serving daemon uses it to
	// detect a resubmitted measurement after a lost reply (the client
	// measured an older deployment than the daemon's pending transition
	// assumes) and keeps the mislabeled sample out of online learning.
	Epoch int `json:"epoch,omitempty"`
	// AvgTupleTimeMS is the measured average end-to-end tuple processing
	// time.
	AvgTupleTimeMS float64 `json:"avg_tuple_time_ms"`
	// Workload is the current arrival rate of each data source.
	Workload []float64 `json:"workload"`
	// Err carries a deployment failure, empty on success.
	Err string `json:"err,omitempty"`
}

// HelloMsg opens a session against the serving daemon (internal/serve):
// the scheduler announces its topology shape so the daemon can route it to
// (or create) the matching model. It is the only message the daemon reads
// before entering the measurement→solution loop, and the frame both
// framings negotiate over (wire.go).
type HelloMsg struct {
	// Topology is a free-form name used for logging/metrics only.
	Topology string `json:"topology"`
	// N is the executor count, M the machine count, Spouts the number of
	// data sources — together the state/action dimensions.
	N      int `json:"n"`
	M      int `json:"m"`
	Spouts int `json:"spouts"`
	// Token, when set, asks the daemon to resume the session it issued
	// the token for (in its hello reply's Token field). A token the
	// daemon no longer tracks — TTL-evicted or from a restarted daemon —
	// starts a fresh session under that token instead of failing, so a
	// reconnecting scheduler degrades to a cold start, never to an error.
	Token string `json:"token,omitempty"`
	// ReadOnly asks for an inference-only session: the daemon answers
	// state→action requests from its current weights but journals
	// nothing, learns nothing, and issues no resumption state. Replicas
	// accept read-only sessions while tailing a leader (follower reads),
	// serving from their continuously-warm weights.
	ReadOnly bool `json:"readonly,omitempty"`
}

// Deployer is the custom scheduler's view of the DSDPS: deploy a solution
// (minimal-diff, §3.1) and measure after re-stabilization.
type Deployer interface {
	// Deploy installs the assignment on the cluster.
	Deploy(assign []int) error
	// Measure waits for stabilization and returns the average tuple
	// processing time and the current per-spout workload.
	Measure() (avgTupleMS float64, workload []float64)
}

// ServeScheduler accepts agent connections on l and serves them
// concurrently — multiple agents (e.g. an A/B pair during a hot swap,
// §3.1) can hold sessions at once, while each Deploy+Measure pair runs
// under a lock so a session never measures another session's deployment.
// Temporary accept errors (in practice: EMFILE and friends under load) are
// retried with exponential backoff instead of tearing the server down; the
// call returns nil when the listener closes, or the first fatal accept
// error otherwise. On return every in-flight session has been unblocked
// (its connection's deadlines fire immediately, so a session parked in a
// read does not pin the shutdown) and drained.
func ServeScheduler(l net.Listener, d Deployer) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		cmu   sync.Mutex
		conns = map[net.Conn]struct{}{}
	)
	// drain kicks every live connection out of blocking I/O and waits for
	// its session goroutine; an in-flight Deploy+Measure finishes first
	// (it does no socket I/O), then the reply write fails and the session
	// exits.
	drain := func() {
		cmu.Lock()
		for c := range conns {
			_ = c.SetDeadline(time.Now())
		}
		cmu.Unlock()
		wg.Wait()
	}
	defer drain()
	for {
		conn, err := AcceptRetry(l)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		cmu.Lock()
		conns[conn] = struct{}{}
		cmu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				cmu.Lock()
				delete(conns, conn)
				cmu.Unlock()
				conn.Close()
			}()
			handleSchedulerSession(conn, d, &mu)
		}()
	}
}

// AcceptRetry accepts the next connection, retrying temporary errors
// (accept-queue conditions like EMFILE/ENFILE/ECONNABORTED) with
// exponential backoff from 5ms up to 1s instead of tearing the server
// down. The first fatal error — including net.ErrClosed when the listener
// closes — is returned. Shared by ServeScheduler and internal/serve.
func AcceptRetry(l net.Listener) (net.Conn, error) {
	backoff := 5 * time.Millisecond
	for {
		conn, err := l.Accept()
		if err == nil {
			return conn, nil
		}
		if !isTemporary(err) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// ServeSchedulerSequential keeps the original one-connection-at-a-time
// accept loop: sessions are served back-to-back on the calling goroutine,
// so a Deployer that is not safe for concurrent use (the deterministic
// figure pipeline's simulators) needs no locking and observes deployments
// in a single total order.
func ServeSchedulerSequential(l net.Listener, d Deployer) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		func() {
			defer conn.Close()
			HandleSchedulerSession(conn, d)
		}()
	}
}

// isTemporary reports whether an accept error is transient. net.Error's
// Temporary is deprecated for general errors but remains the only signal
// for accept-queue conditions like EMFILE/ENFILE/ECONNABORTED.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// HandleSchedulerSession runs the scheduler side of the protocol over any
// stream (exposed separately so in-process pipes can be used in tests and
// embeddings).
func HandleSchedulerSession(rw io.ReadWriter, d Deployer) {
	handleSchedulerSession(rw, d, nil)
}

// handleSchedulerSession services one agent session. When mu is non-nil
// each Deploy+Measure pair is one critical section, so concurrent sessions
// sharing a Deployer get attributable measurements (a session never
// measures a solution another session deployed in between).
func handleSchedulerSession(rw io.ReadWriter, d Deployer, mu *sync.Mutex) {
	dec := json.NewDecoder(bufio.NewReader(rw))
	enc := json.NewEncoder(rw)
	for {
		var msg SolutionMsg
		if err := dec.Decode(&msg); err != nil {
			return // connection closed or protocol error
		}
		var reply MeasurementMsg
		if mu != nil {
			mu.Lock()
		}
		if err := d.Deploy(msg.Assign); err != nil {
			reply.Err = err.Error()
		} else {
			reply.AvgTupleTimeMS, reply.Workload = d.Measure()
		}
		if mu != nil {
			mu.Unlock()
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// AgentClient is the DRL agent's connection to the custom scheduler.
type AgentClient struct {
	conn io.ReadWriteCloser
	dec  *json.Decoder
	enc  *json.Encoder
}

// DialScheduler connects to a scheduler server at addr ("host:port").
func DialScheduler(addr string) (*AgentClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial scheduler: %w", err)
	}
	return NewAgentClient(conn), nil
}

// NewAgentClient wraps an established stream as an agent session.
func NewAgentClient(conn io.ReadWriteCloser) *AgentClient {
	return &AgentClient{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), enc: json.NewEncoder(conn)}
}

// Push deploys a scheduling solution and returns the measured reward inputs.
func (c *AgentClient) Push(epoch int, assign []int) (avgTupleMS float64, workload []float64, err error) {
	if err := c.enc.Encode(&SolutionMsg{Epoch: epoch, Assign: assign}); err != nil {
		return 0, nil, fmt.Errorf("core: push solution: %w", err)
	}
	var reply MeasurementMsg
	if err := c.dec.Decode(&reply); err != nil {
		return 0, nil, fmt.Errorf("core: read measurement: %w", err)
	}
	if reply.Err != "" {
		return 0, nil, fmt.Errorf("core: scheduler rejected solution: %s", reply.Err)
	}
	return reply.AvgTupleTimeMS, reply.Workload, nil
}

// Close terminates the session.
func (c *AgentClient) Close() error { return c.conn.Close() }

// RemoteEnvironment adapts an AgentClient to the env.Environment contract,
// so a Controller can drive a DSDPS living in another process exactly like
// a local one.
type RemoteEnvironment struct {
	Client   *AgentClient
	NExec    int
	MMachine int

	epoch    int
	lastWork []float64
}

// N implements env.Environment.
func (r *RemoteEnvironment) N() int { return r.NExec }

// M implements env.Environment.
func (r *RemoteEnvironment) M() int { return r.MMachine }

// Workload implements env.Environment, returning the workload reported by
// the most recent measurement (zeros before the first deployment).
func (r *RemoteEnvironment) Workload() []float64 {
	if r.lastWork == nil {
		return make([]float64, 1)
	}
	return r.lastWork
}

// AvgTupleTimeMS implements env.Environment by pushing the assignment over
// the socket.
func (r *RemoteEnvironment) AvgTupleTimeMS(assign []int) float64 {
	r.epoch++
	avg, work, err := r.Client.Push(r.epoch, assign)
	if err != nil {
		// A broken control channel looks like an unresponsive system.
		return 0
	}
	if len(work) > 0 {
		r.lastWork = work
	}
	return avg
}
