package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
)

// This file reproduces the control-plane plumbing of Figure 1: "A socket is
// implemented for communications between the custom scheduler and the DRL
// agent" (§3.1). The DRL agent runs as an external process and pushes
// scheduling solutions over a socket; the custom scheduler (inside
// Nimbus/the master) deploys them and replies with the measured average
// tuple processing time and the current workload. Keeping the agent
// external is what enables hot swapping of control algorithms without
// shutting down the DSDPS.
//
// The wire protocol is newline-delimited JSON, one request/response pair
// per decision epoch.

// SolutionMsg is the agent→scheduler message carrying a scheduling
// solution.
type SolutionMsg struct {
	// Epoch is the agent's decision epoch (informational).
	Epoch int `json:"epoch"`
	// Assign maps executor index to machine index.
	Assign []int `json:"assign"`
}

// MeasurementMsg is the scheduler→agent reply after deployment and
// re-stabilization.
type MeasurementMsg struct {
	// AvgTupleTimeMS is the measured average end-to-end tuple processing
	// time.
	AvgTupleTimeMS float64 `json:"avg_tuple_time_ms"`
	// Workload is the current arrival rate of each data source.
	Workload []float64 `json:"workload"`
	// Err carries a deployment failure, empty on success.
	Err string `json:"err,omitempty"`
}

// Deployer is the custom scheduler's view of the DSDPS: deploy a solution
// (minimal-diff, §3.1) and measure after re-stabilization.
type Deployer interface {
	// Deploy installs the assignment on the cluster.
	Deploy(assign []int) error
	// Measure waits for stabilization and returns the average tuple
	// processing time and the current per-spout workload.
	Measure() (avgTupleMS float64, workload []float64)
}

// ServeScheduler accepts one agent connection at a time on l and services
// its solution pushes until the listener closes. It returns the first
// non-temporary accept error (or nil when the listener is closed).
func ServeScheduler(l net.Listener, d Deployer) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		serveConn(conn, d)
	}
}

// serveConn handles one agent session.
func serveConn(conn net.Conn, d Deployer) {
	defer conn.Close()
	HandleSchedulerSession(conn, d)
}

// HandleSchedulerSession runs the scheduler side of the protocol over any
// stream (exposed separately so in-process pipes can be used in tests and
// embeddings).
func HandleSchedulerSession(rw io.ReadWriter, d Deployer) {
	dec := json.NewDecoder(bufio.NewReader(rw))
	enc := json.NewEncoder(rw)
	for {
		var msg SolutionMsg
		if err := dec.Decode(&msg); err != nil {
			return // connection closed or protocol error
		}
		var reply MeasurementMsg
		if err := d.Deploy(msg.Assign); err != nil {
			reply.Err = err.Error()
		} else {
			reply.AvgTupleTimeMS, reply.Workload = d.Measure()
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// AgentClient is the DRL agent's connection to the custom scheduler.
type AgentClient struct {
	conn io.ReadWriteCloser
	dec  *json.Decoder
	enc  *json.Encoder
}

// DialScheduler connects to a scheduler server at addr ("host:port").
func DialScheduler(addr string) (*AgentClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("core: dial scheduler: %w", err)
	}
	return NewAgentClient(conn), nil
}

// NewAgentClient wraps an established stream as an agent session.
func NewAgentClient(conn io.ReadWriteCloser) *AgentClient {
	return &AgentClient{conn: conn, dec: json.NewDecoder(bufio.NewReader(conn)), enc: json.NewEncoder(conn)}
}

// Push deploys a scheduling solution and returns the measured reward inputs.
func (c *AgentClient) Push(epoch int, assign []int) (avgTupleMS float64, workload []float64, err error) {
	if err := c.enc.Encode(&SolutionMsg{Epoch: epoch, Assign: assign}); err != nil {
		return 0, nil, fmt.Errorf("core: push solution: %w", err)
	}
	var reply MeasurementMsg
	if err := c.dec.Decode(&reply); err != nil {
		return 0, nil, fmt.Errorf("core: read measurement: %w", err)
	}
	if reply.Err != "" {
		return 0, nil, fmt.Errorf("core: scheduler rejected solution: %s", reply.Err)
	}
	return reply.AvgTupleTimeMS, reply.Workload, nil
}

// Close terminates the session.
func (c *AgentClient) Close() error { return c.conn.Close() }

// RemoteEnvironment adapts an AgentClient to the env.Environment contract,
// so a Controller can drive a DSDPS living in another process exactly like
// a local one.
type RemoteEnvironment struct {
	Client   *AgentClient
	NExec    int
	MMachine int

	epoch    int
	lastWork []float64
}

// N implements env.Environment.
func (r *RemoteEnvironment) N() int { return r.NExec }

// M implements env.Environment.
func (r *RemoteEnvironment) M() int { return r.MMachine }

// Workload implements env.Environment, returning the workload reported by
// the most recent measurement (zeros before the first deployment).
func (r *RemoteEnvironment) Workload() []float64 {
	if r.lastWork == nil {
		return make([]float64, 1)
	}
	return r.lastWork
}

// AvgTupleTimeMS implements env.Environment by pushing the assignment over
// the socket.
func (r *RemoteEnvironment) AvgTupleTimeMS(assign []int) float64 {
	r.epoch++
	avg, work, err := r.Client.Push(r.epoch, assign)
	if err != nil {
		// A broken control channel looks like an unresponsive system.
		return 0
	}
	if len(work) > 0 {
		r.lastWork = work
	}
	return avg
}
