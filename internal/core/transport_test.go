package core

import (
	"fmt"
	"net"
	"testing"
)

// simDeployer is a Deployer backed by the toy environment.
type simDeployer struct {
	env    *toyEnv
	assign []int
	fail   bool
}

func (d *simDeployer) Deploy(assign []int) error {
	if d.fail {
		return fmt.Errorf("deploy refused")
	}
	if len(assign) != d.env.n {
		return fmt.Errorf("bad assignment length %d", len(assign))
	}
	d.assign = append([]int(nil), assign...)
	return nil
}

func (d *simDeployer) Measure() (float64, []float64) {
	return d.env.AvgTupleTimeMS(d.assign), d.env.Workload()
}

func TestTransportOverTCP(t *testing.T) {
	deployer := &simDeployer{env: newToy()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ServeScheduler(l, deployer) }()

	client, err := DialScheduler(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	assign := []int{0, 0, 0, 1, 1, 1}
	avg, work, err := client.Push(1, assign)
	if err != nil {
		t.Fatal(err)
	}
	want := deployer.env.AvgTupleTimeMS(assign)
	if avg != want {
		t.Fatalf("measured %v want %v", avg, want)
	}
	if len(work) != 1 || work[0] != 100 {
		t.Fatalf("workload %v", work)
	}
	// Multiple epochs over one session.
	for epoch := 2; epoch < 5; epoch++ {
		if _, _, err := client.Push(epoch, assign); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("server error: %v", err)
	}
}

func TestTransportDeployError(t *testing.T) {
	deployer := &simDeployer{env: newToy(), fail: true}
	server, client := net.Pipe()
	go HandleSchedulerSession(server, deployer)
	c := NewAgentClient(client)
	defer c.Close()
	if _, _, err := c.Push(1, []int{0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("expected deployment error")
	}
}

// TestRemoteControllerLoop drives a full offline+online training loop over
// the socket transport: the controller and agent live on one side, the
// "cluster" on the other — the architecture of Figure 1.
func TestRemoteControllerLoop(t *testing.T) {
	deployer := &simDeployer{env: newToy()}
	server, client := net.Pipe()
	go HandleSchedulerSession(server, deployer)

	remote := &RemoteEnvironment{Client: NewAgentClient(client), NExec: 6, MMachine: 3}
	// Prime the workload cache with a first deployment.
	rr := []int{0, 1, 2, 0, 1, 2}
	if lat := remote.AvgTupleTimeMS(rr); lat <= 0 {
		t.Fatalf("remote measurement %v", lat)
	}

	cfg := DefaultACConfig()
	cfg.Epsilon.Decay = 50
	agent := NewActorCritic(6, 3, 1, cfg, 21)
	ctrl := NewController(remote, agent)
	if err := ctrl.CollectOffline(150); err != nil {
		t.Fatal(err)
	}
	ctrl.OnlineLearn(150, nil)
	got := deployer.env.AvgTupleTimeMS(ctrl.GreedySolution())
	rrLat := deployer.env.AvgTupleTimeMS(rr)
	if got >= rrLat {
		t.Fatalf("remote-trained solution %.2f not better than round-robin %.2f", got, rrLat)
	}
}
