// Package core implements the paper's contribution: the DRL-based
// model-free control framework for DSDPS scheduling (§3). It contains the
// state encoding s = (X, w), the transition-sample database, the DQN-based
// baseline agent (§3.2), the actor-critic agent with K-NN action selection
// (Algorithm 1, §3.2.1), and the controller that runs offline training and
// online learning against an environment.
package core

import (
	"fmt"

	"repro/internal/actionspace"
)

// StateCodec encodes the DRL state s = (X, w): the current scheduling
// solution X as a flattened one-hot N×M matrix, followed by the tuple
// arrival rate of each data source (§3.2). Rates are scaled to keep inputs
// in a range friendly to tanh networks.
type StateCodec struct {
	Space     *actionspace.Space
	NumSpouts int
	// RateScale divides raw tuples/s rates (default 1000).
	RateScale float64
}

// NewStateCodec returns a codec for an N×M space with the given number of
// data sources.
func NewStateCodec(space *actionspace.Space, numSpouts int) *StateCodec {
	return &StateCodec{Space: space, NumSpouts: numSpouts, RateScale: 1000}
}

// Dim returns the state vector length N·M + numSpouts.
func (c *StateCodec) Dim() int { return c.Space.Dim() + c.NumSpouts }

// Encode writes the state for (assign, work) into dst (allocated if nil)
// and returns it.
func (c *StateCodec) Encode(assign []int, work []float64, dst []float64) []float64 {
	if len(work) != c.NumSpouts {
		panic(fmt.Sprintf("core: state has %d spout rates, want %d", len(work), c.NumSpouts))
	}
	if dst == nil {
		dst = make([]float64, c.Dim())
	}
	c.Space.Encode(assign, dst[:c.Space.Dim()])
	scale := c.RateScale
	if scale <= 0 {
		scale = 1000
	}
	for i, w := range work {
		dst[c.Space.Dim()+i] = w / scale
	}
	return dst
}

// DecodeAssign recovers the assignment part of an encoded state.
func (c *StateCodec) DecodeAssign(state []float64) []int {
	return c.Space.Decode(state[:c.Space.Dim()])
}
