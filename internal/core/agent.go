package core

// Agent is a DRL scheduling agent driving one decision epoch at a time.
//
// Usage protocol (one decision epoch, Algorithm 1 lines 8–14): call
// SelectAssignment (or RandomAssignment during offline sample collection)
// to obtain the action; deploy it; measure the reward; then call Observe
// with the outcome and TrainStep to learn. SelectAssignment/RandomAssignment
// record the chosen action internally, so Observe must follow the selection
// it reports on.
type Agent interface {
	// Name identifies the agent in experiment output.
	Name() string
	// SelectAssignment chooses the next scheduling solution from the
	// current state (assignment + workload), applying the agent's
	// exploration policy, and advances the decision epoch.
	SelectAssignment(assign []int, work []float64) []int
	// RandomAssignment chooses a purely random action from the current
	// state — the offline-training collection policy (§3.2.1).
	RandomAssignment(assign []int) []int
	// Observe stores the transition (s, a, r, s′) for the most recent
	// selection. Reward is the raw reward (negative measured average tuple
	// processing time in ms); running standardization is internal.
	Observe(prevAssign []int, prevWork []float64, reward float64, nextAssign []int, nextWork []float64)
	// TrainStep performs one mini-batch update from the replay buffer
	// (a no-op until the buffer holds a full batch).
	TrainStep()
	// Epoch returns the number of decision epochs taken so far.
	Epoch() int
}
