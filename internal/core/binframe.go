package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// Binary wire framing: the length-prefixed alternative to NDJSON for the
// three protocol messages. A frame is
//
//	0xA7 | type (1 byte) | payload length (u32 LE) | payload | '\n'
//
// The trailing '\n' is a guard byte with one job: it makes every binary
// frame also a complete NDJSON "line", so a server that predates the
// binary protocol reads a client's magic-prefixed binary hello as one
// (non-JSON) line and answers a normal NDJSON bad-hello error — which the
// client recognizes by the reply's first byte ('{' instead of 0xA7) and
// falls back to NDJSON (see wire.go for the negotiation rules). NDJSON
// remains the wire fallback and the differential-fuzz oracle.
//
// Payload encoding is positional, little-endian, and canonical (one byte
// string per message value, asserted by the fuzz harness):
//
//	string   u32 byte length + raw bytes
//	int      u64, two's complement (JSON ints can be negative)
//	float64  u64, IEEE 754 bits
//	[]int    u32 count + one u64 each; count 0xFFFFFFFF encodes nil
//	[]f64    u32 count + one u64 each; count 0xFFFFFFFF encodes nil
//
// The nil sentinel preserves the JSON nil-vs-empty distinction across the
// codec boundary, so a message round-trips reflect.DeepEqual-identically
// through either framing. Decoding is allocation-free except for non-empty
// strings: slices decode into the caller's reused backing arrays and the
// payload is consumed in place, no reflection, no intermediate form.

const (
	// BinMagic opens every binary frame. It is not a valid first byte of
	// any JSON value, so the first byte of a connection (or of a reply)
	// identifies the framing.
	BinMagic = 0xA7

	// Frame types.
	BinTypeHello       = 1
	BinTypeSolution    = 2
	BinTypeMeasurement = 3

	// binNil is the slice-count sentinel encoding a nil slice.
	binNil = ^uint32(0)
)

// ErrBadFrame marks a binary framing violation: a non-magic byte where a
// frame must start, or a frame whose guard byte is not '\n'. The stream
// cannot be re-synchronized past it.
var ErrBadFrame = errors.New("core: malformed binary frame")

// BinFrameReader reads binary frames with the same hard size cap and
// error contract as the NDJSON FrameReader: ErrFrameTooLong above the
// cap, io.ErrUnexpectedEOF for a stream that ends mid-frame, clean io.EOF
// on a frame boundary.
type BinFrameReader struct {
	r   *bufio.Reader
	max int
	buf []byte
	// pending is how many payload+guard bytes of an oversized frame
	// remain unconsumed, so Drain can skip exactly them before an error
	// reply (mirroring FrameReader.DrainLine).
	pending int
}

// NewBinFrameReader wraps r with a frame cap of max payload bytes (the
// six-byte header and the guard byte are framing, not payload).
func NewBinFrameReader(r *bufio.Reader, max int) *BinFrameReader {
	return &BinFrameReader{r: r, max: max}
}

// Next returns the next frame's type and payload. The payload slice is
// valid until the following call.
func (br *BinFrameReader) Next() (typ byte, payload []byte, err error) {
	var hdr [6]byte
	if _, err := io.ReadFull(br.r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here is a clean frame-boundary end
	}
	if hdr[0] != BinMagic {
		return 0, nil, ErrBadFrame
	}
	if _, err := io.ReadFull(br.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[2:6]))
	if n > br.max {
		br.pending = n + 1
		return 0, nil, ErrFrameTooLong
	}
	if cap(br.buf) < n+1 {
		br.buf = make([]byte, n+1)
	}
	buf := br.buf[:n+1]
	if _, err := io.ReadFull(br.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if buf[n] != '\n' {
		return 0, nil, ErrBadFrame
	}
	return hdr[1], buf[:n], nil
}

// Drain consumes the rest of an oversized frame (after ErrFrameTooLong)
// so an error reply is not destroyed by the RST a close-with-unread-data
// would send.
func (br *BinFrameReader) Drain() error {
	n := br.pending
	br.pending = 0
	_, err := br.r.Discard(n)
	return err
}

// Encoders, in the WAL emitter's style (internal/durable appendRecord):
// append-based, length patched into a reserved header slot once the
// payload is known, zero intermediate buffers.

func beginBinFrame(b []byte, typ byte) ([]byte, int) {
	b = append(b, BinMagic, typ, 0, 0, 0, 0)
	return b, len(b)
}

func endBinFrame(b []byte, start int) []byte {
	binary.LittleEndian.PutUint32(b[start-4:start], uint32(len(b)-start))
	return append(b, '\n')
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendBinString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBinInts(b []byte, v []int) []byte {
	if v == nil {
		return appendU32(b, binNil)
	}
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendU64(b, uint64(int64(x)))
	}
	return b
}

func appendBinF64s(b []byte, v []float64) []byte {
	if v == nil {
		return appendU32(b, binNil)
	}
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendU64(b, math.Float64bits(x))
	}
	return b
}

// AppendHelloBin appends h as one complete binary frame.
func AppendHelloBin(b []byte, h *HelloMsg) []byte {
	b, start := beginBinFrame(b, BinTypeHello)
	b = appendBinString(b, h.Topology)
	b = appendU64(b, uint64(int64(h.N)))
	b = appendU64(b, uint64(int64(h.M)))
	b = appendU64(b, uint64(int64(h.Spouts)))
	b = appendBinString(b, h.Token)
	var flags byte
	if h.ReadOnly {
		flags |= 1
	}
	b = append(b, flags)
	return endBinFrame(b, start)
}

// AppendSolutionBin appends m as one complete binary frame.
func AppendSolutionBin(b []byte, m *SolutionMsg) []byte {
	b, start := beginBinFrame(b, BinTypeSolution)
	b = appendU64(b, uint64(int64(m.Epoch)))
	var flags byte
	if m.Retry {
		flags |= 1
	}
	if m.Resumed {
		flags |= 2
	}
	b = append(b, flags)
	b = appendBinInts(b, m.Assign)
	b = appendBinString(b, m.Err)
	b = appendBinString(b, m.Token)
	return endBinFrame(b, start)
}

// AppendMeasurementBin appends m as one complete binary frame.
func AppendMeasurementBin(b []byte, m *MeasurementMsg) []byte {
	b, start := beginBinFrame(b, BinTypeMeasurement)
	b = appendU64(b, uint64(int64(m.Epoch)))
	b = appendU64(b, math.Float64bits(m.AvgTupleTimeMS))
	b = appendBinF64s(b, m.Workload)
	b = appendBinString(b, m.Err)
	return endBinFrame(b, start)
}

// binCursor consumes a payload in place; the first malformed read poisons
// it and done() reports the verdict, so decoders read straight through
// without per-field error plumbing.
type binCursor struct {
	p   []byte
	bad bool
}

func (c *binCursor) u8() byte {
	if c.bad || len(c.p) < 1 {
		c.bad = true
		return 0
	}
	v := c.p[0]
	c.p = c.p[1:]
	return v
}

func (c *binCursor) u32() uint32 {
	if c.bad || len(c.p) < 4 {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint32(c.p)
	c.p = c.p[4:]
	return v
}

func (c *binCursor) u64() uint64 {
	if c.bad || len(c.p) < 8 {
		c.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(c.p)
	c.p = c.p[8:]
	return v
}

func (c *binCursor) int() int { return int(int64(c.u64())) }

func (c *binCursor) str() string {
	n := c.u32()
	if c.bad || uint64(n) > uint64(len(c.p)) {
		c.bad = true
		return ""
	}
	if n == 0 {
		return ""
	}
	v := string(c.p[:n])
	c.p = c.p[n:]
	return v
}

// ints decodes an []int into dst's backing array (nil sentinel → nil).
func (c *binCursor) ints(dst []int) []int {
	n := c.u32()
	if n == binNil {
		return nil
	}
	if c.bad || uint64(n)*8 > uint64(len(c.p)) {
		c.bad = true
		return nil
	}
	if dst == nil {
		dst = []int{} // count 0 is an empty slice, distinct from the nil sentinel
	}
	dst = dst[:0]
	for i := 0; i < int(n); i++ {
		dst = append(dst, c.int())
	}
	return dst
}

// f64s decodes a []float64 into dst's backing array (nil sentinel → nil).
func (c *binCursor) f64s(dst []float64) []float64 {
	n := c.u32()
	if n == binNil {
		return nil
	}
	if c.bad || uint64(n)*8 > uint64(len(c.p)) {
		c.bad = true
		return nil
	}
	if dst == nil {
		dst = []float64{} // count 0 is an empty slice, distinct from the nil sentinel
	}
	dst = dst[:0]
	for i := 0; i < int(n); i++ {
		dst = append(dst, math.Float64frombits(c.u64()))
	}
	return dst
}

// done reports ErrBadFrame unless the payload decoded cleanly and
// completely — trailing bytes are a protocol error, which is also what
// makes decode(encode(m)) == m byte-canonical for the fuzz harness.
func (c *binCursor) done() error {
	if c.bad || len(c.p) != 0 {
		return ErrBadFrame
	}
	return nil
}

// DecodeHelloBin decodes a BinTypeHello payload into h. On error h's
// contents are unspecified.
func DecodeHelloBin(p []byte, h *HelloMsg) error {
	c := binCursor{p: p}
	h.Topology = c.str()
	h.N = c.int()
	h.M = c.int()
	h.Spouts = c.int()
	h.Token = c.str()
	flags := c.u8()
	if flags&^1 != 0 {
		// Unknown flag bits are rejected rather than ignored: every valid
		// payload has exactly one encoding, so re-encoding a decoded frame
		// must reproduce its bytes.
		c.bad = true
	}
	h.ReadOnly = flags&1 != 0
	return c.done()
}

// DecodeSolutionBin decodes a BinTypeSolution payload into m, reusing
// m.Assign's backing array. On error m's contents are unspecified.
func DecodeSolutionBin(p []byte, m *SolutionMsg) error {
	c := binCursor{p: p}
	m.Epoch = c.int()
	flags := c.u8()
	if flags&^3 != 0 {
		// Unknown flag bits are rejected rather than ignored: every valid
		// payload has exactly one encoding, so re-encoding a decoded frame
		// must reproduce its bytes.
		c.bad = true
	}
	m.Retry = flags&1 != 0
	m.Resumed = flags&2 != 0
	m.Assign = c.ints(m.Assign)
	m.Err = c.str()
	m.Token = c.str()
	return c.done()
}

// DecodeMeasurementBin decodes a BinTypeMeasurement payload into m,
// reusing m.Workload's backing array. On error m's contents are
// unspecified.
func DecodeMeasurementBin(p []byte, m *MeasurementMsg) error {
	c := binCursor{p: p}
	m.Epoch = c.int()
	m.AvgTupleTimeMS = math.Float64frombits(c.u64())
	m.Workload = c.f64s(m.Workload)
	m.Err = c.str()
	return c.done()
}
