package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func TestBinaryCodecRoundTrips(t *testing.T) {
	hellos := []HelloMsg{
		{},
		{Topology: "wordcount", N: 12, M: 4, Spouts: 2},
		{Topology: "q\"uo\\te\nme", N: -3, M: 1 << 40, Spouts: 0, Token: "s0ffee"},
		{Token: "fleet-deadbeef"},
		{Topology: "follower-read", N: 6, M: 3, Spouts: 2, Token: "warm", ReadOnly: true},
		{ReadOnly: true},
	}
	for _, h := range hellos {
		frame := AppendHelloBin(nil, &h)
		typ, p, err := NewBinFrameReader(bufio.NewReader(bytes.NewReader(frame)), 1<<20).Next()
		if err != nil || typ != BinTypeHello {
			t.Fatalf("hello %+v: frame read typ=%d err=%v", h, typ, err)
		}
		var got HelloMsg
		if err := DecodeHelloBin(p, &got); err != nil {
			t.Fatalf("hello %+v: decode: %v", h, err)
		}
		if !reflect.DeepEqual(h, got) {
			t.Fatalf("hello round trip drifted: %+v vs %+v", h, got)
		}
	}

	sols := []SolutionMsg{
		{},
		{Epoch: 7, Assign: []int{0, 1, 2, 1}},
		{Epoch: -1, Assign: []int{}, Err: "bad hello: shape", Retry: true},
		{Epoch: 3, Assign: []int{1, 0}, Token: "s42", Resumed: true},
	}
	for _, m := range sols {
		frame := AppendSolutionBin(nil, &m)
		typ, p, err := NewBinFrameReader(bufio.NewReader(bytes.NewReader(frame)), 1<<20).Next()
		if err != nil || typ != BinTypeSolution {
			t.Fatalf("solution %+v: frame read typ=%d err=%v", m, typ, err)
		}
		var got SolutionMsg
		if err := DecodeSolutionBin(p, &got); err != nil {
			t.Fatalf("solution %+v: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("solution round trip drifted: %+v vs %+v", m, got)
		}
		// nil-vs-empty must survive the codec: it is observable through
		// encoding/json ("assign":null vs "assign":[]).
		if (m.Assign == nil) != (got.Assign == nil) {
			t.Fatalf("solution nilness drifted: %v vs %v", m.Assign == nil, got.Assign == nil)
		}
	}

	meas := []MeasurementMsg{
		{},
		{Epoch: 9, AvgTupleTimeMS: 41.5, Workload: []float64{120, 80.25}},
		{AvgTupleTimeMS: math.Inf(1), Workload: []float64{}, Err: "deploy failed"},
	}
	for _, m := range meas {
		frame := AppendMeasurementBin(nil, &m)
		typ, p, err := NewBinFrameReader(bufio.NewReader(bytes.NewReader(frame)), 1<<20).Next()
		if err != nil || typ != BinTypeMeasurement {
			t.Fatalf("measurement %+v: frame read typ=%d err=%v", m, typ, err)
		}
		var got MeasurementMsg
		if err := DecodeMeasurementBin(p, &got); err != nil {
			t.Fatalf("measurement %+v: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("measurement round trip drifted: %+v vs %+v", m, got)
		}
	}

	// NaN round-trips bit-exactly through the binary framing (it has no
	// NDJSON encoding at all, which Wire.WriteMeasurement enforces).
	nan := MeasurementMsg{AvgTupleTimeMS: math.NaN(), Workload: []float64{math.Float64frombits(0x7ff8000000000001)}}
	frame := AppendMeasurementBin(nil, &nan)
	_, p, err := NewBinFrameReader(bufio.NewReader(bytes.NewReader(frame)), 1<<20).Next()
	if err != nil {
		t.Fatalf("NaN frame: %v", err)
	}
	var got MeasurementMsg
	if err := DecodeMeasurementBin(p, &got); err != nil {
		t.Fatalf("NaN decode: %v", err)
	}
	if !math.IsNaN(got.AvgTupleTimeMS) ||
		math.Float64bits(got.Workload[0]) != 0x7ff8000000000001 {
		t.Fatalf("NaN bits drifted: %x", math.Float64bits(got.Workload[0]))
	}
}

func TestBinFrameReaderErrors(t *testing.T) {
	sol := AppendSolutionBin(nil, &SolutionMsg{Epoch: 1, Assign: []int{0, 1}})

	read := func(data []byte, max int) error {
		_, _, err := NewBinFrameReader(bufio.NewReader(bytes.NewReader(data)), max).Next()
		return err
	}

	if err := read(nil, 1<<20); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	for cut := 1; cut < len(sol); cut++ {
		if err := read(sol[:cut], 1<<20); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("frame cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if err := read([]byte(`{"epoch":1}`+"\n"), 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("NDJSON on a binary reader: got %v, want ErrBadFrame", err)
	}
	corrupt := append([]byte(nil), sol...)
	corrupt[len(corrupt)-1] = 'x' // guard byte
	if err := read(corrupt, 1<<20); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad guard byte: got %v, want ErrBadFrame", err)
	}

	// Oversized: the cap trips without buffering the payload, and Drain
	// positions the reader exactly at the next frame.
	big := AppendMeasurementBin(nil, &MeasurementMsg{Workload: make([]float64, 100)})
	stream := append(append([]byte(nil), big...), sol...)
	br := NewBinFrameReader(bufio.NewReader(bytes.NewReader(stream)), 64)
	if _, _, err := br.Next(); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLong", err)
	}
	if err := br.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	typ, p, err := br.Next()
	if err != nil || typ != BinTypeSolution {
		t.Fatalf("frame after drain: typ=%d err=%v", typ, err)
	}
	var got SolutionMsg
	if err := DecodeSolutionBin(p, &got); err != nil || got.Epoch != 1 {
		t.Fatalf("frame after drain decoded to %+v (err %v)", got, err)
	}
}

func TestDecodeBinRejectsMalformedPayloads(t *testing.T) {
	sol := SolutionMsg{Epoch: 2, Assign: []int{1}, Token: "s1"}
	frame := AppendSolutionBin(nil, &sol)
	payload := frame[6 : len(frame)-1]

	// Every strict prefix of a valid payload must fail loudly.
	for cut := 0; cut < len(payload); cut++ {
		var m SolutionMsg
		if err := DecodeSolutionBin(payload[:cut], &m); err == nil {
			t.Fatalf("payload truncated to %d bytes decoded cleanly", cut)
		}
	}
	// Trailing garbage is a protocol error, not ignored padding.
	var m SolutionMsg
	if err := DecodeSolutionBin(append(append([]byte(nil), payload...), 0), &m); err == nil {
		t.Fatal("payload with a trailing byte decoded cleanly")
	}
	// Unknown flag bits are rejected (canonical-encoding invariant).
	bad := append([]byte(nil), payload...)
	bad[8] |= 4
	if err := DecodeSolutionBin(bad, &m); err == nil {
		t.Fatal("unknown flag bits decoded cleanly")
	}
	// A string length running past the payload must not over-read.
	var h HelloMsg
	if err := DecodeHelloBin([]byte{0xff, 0xff, 0xff, 0x7f, 'x'}, &h); err == nil {
		t.Fatal("runaway string length decoded cleanly")
	}
	// Unknown hello flag bits (beyond ReadOnly) are rejected too: a newer
	// peer's extension must not be silently dropped on re-encode.
	hello := HelloMsg{Topology: "t", N: 2, M: 1, Spouts: 1, ReadOnly: true}
	hframe := AppendHelloBin(nil, &hello)
	hpayload := append([]byte(nil), hframe[6:len(hframe)-1]...)
	hpayload[len(hpayload)-1] |= 2 // flags is the hello payload's last byte
	if err := DecodeHelloBin(hpayload, &h); err == nil {
		t.Fatal("unknown hello flag bits decoded cleanly")
	}
}

// TestWireNegotiation drives both framings through the Wire layer over
// in-memory streams, including the cross-version fallback contract.
func TestWireNegotiation(t *testing.T) {
	for _, binary := range []bool{false, true} {
		var wire bytes.Buffer
		w := NewWire(bufio.NewReader(&wire), &wire, 1<<20, binary)
		hello := HelloMsg{Topology: "t", N: 4, M: 2, Spouts: 1, Token: "s9", ReadOnly: true}
		if err := w.WriteHello(&hello); err != nil {
			t.Fatalf("binary=%v: write hello: %v", binary, err)
		}
		isBin, err := SniffBinary(bufio.NewReader(bytes.NewReader(wire.Bytes())))
		if err != nil || isBin != binary {
			t.Fatalf("binary=%v: sniffed %v (err %v)", binary, isBin, err)
		}
		var gotHello HelloMsg
		if err := w.ReadHello(&gotHello); err != nil || !reflect.DeepEqual(hello, gotHello) {
			t.Fatalf("binary=%v: hello came back %+v (err %v)", binary, gotHello, err)
		}

		sol := SolutionMsg{Epoch: 5, Assign: []int{1, 0, 1, 1}, Token: "s9", Resumed: true}
		if err := w.WriteSolution(&sol); err != nil {
			t.Fatalf("binary=%v: write solution: %v", binary, err)
		}
		var gotSol SolutionMsg
		if err := w.ReadSolution(&gotSol); err != nil || !reflect.DeepEqual(sol, gotSol) {
			t.Fatalf("binary=%v: solution came back %+v (err %v)", binary, gotSol, err)
		}

		meas := MeasurementMsg{Epoch: 6, AvgTupleTimeMS: 33.5, Workload: []float64{1, 2}}
		if err := w.WriteMeasurement(&meas); err != nil {
			t.Fatalf("binary=%v: write measurement: %v", binary, err)
		}
		var gotMeas MeasurementMsg
		if err := w.ReadMeasurement(&gotMeas); err != nil || !reflect.DeepEqual(meas, gotMeas) {
			t.Fatalf("binary=%v: measurement came back %+v (err %v)", binary, gotMeas, err)
		}
	}

	// Wrong frame type on the binary framing is malformed (the peer is
	// still synchronized; shed paths reply before closing).
	var wire bytes.Buffer
	w := NewWire(bufio.NewReader(&wire), &wire, 1<<20, true)
	if err := w.WriteMeasurement(&MeasurementMsg{}); err != nil {
		t.Fatal(err)
	}
	var h HelloMsg
	if err := w.ReadHello(&h); !IsMalformed(err) {
		t.Fatalf("measurement where hello expected: got %v, want MalformedError", err)
	}

	// NDJSON cannot carry NaN; the write must fail, not emit bad JSON.
	w = NewWire(bufio.NewReader(&wire), &wire, 1<<20, false)
	if err := w.WriteMeasurement(&MeasurementMsg{AvgTupleTimeMS: math.NaN()}); !IsMalformed(err) {
		t.Fatalf("NaN over NDJSON: got %v, want MalformedError", err)
	}

	// The old-server fallback contract: a binary hello is one complete
	// NDJSON "line" (guard '\n'), so an NDJSON FrameReader consumes it and
	// the bad-hello error reply that follows is readable — it starts with
	// '{', which is how the client detects the downgrade.
	binHello := AppendHelloBin(nil, &HelloMsg{Topology: "t", N: 2, M: 1, Spouts: 1})
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(binHello)), 1<<20)
	line, err := fr.Next()
	if err != nil {
		t.Fatalf("old server reading a binary hello as a line: %v", err)
	}
	if err := json.Unmarshal(line, &h); err == nil {
		t.Fatal("a binary hello must not parse as JSON")
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("binary hello left bytes behind on an NDJSON reader: %v", err)
	}
}
