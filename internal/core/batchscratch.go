package core

import "repro/internal/mat"

// ensureMat returns *m resized to rows×cols, reallocating only when the
// shape changes. Training loops use a fixed mini-batch size, so after the
// first call every mini-batch update reuses the same backing storage.
func ensureMat(m **mat.Matrix, rows, cols int) *mat.Matrix {
	if *m == nil || (*m).Rows != rows || (*m).Cols != cols {
		*m = mat.NewMatrix(rows, cols)
	}
	return *m
}

// ensureFloats resizes a float scratch slice.
func ensureFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	return (*s)[:n]
}

// ensureInts resizes an int scratch slice.
func ensureInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	return (*s)[:n]
}
