package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/parallel"
)

// fillBuffer seeds an agent's replay buffer with enough random transitions
// that TrainStep performs real mini-batch updates.
func fillBuffer(agent Agent, n, m, numSpouts, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % m
	}
	work := make([]float64, numSpouts)
	for i := range work {
		work[i] = 100 + 10*rng.Float64()
	}
	for i := 0; i < count; i++ {
		next := agent.RandomAssignment(assign)
		agent.Observe(assign, work, -(1 + rng.Float64()), next, work)
		assign = next
	}
}

// BenchmarkTrainStepAC measures one actor-critic mini-batch update
// (Algorithm 1 lines 14-18) at the small continuous-queries scale
// (N=20 executors, M=6 machines).
func BenchmarkTrainStepAC(b *testing.B) {
	cfg := DefaultACConfig()
	cfg.UpdatesPerStep = 1
	a := NewActorCritic(20, 6, 2, cfg, 1)
	fillBuffer(a, 20, 6, 2, 2*cfg.BatchSize, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TrainStep()
	}
}

// BenchmarkTrainStepDQN measures one DQN mini-batch update at the same
// scale.
func BenchmarkTrainStepDQN(b *testing.B) {
	cfg := DefaultDQNConfig()
	d := NewDQN(20, 6, 2, cfg, 1)
	fillBuffer(d, 20, 6, 2, 2*cfg.BatchSize, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TrainStep()
	}
}

// BenchmarkTrainOnBatchACWorkers measures one batched actor-critic update
// with the GEMM row bands sharded across a worker pool of 1/2/4 workers
// (1 = no pool). Results are bitwise identical across pool sizes; only
// wall-clock changes. On a single-core container the >1 variants measure
// sharding overhead, not speedup — see PERFORMANCE.md §6.
func BenchmarkTrainOnBatchACWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := DefaultACConfig()
			a := NewActorCritic(20, 6, 2, cfg, 1)
			fillBuffer(a, 20, 6, 2, 2*cfg.BatchSize, 2)
			if w > 1 {
				a.SetPool(nn.NewPool(parallel.NewSem(w - 1)))
			}
			batch := a.buffer.Sample(rand.New(rand.NewSource(3)), cfg.BatchSize, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.TrainOnBatch(batch)
			}
		})
	}
}
