package core

import (
	"math/rand"

	"repro/internal/actionspace"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/rl"
)

// DQNConfig holds the DQN baseline's hyperparameters. Per §3.2, the action
// space is restricted to moving a single thread to a machine (|A| = N·M)
// so the Q-network output is one value per move; ε-greedy exploration and
// a periodically synchronized target network follow [33].
type DQNConfig struct {
	Gamma       float64
	BufferSize  int
	BatchSize   int
	LR          float64
	Hidden      []int
	Epsilon     rl.EpsilonSchedule
	RewardScale float64
	GradClip    float64
	// TargetSync hard-copies the online network into the target every C
	// training steps (C > 1, §2.3).
	TargetSync int
	// Double enables double Q-learning [23] (cited by the paper as a DQN
	// refinement): actions are selected by the online network and evaluated
	// by the target network, reducing maximization bias.
	Double bool
}

// DefaultDQNConfig returns hyperparameters matching the paper's DQN
// baseline setup.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Gamma:       0.99,
		BufferSize:  1000,
		BatchSize:   32,
		LR:          1e-3,
		Hidden:      []int{64, 32},
		Epsilon:     rl.EpsilonSchedule{Start: 1.0, End: 0.05, Decay: 500, Kind: rl.ExpDecay},
		RewardScale: 1.0,
		GradClip:    1.0,
		TargetSync:  100,
	}
}

// DQN is the straightforward DQN-based DRL method of §3.2: the natural way
// to shrink the M^N action space is to restrict each action to assigning
// one thread to one machine, which the paper shows explores the space too
// weakly and underperforms at scale.
type DQN struct {
	cfg   DQNConfig
	space *actionspace.Space
	codec *StateCodec

	qnet, qtarget *nn.Network
	opt           *nn.Adam

	buffer *rl.ReplayBuffer
	rng    *rand.Rand
	norm   rewardNorm
	epoch  int
	steps  int

	lastMove int // flat move index recorded by the last selection

	batch []rl.Transition
	sc    dqnScratch
}

// dqnScratch holds TrainStep's preallocated minibatch workspaces (see
// acScratch; same reuse discipline).
type dqnScratch struct {
	states, nextStates *mat.Matrix // H×sdim
	dOut               *mat.Matrix // H×|A| output gradients (one nonzero/row)
	targets            []float64
	argmax             []int
}

// NewDQN builds the baseline agent for an N×M space with numSpouts data
// sources.
func NewDQN(n, m, numSpouts int, cfg DQNConfig, seed int64) *DQN {
	rng := rand.New(rand.NewSource(seed))
	space := actionspace.NewSpace(n, m)
	codec := NewStateCodec(space, numSpouts)
	sizes := append(append([]int{codec.Dim()}, cfg.Hidden...), space.Dim())
	d := &DQN{
		cfg:      cfg,
		space:    space,
		codec:    codec,
		qnet:     nn.New(sizes, nn.Tanh, nn.Identity, rng),
		opt:      nn.NewAdam(cfg.LR),
		buffer:   rl.NewReplayBuffer(cfg.BufferSize),
		rng:      rng,
		lastMove: -1,
	}
	d.qtarget = d.qnet.Clone()
	return d
}

// SetPool installs a shared GEMM worker pool on both networks (see
// ActorCritic.SetPool).
func (d *DQN) SetPool(p *nn.Pool) {
	d.qnet.SetPool(p)
	d.qtarget.SetPool(p)
}

// Name implements Agent.
func (*DQN) Name() string { return "DQN-based DRL" }

// Epoch implements Agent.
func (d *DQN) Epoch() int { return d.epoch }

// SelectAssignment implements Agent: ε-greedy over the N·M single-thread
// moves, applied to the current assignment.
func (d *DQN) SelectAssignment(assign []int, work []float64) []int {
	state := d.codec.Encode(assign, work, nil)
	eps := d.cfg.Epsilon.At(d.epoch)
	var move int
	if d.rng.Float64() < eps {
		move = d.rng.Intn(d.space.Dim())
	} else {
		q := d.qnet.Forward(state)
		move = argmaxIdx(q)
	}
	d.lastMove = move
	d.epoch++
	m := d.space.MoveFromIndex(move)
	return actionspace.ApplyMove(assign, m)
}

// takePending/restorePending implement offlineBatcher (see controller.go).
func (d *DQN) takePending() pendingAction {
	p := pendingAction{move: d.lastMove}
	d.lastMove = -1
	return p
}

func (d *DQN) restorePending(p pendingAction) { d.lastMove = p.move }

// RandomAssignment implements Agent: a random single-thread move (the
// restricted action space's random collection policy).
func (d *DQN) RandomAssignment(assign []int) []int {
	move := d.rng.Intn(d.space.Dim())
	d.lastMove = move
	return actionspace.ApplyMove(assign, d.space.MoveFromIndex(move))
}

// Observe implements Agent.
func (d *DQN) Observe(prevAssign []int, prevWork []float64, reward float64, nextAssign []int, nextWork []float64) {
	if d.lastMove < 0 {
		panic("core: Observe called before any selection")
	}
	t := rl.Transition{
		State:     d.codec.Encode(prevAssign, prevWork, nil),
		Action:    []float64{float64(d.lastMove)},
		Reward:    d.norm.normalize(reward) * d.cfg.RewardScale,
		NextState: d.codec.Encode(nextAssign, nextWork, nil),
	}
	d.lastMove = -1
	d.buffer.Add(t)
}

// AddTransition inserts a pre-built raw transition whose Action holds the
// flat move index; reward scaling is applied here.
func (d *DQN) AddTransition(t rl.Transition) {
	t.Reward *= d.cfg.RewardScale
	d.buffer.Add(t)
}

// TrainStep implements Agent: one mini-batch Q-learning update, executed as
// batched network passes (one target-network forward over the H next
// states, one online forward/backward pair over the H states) instead of
// 2–3 per-sample passes per transition.
func (d *DQN) TrainStep() {
	if d.buffer.Len() < d.cfg.BatchSize {
		return
	}
	d.batch = d.buffer.Sample(d.rng, d.cfg.BatchSize, d.batch)
	d.TrainOnBatch(d.batch)
}

// TrainOnBatch runs one batched Q-learning update on an externally sampled
// mini-batch — the incremental trainer API mirroring
// ActorCritic.TrainOnBatch, for training loops that own their replay
// buffer (e.g. the serving daemon's sharded replay). TrainStep funnels
// through here.
func (d *DQN) TrainOnBatch(batch []rl.Transition) {
	if len(batch) == 0 {
		return
	}
	hN := len(batch)
	h := float64(hN)
	sdim := d.codec.Dim()
	st := ensureMat(&d.sc.states, hN, sdim)
	nx := ensureMat(&d.sc.nextStates, hN, sdim)
	for i, tr := range batch {
		copy(st.Row(i), tr.State)
		copy(nx.Row(i), tr.NextState)
	}

	// Targets: y = r + γ·max_a Q′(s′, a); with double Q-learning the argmax
	// comes from the online network and the value from the target network
	// [23].
	targets := ensureFloats(&d.sc.targets, hN)
	if d.cfg.Double {
		// The online net's batch caches are overwritten by the state forward
		// below; only the argmax indices are kept, so that is safe.
		qOnline := d.qnet.ForwardBatch(nx)
		argmax := ensureInts(&d.sc.argmax, hN)
		for i := 0; i < hN; i++ {
			argmax[i] = argmaxIdx(qOnline.Row(i))
		}
		qT := d.qtarget.ForwardBatch(nx)
		for i, tr := range batch {
			targets[i] = tr.Reward + d.cfg.Gamma*qT.Row(i)[argmax[i]]
		}
	} else {
		qT := d.qtarget.ForwardBatch(nx)
		for i, tr := range batch {
			row := qT.Row(i)
			targets[i] = tr.Reward + d.cfg.Gamma*row[argmaxIdx(row)]
		}
	}

	q := d.qnet.ForwardBatch(st)
	dOut := ensureMat(&d.sc.dOut, hN, d.space.Dim())
	dOut.Zero()
	for i, tr := range batch {
		move := int(tr.Action[0])
		dOut.Row(i)[move] = (q.Row(i)[move] - targets[i]) / h
	}
	d.qnet.ZeroGrads()
	d.qnet.BackwardBatchGrads(dOut, 1)
	if d.cfg.GradClip > 0 {
		d.qnet.ClipGrads(d.cfg.GradClip)
	}
	d.opt.Step(d.qnet)
	d.steps++
	if d.cfg.TargetSync > 0 && d.steps%d.cfg.TargetSync == 0 {
		d.qtarget.HardCopy(d.qnet)
	}
}

// Greedy applies the best move by Q-value (no exploration).
func (d *DQN) Greedy(assign []int, work []float64) []int {
	state := d.codec.Encode(assign, work, nil)
	q := d.qnet.Forward(state)
	return actionspace.ApplyMove(assign, d.space.MoveFromIndex(argmaxIdx(q)))
}

func argmaxIdx(v []float64) int {
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}
