package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWireFrames fuzzes the NDJSON wire decoder (FrameReader) against a
// straightforward split-by-newline oracle: whatever byte stream a peer
// sends — truncated frames, oversized frames, interleaved valid/garbage
// lines, tokens with hostile contents — the decoder must return exactly
// the complete lines that fit the cap, flag the rest with the right
// errors, and never panic or return a frame above the cap. Frames that
// parse as protocol messages additionally get a decode→encode→decode
// consistency check, covering the session-resumption token fields.
func FuzzWireFrames(f *testing.F) {
	// Protocol-shaped seeds, including the token fields, plus framing abuse.
	seeds := []string{
		`{"epoch":1,"assign":[0,1,2]}` + "\n",
		`{"epoch":3,"assign":[1,0],"token":"s42","resumed":true}` + "\n",
		`{"err":"retry: inference queue full","retry":true}` + "\n",
		`{"topology":"wc","n":12,"m":4,"spouts":2,"token":"sess-7"}` + "\n",
		`{"avg_tuple_time_ms":41.5,"workload":[120,80]}` + "\n",
		`{"token":"` + string(make([]byte, 40)) + `"}` + "\n",
		`{"epoch":1,"assign":[0,1`,                    /* truncated mid-frame */
		string(bytes.Repeat([]byte("x"), 200)) + "\n", // oversized for small caps
		"\n\n\n",
		`{"n":4}` + "\n" + string(bytes.Repeat([]byte("y"), 500)) + "\n" + `{"m":2,"token":"t"}` + "\n", // interleaved
		"not json at all\nstill not json\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s), uint8(64))
		f.Add([]byte(s), uint8(7))
	}

	f.Fuzz(func(t *testing.T, data []byte, maxRaw uint8) {
		max := int(maxRaw)%128 + 1
		// A minimal bufio buffer forces the ErrBufferFull continuation path
		// on frames longer than 16 bytes.
		fr := NewFrameReader(bufio.NewReaderSize(bytes.NewReader(data), 16), max)

		var got [][]byte
		oversized := 0
	read:
		for {
			frame, err := fr.Next()
			switch {
			case err == nil:
				if len(frame) > max {
					t.Fatalf("frame of %d bytes above cap %d", len(frame), max)
				}
				if bytes.IndexByte(frame, '\n') >= 0 {
					t.Fatalf("frame contains a newline: %q", frame)
				}
				got = append(got, append([]byte(nil), frame...))
				checkMessageRoundTrip(t, frame)
			case errors.Is(err, ErrFrameTooLong):
				oversized++
				if fr.DrainLine() != nil {
					break read // oversized tail without a newline: stream over
				}
			case err == io.EOF, errors.Is(err, io.ErrUnexpectedEOF):
				break read
			default:
				t.Fatalf("unexpected decode error: %v", err)
			}
		}

		// Oracle: the complete lines that fit the cap, in order.
		var want [][]byte
		wantOversized := 0
		rest := data
		for {
			i := bytes.IndexByte(rest, '\n')
			if i < 0 {
				if len(rest) > max {
					wantOversized++ // oversized truncated tail still trips the cap
				}
				break
			}
			if i <= max {
				want = append(want, rest[:i])
			} else {
				wantOversized++
			}
			rest = rest[i+1:]
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d frames, oracle says %d (cap %d)", len(got), len(want), max)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("frame %d: got %q want %q", i, got[i], want[i])
			}
		}
		if oversized != wantOversized {
			t.Fatalf("flagged %d oversized frames, oracle says %d", oversized, wantOversized)
		}
	})
}

// checkMessageRoundTrip asserts decode→encode→decode consistency for
// frames that happen to parse as protocol messages (hello replies carrying
// resumption tokens included): re-encoding a decoded message and decoding
// it again must reproduce the same value, or the daemon and client would
// disagree after one hop.
func checkMessageRoundTrip(t *testing.T, frame []byte) {
	var sol SolutionMsg
	if json.Unmarshal(frame, &sol) == nil {
		blob, err := json.Marshal(&sol)
		if err != nil {
			t.Fatalf("re-encode SolutionMsg %+v: %v", sol, err)
		}
		var again SolutionMsg
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("decode re-encoded SolutionMsg %s: %v", blob, err)
		}
		if !reflect.DeepEqual(sol, again) {
			t.Fatalf("SolutionMsg round trip drifted: %+v vs %+v", sol, again)
		}
	}
	var meas MeasurementMsg
	if json.Unmarshal(frame, &meas) == nil {
		blob, err := json.Marshal(&meas)
		if err != nil {
			t.Fatalf("re-encode MeasurementMsg %+v: %v", meas, err)
		}
		var again MeasurementMsg
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("decode re-encoded MeasurementMsg %s: %v", blob, err)
		}
		if !reflect.DeepEqual(meas, again) {
			t.Fatalf("MeasurementMsg round trip drifted: %+v vs %+v", meas, again)
		}
	}
}
