package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzWireFrames fuzzes the NDJSON wire decoder (FrameReader) against a
// straightforward split-by-newline oracle: whatever byte stream a peer
// sends — truncated frames, oversized frames, interleaved valid/garbage
// lines, tokens with hostile contents — the decoder must return exactly
// the complete lines that fit the cap, flag the rest with the right
// errors, and never panic or return a frame above the cap. Frames that
// parse as protocol messages additionally get a decode→encode→decode
// consistency check, covering the session-resumption token fields.
func FuzzWireFrames(f *testing.F) {
	// Protocol-shaped seeds, including the token fields, plus framing abuse.
	seeds := []string{
		`{"epoch":1,"assign":[0,1,2]}` + "\n",
		`{"epoch":3,"assign":[1,0],"token":"s42","resumed":true}` + "\n",
		`{"err":"retry: inference queue full","retry":true}` + "\n",
		`{"topology":"wc","n":12,"m":4,"spouts":2,"token":"sess-7"}` + "\n",
		`{"avg_tuple_time_ms":41.5,"workload":[120,80]}` + "\n",
		`{"token":"` + string(make([]byte, 40)) + `"}` + "\n",
		`{"epoch":1,"assign":[0,1`,                    /* truncated mid-frame */
		string(bytes.Repeat([]byte("x"), 200)) + "\n", // oversized for small caps
		"\n\n\n",
		`{"n":4}` + "\n" + string(bytes.Repeat([]byte("y"), 500)) + "\n" + `{"m":2,"token":"t"}` + "\n", // interleaved
		"not json at all\nstill not json\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s), uint8(64))
		f.Add([]byte(s), uint8(7))
	}

	f.Fuzz(func(t *testing.T, data []byte, maxRaw uint8) {
		max := int(maxRaw)%128 + 1
		// A minimal bufio buffer forces the ErrBufferFull continuation path
		// on frames longer than 16 bytes.
		fr := NewFrameReader(bufio.NewReaderSize(bytes.NewReader(data), 16), max)

		var got [][]byte
		oversized := 0
	read:
		for {
			frame, err := fr.Next()
			switch {
			case err == nil:
				if len(frame) > max {
					t.Fatalf("frame of %d bytes above cap %d", len(frame), max)
				}
				if bytes.IndexByte(frame, '\n') >= 0 {
					t.Fatalf("frame contains a newline: %q", frame)
				}
				got = append(got, append([]byte(nil), frame...))
				checkMessageRoundTrip(t, frame)
			case errors.Is(err, ErrFrameTooLong):
				oversized++
				if fr.DrainLine() != nil {
					break read // oversized tail without a newline: stream over
				}
			case err == io.EOF, errors.Is(err, io.ErrUnexpectedEOF):
				break read
			default:
				t.Fatalf("unexpected decode error: %v", err)
			}
		}

		// Oracle: the complete lines that fit the cap, in order.
		var want [][]byte
		wantOversized := 0
		rest := data
		for {
			i := bytes.IndexByte(rest, '\n')
			if i < 0 {
				if len(rest) > max {
					wantOversized++ // oversized truncated tail still trips the cap
				}
				break
			}
			if i <= max {
				want = append(want, rest[:i])
			} else {
				wantOversized++
			}
			rest = rest[i+1:]
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d frames, oracle says %d (cap %d)", len(got), len(want), max)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("frame %d: got %q want %q", i, got[i], want[i])
			}
		}
		if oversized != wantOversized {
			t.Fatalf("flagged %d oversized frames, oracle says %d", oversized, wantOversized)
		}
	})
}

// checkMessageRoundTrip asserts decode→encode→decode consistency for
// frames that happen to parse as protocol messages (hello replies carrying
// resumption tokens included), differentially across all three encoders:
// encoding/json (the oracle), the hand-rolled NDJSON emitters, and the
// binary codec must all reproduce the same value after one hop, or the
// daemon and client would disagree depending on negotiated framing.
func checkMessageRoundTrip(t *testing.T, frame []byte) {
	var sol SolutionMsg
	if json.Unmarshal(frame, &sol) == nil {
		differential(t, "SolutionMsg", &sol, AppendSolutionJSON(nil, &sol))
		checkBinaryDifferential(t, "SolutionMsg", &sol,
			AppendSolutionBin(nil, &sol), BinTypeSolution,
			func(p []byte, m *SolutionMsg) error { return DecodeSolutionBin(p, m) })
	}
	var meas MeasurementMsg
	if json.Unmarshal(frame, &meas) == nil {
		differential(t, "MeasurementMsg", &meas, AppendMeasurementJSON(nil, &meas))
		checkBinaryDifferential(t, "MeasurementMsg", &meas,
			AppendMeasurementBin(nil, &meas), BinTypeMeasurement,
			func(p []byte, m *MeasurementMsg) error { return DecodeMeasurementBin(p, m) })
	}
	var hello HelloMsg
	if json.Unmarshal(frame, &hello) == nil {
		differential(t, "HelloMsg", &hello, AppendHelloJSON(nil, &hello))
		checkBinaryDifferential(t, "HelloMsg", &hello,
			AppendHelloBin(nil, &hello), BinTypeHello,
			func(p []byte, m *HelloMsg) error { return DecodeHelloBin(p, m) })
	}
}

// differential decodes two encodings of msg — the encoding/json oracle's
// and a hand-rolled emitter's — and requires both to reproduce msg exactly.
func differential[M any](t *testing.T, kind string, msg *M, encoded []byte) {
	t.Helper()
	oracle, err := json.Marshal(msg)
	if err != nil {
		t.Fatalf("re-encode %s %+v: %v", kind, msg, err)
	}
	for _, blob := range [][]byte{oracle, encoded} {
		again := new(M)
		if err := json.Unmarshal(blob, again); err != nil {
			t.Fatalf("decode re-encoded %s %s: %v", kind, blob, err)
		}
		if !reflect.DeepEqual(*msg, *again) {
			t.Fatalf("%s round trip drifted via %s: %+v vs %+v", kind, blob, msg, again)
		}
	}
}

// checkBinaryDifferential pushes msg through the binary framing and
// requires the decoded struct to be reflect.DeepEqual to the original.
func checkBinaryDifferential[M any](t *testing.T, kind string, msg *M, binFrame []byte, wantTyp byte, decode func([]byte, *M) error) {
	t.Helper()
	typ, p, err := NewBinFrameReader(bufio.NewReaderSize(bytes.NewReader(binFrame), 16), len(binFrame)).Next()
	if err != nil || typ != wantTyp {
		t.Fatalf("%s binary frame read back typ=%d err=%v", kind, typ, err)
	}
	again := new(M)
	if err := decode(p, again); err != nil {
		t.Fatalf("decode binary %s %+v: %v", kind, msg, err)
	}
	if !reflect.DeepEqual(*msg, *again) {
		t.Fatalf("%s binary round trip drifted: %+v vs %+v", kind, msg, again)
	}
}

// FuzzBinaryFrames fuzzes the binary frame reader against an independent
// walk of the framing spec: magic byte, type, u32 LE payload length,
// payload, '\n' guard. Torn, truncated, oversized and corrupted frames
// must surface the documented errors — never a panic, never a mis-framed
// payload — and a payload that decodes as a protocol message must
// re-encode to the identical bytes (the encoding is canonical) and agree
// with the NDJSON codec on the decoded value.
func FuzzBinaryFrames(f *testing.F) {
	hello := AppendHelloBin(nil, &HelloMsg{Topology: "wc", N: 12, M: 4, Spouts: 2, Token: "sess-7"})
	sol := AppendSolutionBin(nil, &SolutionMsg{Epoch: 3, Assign: []int{1, 0}, Token: "s42", Resumed: true})
	shed := AppendSolutionBin(nil, &SolutionMsg{Err: "retry: inference queue full", Retry: true})
	meas := AppendMeasurementBin(nil, &MeasurementMsg{Epoch: 4, AvgTupleTimeMS: 41.5, Workload: []float64{120, 80}})
	badGuard := append(append([]byte(nil), sol[:len(sol)-1]...), 'x')
	seeds := [][]byte{
		hello, sol, shed, meas,
		append(append(append([]byte(nil), hello...), sol...), meas...),
		sol[:5], sol[:len(sol)-1], // torn header, torn guard
		badGuard,
		[]byte(`{"epoch":1,"assign":[0,1]}` + "\n"), // NDJSON against the binary reader
		{BinMagic, BinTypeSolution, 0xff, 0xff, 0xff, 0x7f},
	}
	for _, s := range seeds {
		f.Add(s, uint8(64))
		f.Add(s, uint8(7))
	}

	f.Fuzz(func(t *testing.T, data []byte, maxRaw uint8) {
		max := int(maxRaw)%128 + 1
		br := NewBinFrameReader(bufio.NewReaderSize(bytes.NewReader(data), 16), max)
		rest := data
		for {
			typ, payload, err := br.Next()
			if len(rest) == 0 {
				if err != io.EOF {
					t.Fatalf("empty stream: got %v, want io.EOF", err)
				}
				return
			}
			if rest[0] != BinMagic {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("non-magic first byte %#x: got %v, want ErrBadFrame", rest[0], err)
				}
				return
			}
			if len(rest) < 6 {
				if !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("torn header: got %v, want io.ErrUnexpectedEOF", err)
				}
				return
			}
			n := int(binary.LittleEndian.Uint32(rest[2:6]))
			if n > max {
				if !errors.Is(err, ErrFrameTooLong) {
					t.Fatalf("length %d above cap %d: got %v, want ErrFrameTooLong", n, max, err)
				}
				if len(rest) < 6+n+1 {
					if br.Drain() == nil {
						t.Fatal("Drain reported success past end of stream")
					}
					return
				}
				if err := br.Drain(); err != nil {
					t.Fatalf("drain of complete oversized frame: %v", err)
				}
				rest = rest[6+n+1:]
				continue
			}
			if len(rest) < 6+n+1 {
				if !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("torn payload: got %v, want io.ErrUnexpectedEOF", err)
				}
				return
			}
			if rest[6+n] != '\n' {
				if !errors.Is(err, ErrBadFrame) {
					t.Fatalf("bad guard byte: got %v, want ErrBadFrame", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("well-formed frame errored: %v", err)
			}
			if typ != rest[1] || !bytes.Equal(payload, rest[6:6+n]) {
				t.Fatalf("mis-framed: typ %d/%d payload %q vs %q", typ, rest[1], payload, rest[6:6+n])
			}
			checkBinaryPayload(t, rest[:6+n+1], typ, payload)
			rest = rest[6+n+1:]
		}
	})
}

// checkBinaryPayload feeds a well-framed fuzz payload to the typed decoder
// (which must never panic); when it decodes cleanly the canonical-encoding
// invariant (re-encode reproduces the frame bytes) and the NDJSON
// differential both apply.
func checkBinaryPayload(t *testing.T, frame []byte, typ byte, payload []byte) {
	t.Helper()
	switch typ {
	case BinTypeHello:
		var h HelloMsg
		if DecodeHelloBin(payload, &h) != nil {
			return
		}
		if again := AppendHelloBin(nil, &h); !bytes.Equal(again, frame) {
			t.Fatalf("hello re-encode drifted: %x vs %x", again, frame)
		}
		if utf8.ValidString(h.Topology) && utf8.ValidString(h.Token) {
			differential(t, "HelloMsg", &h, AppendHelloJSON(nil, &h))
		}
	case BinTypeSolution:
		var m SolutionMsg
		if DecodeSolutionBin(payload, &m) != nil {
			return
		}
		if again := AppendSolutionBin(nil, &m); !bytes.Equal(again, frame) {
			t.Fatalf("solution re-encode drifted: %x vs %x", again, frame)
		}
		if utf8.ValidString(m.Err) && utf8.ValidString(m.Token) {
			differential(t, "SolutionMsg", &m, AppendSolutionJSON(nil, &m))
		}
	case BinTypeMeasurement:
		var m MeasurementMsg
		if DecodeMeasurementBin(payload, &m) != nil {
			return
		}
		if again := AppendMeasurementBin(nil, &m); !bytes.Equal(again, frame) {
			t.Fatalf("measurement re-encode drifted: %x vs %x", again, frame)
		}
		// The binary framing carries any IEEE 754 bits; JSON cannot, so the
		// NDJSON differential only applies to finite samples.
		finite := isFinite(m.AvgTupleTimeMS)
		for _, v := range m.Workload {
			finite = finite && isFinite(v)
		}
		if finite && utf8.ValidString(m.Err) {
			differential(t, "MeasurementMsg", &m, AppendMeasurementJSON(nil, &m))
		}
	}
}
