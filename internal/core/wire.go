package core

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Wire is one connection's negotiated framing: the same three protocol
// messages over either NDJSON (the fallback every peer speaks) or the
// binary framing of binframe.go.
//
// Negotiation happens entirely at hello, with no extra round trip:
//
//   - A client opens with a binary (magic-prefixed) hello. A
//     binary-capable server sniffs the first byte of the connection —
//     0xA7 is binary, '{' is NDJSON — and answers in kind.
//   - A server that predates the binary protocol reads the binary hello
//     as one NDJSON line (the guard '\n' terminates its line read) and
//     replies an NDJSON bad-hello error. The client sniffs the reply's
//     first byte, sees '{' instead of the magic, and re-dials speaking
//     NDJSON.
//   - Old NDJSON clients against a new server just work: their first
//     byte is '{'.
//
// Once negotiated, a connection never switches framings.
type Wire struct {
	binary bool
	fr     *FrameReader
	bfr    *BinFrameReader
	w      io.Writer
	buf    []byte // write buffer, reused across frames
}

// NewWire builds a Wire over an established stream. br must be the
// buffered reader the framing was sniffed on (it may hold unconsumed
// bytes); maxFrame caps one frame's payload in either framing.
func NewWire(br *bufio.Reader, w io.Writer, maxFrame int, binary bool) *Wire {
	wr := &Wire{binary: binary, w: w}
	if binary {
		wr.bfr = NewBinFrameReader(br, maxFrame)
	} else {
		wr.fr = NewFrameReader(br, maxFrame)
	}
	return wr
}

// Binary reports the negotiated framing.
func (w *Wire) Binary() bool { return w.binary }

// SniffBinary reports whether the stream's next frame is binary, without
// consuming anything. It blocks until one byte is readable (callers bound
// it with a read deadline).
func SniffBinary(br *bufio.Reader) (bool, error) {
	first, err := br.Peek(1)
	if err != nil {
		return false, err
	}
	return first[0] == BinMagic, nil
}

// MalformedError marks a content-level protocol error: a complete,
// well-framed frame whose payload did not decode as the expected message.
// Distinct from framing/transport errors because the peer is still
// synchronized and listening — an error reply will be read, so shed and
// rejection paths reply before closing.
type MalformedError struct{ Err error }

// Error implements error.
func (e *MalformedError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying decode error.
func (e *MalformedError) Unwrap() error { return e.Err }

// IsMalformed reports whether err is a MalformedError.
func IsMalformed(err error) bool {
	var me *MalformedError
	return errors.As(err, &me)
}

func malformedf(format string, args ...any) error {
	return &MalformedError{Err: fmt.Errorf(format, args...)}
}

// readBin reads one binary frame and checks its type.
func (w *Wire) readBin(want byte, what string) ([]byte, error) {
	typ, p, err := w.bfr.Next()
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, malformedf("frame type %d where a %s was expected", typ, what)
	}
	return p, nil
}

// ReadHello reads one hello into h.
func (w *Wire) ReadHello(h *HelloMsg) error {
	if w.binary {
		p, err := w.readBin(BinTypeHello, "hello")
		if err != nil {
			return err
		}
		if err := DecodeHelloBin(p, h); err != nil {
			return malformedf("%v", err)
		}
		return nil
	}
	line, err := w.fr.Next()
	if err != nil {
		return err
	}
	*h = HelloMsg{}
	if err := json.Unmarshal(line, h); err != nil {
		return malformedf("%v", err)
	}
	return nil
}

// ReadMeasurement reads one measurement into m, reusing m's Workload
// backing array on the binary framing.
func (w *Wire) ReadMeasurement(m *MeasurementMsg) error {
	if w.binary {
		p, err := w.readBin(BinTypeMeasurement, "measurement")
		if err != nil {
			return err
		}
		if err := DecodeMeasurementBin(p, m); err != nil {
			return malformedf("%v", err)
		}
		return nil
	}
	line, err := w.fr.Next()
	if err != nil {
		return err
	}
	*m = MeasurementMsg{}
	if err := json.Unmarshal(line, m); err != nil {
		return malformedf("%v", err)
	}
	return nil
}

// ReadSolution reads one solution into m, reusing m's Assign backing
// array on the binary framing.
func (w *Wire) ReadSolution(m *SolutionMsg) error {
	if w.binary {
		p, err := w.readBin(BinTypeSolution, "solution")
		if err != nil {
			return err
		}
		if err := DecodeSolutionBin(p, m); err != nil {
			return malformedf("%v", err)
		}
		return nil
	}
	line, err := w.fr.Next()
	if err != nil {
		return err
	}
	*m = SolutionMsg{}
	if err := json.Unmarshal(line, m); err != nil {
		return malformedf("%v", err)
	}
	return nil
}

// WriteHello writes h as one frame.
func (w *Wire) WriteHello(h *HelloMsg) error {
	if w.binary {
		w.buf = AppendHelloBin(w.buf[:0], h)
	} else {
		w.buf = AppendHelloJSON(w.buf[:0], h)
		w.buf = append(w.buf, '\n')
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteSolution writes m as one frame.
func (w *Wire) WriteSolution(m *SolutionMsg) error {
	if w.binary {
		w.buf = AppendSolutionBin(w.buf[:0], m)
	} else {
		w.buf = AppendSolutionJSON(w.buf[:0], m)
		w.buf = append(w.buf, '\n')
	}
	_, err := w.w.Write(w.buf)
	return err
}

// WriteMeasurement writes m as one frame. On the NDJSON framing
// non-finite floats are rejected (JSON cannot express them); the binary
// framing carries any IEEE 754 bits.
func (w *Wire) WriteMeasurement(m *MeasurementMsg) error {
	if w.binary {
		w.buf = AppendMeasurementBin(w.buf[:0], m)
	} else {
		if !isFinite(m.AvgTupleTimeMS) {
			return malformedf("non-finite avg_tuple_time_ms %v has no JSON encoding", m.AvgTupleTimeMS)
		}
		for _, v := range m.Workload {
			if !isFinite(v) {
				return malformedf("non-finite workload rate %v has no JSON encoding", v)
			}
		}
		w.buf = AppendMeasurementJSON(w.buf[:0], m)
		w.buf = append(w.buf, '\n')
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Drain consumes the rest of an oversized frame (after ErrFrameTooLong)
// so the error reply about it survives — closing a socket with unread
// received data sends RST, destroying the reply in flight.
func (w *Wire) Drain() error {
	if w.binary {
		return w.bfr.Drain()
	}
	return w.fr.DrainLine()
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
