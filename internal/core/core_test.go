package core

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rl"
)

// toyEnv is a synthetic environment with a known structure: executors form
// a chain 0→1→…→N−1; latency charges 1 ms per cross-machine hop plus a
// quadratic load penalty per machine. Optimal schedules co-locate the chain
// while balancing counts — the same trade-off the real system exhibits, at
// a size the tests can train on in milliseconds.
type toyEnv struct {
	n, m int
	work []float64
}

func (e *toyEnv) N() int              { return e.n }
func (e *toyEnv) M() int              { return e.m }
func (e *toyEnv) Workload() []float64 { return e.work }

func (e *toyEnv) AvgTupleTimeMS(assign []int) float64 {
	lat := 1.0
	for i := 0; i+1 < e.n; i++ {
		if assign[i] != assign[i+1] {
			lat += 1.0
		}
	}
	counts := make([]float64, e.m)
	for _, m := range assign {
		counts[m]++
	}
	for _, c := range counts {
		over := c - float64(e.n)/float64(e.m)
		if over > 0 {
			lat += 0.4 * over * over
		}
	}
	return lat
}

func (e *toyEnv) bestPossible() float64 {
	// Chain split into m contiguous blocks: m−1 cross hops, balanced load.
	return 1.0 + float64(e.m-1)
}

func newToy() *toyEnv { return &toyEnv{n: 6, m: 3, work: []float64{100}} }

func TestStateCodec(t *testing.T) {
	a := NewActorCritic(4, 3, 2, DefaultACConfig(), 1)
	codec := NewStateCodec(a.Space(), 2)
	state := codec.Encode([]int{0, 2, 1, 0}, []float64{500, 1000}, nil)
	if len(state) != 4*3+2 {
		t.Fatalf("state dim %d", len(state))
	}
	if state[0] != 1 || state[1] != 0 || state[2] != 0 {
		t.Fatal("row 0 one-hot wrong")
	}
	if state[12] != 0.5 || state[13] != 1.0 {
		t.Fatalf("rates not scaled: %v", state[12:])
	}
	back := codec.DecodeAssign(state)
	want := []int{0, 2, 1, 0}
	for i := range want {
		if back[i] != want[i] {
			t.Fatalf("decode %v want %v", back, want)
		}
	}
}

func TestCodecPanicsOnBadWork(t *testing.T) {
	a := NewActorCritic(2, 2, 1, DefaultACConfig(), 1)
	codec := NewStateCodec(a.Space(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	codec.Encode([]int{0, 1}, []float64{1, 2}, nil)
}

func TestDatabaseSaveLoad(t *testing.T) {
	db := &Database{}
	db.Add(rl.Transition{State: []float64{1, 2}, Action: []float64{3}, Reward: -4.5, NextState: []float64{5, 6}})
	db.Add(rl.Transition{State: []float64{7}, Action: []float64{8}, Reward: -9, NextState: []float64{10}})
	if db.Len() != 2 {
		t.Fatalf("Len %d", db.Len())
	}
	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	var db2 Database
	if err := db2.Load(path); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 2 || db2.All()[0].Reward != -4.5 || db2.All()[1].State[0] != 7 {
		t.Fatalf("round trip mismatch: %+v", db2.All())
	}
}

func TestDatabaseLoadErrors(t *testing.T) {
	var db Database
	if err := db.Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.gob")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(bad); err == nil {
		t.Fatal("garbage file should error")
	}
}

func TestActorCriticSelectionShape(t *testing.T) {
	a := NewActorCritic(6, 3, 1, DefaultACConfig(), 2)
	assign := []int{0, 1, 2, 0, 1, 2}
	next := a.SelectAssignment(assign, []float64{100})
	if len(next) != 6 {
		t.Fatalf("len %d", len(next))
	}
	for _, m := range next {
		if m < 0 || m >= 3 {
			t.Fatalf("invalid machine %d", m)
		}
	}
	if a.Epoch() != 1 {
		t.Fatalf("epoch %d", a.Epoch())
	}
}

func TestObserveWithoutSelectionPanics(t *testing.T) {
	a := NewActorCritic(2, 2, 1, DefaultACConfig(), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Observe([]int{0, 0}, []float64{1}, -1, []int{0, 1}, []float64{1})
}

func TestDQNMoveSemantics(t *testing.T) {
	d := NewDQN(5, 3, 1, DefaultDQNConfig(), 4)
	assign := []int{0, 0, 0, 0, 0}
	next := d.SelectAssignment(assign, []float64{50})
	diff := 0
	for i := range assign {
		if assign[i] != next[i] {
			diff++
		}
	}
	if diff > 1 {
		t.Fatalf("DQN moved %d threads; restricted action space allows at most 1", diff)
	}
	// Input not mutated.
	for _, m := range assign {
		if m != 0 {
			t.Fatal("SelectAssignment mutated input")
		}
	}
}

// trainController runs offline + online phases on the toy environment and
// returns the controller.
func trainController(t *testing.T, agent Agent, offline, online int) *Controller {
	t.Helper()
	e := newToy()
	c := NewController(e, agent)
	c.DB = &Database{}
	if err := c.CollectOffline(offline); err != nil {
		t.Fatal(err)
	}
	c.OnlineLearn(online, nil)
	return c
}

// TestActorCriticLearnsToy is the end-to-end learning test: after training,
// the greedy solution must clearly beat round-robin and approach the known
// optimum.
func TestActorCriticLearnsToy(t *testing.T) {
	cfg := DefaultACConfig()
	cfg.Epsilon.Decay = 150
	agent := NewActorCritic(6, 3, 1, cfg, 5)
	c := trainController(t, agent, 300, 400)

	e := c.Env.(*toyEnv)
	greedy := c.GreedySolution()
	got := e.AvgTupleTimeMS(greedy)

	rr := make([]int, 6)
	for i := range rr {
		rr[i] = i % 3
	}
	rrLat := e.AvgTupleTimeMS(rr) // round-robin scatters the chain: 6.0

	if got >= rrLat {
		t.Fatalf("trained AC %.2f not better than round-robin %.2f (greedy=%v)", got, rrLat, greedy)
	}
	if got > e.bestPossible()*1.6 {
		t.Fatalf("trained AC %.2f too far from optimum %.2f (greedy=%v)", got, e.bestPossible(), greedy)
	}
	if c.DB.Len() != 300 {
		t.Fatalf("database recorded %d samples want 300", c.DB.Len())
	}
	if len(c.Rewards) != 400 {
		t.Fatalf("reward history %d want 400", len(c.Rewards))
	}
}

// TestDQNLearnsToySlowly: DQN should also improve over round-robin on the
// toy problem (it works, just explores worse — the paper's point is about
// *large* action spaces).
func TestDQNLearnsToy(t *testing.T) {
	cfg := DefaultDQNConfig()
	cfg.Epsilon.Decay = 150
	agent := NewDQN(6, 3, 1, cfg, 6)
	c := trainController(t, agent, 300, 400)
	e := c.Env.(*toyEnv)
	got := e.AvgTupleTimeMS(c.GreedySolution())
	rr := make([]int, 6)
	for i := range rr {
		rr[i] = i % 3
	}
	if got >= e.AvgTupleTimeMS(rr) {
		t.Fatalf("trained DQN %.2f not better than round-robin %.2f", got, e.AvgTupleTimeMS(rr))
	}
}

func TestTrainingDoesNotDiverge(t *testing.T) {
	cfg := DefaultACConfig()
	agent := NewActorCritic(6, 3, 1, cfg, 7)
	trainController(t, agent, 200, 200)
	sanity := agent.protoSanity([]int{0, 1, 2, 0, 1, 2}, []float64{100})
	if math.IsNaN(sanity) || sanity > 1.0001 {
		t.Fatalf("actor output diverged: max |â| = %v", sanity)
	}
}

func TestControllerRewardTrendImproves(t *testing.T) {
	cfg := DefaultACConfig()
	cfg.Epsilon.Decay = 100
	agent := NewActorCritic(6, 3, 1, cfg, 8)
	c := trainController(t, agent, 300, 400)
	head := mean(c.Rewards[:100])
	tail := mean(c.Rewards[len(c.Rewards)-100:])
	if tail <= head {
		t.Fatalf("online reward did not improve: head %.3f tail %.3f", head, tail)
	}
}

func TestCollectOfflineValidation(t *testing.T) {
	agent := NewActorCritic(6, 3, 1, DefaultACConfig(), 9)
	c := NewController(newToy(), agent)
	if err := c.CollectOffline(0); err == nil {
		t.Fatal("zero samples should error")
	}
}

func TestAddTransitionScalesReward(t *testing.T) {
	cfg := DefaultACConfig()
	cfg.RewardScale = 0.1
	a := NewActorCritic(2, 2, 1, cfg, 10)
	a.AddTransition(rl.Transition{
		State:     make([]float64, a.codec.Dim()),
		Action:    make([]float64, a.space.Dim()),
		Reward:    -10,
		NextState: make([]float64, a.codec.Dim()),
	})
	if a.buffer.Len() != 1 {
		t.Fatal("transition not stored")
	}
	if got := a.buffer.At(0).Reward; got != -1 {
		t.Fatalf("reward scaled to %v want -1", got)
	}
}

func TestOnlineLearnCallback(t *testing.T) {
	agent := NewDQN(6, 3, 1, DefaultDQNConfig(), 11)
	c := NewController(newToy(), agent)
	var epochs []int
	c.OnlineLearn(5, func(epoch int, lat float64) {
		if lat <= 0 {
			t.Fatalf("epoch %d latency %v", epoch, lat)
		}
		epochs = append(epochs, epoch)
	})
	if len(epochs) != 5 || epochs[4] != 4 {
		t.Fatalf("callback epochs %v", epochs)
	}
}

func TestGreedySolutionFallback(t *testing.T) {
	// An agent without Greedy falls back to the current assignment.
	c := NewController(newToy(), &DQN{}) // zero-value DQN is never called
	c.Assign = []int{0, 1, 2, 0, 1, 2}
	// DQN has Greedy, so use a stub without it.
	c2 := &Controller{Env: newToy(), Agent: nil, Assign: []int{2, 2, 2, 2, 2, 2}}
	got := c2.GreedySolution()
	for _, m := range got {
		if m != 2 {
			t.Fatalf("fallback should copy current assignment, got %v", got)
		}
	}
	_ = c
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func BenchmarkACTrainStepLarge(b *testing.B) {
	// Paper's large scale: N=100, M=10.
	cfg := DefaultACConfig()
	agent := NewActorCritic(100, 10, 10, cfg, 12)
	rng := rand.New(rand.NewSource(13))
	assign := make([]int, 100)
	work := make([]float64, 10)
	for i := range work {
		work[i] = 100
	}
	// Fill the buffer.
	for i := 0; i < cfg.BatchSize+1; i++ {
		for j := range assign {
			assign[j] = rng.Intn(10)
		}
		next := agent.RandomAssignment(assign)
		agent.Observe(assign, work, -2.5, next, work)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.TrainStep()
	}
}
