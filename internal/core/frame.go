package core

import (
	"bufio"
	"errors"
	"io"
)

// ErrFrameTooLong marks an NDJSON frame exceeding the reader's size cap.
var ErrFrameTooLong = errors.New("core: frame exceeds max size")

// FrameReader reads '\n'-delimited NDJSON frames with a hard size cap, so
// one misbehaving peer cannot make the reader buffer an unbounded line. It
// is the wire-protocol decoder shared by the serving daemon and its
// client (internal/serve) and the unit under FuzzWireFrames.
type FrameReader struct {
	r   *bufio.Reader
	max int
	buf []byte
	// eol records whether the frame that just exceeded max was consumed
	// through its newline already (it fit in the bufio buffer), so
	// DrainLine must not wait for another one.
	eol bool
}

// NewFrameReader wraps r with a frame cap of max payload bytes (the
// delimiting newline is framing, not payload).
func NewFrameReader(r *bufio.Reader, max int) *FrameReader {
	return &FrameReader{r: r, max: max}
}

// Next returns the next frame without its trailing newline. The returned
// slice is valid until the following call. A stream that ends mid-frame
// yields io.ErrUnexpectedEOF (a protocol error), while one that ends on a
// frame boundary yields a clean io.EOF.
func (fr *FrameReader) Next() ([]byte, error) {
	fr.buf = fr.buf[:0]
	for {
		frag, err := fr.r.ReadSlice('\n')
		fr.buf = append(fr.buf, frag...)
		payload := len(fr.buf)
		if err == nil {
			payload-- // the trailing '\n' is framing, not payload
		}
		if payload > fr.max {
			fr.eol = err == nil
			return nil, ErrFrameTooLong
		}
		switch err {
		case nil:
			return fr.buf[:len(fr.buf)-1], nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(fr.buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// DrainLine consumes input up to and including the next '\n', discarding
// it. Used to finish reading an oversized frame before replying: closing
// a socket with received-but-unread data sends RST, which would destroy
// the error reply in flight (closed-loop peers have exactly one frame in
// flight, so draining to the newline empties the receive buffer).
func (fr *FrameReader) DrainLine() error {
	if fr.eol {
		fr.eol = false
		return nil
	}
	for {
		_, err := fr.r.ReadSlice('\n')
		switch err {
		case nil:
			return nil
		case bufio.ErrBufferFull:
			continue
		default:
			return err
		}
	}
}
