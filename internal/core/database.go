package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/rl"
)

// Database stores transition samples — the component labeled "Database" in
// the framework architecture (Figure 1), which persists state, action and
// reward information for offline training (§3.1). It is an append-only
// in-memory store with gob persistence.
type Database struct {
	samples []rl.Transition
}

// Add appends one transition.
func (db *Database) Add(t rl.Transition) { db.samples = append(db.samples, t) }

// Len returns the number of stored samples.
func (db *Database) Len() int { return len(db.samples) }

// All returns the stored samples (shared backing array; callers must not
// mutate).
func (db *Database) All() []rl.Transition { return db.samples }

// Save writes the database to path with encoding/gob.
func (db *Database) Save(path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.samples); err != nil {
		return fmt.Errorf("core: encode database: %w", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: write database: %w", err)
	}
	return nil
}

// Load replaces the database contents from a file written by Save.
func (db *Database) Load(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("core: read database: %w", err)
	}
	var samples []rl.Transition
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&samples); err != nil {
		return fmt.Errorf("core: decode database: %w", err)
	}
	db.samples = samples
	return nil
}
