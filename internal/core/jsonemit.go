package core

import "strconv"

// Hand-rolled NDJSON emitters for the three wire messages, in the style
// of the WAL's appendRecordJSON (internal/durable): append-based, field
// order fixed, omitempty semantics matching the structs' JSON tags.
// Reflection-based json.Marshal was ~6% of daemon CPU before the WAL
// emitter was hand-rolled (PERFORMANCE.md §7); the serving hot path and
// the shed paths now use these the same way. The emitted bytes decode to
// values reflect.DeepEqual-identical to what encoding/json would produce
// (asserted by the differential fuzz); callers add the '\n' framing.

const hexDigits = "0123456789abcdef"

// AppendHelloJSON appends h's NDJSON encoding (without the newline).
func AppendHelloJSON(b []byte, h *HelloMsg) []byte {
	b = append(b, `{"topology":`...)
	b = appendJSONString(b, h.Topology)
	b = append(b, `,"n":`...)
	b = strconv.AppendInt(b, int64(h.N), 10)
	b = append(b, `,"m":`...)
	b = strconv.AppendInt(b, int64(h.M), 10)
	b = append(b, `,"spouts":`...)
	b = strconv.AppendInt(b, int64(h.Spouts), 10)
	if h.Token != "" {
		b = append(b, `,"token":`...)
		b = appendJSONString(b, h.Token)
	}
	if h.ReadOnly {
		b = append(b, `,"readonly":true`...)
	}
	return append(b, '}')
}

// AppendSolutionJSON appends m's NDJSON encoding (without the newline).
func AppendSolutionJSON(b []byte, m *SolutionMsg) []byte {
	b = append(b, `{"epoch":`...)
	b = strconv.AppendInt(b, int64(m.Epoch), 10)
	b = append(b, `,"assign":`...)
	if m.Assign == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i, v := range m.Assign {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, ']')
	}
	if m.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, m.Err)
	}
	if m.Retry {
		b = append(b, `,"retry":true`...)
	}
	if m.Token != "" {
		b = append(b, `,"token":`...)
		b = appendJSONString(b, m.Token)
	}
	if m.Resumed {
		b = append(b, `,"resumed":true`...)
	}
	return append(b, '}')
}

// AppendMeasurementJSON appends m's NDJSON encoding (without the
// newline). Float values must be finite — JSON cannot express NaN/Inf
// (Wire.WriteMeasurement rejects them before calling this).
func AppendMeasurementJSON(b []byte, m *MeasurementMsg) []byte {
	b = append(b, '{')
	if m.Epoch != 0 {
		b = append(b, `"epoch":`...)
		b = strconv.AppendInt(b, int64(m.Epoch), 10)
		b = append(b, ',')
	}
	b = append(b, `"avg_tuple_time_ms":`...)
	b = appendJSONFloat(b, m.AvgTupleTimeMS)
	b = append(b, `,"workload":`...)
	if m.Workload == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i, v := range m.Workload {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, v)
		}
		b = append(b, ']')
	}
	if m.Err != "" {
		b = append(b, `,"err":`...)
		b = appendJSONString(b, m.Err)
	}
	return append(b, '}')
}

// appendJSONString emits s as a JSON string, escaping the quote, the
// backslash and control bytes (same coverage as the WAL emitter's; the
// protocol strings are tokens, topology names and error text).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// appendJSONFloat emits a finite float in its shortest round-trip form —
// every such form is a valid JSON number that parses back to the same
// float64.
func appendJSONFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
