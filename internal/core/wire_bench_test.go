package core

import (
	"bufio"
	"bytes"
	"testing"
)

// benchWireRoundTrip measures one epoch's worth of wire work in a single
// framing: encode a measurement and a solution, then frame-read and decode
// both — the client write + server read + server write + client read CPU
// cost per epoch, minus the sockets.
func benchWireRoundTrip(b *testing.B, binary bool) {
	sol := &SolutionMsg{
		Epoch:  42,
		Assign: []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3},
		Token:  "s0123456789abcdef01234567",
	}
	meas := &MeasurementMsg{Epoch: 42, AvgTupleTimeMS: 47.5, Workload: []float64{120.5, 80.25}}
	var buf bytes.Buffer
	br := bufio.NewReader(&buf)
	w := NewWire(br, &buf, 1<<20, binary)
	var gotSol SolutionMsg
	var gotMeas MeasurementMsg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		br.Reset(&buf)
		if err := w.WriteMeasurement(meas); err != nil {
			b.Fatal(err)
		}
		if err := w.WriteSolution(sol); err != nil {
			b.Fatal(err)
		}
		if err := w.ReadMeasurement(&gotMeas); err != nil {
			b.Fatal(err)
		}
		if err := w.ReadSolution(&gotSol); err != nil {
			b.Fatal(err)
		}
	}
	if len(gotSol.Assign) != len(sol.Assign) {
		b.Fatal("decode dropped the solution")
	}
}

func BenchmarkWireEpochNDJSON(b *testing.B) { benchWireRoundTrip(b, false) }
func BenchmarkWireEpochBinary(b *testing.B) { benchWireRoundTrip(b, true) }
