// Package apps defines the three benchmark applications of §4.1 with the
// paper's exact executor counts, plus the cluster and workload settings
// used throughout the evaluation.
//
// Per-tuple service demands, selectivities and tuple sizes are calibration
// constants: they were chosen so the simulated stabilized latencies land in
// the ranges the paper reports (CQ ≈ 1.3–2.6 ms, log ≈ 7–10 ms, WC ≈
// 1.7–3.1 ms under the default scheduler). The paper's inputs that drove
// these costs on real hardware — the in-memory vehicle table, IIS logs and
// LogStash/Redis plumbing — are replaced by the synthetic generators in
// internal/workload (see DESIGN.md §2).
package apps

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Scale selects the continuous-queries experiment size (§4.1).
type Scale int

// Experiment scales.
const (
	Small  Scale = iota // 20 executors: 2 spout, 9 query, 9 file
	Medium              // 50 executors: 5 spout, 25 query, 20 file
	Large               // 100 executors: 10 spout, 45 query, 45 file
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// System bundles everything an experiment needs: the application graph,
// the cluster it runs on, and the arrival processes feeding its spouts.
type System struct {
	Name     string
	Top      *topology.Topology
	Cl       *cluster.Cluster
	Arrivals map[string]workload.ArrivalProcess
	// BaseRate is the aggregate spout arrival rate in tuples/second, kept
	// for workload-change scenarios (Figure 12 scales it by 1.5).
	BaseRate float64
}

// NewCluster returns the paper's testbed: 10 worker machines, each with 10
// slots and a quad-core CPU on a 1 Gbps network (§4.1).
func NewCluster() *cluster.Cluster { return cluster.NewUniform(10) }

// ContinuousQueries builds the continuous-queries topology (Figure 3):
// spout → Query bolt → File bolt. Queries scan an in-memory table; matching
// records stream to a file writer. Selectivity 0.3 reflects that most
// queries match a minority of rows.
func ContinuousQueries(scale Scale) (*System, error) {
	var spouts, query, file int
	var rate float64
	switch scale {
	case Small:
		spouts, query, file, rate = 2, 9, 9, 3400
	case Medium:
		spouts, query, file, rate = 5, 25, 20, 3300
	case Large:
		spouts, query, file, rate = 10, 45, 45, 3200
	default:
		return nil, fmt.Errorf("apps: unknown scale %v", scale)
	}
	top, err := topology.NewBuilder(fmt.Sprintf("continuous-queries-%s", scale)).
		AddSpout("spout", spouts, 0.04, 1, 150).
		AddBolt("query", query, 0.55, 0.3, 250).
		AddBolt("file", file, 0.30, 0, 0).
		Connect("spout", "query", topology.Shuffle).
		Connect("query", "file", topology.Shuffle).
		Build()
	if err != nil {
		return nil, err
	}
	return &System{
		Name:     top.Name,
		Top:      top,
		Cl:       NewCluster(),
		Arrivals: map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: rate}},
		BaseRate: rate,
	}, nil
}

// LogStream builds the log stream processing topology (Figure 4): spout →
// LogRules → {Indexer → DB, Counter → DB}. 100 executors: 10 spout, 20
// LogRules, 20 Indexer, 20 Counter, 15 per Database bolt. The two parallel
// branches and heavier per-tuple work give it the longest processing times
// of the three applications (Figure 8's 7–12 ms range).
func LogStream() (*System, error) {
	const rate = 250
	top, err := topology.NewBuilder("log-stream").
		AddSpout("spout", 10, 0.05, 1, 500).
		AddBolt("logrules", 20, 1.8, 1, 450).
		AddBolt("indexer", 20, 2.5, 1, 350).
		AddBolt("counter", 20, 1.5, 1, 120).
		AddBolt("db-index", 15, 2.2, 0, 0).
		AddBolt("db-count", 15, 1.8, 0, 0).
		Connect("spout", "logrules", topology.Shuffle).
		Connect("logrules", "indexer", topology.Shuffle).
		Connect("logrules", "counter", topology.Shuffle).
		Connect("indexer", "db-index", topology.Shuffle).
		Connect("counter", "db-count", topology.Shuffle).
		Build()
	if err != nil {
		return nil, err
	}
	return &System{
		Name:     top.Name,
		Top:      top,
		Cl:       NewCluster(),
		Arrivals: map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: rate}},
		BaseRate: rate,
	}, nil
}

// WordCount builds the streaming word-count topology (Figure 5): spout →
// SplitSentence → WordCount (fields grouping) → Database. 100 executors:
// 10 spout, 30 split, 30 count, 30 db. SplitSentence's selectivity models
// words per line (batched ×3 per emitted tuple to bound simulation cost —
// a pure event-count rescaling that leaves per-stage latency unchanged).
func WordCount() (*System, error) {
	const rate = 1600
	top, err := topology.NewBuilder("word-count").
		AddSpout("spout", 10, 0.04, 1, 300).
		AddBolt("split", 30, 0.20, 2.0, 120).
		AddBolt("count", 30, 0.20, 1, 80).
		AddBolt("db", 30, 0.25, 0, 0).
		Connect("spout", "split", topology.Shuffle).
		Connect("split", "count", topology.Fields).
		Connect("count", "db", topology.Shuffle).
		Build()
	if err != nil {
		return nil, err
	}
	return &System{
		Name:     top.Name,
		Top:      top,
		Cl:       NewCluster(),
		Arrivals: map[string]workload.ArrivalProcess{"spout": workload.ConstantRate{PerSecond: rate}},
		BaseRate: rate,
	}, nil
}

// WithStepWorkload returns a copy of the system whose spout rates jump by
// factor at atMS — the Figure 12 scenario (+50% at 20 minutes uses factor
// 1.5, atMS 20·60·1000).
func (s *System) WithStepWorkload(factor, atMS float64) *System {
	out := *s
	out.Arrivals = map[string]workload.ArrivalProcess{}
	for name := range s.Arrivals {
		out.Arrivals[name] = workload.StepRate{Base: s.BaseRate, Factor: factor, AtMS: atMS}
	}
	return &out
}

// NumSpouts returns the number of data-source components.
func (s *System) NumSpouts() int { return len(s.Top.Spouts()) }
