package apps

import (
	"testing"

	"repro/internal/topology"
)

func TestContinuousQueriesScales(t *testing.T) {
	cases := []struct {
		scale Scale
		execs int
		comps []int // spout, query, file parallelism
	}{
		{Small, 20, []int{2, 9, 9}},
		{Medium, 50, []int{5, 25, 20}},
		{Large, 100, []int{10, 45, 45}},
	}
	for _, c := range cases {
		sys, err := ContinuousQueries(c.scale)
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Top.NumExecutors(); got != c.execs {
			t.Fatalf("%v: %d executors want %d", c.scale, got, c.execs)
		}
		for i, name := range []string{"spout", "query", "file"} {
			if p := sys.Top.Component(name).Parallelism; p != c.comps[i] {
				t.Fatalf("%v %s parallelism %d want %d", c.scale, name, p, c.comps[i])
			}
		}
		if sys.Cl.Size() != 10 {
			t.Fatalf("cluster size %d want 10 (paper: 10 worker machines)", sys.Cl.Size())
		}
		if sys.BaseRate <= 0 || sys.NumSpouts() != 1 {
			t.Fatalf("rates/spouts wrong: %v %v", sys.BaseRate, sys.NumSpouts())
		}
	}
	if _, err := ContinuousQueries(Scale(99)); err == nil {
		t.Fatal("unknown scale should error")
	}
}

func TestLogStreamShape(t *testing.T) {
	sys, err := LogStream()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.1: 100 executors — 10 spout, 20 LogRules, 20 Indexer,
	// 20 Counter, 15 per Database bolt.
	if sys.Top.NumExecutors() != 100 {
		t.Fatalf("N=%d want 100", sys.Top.NumExecutors())
	}
	want := map[string]int{"spout": 10, "logrules": 20, "indexer": 20, "counter": 20, "db-index": 15, "db-count": 15}
	for name, p := range want {
		if got := sys.Top.Component(name).Parallelism; got != p {
			t.Fatalf("%s parallelism %d want %d", name, got, p)
		}
	}
	// The two parallel branches of Figure 4.
	outs := sys.Top.Out("logrules")
	if len(outs) != 2 {
		t.Fatalf("logrules should feed 2 branches, got %d", len(outs))
	}
}

func TestWordCountShape(t *testing.T) {
	sys, err := WordCount()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.1: 10 spout, 30 split, 30 count, 30 db.
	if sys.Top.NumExecutors() != 100 {
		t.Fatalf("N=%d want 100", sys.Top.NumExecutors())
	}
	// Fields grouping between split and count (counting requires keyed
	// routing, Figure 5).
	for _, e := range sys.Top.Edges {
		if e.From == "split" && e.To == "count" && e.Grouping != topology.Fields {
			t.Fatalf("split->count grouping %v want fields", e.Grouping)
		}
	}
}

func TestWithStepWorkload(t *testing.T) {
	sys, err := ContinuousQueries(Small)
	if err != nil {
		t.Fatal(err)
	}
	stepped := sys.WithStepWorkload(1.5, 60_000)
	p := stepped.Arrivals["spout"]
	if p.RateAt(0) != sys.BaseRate {
		t.Fatalf("pre-step rate %v want %v", p.RateAt(0), sys.BaseRate)
	}
	if p.RateAt(61_000) != sys.BaseRate*1.5 {
		t.Fatalf("post-step rate %v want %v", p.RateAt(61_000), sys.BaseRate*1.5)
	}
	// Original untouched.
	if sys.Arrivals["spout"].RateAt(61_000) != sys.BaseRate {
		t.Fatal("WithStepWorkload mutated the original system")
	}
}

func TestScaleString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("scale strings")
	}
}
