// Package workload provides the tuple arrival processes and synthetic data
// generators for the three benchmark applications of the paper (§4.1):
// continuous queries over an in-memory vehicle table, IIS-style log stream
// processing, and streaming word count.
//
// The paper's evaluation depends on data only through tuple *rates*, sizes,
// service demands, and stream selectivities; the generators here reproduce
// those distributions with synthetic content (the paper's actual inputs —
// university IIS logs and the Project Gutenberg text of Alice's Adventures
// in Wonderland — are replaced per the substitution rules in DESIGN.md §2).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ArrivalProcess yields the aggregate spout tuple arrival rate (tuples per
// second) as a function of simulation time. The workload part w of the
// DRL state (§3.2) is read from this.
type ArrivalProcess interface {
	// RateAt returns the arrival rate in tuples/second at time tMS.
	RateAt(tMS float64) float64
}

// ConstantRate is a stationary arrival process.
type ConstantRate struct{ PerSecond float64 }

// RateAt implements ArrivalProcess.
func (c ConstantRate) RateAt(float64) float64 { return c.PerSecond }

// StepRate jumps from Base to Base·Factor at time AtMS — the "workload
// increased by 50% at 20 minute" scenario of Figure 12 uses Factor = 1.5.
type StepRate struct {
	Base   float64
	Factor float64
	AtMS   float64
}

// RateAt implements ArrivalProcess.
func (s StepRate) RateAt(tMS float64) float64 {
	if tMS >= s.AtMS {
		return s.Base * s.Factor
	}
	return s.Base
}

// SineRate oscillates around Base with the given amplitude fraction and
// period; used by the robustness extension benches.
type SineRate struct {
	Base      float64
	Amplitude float64 // fraction of Base, in [0,1)
	PeriodMS  float64
}

// RateAt implements ArrivalProcess.
func (s SineRate) RateAt(tMS float64) float64 {
	if s.PeriodMS <= 0 {
		return s.Base
	}
	return s.Base * (1 + s.Amplitude*math.Sin(2*math.Pi*tMS/s.PeriodMS))
}

// BurstRate alternates between Base and Base·Factor: each PeriodMS cycle
// opens with BurstMS of elevated rate, then falls back to Base. It is the
// "bursty" trace kind of cluster scenarios — a square wave where SineRate
// is smooth — stressing queue build-up and drain.
type BurstRate struct {
	Base     float64
	Factor   float64 // rate multiplier during a burst
	PeriodMS float64 // cycle length
	BurstMS  float64 // burst duration at the start of each cycle
}

// RateAt implements ArrivalProcess.
func (b BurstRate) RateAt(tMS float64) float64 {
	if b.PeriodMS <= 0 || b.BurstMS <= 0 {
		return b.Base
	}
	if math.Mod(tMS, b.PeriodMS) < b.BurstMS {
		return b.Base * b.Factor
	}
	return b.Base
}

// PoissonGaps draws successive inter-arrival gaps (ms) for a process whose
// instantaneous rate comes from p. Rates ≤ 0 yield +Inf (no arrivals).
func PoissonGaps(rng *rand.Rand, p ArrivalProcess, tMS float64) float64 {
	r := p.RateAt(tMS)
	if r <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / r * 1000
}

// ---------------------------------------------------------------------------
// Continuous queries: random vehicle-plate table + speeding queries (§4.1).

// VehicleRecord is one row of the in-memory database table the Query bolt
// scans: vehicle plates with owner name, SSN and an attached speed.
type VehicleRecord struct {
	Plate string
	Owner string
	SSN   string
	Speed int
}

// QueryGen generates the continuous-queries workload: a random table and a
// stream of speeding-vehicle queries.
type QueryGen struct {
	Table      []VehicleRecord
	SpeedLimit int
	rng        *rand.Rand
}

var firstNames = []string{"Alice", "Bob", "Carol", "David", "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy"}
var lastNames = []string{"Smith", "Jones", "Chen", "Garcia", "Khan", "Mori", "Olsen", "Patel", "Rossi", "Weber"}

// NewQueryGen builds a table of n random vehicle records.
func NewQueryGen(rng *rand.Rand, n int) *QueryGen {
	g := &QueryGen{SpeedLimit: 65, rng: rng}
	for i := 0; i < n; i++ {
		g.Table = append(g.Table, VehicleRecord{
			Plate: fmt.Sprintf("%c%c%c-%04d", 'A'+rng.Intn(26), 'A'+rng.Intn(26), 'A'+rng.Intn(26), rng.Intn(10000)),
			Owner: firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))],
			SSN:   fmt.Sprintf("%03d-%02d-%04d", rng.Intn(1000), rng.Intn(100), rng.Intn(10000)),
			Speed: 30 + rng.Intn(70),
		})
	}
	return g
}

// Query is one select query tuple: find owners of vehicles faster than
// MinSpeed.
type Query struct {
	ID       int64
	MinSpeed int
}

// Next emits the next query tuple.
func (g *QueryGen) Next(id int64) Query {
	return Query{ID: id, MinSpeed: g.SpeedLimit + g.rng.Intn(30)}
}

// Execute scans the table and returns matching records — the Query bolt's
// work (looping over each row to check for a hit, per [8]).
func (g *QueryGen) Execute(q Query) []VehicleRecord {
	var hits []VehicleRecord
	for _, r := range g.Table {
		if r.Speed > q.MinSpeed {
			hits = append(hits, r)
		}
	}
	return hits
}

// ---------------------------------------------------------------------------
// Log stream: IIS-style log lines (§4.1).

// LogGen synthesizes Microsoft IIS-format log lines like the university
// traces used in the paper.
type LogGen struct {
	rng   *rand.Rand
	hosts []string
	uris  []string
}

// NewLogGen returns a generator with a fixed pool of hosts and URIs.
func NewLogGen(rng *rand.Rand) *LogGen {
	g := &LogGen{rng: rng}
	for i := 0; i < 20; i++ {
		g.hosts = append(g.hosts, fmt.Sprintf("10.13.%d.%d", rng.Intn(256), rng.Intn(256)))
	}
	paths := []string{"/", "/index.html", "/courses", "/courses/eecs", "/login", "/api/v1/grades", "/static/site.css", "/images/logo.png", "/search", "/admin"}
	g.uris = paths
	return g
}

var logMethods = []string{"GET", "GET", "GET", "GET", "POST", "HEAD"}
var logStatuses = []int{200, 200, 200, 200, 200, 304, 404, 500}

// LogEntry is one parsed IIS log record.
type LogEntry struct {
	ClientIP string
	Method   string
	URI      string
	Status   int
	Bytes    int
	TimeMS   int
}

// Next emits one random log entry.
func (g *LogGen) Next() LogEntry {
	return LogEntry{
		ClientIP: g.hosts[g.rng.Intn(len(g.hosts))],
		Method:   logMethods[g.rng.Intn(len(logMethods))],
		URI:      g.uris[g.rng.Intn(len(g.uris))],
		Status:   logStatuses[g.rng.Intn(len(logStatuses))],
		Bytes:    200 + g.rng.Intn(40000),
		TimeMS:   1 + g.rng.Intn(500),
	}
}

// Line formats the entry in IIS W3C extended format.
func (e LogEntry) Line() string {
	return fmt.Sprintf("2016-03-02 10:15:01 %s %s %s %d %d %d",
		e.ClientIP, e.Method, e.URI, e.Status, e.Bytes, e.TimeMS)
}

// ParseLine parses a line produced by Line. It returns an error for
// malformed input (exercised by the log topology's rule bolt).
func ParseLine(line string) (LogEntry, error) {
	var e LogEntry
	var date, clock string
	_, err := fmt.Sscanf(line, "%s %s %s %s %s %d %d %d",
		&date, &clock, &e.ClientIP, &e.Method, &e.URI, &e.Status, &e.Bytes, &e.TimeMS)
	if err != nil {
		return LogEntry{}, fmt.Errorf("workload: malformed log line %q: %w", line, err)
	}
	return e, nil
}

// IsError reports whether the entry should be counted as an error by the
// Counter bolt's rules.
func (e LogEntry) IsError() bool { return e.Status >= 400 }

// ---------------------------------------------------------------------------
// Word count: Markov-chain English-like text (§4.1).

// TextGen produces sentence tuples with Zipf-like word frequencies,
// standing in for the Alice's Adventures in Wonderland input file.
type TextGen struct {
	rng   *rand.Rand
	vocab []string
	zipf  *rand.Zipf
}

var seedVocab = []string{
	"alice", "rabbit", "queen", "king", "cat", "hatter", "tea", "time",
	"little", "down", "went", "said", "very", "looked", "great", "again",
	"door", "garden", "curious", "wonder", "dream", "mock", "turtle",
	"march", "hare", "duchess", "croquet", "playing", "cards", "off",
	"head", "grin", "cheshire", "caterpillar", "mushroom", "drink", "eat",
	"key", "table", "pool", "tears", "mouse", "story", "long", "tale",
}

// NewTextGen returns a generator over a fixed vocabulary with Zipf(1.1)
// frequencies, matching natural-language skew.
func NewTextGen(rng *rand.Rand) *TextGen {
	return &TextGen{
		rng:   rng,
		vocab: seedVocab,
		zipf:  rand.NewZipf(rng, 1.1, 1.0, uint64(len(seedVocab)-1)),
	}
}

// NextLine emits one line of 4–12 words.
func (g *TextGen) NextLine() string {
	n := 4 + g.rng.Intn(9)
	words := make([]string, n)
	for i := range words {
		words[i] = g.vocab[g.zipf.Uint64()]
	}
	return strings.Join(words, " ")
}

// SplitWords is the SplitSentence bolt's function.
func SplitWords(line string) []string { return strings.Fields(line) }

// WordCounter is the WordCount bolt's state: counts per word, partitioned
// by fields grouping in the real topology.
type WordCounter struct {
	Counts map[string]int
}

// NewWordCounter returns an empty counter.
func NewWordCounter() *WordCounter { return &WordCounter{Counts: map[string]int{}} }

// Add increments a word and returns its new count.
func (w *WordCounter) Add(word string) int {
	w.Counts[word]++
	return w.Counts[word]
}

// FieldsHash is the hash used by fields grouping to pick a downstream task
// for a key (FNV-1a, mod tasks).
func FieldsHash(key string, tasks int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	if tasks <= 0 {
		return 0
	}
	return int(h % uint64(tasks))
}
