package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstantRate(t *testing.T) {
	c := ConstantRate{PerSecond: 100}
	if c.RateAt(0) != 100 || c.RateAt(1e9) != 100 {
		t.Fatal("constant rate should not vary")
	}
}

func TestStepRate(t *testing.T) {
	s := StepRate{Base: 100, Factor: 1.5, AtMS: 20 * 60 * 1000}
	if s.RateAt(0) != 100 {
		t.Fatalf("before step: %v", s.RateAt(0))
	}
	if s.RateAt(19*60*1000) != 100 {
		t.Fatal("rate changed too early")
	}
	if s.RateAt(20*60*1000) != 150 {
		t.Fatalf("at step: %v want 150", s.RateAt(20*60*1000))
	}
	if s.RateAt(50*60*1000) != 150 {
		t.Fatal("rate should stay stepped")
	}
}

func TestSineRateBounds(t *testing.T) {
	s := SineRate{Base: 100, Amplitude: 0.3, PeriodMS: 1000}
	lo, hi := math.Inf(1), math.Inf(-1)
	for tm := 0.0; tm < 2000; tm += 10 {
		r := s.RateAt(tm)
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if lo < 69.9 || hi > 130.1 {
		t.Fatalf("sine range [%v,%v] outside expected", lo, hi)
	}
	if (SineRate{Base: 50}).RateAt(123) != 50 {
		t.Fatal("zero period should degrade to Base")
	}
}

func TestPoissonGapsMeanMatchesRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := ConstantRate{PerSecond: 200}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += PoissonGaps(rng, p, 0)
	}
	mean := sum / n // expected 1000/200 = 5ms
	if mean < 4.8 || mean > 5.2 {
		t.Fatalf("mean gap %v want ~5ms", mean)
	}
}

func TestPoissonGapsZeroRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if !math.IsInf(PoissonGaps(rng, ConstantRate{PerSecond: 0}, 0), 1) {
		t.Fatal("zero rate should yield +Inf gap")
	}
}

func TestQueryGen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewQueryGen(rng, 500)
	if len(g.Table) != 500 {
		t.Fatalf("table size %d", len(g.Table))
	}
	for _, r := range g.Table[:10] {
		if len(r.Plate) != 8 || !strings.Contains(r.Plate, "-") {
			t.Fatalf("bad plate %q", r.Plate)
		}
		if r.Speed < 30 || r.Speed > 99 {
			t.Fatalf("speed %d out of range", r.Speed)
		}
	}
	q := g.Next(42)
	if q.ID != 42 || q.MinSpeed < g.SpeedLimit {
		t.Fatalf("bad query %+v", q)
	}
	hits := g.Execute(q)
	for _, h := range hits {
		if h.Speed <= q.MinSpeed {
			t.Fatalf("non-matching hit %+v for query %+v", h, q)
		}
	}
	// Execute must find every matching row.
	want := 0
	for _, r := range g.Table {
		if r.Speed > q.MinSpeed {
			want++
		}
	}
	if len(hits) != want {
		t.Fatalf("Execute found %d rows want %d", len(hits), want)
	}
}

func TestLogGenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewLogGen(rng)
	for i := 0; i < 50; i++ {
		e := g.Next()
		line := e.Line()
		parsed, err := ParseLine(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if parsed != e {
			t.Fatalf("round trip mismatch: %+v vs %+v", parsed, e)
		}
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, err := ParseLine("this is not a log line"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestLogEntryIsError(t *testing.T) {
	if (LogEntry{Status: 200}).IsError() || (LogEntry{Status: 304}).IsError() {
		t.Fatal("2xx/3xx flagged as error")
	}
	if !(LogEntry{Status: 404}).IsError() || !(LogEntry{Status: 500}).IsError() {
		t.Fatal("4xx/5xx not flagged")
	}
}

func TestTextGenLines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewTextGen(rng)
	freq := map[string]int{}
	for i := 0; i < 500; i++ {
		line := g.NextLine()
		words := SplitWords(line)
		if len(words) < 4 || len(words) > 12 {
			t.Fatalf("line has %d words: %q", len(words), line)
		}
		for _, w := range words {
			freq[w]++
		}
	}
	// Zipf skew: the most common word should dominate the median word.
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < 200 {
		t.Fatalf("expected Zipf-skewed frequencies, max count %d", max)
	}
}

func TestWordCounter(t *testing.T) {
	w := NewWordCounter()
	if w.Add("alice") != 1 || w.Add("alice") != 2 || w.Add("queen") != 1 {
		t.Fatal("counts wrong")
	}
	if w.Counts["alice"] != 2 {
		t.Fatal("map state wrong")
	}
}

func TestFieldsHashStableAndInRange(t *testing.T) {
	h1 := FieldsHash("alice", 30)
	h2 := FieldsHash("alice", 30)
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	f := func(key string, tasksRaw uint8) bool {
		tasks := int(tasksRaw%64) + 1
		h := FieldsHash(key, tasks)
		return h >= 0 && h < tasks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if FieldsHash("x", 0) != 0 {
		t.Fatal("zero tasks should map to 0")
	}
}

func TestFieldsHashSpreads(t *testing.T) {
	counts := make([]int, 8)
	words := []string{"a", "b", "c", "dd", "ee", "ff", "ggg", "hhh", "iii", "jj", "kk", "ll", "mm", "nn", "oo", "pp"}
	for _, w := range words {
		counts[FieldsHash(w, 8)]++
	}
	nonEmpty := 0
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 4 {
		t.Fatalf("hash poorly spread: %v", counts)
	}
}

func TestBurstRate(t *testing.T) {
	b := BurstRate{Base: 100, Factor: 3, PeriodMS: 10_000, BurstMS: 2_000}
	if got := b.RateAt(0); got != 300 {
		t.Fatalf("burst onset rate %v want 300", got)
	}
	if got := b.RateAt(1_999); got != 300 {
		t.Fatalf("in-burst rate %v want 300", got)
	}
	if got := b.RateAt(2_000); got != 100 {
		t.Fatalf("post-burst rate %v want 100", got)
	}
	if got := b.RateAt(10_500); got != 300 {
		t.Fatalf("second-cycle burst rate %v want 300", got)
	}
	// Degenerate periods fall back to the base rate.
	if got := (BurstRate{Base: 50}).RateAt(123); got != 50 {
		t.Fatalf("degenerate burst rate %v want 50", got)
	}
}
