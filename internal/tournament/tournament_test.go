package tournament

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// small2x2 is the golden configuration: two training-free schedulers
// across the first two default regimes, one simulated minute each.
func small2x2() Options {
	return Options{
		Seed:       42,
		DurationMS: 60_000,
		Schedulers: []string{"default", "greedy"},
		Regimes:    DefaultRegimes()[:2],
	}
}

func TestGolden2x2(t *testing.T) {
	m, err := Run(small2x2())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_2x2.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("matrix diverged from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestMatrixShape(t *testing.T) {
	m, err := Run(small2x2())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Schedulers) != 2 || len(m.Regimes) != 2 {
		t.Fatalf("shape %v × %v", m.Schedulers, m.Regimes)
	}
	for _, s := range m.Schedulers {
		for _, r := range m.Regimes {
			c := m.Cells[s][r]
			if c == nil {
				t.Fatalf("missing cell %s×%s", s, r)
			}
			if c.Error != "" {
				t.Fatalf("cell %s×%s errored: %s", s, r, c.Error)
			}
			if c.Completed == 0 || c.StabilizedMS <= 0 {
				t.Fatalf("cell %s×%s empty: %+v", s, r, c)
			}
			if c.TrainMS != 0 || c.NSPerDecision != 0 {
				t.Fatalf("timing fields set without Timing: %+v", c)
			}
		}
	}
	for _, r := range m.Regimes {
		if m.Winners[r] == "" {
			t.Fatalf("no winner for %s", r)
		}
	}
}

// TestDeterminismAcrossGOMAXPROCS: the same options must produce
// byte-identical JSON at different parallelism, including a trainable
// scheduler's cell (training runs inside the cell).
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	opts := Options{
		Seed:        7,
		DurationMS:  60_000,
		TrainBudget: 25,
		Schedulers:  []string{"random", "ac"},
		Regimes:     DefaultRegimes()[:2],
	}
	runAt := func(procs int) []byte {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		m, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := runAt(1)
	b := runAt(runtime.NumCPU())
	if !bytes.Equal(a, b) {
		t.Fatalf("matrix differs across GOMAXPROCS\nat 1:\n%s\nat %d:\n%s", a, runtime.NumCPU(), b)
	}
}

func TestRunRejectsUnknownScheduler(t *testing.T) {
	if _, err := Run(Options{Schedulers: []string{"oracle"}}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestLoadJSONRoundTrip(t *testing.T) {
	m, err := Run(small2x2())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() == "" || !strings.Contains(buf2.String(), `"winners"`) {
		t.Fatal("round trip lost content")
	}
}

func TestGate(t *testing.T) {
	mk := func() *Matrix {
		return &Matrix{
			Version:    1,
			Schedulers: []string{"default", "greedy"},
			Regimes:    []string{"steady"},
			Cells: map[string]map[string]*Cell{
				"default": {"steady": &Cell{StabilizedMS: 10, Completed: 100}},
				"greedy":  {"steady": &Cell{StabilizedMS: 8, Completed: 100}},
			},
			Winners: map[string]string{"steady": "greedy"},
			Wins:    map[string]int{"greedy": 1},
		}
	}
	base := mk()

	if v := Gate(base, mk(), 5); len(v) != 0 {
		t.Fatalf("identical matrices should pass: %v", v)
	}

	flipped := mk()
	flipped.Winners["steady"] = "default"
	if v := Gate(base, flipped, 5); len(v) != 1 || !strings.Contains(v[0], "winner flipped") {
		t.Fatalf("winner flip not caught: %v", v)
	}

	drifted := mk()
	drifted.Cells["default"]["steady"].StabilizedMS = 12 // +20%
	if v := Gate(base, drifted, 5); len(v) != 1 || !strings.Contains(v[0], "drifted") {
		t.Fatalf("drift not caught: %v", v)
	}
	if v := Gate(base, drifted, 25); len(v) != 0 {
		t.Fatalf("drift within tolerance should pass: %v", v)
	}

	errored := mk()
	errored.Cells["greedy"]["steady"] = &Cell{Error: "boom"}
	v := Gate(base, errored, 5)
	found := false
	for _, s := range v {
		if strings.Contains(s, "now errors") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new error cell not caught: %v", v)
	}

	shrunk := mk()
	shrunk.Schedulers = []string{"default"}
	if v := Gate(base, shrunk, 5); len(v) == 0 {
		t.Fatal("scheduler set change not caught")
	}
}

func TestWriteTable(t *testing.T) {
	m, err := Run(small2x2())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"scheduler", "steady", "bursty", "wins", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
