// Package tournament sweeps every registered scheduler across a
// spectrum of workload regimes — steady, bursty, diurnal, shifting,
// faulty, and a cluster-scale contended scenario — on the shared-clock
// multi-topology engine, and reduces the sweep to a machine-readable
// win/loss matrix: per cell the stabilized latency, tuples processed,
// per-decision scheduling cost and training cost; per regime the winner.
//
// Every regime is a multisim scenario with one designated subject
// topology; a cell (scheduler × regime) re-runs the scenario with the
// subject placed by that scheduler (background topologies, where
// present, keep fixed placements so the contention field is identical
// across rows). Cells are pure functions of (scheduler name, seed):
// training is fully sequential inside a cell, cells fan out over a
// bounded pool with results assembled by index, and wall-clock timing
// fields are zeroed unless explicitly requested — so the emitted matrix
// is byte-identical across runs and GOMAXPROCS settings.
//
// The matrix doubles as a regression corpus: Gate diffs a freshly
// measured matrix against a committed baseline and flags flipped
// winners (hard) and stabilized-latency drift (tolerance).
package tournament

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/multisim"
	"repro/internal/parallel"
	"repro/internal/sched"
)

// Options configures a tournament run.
type Options struct {
	// Seed drives every cell: scenario instance seeds (and through them
	// each scheduler's training streams) derive from it.
	Seed int64
	// DurationMS is the simulated duration of each regime run
	// (0 = 120000, twelve 10-second metric windows).
	DurationMS float64
	// TrainBudget is the offline budget for trainable schedulers
	// (0 = each scheduler's default).
	TrainBudget int
	// Timing records wall-clock columns (train_ms, ns_per_decision).
	// Off by default because wall time varies run to run — with Timing
	// false the matrix is byte-identical across runs.
	Timing bool
	// Workers bounds the cell fan-out pool (0 = one per CPU). Never
	// affects results: cells are independent and assembled by index.
	Workers int
	// Schedulers and Regimes narrow the sweep (nil = the full registry
	// comparison set / the full default regime spectrum).
	Schedulers []string
	Regimes    []Regime
}

// Regime is one column of the matrix: a scenario factory plus the index
// of the subject topology whose metrics feed the cell.
type Regime struct {
	Name    string
	Subject int
	// Make builds a fresh scenario value for one cell. It is called once
	// per cell (cells mutate the subject's scheduler field), so it must
	// return an independent value every time.
	Make func(seed, durationMS float64) *multisim.Scenario
}

// Cell is one (scheduler, regime) outcome.
type Cell struct {
	StabilizedMS  float64 `json:"stabilized_ms"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	Completed     int64   `json:"completed"`
	Emitted       int64   `json:"emitted"`
	Replayed      int64   `json:"replayed,omitempty"`
	Dropped       int64   `json:"dropped,omitempty"`
	NSPerDecision int64   `json:"ns_per_decision,omitempty"`
	TrainMS       float64 `json:"train_ms,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Matrix is the full tournament outcome, shaped for stable JSON: slices
// preserve sweep order, maps marshal with sorted keys, so the encoding
// is deterministic.
type Matrix struct {
	Version     int     `json:"version"`
	Seed        int64   `json:"seed"`
	DurationMS  float64 `json:"duration_ms"`
	TrainBudget int     `json:"train_budget"`
	Timing      bool    `json:"timing"`
	// Schedulers in canonical registry order; Regimes in sweep order.
	Schedulers []string `json:"schedulers"`
	Regimes    []string `json:"regimes"`
	// Cells[scheduler][regime].
	Cells map[string]map[string]*Cell `json:"cells"`
	// Winners[regime] = scheduler with the lowest stabilized latency
	// among cells that completed tuples without error (ties go to the
	// earlier scheduler in canonical order). Wins counts victories.
	Winners map[string]string `json:"winners"`
	Wins    map[string]int    `json:"wins"`
}

// DefaultRegimes returns the standard workload spectrum. The first five
// run the small continuous-queries benchmark alone on the paper testbed
// cluster under one trace each; "contended" shares the cluster with a
// log-stream and a word-count topology plus a rack fault — the
// cluster-scale interference column.
func DefaultRegimes() []Regime {
	single := func(name string, trace *multisim.TraceSpec, faults []multisim.FaultSpec, ackMS float64) Regime {
		return Regime{
			Name:    name,
			Subject: 0,
			Make: func(seed, durationMS float64) *multisim.Scenario {
				return &multisim.Scenario{
					Name:         name,
					Seed:         int64(seed),
					DurationMS:   durationMS,
					AckTimeoutMS: ackMS,
					Cluster:      multisim.ClusterSpec{Machines: 10},
					Topologies: []multisim.TopologySpec{
						{App: "cq-small", Trace: trace},
					},
					Faults: faults,
				}
			},
		}
	}
	return []Regime{
		single("steady", nil, nil, 0),
		single("bursty", &multisim.TraceSpec{Kind: "bursty", Factor: 2, PeriodMS: 40_000, BurstMS: 8_000}, nil, 0),
		single("diurnal", &multisim.TraceSpec{Kind: "diurnal", Amplitude: 0.4, PeriodMS: 60_000}, nil, 0),
		single("shifting", &multisim.TraceSpec{Kind: "shift", Factor: 1.5}, nil, 0),
		single("faulty", nil, []multisim.FaultSpec{
			{AtMS: 40_000, Machine: 1, Radius: 2, DownMS: 8_000, JitterMS: 4_000},
		}, 10_000),
		{
			Name:    "contended",
			Subject: 0,
			Make: func(seed, durationMS float64) *multisim.Scenario {
				return &multisim.Scenario{
					Name:         "contended",
					Seed:         int64(seed),
					DurationMS:   durationMS,
					AckTimeoutMS: 10_000,
					Cluster:      multisim.ClusterSpec{Machines: 10, SpeedFactors: []float64{1.0, 0.85, 1.15}},
					Topologies: []multisim.TopologySpec{
						{App: "cq-small"},
						{App: "log", Scheduler: "traffic", Trace: &multisim.TraceSpec{Kind: "diurnal", PeriodMS: 60_000}},
						{App: "wc", Scheduler: "greedy", Trace: &multisim.TraceSpec{Kind: "bursty", PeriodMS: 40_000, BurstMS: 8_000}},
					},
					Faults: []multisim.FaultSpec{
						{AtMS: 70_000, Machine: 1, Radius: 2, DownMS: 4_000, JitterMS: 2_000},
					},
				}
			},
		},
	}
}

// Run executes the sweep and reduces it to a Matrix. Individual cell
// failures land in the cell's Error field rather than aborting the
// sweep; Run errors only on malformed options.
func Run(opts Options) (*Matrix, error) {
	schedulers := opts.Schedulers
	if len(schedulers) == 0 {
		schedulers = sched.Names()
	}
	for _, name := range schedulers {
		if !sched.Default.Has(name) {
			return nil, fmt.Errorf("tournament: unknown scheduler %q", name)
		}
	}
	regimes := opts.Regimes
	if len(regimes) == 0 {
		regimes = DefaultRegimes()
	}
	duration := opts.DurationMS
	if duration <= 0 {
		duration = 120_000
	}

	m := &Matrix{
		Version:     1,
		Seed:        opts.Seed,
		DurationMS:  duration,
		TrainBudget: opts.TrainBudget,
		Timing:      opts.Timing,
		Schedulers:  append([]string(nil), schedulers...),
		Cells:       map[string]map[string]*Cell{},
		Winners:     map[string]string{},
		Wins:        map[string]int{},
	}
	for _, r := range regimes {
		m.Regimes = append(m.Regimes, r.Name)
	}

	// One task per cell, fanned out over the pool and assembled by index
	// so the matrix never depends on completion order.
	type task struct {
		schedName string
		regime    Regime
	}
	tasks := make([]task, 0, len(schedulers)*len(regimes))
	for _, s := range schedulers {
		for _, r := range regimes {
			tasks = append(tasks, task{schedName: s, regime: r})
		}
	}
	cells, err := parallel.Map(context.Background(), len(tasks), opts.Workers,
		func(_ context.Context, i int) (*Cell, error) {
			t := tasks[i]
			return runCell(t.schedName, t.regime, opts.Seed, duration, opts.TrainBudget, opts.Timing), nil
		})
	if err != nil {
		return nil, err
	}
	for i, t := range tasks {
		row := m.Cells[t.schedName]
		if row == nil {
			row = map[string]*Cell{}
			m.Cells[t.schedName] = row
		}
		row[t.regime.Name] = cells[i]
	}

	// Winner per regime: lowest stabilized latency among valid cells;
	// ties break toward the earlier scheduler in canonical order.
	for _, r := range regimes {
		best := ""
		bestLat := math.Inf(1)
		for _, s := range schedulers {
			c := m.Cells[s][r.Name]
			if c.Error != "" || c.Completed == 0 {
				continue
			}
			if c.StabilizedMS < bestLat {
				best, bestLat = s, c.StabilizedMS
			}
		}
		if best != "" {
			m.Winners[r.Name] = best
			m.Wins[best]++
		}
	}
	return m, nil
}

// runCell runs one scenario with the subject topology placed by the
// named scheduler.
func runCell(schedName string, regime Regime, seed int64, durationMS float64, trainBudget int, timing bool) *Cell {
	sc := regime.Make(float64(seed), durationMS)
	if regime.Subject < 0 || regime.Subject >= len(sc.Topologies) {
		return &Cell{Error: fmt.Sprintf("subject index %d out of range", regime.Subject)}
	}
	sc.Topologies[regime.Subject].Scheduler = schedName
	sc.Train = trainBudget
	setups, cl, err := sc.Instances()
	if err != nil {
		return &Cell{Error: err.Error()}
	}
	multi, err := multisim.BuildInstances(sc, setups, cl, false)
	if err != nil {
		return &Cell{Error: err.Error()}
	}
	multi.RunUntil(sc.DurationMS)
	r := multi.Results(5)[regime.Subject]
	c := &Cell{
		StabilizedMS: sanitize(r.StabilizedMS),
		P50MS:        sanitize(r.P50MS),
		P99MS:        sanitize(r.P99MS),
		Completed:    r.Completed,
		Emitted:      r.Emitted,
		Replayed:     r.Replayed,
		Dropped:      r.Dropped,
	}
	if timing {
		su := setups[regime.Subject]
		c.TrainMS = su.TrainMS
		if n := su.Top.NumExecutors(); n > 0 {
			c.NSPerDecision = su.ScheduleNS / int64(n)
		}
	}
	return c
}

// sanitize maps non-finite metrics (no tuples in window) to 0 so the
// matrix always marshals.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// WriteJSON emits the canonical matrix encoding: two-space indent,
// sorted map keys (encoding/json), trailing newline. This is the byte
// representation the determinism tests and the drift gate compare.
func (m *Matrix) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// LoadJSON parses a matrix previously written by WriteJSON.
func LoadJSON(r io.Reader) (*Matrix, error) {
	var m Matrix
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("tournament: parsing matrix: %w", err)
	}
	if m.Version != 1 {
		return nil, fmt.Errorf("tournament: unsupported matrix version %d", m.Version)
	}
	return &m, nil
}

// WriteTable renders the human view: one row per scheduler, one column
// per regime, stabilized latency per cell with the per-regime winner
// starred, then the win counts and (when measured) the timing columns.
func (m *Matrix) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "tournament: %d schedulers × %d regimes, %.0fs simulated each, seed %d\n\n",
		len(m.Schedulers), len(m.Regimes), m.DurationMS/1_000, m.Seed)
	fmt.Fprintf(w, " %-10s", "scheduler")
	for _, r := range m.Regimes {
		fmt.Fprintf(w, " %12s", r)
	}
	fmt.Fprintf(w, " %6s\n", "wins")
	for _, s := range m.Schedulers {
		fmt.Fprintf(w, " %-10s", s)
		for _, r := range m.Regimes {
			c := m.Cells[s][r]
			switch {
			case c == nil:
				fmt.Fprintf(w, " %12s", "-")
			case c.Error != "":
				fmt.Fprintf(w, " %12s", "ERROR")
			default:
				star := " "
				if m.Winners[r] == s {
					star = "*"
				}
				fmt.Fprintf(w, " %11.3f%s", c.StabilizedMS, star)
			}
		}
		fmt.Fprintf(w, " %6d\n", m.Wins[s])
	}
	fmt.Fprintln(w, "\n(* = regime winner by stabilized ms; cells are stabilized latency in ms)")
	if m.Timing {
		fmt.Fprintf(w, "\n %-10s %12s %14s\n", "scheduler", "train (ms)", "ns/decision")
		for _, s := range m.Schedulers {
			var trainMS float64
			var nsPD, n int64
			for _, r := range m.Regimes {
				if c := m.Cells[s][r]; c != nil && c.Error == "" {
					trainMS += c.TrainMS
					nsPD += c.NSPerDecision
					n++
				}
			}
			if n > 0 {
				fmt.Fprintf(w, " %-10s %12.1f %14d\n", s, trainMS/float64(n), nsPD/n)
			}
		}
		fmt.Fprintln(w, "(timing columns are per-cell means; train is wall clock, ns/decision is the frozen Schedule call per executor placement)")
	}
}

// Gate diffs a measured matrix against a committed baseline, returning
// one violation string per regression: structural drift (scheduler or
// regime sets changed), error cells that were previously clean, flipped
// regime winners (hard failures regardless of tolerance), and stabilized
// latency drifting more than maxDriftPct percent in either direction.
// An empty slice means the gate passes.
func Gate(baseline, current *Matrix, maxDriftPct float64) []string {
	var v []string
	if !sameSet(baseline.Schedulers, current.Schedulers) {
		v = append(v, fmt.Sprintf("scheduler set changed: baseline %v, current %v", baseline.Schedulers, current.Schedulers))
	}
	if !sameSet(baseline.Regimes, current.Regimes) {
		v = append(v, fmt.Sprintf("regime set changed: baseline %v, current %v", baseline.Regimes, current.Regimes))
	}
	for _, r := range baseline.Regimes {
		bw, cw := baseline.Winners[r], current.Winners[r]
		if bw != "" && cw != "" && bw != cw {
			v = append(v, fmt.Sprintf("regime %q winner flipped: %s → %s", r, bw, cw))
		}
	}
	for _, s := range baseline.Schedulers {
		for _, r := range baseline.Regimes {
			bc, cc := baseline.Cells[s][r], current.Cells[s][r]
			if bc == nil || cc == nil {
				continue
			}
			if bc.Error == "" && cc.Error != "" {
				v = append(v, fmt.Sprintf("cell %s×%s now errors: %s", s, r, cc.Error))
				continue
			}
			if bc.Error != "" || cc.Error != "" || bc.StabilizedMS <= 0 {
				continue
			}
			drift := 100 * math.Abs(cc.StabilizedMS-bc.StabilizedMS) / bc.StabilizedMS
			if drift > maxDriftPct {
				v = append(v, fmt.Sprintf("cell %s×%s stabilized drifted %.1f%% (%.3f → %.3f ms, tolerance %.1f%%)",
					s, r, drift, bc.StabilizedMS, cc.StabilizedMS, maxDriftPct))
			}
		}
	}
	return v
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
