// Package actionspace models the scheduling action space of the paper and
// implements the K-nearest-neighbor optimizer over it.
//
// An action assigns each of N threads (executors) to one of M machines:
// a = <a_ij> with Σ_j a_ij = 1 (§3.2). Flattened row-major, an action is a
// point in R^(N·M) with one-hot rows, and |A| = M^N.
//
// The paper finds the K feasible actions nearest to the actor's continuous
// proto-action â by solving a series of MIQP-NN problems with the Gurobi
// optimizer (§3.2.1). This package replaces Gurobi with an *exact*
// polynomial-time algorithm: because the one-hot row constraints are
// independent, ‖a − â‖² decomposes into per-row column costs, and the K best
// full assignments are exactly the K smallest sums picking one column per
// row — enumerable with a best-first heap (k-smallest-sums). The result set
// is identical to what the MIQP series would return.
package actionspace

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Space describes the feasible action space for N threads and M machines.
// If Capacity is non-nil it gives, per machine, the maximum number of
// threads assignable to it (slot limits); the paper's formulation (3.2) has
// no capacity constraint, so Capacity is normally nil.
type Space struct {
	N, M     int
	Capacity []int // optional, len M
}

// NewSpace returns an unconstrained N×M action space.
func NewSpace(n, m int) *Space {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("actionspace: invalid dimensions N=%d M=%d", n, m))
	}
	return &Space{N: n, M: m}
}

// Dim returns the flattened action dimension N·M.
func (s *Space) Dim() int { return s.N * s.M }

// Encode writes the one-hot flattening of assign (len N, values in [0,M))
// into dst (len N·M) and returns dst. A nil dst is allocated.
func (s *Space) Encode(assign []int, dst []float64) []float64 {
	if len(assign) != s.N {
		panic(fmt.Sprintf("actionspace: Encode got %d threads want %d", len(assign), s.N))
	}
	if dst == nil {
		dst = make([]float64, s.Dim())
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for i, j := range assign {
		if j < 0 || j >= s.M {
			panic(fmt.Sprintf("actionspace: thread %d assigned to invalid machine %d", i, j))
		}
		dst[i*s.M+j] = 1
	}
	return dst
}

// Decode recovers an assignment from a flat (possibly continuous) action by
// taking the argmax of each row. This is the K=1 rounding ("the most natural
// way": nearest feasible neighbor of the proto-action).
func (s *Space) Decode(flat []float64) []int {
	if len(flat) != s.Dim() {
		panic(fmt.Sprintf("actionspace: Decode got dim %d want %d", len(flat), s.Dim()))
	}
	assign := make([]int, s.N)
	for i := 0; i < s.N; i++ {
		row := flat[i*s.M : (i+1)*s.M]
		best, bj := row[0], 0
		for j := 1; j < s.M; j++ {
			if row[j] > best {
				best, bj = row[j], j
			}
		}
		assign[i] = bj
	}
	return assign
}

// Random returns a uniformly random feasible assignment. With capacities it
// retries machine choices per thread; the space must be feasible
// (Σ capacity ≥ N), otherwise Random panics.
func (s *Space) Random(rng *rand.Rand) []int {
	assign := make([]int, s.N)
	if s.Capacity == nil {
		for i := range assign {
			assign[i] = rng.Intn(s.M)
		}
		return assign
	}
	remaining := append([]int(nil), s.Capacity...)
	total := 0
	for _, c := range remaining {
		total += c
	}
	if total < s.N {
		panic(fmt.Sprintf("actionspace: total capacity %d < N=%d", total, s.N))
	}
	for i := range assign {
		for {
			j := rng.Intn(s.M)
			if remaining[j] > 0 {
				remaining[j]--
				assign[i] = j
				break
			}
		}
	}
	return assign
}

// RandomStratified returns a random feasible assignment whose
// *consolidation level* is itself uniform: it draws k ~ U{1..M}, picks k
// machines, and assigns each thread uniformly among them. Uniform sampling
// (Random) concentrates mass at even spreads — for N ≫ M the probability
// of drawing a schedule that uses few machines is astronomically small —
// so offline collections that rely on it never observe the consolidated
// region of the action space. Stratified sampling covers the whole
// spectrum, which is what lets the full-action-space agent explore where
// the move-restricted DQN cannot (§3.2).
func (s *Space) RandomStratified(rng *rand.Rand) []int {
	if s.Capacity != nil {
		// Capacity constraints make arbitrary consolidation infeasible;
		// fall back to plain feasible sampling.
		return s.Random(rng)
	}
	k := 1 + rng.Intn(s.M)
	machines := rng.Perm(s.M)[:k]
	assign := make([]int, s.N)
	for i := range assign {
		assign[i] = machines[rng.Intn(k)]
	}
	return assign
}

// SqDistTo returns ‖Encode(assign) − proto‖² without materializing the
// one-hot vector.
func (s *Space) SqDistTo(assign []int, proto []float64) float64 {
	if len(proto) != s.Dim() || len(assign) != s.N {
		panic("actionspace: SqDistTo dimension mismatch")
	}
	var d float64
	for i, j := range assign {
		row := proto[i*s.M : (i+1)*s.M]
		for c, v := range row {
			if c == j {
				d += (1 - v) * (1 - v)
			} else {
				d += v * v
			}
		}
	}
	return d
}

// Feasible reports whether assign respects the capacity constraints.
func (s *Space) Feasible(assign []int) bool {
	if len(assign) != s.N {
		return false
	}
	counts := make([]int, s.M)
	for _, j := range assign {
		if j < 0 || j >= s.M {
			return false
		}
		counts[j]++
	}
	if s.Capacity != nil {
		for j, c := range counts {
			if c > s.Capacity[j] {
				return false
			}
		}
	}
	return true
}

// rowChoice is one column option for a row, with its distance contribution
// delta relative to the row's best column.
type rowChoice struct {
	col   int
	delta float64
}

// knnNode is a heap node in the k-smallest-sums enumeration: a vector of
// per-row pointers into the sorted choice lists plus the total delta.
type knnNode struct {
	delta    float64
	ptrs     []int16 // index into choices[i] per row
	frontier int     // rows < frontier are frozen (dedup rule)
}

type knnHeap []*knnNode

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].delta < h[j].delta }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(*knnNode)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// maxExpansions bounds the search when capacity constraints make many
// combinations infeasible; without capacities every popped node is feasible
// and the bound is never approached.
const maxExpansions = 200000

// KNearest returns the k feasible assignments nearest to proto in squared
// Euclidean distance, nearest first. This is the exact solution of the
// paper's series of MIQP-NN problems (§3.2.1). Fewer than k results are
// returned only if the (capacity-constrained) space is exhausted or the
// expansion budget is hit.
func (s *Space) KNearest(proto []float64, k int) [][]int {
	if len(proto) != s.Dim() {
		panic(fmt.Sprintf("actionspace: KNearest got dim %d want %d", len(proto), s.Dim()))
	}
	if k <= 0 {
		return nil
	}
	// Per-row sorted column choices. Within row i the squared distance of
	// choosing column j is 1 − 2·â_ij + ‖â_i‖²; the constant terms are
	// shared, so choices sort by −â_ij. Deltas store the exact distance
	// difference to the row optimum: Δ = 2(â_i,best − â_ij).
	choices := make([][]rowChoice, s.N)
	for i := 0; i < s.N; i++ {
		row := proto[i*s.M : (i+1)*s.M]
		cs := make([]rowChoice, s.M)
		for j := 0; j < s.M; j++ {
			cs[j] = rowChoice{col: j, delta: -2 * row[j]}
		}
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].delta != cs[b].delta {
				return cs[a].delta < cs[b].delta
			}
			return cs[a].col < cs[b].col
		})
		base := cs[0].delta
		for j := range cs {
			cs[j].delta -= base
		}
		choices[i] = cs
	}

	assignOf := func(ptrs []int16) []int {
		a := make([]int, s.N)
		for i, p := range ptrs {
			a[i] = choices[i][p].col
		}
		return a
	}

	h := &knnHeap{{delta: 0, ptrs: make([]int16, s.N), frontier: 0}}
	heap.Init(h)
	var out [][]int
	expansions := 0
	for h.Len() > 0 && len(out) < k && expansions < maxExpansions {
		node := heap.Pop(h).(*knnNode)
		expansions++
		a := assignOf(node.ptrs)
		if s.Capacity == nil || s.Feasible(a) {
			out = append(out, a)
		}
		// Children: advance one row pointer at or beyond the frontier. The
		// frontier rule generates each pointer vector exactly once.
		for r := node.frontier; r < s.N; r++ {
			p := node.ptrs[r]
			if int(p)+1 >= len(choices[r]) {
				continue
			}
			child := &knnNode{
				delta:    node.delta - choices[r][p].delta + choices[r][p+1].delta,
				ptrs:     append([]int16(nil), node.ptrs...),
				frontier: r,
			}
			child.ptrs[r]++
			heap.Push(h, child)
		}
	}
	return out
}

// Nearest is the K=1 fast path: the single nearest feasible assignment.
// Without capacity constraints it is simply the per-row argmax.
func (s *Space) Nearest(proto []float64) []int {
	if s.Capacity == nil {
		return s.Decode(proto)
	}
	res := s.KNearest(proto, 1)
	if len(res) == 0 {
		panic("actionspace: no feasible assignment found")
	}
	return res[0]
}

// RelaxedRound implements the paper's fallback for very large cases: relax
// the integrality constraint (the relaxed optimum of the row subproblem is a
// simplex projection, whose mass concentrates on the largest entries) and
// round randomly with probability proportional to the positive part of each
// row. It trades exactness for O(N·M) time and is used in the scalability
// ablation.
func (s *Space) RelaxedRound(rng *rand.Rand, proto []float64) []int {
	if len(proto) != s.Dim() {
		panic("actionspace: RelaxedRound dimension mismatch")
	}
	assign := make([]int, s.N)
	for i := 0; i < s.N; i++ {
		row := proto[i*s.M : (i+1)*s.M]
		var sum float64
		for _, v := range row {
			if v > 0 {
				sum += v
			}
		}
		if sum <= 0 {
			assign[i] = rng.Intn(s.M)
			continue
		}
		r := rng.Float64() * sum
		acc := 0.0
		assign[i] = s.M - 1
		for j, v := range row {
			if v <= 0 {
				continue
			}
			acc += v
			if r < acc {
				assign[i] = j
				break
			}
		}
	}
	return assign
}

// MoveAction is the DQN baseline's restricted action: reassign a single
// thread to a machine (§3.2), giving |A| = N·M.
type MoveAction struct {
	Thread, Machine int
}

// ApplyMove returns a copy of assign with the move applied.
func ApplyMove(assign []int, m MoveAction) []int {
	out := append([]int(nil), assign...)
	out[m.Thread] = m.Machine
	return out
}

// MoveIndex maps a MoveAction to its flat index in [0, N·M).
func (s *Space) MoveIndex(m MoveAction) int { return m.Thread*s.M + m.Machine }

// MoveFromIndex inverts MoveIndex.
func (s *Space) MoveFromIndex(idx int) MoveAction {
	return MoveAction{Thread: idx / s.M, Machine: idx % s.M}
}
