// Package actionspace models the scheduling action space of the paper and
// implements the K-nearest-neighbor optimizer over it.
//
// An action assigns each of N threads (executors) to one of M machines:
// a = <a_ij> with Σ_j a_ij = 1 (§3.2). Flattened row-major, an action is a
// point in R^(N·M) with one-hot rows, and |A| = M^N.
//
// The paper finds the K feasible actions nearest to the actor's continuous
// proto-action â by solving a series of MIQP-NN problems with the Gurobi
// optimizer (§3.2.1). This package replaces Gurobi with an *exact*
// polynomial-time algorithm: because the one-hot row constraints are
// independent, ‖a − â‖² decomposes into per-row column costs, and the K best
// full assignments are exactly the K smallest sums picking one column per
// row — enumerable with a best-first heap (k-smallest-sums). The result set
// is identical to what the MIQP series would return.
package actionspace

import (
	"fmt"
	"math/rand"
)

// Space describes the feasible action space for N threads and M machines.
// If Capacity is non-nil it gives, per machine, the maximum number of
// threads assignable to it (slot limits); the paper's formulation (3.2) has
// no capacity constraint, so Capacity is normally nil.
type Space struct {
	N, M     int
	Capacity []int // optional, len M

	// knn is the reusable k-smallest-sums workspace; because of it a Space
	// must not run KNearest searches concurrently from multiple goroutines.
	knn knnScratch
}

// NewSpace returns an unconstrained N×M action space.
func NewSpace(n, m int) *Space {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("actionspace: invalid dimensions N=%d M=%d", n, m))
	}
	return &Space{N: n, M: m}
}

// Dim returns the flattened action dimension N·M.
func (s *Space) Dim() int { return s.N * s.M }

// Encode writes the one-hot flattening of assign (len N, values in [0,M))
// into dst (len N·M) and returns dst. A nil dst is allocated.
func (s *Space) Encode(assign []int, dst []float64) []float64 {
	if len(assign) != s.N {
		panic(fmt.Sprintf("actionspace: Encode got %d threads want %d", len(assign), s.N))
	}
	if dst == nil {
		dst = make([]float64, s.Dim())
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for i, j := range assign {
		if j < 0 || j >= s.M {
			panic(fmt.Sprintf("actionspace: thread %d assigned to invalid machine %d", i, j))
		}
		dst[i*s.M+j] = 1
	}
	return dst
}

// Decode recovers an assignment from a flat (possibly continuous) action by
// taking the argmax of each row. This is the K=1 rounding ("the most natural
// way": nearest feasible neighbor of the proto-action).
func (s *Space) Decode(flat []float64) []int {
	if len(flat) != s.Dim() {
		panic(fmt.Sprintf("actionspace: Decode got dim %d want %d", len(flat), s.Dim()))
	}
	assign := make([]int, s.N)
	for i := 0; i < s.N; i++ {
		row := flat[i*s.M : (i+1)*s.M]
		best, bj := row[0], 0
		for j := 1; j < s.M; j++ {
			if row[j] > best {
				best, bj = row[j], j
			}
		}
		assign[i] = bj
	}
	return assign
}

// Random returns a uniformly random feasible assignment. With capacities it
// retries machine choices per thread; the space must be feasible
// (Σ capacity ≥ N), otherwise Random panics.
func (s *Space) Random(rng *rand.Rand) []int {
	assign := make([]int, s.N)
	if s.Capacity == nil {
		for i := range assign {
			assign[i] = rng.Intn(s.M)
		}
		return assign
	}
	remaining := append([]int(nil), s.Capacity...)
	total := 0
	for _, c := range remaining {
		total += c
	}
	if total < s.N {
		panic(fmt.Sprintf("actionspace: total capacity %d < N=%d", total, s.N))
	}
	for i := range assign {
		for {
			j := rng.Intn(s.M)
			if remaining[j] > 0 {
				remaining[j]--
				assign[i] = j
				break
			}
		}
	}
	return assign
}

// RandomStratified returns a random feasible assignment whose
// *consolidation level* is itself uniform: it draws k ~ U{1..M}, picks k
// machines, and assigns each thread uniformly among them. Uniform sampling
// (Random) concentrates mass at even spreads — for N ≫ M the probability
// of drawing a schedule that uses few machines is astronomically small —
// so offline collections that rely on it never observe the consolidated
// region of the action space. Stratified sampling covers the whole
// spectrum, which is what lets the full-action-space agent explore where
// the move-restricted DQN cannot (§3.2).
func (s *Space) RandomStratified(rng *rand.Rand) []int {
	if s.Capacity != nil {
		// Capacity constraints make arbitrary consolidation infeasible;
		// fall back to plain feasible sampling.
		return s.Random(rng)
	}
	k := 1 + rng.Intn(s.M)
	machines := rng.Perm(s.M)[:k]
	assign := make([]int, s.N)
	for i := range assign {
		assign[i] = machines[rng.Intn(k)]
	}
	return assign
}

// SqDistTo returns ‖Encode(assign) − proto‖² without materializing the
// one-hot vector.
func (s *Space) SqDistTo(assign []int, proto []float64) float64 {
	if len(proto) != s.Dim() || len(assign) != s.N {
		panic("actionspace: SqDistTo dimension mismatch")
	}
	var d float64
	for i, j := range assign {
		row := proto[i*s.M : (i+1)*s.M]
		for c, v := range row {
			if c == j {
				d += (1 - v) * (1 - v)
			} else {
				d += v * v
			}
		}
	}
	return d
}

// Feasible reports whether assign respects the capacity constraints.
func (s *Space) Feasible(assign []int) bool {
	if len(assign) != s.N {
		return false
	}
	counts := make([]int, s.M)
	for _, j := range assign {
		if j < 0 || j >= s.M {
			return false
		}
		counts[j]++
	}
	if s.Capacity != nil {
		for j, c := range counts {
			if c > s.Capacity[j] {
				return false
			}
		}
	}
	return true
}

// rowChoice is one column option for a row, with its distance contribution
// delta relative to the row's best column.
type rowChoice struct {
	col   int
	delta float64
}

// knnNode is a heap node in the k-smallest-sums enumeration: a vector of
// per-row pointers into the sorted choice lists plus the total delta.
type knnNode struct {
	delta    float64
	ptrs     []int16 // index into choices[i] per row
	frontier int     // rows < frontier are frozen (dedup rule)
}

// knnScratch is the reusable workspace of the k-smallest-sums search. It is
// owned by the Space, so a Space must not run KNearest searches from
// multiple goroutines concurrently (each agent owns its own Space, and the
// parallel experiment engine never shares agents across workers).
type knnScratch struct {
	choices []rowChoice // N·M backing, row i at [i·M, (i+1)·M)
	heap    []*knnNode  // binary min-heap by delta
	free    []*knnNode  // node pool
	counts  []int       // per-machine load buffer for feasibility checks
}

func (sc *knnScratch) get(n int) *knnNode {
	if l := len(sc.free); l > 0 {
		nd := sc.free[l-1]
		sc.free = sc.free[:l-1]
		return nd
	}
	return &knnNode{ptrs: make([]int16, n)}
}

func (sc *knnScratch) put(nd *knnNode) { sc.free = append(sc.free, nd) }

// heapPush inserts nd into the typed min-heap (no interface boxing).
func (sc *knnScratch) heapPush(nd *knnNode) {
	h := append(sc.heap, nd)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].delta <= h[i].delta {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	sc.heap = h
}

// heapPop removes and returns the minimum-delta node.
func (sc *knnScratch) heapPop() *knnNode {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].delta < h[small].delta {
			small = l
		}
		if r < len(h) && h[r].delta < h[small].delta {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	sc.heap = h
	return top
}

// maxExpansions bounds the search when capacity constraints make many
// combinations infeasible; without capacities every popped node is feasible
// and the bound is never approached.
const maxExpansions = 200000

// KNearest returns the k feasible assignments nearest to proto in squared
// Euclidean distance, nearest first. This is the exact solution of the
// paper's series of MIQP-NN problems (§3.2.1). Fewer than k results are
// returned only if the (capacity-constrained) space is exhausted or the
// expansion budget is hit.
//
// KNearest and KNearestInto reuse a search workspace owned by the Space
// and are therefore NOT safe for concurrent use on a shared Space; give
// each goroutine (each agent) its own Space.
func (s *Space) KNearest(proto []float64, k int) [][]int {
	return s.KNearestInto(proto, k, nil)
}

// KNearestInto is KNearest with caller-owned result storage: dst's backing
// slices are reused when large enough, so a training loop that calls it with
// the same dst every mini-batch performs no steady-state allocations. The
// returned slice (a resliced dst) and its contents are valid until the next
// call with the same dst.
func (s *Space) KNearestInto(proto []float64, k int, dst [][]int) [][]int {
	if len(proto) != s.Dim() {
		panic(fmt.Sprintf("actionspace: KNearest got dim %d want %d", len(proto), s.Dim()))
	}
	if k <= 0 {
		return dst[:0]
	}
	sc := &s.knn
	// Per-row sorted column choices. Within row i the squared distance of
	// choosing column j is 1 − 2·â_ij + ‖â_i‖²; the constant terms are
	// shared, so choices sort by −â_ij. Deltas store the exact distance
	// difference to the row optimum: Δ = 2(â_i,best − â_ij). M is small, so
	// an insertion sort is both allocation-free and fastest.
	if cap(sc.choices) < s.N*s.M {
		sc.choices = make([]rowChoice, s.N*s.M)
	}
	choices := sc.choices[:s.N*s.M]
	for i := 0; i < s.N; i++ {
		row := proto[i*s.M : (i+1)*s.M]
		cs := choices[i*s.M : (i+1)*s.M]
		for j := 0; j < s.M; j++ {
			cs[j] = rowChoice{col: j, delta: -2 * row[j]}
		}
		for a := 1; a < len(cs); a++ {
			x := cs[a]
			b := a - 1
			for b >= 0 && (cs[b].delta > x.delta || (cs[b].delta == x.delta && cs[b].col > x.col)) {
				cs[b+1] = cs[b]
				b--
			}
			cs[b+1] = x
		}
		base := cs[0].delta
		for j := range cs {
			cs[j].delta -= base
		}
	}

	// appendAssign materializes a pointer vector into dst, reusing backing
	// storage from previous calls where possible.
	appendAssign := func(ptrs []int16) {
		var a []int
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
			a = dst[len(dst)-1]
			if cap(a) >= s.N {
				a = a[:s.N]
				dst[len(dst)-1] = a
			} else {
				a = make([]int, s.N)
				dst[len(dst)-1] = a
			}
		} else {
			a = make([]int, s.N)
			dst = append(dst, a)
		}
		for i, p := range ptrs {
			a[i] = choices[i*s.M+int(p)].col
		}
	}

	if cap(sc.counts) < s.M {
		sc.counts = make([]int, s.M)
	}
	// feasible checks capacity directly on the pointer vector (columns are
	// valid by construction), reusing the counts buffer: the capacity-
	// constrained search is exactly the one that expands many nodes, so it
	// must not allocate per expansion.
	feasible := func(ptrs []int16) bool {
		if s.Capacity == nil {
			return true
		}
		counts := sc.counts[:s.M]
		for j := range counts {
			counts[j] = 0
		}
		for i, p := range ptrs {
			counts[choices[i*s.M+int(p)].col]++
		}
		for j, c := range counts {
			if c > s.Capacity[j] {
				return false
			}
		}
		return true
	}

	dst = dst[:0]
	root := sc.get(s.N)
	root.delta = 0
	root.frontier = 0
	for i := range root.ptrs {
		root.ptrs[i] = 0
	}
	sc.heapPush(root)
	expansions := 0
	for len(sc.heap) > 0 && len(dst) < k && expansions < maxExpansions {
		node := sc.heapPop()
		expansions++
		if feasible(node.ptrs) {
			appendAssign(node.ptrs)
		}
		// Children: advance one row pointer at or beyond the frontier. The
		// frontier rule generates each pointer vector exactly once.
		for r := node.frontier; r < s.N; r++ {
			p := node.ptrs[r]
			if int(p)+1 >= s.M {
				continue
			}
			child := sc.get(s.N)
			child.delta = node.delta - choices[r*s.M+int(p)].delta + choices[r*s.M+int(p)+1].delta
			child.frontier = r
			copy(child.ptrs, node.ptrs)
			child.ptrs[r]++
			sc.heapPush(child)
		}
		sc.put(node)
	}
	// Drain leftover heap nodes back into the pool for the next search.
	for _, nd := range sc.heap {
		sc.put(nd)
	}
	sc.heap = sc.heap[:0]
	return dst
}

// Nearest is the K=1 fast path: the single nearest feasible assignment.
// Without capacity constraints it is simply the per-row argmax.
func (s *Space) Nearest(proto []float64) []int {
	if s.Capacity == nil {
		return s.Decode(proto)
	}
	res := s.KNearest(proto, 1)
	if len(res) == 0 {
		panic("actionspace: no feasible assignment found")
	}
	return res[0]
}

// RelaxedRound implements the paper's fallback for very large cases: relax
// the integrality constraint (the relaxed optimum of the row subproblem is a
// simplex projection, whose mass concentrates on the largest entries) and
// round randomly with probability proportional to the positive part of each
// row. It trades exactness for O(N·M) time and is used in the scalability
// ablation.
func (s *Space) RelaxedRound(rng *rand.Rand, proto []float64) []int {
	if len(proto) != s.Dim() {
		panic("actionspace: RelaxedRound dimension mismatch")
	}
	assign := make([]int, s.N)
	for i := 0; i < s.N; i++ {
		row := proto[i*s.M : (i+1)*s.M]
		var sum float64
		for _, v := range row {
			if v > 0 {
				sum += v
			}
		}
		if sum <= 0 {
			assign[i] = rng.Intn(s.M)
			continue
		}
		r := rng.Float64() * sum
		acc := 0.0
		assign[i] = s.M - 1
		for j, v := range row {
			if v <= 0 {
				continue
			}
			acc += v
			if r < acc {
				assign[i] = j
				break
			}
		}
	}
	return assign
}

// MoveAction is the DQN baseline's restricted action: reassign a single
// thread to a machine (§3.2), giving |A| = N·M.
type MoveAction struct {
	Thread, Machine int
}

// ApplyMove returns a copy of assign with the move applied.
func ApplyMove(assign []int, m MoveAction) []int {
	out := append([]int(nil), assign...)
	out[m.Thread] = m.Machine
	return out
}

// MoveIndex maps a MoveAction to its flat index in [0, N·M).
func (s *Space) MoveIndex(m MoveAction) int { return m.Thread*s.M + m.Machine }

// MoveFromIndex inverts MoveIndex.
func (s *Space) MoveFromIndex(idx int) MoveAction {
	return MoveAction{Thread: idx / s.M, Machine: idx % s.M}
}
