package actionspace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSpace(4, 3)
	assign := []int{0, 2, 1, 2}
	flat := s.Encode(assign, nil)
	if len(flat) != 12 {
		t.Fatalf("dim %d", len(flat))
	}
	got := s.Decode(flat)
	for i := range assign {
		if got[i] != assign[i] {
			t.Fatalf("round trip %v -> %v", assign, got)
		}
	}
	// Each row one-hot.
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += flat[i*3+j]
		}
		if sum != 1 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestEncodeReusesDst(t *testing.T) {
	s := NewSpace(2, 2)
	dst := make([]float64, 4)
	dst[3] = 9 // stale garbage must be cleared
	out := s.Encode([]int{0, 0}, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Encode should reuse dst")
	}
	if out[3] != 0 {
		t.Fatal("Encode must clear stale values")
	}
}

func TestEncodePanicsOnBadMachine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSpace(1, 2).Encode([]int{5}, nil)
}

func TestRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSpace(10, 4)
	for trial := 0; trial < 20; trial++ {
		a := s.Random(rng)
		if !s.Feasible(a) {
			t.Fatalf("random assignment infeasible: %v", a)
		}
	}
}

func TestRandomRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := &Space{N: 6, M: 3, Capacity: []int{2, 2, 2}}
	for trial := 0; trial < 50; trial++ {
		a := s.Random(rng)
		if !s.Feasible(a) {
			t.Fatalf("capacity violated: %v", a)
		}
	}
}

func TestSqDistMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSpace(5, 4)
	proto := make([]float64, s.Dim())
	for i := range proto {
		proto[i] = rng.NormFloat64()
	}
	a := s.Random(rng)
	flat := s.Encode(a, nil)
	var want float64
	for i := range flat {
		d := flat[i] - proto[i]
		want += d * d
	}
	got := s.SqDistTo(a, proto)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("SqDistTo=%v explicit=%v", got, want)
	}
}

// bruteKNN enumerates all M^N assignments and returns the k nearest.
func bruteKNN(s *Space, proto []float64, k int) [][]int {
	type cand struct {
		assign []int
		d      float64
	}
	var all []cand
	assign := make([]int, s.N)
	var rec func(i int)
	rec = func(i int) {
		if i == s.N {
			if s.Feasible(assign) {
				all = append(all, cand{append([]int(nil), assign...), s.SqDistTo(assign, proto)})
			}
			return
		}
		for j := 0; j < s.M; j++ {
			assign[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	sort.SliceStable(all, func(a, b int) bool { return all[a].d < all[b].d })
	if k > len(all) {
		k = len(all)
	}
	out := make([][]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].assign
	}
	return out
}

// TestKNearestExactAgainstBruteForce is the core correctness test for the
// MIQP-NN substitute: the heap enumeration must return exactly the k-nearest
// set, in distance order, for random proto-actions.
func TestKNearestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(4) // up to 5 threads
		m := 2 + rng.Intn(3) // up to 4 machines
		s := NewSpace(n, m)
		proto := make([]float64, s.Dim())
		for i := range proto {
			proto[i] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(10)
		got := s.KNearest(proto, k)
		want := bruteKNN(s, proto, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results want %d", trial, len(got), len(want))
		}
		for i := range got {
			gd := s.SqDistTo(got[i], proto)
			wd := s.SqDistTo(want[i], proto)
			if math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("trial %d rank %d: got dist %v want %v (got %v)", trial, i, gd, wd, got[i])
			}
		}
		// Distances must be non-decreasing.
		for i := 1; i < len(got); i++ {
			if s.SqDistTo(got[i], proto)+1e-12 < s.SqDistTo(got[i-1], proto) {
				t.Fatalf("trial %d: results not sorted by distance", trial)
			}
		}
	}
}

func TestKNearestNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSpace(4, 3)
	proto := make([]float64, s.Dim())
	for i := range proto {
		proto[i] = rng.Float64()
	}
	res := s.KNearest(proto, 20)
	seen := map[string]bool{}
	for _, a := range res {
		key := ""
		for _, j := range a {
			key += string(rune('0' + j))
		}
		if seen[key] {
			t.Fatalf("duplicate assignment %v", a)
		}
		seen[key] = true
	}
}

func TestKNearestWithCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Proto strongly prefers machine 0 for all threads, but capacity forces
	// spreading.
	s := &Space{N: 4, M: 2, Capacity: []int{2, 4}}
	proto := make([]float64, s.Dim())
	for i := 0; i < s.N; i++ {
		proto[i*2] = 1.0 // machine 0 preferred
	}
	res := s.KNearest(proto, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, a := range res {
		if !s.Feasible(a) {
			t.Fatalf("infeasible result %v", a)
		}
	}
	want := bruteKNN(s, proto, 3)
	for i := range res {
		gd, wd := s.SqDistTo(res[i], proto), s.SqDistTo(want[i], proto)
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("rank %d: got dist %v want %v", i, gd, wd)
		}
	}
	_ = rng
}

func TestKNearestKLargerThanSpace(t *testing.T) {
	s := NewSpace(2, 2)
	proto := []float64{0.9, 0.1, 0.2, 0.8}
	res := s.KNearest(proto, 100)
	if len(res) != 4 { // 2^2 total assignments
		t.Fatalf("got %d results want 4", len(res))
	}
}

func TestNearestEqualsDecodeUnconstrained(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace(6, 4)
		proto := make([]float64, s.Dim())
		for i := range proto {
			proto[i] = rng.NormFloat64()
		}
		a, b := s.Nearest(proto), s.Decode(proto)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the first KNearest result is always at least as close as any
// random feasible assignment.
func TestKNearestFirstIsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace(5, 3)
		proto := make([]float64, s.Dim())
		for i := range proto {
			proto[i] = rng.NormFloat64() * 2
		}
		best := s.KNearest(proto, 1)[0]
		bd := s.SqDistTo(best, proto)
		for trial := 0; trial < 30; trial++ {
			r := s.Random(rng)
			if s.SqDistTo(r, proto) < bd-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxedRoundFeasibleAndBiased(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSpace(3, 3)
	proto := []float64{
		0.9, 0.05, 0.05,
		0.05, 0.9, 0.05,
		-1, -1, 1,
	}
	counts := make([]int, 3)
	for trial := 0; trial < 500; trial++ {
		a := s.RelaxedRound(rng, proto)
		if !s.Feasible(a) {
			t.Fatalf("infeasible %v", a)
		}
		if a[0] == 0 {
			counts[0]++
		}
		if a[1] == 1 {
			counts[1]++
		}
		if a[2] == 2 {
			counts[2]++
		}
	}
	// Thread 2 has only one positive entry: must always pick machine 2.
	if counts[2] != 500 {
		t.Fatalf("thread 2 should deterministically pick machine 2, got %d/500", counts[2])
	}
	if counts[0] < 400 || counts[1] < 400 {
		t.Fatalf("rounding not biased toward large entries: %v", counts)
	}
}

func TestRelaxedRoundAllNegativeRowsFallsBackToUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := NewSpace(1, 4)
	proto := []float64{-1, -2, -3, -4}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[s.RelaxedRound(rng, proto)[0]] = true
	}
	if len(seen) < 3 {
		t.Fatalf("expected near-uniform fallback, saw machines %v", seen)
	}
}

func TestMoveActionRoundTrip(t *testing.T) {
	s := NewSpace(7, 5)
	for th := 0; th < 7; th++ {
		for m := 0; m < 5; m++ {
			mv := MoveAction{Thread: th, Machine: m}
			idx := s.MoveIndex(mv)
			if idx < 0 || idx >= s.Dim() {
				t.Fatalf("index %d out of range", idx)
			}
			back := s.MoveFromIndex(idx)
			if back != mv {
				t.Fatalf("round trip %v -> %d -> %v", mv, idx, back)
			}
		}
	}
}

func TestApplyMoveDoesNotMutate(t *testing.T) {
	orig := []int{0, 1, 2}
	out := ApplyMove(orig, MoveAction{Thread: 1, Machine: 0})
	if orig[1] != 1 {
		t.Fatal("ApplyMove mutated input")
	}
	if out[1] != 0 || out[0] != 0 || out[2] != 2 {
		t.Fatalf("ApplyMove wrong: %v", out)
	}
}

func BenchmarkKNearestLarge(b *testing.B) {
	// Paper's large scale: N=100 threads, M=10 machines, K=8.
	rng := rand.New(rand.NewSource(9))
	s := NewSpace(100, 10)
	proto := make([]float64, s.Dim())
	for i := range proto {
		proto[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.KNearest(proto, 8)
	}
}
