package actionspace

import (
	"math/rand"
	"testing"
)

func machinesUsed(assign []int) int {
	seen := map[int]bool{}
	for _, m := range assign {
		seen[m] = true
	}
	return len(seen)
}

func TestRandomStratifiedCoversConsolidationSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSpace(100, 10)
	counts := map[int]int{}
	for trial := 0; trial < 2000; trial++ {
		a := s.RandomStratified(rng)
		if !s.Feasible(a) {
			t.Fatalf("infeasible: %v", a)
		}
		counts[machinesUsed(a)]++
	}
	// Every consolidation level from 1 machine to all 10 must appear with
	// non-trivial frequency (~200 each expected).
	for k := 1; k <= 10; k++ {
		if counts[k] < 50 {
			t.Fatalf("consolidation level %d sampled only %d/2000 times: %v", k, counts[k], counts)
		}
	}
}

func TestUniformRandomNeverConsolidatesAtScale(t *testing.T) {
	// The property motivating stratified sampling: with N=100, M=10,
	// uniform assignment draws essentially never use fewer than 8 machines.
	rng := rand.New(rand.NewSource(2))
	s := NewSpace(100, 10)
	minUsed := 10
	for trial := 0; trial < 2000; trial++ {
		if u := machinesUsed(s.Random(rng)); u < minUsed {
			minUsed = u
		}
	}
	if minUsed < 8 {
		t.Fatalf("uniform sampling unexpectedly consolidated to %d machines", minUsed)
	}
}

func TestRandomStratifiedHonorsCapacityFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &Space{N: 8, M: 4, Capacity: []int{2, 2, 2, 2}}
	for trial := 0; trial < 100; trial++ {
		if a := s.RandomStratified(rng); !s.Feasible(a) {
			t.Fatalf("capacity violated: %v", a)
		}
	}
}
