package multisim

// instHeap is the global event queue of the shared clock: a typed 4-ary
// min-heap over instances keyed by each instance's next-pending-event
// timestamp. It mirrors sim's zero-alloc event heap — entries live in a
// reusable slice, the 4-ary shape keeps the tree shallow — but holds one
// entry per *instance*, not per event: the per-event ordering inside an
// instance is already total (the instance's own (t, seq) heap), so the
// orchestrator only needs to merge N instance streams.
//
// (t, inst) is a total order — inst is unique per entry — so which
// instance advances next is completely determined by the instances' event
// schedules: same seed ⇒ same global event order, regardless of topology
// count or GOMAXPROCS (the orchestrator is single-goroutine).
type instEntry struct {
	t    float64
	inst int
}

type instHeap struct {
	e []instEntry
}

// less orders entries by time, breaking ties by instance index.
func instLess(a, b *instEntry) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.inst < b.inst
}

func (h *instHeap) len() int { return len(h.e) }

func (h *instHeap) reset() { h.e = h.e[:0] }

// top returns the root entry; the heap must be non-empty.
func (h *instHeap) top() instEntry { return h.e[0] }

func (h *instHeap) push(e instEntry) {
	h.e = append(h.e, e)
	i := len(h.e) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !instLess(&h.e[i], &h.e[p]) {
			break
		}
		h.e[i], h.e[p] = h.e[p], h.e[i]
		i = p
	}
}

func (h *instHeap) pop() instEntry {
	root := h.e[0]
	last := len(h.e) - 1
	h.e[0] = h.e[last]
	h.e = h.e[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return root
}

// fix replaces the root entry (whose instance just advanced and now has a
// new, necessarily-not-earlier next event) and restores heap order.
func (h *instHeap) fix(e instEntry) {
	h.e[0] = e
	h.siftDown(0)
}

func (h *instHeap) siftDown(i int) {
	n := len(h.e)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if instLess(&h.e[c], &h.e[min]) {
				min = c
			}
		}
		if !instLess(&h.e[min], &h.e[i]) {
			return
		}
		h.e[i], h.e[min] = h.e[min], h.e[i]
		i = min
	}
}
