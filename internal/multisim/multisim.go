// Package multisim is the cluster-scale scenario engine: a shared-clock
// orchestrator advancing N single-topology discrete-event simulations
// (sim.Sim) in global timestamp order over ONE cluster, so co-scheduled
// topologies genuinely contend for machine cores, worker slots and
// network. It follows the InstanceSimulator/ClusterSimulator pattern:
// composition over inheritance — each topology keeps its own sim.Sim with
// its own RNG, event queue and metrics, decomposed into step primitives
// (HasPendingEvents / PeekNextEventTime / ProcessNextEvent), while the
// orchestrator owns the policy of which instance advances next and the
// only deliberately shared state, a sim.ClusterState.
//
// Everything runs on one goroutine. Determinism is the design invariant:
// the global event order is a pure function of the scenario and its seed —
// two runs of the same scenario produce byte-identical results regardless
// of topology count, GOMAXPROCS or host load.
package multisim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// InstanceConfig describes one topology joining the shared cluster.
type InstanceConfig struct {
	// Name identifies the instance in results and slot accounting; must be
	// unique within a Multi.
	Name     string
	Top      *topology.Topology
	Arrivals map[string]workload.ArrivalProcess
	// Assign maps the topology's executors to machines of the shared
	// cluster. Slot capacity is validated cumulatively: each application
	// consumes one worker-process slot on every machine hosting at least
	// one of its executors.
	Assign []int
	Seed   int64
	// AckTimeoutMS enables tuple-replay fault tolerance (0 = off). Faulty
	// scenarios want it on, or orphaned tuples are dropped, not replayed.
	AckTimeoutMS float64
}

// Instance is one co-scheduled topology.
type Instance struct {
	Name string
	Sim  *sim.Sim
}

// Multi advances N topologies in global timestamp order over one cluster.
// Not safe for concurrent use; all stepping happens on the caller's
// goroutine.
type Multi struct {
	cl        *cluster.Cluster
	shared    *sim.ClusterState
	isolated  bool
	insts     []*Instance
	placement cluster.MultiAssignment

	heap   instHeap
	heapOK bool
	now    float64
	events int64
}

// New returns an empty orchestrator over cl. With isolated=true each
// instance gets private machine state — as if it ran alone on its own
// copy of the cluster — which is the baseline the cross-topology
// interference measurement compares against (and the mode the bitwise
// standalone-equivalence property is proven in). Slot capacity is
// validated in both modes.
func New(cl *cluster.Cluster, isolated bool) (*Multi, error) {
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	return &Multi{cl: cl, shared: sim.NewClusterState(cl), isolated: isolated}, nil
}

// Add builds, validates and deploys one topology instance. All Add calls
// must precede ScheduleClusterFailure and stepping.
func (m *Multi) Add(ic InstanceConfig) error {
	if ic.Name == "" {
		return fmt.Errorf("multisim: instance needs a name")
	}
	// Cumulative slot check: the new app must fit next to everything
	// already placed before any state is touched.
	trial := cluster.MultiAssignment{Apps: append([]cluster.AppPlacement(nil), m.placement.Apps...)}
	trial.Add(ic.Name, ic.Assign)
	if err := trial.Validate(m.cl); err != nil {
		return err
	}
	cfg := sim.DefaultConfig(ic.Top, m.cl, ic.Arrivals, ic.Seed)
	if !m.isolated {
		cfg.Shared = m.shared
	}
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if ic.AckTimeoutMS > 0 {
		s.EnableAckTimeout(ic.AckTimeoutMS)
	}
	if err := s.Deploy(ic.Assign); err != nil {
		return err
	}
	m.placement = trial
	m.insts = append(m.insts, &Instance{Name: ic.Name, Sim: s})
	m.heapOK = false
	return nil
}

// ScheduleClusterFailure declares a correlated failure: at simulated time
// atMS, machines[k] goes down for downMS[k]. The failure is scheduled in
// every resident instance — each orphans its own queued tuples on the
// failed machines — while the (idempotent) shared failure window also
// discards results of services in flight across topology boundaries.
// Call after all Add calls; later instances would miss the fault.
func (m *Multi) ScheduleClusterFailure(atMS float64, machines []int, downMS []float64) error {
	if len(machines) != len(downMS) {
		return fmt.Errorf("multisim: %d machines but %d outage durations", len(machines), len(downMS))
	}
	if len(m.insts) == 0 {
		return fmt.Errorf("multisim: no instances to fail (schedule faults after Add)")
	}
	for _, inst := range m.insts {
		for k, mach := range machines {
			if err := inst.Sim.ScheduleFailure(mach, atMS, downMS[k]); err != nil {
				return err
			}
		}
	}
	m.heapOK = false
	return nil
}

// ensureHeap (re)builds the instance heap from each instance's next
// pending event. Cheap — O(N) over instances, not events — and only done
// after Add/fault-scheduling invalidated the cached keys.
func (m *Multi) ensureHeap() {
	if m.heapOK {
		return
	}
	m.heap.reset()
	for i, inst := range m.insts {
		if inst.Sim.HasPendingEvents() {
			m.heap.push(instEntry{t: inst.Sim.PeekNextEventTime(), inst: i})
		}
	}
	m.heapOK = true
}

// Step processes the globally earliest pending event across all
// instances. Returns false when no events remain anywhere.
func (m *Multi) Step() bool {
	m.ensureHeap()
	if m.heap.len() == 0 {
		return false
	}
	e := m.heap.top()
	m.advance(e)
	return true
}

// advance processes root entry e's next event and restores the heap.
func (m *Multi) advance(e instEntry) {
	s := m.insts[e.inst].Sim
	s.ProcessNextEvent()
	m.events++
	m.now = e.t
	if s.HasPendingEvents() {
		// Events only move forward in time, so the refreshed key can only
		// sink — a root fix, no re-push.
		m.heap.fix(instEntry{t: s.PeekNextEventTime(), inst: e.inst})
	} else {
		m.heap.pop()
	}
}

// RunUntil advances the whole cluster to global time tMS, then finalizes
// every instance's clock so their window metrics cover the horizon.
func (m *Multi) RunUntil(tMS float64) {
	m.ensureHeap()
	for m.heap.len() > 0 {
		e := m.heap.top()
		if e.t > tMS {
			break
		}
		m.advance(e)
	}
	if m.now < tMS {
		m.now = tMS
	}
	for _, inst := range m.insts {
		inst.Sim.AdvanceTo(tMS)
	}
}

// Now returns the global simulation time in milliseconds.
func (m *Multi) Now() float64 { return m.now }

// EventsProcessed returns the total number of events processed across all
// instances — a deterministic run signature (and the benchmark numerator).
func (m *Multi) EventsProcessed() int64 { return m.events }

// Instances returns the resident instances in Add order.
func (m *Multi) Instances() []*Instance { return m.insts }

// Result summarizes one topology after a run.
type Result struct {
	Name string
	// StabilizedMS is the tuple-weighted mean latency over the trailing
	// measurement windows (the paper's stabilized reading).
	StabilizedMS float64
	P50MS        float64
	P99MS        float64
	Completed    int64
	Emitted      int64
	Replayed     int64
	Dropped      int64
}

// Results reports per-topology outcomes in Add order, averaging each
// instance's trailing lastWindows metric windows (≤0 means 5, §3.1).
func (m *Multi) Results(lastWindows int) []Result {
	if lastWindows <= 0 {
		lastWindows = 5
	}
	out := make([]Result, 0, len(m.insts))
	for _, inst := range m.insts {
		s := inst.Sim
		out = append(out, Result{
			Name:         inst.Name,
			StabilizedMS: s.AvgOverLastWindows(lastWindows),
			P50MS:        s.LatencyPercentile(50),
			P99MS:        s.LatencyPercentile(99),
			Completed:    s.Completed(),
			Emitted:      s.Emitted(),
			Replayed:     s.Replayed(),
			Dropped:      s.Dropped(),
		})
	}
	return out
}
