package multisim

import (
	"strings"
	"testing"
)

const sampleNDJSON = `{"scenario": {"name": "smoke", "seed": 42, "duration_ms": 30000, "ack_timeout_ms": 5000, "cluster": {"machines": 4, "speed_factors": [1.0, 0.9]}}}
{"topology": {"app": "cq-small", "scheduler": "greedy"}}
{"topology": {"app": "cq-small", "name": "cq-b", "trace": {"kind": "bursty", "rate": 500}}}

{"fault": {"at_ms": 10000, "machine": 2, "radius": 2, "down_ms": 2000, "jitter_ms": 500}}
`

func TestLoadNDJSON(t *testing.T) {
	sc, err := Load(strings.NewReader(sampleNDJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "smoke" || sc.Seed != 42 || sc.DurationMS != 30000 {
		t.Fatalf("header fields wrong: %+v", sc)
	}
	if len(sc.Topologies) != 2 || len(sc.Faults) != 1 {
		t.Fatalf("got %d topologies, %d faults", len(sc.Topologies), len(sc.Faults))
	}
	if sc.Topologies[1].Name != "cq-b" || sc.Topologies[1].Trace.Kind != "bursty" {
		t.Fatalf("second topology wrong: %+v", sc.Topologies[1])
	}
	if sc.Faults[0].Radius != 2 || sc.Faults[0].JitterMS != 500 {
		t.Fatalf("fault wrong: %+v", sc.Faults[0])
	}
	// The loaded scenario is actually runnable.
	m, err := Build(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	m.RunUntil(sc.DurationMS)
	if m.EventsProcessed() == 0 {
		t.Fatal("scenario ran no events")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        `{"topology": {"app": "wc"}}`,
		"empty":            ``,
		"double header":    "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1, \"cluster\": {\"machines\": 1}}}\n{\"scenario\": {\"name\": \"b\", \"duration_ms\": 1, \"cluster\": {\"machines\": 1}}}",
		"unknown wrapper":  `{"mystery": {}}`,
		"unknown field":    `{"scenario": {"name": "a", "duration_ms": 1, "cluster": {"machines": 1}, "banana": 3}}`,
		"malformed json":   `{"scenario":`,
		"no topologies":    `{"scenario": {"name": "a", "duration_ms": 1000, "cluster": {"machines": 2}}}`,
		"unknown app":      "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"nope\"}}",
		"dup name":         "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"wc\"}}\n{\"topology\": {\"app\": \"wc\"}}",
		"bad scheduler":    "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"wc\", \"scheduler\": \"oracle\"}}",
		"bad trace kind":   "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"wc\", \"trace\": {\"kind\": \"chaotic\"}}}",
		"fault OOB":        "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"wc\"}}\n{\"fault\": {\"at_ms\": 1, \"machine\": 7, \"down_ms\": 1}}",
		"radius too large": "{\"scenario\": {\"name\": \"a\", \"duration_ms\": 1000, \"cluster\": {\"machines\": 2}}}\n{\"topology\": {\"app\": \"wc\"}}\n{\"fault\": {\"at_ms\": 1, \"machine\": 0, \"radius\": 3, \"down_ms\": 1}}",
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTraceKinds(t *testing.T) {
	for _, kind := range []string{"", "steady", "shift", "diurnal", "bursty"} {
		ts := &TraceSpec{Kind: kind}
		p, err := ts.process(100, 60_000)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if r := p.RateAt(0); r <= 0 {
			t.Fatalf("%q: non-positive rate %v at t=0", kind, r)
		}
	}
	// Shift actually shifts, at the default 1/3-duration point.
	p, _ := (&TraceSpec{Kind: "shift", Rate: 100}).process(0, 60_000)
	if p.RateAt(0) != 100 || p.RateAt(30_000) != 150 {
		t.Fatalf("shift defaults wrong: %v / %v", p.RateAt(0), p.RateAt(30_000))
	}
}

// TestScenarioWithTrainedScheduler: a scenario can place a topology with
// a trained DRL scheduler end-to-end — the DRL-in-scenarios follow-on.
func TestScenarioWithTrainedScheduler(t *testing.T) {
	doc := `{"scenario": {"name": "drl", "seed": 42, "duration_ms": 30000, "train": 25, "cluster": {"machines": 4}}}
{"topology": {"app": "cq-small", "scheduler": "ac"}}
{"topology": {"app": "wc", "scheduler": "greedy"}}
`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	setups, cl, err := sc.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if setups[0].Scheduler != "Actor-critic-based DRL" {
		t.Fatalf("subject scheduler %q", setups[0].Scheduler)
	}
	m, err := BuildInstances(sc, setups, cl, false)
	if err != nil {
		t.Fatal(err)
	}
	m.RunUntil(sc.DurationMS)
	r := m.Results(5)[0]
	if r.Completed == 0 {
		t.Fatal("DRL-placed topology completed no tuples")
	}
}

// TestScenarioTrainedDeterminism: resolving the same DRL scenario twice
// yields identical placements (training is a pure function of the spec).
func TestScenarioTrainedDeterminism(t *testing.T) {
	doc := `{"scenario": {"name": "drl", "seed": 7, "duration_ms": 10000, "cluster": {"machines": 4}}}
{"topology": {"app": "cq-small", "scheduler": "dqn", "train": 25}}
`
	resolve := func() []int {
		sc, err := Load(strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		setups, _, err := sc.Instances()
		if err != nil {
			t.Fatal(err)
		}
		return setups[0].Assign
	}
	a, b := resolve(), resolve()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trained placement diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestScenarioNegativeTrainRejected(t *testing.T) {
	docs := []string{
		`{"scenario": {"name": "a", "duration_ms": 1000, "train": -1, "cluster": {"machines": 2}}}` + "\n" + `{"topology": {"app": "wc"}}`,
		`{"scenario": {"name": "a", "duration_ms": 1000, "cluster": {"machines": 2}}}` + "\n" + `{"topology": {"app": "wc", "train": -5}}`,
	}
	for i, doc := range docs {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("case %d: negative train budget accepted", i)
		}
	}
}
