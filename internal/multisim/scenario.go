package multisim

// Scenario specs: a small declarative format for cluster-scale runs — the
// topology mix, the cluster shape (including heterogeneous machine
// speeds), per-topology arrival traces, and a correlated fault schedule.
// Serialized as NDJSON so scenarios diff line-by-line and stream: one
// JSON object per line, each wrapping exactly one of
//
//	{"scenario": { ...header: name, seed, duration, cluster... }}
//	{"topology": { ...one topology: app, scheduler, trace... }}
//	{"fault":    { ...one correlated failure... }}
//
// The header line comes first; topology and fault lines follow in any
// order. See examples/scenarios/ for runnable specs.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ClusterSpec shapes the shared cluster. Zero-valued fields keep the
// paper-testbed defaults (10 slots, 2 worker cores, 1 Gbps).
type ClusterSpec struct {
	Machines int `json:"machines"`
	Slots    int `json:"slots,omitempty"`
	Cores    int `json:"cores,omitempty"`
	// SpeedFactors assigns heterogeneous CPU speeds, cycled across
	// machines (machine i gets SpeedFactors[i % len]). Empty = all 1.0.
	SpeedFactors []float64 `json:"speed_factors,omitempty"`
}

// build materializes the cluster.
func (cs *ClusterSpec) build() *cluster.Cluster {
	c := cluster.NewUniform(cs.Machines)
	for i, mach := range c.Machines {
		if cs.Slots > 0 {
			mach.Slots = cs.Slots
		}
		if cs.Cores > 0 {
			mach.Cores = cs.Cores
		}
		if len(cs.SpeedFactors) > 0 {
			mach.SpeedFactor = cs.SpeedFactors[i%len(cs.SpeedFactors)]
		}
	}
	return c
}

// TraceSpec selects a topology's arrival trace. Rate 0 uses the
// application's default aggregate rate; unset tuning fields get the
// defaults noted per kind.
type TraceSpec struct {
	// Kind: "steady" (default), "shift" (step ×Factor at AtMS, the
	// examples/workloadshift scenario), "diurnal" (sine around Rate with
	// Amplitude over PeriodMS), or "bursty" (square wave: ×Factor for
	// BurstMS at each PeriodMS cycle start).
	Kind      string  `json:"kind"`
	Rate      float64 `json:"rate,omitempty"`
	Factor    float64 `json:"factor,omitempty"`    // shift/bursty multiplier (default 1.5 / 2.0)
	AtMS      float64 `json:"at_ms,omitempty"`     // shift time (default 1/3 of the run)
	PeriodMS  float64 `json:"period_ms,omitempty"` // diurnal/bursty cycle (default 300000 / 60000)
	Amplitude float64 `json:"amplitude,omitempty"` // diurnal swing fraction (default 0.4)
	BurstMS   float64 `json:"burst_ms,omitempty"`  // burst duration (default 10000)
}

// process materializes the arrival process, given the app's default
// aggregate rate and the scenario duration (for the shift default).
func (ts *TraceSpec) process(baseRate, durationMS float64) (workload.ArrivalProcess, error) {
	rate := ts.Rate
	if rate <= 0 {
		rate = baseRate
	}
	def := func(v, d float64) float64 {
		if v > 0 {
			return v
		}
		return d
	}
	switch ts.Kind {
	case "", "steady":
		return workload.ConstantRate{PerSecond: rate}, nil
	case "shift":
		return workload.StepRate{Base: rate, Factor: def(ts.Factor, 1.5), AtMS: def(ts.AtMS, durationMS/3)}, nil
	case "diurnal":
		return workload.SineRate{Base: rate, Amplitude: def(ts.Amplitude, 0.4), PeriodMS: def(ts.PeriodMS, 300_000)}, nil
	case "bursty":
		return workload.BurstRate{Base: rate, Factor: def(ts.Factor, 2.0), PeriodMS: def(ts.PeriodMS, 60_000), BurstMS: def(ts.BurstMS, 10_000)}, nil
	default:
		return nil, fmt.Errorf("multisim: unknown trace kind %q (want steady|shift|diurnal|bursty)", ts.Kind)
	}
}

// TopologySpec places one application in the scenario.
type TopologySpec struct {
	// App: cq-small | cq-medium | cq-large | log | wc.
	App string `json:"app"`
	// Name defaults to App; must be unique (two instances of the same app
	// need explicit names).
	Name string `json:"name,omitempty"`
	// Scheduler places the topology's executors: any name registered in
	// the sched registry — default (round-robin, the zero value), greedy,
	// traffic, random, or the trained ones (model, dqn, ac), which are
	// trained on the topology's own analytic model before placement.
	Scheduler string     `json:"scheduler,omitempty"`
	Trace     *TraceSpec `json:"trace,omitempty"` // nil = steady at the app default rate
	// Train overrides the training budget for trainable schedulers
	// (offline samples; 0 = the scenario-level train budget, which itself
	// defaults to the scheduler's own default).
	Train int `json:"train,omitempty"`
	// Seed overrides the instance seed (0 = derived from the scenario
	// seed and the topology's position).
	Seed int64 `json:"seed,omitempty"`
}

// FaultSpec is one correlated machine failure: Radius consecutive
// machines starting at Machine all fail at AtMS, each recovering after
// DownMS plus its own seeded jitter in [0, JitterMS) — correlated onset,
// staggered recovery, like a rack power event.
type FaultSpec struct {
	AtMS     float64 `json:"at_ms"`
	Machine  int     `json:"machine"`
	Radius   int     `json:"radius,omitempty"` // blast radius in machines (default 1)
	DownMS   float64 `json:"down_ms"`
	JitterMS float64 `json:"jitter_ms,omitempty"`
}

// expand resolves the blast radius into concrete (machine, outage) pairs,
// drawing recovery jitter from the scenario's fault RNG.
func (f *FaultSpec) expand(machines int, rng *rand.Rand) ([]int, []float64) {
	r := f.Radius
	if r < 1 {
		r = 1
	}
	ms := make([]int, r)
	downs := make([]float64, r)
	for k := 0; k < r; k++ {
		ms[k] = (f.Machine + k) % machines
		downs[k] = f.DownMS
		if f.JitterMS > 0 {
			downs[k] += f.JitterMS * rng.Float64()
		}
	}
	return ms, downs
}

// Scenario is a complete cluster-scale run description.
type Scenario struct {
	Name       string  `json:"name"`
	Seed       int64   `json:"seed"`
	DurationMS float64 `json:"duration_ms"`
	// AckTimeoutMS enables tuple replay in every topology (0 = off;
	// scenarios with faults usually want it on).
	AckTimeoutMS float64 `json:"ack_timeout_ms,omitempty"`
	// Train is the default training budget for topologies placed by
	// trainable schedulers (0 = each scheduler's own default).
	Train   int         `json:"train,omitempty"`
	Cluster ClusterSpec `json:"cluster"`

	// Topologies and Faults come from their own NDJSON lines, not the
	// header object.
	Topologies []TopologySpec `json:"-"`
	Faults     []FaultSpec    `json:"-"`
}

// Validate checks the scenario is buildable, with errors naming the
// offending line's content rather than failing deep inside Build.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("multisim: scenario needs a name")
	}
	if sc.DurationMS <= 0 {
		return fmt.Errorf("multisim: scenario %q: duration_ms must be positive", sc.Name)
	}
	if sc.Cluster.Machines <= 0 {
		return fmt.Errorf("multisim: scenario %q: cluster.machines must be positive", sc.Name)
	}
	if sc.Train < 0 {
		return fmt.Errorf("multisim: scenario %q: negative train budget", sc.Name)
	}
	for _, f := range sc.Cluster.SpeedFactors {
		if f <= 0 {
			return fmt.Errorf("multisim: scenario %q: non-positive speed factor %v", sc.Name, f)
		}
	}
	if len(sc.Topologies) == 0 {
		return fmt.Errorf("multisim: scenario %q has no topologies", sc.Name)
	}
	names := map[string]bool{}
	for i, ts := range sc.Topologies {
		if _, err := systemFor(ts.App); err != nil {
			return fmt.Errorf("multisim: scenario %q topology %d: %w", sc.Name, i, err)
		}
		name := ts.Name
		if name == "" {
			name = ts.App
		}
		if names[name] {
			return fmt.Errorf("multisim: scenario %q: duplicate topology name %q (give repeated apps explicit names)", sc.Name, name)
		}
		names[name] = true
		if ts.Scheduler != "" && !sched.Default.Has(ts.Scheduler) {
			return fmt.Errorf("multisim: scenario %q topology %q: unknown scheduler %q (want one of %s)",
				sc.Name, name, ts.Scheduler, strings.Join(sched.Names(), "|"))
		}
		if ts.Train < 0 {
			return fmt.Errorf("multisim: scenario %q topology %q: negative train budget", sc.Name, name)
		}
		if ts.Trace != nil {
			if _, err := ts.Trace.process(1, sc.DurationMS); err != nil {
				return fmt.Errorf("multisim: scenario %q topology %q: %w", sc.Name, name, err)
			}
		}
	}
	for i, f := range sc.Faults {
		if f.Machine < 0 || f.Machine >= sc.Cluster.Machines {
			return fmt.Errorf("multisim: scenario %q fault %d: machine %d out of range [0,%d)", sc.Name, i, f.Machine, sc.Cluster.Machines)
		}
		if f.Radius > sc.Cluster.Machines {
			return fmt.Errorf("multisim: scenario %q fault %d: radius %d exceeds cluster size %d", sc.Name, i, f.Radius, sc.Cluster.Machines)
		}
		if f.AtMS < 0 || f.DownMS < 0 || f.JitterMS < 0 {
			return fmt.Errorf("multisim: scenario %q fault %d: negative time", sc.Name, i)
		}
	}
	return nil
}

// systemFor maps a scenario app name to a freshly built benchmark system.
func systemFor(app string) (*apps.System, error) {
	switch app {
	case "cq-small":
		return apps.ContinuousQueries(apps.Small)
	case "cq-medium":
		return apps.ContinuousQueries(apps.Medium)
	case "cq-large":
		return apps.ContinuousQueries(apps.Large)
	case "log":
		return apps.LogStream()
	case "wc":
		return apps.WordCount()
	default:
		return nil, fmt.Errorf("unknown app %q (want cq-small|cq-medium|cq-large|log|wc)", app)
	}
}

// Load parses an NDJSON scenario. Unknown wrapper keys and malformed
// lines are errors; blank lines are skipped.
func Load(r io.Reader) (*Scenario, error) {
	type line struct {
		Scenario *Scenario     `json:"scenario"`
		Topology *TopologySpec `json:"topology"`
		Fault    *FaultSpec    `json:"fault"`
	}
	var sc *Scenario
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		raw := scan.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&l); err != nil {
			return nil, fmt.Errorf("multisim: scenario line %d: %w", lineNo, err)
		}
		switch {
		case l.Scenario != nil:
			if sc != nil {
				return nil, fmt.Errorf("multisim: scenario line %d: second scenario header", lineNo)
			}
			sc = l.Scenario
		case l.Topology != nil:
			if sc == nil {
				return nil, fmt.Errorf("multisim: scenario line %d: topology before scenario header", lineNo)
			}
			sc.Topologies = append(sc.Topologies, *l.Topology)
		case l.Fault != nil:
			if sc == nil {
				return nil, fmt.Errorf("multisim: scenario line %d: fault before scenario header", lineNo)
			}
			sc.Faults = append(sc.Faults, *l.Fault)
		default:
			return nil, fmt.Errorf("multisim: scenario line %d: want one of scenario|topology|fault", lineNo)
		}
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("multisim: reading scenario: %w", err)
	}
	if sc == nil {
		return nil, fmt.Errorf("multisim: no scenario header line")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// LoadFile parses an NDJSON scenario from a file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// InstanceSetup is one resolved topology of a scenario: everything needed
// to add it to a Multi — or, for loadgen's replay mode, to drive the same
// arrival trace against a live daemon.
type InstanceSetup struct {
	Name      string
	App       string
	Scheduler string
	Top       *topology.Topology
	Arrivals  map[string]workload.ArrivalProcess
	Assign    []int
	Seed      int64

	// TrainMS and ScheduleNS record the wall-clock cost of training the
	// scheduler (zero for training-free ones) and of the final Schedule
	// call. Diagnostics only: they vary run to run and appear in no
	// deterministic output.
	TrainMS    float64
	ScheduleNS int64
}

// Instances resolves the scenario: builds the shared cluster, maps each
// topology spec to its application, materializes its trace, and runs its
// scheduler through the sched registry. Trainable schedulers (model,
// dqn, ac) are trained here on the topology's own analytic model, fully
// sequentially, so the resulting placement is a pure function of the
// scenario spec — the same determinism contract the training-free
// schedulers have always had.
func (sc *Scenario) Instances() ([]InstanceSetup, *cluster.Cluster, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	cl := sc.Cluster.build()
	setups := make([]InstanceSetup, 0, len(sc.Topologies))
	for i, ts := range sc.Topologies {
		sys, err := systemFor(ts.App)
		if err != nil {
			return nil, nil, err
		}
		name := ts.Name
		if name == "" {
			name = ts.App
		}
		seed := ts.Seed
		if seed == 0 {
			seed = sc.Seed + 1000*int64(i+1)
		}
		trace := ts.Trace
		if trace == nil {
			trace = &TraceSpec{}
		}
		proc, err := trace.process(sys.BaseRate, sc.DurationMS)
		if err != nil {
			return nil, nil, err
		}
		arrivals := make(map[string]workload.ArrivalProcess, len(sys.Arrivals))
		for spout := range sys.Arrivals {
			arrivals[spout] = proc
		}
		schedName := ts.Scheduler
		if schedName == "" {
			schedName = "default"
		}
		budget := ts.Train
		if budget == 0 {
			budget = sc.Train
		}
		s, err := sched.New(schedName, sched.Config{
			Top: sys.Top, Cl: cl, Arrivals: arrivals,
			Seed: seed, TrainBudget: budget, Workers: 1,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("multisim: scenario %q topology %q: %w", sc.Name, name, err)
		}
		var trainMS float64
		if tr, ok := s.(sched.Trainable); ok {
			t0 := time.Now()
			if err := tr.Train(budget); err != nil {
				return nil, nil, fmt.Errorf("multisim: training %q for %q: %w", schedName, name, err)
			}
			trainMS = float64(time.Since(t0).Nanoseconds()) / 1e6
		}
		e := &sim.Env{Top: sys.Top, Cl: cl, Arrivals: arrivals, Seed: seed}
		t0 := time.Now()
		assign, err := s.Schedule(e)
		schedNS := time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, nil, fmt.Errorf("multisim: scheduling %q: %w", name, err)
		}
		setups = append(setups, InstanceSetup{
			Name: name, App: ts.App, Scheduler: s.Name(),
			Top: sys.Top, Arrivals: arrivals, Assign: assign, Seed: seed,
			TrainMS: trainMS, ScheduleNS: schedNS,
		})
	}
	return setups, cl, nil
}

// Build constructs the ready-to-run orchestrator: instances added in spec
// order, then the fault schedule expanded with seeded recovery jitter.
// With isolated=true the same scenario runs without cross-topology
// contention (the interference baseline).
func Build(sc *Scenario, isolated bool) (*Multi, error) {
	setups, cl, err := sc.Instances()
	if err != nil {
		return nil, err
	}
	return BuildInstances(sc, setups, cl, isolated)
}

// BuildInstances assembles the orchestrator from already-resolved
// instances, so callers comparing contended vs isolated builds (or
// inspecting placements before running) resolve — and train — each
// topology's scheduler exactly once.
func BuildInstances(sc *Scenario, setups []InstanceSetup, cl *cluster.Cluster, isolated bool) (*Multi, error) {
	m, err := New(cl, isolated)
	if err != nil {
		return nil, err
	}
	for _, su := range setups {
		if err := m.Add(InstanceConfig{
			Name: su.Name, Top: su.Top, Arrivals: su.Arrivals,
			Assign: su.Assign, Seed: su.Seed, AckTimeoutMS: sc.AckTimeoutMS,
		}); err != nil {
			return nil, err
		}
	}
	// One fault RNG for the whole schedule: jitter draws are a pure
	// function of the scenario seed and fault order, identical across
	// contended and isolated builds.
	frng := rand.New(rand.NewSource(sc.Seed ^ 0x5CE17A11))
	for _, f := range sc.Faults {
		machines, downs := f.expand(cl.Size(), frng)
		if err := m.ScheduleClusterFailure(f.AtMS, machines, downs); err != nil {
			return nil, err
		}
	}
	return m, nil
}
