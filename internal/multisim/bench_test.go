package multisim

import (
	"fmt"
	"testing"
)

// benchMulti builds an n-topology contended cluster at steady state.
func benchMulti(b *testing.B, n int) *Multi {
	apps := []string{"cq-small", "wc", "log", "cq-medium"}
	sc := &Scenario{
		Name:       "bench",
		Seed:       1,
		DurationMS: 1e18, // stepping is driven manually; no horizon
		Cluster:    ClusterSpec{Machines: 10},
	}
	for i := 0; i < n; i++ {
		sc.Topologies = append(sc.Topologies, TopologySpec{
			App:  apps[i%len(apps)],
			Name: fmt.Sprintf("%s-%d", apps[i%len(apps)], i),
		})
	}
	m, err := Build(sc, false)
	if err != nil {
		b.Fatal(err)
	}
	// Reach steady state so the benchmark measures the equilibrium event
	// mix, with queues and heaps at their working size.
	m.RunUntil(10_000)
	return m
}

// BenchmarkClusterStep measures the shared-clock hot path — one global
// event processed through the instance heap plus the owning instance's
// event heap — as topology count grows. The events/sec throughput and
// allocs/op here are PERFORMANCE.md §9's table.
func BenchmarkClusterStep(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("topologies=%d", n), func(b *testing.B) {
			m := benchMulti(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !m.Step() {
					b.Fatal("ran out of events")
				}
			}
		})
	}
}
