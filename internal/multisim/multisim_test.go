package multisim

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
)

// mixedScenario is the reference 4-topology scenario the determinism and
// interference tests share: full-rate apps packed onto 6 machines with
// heterogeneous speeds, a correlated 2-machine failure, and all four
// trace kinds exercised.
func mixedScenario() *Scenario {
	return &Scenario{
		Name:         "mixed4-test",
		Seed:         7,
		DurationMS:   40_000,
		AckTimeoutMS: 5_000,
		Cluster:      ClusterSpec{Machines: 6, SpeedFactors: []float64{1.0, 0.85, 1.15}},
		Topologies: []TopologySpec{
			{App: "cq-small", Scheduler: "greedy"},
			{App: "cq-medium", Scheduler: "default", Trace: &TraceSpec{Kind: "shift", Factor: 1.3, AtMS: 15_000}},
			{App: "log", Scheduler: "traffic", Trace: &TraceSpec{Kind: "diurnal", PeriodMS: 20_000}},
			{App: "wc", Scheduler: "default", Trace: &TraceSpec{Kind: "bursty", PeriodMS: 10_000, BurstMS: 2_000}},
		},
		Faults: []FaultSpec{{AtMS: 20_000, Machine: 1, Radius: 2, DownMS: 3_000, JitterMS: 1_000}},
	}
}

// signature folds a run into a comparable string: per-topology results
// plus the total event count. Byte equality of signatures is the
// determinism bar.
func signature(m *Multi) string {
	return fmt.Sprintf("%+v events=%d", m.Results(5), m.EventsProcessed())
}

func runScenario(t *testing.T, sc *Scenario, isolated bool) (*Multi, string) {
	t.Helper()
	m, err := Build(sc, isolated)
	if err != nil {
		t.Fatal(err)
	}
	m.RunUntil(sc.DurationMS)
	return m, signature(m)
}

func TestScenarioDeterminism(t *testing.T) {
	sc := mixedScenario()
	_, first := runScenario(t, sc, false)
	_, second := runScenario(t, sc, false)
	if first != second {
		t.Fatalf("two runs of the same scenario diverged:\n%s\n%s", first, second)
	}

	t.Run("gomaxprocs", func(t *testing.T) {
		// The orchestrator is single-goroutine; scheduler parallelism must
		// not leak into event order.
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		_, again := runScenario(t, sc, false)
		if again != first {
			t.Fatalf("GOMAXPROCS=1 run diverged:\n%s\n%s", first, again)
		}
	})
}

// TestIsolatedMatchesStandalone is the bitwise property: with
// cross-topology contention disabled (isolated mode), each co-scheduled
// topology must behave exactly as a standalone sim.Sim with the same
// configuration — the orchestration layer itself perturbs nothing.
func TestIsolatedMatchesStandalone(t *testing.T) {
	sc := mixedScenario()
	sc.Faults = nil // standalone mirror below schedules no faults
	setups, cl, err := sc.Instances()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cl, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, su := range setups {
		if err := m.Add(InstanceConfig{
			Name: su.Name, Top: su.Top, Arrivals: su.Arrivals,
			Assign: su.Assign, Seed: su.Seed, AckTimeoutMS: sc.AckTimeoutMS,
		}); err != nil {
			t.Fatal(err)
		}
	}
	m.RunUntil(sc.DurationMS)

	for i, su := range setups {
		cfg := sim.DefaultConfig(su.Top, cl, su.Arrivals, su.Seed)
		solo, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		solo.EnableAckTimeout(sc.AckTimeoutMS)
		if err := solo.Deploy(su.Assign); err != nil {
			t.Fatal(err)
		}
		solo.RunUntil(sc.DurationMS)

		co := m.Instances()[i].Sim
		if co.Completed() != solo.Completed() || co.Emitted() != solo.Emitted() ||
			co.Replayed() != solo.Replayed() || co.Dropped() != solo.Dropped() {
			t.Fatalf("%s: counters diverged: co (c=%d e=%d r=%d d=%d) solo (c=%d e=%d r=%d d=%d)",
				su.Name, co.Completed(), co.Emitted(), co.Replayed(), co.Dropped(),
				solo.Completed(), solo.Emitted(), solo.Replayed(), solo.Dropped())
		}
		if !reflect.DeepEqual(co.Windows(), solo.Windows()) {
			t.Fatalf("%s: window metrics diverged from standalone run", su.Name)
		}
		if co.LatencyPercentile(99) != solo.LatencyPercentile(99) {
			t.Fatalf("%s: p99 diverged: %v vs %v", su.Name, co.LatencyPercentile(99), solo.LatencyPercentile(99))
		}
	}
}

// TestContentionInterference asserts the engine's raison d'être: the same
// scenario is measurably slower co-scheduled than isolated, because the
// topologies share cores, crowding and network congestion for real.
func TestContentionInterference(t *testing.T) {
	sc := mixedScenario()
	sc.Faults = nil // compare steady-state latency, not recovery noise
	contended, _ := runScenario(t, sc, false)
	isolated, _ := runScenario(t, sc, true)

	var sumCo, sumIso float64
	for i, rc := range contended.Results(3) {
		ri := isolated.Results(3)[i]
		if rc.Completed == 0 || ri.Completed == 0 {
			t.Fatalf("topology %s completed no tuples (co=%d iso=%d)", rc.Name, rc.Completed, ri.Completed)
		}
		sumCo += rc.StabilizedMS
		sumIso += ri.StabilizedMS
	}
	if sumCo <= sumIso*1.02 {
		t.Fatalf("no measurable cross-topology interference: contended %.3fms vs isolated %.3fms", sumCo, sumIso)
	}
}

// TestCorrelatedFaultHitsEveryTopology: a cluster failure orphans tuples
// in every resident topology, and with ack timeouts on each replays.
func TestCorrelatedFaultHitsEveryTopology(t *testing.T) {
	sc := mixedScenario()
	m, _ := runScenario(t, sc, false)
	for _, r := range m.Results(5) {
		if r.Replayed == 0 {
			t.Fatalf("topology %s saw no replays despite a correlated 2-machine failure: %+v", r.Name, r)
		}
		if r.Completed == 0 {
			t.Fatalf("topology %s never recovered: %+v", r.Name, r)
		}
	}
}

func TestSlotCapacityEnforced(t *testing.T) {
	sc := mixedScenario()
	sc.Cluster.Slots = 2
	setups, cl, err := sc.Instances()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cl, false)
	if err != nil {
		t.Fatal(err)
	}
	var failed error
	added := 0
	for _, su := range setups {
		err := m.Add(InstanceConfig{Name: su.Name, Top: su.Top, Arrivals: su.Arrivals, Assign: su.Assign, Seed: su.Seed})
		if err != nil {
			failed = err
			break
		}
		added++
	}
	// Four round-robin-ish apps across 6 machines all want a process on
	// most machines; 2 slots cannot host all four.
	if failed == nil {
		t.Fatal("four apps on 2-slot machines should exhaust worker slots")
	}
	if !strings.Contains(failed.Error(), "slots") {
		t.Fatalf("unexpected error: %v", failed)
	}
	if added == 0 {
		t.Fatal("first apps should have fit before exhaustion")
	}
}

func TestFaultBeforeAddRejected(t *testing.T) {
	m, err := New(mixedScenario().Cluster.build(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ScheduleClusterFailure(1000, []int{0}, []float64{500}); err == nil {
		t.Fatal("fault schedule with no instances should fail")
	}
}

// TestHeterogeneousSpeedsMatter: the same scenario on a uniformly-fast
// cluster completes with lower latency than on one with slow machines —
// SpeedFactor is genuinely exercised by scenarios.
func TestHeterogeneousSpeedsMatter(t *testing.T) {
	slow := mixedScenario()
	slow.Faults = nil
	slow.Cluster.SpeedFactors = []float64{0.5}
	fast := mixedScenario()
	fast.Faults = nil
	fast.Cluster.SpeedFactors = []float64{1.5}

	ms, _ := runScenario(t, slow, false)
	mf, _ := runScenario(t, fast, false)
	var sumSlow, sumFast float64
	for i, rs := range ms.Results(3) {
		sumSlow += rs.StabilizedMS
		sumFast += mf.Results(3)[i].StabilizedMS
	}
	if sumSlow <= sumFast {
		t.Fatalf("0.5x cluster (%.3fms) should be slower than 1.5x cluster (%.3fms)", sumSlow, sumFast)
	}
}
