// Package serve is the production serving layer for the DRL scheduling
// agent: a daemon that holds many concurrent scheduler sessions (one per
// topology) over the NDJSON protocol of internal/core, coalesces their
// state→action requests into batched neural-network passes, sheds load
// explicitly when queues fill, and exports its health over HTTP.
//
// The paper's deployment (§3.1, Figure 1) runs the agent as an external
// process serving scheduling solutions to the DSDPS over a socket; this
// package is that process grown to serve a fleet of DSDPS topologies at
// once, with the inference path built on the batched kernels of
// internal/nn and internal/actionspace (one GEMM per micro-batch instead
// of one GEMV per request).
package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of latency buckets: powers of two starting at
// 1µs, so bucket i covers (1µs·2^(i−1), 1µs·2^i] for i ≤ 23 (top finite
// bound 1µs·2^23 ≈ 8.4s) and bucket 24 is unbounded — anything slower is
// pathological anyway.
const histBuckets = 25

// Histogram is a lock-free latency histogram with log₂-spaced buckets.
// Observation and quantile estimation are both O(histBuckets); quantiles
// are upper-bound estimates (the bucket boundary), which at 2× resolution
// is plenty for p50/p99 tail reporting.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	bound := int64(1000) // 1µs
	for i := 0; i < histBuckets-1; i++ {
		if ns <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	h.buckets[bucketFor(d)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in [0,1]),
// 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	// Exclusive rank: the smallest bucket bound with more than q·total
	// observations at or below it, so a 1% tail is still visible at p99.
	target := int64(q*float64(total)) + 1
	if target > total {
		target = total
	}
	var cum int64
	bound := int64(1000)
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= target {
			return time.Duration(bound)
		}
		if i < histBuckets-2 {
			bound <<= 1
		}
	}
	return time.Duration(bound)
}

// Registry is a named collection of metrics with a text exposition format
// (one "name value" line per metric, Prometheus-style), served over
// /metrics by Server.Handler.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// WriteText writes every metric as "name value" lines in sorted name
// order. Histograms expand to _count, _sum_seconds, _avg_seconds,
// _p50_seconds and _p99_seconds.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+5*len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, h := range r.hists {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count()),
			fmt.Sprintf("%s_sum_seconds %.6f", name, float64(h.sumNS.Load())/1e9),
			fmt.Sprintf("%s_avg_seconds %.6f", name, h.Mean().Seconds()),
			fmt.Sprintf("%s_p50_seconds %.6f", name, h.Quantile(0.5).Seconds()),
			fmt.Sprintf("%s_p99_seconds %.6f", name, h.Quantile(0.99).Seconds()),
		)
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP implements http.Handler with the text exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.WriteText(w)
}
