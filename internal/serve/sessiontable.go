package serve

import (
	crand "crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Session resumption (tentpole of the serving frontier): a scheduler whose
// connection dies — process restart, network partition, rolling deploy —
// used to come back as a brand-new session, losing its per-topology state
// (current solution, exploration schedule position, reward statistics,
// replay contributions). The sessionTable keeps that state server-side,
// keyed by an opaque token issued on the first hello; a reconnecting
// client presents the token in its next hello and continues where it left
// off. Detached state lives until a TTL sweep reclaims it.
//
// The table is sharded by token hash so steady-state serving — detach,
// kick polling, per-epoch bookkeeping — takes only one shard's lock and
// scales with the per-core accept sharding instead of funneling every
// session through a single mutex. Capacity stays a GLOBAL property (one
// atomic entry count, cross-shard eviction of the oldest detached entry),
// so sharding changes contention, never admission semantics.

var (
	// errTokenLive marks a hello presenting a token that is attached to a
	// live connection. The condition is transient (the old connection is
	// usually a half-dead socket about to be reaped), so it maps to a
	// retry reply rather than a hard rejection.
	errTokenLive = errors.New("token is attached to a live session")
	// errTableFull marks resumption-table exhaustion with every tracked
	// session live; also transient.
	errTableFull = errors.New("session table full")
)

// sessionState is one session's resumable state. While a connection is
// attached the owning goroutine accesses the mutable fields exclusively
// (the table hands a token's state to at most one live connection); the
// table itself only touches live/lastSeen under the owning shard's lock.
type sessionState struct {
	token string
	key   modelKey

	// mu guards the resumable fields below against the durability
	// snapshotter: the owning connection goroutine mutates them under mu
	// (two uncontended lock pairs per epoch) and the snapshot capture
	// reads them under mu, so a snapshot never observes a half-updated
	// epoch. The goroutine must never call table methods while holding
	// mu (lock order is shard.mu → st.mu).
	mu sync.Mutex
	// gen is the session table's monotone mutation counter value at this
	// session's last journaled mutation; WAL replay applies a record only
	// when its gen is newer than the state already restored.
	gen uint64
	// rngDraws counts Float64 draws consumed from rng since seeding, so
	// recovery can reseed from the token and fast-forward to the exact
	// stream position (rng itself is not serializable).
	rngDraws uint64

	live     bool
	lastSeen time.Time
	// kick, while live, unblocks the attached connection's I/O (the
	// owning goroutine then detaches). attach fires it when another
	// connection presents this token: a half-dead socket would otherwise
	// hold the session hostage until IdleTimeout, far longer than any
	// client's retry budget. The presenter is shed with a retry and wins
	// once the old connection has drained (connection takeover). kicked
	// is the sticky record of that request — the deadline kick alone can
	// be erased by the holder's own per-epoch deadline re-arming, so the
	// holder also polls kicked (under the shard lock) each epoch.
	kick   func()
	kicked bool

	// Per-topology serving state, restored on resumption.
	epoch  int   // last served decision epoch
	assign []int // current scheduling solution (the state encoding's X half)

	// Online-learning state (used when the daemon learns).
	learnEpoch int        // position in the ε-decay schedule
	rng        *rand.Rand // exploration RNG, seeded from the token
	norm       core.RewardNormalizer
	prevState  []float64 // s_{t−1}, the pending transition's state
	prevAssign []int     // a_{t−1}, the pending transition's action
	hasPrev    bool
	noise      []float64 // exploration-noise scratch
	noiseEpoch int       // epoch the exploration decision was drawn for
	noiseOn    bool      // that decision (shed resubmits must reuse it)
}

// sessionShard is one lock-striped partition of the token→state map.
type sessionShard struct {
	mu      sync.Mutex
	entries map[string]*sessionState
}

// sessionTable tracks resumable sessions by token, striped across
// power-of-two shards addressed by the token's FNV-1a hash.
type sessionTable struct {
	ttl  time.Duration
	max  int
	seed int64
	now  func() time.Time
	// onEvict runs — OUTSIDE every table lock — when a session's state is
	// dropped; the server uses it to drop the session's replay shard and
	// journal the eviction tombstone. gen is the eviction's mutation
	// number, captured under the shard lock at the moment of eviction, so
	// a session re-created under the same token between the eviction and
	// the callback always carries a newer generation than the tombstone.
	// Running outside the locks is what lets the tombstone append BLOCK on
	// a full WAL buffer (a dropped tombstone resurrects the session on
	// every future recovery): the durability writer's snapshot capture
	// takes the shard locks, so blocking inside them would deadlock.
	onEvict func(st *sessionState, gen uint64)

	// genCtr numbers session mutations for the durability journal; it
	// only ever grows (recovery fast-forwards it past everything on disk).
	genCtr atomic.Uint64

	shards []sessionShard
	mask   uint64
	// count is the global entry total (live + detached) across shards; a
	// fresh attach reserves its slot here before inserting, so MaxTracked
	// stays a hard cap without any cross-shard lock on the steady path.
	count atomic.Int64

	// evicted accumulates sessions dropped under a shard lock until the
	// evicting call flushes their callbacks after releasing it.
	evictMu sync.Mutex
	evicted []evictedSession
}

type evictedSession struct {
	st  *sessionState
	gen uint64
}

func newSessionTable(ttl time.Duration, max int, seed int64, now func() time.Time) *sessionTable {
	if now == nil {
		now = time.Now
	}
	nShards := 1
	for nShards < runtime.GOMAXPROCS(0) && nShards < 64 {
		nShards <<= 1
	}
	t := &sessionTable{ttl: ttl, max: max, seed: seed, now: now,
		shards: make([]sessionShard, nShards), mask: uint64(nShards - 1)}
	for i := range t.shards {
		t.shards[i].entries = map[string]*sessionState{}
	}
	return t
}

// shardFor returns the shard owning token.
func (t *sessionTable) shardFor(token string) *sessionShard {
	return &t.shards[hashToken(token)&t.mask]
}

// expired reports whether a detached entry has outlived the TTL; callers
// hold the entry's shard lock.
func (t *sessionTable) expired(st *sessionState, now time.Time) bool {
	return !st.live && t.ttl > 0 && now.Sub(st.lastSeen) > t.ttl
}

// attach binds a hello to session state: resuming the token's session if
// it is tracked, or creating fresh state (under the presented token, or a
// newly issued one) otherwise. A token whose state was TTL-evicted gets a
// fresh session rather than an error — the client's resume degenerates to
// a cold start, which is the correct fallback. kick is installed on the
// attached state so a later presenter of the same token can unblock this
// connection.
func (t *sessionTable) attach(token string, key modelKey, kick func()) (st *sessionState, resumed bool, err error) {
	st, resumed, err = t.doAttach(token, key, kick)
	t.flushEvicts()
	return st, resumed, err
}

func (t *sessionTable) doAttach(token string, key modelKey, kick func()) (st *sessionState, resumed bool, err error) {
	now := t.now()

	if token != "" {
		sh := t.shardFor(token)
		sh.mu.Lock()
		if st, ok := sh.entries[token]; ok {
			if t.expired(st, now) {
				t.evictEntry(sh, st) // fall through to a fresh session below
			} else {
				switch {
				case st.key != key:
					// Checked before the live branch: a presenter whose
					// takeover could never succeed must not get to kill a
					// healthy holder.
					sh.mu.Unlock()
					return nil, false, fmt.Errorf("token %s belongs to a %dx%d/%d session, hello declares %dx%d/%d",
						token, st.key.n, st.key.m, st.key.spouts, key.n, key.m, key.spouts)
				case st.live:
					// Connection takeover: kick the current holder (it is
					// usually a half-dead socket that would otherwise pin
					// the session until IdleTimeout) and shed the
					// presenter; its retry lands after the holder drains.
					st.kicked = true
					if st.kick != nil {
						st.kick()
					}
					sh.mu.Unlock()
					return nil, false, errTokenLive
				}
				st.live = true
				st.lastSeen = now
				st.kick = kick
				st.kicked = false
				sh.mu.Unlock()
				return st, true, nil
			}
		}
		sh.mu.Unlock()
	}

	// Fresh session. Reserve the slot in the global count first — capacity
	// is a whole-table property; the reservation makes it a hard cap even
	// though inserts race across shards.
	if t.count.Add(1) > int64(t.max) {
		if t.sweepNow(now) == 0 && !t.evictOldestDetached() {
			t.count.Add(-1)
			return nil, false, errTableFull
		}
	}

	minted := token == ""
	for {
		if minted {
			token = newToken()
		}
		sh := t.shardFor(token)
		sh.mu.Lock()
		if _, taken := sh.entries[token]; taken {
			sh.mu.Unlock()
			if minted {
				continue // astronomically unlikely collision; mint another
			}
			// A client-chosen token raced another connection's create
			// between our lookup and this insert; release the reserved
			// slot and restart — the retry resolves to resume or takeover.
			t.count.Add(-1)
			return t.doAttach(token, key, kick)
		}
		st = &sessionState{
			token:    token,
			key:      key,
			live:     true,
			lastSeen: now,
			kick:     kick,
			rng:      rand.New(rand.NewSource(t.seed ^ int64(hashToken(token)))),
		}
		sh.entries[token] = st
		sh.mu.Unlock()
		return st, false, nil
	}
}

// newToken returns an unguessable session token. Tokens gate access to
// another tenant's session state, so they must not be enumerable — a
// sequential scheme would let any client hijack a detached session by
// counting.
//
// Trust model: the wire protocol is unauthenticated (the paper's agent
// and scheduler share a deployment), so tokens protect cooperating
// tenants from accidents and enumeration, not from a hostile peer — a
// hostile peer on the same network could already open sessions and feed
// adversarial measurements into the shared model. Clients that choose
// their own tokens (deterministic harnesses, tests) opt out of the
// unguessability this function provides; production clients should send
// an empty token on first hello and keep the one the daemon issues.
func newToken() string {
	var b [12]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; refuse to fall
		// back to something guessable.
		panic(fmt.Sprintf("serve: session token entropy unavailable: %v", err))
	}
	return "s" + hex.EncodeToString(b[:])
}

// drawFloat draws one Float64 from the session's exploration RNG,
// counting the draw so crash recovery can reseed from the token and
// fast-forward the stream to the same position (rand.Rand state is not
// serializable; Float64 consumes exactly one source value per call).
// Callers hold st.mu.
func (st *sessionState) drawFloat() float64 {
	st.rngDraws++
	return st.rng.Float64()
}

// peek returns a copy of a tracked session's shape, current solution and
// epoch without attaching it — the warm start for read-only sessions,
// which must not take ownership of state the owning client could resume
// at any moment. Live and detached entries both peek fine (the copy is
// consistent under st.mu); an expired entry reads as absent.
func (t *sessionTable) peek(token string) (key modelKey, assign []int, epoch int, ok bool) {
	if token == "" {
		return key, nil, 0, false
	}
	sh := t.shardFor(token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, found := sh.entries[token]
	if !found || t.expired(st, t.now()) {
		return key, nil, 0, false
	}
	st.mu.Lock()
	assign = append([]int(nil), st.assign...)
	epoch = st.epoch
	st.mu.Unlock()
	return st.key, assign, epoch, true
}

// detach releases a live session's state back to the table, starting its
// TTL clock.
func (t *sessionTable) detach(st *sessionState) {
	sh := t.shardFor(st.token)
	sh.mu.Lock()
	st.live = false
	st.kick = nil
	st.lastSeen = t.now()
	sh.mu.Unlock()
}

// isKicked reports whether a takeover presenter has requested this
// session's holder to stand down; the holder polls it once per epoch
// because its own deadline re-arming can erase the I/O kick.
func (t *sessionTable) isKicked(st *sessionState) bool {
	sh := t.shardFor(st.token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.kicked
}

// sweep drops every expired detached session and returns how many went.
func (t *sessionTable) sweep() int {
	n := t.sweepNow(t.now())
	t.flushEvicts()
	return n
}

// sweepNow walks every shard (locking one at a time) evicting expired
// detached entries.
func (t *sessionTable) sweepNow(now time.Time) int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, st := range sh.entries {
			if t.expired(st, now) {
				t.evictEntry(sh, st)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// evictOldestDetached frees one slot by dropping the detached entry with
// the oldest lastSeen anywhere in the table, reporting whether one went.
// The scan locks one shard at a time (never two — no ordering to
// deadlock on), so the winner can change state before the second lock;
// the evict re-verifies under its shard and rescans on interference.
func (t *sessionTable) evictOldestDetached() bool {
	for attempt := 0; attempt < 4; attempt++ {
		var oldest *sessionState
		for i := range t.shards {
			sh := &t.shards[i]
			sh.mu.Lock()
			for _, st := range sh.entries {
				if !st.live && (oldest == nil || st.lastSeen.Before(oldest.lastSeen)) {
					oldest = st
				}
			}
			sh.mu.Unlock()
		}
		if oldest == nil {
			return false
		}
		sh := t.shardFor(oldest.token)
		sh.mu.Lock()
		if cur, ok := sh.entries[oldest.token]; ok && cur == oldest && !cur.live {
			t.evictEntry(sh, cur)
			sh.mu.Unlock()
			return true
		}
		sh.mu.Unlock() // resumed or already evicted since the scan; rescan
	}
	return false
}

// evictEntry drops one entry; callers hold sh's lock (the shard owning
// st.token).
func (t *sessionTable) evictEntry(sh *sessionShard, st *sessionState) {
	delete(sh.entries, st.token)
	t.count.Add(-1)
	if t.onEvict != nil {
		gen := t.genCtr.Add(1)
		t.evictMu.Lock()
		t.evicted = append(t.evicted, evictedSession{st: st, gen: gen})
		t.evictMu.Unlock()
	}
}

// flushEvicts runs the deferred onEvict callbacks outside every table
// lock. Concurrent evictors may flush each other's entries; each callback
// still runs exactly once.
func (t *sessionTable) flushEvicts() {
	t.evictMu.Lock()
	evicted := t.evicted
	t.evicted = nil
	t.evictMu.Unlock()
	for _, e := range evicted {
		t.onEvict(e.st, e.gen)
	}
}

// reset drops every entry without eviction callbacks (replica wholesale
// replacement: the incoming snapshot supersedes all warm state).
func (t *sessionTable) reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		t.count.Add(-int64(len(sh.entries)))
		sh.entries = map[string]*sessionState{}
		sh.mu.Unlock()
	}
}

// len returns the number of tracked sessions (live + detached).
func (t *sessionTable) len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// hashToken is FNV-1a over the token, used both to pick the owning shard
// and to derive per-session RNG seeds deterministically from the token.
func hashToken(token string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(token))
	return h.Sum64()
}
