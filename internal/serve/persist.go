package serve

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/durable"
	"repro/internal/nn"
	"repro/internal/rl"
)

// Durability integration (tentpole of the serving-persistence frontier):
// with Config.DataDir set, every completed decision epoch journals the
// session's full resumable state (and the transition it distilled) to the
// append-only CRC-framed WAL of internal/durable, evictions journal their
// tombstones, and the WAL is periodically compacted into an atomic
// snapshot of the session table, the per-model replay shards, and the
// learned weights. On the next start, Serve replays WAL-over-snapshot
// before accepting connections, so a daemon killed mid-run comes back
// accepting the resumption tokens it issued before dying, with its
// replay buffer intact and its weights as of the last snapshot.
//
// Journal writes are asynchronous (durable.Log.Append never blocks) and
// every record is a full-state upsert guarded by a monotone generation
// number, so replaying records the snapshot already covers is a no-op —
// the property that lets snapshots cut the WAL without pausing sessions.
//
// What recovery restores bitwise: session epoch/solution, ε-schedule
// position and exploration-RNG stream position (reseeded from the token
// and fast-forwarded by the journaled draw count), reward-normalizer
// statistics, the pending transition, the replay shards in their exact
// contents and order, and (since snapshot v2) the trainers' Adam moment
// estimates and step counters — a recovered or promoted node resumes the
// exact optimizer trajectory, not a re-warmed one. The only thing that
// restarts cold, by design, is the trainer's sampling RNG (reseeded
// deterministically from the snapshot sequence; rand.Rand positions are
// not serializable) — so recovered state is deterministic given the data
// dir, which is what the golden durability harness asserts.

// openLog opens Config.DataDir with the server's metric hooks wired in.
// Shared by the leader's startup path and a replica's promotion (which
// discards the Recovered value — its warm state already matches the
// mirror byte for byte).
func (s *Server) openLog() (*durable.Log, *durable.Recovered, error) {
	return durable.Open(s.cfg.DataDir, durable.LogConfig{
		FsyncInterval: s.cfg.FsyncInterval,
		Buffer:        s.cfg.WALBuffer,
		Metrics: durable.Metrics{
			Records:   s.reg.Counter("serve_wal_records_total"),
			Bytes:     s.reg.Counter("serve_wal_bytes_total"),
			Dropped:   s.reg.Counter("serve_wal_dropped_total"),
			Snapshots: s.reg.Counter("serve_snapshots_total"),
		},
		Logf: log.Printf,
	})
}

// openDurable opens Config.DataDir, replays its contents into the
// server, and activates the journaling hooks. Called by Serve before any
// model batch loop starts.
func (s *Server) openDurable() error {
	lg, recovered, err := s.openLog()
	if err != nil {
		return err
	}
	start := time.Now()
	nModels, err := s.recoverDurable(recovered)
	if err != nil {
		_ = lg.Close() // recovery failure is the error that matters
		return err
	}
	elapsed := time.Since(start)
	s.mRecoveryMS.Set(elapsed.Milliseconds())
	s.mRecSessions.Set(int64(s.sessions.len()))
	s.mRecModels.Set(int64(nModels))
	// Hooks go live only now: the recovery paths above write state
	// directly and must not journal their own replay.
	s.dur = lg
	if recovered.Snapshot != nil || len(recovered.Records) > 0 {
		log.Printf("serve: recovered %d sessions, %d models, %d WAL records from %s in %v",
			s.sessions.len(), nModels, len(recovered.Records), s.cfg.DataDir, elapsed.Round(time.Millisecond))
	}
	return nil
}

// SnapshotNow compacts the WAL into a fresh atomic snapshot of the
// current serving state. The periodic loop calls it on SnapshotEvery;
// deterministic harnesses call it at explicit barriers.
func (s *Server) SnapshotNow() error {
	if s.dur == nil {
		return fmt.Errorf("serve: durability not enabled (no DataDir)")
	}
	return s.dur.Snapshot(s.captureSnapshot)
}

// recoverDurable applies a recovered snapshot and WAL tail to the (not
// yet serving) server, returning the number of models restored.
func (s *Server) recoverDurable(rec *durable.Recovered) (int, error) {
	maxGen := uint64(0)
	nModels := 0
	if snap := rec.Snapshot; snap != nil {
		if snap.Seed != s.cfg.Seed {
			return 0, fmt.Errorf("serve: %s was written under seed %d but the daemon is running seed %d; session exploration streams are seed-derived, refusing to mix them",
				s.cfg.DataDir, snap.Seed, s.cfg.Seed)
		}
		maxGen = snap.NextGen
		for i := range snap.Models {
			if err := s.restoreModel(&snap.Models[i], snap.Seq); err != nil {
				return 0, fmt.Errorf("serve: recover model %s: %w", snap.Models[i].Key, err)
			}
			nModels++
		}
		for i := range snap.Sessions {
			ss := &snap.Sessions[i]
			if s.validShape(ss.Key.N, ss.Key.M, ss.Key.Spouts) != nil {
				continue // shape limits tightened since the snapshot
			}
			s.sessions.applyRecovered(ss)
			if ss.Gen > maxGen {
				maxGen = ss.Gen
			}
		}
	}
	for _, r := range rec.Records {
		s.applyRecord(r)
		if r.Gen > maxGen {
			maxGen = r.Gen
		}
	}
	s.sessions.genCtr.Store(maxGen)
	return nModels, nil
}

// restoreModel reinstates one model from its snapshot: serving weights
// (checksum-verified — weights that do not hash to what the snapshot
// recorded are corruption, and serving them silently would be worse than
// refusing to start), and when learning, the trainer's networks, update
// count, deterministically reseeded sampling RNG, and replay shards.
func (s *Server) restoreModel(ms *durable.ModelSnap, snapSeq uint64) error {
	key := modelKey{ms.Key.N, ms.Key.M, ms.Key.Spouts}
	if err := s.validShape(key.n, key.m, key.spouts); err != nil {
		return err
	}
	mdl := s.model(key)
	actor, err := unmarshalNet(ms.Actor, ms.ActorSum, "actor")
	if err != nil {
		return err
	}
	critic, err := unmarshalNet(ms.Critic, ms.CriticSum, "critic")
	if err != nil {
		return err
	}
	s.mu.Lock()
	running := mdl.running
	s.mu.Unlock()
	if !running {
		// No batch loop yet (startup recovery, or a follower warming from
		// its mirror before the loops start): install directly.
		if err := mdl.pol.SetNetworks(actor, critic); err != nil {
			return err
		}
	} else if !s.cfg.Learn {
		// A running frozen loop (follower reads) owns the policy; hand the
		// weights over through the publication channel instead of racing
		// it. This path runs on the tailer goroutine — the follower's
		// single publisher, so draining our own stale pending pair cannot
		// race another producer. (The learning case publishes through the
		// trainer ring below, after the learner nets are restored.)
		select {
		case <-mdl.toServe:
		default:
		}
		mdl.toServe <- &netPair{actor: actor, critic: critic}
	}
	if !s.cfg.Learn {
		s.recordSnapSums(key, ms.ActorSum, ms.CriticSum)
		return nil
	}
	if err := mdl.ensureLearner(); err != nil {
		return err
	}
	l := mdl.learner
	// ensureLearner clones the serving weights only when it creates the
	// learner. A replica applying an in-stream snapshot marker already
	// built the learner cold (epoch records precede the marker), so the
	// trainer's own networks are restored explicitly — otherwise a
	// promoted follower would keep training from initialization while
	// serving the leader's weights.
	la, _, lc, _ := l.ac.Networks()
	if err := la.Restore(actor.Snapshot(nil)); err != nil {
		return fmt.Errorf("learner actor: %w", err)
	}
	if err := lc.Restore(critic.Snapshot(nil)); err != nil {
		return fmt.Errorf("learner critic: %w", err)
	}
	// Targets come from the snapshot when present (checksums cover the
	// main networks; the targets trail them by construction).
	if len(ms.ActorT) > 0 && len(ms.CriticT) > 0 {
		at, err := unmarshalNet(ms.ActorT, 0, "actor target")
		if err != nil {
			return err
		}
		ct, err := unmarshalNet(ms.CriticT, 0, "critic target")
		if err != nil {
			return err
		}
		_, lat, _, lct := l.ac.Networks()
		if err := lat.Restore(at.Snapshot(nil)); err != nil {
			return fmt.Errorf("actor target: %w", err)
		}
		if err := lct.Restore(ct.Snapshot(nil)); err != nil {
			return fmt.Errorf("critic target: %w", err)
		}
	}
	l.updates = ms.Updates
	actorNet, _, criticNet, _ := l.ac.Networks()
	actorOpt, criticOpt := l.ac.Optimizers()
	if err := actorOpt.SetState(optimState(ms.ActorOpt), actorNet); err != nil {
		return fmt.Errorf("actor optimizer: %w", err)
	}
	if err := criticOpt.SetState(optimState(ms.CriticOpt), criticNet); err != nil {
		return fmt.Errorf("critic optimizer: %w", err)
	}
	l.reseedForRecovery(snapSeq)
	shards := make([]rl.ShardExport, len(ms.Shards))
	for i, sh := range ms.Shards {
		trans := make([]rl.Transition, len(sh.Trans))
		for j, t := range sh.Trans {
			trans[j] = t.ToTransition()
		}
		shards[i] = rl.ShardExport{Key: sh.Token, Added: sh.Added, Trans: trans}
	}
	l.replay.Import(shards)
	l.mReplay.Set(int64(l.replay.Len()))
	if running {
		// Publish the restored weights to the running loop through the
		// trainer's ring (bitwise the snapshot's weights: Snapshot/Restore
		// round-trips exactly). No trainer runs concurrently on a follower
		// — goLoops are leader-side — so the tailer is still the only
		// publisher.
		l.mu.Lock()
		l.publishLocked()
		l.mu.Unlock()
	}
	s.recordSnapSums(key, ms.ActorSum, ms.CriticSum)
	return nil
}

// recordSnapSums notes the checksums of the snapshot state this node last
// applied for one model (follower resync, restart recovery). The leader
// side records in captureSnapshot; /checksums exposes both.
func (s *Server) recordSnapSums(key modelKey, actorSum, criticSum uint64) {
	s.mu.Lock()
	s.snapSums[fmt.Sprintf("%dx%d/%d", key.n, key.m, key.spouts)] = [2]uint64{actorSum, criticSum}
	s.mu.Unlock()
}

// unmarshalNet decodes a weight blob and, when wantSum is non-zero,
// verifies its checksum.
func unmarshalNet(blob []byte, wantSum uint64, what string) (*nn.Network, error) {
	net := &nn.Network{}
	if err := net.UnmarshalBinary(blob); err != nil {
		return nil, fmt.Errorf("%s weights: %w", what, err)
	}
	if wantSum != 0 {
		if got := net.Checksum(); got != wantSum {
			return nil, fmt.Errorf("%s weights: checksum %016x does not match the snapshot's recorded %016x (corrupt snapshot)", what, got, wantSum)
		}
	}
	return net, nil
}

// applyRecord replays one WAL record over the restored state. Epoch
// records are upserts applied only when newer (generation guard) than
// what the snapshot or an earlier record already restored; their
// transitions are deduped independently against the replay shard's write
// sequence. Evict tombstones drop only state older than themselves.
func (s *Server) applyRecord(r *durable.Record) {
	if s.validShape(r.Key.N, r.Key.M, r.Key.Spouts) != nil {
		return
	}
	switch r.T {
	case durable.RecEpoch:
		s.applyEpochRecord(r)
	case durable.RecEvict:
		s.applyEvict(r)
	}
}

// applyEpochRecord replays one completed epoch. The record carries only
// scalars, the solution and the raw workload; the state encoding and the
// transition vectors are re-derived here by running exactly the
// computation the live path ran:
//
//	s_t               = Codec.Encode(solution of epoch t−1, workload_t)
//	transition at t   = (s_{t−1} [the pending prevState], the one-hot of
//	                     the pending prevAssign, journaled reward, s_t)
//
// The derivation needs the record chain to be contiguous (the previous
// epoch's solution is the session's current assign). A gap — records
// dropped under WAL backpressure, or a truncated segment boundary —
// degrades exactly like the live path degrades on a lost measurement:
// the pending transition is dropped, scalars still restore, and the
// chain re-anchors on the next contiguous record.
func (s *Server) applyEpochRecord(r *durable.Record) {
	key := modelKey{r.Key.N, r.Key.M, r.Key.Spouts}
	t := s.sessions
	sh := t.shardFor(r.Token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.entries[r.Token]
	if ok && st.gen >= r.Gen {
		return // snapshot or an earlier record already restored newer state
	}
	if !ok {
		st = &sessionState{
			token: r.Token,
			key:   key,
			rng:   rand.New(rand.NewSource(t.seed ^ int64(hashToken(r.Token)))),
		}
		sh.entries[r.Token] = st
		t.count.Add(1)
	}

	if s.cfg.Learn && len(r.Workload) > 0 {
		// prevAssign/prevState update mirrors the live epoch tail; the
		// old solution (what the workload was measured under) is the
		// session's pre-apply assign when the chain is contiguous, or the
		// cold-start round-robin for a session's very first epoch.
		var oldAssign []int
		switch {
		case ok && st.epoch == r.Epoch-1 && len(st.assign) == key.n:
			oldAssign = st.assign
		case !ok && r.Epoch == 1:
			oldAssign = make([]int, key.n)
			for i := range oldAssign {
				oldAssign[i] = i % key.m
			}
		}
		mdl := s.model(key)
		if oldAssign != nil && len(r.Workload) == key.spouts && mdl.ensureLearner() == nil && mdl.learner != nil {
			state := mdl.pol.Codec.Encode(oldAssign, r.Workload, nil) // s_t
			if r.TransSeq > 0 && st.hasPrev {
				mdl.learner.replay.AddRecovered(r.Token, r.TransSeq, rl.Transition{
					State:     append([]float64(nil), st.prevState...),
					Action:    mdl.pol.Space.Encode(st.prevAssign, nil),
					Reward:    math.Float64frombits(r.RewardBits),
					NextState: append([]float64(nil), state...),
				})
			}
			st.prevState = state
			st.prevAssign = append(st.prevAssign[:0], r.Assign...)
			st.hasPrev = true
		} else {
			// Gap: the pending transition's state is unrecoverable, and
			// so is this epoch's (its s_t needs the missing solution).
			st.hasPrev = false
		}
	}

	for st.rngDraws < r.RNGDraws {
		st.rngDraws++
		st.rng.Float64()
	}
	st.gen = r.Gen
	st.epoch = r.Epoch
	st.assign = append(st.assign[:0], r.Assign...)
	st.learnEpoch = r.LearnEpoch
	st.norm.SetState(math.Float64frombits(r.NormMeanBits), math.Float64frombits(r.NormVarBits), r.NormN)
	st.live = false
	st.lastSeen = t.now()
}

// applyEvict drops a recovered session if the tombstone postdates its
// state (a session re-created under the same token after the eviction
// has a newer generation and survives).
func (s *Server) applyEvict(r *durable.Record) {
	t := s.sessions
	sh := t.shardFor(r.Token)
	sh.mu.Lock()
	st, ok := sh.entries[r.Token]
	if !ok || st.gen >= r.Gen {
		sh.mu.Unlock()
		return
	}
	delete(sh.entries, r.Token)
	t.count.Add(-1)
	sh.mu.Unlock()
	s.mu.Lock()
	mdl := s.models[st.key]
	s.mu.Unlock()
	if mdl != nil && mdl.learner != nil {
		mdl.learner.dropShard(r.Token)
	}
}

// applyRecovered upserts one session's persisted state into the table
// (detached, fresh TTL clock). The exploration RNG is reseeded from the
// token exactly as attach does and fast-forwarded to the journaled draw
// count, so the recovered stream continues where the dead daemon's
// stopped.
func (t *sessionTable) applyRecovered(ss *durable.SessionSnap) {
	key := modelKey{ss.Key.N, ss.Key.M, ss.Key.Spouts}
	sh := t.shardFor(ss.Token)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.entries[ss.Token]
	if ok && st.gen >= ss.Gen {
		return // snapshot or an earlier record already restored newer state
	}
	if !ok {
		st = &sessionState{
			token: ss.Token,
			key:   key,
			rng:   rand.New(rand.NewSource(t.seed ^ int64(hashToken(ss.Token)))),
		}
		sh.entries[ss.Token] = st
		t.count.Add(1)
	}
	for st.rngDraws < ss.RNGDraws {
		st.rngDraws++
		st.rng.Float64()
	}
	st.gen = ss.Gen
	st.epoch = ss.Epoch
	st.assign = append(st.assign[:0], ss.Assign...)
	st.learnEpoch = ss.LearnEpoch
	st.norm.SetState(ss.NormMean, ss.NormVar, ss.NormN)
	st.prevState = append(st.prevState[:0], ss.PrevState...)
	st.prevAssign = append(st.prevAssign[:0], ss.PrevAssign...)
	st.hasPrev = ss.HasPrev
	st.live = false
	st.lastSeen = t.now()
}

// captureSnapshot assembles the full serving state. It runs on the
// durability writer goroutine at a record boundary; sessions are read
// under their own locks (never while holding the server lock, so the
// eviction path's table→server lock order cannot deadlock against it)
// and everything is emitted in sorted order so identical state produces
// identical snapshot bytes.
func (s *Server) captureSnapshot() (*durable.Snapshot, error) {
	snap := &durable.Snapshot{
		Seed:    s.cfg.Seed,
		NextGen: s.sessions.genCtr.Load(),
	}
	// Collect the sessions shard by shard (locking one shard at a time,
	// never two), then emit in sorted token order so identical state
	// produces identical snapshot bytes regardless of shard layout. An
	// acknowledged epoch always reaches the snapshot: its record enqueues
	// after the session is visible in its shard, both on the capturing
	// goroutine's past side of the record boundary the capture runs at.
	t := s.sessions
	var sessions []*sessionState
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, st := range sh.entries {
			sessions = append(sessions, st)
		}
		sh.mu.Unlock()
	}
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].token < sessions[j].token })
	for _, st := range sessions {
		st.mu.Lock()
		snap.Sessions = append(snap.Sessions, snapOfSession(st))
		st.mu.Unlock()
	}
	for _, m := range s.learningModels() {
		ms, err := m.learner.exportSnap()
		if err != nil {
			return nil, fmt.Errorf("model %v: %w", m.key, err)
		}
		snap.Models = append(snap.Models, ms)
	}
	// Record the barrier's weight checksums for /checksums: every learning
	// model is in every snapshot, so wholesale replacement is exact.
	sums := make(map[string][2]uint64, len(snap.Models))
	for i := range snap.Models {
		k := snap.Models[i].Key
		sums[fmt.Sprintf("%dx%d/%d", k.N, k.M, k.Spouts)] = [2]uint64{snap.Models[i].ActorSum, snap.Models[i].CriticSum}
	}
	s.mu.Lock()
	s.snapSums = sums
	s.mu.Unlock()
	return snap, nil
}

// snapOfSession copies one session's persisted fields; callers hold
// st.mu.
func snapOfSession(st *sessionState) durable.SessionSnap {
	normMean, normVar, normN := st.norm.State()
	return durable.SessionSnap{
		Token:      st.token,
		Key:        durable.SessionKey{N: st.key.n, M: st.key.m, Spouts: st.key.spouts},
		Gen:        st.gen,
		Epoch:      st.epoch,
		Assign:     append([]int(nil), st.assign...),
		LearnEpoch: st.learnEpoch,
		RNGDraws:   st.rngDraws,
		NormMean:   normMean,
		NormVar:    normVar,
		NormN:      normN,
		PrevState:  append(durable.F64s(nil), st.prevState...),
		PrevAssign: append([]int(nil), st.prevAssign...),
		HasPrev:    st.hasPrev,
	}
}

// epochRecord builds the WAL record for a just-completed epoch; callers
// hold st.mu (the slices are copied — the session reuses its buffers
// next epoch, while the record is encoded asynchronously). The caller
// fills Workload/TransSeq/Reward in learning mode.
func epochRecord(st *sessionState) *durable.Record {
	normMean, normVar, normN := st.norm.State()
	return &durable.Record{
		T:            durable.RecEpoch,
		Token:        st.token,
		Key:          durable.SessionKey{N: st.key.n, M: st.key.m, Spouts: st.key.spouts},
		Gen:          st.gen,
		Epoch:        st.epoch,
		Assign:       append([]int(nil), st.assign...),
		LearnEpoch:   st.learnEpoch,
		RNGDraws:     st.rngDraws,
		NormMeanBits: math.Float64bits(normMean),
		NormVarBits:  math.Float64bits(normVar),
		NormN:        normN,
	}
}

// exportSnap captures the learner's weights (all four networks), update
// count, and replay shards.
func (l *modelLearner) exportSnap() (durable.ModelSnap, error) {
	k := l.mdl.key
	ms := durable.ModelSnap{Key: durable.SessionKey{N: k.n, M: k.m, Spouts: k.spouts}}
	l.mu.Lock()
	actor, actorT, critic, criticT := l.ac.Networks()
	var errs [4]error
	ms.Actor, errs[0] = actor.MarshalBinary()
	ms.ActorT, errs[1] = actorT.MarshalBinary()
	ms.Critic, errs[2] = critic.MarshalBinary()
	ms.CriticT, errs[3] = criticT.MarshalBinary()
	ms.ActorSum, ms.CriticSum = actor.Checksum(), critic.Checksum()
	ms.Updates = l.updates
	actorOpt, criticOpt := l.ac.Optimizers()
	ms.ActorOpt = optimSnap(actorOpt.State())
	ms.CriticOpt = optimSnap(criticOpt.State())
	l.mu.Unlock()
	for _, err := range errs {
		if err != nil {
			return ms, err
		}
	}
	for _, se := range l.replay.Export() {
		sh := durable.ShardSnap{Token: se.Key, Added: se.Added, Trans: make([]durable.TransitionRec, len(se.Trans))}
		for i, tr := range se.Trans {
			sh.Trans[i] = durable.FromTransition(tr)
		}
		ms.Shards = append(ms.Shards, sh)
	}
	return ms, nil
}

// optimSnap converts a captured Adam state to its snapshot form (shared
// backing arrays — State() already copied).
func optimSnap(s *nn.AdamState) *durable.OptimSnap {
	os := &durable.OptimSnap{T: s.T}
	for i := range s.MW {
		os.MW = append(os.MW, durable.F64s(s.MW[i]))
		os.VW = append(os.VW, durable.F64s(s.VW[i]))
		os.MB = append(os.MB, durable.F64s(s.MB[i]))
		os.VB = append(os.VB, durable.F64s(s.VB[i]))
	}
	return os
}

// optimState converts a snapshotted optimizer back to the nn form. A nil
// OptimSnap restores the "never stepped" state.
func optimState(os *durable.OptimSnap) *nn.AdamState {
	s := &nn.AdamState{}
	if os == nil {
		return s
	}
	s.T = os.T
	for i := range os.MW {
		s.MW = append(s.MW, []float64(os.MW[i]))
		s.VW = append(s.VW, []float64(os.VW[i]))
		s.MB = append(s.MB, []float64(os.MB[i]))
		s.VB = append(s.VB, []float64(os.VB[i]))
	}
	return s
}

// reseedForRecovery gives the trainer a fresh sampling RNG derived from
// the snapshot sequence. rand.Rand positions are not serializable (Intn
// consumes a variable number of source values), so instead of pretending
// to restore the old stream, recovery commits to a new deterministic one:
// identical recoveries of the same data dir train identically, which is
// the property the golden durability harness pins.
func (l *modelLearner) reseedForRecovery(snapSeq uint64) {
	k := l.mdl.key
	seed := l.mdl.srv.cfg.Seed + int64(k.n*7_368_787+k.m*104_729+k.spouts*31) + 1
	l.rng = rand.New(rand.NewSource(seed + 2 + int64(snapSeq)*1_000_000_007))
}
