package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// HelloMsg opens a session: the scheduler announces its topology shape so
// the daemon can route it to (or create) the matching model. It is the
// only message the daemon reads before entering the measurement→solution
// loop of the core protocol.
type HelloMsg struct {
	// Topology is a free-form name used for logging/metrics only.
	Topology string `json:"topology"`
	// N is the executor count, M the machine count, Spouts the number of
	// data sources — together the state/action dimensions.
	N      int `json:"n"`
	M      int `json:"m"`
	Spouts int `json:"spouts"`
}

// Config holds the daemon's knobs.
type Config struct {
	// MaxSessions caps concurrent scheduler sessions; connections beyond
	// the cap are told to retry and closed (admission control).
	MaxSessions int
	// QueueDepth bounds each model's pending-inference queue; a session
	// whose enqueue would block instead receives an explicit retry reply
	// (load shedding) so backpressure is visible to the scheduler rather
	// than silently queueing without bound.
	QueueDepth int
	// BatchWindow is how long the batcher waits for more requests after
	// the first one arrives (micro-batching); 0 takes the default and a
	// negative value disables coalescing beyond whatever is already
	// queued.
	BatchWindow time.Duration
	// MaxBatch caps the micro-batch size (1 forces per-request inference).
	MaxBatch int
	// IdleTimeout bounds how long a session may sit between measurements
	// before the daemon reclaims the connection.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write.
	WriteTimeout time.Duration
	// MaxLineBytes bounds one NDJSON frame; longer lines are a protocol
	// error and close the session.
	MaxLineBytes int
	// K is the K-NN candidate count of the decision rule.
	K int
	// Seed seeds each model's randomly initialized networks.
	Seed int64
	// MaxExecutors/MaxMachines/MaxSpouts bound acceptable hello shapes, so
	// a bogus client cannot make the daemon allocate a gigantic model.
	MaxExecutors int
	MaxMachines  int
	MaxSpouts    int
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		MaxSessions:  4096,
		QueueDepth:   1024,
		BatchWindow:  200 * time.Microsecond,
		MaxBatch:     64,
		IdleTimeout:  2 * time.Minute,
		WriteTimeout: 10 * time.Second,
		MaxLineBytes: 1 << 20,
		K:            8,
		MaxExecutors: 512,
		MaxMachines:  128,
		MaxSpouts:    64,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxSessions <= 0 {
		c.MaxSessions = d.MaxSessions
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = d.MaxLineBytes
	}
	if c.K <= 0 {
		c.K = d.K
	}
	if c.MaxExecutors <= 0 {
		c.MaxExecutors = d.MaxExecutors
	}
	if c.MaxMachines <= 0 {
		c.MaxMachines = d.MaxMachines
	}
	if c.MaxSpouts <= 0 {
		c.MaxSpouts = d.MaxSpouts
	}
	return c
}

// modelKey identifies a model by topology shape; sessions with the same
// shape share one model and therefore one inference batch stream.
type modelKey struct{ n, m, spouts int }

// Server is the multi-tenant agent daemon: a session manager over a
// net.Listener plus one inference batcher per topology shape.
type Server struct {
	cfg Config
	reg *Registry

	started time.Time
	active  atomic.Int64 // current sessions (admission control)

	mu     sync.Mutex
	models map[modelKey]*model

	// run state, owned by Serve
	ctx context.Context
	wg  sync.WaitGroup

	// metric handles (hot path: no map lookups)
	mSessions     *Gauge
	mSessionsPeak *Gauge
	mAccepted     *Counter
	mRejected     *Counter
	mRequests     *Counter
	mShed         *Counter
	mProtoErrs    *Counter
	mDeployErrs   *Counter
	mBatches      *Counter
	mBatchedReqs  *Counter
	mLatency      *Histogram
	mInference    *Histogram

	// testGate, when non-nil, is received from before each micro-batch is
	// gathered — test-only hook to hold the batcher and force queue
	// buildup deterministically.
	testGate chan struct{}
}

// New builds a Server with zero Config fields defaulted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	return &Server{
		cfg:           cfg,
		reg:           reg,
		started:       time.Now(),
		models:        map[modelKey]*model{},
		mSessions:     reg.Gauge("serve_sessions"),
		mSessionsPeak: reg.Gauge("serve_sessions_peak"),
		mAccepted:     reg.Counter("serve_sessions_accepted_total"),
		mRejected:     reg.Counter("serve_sessions_rejected_total"),
		mRequests:     reg.Counter("serve_requests_total"),
		mShed:         reg.Counter("serve_requests_shed_total"),
		mProtoErrs:    reg.Counter("serve_protocol_errors_total"),
		mDeployErrs:   reg.Counter("serve_deploy_errors_total"),
		mBatches:      reg.Counter("serve_inference_batches_total"),
		mBatchedReqs:  reg.Counter("serve_inference_requests_total"),
		mLatency:      reg.Histogram("serve_request_latency"),
		mInference:    reg.Histogram("serve_inference_batch_latency"),
	}
}

// Registry exposes the server's metrics.
func (s *Server) Registry() *Registry { return s.reg }

// Preload creates (or returns) the model for a topology shape before any
// session arrives, so trained weights can be installed on its policy. It
// must be called before Serve: once the server is running, the model's
// batch loop reads the policy's networks concurrently, so a late
// SetNetworks would race — Preload refuses rather than hand out a policy
// it is no longer safe to mutate.
func (s *Server) Preload(n, m, spouts int) (*Policy, error) {
	if err := s.validShape(n, m, spouts); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx != nil {
		return nil, errors.New("serve: Preload after Serve started")
	}
	key := modelKey{n, m, spouts}
	mdl, ok := s.models[key]
	if !ok {
		mdl = newModel(s, key)
		s.models[key] = mdl
		s.reg.Gauge("serve_models").Set(int64(len(s.models)))
	}
	return mdl.pol, nil
}

func (s *Server) validShape(n, m, spouts int) error {
	switch {
	case n < 1 || n > s.cfg.MaxExecutors:
		return fmt.Errorf("executors %d out of range [1,%d]", n, s.cfg.MaxExecutors)
	case m < 1 || m > s.cfg.MaxMachines:
		return fmt.Errorf("machines %d out of range [1,%d]", m, s.cfg.MaxMachines)
	case spouts < 1 || spouts > s.cfg.MaxSpouts:
		return fmt.Errorf("spouts %d out of range [1,%d]", spouts, s.cfg.MaxSpouts)
	}
	return nil
}

// model returns the model for key, creating (and, once Serve is running,
// starting) it on first use.
func (s *Server) model(key modelKey) *model {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[key]
	if !ok {
		m = newModel(s, key)
		s.models[key] = m
		s.reg.Gauge("serve_models").Set(int64(len(s.models)))
		if s.ctx != nil {
			m.start()
		}
	}
	return m
}

// Serve accepts scheduler sessions on l until the listener closes or ctx
// is cancelled, serving every session concurrently. Temporary accept
// errors back off and retry. On return all sessions and batch loops have
// drained.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	sctx, cancel := context.WithCancel(ctx)
	s.mu.Lock()
	s.ctx = sctx
	for _, m := range s.models {
		m.start() // models preloaded before Serve
	}
	s.mu.Unlock()
	defer s.wg.Wait()
	defer cancel()

	// Close the listener when ctx ends so Accept unblocks.
	stop := context.AfterFunc(sctx, func() { l.Close() })
	defer stop()

	for {
		conn, err := core.AcceptRetry(l)
		if err != nil {
			if sctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(sctx, conn)
		}()
	}
}

// Handler returns the HTTP control surface: /metrics (text exposition)
// and /healthz (JSON liveness with session/model counts).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", s.reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		nModels := len(s.models)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.started).Seconds(),
			"sessions":       s.active.Load(),
			"models":         nModels,
		})
	})
	return mux
}
