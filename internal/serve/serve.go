package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/parallel"
	"repro/internal/rl"
)

// HelloMsg opens a session: the scheduler announces its topology shape so
// the daemon can route it to (or create) the matching model. It is the
// only message the daemon reads before entering the measurement→solution
// loop. The definition moved to internal/core (next to the other wire
// messages and both framings' codecs); the alias keeps the serve package's
// public surface unchanged.
type HelloMsg = core.HelloMsg

// Config holds the daemon's knobs.
type Config struct {
	// MaxSessions caps concurrent scheduler sessions; connections beyond
	// the cap are told to retry and closed (admission control).
	MaxSessions int
	// QueueDepth bounds each model's pending-inference queue; a session
	// whose enqueue would block instead receives an explicit retry reply
	// (load shedding) so backpressure is visible to the scheduler rather
	// than silently queueing without bound.
	QueueDepth int
	// BatchWindow is how long the batcher waits for more requests after
	// the first one arrives (micro-batching); 0 takes the default and a
	// negative value disables coalescing beyond whatever is already
	// queued.
	BatchWindow time.Duration
	// MaxBatch caps the micro-batch size (1 forces per-request inference).
	MaxBatch int
	// IdleTimeout bounds how long a session may sit between measurements
	// before the daemon reclaims the connection.
	IdleTimeout time.Duration
	// WriteTimeout bounds each reply write.
	WriteTimeout time.Duration
	// MaxLineBytes bounds one wire frame in either framing (an NDJSON
	// line, or a binary frame's payload); longer frames are a protocol
	// error and close the session.
	MaxLineBytes int
	// AcceptShards is how many goroutines accept connections from the
	// listener in parallel. One accepting goroutine serializes the TCP
	// handshake tail (and the kernel wakes exactly one blocked acceptor
	// per connection, so there is no thundering herd); with thousands of
	// short-lived sessions the single acceptor becomes the admission
	// bottleneck. 0 takes GOMAXPROCS.
	AcceptShards int
	// K is the K-NN candidate count of the decision rule.
	K int
	// Seed seeds each model's randomly initialized networks.
	Seed int64
	// MaxExecutors/MaxMachines/MaxSpouts bound acceptable hello shapes, so
	// a bogus client cannot make the daemon allocate a gigantic model.
	MaxExecutors int
	MaxMachines  int
	MaxSpouts    int

	// SessionTTL bounds how long a detached session's resumable state is
	// kept before eviction; a client resuming after eviction gets a fresh
	// session under its old token.
	SessionTTL time.Duration
	// MaxTrackedSessions caps the resumption table (live + detached);
	// beyond it, expired then oldest-detached entries are evicted first
	// and, with every slot live, new sessions are shed with a retry.
	// Defaults to 4× MaxSessions.
	MaxTrackedSessions int

	// Learn enables online learning: sessions feed transitions into a
	// per-model sharded replay buffer and a trainer runs batched
	// actor-critic updates against a double-buffered weight set that the
	// inference path swaps in between micro-batches.
	Learn bool
	// TrainInterval is the background trainer's cadence; zero takes the
	// default (100ms). A negative value disables the background
	// goroutine; training then only happens through explicit TrainNow
	// calls — the deterministic mode the golden end-to-end harness
	// drives.
	TrainInterval time.Duration
	// TrainBatch is the mini-batch size H (default: the paper's 32).
	TrainBatch int
	// UpdatesPerRound is how many mini-batch updates one train round runs
	// before publishing weights (default 4).
	UpdatesPerRound int
	// ReplayPerSession caps each session's replay shard (default 256).
	ReplayPerSession int
	// Explore is the per-session ε-decay exploration schedule applied to
	// proto-actions while learning (zero value takes a conservative
	// serving default when Learn is set; ignored otherwise).
	Explore rl.EpsilonSchedule
	// CheckpointDir, when set with CheckpointEvery > 0, makes the daemon
	// periodically write each learning model's actor/critic weights there
	// (cmd/train checkpoint format, atomic rename).
	CheckpointDir   string
	CheckpointEvery time.Duration

	// DataDir, when set, makes the daemon crash-safe: session lifecycle,
	// distilled transitions and exploration/normalizer state are journaled
	// to a CRC-framed WAL under DataDir, compacted into atomic snapshots
	// (session table + replay shards + learned weights), and recovered on
	// the next start — a restarted daemon accepts the resumption tokens it
	// issued before dying and keeps its learned weights as of the last
	// snapshot. All journal writes are asynchronous; the serving and
	// training paths never block on fsync.
	DataDir string
	// FsyncInterval bounds how much acknowledged state a crash can lose
	// (default 100ms; negative = fsync every record).
	FsyncInterval time.Duration
	// SnapshotEvery is the WAL compaction cadence (default 1m). A final
	// snapshot is always written on orderly drain.
	SnapshotEvery time.Duration
	// WALBuffer is the async journal queue depth (default 8192 records);
	// records beyond it are dropped and counted, never blocked on.
	WALBuffer int
	// crashOnDrain (tests only) skips the final snapshot AND the journal
	// flush on shutdown, so in-process tests can exercise the same state a
	// SIGKILL would leave on disk.
	crashOnDrain bool

	// ReplListen, when set, serves WAL shipping on this address so
	// follower daemons can replicate (leaders and promoted followers
	// only; requires DataDir).
	ReplListen string
	// ReplicateFrom, when set, runs the daemon as a replica of the leader
	// shipping on that address: it tails the leader's WAL into a warm
	// session table and a byte-exact mirror under DataDir, sheds every
	// session connection with a retry, and serves only after Promote()
	// (the /promote endpoint). Requires DataDir.
	ReplicateFrom string

	// GemmWorkers bounds the worker pool that large inference and
	// training GEMMs shard their row bands across (the 64-row micro-batch
	// is shardable where per-request GEMVs are not). 0 takes the pool
	// default (one worker per CPU); 1 forces single-goroutine GEMMs.
	// Sharding is bitwise invariant, so this knob trades only latency.
	GemmWorkers int
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		MaxSessions:  4096,
		QueueDepth:   1024,
		BatchWindow:  200 * time.Microsecond,
		MaxBatch:     64,
		IdleTimeout:  2 * time.Minute,
		WriteTimeout: 10 * time.Second,
		MaxLineBytes: 1 << 20,
		K:            8,
		MaxExecutors: 512,
		MaxMachines:  128,
		MaxSpouts:    64,

		SessionTTL:       10 * time.Minute,
		TrainInterval:    100 * time.Millisecond,
		TrainBatch:       32,
		UpdatesPerRound:  4,
		ReplayPerSession: 256,
		FsyncInterval:    100 * time.Millisecond,
		SnapshotEvery:    time.Minute,
		WALBuffer:        8192,
		// Serving exploration is deliberately tamer than offline training:
		// live sessions pay for every exploratory deployment.
		Explore: rl.EpsilonSchedule{Start: 0.3, End: 0.02, Decay: 300, Kind: rl.ExpDecay},
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MaxSessions <= 0 {
		c.MaxSessions = d.MaxSessions
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = d.BatchWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = d.MaxBatch
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = d.IdleTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = d.MaxLineBytes
	}
	if c.AcceptShards <= 0 {
		c.AcceptShards = runtime.GOMAXPROCS(0)
	}
	if c.K <= 0 {
		c.K = d.K
	}
	if c.MaxExecutors <= 0 {
		c.MaxExecutors = d.MaxExecutors
	}
	if c.MaxMachines <= 0 {
		c.MaxMachines = d.MaxMachines
	}
	if c.MaxSpouts <= 0 {
		c.MaxSpouts = d.MaxSpouts
	}
	if c.SessionTTL == 0 {
		c.SessionTTL = d.SessionTTL
	}
	if c.MaxTrackedSessions <= 0 {
		c.MaxTrackedSessions = 4 * c.MaxSessions
	}
	if c.TrainInterval == 0 {
		c.TrainInterval = d.TrainInterval
	}
	if c.TrainBatch <= 0 {
		c.TrainBatch = d.TrainBatch
	}
	if c.UpdatesPerRound <= 0 {
		c.UpdatesPerRound = d.UpdatesPerRound
	}
	if c.ReplayPerSession <= 0 {
		c.ReplayPerSession = d.ReplayPerSession
	}
	if c.Learn && c.Explore == (rl.EpsilonSchedule{}) {
		c.Explore = d.Explore
	}
	if c.FsyncInterval == 0 {
		c.FsyncInterval = d.FsyncInterval
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = d.SnapshotEvery
	}
	if c.WALBuffer <= 0 {
		c.WALBuffer = d.WALBuffer
	}
	return c
}

// modelKey identifies a model by topology shape; sessions with the same
// shape share one model and therefore one inference batch stream.
type modelKey struct{ n, m, spouts int }

// Server is the multi-tenant agent daemon: a session manager over a
// net.Listener plus one inference batcher (and, when learning, one
// trainer) per topology shape.
type Server struct {
	cfg Config
	reg *Registry

	started time.Time
	active  atomic.Int64 // current sessions (admission control)

	sessions *sessionTable

	// trainSem bounds concurrent per-model train rounds so background
	// training never oversubscribes the cores the inference batch loops
	// run on.
	trainSem *parallel.Sem
	// gemmSem is the pool that large per-model GEMMs (inference
	// micro-batches, training passes) shard their row bands across; see
	// Config.GemmWorkers.
	gemmSem *parallel.Sem

	mu     sync.Mutex
	models map[modelKey]*model

	// snapSums records, per model key ("NxM/S"), the actor/critic weight
	// checksums of the last snapshot this node captured (leader) or
	// applied (follower, restart recovery). /checksums exposes it so an
	// external harness can assert bitwise convergence across a group: a
	// follower at lag zero must report exactly the sums of the leader's
	// last snapshot barrier. Guarded by mu.
	snapSums map[string][2]uint64

	// dur, when non-nil, is the open durability log (Config.DataDir); the
	// journaling hooks and the snapshot/recovery paths live in persist.go.
	// On a replica it stays nil until Promote opens the mirror.
	dur *durable.Log

	// repl is the follower machinery (replica mode only); promoting
	// latches the one allowed Promote call per role epoch (Rejoin resets
	// it when the node re-enters the group as a follower).
	repl      *replicaState
	promoting atomic.Bool

	// replicating is true while the node is an unpromoted follower: set
	// at construction for ReplicateFrom daemons, cleared by Promote, set
	// again by Rejoin. serving() is !demoted && !replicating.
	replicating atomic.Bool

	// demoted fences a deposed leader (Demote): accepted connections are
	// shed and the live ones severed, so a stalled-but-alive node the
	// gateway failed over from cannot keep mutating session state that
	// the promoted follower will never see.
	demoted atomic.Bool

	// connsMu/liveConns track accepted session connections so Demote can
	// sever them; entries live exactly as long as their handler goroutine.
	connsMu   sync.Mutex
	liveConns map[net.Conn]struct{}

	// run state, owned by Serve. ctx is the "batch loops live" context —
	// models auto-start batch loops only once it is set. A follower sets
	// it too (read-only sessions are served from continuously-warm
	// weights), so on every role it equals roleCtx once the role is up.
	// ctxRun is set for the whole Serve call so role transitions can
	// derive fresh role epochs under it.
	ctx    context.Context
	ctxRun context.Context
	wg     sync.WaitGroup

	// Role epoch: everything a role transition must tear down — batch
	// loops, background loops, the ship server, the tailer — runs under
	// roleCtx and registers on roleWG (in addition to wg). Promote is an
	// in-place upgrade (loops keep running); only Rejoin ends an epoch:
	// cancel roleCancel, wait roleWG, start the next epoch as a follower.
	// roleMu serializes role transitions; the context fields are guarded
	// by mu (readers) and only rewritten under roleMu.
	roleMu     sync.Mutex
	roleCtx    context.Context
	roleCancel context.CancelFunc
	roleWG     *sync.WaitGroup

	// metric handles (hot path: no map lookups)
	mSessions     *Gauge
	mSessionsPeak *Gauge
	mAccepted     *Counter
	mRejected     *Counter
	mRequests     *Counter
	mShed         *Counter
	mProtoErrs    *Counter
	mDeployErrs   *Counter
	mBatches      *Counter
	mBatchedReqs  *Counter
	mLatency      *Histogram
	mInference    *Histogram
	mResumed      *Counter
	mResumeRej    *Counter
	mStaleMeas    *Counter
	mTransitions  *Counter
	mTrainUpdates *Counter
	mPublished    *Counter
	mSwaps        *Counter
	mCheckpoints  *Counter
	mCkptErrs     *Counter
	mTrainLatency *Histogram
	mGemmShards   *Counter
	mSnapErrs     *Counter
	mRecSessions  *Gauge
	mRecModels    *Gauge
	mRecoveryMS   *Gauge
	mReplLag      *Gauge
	mPromotions   *Counter
	mPromoteRej   *Counter
	mDemotions    *Counter
	mRole         *Gauge
	mBinSessions  *Counter
	mNDJSessions  *Counter
	mRejoins      *Counter
	mRejoinErrs   *Counter
	mROSessions   *Counter
	mROActive     *Gauge
	mGen          *Gauge

	// testGate, when non-nil, is received from before each micro-batch is
	// gathered — test-only hook to hold the batcher and force queue
	// buildup deterministically.
	testGate chan struct{}
}

// New builds a Server with zero Config fields defaulted.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := NewRegistry()
	gemmWorkers := cfg.GemmWorkers
	if gemmWorkers <= 0 {
		gemmWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:           cfg,
		reg:           reg,
		started:       time.Now(),
		trainSem:      parallel.NewSem(runtime.GOMAXPROCS(0) - 1),
		gemmSem:       parallel.NewSem(gemmWorkers - 1),
		models:        map[modelKey]*model{},
		snapSums:      map[string][2]uint64{},
		liveConns:     map[net.Conn]struct{}{},
		mSessions:     reg.Gauge("serve_sessions"),
		mSessionsPeak: reg.Gauge("serve_sessions_peak"),
		mAccepted:     reg.Counter("serve_sessions_accepted_total"),
		mRejected:     reg.Counter("serve_sessions_rejected_total"),
		mRequests:     reg.Counter("serve_requests_total"),
		mShed:         reg.Counter("serve_requests_shed_total"),
		mProtoErrs:    reg.Counter("serve_protocol_errors_total"),
		mDeployErrs:   reg.Counter("serve_deploy_errors_total"),
		mBatches:      reg.Counter("serve_inference_batches_total"),
		mBatchedReqs:  reg.Counter("serve_inference_requests_total"),
		mLatency:      reg.Histogram("serve_request_latency"),
		mInference:    reg.Histogram("serve_inference_batch_latency"),
		mResumed:      reg.Counter("serve_sessions_resumed_total"),
		mResumeRej:    reg.Counter("serve_resume_rejected_total"),
		mStaleMeas:    reg.Counter("serve_stale_measurements_total"),
		mTransitions:  reg.Counter("serve_transitions_total"),
		mTrainUpdates: reg.Counter("serve_train_updates_total"),
		mPublished:    reg.Counter("serve_weights_published_total"),
		mSwaps:        reg.Counter("serve_weight_swaps_total"),
		mCheckpoints:  reg.Counter("serve_checkpoints_total"),
		mCkptErrs:     reg.Counter("serve_checkpoint_errors_total"),
		mTrainLatency: reg.Histogram("serve_train_round_latency"),
		mGemmShards:   reg.Counter("serve_gemm_shards_total"),
		mSnapErrs:     reg.Counter("serve_snapshot_errors_total"),
		mRecSessions:  reg.Gauge("serve_recovered_sessions"),
		mRecModels:    reg.Gauge("serve_recovered_models"),
		mRecoveryMS:   reg.Gauge("serve_recovery_ms"),
		mReplLag:      reg.Gauge("serve_repl_lag_records"),
		mPromotions:   reg.Counter("serve_promotions_total"),
		mPromoteRej:   reg.Counter("serve_promotions_rejected_total"),
		mDemotions:    reg.Counter("serve_demotions_total"),
		mRole:         reg.Gauge("serve_role"),
		mBinSessions:  reg.Counter("serve_sessions_binary_total"),
		mNDJSessions:  reg.Counter("serve_sessions_ndjson_total"),
		mRejoins:      reg.Counter("serve_rejoins_total"),
		mRejoinErrs:   reg.Counter("serve_rejoin_errors_total"),
		mROSessions:   reg.Counter("serve_readonly_sessions_total"),
		mROActive:     reg.Gauge("serve_readonly_active"),
		mGen:          reg.Gauge("serve_repl_generation"),
	}
	if cfg.ReplicateFrom == "" {
		s.mRole.Set(1) // leader; a replica moves 0→1 at promotion
	} else {
		s.replicating.Store(true)
	}
	s.sessions = newSessionTable(cfg.SessionTTL, cfg.MaxTrackedSessions, cfg.Seed, nil)
	reg.Gauge("serve_accept_shards").Set(int64(cfg.AcceptShards))
	reg.Gauge("serve_session_shards").Set(int64(len(s.sessions.shards)))
	s.sessions.onEvict = func(st *sessionState, gen uint64) {
		s.mu.Lock()
		mdl := s.models[st.key]
		s.mu.Unlock()
		if mdl != nil && mdl.learner != nil {
			mdl.learner.dropShard(st.token)
		}
		if s.dur != nil {
			// Tombstone the eviction so recovery does not resurrect the
			// session (evicted state is only dropped by replay when the
			// tombstone postdates it). A tombstone lost to backpressure is
			// not a bounded data loss but a permanent resurrection bug, so
			// unlike epoch records it blocks until the buffer has room —
			// safe here because onEvict runs outside the table lock.
			s.dur.AppendBlocking(&durable.Record{
				T:     durable.RecEvict,
				Token: st.token,
				Key:   durable.SessionKey{N: st.key.n, M: st.key.m, Spouts: st.key.spouts},
				Gen:   gen,
			})
		}
	}
	return s
}

// Registry exposes the server's metrics.
func (s *Server) Registry() *Registry { return s.reg }

// Preload creates (or returns) the model for a topology shape before any
// session arrives, so trained weights can be installed on its policy. It
// must be called before Serve: once the server is running, the model's
// batch loop reads the policy's networks concurrently, so a late
// SetNetworks would race — Preload refuses rather than hand out a policy
// it is no longer safe to mutate.
func (s *Server) Preload(n, m, spouts int) (*Policy, error) {
	if err := s.validShape(n, m, spouts); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctx != nil {
		return nil, errors.New("serve: Preload after Serve started")
	}
	key := modelKey{n, m, spouts}
	mdl, ok := s.models[key]
	if !ok {
		mdl = newModel(s, key)
		s.models[key] = mdl
		s.reg.Gauge("serve_models").Set(int64(len(s.models)))
	}
	return mdl.pol, nil
}

func (s *Server) validShape(n, m, spouts int) error {
	switch {
	case n < 1 || n > s.cfg.MaxExecutors:
		return fmt.Errorf("executors %d out of range [1,%d]", n, s.cfg.MaxExecutors)
	case m < 1 || m > s.cfg.MaxMachines:
		return fmt.Errorf("machines %d out of range [1,%d]", m, s.cfg.MaxMachines)
	case spouts < 1 || spouts > s.cfg.MaxSpouts:
		return fmt.Errorf("spouts %d out of range [1,%d]", spouts, s.cfg.MaxSpouts)
	}
	return nil
}

// model returns the model for key, creating (and, once Serve is running,
// starting) it on first use.
func (s *Server) model(key modelKey) *model {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[key]
	if !ok {
		m = newModel(s, key)
		s.models[key] = m
		s.reg.Gauge("serve_models").Set(int64(len(s.models)))
		if s.ctx != nil {
			m.start()
		}
	}
	return m
}

// Serve accepts scheduler sessions on l until the listener closes or ctx
// is cancelled, serving every session concurrently. Temporary accept
// errors back off and retry. On return all sessions and batch loops have
// drained.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	isReplica := s.cfg.ReplicateFrom != ""
	// Durability first: recovery creates models and session state, which
	// must exist (with their restored weights installed) before any batch
	// loop starts or any connection lands. A replica defers this to
	// Promote — until then the data dir is the tailer's mirror.
	if !isReplica && s.cfg.DataDir != "" && s.dur == nil {
		if err := s.openDurable(); err != nil {
			return err
		}
	}
	// The final snapshot must run after every session goroutine has
	// drained (deferred before wg.Wait so it executes after it); it turns
	// an orderly shutdown into a recovery that loses nothing. s.dur is
	// read under the lock because promotion installs it concurrently.
	defer func() {
		s.mu.Lock()
		dur := s.dur
		s.mu.Unlock()
		if dur == nil {
			return
		}
		if s.cfg.crashOnDrain {
			dur.Crash()
			return
		}
		if err := s.SnapshotNow(); err != nil {
			s.mSnapErrs.Inc()
			log.Printf("serve: final snapshot: %v", err)
		}
		if err := dur.Close(); err != nil {
			log.Printf("serve: closing durability log: %v", err)
		}
	}()

	sctx, cancel := context.WithCancel(ctx)
	// First role epoch: leader or follower, everything role-scoped runs
	// under roleCtx so a later Rejoin can tear it down without ending
	// Serve (sessions and accept loops live under sctx).
	roleCtx, roleCancel := context.WithCancel(sctx)
	s.mu.Lock()
	s.ctxRun = sctx
	s.roleCtx = roleCtx
	s.roleCancel = roleCancel
	s.roleWG = &sync.WaitGroup{}
	s.mu.Unlock()
	if isReplica {
		if err := s.startReplica(roleCtx); err != nil {
			cancel()
			return err
		}
	} else if err := s.activate(roleCtx); err != nil {
		cancel()
		s.wg.Wait()
		return err
	}
	defer s.wg.Wait()
	defer cancel()

	// Close the listener when ctx ends so Accept unblocks.
	stop := context.AfterFunc(sctx, func() { l.Close() })
	defer stop()

	// Per-core accept sharding: AcceptShards goroutines block in Accept on
	// the shared listener, so connection admission (handshake tail, session
	// goroutine spawn, admission check) runs in parallel instead of
	// serializing on one acceptor. A fatal accept error on any shard closes
	// the listener, which unblocks the siblings; the first such error is
	// the Serve result, exactly as with one acceptor.
	shards := s.cfg.AcceptShards
	errc := make(chan error, shards)
	for i := 0; i < shards; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			err := s.acceptLoop(sctx, l)
			if err != nil {
				l.Close()
			}
			errc <- err
		}()
	}
	var first error
	for i := 0; i < shards; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// acceptLoop is one accept shard: accept, spawn the session goroutine,
// repeat. Returns nil on orderly shutdown (context cancelled or listener
// closed), the fatal accept error otherwise.
func (s *Server) acceptLoop(sctx context.Context, l net.Listener) error {
	for {
		conn, err := core.AcceptRetry(l)
		if err != nil {
			if sctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.trackConn(conn)
			defer s.untrackConn(conn)
			// Serving-state gating happens inside handleConn, after the
			// hello: a follower sheds full sessions but accepts read-only
			// ones (follower reads), and only the hello says which is which.
			s.handleConn(sctx, conn)
		}()
	}
}

// activate turns the server live: batch loops for every existing model,
// the background janitor/snapshot/train/checkpoint loops, and — with
// ReplListen set — the WAL shipping server for followers. Runs at Serve
// start on a leader, at Promote on a replica. On a follower serving
// read-only sessions the batch loops are already running (m.start is
// idempotent); activate then only adds the leader-side loops.
func (s *Server) activate(sctx context.Context) error {
	s.mu.Lock()
	s.ctx = sctx
	for _, m := range s.models {
		m.start() // models preloaded before Serve (or recovered/replicated)
	}
	s.mu.Unlock()
	if s.cfg.SessionTTL > 0 {
		s.goLoop(sctx, s.cfg.SessionTTL/2, func() { s.sessions.sweep() })
	}
	if s.dur != nil && s.cfg.SnapshotEvery > 0 {
		s.goLoop(sctx, s.cfg.SnapshotEvery, func() {
			if err := s.SnapshotNow(); err != nil {
				// Keep serving — but a failing compaction means unbounded
				// WAL growth and stale recovered weights, so it must be
				// visible to operators, not just logged.
				s.mSnapErrs.Inc()
				log.Printf("serve: periodic snapshot to %s: %v", s.cfg.DataDir, err)
			}
		})
	}
	if s.cfg.Learn && s.cfg.TrainInterval > 0 {
		s.goLoop(sctx, s.cfg.TrainInterval, func() { s.TrainNow() })
	}
	if s.cfg.Learn && s.cfg.CheckpointDir != "" && s.cfg.CheckpointEvery > 0 {
		s.goLoop(sctx, s.cfg.CheckpointEvery, func() {
			if err := s.Checkpoint(s.cfg.CheckpointDir); err != nil {
				// Keep serving, but never fail to persist silently.
				log.Printf("serve: periodic checkpoint to %s: %v", s.cfg.CheckpointDir, err)
			}
		})
	}
	if s.cfg.ReplListen != "" && s.dur != nil {
		if err := s.startShipServer(sctx); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) trackConn(c net.Conn) {
	s.connsMu.Lock()
	s.liveConns[c] = struct{}{}
	s.connsMu.Unlock()
}

func (s *Server) untrackConn(c net.Conn) {
	s.connsMu.Lock()
	delete(s.liveConns, c)
	s.connsMu.Unlock()
}

// Demote fences a deposed leader (the gateway's /demote call after a
// failover reaches a node that was stalled, not dead): stop accepting
// sessions — new connections shed with a retry — and sever the live ones,
// so their clients re-dial the gateway and land on the promoted node.
// Nothing on disk is destroyed; Rejoin (the gateway drives it via POST
// /rejoin) resets the node's state through the follower resync path and
// re-enters it as a tailing follower of the new leader — no operator. A
// demoted node refuses Promote, and Demote on a node that is not serving
// is an error unless it is already demoted (idempotent retries converge).
func (s *Server) Demote() error {
	if s.demoted.Load() {
		return nil
	}
	if !s.serving() {
		return errors.New("serve: demote: not a serving leader")
	}
	if !s.demoted.CompareAndSwap(false, true) {
		return nil
	}
	s.connsMu.Lock()
	n := len(s.liveConns)
	for c := range s.liveConns {
		c.Close()
	}
	s.connsMu.Unlock()
	s.mDemotions.Inc()
	s.mRole.Set(0)
	log.Printf("serve: demoted: fenced %d live sessions; shedding all traffic until operator rejoin", n)
	return nil
}

// goLoop runs fn every period under the server's run group AND the
// current role epoch's group until ctx ends (janitor, background
// trainer, checkpointer) — Rejoin waits for the role group, Serve's
// drain waits for the run group.
func (s *Server) goLoop(ctx context.Context, period time.Duration, fn func()) {
	s.mu.Lock()
	rwg := s.roleWG
	s.mu.Unlock()
	s.wg.Add(1)
	if rwg != nil {
		rwg.Add(1)
	}
	go func() {
		defer s.wg.Done()
		if rwg != nil {
			defer rwg.Done()
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fn()
			case <-ctx.Done():
				return
			}
		}
	}()
}

// learningModels snapshots the models that have a trainer, in
// deterministic key order.
func (s *Server) learningModels() []*model {
	s.mu.Lock()
	models := make([]*model, 0, len(s.models))
	for _, m := range s.models {
		if m.learner != nil {
			models = append(models, m)
		}
	}
	s.mu.Unlock()
	sort.Slice(models, func(i, j int) bool {
		a, b := models[i].key, models[j].key
		if a.n != b.n {
			return a.n < b.n
		}
		if a.m != b.m {
			return a.m < b.m
		}
		return a.spouts < b.spouts
	})
	return models
}

// TrainNow runs one training round (UpdatesPerRound mini-batch updates
// followed by a weight publication) on every learning model, bounded by
// the shared training semaphore, and returns the total updates performed.
// The background trainer calls it on its interval; deterministic
// harnesses call it explicitly between lockstep epochs — each model's
// round depends only on its replay contents and trainer RNG state, so the
// outcome is schedule-independent either way.
func (s *Server) TrainNow() int {
	models := s.learningModels()
	if len(models) == 0 {
		return 0
	}
	var total atomic.Int64
	parallel.ForEachSem(context.Background(), s.trainSem, len(models), len(models), func(_ context.Context, i int) error {
		total.Add(int64(models[i].learner.trainRound(s.cfg.UpdatesPerRound)))
		return nil
	})
	return int(total.Load())
}

// Checkpoint writes every learning model's current actor/critic weights
// into dir (cmd/train format, atomic rename), returning the first error.
// Every per-model failure increments serve_checkpoint_errors_total — a
// periodic checkpoint that quietly stops persisting is silent durability
// loss, which operators must be able to alert on.
func (s *Server) Checkpoint(dir string) error {
	var first error
	for _, m := range s.learningModels() {
		if err := m.learner.checkpoint(dir); err != nil {
			s.mCkptErrs.Inc()
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// Handler returns the HTTP control surface: /metrics (text exposition),
// /healthz (JSON liveness with session/model counts), and the standard
// pprof endpoints under /debug/pprof/ (profiling a live daemon is how
// the WAL overhead numbers in PERFORMANCE.md §7 were attributed).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/heap", func(w http.ResponseWriter, r *http.Request) {
		pprof.Handler("heap").ServeHTTP(w, r)
	})
	mux.Handle("/metrics", s.reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		nModels := len(s.models)
		s.mu.Unlock()
		role := "leader"
		switch {
		case s.demoted.Load():
			role = "demoted"
		case !s.serving():
			role = "replica"
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":           "ok",
			"role":             role,
			"uptime_seconds":   time.Since(s.started).Seconds(),
			"sessions":         s.active.Load(),
			"models":           nModels,
			"repl_lag_records": s.mReplLag.Value(),
			"generation":       s.mGen.Value(),
		})
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		err := s.Promote()
		w.Header().Set("Content-Type", "application/json")
		if err != nil && !s.serving() {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		// Success — or an idempotent re-promote of a node already serving
		// (the gateway retries promotion until the role flips).
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "leader"})
	})
	mux.HandleFunc("/demote", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := s.Demote(); err != nil {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "demoted"})
	})
	mux.HandleFunc("/rejoin", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		addr := r.FormValue("addr")
		if err := s.Rejoin(addr); err != nil {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "rejoining", "addr": addr})
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := s.SnapshotNow(); err != nil {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "snapshotted"})
	})
	mux.HandleFunc("/checksums", func(w http.ResponseWriter, _ *http.Request) {
		// live: the trainer networks as they are right now (a leader's keep
		// moving while it trains; a follower's are frozen at the last
		// applied snapshot). snapshot: the sums recorded at the last
		// snapshot barrier this node captured or applied. A chaos harness
		// quiesces load, snapshots the leader, waits for follower lag zero,
		// then requires follower live == follower snapshot == leader
		// snapshot.
		s.mu.Lock()
		snapshot := make(map[string][2]string, len(s.snapSums))
		for k, sums := range s.snapSums {
			snapshot[k] = [2]string{fmt.Sprintf("%016x", sums[0]), fmt.Sprintf("%016x", sums[1])}
		}
		s.mu.Unlock()
		live := map[string][2]string{}
		for _, m := range s.learningModels() {
			a, c := m.learner.checksums()
			live[fmt.Sprintf("%dx%d/%d", m.key.n, m.key.m, m.key.spouts)] =
				[2]string{fmt.Sprintf("%016x", a), fmt.Sprintf("%016x", c)}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"live": live, "snapshot": snapshot})
	})
	mux.HandleFunc("/retarget", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		addr := r.FormValue("addr")
		if err := s.RetargetReplication(addr); err != nil {
			w.WriteHeader(http.StatusConflict)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "retargeted", "addr": addr})
	})
	return mux
}
