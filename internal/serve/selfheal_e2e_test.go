package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// The self-healing harness: automatic rejoin of a deposed leader through
// the lagged-follower resync path, follower reads from continuously-warm
// replicated weights, and the retarget error surface the gateway's
// supervision loop leans on. The process-level version of this story —
// SIGKILL, SIGSTOP, torn TCP, an agentfleet gateway doing the healing —
// runs in CI as `loadgen -chaos`; these tests pin the serve-layer
// mechanics in isolation.

// replicaTailerAddr reports where the node's tailer currently points.
func replicaTailerAddr(s *Server) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repl == nil {
		return ""
	}
	return s.repl.tailer.Addr()
}

// modelChecksums fetches the live trainer checksums for the golden shape.
func modelChecksums(t testing.TB, s *Server) (uint64, uint64) {
	t.Helper()
	s.mu.Lock()
	mdl := s.models[modelKey{durN, durM, durSpouts}]
	s.mu.Unlock()
	if mdl == nil || mdl.learner == nil {
		t.Fatal("no learning model for the golden shape")
	}
	return mdl.learner.checksums()
}

// replBarrier flushes the leader and waits until the follower applied
// every flushed record.
func replBarrier(t testing.TB, leader, follower *Server) {
	t.Helper()
	if err := leader.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	recs := leader.dur.FlushedPos().Recs
	waitCond(t, fmt.Sprintf("follower to apply %d records", recs), func() bool {
		tl := followerTailer(follower)
		return tl != nil && tl.AppliedRecs() >= recs
	})
}

// TestRejoinGolden is the serve-level self-healing acceptance run:
//
//  1. Leader A learns under sessions while shipping to follower B; A
//     dies without flushing and B is promoted — every token resumes.
//  2. A restarts from its stale data dir as a stray serving leader (what
//     an init system produces), is demoted and REJOINED as a tailing
//     follower of B: state wiped, resynced from B's reset snapshot under
//     B's higher generation, weights bitwise B's snapshot barrier.
//  3. B dies; the rejoined A is promoted — the second failover lands on
//     the node that was deposed in the first — and every token resumes
//     again, at a generation that only ever moved forward.
func TestRejoinGolden(t *testing.T) {
	replA, replB := pickAddr(t), pickAddr(t)
	dirA, dirB := t.TempDir(), t.TempDir()

	cfgA := durableConfig(dirA, true)
	cfgA.ReplListen = replA
	sA, addrA, crashA := startDurable(t, cfgA)

	cfgB := durableConfig(dirB, true)
	cfgB.ReplListen = replB
	cfgB.ReplicateFrom = replA
	sB, addrB, crashB := startDurable(t, cfgB)

	// ---- Phase 1: learn on A, ship to B, crash A, promote B.
	clients := dialDurable(t, addrA, durSessions, false)
	envs := make([]*goldenEnv, durSessions)
	for i := range envs {
		envs[i] = newGoldenEnv(1000+int64(i), durM, durSpouts)
	}
	var streams strings.Builder
	for epoch := 1; epoch <= 20; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
		if epoch == 10 {
			if err := sA.SnapshotNow(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	replBarrier(t, sA, sB)
	crashA()
	if err := sB.Promote(); err != nil {
		t.Fatalf("promote B: %v", err)
	}
	genB := sB.mGen.Value()
	clients = dialDurable(t, addrB, durSessions, true)
	for epoch := 21; epoch <= 25; epoch++ {
		stepAll(t, sB, clients, envs, &streams, epoch)
	}

	// ---- Phase 2: A restarts as a stray leader and is healed in.
	cfgA2 := durableConfig(dirA, true)
	cfgA2.ReplListen = replA
	sA2, addrA2, crashA2 := startDurable(t, cfgA2)
	// Prove the stray-leader premise — and synchronize on A2 actually being
	// up (startDurable returns mid-recovery): it accepts a full session and
	// resumes the token from its STALE WAL, exactly the split-brain hazard
	// the gateway's heal sequence exists to close.
	stray := NewSession(ClientConfig{
		Addr:  addrA2,
		Hello: HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, Token: "d0"},
	})
	if err := stray.Connect(context.Background()); err != nil {
		t.Fatalf("stray A2 refused a session: %v", err)
	}
	if !stray.Resumed() {
		t.Fatal("stray A2 did not resume from its stale WAL")
	}
	stray.Close()
	if !sA2.serving() {
		t.Fatal("restarted A is not serving — the stray-leader premise is gone")
	}
	// The gateway's heal sequence, verbatim: demote, then rejoin at B.
	if err := sA2.Demote(); err != nil {
		t.Fatalf("demote stray A: %v", err)
	}
	if err := sA2.Rejoin(replB); err != nil {
		t.Fatalf("rejoin A at B: %v", err)
	}
	if sA2.serving() {
		t.Fatal("rejoined A still serving")
	}
	if !sA2.replicating.Load() {
		t.Fatal("rejoined A not replicating")
	}

	// New acknowledged work on B must reach the rejoined A; the snapshot
	// barrier must propagate B's weights bitwise.
	for epoch := 26; epoch <= 30; epoch++ {
		stepAll(t, sB, clients, envs, &streams, epoch)
	}
	// Snapshots-applied count before the barrier snapshot: the rejoin
	// resync already delivered one (the reset snapshot).
	snapsBefore := sA2.reg.Counter("serve_repl_snapshots_applied_total").Value()
	if err := sB.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	replBarrier(t, sB, sA2)
	// The record barrier above is not enough here: A2 may have tailed all
	// of B's records live, leaving nothing to apply, while the snapshot
	// frame — which is what installs B's weights into A2's learner — is
	// still in flight. Wait for it to land before comparing.
	waitCond(t, "rejoined A to apply the barrier snapshot", func() bool {
		return sA2.reg.Counter("serve_repl_snapshots_applied_total").Value() > snapsBefore
	})
	bActor, bCritic := modelChecksums(t, sB)
	aActor, aCritic := modelChecksums(t, sA2)
	if aActor != bActor || aCritic != bCritic {
		t.Fatalf("rejoined A's weights diverged: %016x/%016x vs B's %016x/%016x",
			aActor, aCritic, bActor, bCritic)
	}
	if got := sA2.mGen.Value(); got != genB {
		t.Fatalf("rejoined A at generation %d, leader at %d", got, genB)
	}

	// ---- Phase 3: B dies; the rejoined A takes over. Full circle.
	for i := range clients {
		clients[i].Close()
	}
	crashB()
	if err := sA2.Promote(); err != nil {
		t.Fatalf("promote rejoined A: %v", err)
	}
	if got := sA2.mGen.Value(); got <= genB {
		t.Fatalf("generation did not advance on second failover: %d after %d", got, genB)
	}
	clients = dialDurable(t, addrA2, durSessions, true)
	for epoch := 31; epoch <= 35; epoch++ {
		stepAll(t, sA2, clients, envs, &streams, epoch)
	}
	for i := range clients {
		clients[i].Close()
	}
	crashA2()
}

// TestRejoinRefusalsAndRetarget pins the rejoin state machine's edges:
// a serving leader refuses (demote first), an empty address refuses, and
// on a node already tailing undemoted Rejoin degenerates to an
// idempotent retarget instead of a state wipe.
func TestRejoinRefusalsAndRetarget(t *testing.T) {
	replA := pickAddr(t)
	cfgA := durableConfig(t.TempDir(), false)
	cfgA.ReplListen = replA
	sA, _, downA := startDurable(t, cfgA)
	defer downA()

	if err := sA.Rejoin(pickAddr(t)); err == nil || !strings.Contains(err.Error(), "demote first") {
		t.Fatalf("serving leader rejoin: %v, want demote-first refusal", err)
	}
	if err := sA.Rejoin(""); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty-address rejoin: %v, want refusal", err)
	}

	cfgB := durableConfig(t.TempDir(), false)
	cfgB.ReplicateFrom = replA
	sB, _, downB := startDurable(t, cfgB)
	defer downB()
	waitCond(t, "follower tailing", func() bool { return followerTailer(sB) != nil })

	// Same address: a no-op, not a wipe.
	if err := sB.Rejoin(replA); err != nil {
		t.Fatalf("idempotent rejoin: %v", err)
	}
	if got := replicaTailerAddr(sB); got != replA {
		t.Fatalf("tailer points at %s after idempotent rejoin, want %s", got, replA)
	}
	// Different address: a retarget of the live tailer.
	other := pickAddr(t)
	if err := sB.Rejoin(other); err != nil {
		t.Fatalf("rejoin-as-retarget: %v", err)
	}
	if got := replicaTailerAddr(sB); got != other {
		t.Fatalf("tailer points at %s after rejoin-as-retarget, want %s", got, other)
	}
	if err := sB.RetargetReplication(replA); err != nil {
		t.Fatalf("retarget back: %v", err)
	}
}

// TestRetargetReplicationErrors drives RetargetReplication through its
// error surface and its recovery promise: a retarget at an unreachable
// address is not fatal — the tailer keeps retrying — and a later
// retarget back to a live leader resumes replication where it left off.
func TestRetargetReplicationErrors(t *testing.T) {
	replA := pickAddr(t)
	cfgA := durableConfig(t.TempDir(), false)
	cfgA.ReplListen = replA
	sA, addrA, downA := startDurable(t, cfgA)
	defer downA()

	if err := sA.RetargetReplication(pickAddr(t)); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("retarget on a leader: %v, want not-a-replica refusal", err)
	}

	cfgB := durableConfig(t.TempDir(), false)
	cfgB.ReplicateFrom = replA
	sB, _, downB := startDurable(t, cfgB)
	defer downB()
	waitCond(t, "follower tailing", func() bool { return followerTailer(sB) != nil })

	if err := sB.RetargetReplication(""); err == nil || !strings.Contains(err.Error(), "empty address") {
		t.Fatalf("empty retarget: %v, want refusal", err)
	}

	// An unreachable new leader: the retarget itself succeeds (the tailer
	// dials asynchronously, with backoff) — twice, idempotently.
	dead := pickAddr(t)
	if err := sB.RetargetReplication(dead); err != nil {
		t.Fatalf("retarget to unreachable: %v", err)
	}
	if err := sB.RetargetReplication(dead); err != nil {
		t.Fatalf("double retarget: %v", err)
	}

	// Acknowledged work lands on A while B points into the void…
	clients := dialDurable(t, addrA, 1, false)
	envs := []*goldenEnv{newGoldenEnv(7, durM, durSpouts)}
	var streams strings.Builder
	for epoch := 1; epoch <= 5; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
	}
	// …and arrives once B is pointed home again.
	if err := sB.RetargetReplication(replA); err != nil {
		t.Fatalf("retarget back to live leader: %v", err)
	}
	replBarrier(t, sA, sB)
	clients[0].Close()

	// A retarget racing a promotion loses: once promoting, the node is no
	// longer anyone's follower.
	if err := sB.Promote(); err != nil {
		t.Fatalf("promote B: %v", err)
	}
	if err := sB.RetargetReplication(replA); err == nil || !strings.Contains(err.Error(), "already promoted") {
		t.Fatalf("retarget after promote: %v, want already-promoted refusal", err)
	}
}

// TestFollowerReads pins the follower-read contract: an unpromoted
// follower sheds full sessions but answers ReadOnly hellos from its
// continuously-warm replicated weights — including a warm start seeded
// from a replicated session token — and never issues resumption state.
func TestFollowerReads(t *testing.T) {
	replA := pickAddr(t)
	cfgA := durableConfig(t.TempDir(), false)
	cfgA.ReplListen = replA
	sA, addrA, downA := startDurable(t, cfgA)
	defer downA()
	cfgB := durableConfig(t.TempDir(), false)
	cfgB.ReplicateFrom = replA
	sB, addrB, downB := startDurable(t, cfgB)
	defer downB()

	// A full session learns on the leader; its state replicates to B.
	clients := dialDurable(t, addrA, 1, false) // token "d0"
	envs := []*goldenEnv{newGoldenEnv(42, durM, durSpouts)}
	var streams strings.Builder
	for epoch := 1; epoch <= 8; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
	}
	replBarrier(t, sA, sB)

	ctx := context.Background()
	hello := HelloMsg{Topology: "ro", N: durN, M: durM, Spouts: durSpouts}

	// Full sessions are shed by the unpromoted follower.
	full := NewSession(ClientConfig{Addr: addrB, Hello: hello, MaxAttempts: 1})
	if err := full.Connect(ctx); err == nil {
		full.Close()
		t.Fatal("full session connected to an unpromoted follower")
	}

	// A cold read-only session is served — and gets no token back:
	// there is nothing resumable to come back to.
	roHello := hello
	roHello.ReadOnly = true
	ro := NewSession(ClientConfig{Addr: addrB, Hello: roHello})
	if err := ro.Connect(ctx); err != nil {
		t.Fatalf("read-only connect to follower: %v", err)
	}
	defer ro.Close()
	if ro.Resumed() {
		t.Fatal("cold read-only session claims a warm start")
	}
	if ro.Token() != "" {
		t.Fatalf("read-only session was issued token %q", ro.Token())
	}
	meas, _ := envs[0].measure(ro.Assign())
	assign, err := ro.Step(ctx, meas)
	if err != nil {
		t.Fatalf("read-only step on follower: %v", err)
	}
	if len(assign) != durN {
		t.Fatalf("read-only step returned %d assignments, want %d", len(assign), durN)
	}

	// A read-only hello presenting the leader session's token warm-starts
	// from the replicated state: same current assignment, flagged resumed.
	warmHello := roHello
	warmHello.Token = "d0"
	warm := NewSession(ClientConfig{Addr: addrB, Hello: warmHello})
	if err := warm.Connect(ctx); err != nil {
		t.Fatalf("warm read-only connect: %v", err)
	}
	defer warm.Close()
	if !warm.Resumed() {
		t.Fatal("warm read-only session did not seed from the replicated token")
	}
	if got, want := fmt.Sprint(warm.Assign()), fmt.Sprint(clients[0].Assign()); got != want {
		t.Fatalf("warm read-only assignment %s, leader session's %s", got, want)
	}
	if _, err := warm.Step(ctx, meas); err != nil {
		t.Fatalf("warm read-only step: %v", err)
	}

	// An unknown token is a cold start, never an error — the same
	// degradation rule as resumption after TTL eviction.
	staleHello := roHello
	staleHello.Token = "never-issued"
	stale := NewSession(ClientConfig{Addr: addrB, Hello: staleHello})
	if err := stale.Connect(ctx); err != nil {
		t.Fatalf("unknown-token read-only connect: %v", err)
	}
	defer stale.Close()
	if stale.Resumed() {
		t.Fatal("unknown token produced a warm start")
	}
	clients[0].Close()
}

// BenchmarkFollowerReadStep measures the follower-read serving path: one
// inference-only session stepping against an undemoted replica whose
// weights are continuously warm from the leader's ship stream. This is
// the per-request cost a gateway-routed read-only client sees (minus the
// gateway splice), dominated by one policy forward pass plus the batch
// window.
func BenchmarkFollowerReadStep(b *testing.B) {
	replA := pickAddr(b)
	cfgA := durableConfig(b.TempDir(), false)
	cfgA.ReplListen = replA
	sA, addrA, downA := startDurable(b, cfgA)
	defer downA()

	cfgB := durableConfig(b.TempDir(), false)
	cfgB.ReplicateFrom = replA
	sB, addrB, downB := startDurable(b, cfgB)
	defer downB()

	// Create the model on the leader and ship a few learned epochs so the
	// follower serves real replicated weights, not a cold init.
	clients := dialDurable(b, addrA, 1, false)
	envs := []*goldenEnv{newGoldenEnv(1, durM, durSpouts)}
	var streams strings.Builder
	for epoch := 1; epoch <= 4; epoch++ {
		stepAll(b, sA, clients, envs, &streams, epoch)
	}
	replBarrier(b, sA, sB)

	ro := NewSession(ClientConfig{
		Addr:  addrB,
		Hello: HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, ReadOnly: true},
	})
	if err := ro.Connect(context.Background()); err != nil {
		b.Fatal(err)
	}
	defer ro.Close()
	meas, _ := envs[0].measure(ro.Assign())

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ro.Step(context.Background(), meas); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	clients[0].Close()
}
