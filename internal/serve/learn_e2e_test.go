package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rl"
)

// The golden end-to-end harness: a seeded daemon plus an in-process
// client pool run lockstep epochs of online learning against a synthetic
// deterministic DSDPS. Every source of randomness is seeded and every
// training step happens at an explicit barrier (TrainNow between
// epochs), so two runs must agree bitwise — weight checksums and the full
// per-session solution streams. That is the regression net for the whole
// train/publish/swap path: any nondeterminism (map iteration, timing
// dependence, cross-session interleaving leaking into training) shows up
// as a diff here.
//
// The same harness asserts the learning claim itself: after the epochs,
// the served policy's mean measured latency beats the frozen-weights
// baseline on the identical seeded workload, and a client killed mid-run
// resumes its session with its prior state.

// goldenEnv is one session's deterministic DSDPS stand-in: latency is a
// load-imbalance penalty, so balanced solutions are better — the signal
// online learning must find.
type goldenEnv struct {
	rng  *rand.Rand
	m    int
	work []float64
}

func newGoldenEnv(seed int64, m, spouts int) *goldenEnv {
	return &goldenEnv{rng: rand.New(rand.NewSource(seed)), m: m, work: make([]float64, spouts)}
}

// measure returns the measurement for the currently deployed assignment
// under the next workload draw, and the raw latency for scoring.
func (e *goldenEnv) measure(assign []int) (core.MeasurementMsg, float64) {
	for j := range e.work {
		e.work[j] = 100 * (0.8 + 0.4*e.rng.Float64())
	}
	counts := make([]int, e.m)
	for _, mach := range assign {
		counts[mach]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	// imb ∈ [0,1]: 0 when perfectly balanced, 1 with everything on one
	// machine.
	ideal := float64(len(assign)) / float64(e.m)
	imb := (float64(maxC) - ideal) / (float64(len(assign)) - ideal)
	loadFac := 0.0
	for _, w := range e.work {
		loadFac += w
	}
	loadFac /= 100 * float64(len(e.work))
	lat := 20 + 60*imb*loadFac
	return core.MeasurementMsg{AvgTupleTimeMS: lat, Workload: e.work}, lat
}

type goldenResult struct {
	streams     string  // all sessions' solution streams, concatenated
	actorSum    uint64  // trainer actor checksum (0 when frozen)
	criticSum   uint64  // trainer critic checksum (0 when frozen)
	tailLatency float64 // mean measured latency over the scoring window
	resumes     int64
	transitions int64
}

const (
	goldenSessions = 4
	goldenEpochs   = 150
	goldenKillAt   = 60  // sever one client mid-run; it must resume
	goldenTail     = 100 // scoring window: the last goldenTail epochs
	goldenN        = 6
	goldenM        = 3
	goldenSpouts   = 2
)

// runGolden drives one full lockstep run and returns everything the
// assertions compare.
func runGolden(t *testing.T, learn bool) goldenResult {
	t.Helper()
	s, addr, shutdown := startServer(t, Config{
		Seed:             123,
		Learn:            learn,
		TrainInterval:    -1, // deterministic mode: TrainNow at epoch barriers only
		TrainBatch:       16,
		UpdatesPerRound:  2,
		ReplayPerSession: 200,
		SessionTTL:       time.Hour,
		Explore:          rl.EpsilonSchedule{Start: 0.8, End: 0, Decay: 25, Kind: rl.ExpDecay},
	})
	defer shutdown()

	clients := make([]*Session, goldenSessions)
	envs := make([]*goldenEnv, goldenSessions)
	for i := range clients {
		clients[i] = NewSession(ClientConfig{
			Addr:  addr,
			Hello: HelloMsg{Topology: "golden", N: goldenN, M: goldenM, Spouts: goldenSpouts, Token: fmt.Sprintf("g%d", i)},
		})
		if err := clients[i].Connect(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer clients[i].Close()
		envs[i] = newGoldenEnv(1000+int64(i), goldenM, goldenSpouts)
	}

	var streams strings.Builder
	var tailSum float64
	tailN := 0
	for epoch := 1; epoch <= goldenEpochs; epoch++ {
		if epoch == goldenKillAt {
			// Kill one client's transport mid-run: its next Step redials,
			// presents the session token, and must land back in the same
			// daemon-side session.
			clients[1].conn.Close()
		}
		for i, c := range clients {
			meas, lat := envs[i].measure(c.Assign())
			assign, err := c.Step(context.Background(), meas)
			if err != nil {
				t.Fatalf("epoch %d session %d: %v", epoch, i, err)
			}
			fmt.Fprintf(&streams, "s%d e%d %v\n", i, epoch, assign)
			if epoch > goldenEpochs-goldenTail {
				tailSum += lat
				tailN++
			}
		}
		if learn {
			s.TrainNow()
		}
	}

	if got := clients[1].stats.Resumes.Load(); got != 1 {
		t.Fatalf("killed client resumed %d times, want 1", got)
	}
	if got := s.reg.Counter("serve_sessions_resumed_total").Value(); got != 1 {
		t.Fatalf("daemon resumed %d sessions, want 1", got)
	}

	res := goldenResult{
		streams:     streams.String(),
		tailLatency: tailSum / float64(tailN),
		resumes:     clients[1].stats.Resumes.Load(),
		transitions: s.reg.Counter("serve_transitions_total").Value(),
	}
	if learn {
		s.mu.Lock()
		mdl := s.models[modelKey{goldenN, goldenM, goldenSpouts}]
		s.mu.Unlock()
		res.actorSum, res.criticSum = mdl.learner.checksums()
		// The published double-buffer must hold exactly the trainer's
		// weights (Restore is bitwise).
		mdl.learner.mu.Lock()
		pub := mdl.learner.lastPublished
		mdl.learner.mu.Unlock()
		if pub == nil {
			t.Fatal("trainer never published weights")
		}
		if pub.actor.Checksum() != res.actorSum || pub.critic.Checksum() != res.criticSum {
			t.Fatal("published weight buffer disagrees with the trainer's networks")
		}
		if got := s.reg.Counter("serve_train_updates_total").Value(); got == 0 {
			t.Fatal("no training updates ran")
		}
	}
	return res
}

// TestGoldenOnlineLearningDeterministic: two complete online-learning
// runs — live sessions, mid-run kill/resume, lockstep training, weight
// swaps — produce identical solution streams and identical weight
// checksums.
func TestGoldenOnlineLearningDeterministic(t *testing.T) {
	a := runGolden(t, true)
	b := runGolden(t, true)
	if a.actorSum != b.actorSum || a.criticSum != b.criticSum {
		t.Fatalf("weight checksums diverged across identical runs: %x/%x vs %x/%x",
			a.actorSum, a.criticSum, b.actorSum, b.criticSum)
	}
	if a.streams != b.streams {
		t.Fatal(firstStreamDiff(a.streams, b.streams))
	}
	if a.transitions != b.transitions {
		t.Fatalf("transition counts diverged: %d vs %d", a.transitions, b.transitions)
	}
	// Every epoch after the first closes one transition per session; the
	// mid-run kill must not lose any (the pending transition is part of
	// the resumable state).
	want := int64(goldenSessions * (goldenEpochs - 1))
	if a.transitions != want {
		t.Fatalf("collected %d transitions, want %d (kill/resume must not drop any)", a.transitions, want)
	}
}

// TestGoldenLearnedBeatsFrozen: after the same seeded workload, the
// policy that learned online serves measurably better solutions than the
// frozen-checkpoint baseline it started from.
func TestGoldenLearnedBeatsFrozen(t *testing.T) {
	learned := runGolden(t, true)
	frozen := runGolden(t, false)
	t.Logf("tail mean latency: learned %.2fms, frozen %.2fms", learned.tailLatency, frozen.tailLatency)
	if learned.tailLatency >= frozen.tailLatency {
		t.Fatalf("online learning did not beat the frozen baseline: %.2fms vs %.2fms",
			learned.tailLatency, frozen.tailLatency)
	}
}

// firstStreamDiff locates the first differing line of two solution
// streams, for a readable failure.
func firstStreamDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("solution streams diverged at line %d: %q vs %q", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("solution streams diverged in length: %d vs %d lines", len(al), len(bl))
}
