package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// benchStates builds H encoded states for an n×m×spouts policy.
func benchStates(p *Policy, h int, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	states := mat.NewMatrix(h, p.StateDim())
	assign := make([]int, p.Space.N)
	work := make([]float64, p.Codec.NumSpouts)
	for i := 0; i < h; i++ {
		for j := range assign {
			assign[j] = rng.Intn(p.Space.M)
		}
		for j := range work {
			work[j] = 1000 * rng.Float64()
		}
		p.Codec.Encode(assign, work, states.Row(i))
	}
	return states
}

// The inference benchmarks pit one batched pass over 64 pending requests
// (what the micro-batcher does: coalesced GEMMs through the zero-skipping
// inference kernels) against 64 per-request passes the way the pre-serve
// code path did them — per-sample dense GEMVs (nn.Forward) for the actor
// and one critic GEMV per K-NN candidate, exactly ActorCritic.Greedy's
// structure ("one GEMV per request"). Same networks, same states, same
// decisions; the ratio is the serving engine's win at 64 concurrent
// sessions. Topology: 24 executors × 8 machines (the paper's large
// scale), K = 8.
const benchSessions = 64

func newBenchPolicy() *Policy { return NewPolicy(24, 8, 3, 8, 1234) }

// selectPerSampleGEMV reproduces the seed's per-request decision path on
// the policy's networks: actor Forward (one GEMV), exact K-NN, then one
// per-sample critic Forward per candidate.
type perSampleBaseline struct {
	p     *Policy
	proto []float64
	sa    []float64
	knn   [][]int
}

func newPerSampleBaseline(p *Policy) *perSampleBaseline {
	return &perSampleBaseline{
		p:     p,
		proto: make([]float64, p.Space.Dim()),
		sa:    make([]float64, p.Codec.Dim()+p.Space.Dim()),
	}
}

func (b *perSampleBaseline) selectOne(state []float64, out []int) {
	p := b.p
	copy(b.proto, p.Actor.Forward(state))
	b.knn = p.Space.KNearestInto(b.proto, p.K, b.knn)
	sdim := p.Codec.Dim()
	best, bestQ := 0, 0.0
	for i, cand := range b.knn {
		copy(b.sa[:sdim], state)
		p.Space.Encode(cand, b.sa[sdim:])
		q := p.Critic.Forward(b.sa)[0]
		if i == 0 || q > bestQ {
			best, bestQ = i, q
		}
	}
	copy(out, b.knn[best])
}

func BenchmarkInferenceBatched64(b *testing.B) {
	p := newBenchPolicy()
	states := benchStates(p, benchSessions, 9)
	out := make([][]int, benchSessions)
	for i := range out {
		out[i] = make([]int, p.Space.N)
	}
	p.SelectBatch(states, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SelectBatch(states, out)
	}
	b.ReportMetric(float64(b.N*benchSessions)/b.Elapsed().Seconds(), "decisions/s")
}

func BenchmarkInferencePerRequest64(b *testing.B) {
	p := newBenchPolicy()
	base := newPerSampleBaseline(p)
	states := benchStates(p, benchSessions, 9)
	out := make([]int, p.Space.N)
	base.selectOne(states.Row(0), out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchSessions; s++ {
			base.selectOne(states.Row(s), out)
		}
	}
	b.ReportMetric(float64(b.N*benchSessions)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkInferenceSingle64 measures the serving engine forced to
// micro-batches of one (MaxBatch=1): the engine's kernels without the
// cross-session coalescing.
func BenchmarkInferenceSingle64(b *testing.B) {
	p := newBenchPolicy()
	states := benchStates(p, benchSessions, 9)
	out := make([]int, p.Space.N)
	p.Select(states.Row(0), out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchSessions; s++ {
			p.Select(states.Row(s), out)
		}
	}
	b.ReportMetric(float64(b.N*benchSessions)/b.Elapsed().Seconds(), "decisions/s")
}

// benchServer measures end-to-end throughput over loopback TCP with 64
// concurrent sessions, batched (MaxBatch 64) vs unbatched (MaxBatch 1).
func benchServer(b *testing.B, cfg Config) {
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	defer func() {
		cancel()
		<-done
	}()

	pool := NewPool(ClientConfig{
		Addr:  l.Addr().String(),
		Hello: HelloMsg{Topology: "bench", N: 24, M: 8, Spouts: 3},
	}, benchSessions)
	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	b.ResetTimer()
	err = pool.Run(context.Background(), func(ctx context.Context, i int, sess *Session) error {
		meas := core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{100, 200, 300}}
		for remaining.Add(-1) >= 0 {
			if _, err := sess.Step(ctx, meas); err != nil {
				return fmt.Errorf("session %d: %w", i, err)
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServeBatched64Sessions(b *testing.B) {
	benchServer(b, Config{MaxBatch: 64, Seed: 1})
}

func BenchmarkServeUnbatched64Sessions(b *testing.B) {
	benchServer(b, Config{MaxBatch: 1, Seed: 1})
}

// BenchmarkInferenceBatched64Workers shards the 64-request micro-batch's
// GEMMs across a worker pool (the H·K = 512 candidate-row critic pass
// splits into 64-row bands). Decisions are bitwise identical across pool
// sizes; on a single-core host the >1 variants measure sharding overhead.
func BenchmarkInferenceBatched64Workers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := newBenchPolicy()
			if w > 1 {
				p.SetPool(nn.NewPool(parallel.NewSem(w - 1)))
			}
			states := benchStates(p, benchSessions, 9)
			out := make([][]int, benchSessions)
			for i := range out {
				out[i] = make([]int, p.Space.N)
			}
			p.SelectBatch(states, out)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.SelectBatch(states, out)
			}
			b.ReportMetric(float64(b.N*benchSessions)/b.Elapsed().Seconds(), "decisions/s")
		})
	}
}

// BenchmarkServeGemmWorkers is the end-to-end variant: 64 concurrent
// learning-free sessions against a daemon whose micro-batch GEMMs shard
// across -gemm-workers.
func BenchmarkServeGemmWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchServer(b, Config{MaxBatch: 64, Seed: 1, GemmWorkers: w})
		})
	}
}
