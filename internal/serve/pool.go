package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
)

// ClientConfig configures scheduler-side sessions against the daemon.
type ClientConfig struct {
	// Addr is the daemon's "host:port".
	Addr string
	// Hello declares the topology shape (one session == one topology).
	Hello HelloMsg
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds one request/reply round trip (default 30s).
	IOTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the exponential backoff used both for
	// reconnects and for server retry replies (defaults 10ms/2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds dial/retry attempts per operation (default 8).
	MaxAttempts int
	// MaxLineBytes bounds one reply frame (default 1MiB).
	MaxLineBytes int
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 30 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	return c
}

// PoolStats aggregates client-side outcomes across a pool's sessions.
// Retries counts server load-shed replies honored, Reconnects counts
// re-dialed sessions, Errors counts protocol-level failures.
type PoolStats struct {
	Steps      atomic.Int64
	Retries    atomic.Int64
	Reconnects atomic.Int64
	Errors     atomic.Int64
}

// Session is one scheduler session: a connection with its hello handshake,
// current solution, and reconnect/backoff logic. Not safe for concurrent
// use; a Pool gives each goroutine its own Session.
type Session struct {
	cfg   ClientConfig
	stats *PoolStats

	conn   net.Conn
	enc    *json.Encoder
	lr     *lineReader
	assign []int
	epoch  int
	// everConnected distinguishes the first (lazy) dial from a true
	// reconnect in the Reconnects stat.
	everConnected bool
}

// NewSession builds a disconnected session (Connect or the first Step
// dials).
func NewSession(cfg ClientConfig) *Session {
	return &Session{cfg: cfg.withDefaults(), stats: &PoolStats{}}
}

// Assign returns the most recent scheduling solution (nil before the first
// successful exchange).
func (s *Session) Assign() []int { return s.assign }

// Epoch returns the last served epoch.
func (s *Session) Epoch() int { return s.epoch }

// backoff is one exponential-backoff schedule: wait sleeps the current
// delay (or returns early on ctx), then doubles it up to max.
type backoff struct {
	cur, max time.Duration
}

func (b *backoff) wait(ctx context.Context) error {
	select {
	case <-time.After(b.cur):
	case <-ctx.Done():
		return ctx.Err()
	}
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	return nil
}

func (c ClientConfig) backoff() backoff {
	return backoff{cur: c.BaseBackoff, max: c.MaxBackoff}
}

// Connect dials with exponential backoff and performs the hello handshake,
// leaving the session holding its starting solution.
func (s *Session) Connect(ctx context.Context) error {
	bo := s.cfg.backoff()
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if lastErr != nil {
			if err := bo.wait(ctx); err != nil {
				return err
			}
		}
		if lastErr = s.dialOnce(ctx); lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, errRejected) {
			// Deterministic rejection (bad shape): the same hello cannot
			// succeed on retry, so don't burn the backoff schedule on it.
			return lastErr
		}
	}
	return fmt.Errorf("serve: connect %s: %w", s.cfg.Addr, lastErr)
}

// errRejected marks a deterministic hello rejection — the daemon judged
// the session's declared shape invalid, so redialing with the same hello
// is pointless.
var errRejected = errors.New("hello rejected")

// dialOnce performs one dial + hello exchange.
func (s *Session) dialOnce(ctx context.Context) error {
	s.close()
	d := net.Dialer{Timeout: s.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.conn = conn
	s.enc = json.NewEncoder(conn)
	s.lr = newLineReader(bufio.NewReader(conn), s.cfg.MaxLineBytes)
	sol, err := s.roundTrip(&s.cfg.Hello)
	if err != nil {
		s.close()
		return err
	}
	if sol.Retry {
		s.close()
		return fmt.Errorf("serve: session rejected: %s", sol.Err)
	}
	if sol.Err != "" {
		s.close()
		return fmt.Errorf("serve: %w: %s", errRejected, sol.Err)
	}
	if len(sol.Assign) != s.cfg.Hello.N {
		s.close()
		return fmt.Errorf("serve: starting solution has %d executors, want %d", len(sol.Assign), s.cfg.Hello.N)
	}
	s.assign = append(s.assign[:0], sol.Assign...)
	s.epoch = sol.Epoch
	s.everConnected = true
	return nil
}

// roundTrip writes one message and reads one SolutionMsg under IOTimeout.
func (s *Session) roundTrip(msg any) (core.SolutionMsg, error) {
	var sol core.SolutionMsg
	deadline := time.Now().Add(s.cfg.IOTimeout)
	s.conn.SetWriteDeadline(deadline)
	if err := s.enc.Encode(msg); err != nil {
		return sol, err
	}
	s.conn.SetReadDeadline(deadline)
	line, err := s.lr.next()
	if err != nil {
		return sol, err
	}
	if err := json.Unmarshal(line, &sol); err != nil {
		return sol, err
	}
	return sol, nil
}

// Step submits one measurement and returns the daemon's next scheduling
// solution. Connection failures reconnect (with backoff) and resubmit;
// load-shed replies back off and resubmit. The returned slice is owned by
// the session and valid until the next Step.
func (s *Session) Step(ctx context.Context, meas core.MeasurementMsg) ([]int, error) {
	bo := s.cfg.backoff()
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if s.conn == nil {
			reconnect := s.everConnected
			if err := s.Connect(ctx); err != nil {
				return nil, err
			}
			if reconnect {
				s.stats.Reconnects.Add(1)
			}
		}
		sol, err := s.roundTrip(&meas)
		if err != nil {
			// Broken transport: drop the connection and retry on a fresh
			// one (the daemon treats each connection as a new session, so
			// no state is lost beyond the in-flight request).
			s.close()
			lastErr = err
			if werr := bo.wait(ctx); werr != nil {
				return nil, werr
			}
			continue
		}
		if sol.Retry {
			s.stats.Retries.Add(1)
			lastErr = errors.New(sol.Err)
			if werr := bo.wait(ctx); werr != nil {
				return nil, werr
			}
			continue
		}
		if sol.Err != "" {
			s.stats.Errors.Add(1)
			return nil, fmt.Errorf("serve: daemon error: %s", sol.Err)
		}
		if len(sol.Assign) != s.cfg.Hello.N {
			s.stats.Errors.Add(1)
			return nil, fmt.Errorf("serve: solution has %d executors, want %d", len(sol.Assign), s.cfg.Hello.N)
		}
		s.assign = append(s.assign[:0], sol.Assign...)
		s.epoch = sol.Epoch
		s.stats.Steps.Add(1)
		return s.assign, nil
	}
	return nil, fmt.Errorf("serve: step gave up after %d attempts: %w", s.cfg.MaxAttempts, lastErr)
}

// close tears down the connection quietly.
func (s *Session) close() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// Close terminates the session.
func (s *Session) Close() { s.close() }

// Pool drives n concurrent scheduler sessions against one daemon — the
// client half of the load story. Sessions share a ClientConfig and a
// PoolStats; each gets its own connection and goroutine.
type Pool struct {
	cfg      ClientConfig
	sessions []*Session
	stats    PoolStats
}

// NewPool builds n disconnected sessions.
func NewPool(cfg ClientConfig, n int) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), sessions: make([]*Session, n)}
	for i := range p.sessions {
		p.sessions[i] = &Session{cfg: p.cfg, stats: &p.stats}
	}
	return p
}

// Stats exposes the shared counters.
func (p *Pool) Stats() *PoolStats { return &p.stats }

// Session returns session i.
func (p *Pool) Session(i int) *Session { return p.sessions[i] }

// Run connects every session and runs fn once per session concurrently
// (one goroutine each), closing the sessions afterwards. The first error
// cancels the remaining sessions' contexts and is returned.
func (p *Pool) Run(ctx context.Context, fn func(ctx context.Context, i int, s *Session) error) error {
	n := len(p.sessions)
	return parallel.ForEach(ctx, n, n, func(ctx context.Context, i int) error {
		s := p.sessions[i]
		defer s.Close()
		if err := s.Connect(ctx); err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
		return fn(ctx, i, s)
	})
}
