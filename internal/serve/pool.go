package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
)

// ClientConfig configures scheduler-side sessions against the daemon.
type ClientConfig struct {
	// Addr is the daemon's "host:port".
	Addr string
	// Hello declares the topology shape (one session == one topology).
	Hello HelloMsg
	// DialTimeout bounds one dial attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds one request/reply round trip (default 30s).
	IOTimeout time.Duration
	// BaseBackoff/MaxBackoff shape the exponential backoff used both for
	// reconnects and for server retry replies (defaults 10ms/2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds dial/retry attempts per operation (default 8).
	MaxAttempts int
	// MaxLineBytes bounds one reply frame (default 1MiB).
	MaxLineBytes int
	// Proto selects the wire framing: "auto" (the default) opens every
	// dial with a binary hello and permanently falls back to NDJSON when
	// the reply shows a server that predates the binary protocol;
	// "binary" requires the binary framing and fails deterministically
	// against an old server; "ndjson" speaks NDJSON only.
	Proto string
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 30 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 1 << 20
	}
	if c.Proto == "" {
		c.Proto = "auto"
	}
	return c
}

// PoolStats aggregates client-side outcomes across a pool's sessions.
// Retries counts server load-shed replies honored, Reconnects counts
// re-dialed sessions, Resumes counts reconnects the daemon restored from
// its session table, Errors counts protocol-level failures.
type PoolStats struct {
	Steps      atomic.Int64
	Retries    atomic.Int64
	Reconnects atomic.Int64
	Resumes    atomic.Int64
	Errors     atomic.Int64
}

// Session is one scheduler session: a connection with its hello handshake,
// current solution, and reconnect/backoff logic. Not safe for concurrent
// use; a Pool gives each goroutine its own Session.
type Session struct {
	cfg   ClientConfig
	stats *PoolStats

	conn   net.Conn
	br     *bufio.Reader
	wire   *core.Wire
	assign []int
	epoch  int
	// ndjsonOnly latches Proto "auto"'s downgrade: once a server answered
	// a binary hello in NDJSON, every redial of this session speaks NDJSON
	// directly instead of re-probing a server known to predate the binary
	// protocol.
	ndjsonOnly bool
	// token is the daemon-issued resumption token from the last hello
	// reply; reconnects present it so the daemon restores the session's
	// state instead of starting cold. cfg.Hello.Token seeds it for
	// clients that pick their own tokens.
	token   string
	resumed bool
	// everConnected distinguishes the first (lazy) dial from a true
	// reconnect in the Reconnects stat.
	everConnected bool
}

// NewSession builds a disconnected session (Connect or the first Step
// dials).
func NewSession(cfg ClientConfig) *Session {
	return &Session{cfg: cfg.withDefaults(), stats: &PoolStats{}}
}

// Assign returns the most recent scheduling solution (nil before the first
// successful exchange).
func (s *Session) Assign() []int { return s.assign }

// Epoch returns the last served epoch.
func (s *Session) Epoch() int { return s.epoch }

// Token returns the daemon-issued session-resumption token (empty before
// the first hello reply).
func (s *Session) Token() string { return s.token }

// Resumed reports whether the latest hello restored a prior session's
// state on the daemon.
func (s *Session) Resumed() bool { return s.resumed }

// Binary reports whether the current connection negotiated the binary
// framing (false when disconnected or on NDJSON).
func (s *Session) Binary() bool { return s.conn != nil && s.wire.Binary() }

// SetToken sets the resumption token the next hello will present, before
// the first dial. Clients that own their session identity across process
// restarts (deterministic harnesses, loadgen's restart-recovery mode)
// use it to reclaim daemon-side state a previous process created; most
// clients should instead keep the daemon-issued token. Calling it on a
// connected session is a misuse (the daemon would treat the next
// reconnect as a different session) and is ignored.
func (s *Session) SetToken(token string) {
	if s.conn == nil {
		s.token = token
	}
}

// backoff is one exponential-backoff schedule: wait sleeps the current
// delay (or returns early on ctx), then doubles it up to max.
type backoff struct {
	cur, max time.Duration
}

func (b *backoff) wait(ctx context.Context) error {
	select {
	case <-time.After(b.cur):
	case <-ctx.Done():
		return ctx.Err()
	}
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	return nil
}

func (c ClientConfig) backoff() backoff {
	return backoff{cur: c.BaseBackoff, max: c.MaxBackoff}
}

// AbortedError reports a context end (deadline or cancellation) that
// interrupted recovery from a real failure: the session was re-dialing or
// resubmitting after a transport error when the context expired. Callers
// that map outcomes to exit codes (cmd/loadgen) must treat it as the
// underlying failure, not as a clean end-of-run — before this type
// existed, a session that died mid-run and was still backing off when the
// run deadline fired reported a bare context error and the failure was
// silently swallowed.
type AbortedError struct {
	Ctx   error // the context error that ended the operation
	Cause error // the failure being recovered from when it ended
}

// Error implements error.
func (e *AbortedError) Error() string {
	return fmt.Sprintf("%v (while recovering from: %v)", e.Ctx, e.Cause)
}

// Unwrap exposes both the context end and the underlying cause, so
// errors.Is finds either.
func (e *AbortedError) Unwrap() []error { return []error{e.Ctx, e.Cause} }

// abortErr wraps a context end with the failure it interrupted, if any. A
// cause that is itself just the context ending (a cancelled dial, an
// interrupted backoff) is not a failure.
func abortErr(ctxErr, cause error) error {
	if cause != nil && !errors.Is(cause, context.Canceled) && !errors.Is(cause, context.DeadlineExceeded) {
		return &AbortedError{Ctx: ctxErr, Cause: cause}
	}
	return ctxErr
}

// Connect dials with exponential backoff and performs the hello handshake,
// leaving the session holding its starting solution.
func (s *Session) Connect(ctx context.Context) error {
	bo := s.cfg.backoff()
	// cause mirrors Step's: dial/transport failures count as aborted
	// recovery when the context ends mid-backoff, but a daemon shed reply
	// (capacity, token still attached to a dying connection) is healthy
	// backpressure, not a failure.
	var lastErr, cause error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return abortErr(err, cause)
		}
		if lastErr != nil {
			if err := bo.wait(ctx); err != nil {
				return abortErr(err, cause)
			}
		}
		if lastErr = s.dialOnce(ctx); lastErr == nil {
			return nil
		}
		if !errors.Is(lastErr, errShed) {
			cause = lastErr
		}
		if errors.Is(lastErr, errRejected) {
			// Deterministic rejection (bad shape): the same hello cannot
			// succeed on retry, so don't burn the backoff schedule on it.
			return lastErr
		}
	}
	return fmt.Errorf("serve: connect %s: %w", s.cfg.Addr, lastErr)
}

// errRejected marks a deterministic hello rejection — the daemon judged
// the session's declared shape invalid, so redialing with the same hello
// is pointless.
var errRejected = errors.New("hello rejected")

// errShed marks a transient daemon shed reply on hello (session capacity,
// resumption token still attached to a dying connection): worth retrying,
// and never a failure cause in AbortedError terms.
var errShed = errors.New("shed by daemon")

// dialOnce performs one dial + hello exchange, negotiating the framing
// per ClientConfig.Proto.
func (s *Session) dialOnce(ctx context.Context) error {
	s.close()
	switch s.cfg.Proto {
	case "auto", "binary", "ndjson":
	default:
		return fmt.Errorf("serve: %w: unknown protocol %q (want auto, binary or ndjson)", errRejected, s.cfg.Proto)
	}
	d := net.Dialer{Timeout: s.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.conn = conn
	s.br = bufio.NewReader(conn)
	binary := s.cfg.Proto == "binary" || (s.cfg.Proto == "auto" && !s.ndjsonOnly)
	s.wire = core.NewWire(s.br, conn, s.cfg.MaxLineBytes, binary)
	hello := s.cfg.Hello
	if s.token != "" {
		hello.Token = s.token // resume the session the daemon issued this for
	}
	deadline := time.Now().Add(s.cfg.IOTimeout)
	if err := s.conn.SetWriteDeadline(deadline); err != nil {
		s.close()
		return err
	}
	if err := s.wire.WriteHello(&hello); err != nil {
		s.close()
		return err
	}
	if err := s.conn.SetReadDeadline(deadline); err != nil {
		s.close()
		return err
	}
	if binary {
		// Negotiation: a binary-capable server answers the binary hello in
		// kind. A server that predates the protocol read the hello as one
		// non-JSON line (the frame's guard byte) and replied a normal
		// NDJSON bad-hello error — so an actual '{' first byte, and only
		// that, downgrades; a read failure here is a transport error, not
		// evidence about the server's protocol support.
		isBin, err := core.SniffBinary(s.br)
		if err != nil {
			s.close()
			return err
		}
		if !isBin {
			s.close()
			if s.cfg.Proto == "binary" {
				return fmt.Errorf("serve: %w: server answered the binary hello in NDJSON (no binary protocol support)", errRejected)
			}
			s.ndjsonOnly = true
			return s.dialOnce(ctx) // redial speaking NDJSON from the first byte
		}
	}
	var sol core.SolutionMsg
	if err := s.wire.ReadSolution(&sol); err != nil {
		s.close()
		return err
	}
	if sol.Retry {
		s.close()
		return fmt.Errorf("serve: session rejected (%w): %s", errShed, sol.Err)
	}
	if sol.Err != "" {
		s.close()
		return fmt.Errorf("serve: %w: %s", errRejected, sol.Err)
	}
	if len(sol.Assign) != s.cfg.Hello.N {
		s.close()
		return fmt.Errorf("serve: starting solution has %d executors, want %d", len(sol.Assign), s.cfg.Hello.N)
	}
	s.assign = append(s.assign[:0], sol.Assign...)
	s.epoch = sol.Epoch
	if sol.Token != "" {
		s.token = sol.Token
	}
	s.resumed = sol.Resumed
	if sol.Resumed {
		s.stats.Resumes.Add(1)
	}
	s.everConnected = true
	return nil
}

// roundTrip writes one measurement and reads one SolutionMsg under
// IOTimeout.
func (s *Session) roundTrip(meas *core.MeasurementMsg) (core.SolutionMsg, error) {
	var sol core.SolutionMsg
	deadline := time.Now().Add(s.cfg.IOTimeout)
	if err := s.conn.SetWriteDeadline(deadline); err != nil {
		return sol, err
	}
	if err := s.wire.WriteMeasurement(meas); err != nil {
		return sol, err
	}
	if err := s.conn.SetReadDeadline(deadline); err != nil {
		return sol, err
	}
	err := s.wire.ReadSolution(&sol)
	return sol, err
}

// Step submits one measurement and returns the daemon's next scheduling
// solution. Connection failures reconnect (with backoff) and resubmit;
// load-shed replies back off and resubmit. The returned slice is owned by
// the session and valid until the next Step.
func (s *Session) Step(ctx context.Context, meas core.MeasurementMsg) ([]int, error) {
	// Echo which solution this measurement observed (1-based), so the
	// daemon can tell a resubmission after a lost reply from a fresh
	// measurement (stable across the reconnects below: s.epoch only
	// advances on a successful exchange).
	meas.Epoch = s.epoch + 1
	bo := s.cfg.backoff()
	// cause tracks an unrecovered transport failure so a context end that
	// interrupts the recovery is reported as an AbortedError, not as a
	// clean end-of-run. A load-shed retry is not a failure and never sets
	// it.
	var lastErr, cause error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, abortErr(err, cause)
		}
		if s.conn == nil {
			reconnect := s.everConnected
			if err := s.Connect(ctx); err != nil {
				// Connect wraps its own aborted recoveries; but when it was
				// ended by the context without ever failing for a reason of
				// its own (e.g. a blackholed dial that just blocked until
				// the deadline), the transport failure *this* loop was
				// recovering from is the real story.
				var ab *AbortedError
				if cause != nil && !errors.As(err, &ab) &&
					(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
					err = &AbortedError{Ctx: err, Cause: cause}
				}
				return nil, err
			}
			if reconnect {
				s.stats.Reconnects.Add(1)
			}
		}
		sol, err := s.roundTrip(&meas)
		if err != nil {
			// Broken transport: drop the connection and retry on a fresh
			// one (with session resumption, the daemon restores the
			// session's state when the new connection presents its token).
			s.close()
			lastErr, cause = err, err
			if werr := bo.wait(ctx); werr != nil {
				return nil, abortErr(werr, cause)
			}
			continue
		}
		cause = nil // transport healthy again
		if sol.Retry {
			s.stats.Retries.Add(1)
			lastErr = errors.New(sol.Err)
			if werr := bo.wait(ctx); werr != nil {
				return nil, werr
			}
			continue
		}
		if sol.Err != "" {
			s.stats.Errors.Add(1)
			return nil, fmt.Errorf("serve: daemon error: %s", sol.Err)
		}
		if len(sol.Assign) != s.cfg.Hello.N {
			s.stats.Errors.Add(1)
			return nil, fmt.Errorf("serve: solution has %d executors, want %d", len(sol.Assign), s.cfg.Hello.N)
		}
		s.assign = append(s.assign[:0], sol.Assign...)
		s.epoch = sol.Epoch
		s.stats.Steps.Add(1)
		return s.assign, nil
	}
	return nil, fmt.Errorf("serve: step gave up after %d attempts: %w", s.cfg.MaxAttempts, lastErr)
}

// close tears down the connection quietly.
func (s *Session) close() {
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// Close terminates the session.
func (s *Session) Close() { s.close() }

// Pool drives n concurrent scheduler sessions against one daemon — the
// client half of the load story. Sessions share a ClientConfig and a
// PoolStats; each gets its own connection and goroutine.
type Pool struct {
	cfg      ClientConfig
	sessions []*Session
	stats    PoolStats
}

// NewPool builds n disconnected sessions.
func NewPool(cfg ClientConfig, n int) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), sessions: make([]*Session, n)}
	for i := range p.sessions {
		p.sessions[i] = &Session{cfg: p.cfg, stats: &p.stats}
	}
	return p
}

// Stats exposes the shared counters.
func (p *Pool) Stats() *PoolStats { return &p.stats }

// Session returns session i.
func (p *Pool) Session(i int) *Session { return p.sessions[i] }

// Run connects every session and runs fn once per session concurrently
// (one goroutine each), closing the sessions afterwards. The first error
// cancels the remaining sessions' contexts and is returned.
func (p *Pool) Run(ctx context.Context, fn func(ctx context.Context, i int, s *Session) error) error {
	n := len(p.sessions)
	return parallel.ForEach(ctx, n, n, func(ctx context.Context, i int) error {
		s := p.sessions[i]
		defer s.Close()
		if err := s.Connect(ctx); err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
		return fn(ctx, i, s)
	})
}
