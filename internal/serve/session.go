package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/rl"
)

// errLineTooLong aliases the shared frame-decoder's cap error; the decoders
// (both framings) live in internal/core next to the wire protocol they
// frame, where the fuzz harness exercises them.
var errLineTooLong = core.ErrFrameTooLong

// handleConn services one scheduler session end to end: admission, framing
// negotiation, hello, then the measurement→solution loop. Everything the
// session owns (buffers, request object) lives here, so a session costs one
// goroutine plus a few small allocations no matter how many epochs it runs.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Admission control: beyond MaxSessions the daemon is explicit about
	// being full instead of letting sessions pile up. Counted before any
	// per-connection work — the framing sniff below blocks on client bytes.
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		s.mRejected.Inc()
		s.shedConn(conn, br, "retry: server at session capacity")
		return
	}
	defer s.active.Add(-1)
	s.mAccepted.Inc()
	cur := s.active.Load()
	if cur > s.mSessionsPeak.Value() {
		s.mSessionsPeak.Set(cur) // racy max: fine for a monitoring gauge
	}
	s.mSessions.Add(1)
	defer s.mSessions.Add(-1)

	// Unblock blocking reads/writes when the server shuts down.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()

	// Framing negotiation: the connection's first byte names the framing
	// (the binary magic, or '{' opening an NDJSON hello) and the whole
	// session stays in it — see core.Wire for the negotiation contract.
	if conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) != nil {
		return
	}
	binary, err := core.SniffBinary(br)
	if err != nil {
		return
	}
	w := core.NewWire(br, conn, s.cfg.MaxLineBytes, binary)
	if binary {
		s.mBinSessions.Inc()
	} else {
		s.mNDJSessions.Inc()
	}
	write := func(msg *core.SolutionMsg) error {
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return err
		}
		return w.WriteSolution(msg)
	}

	// Hello: topology shape, answered with the session's starting solution.
	var hello HelloMsg
	if err := w.ReadHello(&hello); err != nil {
		if isProtoErr(err) {
			s.mProtoErrs.Inc()
			if core.IsMalformed(err) {
				// A complete frame that wasn't a valid hello: the peer is
				// still synchronized, so the rejection is readable.
				_ = write(&core.SolutionMsg{Err: fmt.Sprintf("bad hello: %v", err)})
			}
		}
		return
	}
	if err := s.validShape(hello.N, hello.M, hello.Spouts); err != nil {
		s.mProtoErrs.Inc()
		_ = write(&core.SolutionMsg{Err: fmt.Sprintf("bad hello: %v", err)})
		return
	}
	key := modelKey{hello.N, hello.M, hello.Spouts}
	mdl := s.model(key)

	// Role gating, after the hello — only the hello says whether the
	// session is full or inference-only. Full sessions need a serving
	// leader; read-only ones are also answered by an undemoted warm
	// follower (follower reads).
	if hello.ReadOnly {
		if !s.readOnlyOK() {
			s.mShed.Inc()
			_ = write(&core.SolutionMsg{Err: "retry: read-only unavailable (demoted or cold)", Retry: true})
			return
		}
		s.runReadOnly(ctx, conn, w, write, &hello, mdl)
		return
	}
	if !s.serving() {
		s.mShed.Inc()
		_ = write(&core.SolutionMsg{Err: "retry: not serving (unpromoted replica or demoted leader)", Retry: true})
		return
	}

	// Attach resumable per-topology state: a hello presenting a tracked
	// token continues that session — same current solution, exploration
	// schedule position, reward statistics and pending transition — while
	// an empty or unknown token starts cold under a (possibly new) token.
	st, resumed, aerr := s.sessions.attach(hello.Token, key, func() {
		// Fired (under the shard lock) when another connection presents
		// this session's token: unblock this goroutine's I/O so it
		// detaches and the presenter's retry can take the session over.
		_ = conn.SetDeadline(time.Now())
	})
	if aerr != nil {
		if hello.Token != "" {
			// Only hellos actually trying to resume count as resume
			// rejections; a tokenless hello shed by a full table is plain
			// admission control.
			s.mResumeRej.Inc()
		}
		if errors.Is(aerr, errTokenLive) || errors.Is(aerr, errTableFull) {
			// Transient: the stale connection holding the token (or the
			// table slot) is about to be reaped; the client backs off and
			// redials.
			_ = write(&core.SolutionMsg{Err: "retry: " + aerr.Error(), Retry: true})
		} else {
			_ = write(&core.SolutionMsg{Err: fmt.Sprintf("bad hello: %v", aerr)})
		}
		return
	}
	defer s.sessions.detach(st)
	if resumed {
		s.mResumed.Inc()
	} else {
		// Cold start: the round-robin prior is the "current assignment"
		// half of the first state encoding. Under st.mu — the session is
		// already visible in the table, so the durability snapshotter may
		// be reading st.assign concurrently.
		st.mu.Lock()
		st.assign = make([]int, hello.N)
		for i := range st.assign {
			st.assign[i] = i % hello.M
		}
		st.mu.Unlock()
	}
	if err := write(&core.SolutionMsg{Epoch: st.epoch, Assign: st.assign, Token: st.token, Resumed: resumed}); err != nil {
		return
	}

	learner := mdl.learner
	adim := mdl.pol.Space.Dim()
	req := &inferReq{
		state:  make([]float64, mdl.pol.StateDim()),
		result: make([]int, hello.N),
	}
	var meas core.MeasurementMsg
	for epoch := st.epoch + 1; ; epoch++ {
		if s.sessions.isKicked(st) {
			// A takeover presenter asked for this session: stand down so
			// its retry can attach (our deadline re-arming below would
			// otherwise erase the presenter's I/O kick).
			return
		}
		if conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) != nil {
			return
		}
		if err := w.ReadMeasurement(&meas); err != nil {
			if ctx.Err() == nil && isProtoErr(err) {
				s.mProtoErrs.Inc()
				switch {
				case errors.Is(err, errLineTooLong):
					if conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout)) == nil && w.Drain() == nil {
						_ = write(&core.SolutionMsg{Epoch: epoch, Err: errLineTooLong.Error()})
					}
				case core.IsMalformed(err):
					_ = write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("bad measurement: %v", err)})
				}
			}
			return
		}
		s.mRequests.Inc()
		if meas.Err != "" {
			// The scheduler failed to deploy the previous solution; keep
			// serving from the same state rather than tearing down.
			s.mDeployErrs.Inc()
		}
		if len(meas.Workload) != hello.Spouts {
			s.mProtoErrs.Inc()
			_ = write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("measurement has %d spout rates, session declared %d", len(meas.Workload), hello.Spouts)})
			return
		}
		// A non-zero epoch echo (1-based) not matching the last served
		// epoch means the client measured an older deployment (lost
		// reply, then a resubmit after resuming): still serve it, but
		// its reward does not belong to the pending transition. (Counted
		// after queue admission so shed-and-resubmit cycles don't inflate
		// the metric.)
		stale := meas.Epoch != 0 && meas.Epoch != st.epoch+1

		start := time.Now()
		// s_t: the solution issued at t−1 plus the fresh workload.
		mdl.pol.Codec.Encode(st.assign, meas.Workload, req.state)
		req.noise = nil
		if learner != nil {
			// ε-decay exploration, per session: the noise stream comes from
			// the session's own RNG (part of its resumable state), so it is
			// deterministic per session regardless of batching or timing.
			// Drawn at most once per epoch — a queue-full shed resubmits the
			// same epoch and must reuse the same decision, or load shedding
			// would advance the RNG and the ε schedule timing-dependently.
			// Mutations run under st.mu (and every draw counts into
			// st.rngDraws) so the durability snapshotter always sees a
			// consistent ⟨schedule position, stream position⟩ pair —
			// recovery reseeds from the token and fast-forwards exactly
			// rngDraws draws.
			if st.noiseEpoch != epoch {
				st.mu.Lock()
				st.noiseEpoch = epoch
				st.noiseOn = false
				eps := s.cfg.Explore.At(st.learnEpoch)
				st.learnEpoch++
				if eps > 0 && st.drawFloat() < eps {
					st.noiseOn = true
					if cap(st.noise) < adim {
						st.noise = make([]float64, adim)
					}
					st.noise = st.noise[:adim]
					for i := range st.noise {
						st.noise[i] = eps * st.drawFloat()
					}
				}
				st.mu.Unlock()
			}
			if st.noiseOn {
				req.noise = st.noise
			}
		}
		req.done = make(chan struct{})
		select {
		case mdl.queue <- req:
		default:
			// Queue full: shed with an explicit retry instead of blocking —
			// the scheduler sees backpressure and resubmits after backoff.
			s.mShed.Inc()
			if err := write(&core.SolutionMsg{Epoch: epoch, Err: "retry: inference queue full", Retry: true}); err != nil {
				return
			}
			epoch--
			continue
		}
		failed := false
		select {
		case <-req.done:
			failed = req.failed
		case <-mdl.stopped:
			// The batch loop tore down mid-request (role transition):
			// either its exit drain failed the request — done closes right
			// after stopped — or the enqueue raced past the drain and the
			// request will never complete. Shed either way.
			select {
			case <-req.done:
				failed = req.failed
			default:
				failed = true
			}
		case <-ctx.Done():
			return
		}
		if failed {
			s.mShed.Inc()
			_ = write(&core.SolutionMsg{Epoch: epoch, Err: "retry: not serving (role change)", Retry: true})
			return
		}
		if stale {
			s.mStaleMeas.Inc()
		}
		var transSeq uint64
		var transReward float64
		if learner != nil {
			// The measurement closes the pending transition (s_{t−1},
			// a_{t−1}): its reward is the (standardized) negative latency
			// this epoch reported for deploying a_{t−1}. A deploy failure
			// or a stale resubmission poisons the reward, so that
			// transition is dropped.
			if meas.Err == "" && !stale && st.hasPrev {
				st.mu.Lock() // Normalize mutates journaled normalizer state
				t := rl.Transition{
					State:     append([]float64(nil), st.prevState...),
					Action:    mdl.pol.Space.Encode(st.prevAssign, nil),
					Reward:    st.norm.Normalize(-meas.AvgTupleTimeMS),
					NextState: append([]float64(nil), req.state...),
				}
				st.mu.Unlock()
				transSeq = learner.observe(st.token, t)
				transReward = t.Reward
			}
		}
		st.mu.Lock()
		copy(st.assign, req.result)
		if learner != nil {
			// Open the next pending transition: (s_t, a_t) awaits the next
			// epoch's reward.
			st.prevState = append(st.prevState[:0], req.state...)
			st.prevAssign = append(st.prevAssign[:0], st.assign...)
			st.hasPrev = true
		}
		st.epoch = epoch
		var rec *durable.Record
		if s.dur != nil {
			// Journal the completed epoch before acknowledging the
			// solution, so an acknowledged epoch is always
			// (asynchronously) on its way to disk. Only scalars, the
			// solution and the raw workload are journaled; recovery
			// re-derives the state encodings and the transition vectors
			// by replaying the same computation over the record chain.
			st.gen = s.sessions.genCtr.Add(1)
			rec = epochRecord(st)
			if learner != nil {
				rec.Workload = append(durable.F64s(nil), meas.Workload...)
				rec.TransSeq = transSeq
				rec.RewardBits = math.Float64bits(transReward)
			}
		}
		st.mu.Unlock()
		if rec != nil {
			s.dur.Append(rec)
		}
		if err := write(&core.SolutionMsg{Epoch: epoch, Assign: st.assign}); err != nil {
			return
		}
		s.mLatency.Observe(time.Since(start))
	}
}

// runReadOnly services an inference-only session: state→action answers
// from the node's current weights, nothing journaled, nothing learned, no
// resumption state issued. Served by leaders and — the point — by
// undemoted followers from their continuously-warm replicated weights,
// with staleness bounded by the serve_repl_lag_records gauge. A hello
// token is honored as a warm start: the tracked session's replicated
// solution seeds the state encoding, but the session is never attached —
// the leader's client may resume it elsewhere at any moment.
func (s *Server) runReadOnly(ctx context.Context, conn net.Conn, w *core.Wire, write func(*core.SolutionMsg) error, hello *core.HelloMsg, mdl *model) {
	s.mROSessions.Inc()
	s.mROActive.Add(1)
	defer s.mROActive.Add(-1)

	// Starting solution: the tracked session's state when the hello
	// presents a known token of the same shape, the cold round-robin prior
	// otherwise (an unknown token is a cold start, never an error — same
	// degradation rule as resumption after TTL eviction).
	assign := make([]int, hello.N)
	epoch := 0
	warm := false
	if hello.Token != "" {
		if pkey, passign, pepoch, ok := s.sessions.peek(hello.Token); ok && pkey == mdl.key && len(passign) == hello.N {
			copy(assign, passign)
			epoch = pepoch
			warm = true
		}
	}
	if !warm {
		for i := range assign {
			assign[i] = i % hello.M
		}
	}
	// No token in the reply: there is nothing resumable to come back to.
	if err := write(&core.SolutionMsg{Epoch: epoch, Assign: assign, Resumed: warm}); err != nil {
		return
	}

	req := &inferReq{
		state:  make([]float64, mdl.pol.StateDim()),
		result: make([]int, hello.N),
	}
	var meas core.MeasurementMsg
	for epoch++; ; epoch++ {
		if conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) != nil {
			return
		}
		if err := w.ReadMeasurement(&meas); err != nil {
			if ctx.Err() == nil && isProtoErr(err) {
				s.mProtoErrs.Inc()
				switch {
				case errors.Is(err, errLineTooLong):
					if conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout)) == nil && w.Drain() == nil {
						_ = write(&core.SolutionMsg{Epoch: epoch, Err: errLineTooLong.Error()})
					}
				case core.IsMalformed(err):
					_ = write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("bad measurement: %v", err)})
				}
			}
			return
		}
		s.mRequests.Inc()
		if len(meas.Workload) != hello.Spouts {
			s.mProtoErrs.Inc()
			_ = write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("measurement has %d spout rates, session declared %d", len(meas.Workload), hello.Spouts)})
			return
		}
		if !s.readOnlyOK() {
			// Demoted (or torn down) since the hello: fencing fences reads
			// too — a stalled ex-leader must not answer from frozen weights.
			s.mShed.Inc()
			_ = write(&core.SolutionMsg{Epoch: epoch, Err: "retry: not serving (role change)", Retry: true})
			return
		}

		start := time.Now()
		mdl.pol.Codec.Encode(assign, meas.Workload, req.state)
		req.noise = nil
		req.done = make(chan struct{})
		select {
		case mdl.queue <- req:
		default:
			s.mShed.Inc()
			if err := write(&core.SolutionMsg{Epoch: epoch, Err: "retry: inference queue full", Retry: true}); err != nil {
				return
			}
			epoch--
			continue
		}
		failed := false
		select {
		case <-req.done:
			failed = req.failed
		case <-mdl.stopped:
			select {
			case <-req.done:
				failed = req.failed
			default:
				failed = true
			}
		case <-ctx.Done():
			return
		}
		if failed {
			s.mShed.Inc()
			_ = write(&core.SolutionMsg{Epoch: epoch, Err: "retry: not serving (role change)", Retry: true})
			return
		}
		copy(assign, req.result)
		if err := write(&core.SolutionMsg{Epoch: epoch, Assign: assign}); err != nil {
			return
		}
		s.mLatency.Observe(time.Since(start))
	}
}

// shedConn reads a connection's hello — in whichever framing the client
// opened with — and answers an explicit retry in that framing, so the
// client backs off instead of treating the shed as a dead server. The
// reply is only written after a COMPLETE hello frame (malformed contents
// are fine — the peer is synchronized and will parse the reply; a torn or
// oversized-and-undrainable frame is not, and gets silence): replying into
// a half-written frame would desynchronize the client's decoder. The hello
// is consumed first because closing a socket with unread received data
// sends RST, destroying the retry reply in flight. Used by the admission
// path, which sheds before reading the hello; post-hello role gating
// replies through the session's already-negotiated Wire instead.
func (s *Server) shedConn(conn net.Conn, br *bufio.Reader, errText string) {
	if conn.SetDeadline(time.Now().Add(s.cfg.WriteTimeout)) != nil {
		return
	}
	binary, err := core.SniffBinary(br)
	if err != nil {
		return
	}
	w := core.NewWire(br, conn, s.cfg.MaxLineBytes, binary)
	var hello core.HelloMsg
	if err := w.ReadHello(&hello); err != nil && !core.IsMalformed(err) {
		if !errors.Is(err, core.ErrFrameTooLong) || w.Drain() != nil {
			return
		}
	}
	_ = w.WriteSolution(&core.SolutionMsg{Err: errText, Retry: true})
}

// isProtoErr classifies read failures: oversized frames, mid-frame drops,
// binary framing violations and well-framed-but-undecodable payloads are
// protocol errors; a clean EOF, a closed connection, or an idle timeout
// are normal session ends.
func isProtoErr(err error) bool {
	return errors.Is(err, errLineTooLong) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, core.ErrBadFrame) || core.IsMalformed(err)
}
