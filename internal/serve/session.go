package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
)

// errLineTooLong marks an NDJSON frame exceeding MaxLineBytes.
var errLineTooLong = errors.New("serve: line exceeds max frame size")

// lineReader reads '\n'-delimited frames with a hard size cap, so one
// misbehaving peer cannot make the daemon buffer an unbounded line.
type lineReader struct {
	r   *bufio.Reader
	max int
	buf []byte
	// eol records whether the frame that just exceeded max was consumed
	// through its newline already (it fit in the bufio buffer), so
	// drainLine must not wait for another one.
	eol bool
}

func newLineReader(r *bufio.Reader, max int) *lineReader {
	return &lineReader{r: r, max: max}
}

// next returns the next frame without its trailing newline. The returned
// slice is valid until the following call. A connection that ends mid-
// frame yields io.ErrUnexpectedEOF (a protocol error), while one that ends
// on a frame boundary yields a clean io.EOF.
func (lr *lineReader) next() ([]byte, error) {
	lr.buf = lr.buf[:0]
	for {
		frag, err := lr.r.ReadSlice('\n')
		lr.buf = append(lr.buf, frag...)
		payload := len(lr.buf)
		if err == nil {
			payload-- // the trailing '\n' is framing, not payload
		}
		if payload > lr.max {
			lr.eol = err == nil
			return nil, errLineTooLong
		}
		switch err {
		case nil:
			return lr.buf[:len(lr.buf)-1], nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(lr.buf) > 0 {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, io.EOF
		default:
			return nil, err
		}
	}
}

// drainLine consumes input up to and including the next '\n', discarding
// it. Used to finish reading an oversized frame before replying: closing
// a socket with received-but-unread data sends RST, which would destroy
// the error reply in flight (closed-loop peers have exactly one frame in
// flight, so draining to the newline empties the receive buffer).
func (lr *lineReader) drainLine() error {
	if lr.eol {
		lr.eol = false
		return nil
	}
	for {
		_, err := lr.r.ReadSlice('\n')
		switch err {
		case nil:
			return nil
		case bufio.ErrBufferFull:
			continue
		default:
			return err
		}
	}
}

// handleConn services one scheduler session end to end: admission, hello,
// then the measurement→solution loop. Everything the session owns
// (buffers, request object) lives here, so a session costs one goroutine
// plus a few small allocations no matter how many epochs it runs.
func (s *Server) handleConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	write := func(msg *core.SolutionMsg) error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		return enc.Encode(msg)
	}

	lr := newLineReader(bufio.NewReader(conn), s.cfg.MaxLineBytes)

	// Admission control: beyond MaxSessions the daemon is explicit about
	// being full instead of letting sessions pile up. The client's hello is
	// drained before replying — closing a socket with unread received data
	// sends RST, which would destroy the retry reply in flight.
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		s.mRejected.Inc()
		conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
		lr.next()
		write(&core.SolutionMsg{Err: "retry: server at session capacity", Retry: true})
		return
	}
	defer s.active.Add(-1)
	s.mAccepted.Inc()
	cur := s.active.Load()
	if cur > s.mSessionsPeak.Value() {
		s.mSessionsPeak.Set(cur) // racy max: fine for a monitoring gauge
	}
	s.mSessions.Add(1)
	defer s.mSessions.Add(-1)

	// Unblock blocking reads/writes when the server shuts down.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()

	// Hello: topology shape, answered with the session's starting solution.
	conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	line, err := lr.next()
	if err != nil {
		if isProtoErr(err) {
			s.mProtoErrs.Inc()
		}
		return
	}
	var hello HelloMsg
	if err := json.Unmarshal(line, &hello); err != nil {
		s.mProtoErrs.Inc()
		write(&core.SolutionMsg{Err: fmt.Sprintf("bad hello: %v", err)})
		return
	}
	if err := s.validShape(hello.N, hello.M, hello.Spouts); err != nil {
		s.mProtoErrs.Inc()
		write(&core.SolutionMsg{Err: fmt.Sprintf("bad hello: %v", err)})
		return
	}
	mdl := s.model(modelKey{hello.N, hello.M, hello.Spouts})

	// The session owns its per-topology state: the last solution the agent
	// issued is the "current assignment" half of the next state encoding.
	assign := make([]int, hello.N)
	for i := range assign {
		assign[i] = i % hello.M
	}
	if err := write(&core.SolutionMsg{Epoch: 0, Assign: assign}); err != nil {
		return
	}

	req := &inferReq{
		state:  make([]float64, mdl.pol.StateDim()),
		result: make([]int, hello.N),
	}
	var meas core.MeasurementMsg
	for epoch := 1; ; epoch++ {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := lr.next()
		if err != nil {
			if ctx.Err() == nil && isProtoErr(err) {
				s.mProtoErrs.Inc()
				if errors.Is(err, errLineTooLong) {
					conn.SetReadDeadline(time.Now().Add(s.cfg.WriteTimeout))
					if lr.drainLine() == nil {
						write(&core.SolutionMsg{Epoch: epoch, Err: errLineTooLong.Error()})
					}
				}
			}
			return
		}
		meas = core.MeasurementMsg{}
		if err := json.Unmarshal(line, &meas); err != nil {
			s.mProtoErrs.Inc()
			write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("bad measurement: %v", err)})
			return
		}
		s.mRequests.Inc()
		if meas.Err != "" {
			// The scheduler failed to deploy the previous solution; keep
			// serving from the same state rather than tearing down.
			s.mDeployErrs.Inc()
		}
		if len(meas.Workload) != hello.Spouts {
			s.mProtoErrs.Inc()
			write(&core.SolutionMsg{Epoch: epoch, Err: fmt.Sprintf("measurement has %d spout rates, session declared %d", len(meas.Workload), hello.Spouts)})
			return
		}

		start := time.Now()
		mdl.pol.Codec.Encode(assign, meas.Workload, req.state)
		req.done = make(chan struct{})
		select {
		case mdl.queue <- req:
		default:
			// Queue full: shed with an explicit retry instead of blocking —
			// the scheduler sees backpressure and resubmits after backoff.
			s.mShed.Inc()
			if err := write(&core.SolutionMsg{Epoch: epoch, Err: "retry: inference queue full", Retry: true}); err != nil {
				return
			}
			epoch--
			continue
		}
		select {
		case <-req.done:
		case <-ctx.Done():
			return
		}
		copy(assign, req.result)
		if err := write(&core.SolutionMsg{Epoch: epoch, Assign: assign}); err != nil {
			return
		}
		s.mLatency.Observe(time.Since(start))
	}
}

// isProtoErr classifies read failures: oversized frames and mid-frame
// drops are protocol errors; a clean EOF, a closed connection, or an idle
// timeout are normal session ends.
func isProtoErr(err error) bool {
	return errors.Is(err, errLineTooLong) || errors.Is(err, io.ErrUnexpectedEOF)
}
