package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestBinaryEndToEnd drives a strict-binary session through several epochs:
// the whole exchange (hello, measurements, solutions) rides the
// length-prefixed framing, and the daemon counts the session as binary.
func TestBinaryEndToEnd(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 42})
	defer shutdown()

	const n, m, epochs = 6, 3, 5
	sess := NewSession(ClientConfig{
		Addr:  addr,
		Hello: HelloMsg{Topology: "bin", N: n, M: m, Spouts: 2},
		Proto: "binary",
	})
	defer sess.Close()
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !sess.Binary() {
		t.Fatal("Proto binary negotiated an NDJSON session")
	}
	for e := 1; e <= epochs; e++ {
		assign, err := sess.Step(context.Background(), core.MeasurementMsg{
			AvgTupleTimeMS: 40,
			Workload:       []float64{100, 50 + float64(e)},
		})
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if len(assign) != n {
			t.Fatalf("epoch %d: solution length %d", e, len(assign))
		}
	}
	if got := s.reg.Counter("serve_sessions_binary_total").Value(); got != 1 {
		t.Fatalf("binary sessions %d, want 1", got)
	}
	if got := s.reg.Counter("serve_sessions_ndjson_total").Value(); got != 0 {
		t.Fatalf("ndjson sessions %d, want 0", got)
	}
	if got := s.reg.Counter("serve_protocol_errors_total").Value(); got != 0 {
		t.Fatalf("%d protocol errors", got)
	}
}

// TestNDJSONProtoStillServed pins the fallback contract: a client forced to
// NDJSON speaks the original line protocol against the same daemon.
func TestNDJSONProtoStillServed(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 42})
	defer shutdown()

	sess := NewSession(ClientConfig{
		Addr:  addr,
		Hello: HelloMsg{N: 4, M: 2, Spouts: 1},
		Proto: "ndjson",
	})
	defer sess.Close()
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sess.Binary() {
		t.Fatal("Proto ndjson negotiated a binary session")
	}
	if _, err := sess.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{10}}); err != nil {
		t.Fatal(err)
	}
	if got := s.reg.Counter("serve_sessions_ndjson_total").Value(); got != 1 {
		t.Fatalf("ndjson sessions %d, want 1", got)
	}
}

// TestCrossFramingResume: a session opened over binary detaches and is
// resumed by an NDJSON client presenting the same token — the framing is a
// per-connection property, not part of the session state.
func TestCrossFramingResume(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Seed: 3})
	defer shutdown()

	first := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}, Proto: "binary"})
	if err := first.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{7}}); err != nil {
		t.Fatal(err)
	}
	token, epoch := first.Token(), first.Epoch()
	first.Close()
	if token == "" {
		t.Fatal("no token issued")
	}

	second := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}, Proto: "ndjson"})
	defer second.Close()
	second.SetToken(token)
	if err := second.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !second.Resumed() {
		t.Fatal("NDJSON client did not resume the binary-opened session")
	}
	if second.Epoch() != epoch {
		t.Fatalf("resumed at epoch %d, want %d", second.Epoch(), epoch)
	}
}

// fakeOldServer emulates a daemon that predates the binary protocol: it
// reads newline-delimited frames only, answers a hello it cannot parse
// with an NDJSON error line (what the pre-binary session loop did with a
// binary hello — one complete unparseable "line" thanks to the frame's
// trailing guard byte), and otherwise serves a trivial fixed session.
func fakeOldServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				fr := core.NewFrameReader(bufio.NewReader(conn), 1<<20)
				line, err := fr.Next()
				if err != nil {
					return
				}
				var hello HelloMsg
				if err := json.Unmarshal(line, &hello); err != nil {
					fmt.Fprintf(conn, "{\"err\":\"bad hello: invalid character\"}\n")
					return
				}
				enc := json.NewEncoder(conn)
				assign := make([]int, hello.N)
				if enc.Encode(&core.SolutionMsg{Assign: assign, Token: "old-style-token"}) != nil {
					return
				}
				for epoch := 1; ; epoch++ {
					if _, err := fr.Next(); err != nil {
						return
					}
					if enc.Encode(&core.SolutionMsg{Epoch: epoch, Assign: assign}) != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String(), func() { l.Close() }
}

// TestAutoFallsBackToNDJSON: Proto auto against an old server reads the
// NDJSON reply to its binary hello, latches NDJSON, redials, and the
// session proceeds on the line protocol — no client-visible error.
func TestAutoFallsBackToNDJSON(t *testing.T) {
	addr, stop := fakeOldServer(t)
	defer stop()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	defer sess.Close()
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatalf("auto client against old server: %v", err)
	}
	if sess.Binary() {
		t.Fatal("negotiated binary against a server without binary support")
	}
	if sess.Token() != "old-style-token" {
		t.Fatalf("token %q not adopted from the NDJSON hello reply", sess.Token())
	}
	if _, err := sess.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{1}}); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryRequiredAgainstOldServer: Proto binary is strict — an NDJSON
// answer to the binary hello is a deterministic rejection, not a retry
// loop.
func TestBinaryRequiredAgainstOldServer(t *testing.T) {
	addr, stop := fakeOldServer(t)
	defer stop()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}, Proto: "binary"})
	defer sess.Close()
	err := sess.Connect(context.Background())
	if err == nil || !strings.Contains(err.Error(), "binary") {
		t.Fatalf("err = %v, want binary-support rejection", err)
	}
}

// TestUnknownProtoRejected: a typo'd Proto fails fast instead of dialing.
func TestUnknownProtoRejected(t *testing.T) {
	sess := NewSession(ClientConfig{Addr: "127.0.0.1:1", Hello: HelloMsg{N: 4, M: 2, Spouts: 1}, Proto: "bianry"})
	defer sess.Close()
	err := sess.Connect(context.Background())
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v, want unknown-protocol rejection", err)
	}
}

// TestBinaryShedReplyParseable: a binary-hello connection shed at the
// session cap gets its retry reply in the binary framing — a complete,
// decodable solution frame, not NDJSON bytes mid-stream.
func TestBinaryShedReplyParseable(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{MaxSessions: 1, Seed: 1})
	defer shutdown()

	first := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := first.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	conn := rawDial(t, addr)
	defer conn.Close()
	hello := core.AppendHelloBin(nil, &core.HelloMsg{N: 4, M: 2, Spouts: 1})
	if _, err := conn.Write(hello); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := core.NewBinFrameReader(bufio.NewReader(conn), 1<<20).Next()
	if err != nil {
		t.Fatalf("shed reply not a binary frame: %v", err)
	}
	if typ != core.BinTypeSolution {
		t.Fatalf("shed reply frame type %d, want solution", typ)
	}
	var sol core.SolutionMsg
	if err := core.DecodeSolutionBin(payload, &sol); err != nil {
		t.Fatalf("shed reply payload: %v", err)
	}
	if !sol.Retry || !strings.Contains(sol.Err, "capacity") {
		t.Fatalf("shed reply %+v, want retryable capacity error", sol)
	}
}

// TestShedSilenceOnTornHello: a shed connection whose hello never
// completes gets NO reply bytes — writing into a half-frame would
// desynchronize the client's decoder (the original shedReplica bug).
func TestShedSilenceOnTornHello(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{MaxSessions: 1, Seed: 1})
	defer shutdown()

	first := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := first.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	conn := rawDial(t, addr)
	defer conn.Close()
	hello := core.AppendHelloBin(nil, &core.HelloMsg{N: 4, M: 2, Spouts: 1})
	if _, err := conn.Write(hello[:len(hello)/2]); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("reading shed connection: %v", err)
	}
	if len(buf) != 0 {
		t.Fatalf("torn hello drew %d reply bytes (%q), want silence", len(buf), buf)
	}
}

// TestAcceptShardsServe: a server with several accept shards serves a
// burst of concurrent sessions and reports the shard counts as gauges.
func TestAcceptShardsServe(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{AcceptShards: 4, Seed: 9})
	defer shutdown()

	if got := s.reg.Gauge("serve_accept_shards").Value(); got != 4 {
		t.Fatalf("serve_accept_shards %d, want 4", got)
	}
	if got := s.reg.Gauge("serve_session_shards").Value(); got < 1 {
		t.Fatalf("serve_session_shards %d, want >= 1", got)
	}
	const nSess, epochs = 16, 3
	pool := NewPool(ClientConfig{
		Addr:  addr,
		Hello: HelloMsg{Topology: "shards", N: 6, M: 3, Spouts: 1},
	}, nSess)
	err := pool.Run(context.Background(), func(ctx context.Context, i int, sess *Session) error {
		for e := 1; e <= epochs; e++ {
			if _, err := sess.Step(ctx, core.MeasurementMsg{AvgTupleTimeMS: 40, Workload: []float64{float64(i)}}); err != nil {
				return fmt.Errorf("session %d epoch %d: %w", i, e, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.reg.Counter("serve_requests_total").Value(); got != nSess*epochs {
		t.Fatalf("served %d requests, want %d", got, nSess*epochs)
	}
	if got := s.reg.Counter("serve_protocol_errors_total").Value(); got != 0 {
		t.Fatalf("%d protocol errors", got)
	}
}
