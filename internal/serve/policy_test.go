package serve

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// TestSelectBatchMatchesPerRequest pins the correctness of the serving
// batcher's core amortization: one batched pass over H states must produce
// exactly the decisions of H per-request passes (same networks, greedy
// rule, no exploration noise — so equality is exact, not approximate).
func TestSelectBatchMatchesPerRequest(t *testing.T) {
	const (
		n, m, spouts = 8, 4, 2
		H            = 37 // not a power of two, not the max batch
	)
	batched := NewPolicy(n, m, spouts, 8, 99)
	single := NewPolicy(n, m, spouts, 8, 99) // same seed => identical nets

	rng := rand.New(rand.NewSource(5))
	states := mat.NewMatrix(H, batched.StateDim())
	// Feasible random states: encoded assignment + workloads.
	assign := make([]int, n)
	work := make([]float64, spouts)
	for i := 0; i < H; i++ {
		for j := range assign {
			assign[j] = rng.Intn(m)
		}
		for j := range work {
			work[j] = 500 * rng.Float64()
		}
		batched.Codec.Encode(assign, work, states.Row(i))
	}

	outB := make([][]int, H)
	for i := range outB {
		outB[i] = make([]int, n)
	}
	batched.SelectBatch(states, outB)

	outS := make([]int, n)
	for i := 0; i < H; i++ {
		single.Select(states.Row(i), outS)
		if fmt.Sprint(outB[i]) != fmt.Sprint(outS) {
			t.Fatalf("state %d: batched %v per-request %v", i, outB[i], outS)
		}
	}

	// Feasibility of every batched decision.
	for i, a := range outB {
		for _, mach := range a {
			if mach < 0 || mach >= m {
				t.Fatalf("decision %d infeasible: %v", i, a)
			}
		}
	}
}

// TestSelectBatchSteadyStateAllocs: after warmup at the high-water batch
// size, batched selection must not allocate (the serving hot path).
func TestSelectBatchSteadyStateAllocs(t *testing.T) {
	const n, m, spouts, H = 8, 4, 2, 32
	p := NewPolicy(n, m, spouts, 8, 1)
	states := mat.NewMatrix(H, p.StateDim())
	rng := rand.New(rand.NewSource(2))
	assign := make([]int, n)
	work := []float64{100, 200}
	for i := 0; i < H; i++ {
		for j := range assign {
			assign[j] = rng.Intn(m)
		}
		p.Codec.Encode(assign, work, states.Row(i))
	}
	out := make([][]int, H)
	for i := range out {
		out[i] = make([]int, n)
	}
	p.SelectBatch(states, out) // warm up scratch
	allocs := testing.AllocsPerRun(20, func() {
		p.SelectBatch(states, out)
	})
	if allocs > 0 {
		t.Fatalf("SelectBatch allocates %.1f per call at steady state", allocs)
	}
}

// TestSelectBatchShardingInvariant: the micro-batcher's decisions must be
// identical whether or not the policy's GEMMs shard across a pool, and
// the pool's shard counter (the source of serve_gemm_shards_total) must
// engage for a 64-request batch whose H·K candidate pass crosses the
// sharding threshold.
func TestSelectBatchShardingInvariant(t *testing.T) {
	ref := NewPolicy(24, 8, 3, 8, 77)
	sharded := NewPolicy(24, 8, 3, 8, 77)
	pool := nn.NewPool(parallel.NewSem(3))
	sharded.SetPool(pool)

	states := benchStates(ref, 64, 5)
	want := make([][]int, 64)
	got := make([][]int, 64)
	for i := range want {
		want[i] = make([]int, ref.Space.N)
		got[i] = make([]int, ref.Space.N)
	}
	ref.SelectBatch(states, want)
	sharded.SelectBatch(benchStates(sharded, 64, 5), got)

	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("request %d executor %d: sharded %d != unsharded %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if pool.Shards.Load() == 0 {
		t.Fatal("expected the 64-request batch to dispatch GEMM shards")
	}
}
