package serve

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations and 1 slow one: p50 must stay near the fast
	// cluster, p99 must reach the tail.
	for i := 0; i < 99; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(500 * time.Millisecond)

	if p50 := h.Quantile(0.5); p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want <= 1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 100ms", p99)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); m < 2*time.Millisecond || m > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~5ms", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestRegistryTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	// Same name returns the same metric.
	r.Counter("a_total").Inc()

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a_total 4", "b -2", "lat_count 1", "lat_p50_seconds", "lat_p99_seconds", "lat_avg_seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted, one metric per line.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("lines not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}
