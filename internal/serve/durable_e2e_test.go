package serve

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/rl"
)

// The golden durability harness: a lockstep online-learning run against a
// durable daemon that dies without flushing (the in-process equivalent of
// SIGKILL), then a recovery that must hand every client its session back.
// Two independent crash+recover runs must agree bitwise — solution
// streams, replay contents, weight checksums — which pins the whole
// WAL/snapshot/recovery path: a record that round-trips inexactly, a
// map-ordered snapshot, or a recovery that loses one transition all show
// up as a diff.

func durableConfig(dir string, crash bool) Config {
	return Config{
		Seed:             123,
		Learn:            true,
		TrainInterval:    -1, // deterministic mode: TrainNow at epoch barriers only
		TrainBatch:       16,
		UpdatesPerRound:  2,
		ReplayPerSession: 200,
		SessionTTL:       time.Hour,
		Explore:          rl.EpsilonSchedule{Start: 0.8, End: 0, Decay: 25, Kind: rl.ExpDecay},
		DataDir:          dir,
		FsyncInterval:    time.Hour, // explicit Sync barriers only: timing independence
		SnapshotEvery:    -1,        // explicit SnapshotNow barriers only
		crashOnDrain:     crash,
	}
}

// startDurable boots a server on cfg and fails the test if Serve errors.
func startDurable(t testing.TB, cfg Config) (*Server, string, func()) {
	t.Helper()
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	return s, l.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not drain after cancel")
		}
	}
}

const (
	durSessions = 4
	durPhase1   = 60 // epochs before the crash
	durSnapAt   = 30 // explicit snapshot barrier (weights survive as of here)
	durPhase2   = 40 // epochs after recovery
	durN, durM  = 6, 3
	durSpouts   = 2
)

type durableResult struct {
	streams               string // phase-1 + phase-2 solution streams, all sessions
	snapActor, snapCritic uint64 // trainer checksums at the snapshot barrier
	recActor, recCritic   uint64 // trainer checksums right after recovery
	finActor, finCritic   uint64 // trainer checksums at the end of phase 2
}

func stepAll(t testing.TB, s *Server, clients []*Session, envs []*goldenEnv, streams *strings.Builder, epoch int) {
	t.Helper()
	for i, c := range clients {
		meas, _ := envs[i].measure(c.Assign())
		assign, err := c.Step(context.Background(), meas)
		if err != nil {
			t.Fatalf("epoch %d session %d: %v", epoch, i, err)
		}
		fmt.Fprintf(streams, "s%d e%d %v\n", i, epoch, assign)
	}
	s.TrainNow()
}

func dialDurable(t testing.TB, addr string, n int, wantResumed bool) []*Session {
	t.Helper()
	clients := make([]*Session, n)
	for i := range clients {
		clients[i] = NewSession(ClientConfig{
			Addr:  addr,
			Hello: HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, Token: fmt.Sprintf("d%d", i)},
		})
		if err := clients[i].Connect(context.Background()); err != nil {
			t.Fatal(err)
		}
		if clients[i].Resumed() != wantResumed {
			t.Fatalf("session %d: resumed=%v, want %v", i, clients[i].Resumed(), wantResumed)
		}
	}
	return clients
}

// runDurableGolden drives one crash+recover cycle in dir and returns
// everything the bitwise comparison needs.
func runDurableGolden(t *testing.T, dir string) durableResult {
	t.Helper()
	var res durableResult
	var streams strings.Builder

	// ---- Phase 1: learn, snapshot mid-run, die without flushing.
	sA, addrA, crashA := startDurable(t, durableConfig(dir, true))
	clients := dialDurable(t, addrA, durSessions, false)
	envs := make([]*goldenEnv, durSessions)
	for i := range envs {
		envs[i] = newGoldenEnv(1000+int64(i), durM, durSpouts)
	}
	key := modelKey{durN, durM, durSpouts}
	for epoch := 1; epoch <= durPhase1; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
		if epoch == durSnapAt {
			if err := sA.SnapshotNow(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			sA.mu.Lock()
			mdl := sA.models[key]
			sA.mu.Unlock()
			res.snapActor, res.snapCritic = mdl.learner.checksums()
		}
	}
	if got := sA.reg.Counter("serve_wal_dropped_total").Value(); got != 0 {
		t.Fatalf("WAL dropped %d records under lockstep load; determinism claims void", got)
	}
	// Everything acknowledged is on disk; then the daemon dies between
	// fsyncs (crashOnDrain: no final snapshot, no flush).
	liveSnap, err := sA.captureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		c.Close()
	}
	crashA()

	// ---- Phase 2: recover on the same dir; every token must resume.
	// (Recovery runs inside Serve before the accept loop, so a connected
	// client proves it finished — only then are the gauges meaningful.)
	sB, addrB, shutdownB := startDurable(t, durableConfig(dir, false))
	defer shutdownB()
	clients = dialDurable(t, addrB, durSessions, true)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	if got := sB.reg.Gauge("serve_recovered_sessions").Value(); got != durSessions {
		t.Fatalf("recovered %d sessions, want %d", got, durSessions)
	}
	if got := sB.reg.Gauge("serve_recovered_models").Value(); got != 1 {
		t.Fatalf("recovered %d models, want 1", got)
	}

	// Snapshot+WAL must reconstruct exactly the dead daemon's in-memory
	// session table and replay shards (weights are point-in-time: the
	// snapshot's, asserted below).
	recSnap, err := sB.captureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveSnap.Sessions, recSnap.Sessions) {
		t.Fatalf("recovered session table diverges from the crashed daemon's in-memory table:\n live %+v\n rec  %+v",
			liveSnap.Sessions, recSnap.Sessions)
	}
	if liveSnap.NextGen != recSnap.NextGen {
		t.Fatalf("generation counter diverged: %d vs %d", liveSnap.NextGen, recSnap.NextGen)
	}
	if len(liveSnap.Models) != 1 || len(recSnap.Models) != 1 {
		t.Fatalf("model snapshot counts: %d vs %d", len(liveSnap.Models), len(recSnap.Models))
	}
	if !reflect.DeepEqual(liveSnap.Models[0].Shards, recSnap.Models[0].Shards) {
		t.Fatal("recovered replay shards diverge from the crashed daemon's")
	}

	sB.mu.Lock()
	mdlB := sB.models[key]
	sB.mu.Unlock()
	res.recActor, res.recCritic = mdlB.learner.checksums()

	for i, c := range clients {
		if c.Epoch() != durPhase1 {
			t.Fatalf("resumed session %d at epoch %d, want %d", i, c.Epoch(), durPhase1)
		}
	}
	if got := sB.reg.Counter("serve_sessions_resumed_total").Value(); got != durSessions {
		t.Fatalf("daemon resumed %d sessions, want %d", got, durSessions)
	}
	for epoch := durPhase1 + 1; epoch <= durPhase1+durPhase2; epoch++ {
		stepAll(t, sB, clients, envs, &streams, epoch)
	}
	res.finActor, res.finCritic = mdlB.learner.checksums()
	res.streams = streams.String()
	return res
}

// TestDurableCrashRecoveryGolden: the weights survive the crash exactly
// as of the last snapshot, and two independent crash+recover runs are
// bitwise identical end to end.
func TestDurableCrashRecoveryGolden(t *testing.T) {
	a := runDurableGolden(t, t.TempDir())
	if a.recActor != a.snapActor || a.recCritic != a.snapCritic {
		t.Fatalf("recovered weights %x/%x do not match the snapshot-time weights %x/%x",
			a.recActor, a.recCritic, a.snapActor, a.snapCritic)
	}
	b := runDurableGolden(t, t.TempDir())
	if a.snapActor != b.snapActor || a.finActor != b.finActor || a.finCritic != b.finCritic {
		t.Fatalf("weight checksums diverged across identical crash+recover runs: %x/%x vs %x/%x",
			a.finActor, a.finCritic, b.finActor, b.finCritic)
	}
	if a.streams != b.streams {
		t.Fatal(firstStreamDiff(a.streams, b.streams))
	}
}

// TestDurableFreshDirAndCleanShutdown: an empty data dir boots serving
// normally, and an orderly drain's final snapshot recovers without any
// WAL replay.
func TestDurableFreshDirAndCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	_, addr, shutdown := startDurable(t, durableConfig(dir, false))
	clients := dialDurable(t, addr, durSessions, false)
	envs := []*goldenEnv{newGoldenEnv(1, durM, durSpouts)}
	for epoch := 1; epoch <= 3; epoch++ {
		meas, _ := envs[0].measure(clients[0].Assign())
		if _, err := clients[0].Step(context.Background(), meas); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		c.Close()
	}
	shutdown() // clean drain: final snapshot

	s2, addr2, shutdown2 := startDurable(t, durableConfig(dir, false))
	defer shutdown2()
	c := dialDurable(t, addr2, 1, true)[0]
	// All four sessions were in the final snapshot, even the three that
	// never completed an epoch (the drain snapshot captures the table
	// directly, not just journaled epochs).
	if got := s2.reg.Gauge("serve_recovered_sessions").Value(); got != durSessions {
		t.Fatalf("recovered %d sessions from the final snapshot, want %d", got, durSessions)
	}
	if c.Epoch() != 3 {
		t.Fatalf("resumed at epoch %d, want 3", c.Epoch())
	}
	c.Close()
}

// TestDurableTrailingGarbageKeepsServing: junk appended to the live WAL
// segment (torn tail, partial write) costs only the junk — recovery keeps
// the intact prefix, truncates the file, and the daemon serves and
// appends normally.
func TestDurableTrailingGarbageKeepsServing(t *testing.T) {
	dir := t.TempDir()
	sA, addrA, crashA := startDurable(t, durableConfig(dir, true))
	clients := dialDurable(t, addrA, durSessions, false)
	env := newGoldenEnv(1, durM, durSpouts)
	for epoch := 1; epoch <= 5; epoch++ {
		meas, _ := env.measure(clients[0].Assign())
		if _, err := clients[0].Step(context.Background(), meas); err != nil {
			t.Fatal(err)
		}
	}
	if err := sA.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		c.Close()
	}
	crashA()

	// Smash the tail.
	wal := filepath.Join(dir, "wal-1.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\xff\xfe torn garbage with no newline")
	f.Close()

	sB, addrB, shutdownB := startDurable(t, durableConfig(dir, false))
	defer shutdownB()
	c := dialDurable(t, addrB, 1, true)[0]
	defer c.Close()
	// Only the session that completed epochs has journaled state (the
	// crash skipped the drain snapshot); it must survive the garbage tail.
	if got := sB.reg.Gauge("serve_recovered_sessions").Value(); got != 1 {
		t.Fatalf("recovered %d sessions past the garbage tail, want 1", got)
	}
	if c.Epoch() != 5 {
		t.Fatalf("resumed at epoch %d, want 5 (intact prefix)", c.Epoch())
	}
	meas, _ := env.measure(c.Assign())
	if _, err := c.Step(context.Background(), meas); err != nil {
		t.Fatalf("serving after tail truncation: %v", err)
	}
}

// TestDurableSeedMismatchRefused: recovering a data dir under a different
// serving seed is refused with a clear error (exploration streams are
// seed-derived; mixing them would silently corrupt every session).
func TestDurableSeedMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	_, addr, shutdown := startDurable(t, durableConfig(dir, false))
	dialDurable(t, addr, 1, false)[0].Close()
	shutdown()

	cfg := durableConfig(dir, false)
	cfg.Seed = 999
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = s.Serve(context.Background(), l)
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("seed mismatch not refused: %v", err)
	}
}

// TestDurableVersionMismatchRefused: the serve-level surface of the
// snapshot version check — Serve returns the explicit error instead of
// panicking or starting cold.
func TestDurableVersionMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-2.json"), []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(durableConfig(dir, false))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = s.Serve(context.Background(), l)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not refused: %v", err)
	}
}

// TestCheckpointErrorCounter: a failing periodic checkpoint is not just a
// log line — serve_checkpoint_errors_total must expose it.
func TestCheckpointErrorCounter(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 5, Learn: true, TrainInterval: -1})
	defer shutdown()
	c := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: durN, M: durM, Spouts: durSpouts}})
	if err := c.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	good := t.TempDir()
	if err := s.Checkpoint(good); err != nil {
		t.Fatalf("checkpoint to a writable dir: %v", err)
	}
	if got := s.reg.Counter("serve_checkpoint_errors_total").Value(); got != 0 {
		t.Fatalf("spurious checkpoint errors: %d", got)
	}
	bad := filepath.Join(good, "missing", "sub")
	if err := s.Checkpoint(bad); err == nil {
		t.Fatal("checkpoint into a nonexistent dir succeeded")
	}
	if got := s.reg.Counter("serve_checkpoint_errors_total").Value(); got != 1 {
		t.Fatalf("serve_checkpoint_errors_total = %d, want 1", got)
	}
}
