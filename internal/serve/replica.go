package serve

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/durable"
)

// Replica mode (tentpole of the replicated-fleet frontier): a daemon
// started with Config.ReplicateFrom tails the leader's WAL over TCP
// instead of accepting sessions. Every shipped record runs through the
// same recovery re-derivation path a restart uses, so the replica holds a
// continuously warm session table, replay shards, and trainer weights —
// and a byte-exact mirror of the leader's data directory on its own disk.
// Followers never serve and never train before promotion (the Polynesia
// lesson: replication must not contend with the leader's serve path, and
// structurally a follower has no serve path to contend with), which is
// also what makes the failover acceptance criterion structural: an
// unpromoted follower's weights and replay are bitwise the leader's last
// shipped barrier, because nothing else has ever touched them.
//
// Promote() flips the daemon to leader: stop tailing, bump the
// replication generation, open the mirror as its own WAL, start the batch
// loops and background loops, and begin accepting the old leader's
// resumption tokens. Connections that arrive before promotion are shed
// with a retry reply, so a client with a resumption token that lands here
// early backs off and reconnects once promoted — zero protocol errors.

// replicaState carries the follower machinery between Serve and Promote.
type replicaState struct {
	tailer   *durable.Tailer
	cancel   context.CancelFunc
	done     chan struct{} // closed when the tailer goroutine exits
	promoted chan struct{} // closed by Promote once serving is live
}

// startReplica warms the server from the mirror directory and starts the
// tailer. Called by Serve before the accept loop; the server's ctx is
// still nil, so recovered models are created without batch loops.
func (s *Server) startReplica(ctx context.Context) error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("serve: ReplicateFrom requires DataDir (the replication mirror)")
	}
	rec, st, err := durable.Recover(s.cfg.DataDir, durable.LogConfig{Logf: log.Printf})
	if err != nil {
		return err
	}
	start := time.Now()
	nModels, err := s.recoverDurable(rec)
	if err != nil {
		return err
	}
	s.mRecoveryMS.Set(time.Since(start).Milliseconds())
	s.mRecSessions.Set(int64(s.sessions.len()))
	s.mRecModels.Set(int64(nModels))

	tctx, cancel := context.WithCancel(ctx)
	tailer, err := durable.NewTailer(durable.TailConfig{
		Dir:          s.cfg.DataDir,
		Addr:         s.cfg.ReplicateFrom,
		Handler:      (*tailApplier)(s),
		Logf:         log.Printf,
		Applied:      s.reg.Counter("serve_repl_applied_records_total"),
		SnapsApplied: s.reg.Counter("serve_repl_snapshots_applied_total"),
		Reconnects:   s.reg.Counter("serve_repl_reconnects_total"),
		SegsReceived: s.reg.Counter("serve_repl_segments_received_total"),
		Lag:          s.mReplLag,
	}, st)
	if err != nil {
		cancel()
		return err
	}
	rs := &replicaState{tailer: tailer, cancel: cancel, done: make(chan struct{}), promoted: make(chan struct{})}
	s.mu.Lock()
	s.repl = rs
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(rs.done)
		if err := tailer.Run(tctx); err != nil {
			// Terminal tail failures (stale leader generation) leave the
			// replica warm but frozen; promotion remains possible.
			log.Printf("serve: replication tail stopped: %v", err)
		}
	}()
	log.Printf("serve: replica of %s: warmed %d sessions, %d models from mirror %s",
		s.cfg.ReplicateFrom, s.sessions.len(), nModels, s.cfg.DataDir)
	return nil
}

// tailApplier adapts the Server to durable.TailHandler. It runs on the
// tailer goroutine — the only mutator of serving state in replica mode.
type tailApplier Server

// ApplyRecord implements durable.TailHandler via the recovery replay
// path (generation-guarded, so re-shipped records are no-ops).
func (a *tailApplier) ApplyRecord(r *durable.Record) error {
	s := (*Server)(a)
	s.applyRecord(r)
	// Keep the mutation counter ahead of everything applied, so state
	// created after promotion always postdates replicated state.
	for {
		cur := s.sessions.genCtr.Load()
		if r.Gen <= cur || s.sessions.genCtr.CompareAndSwap(cur, r.Gen) {
			return nil
		}
	}
}

// ApplySnapshot implements durable.TailHandler. A compaction marker
// (reset=false) arrives in-stream exactly at the leader's snapshot
// barrier: its sessions and transitions were already applied
// record-by-record, but the trained weights and optimizer moments travel
// ONLY in snapshots (followers never train), so the models are installed
// from it — that is what makes a promoted follower's networks bitwise the
// leader's last shipped barrier instead of its own initialization. A
// reset replaces the warm state wholesale: the follower fell behind the
// leader's retention window and its state is no longer a prefix of the
// leader's.
func (a *tailApplier) ApplySnapshot(snap *durable.Snapshot, reset bool) error {
	s := (*Server)(a)
	if !reset {
		for i := range snap.Models {
			if err := s.restoreModel(&snap.Models[i], snap.Seq); err != nil {
				return fmt.Errorf("marker model %v: %w", snap.Models[i].Key, err)
			}
		}
		return nil
	}
	s.mu.Lock()
	s.models = map[modelKey]*model{}
	s.mu.Unlock()
	s.sessions.reset()
	_, err := s.recoverDurable(&durable.Recovered{Snapshot: snap})
	return err
}

// shedReplica answers a connection on a node that is not serving — a
// replica before promotion, or a demoted leader: read the hello (in
// whichever framing the client opened with), reply retry, close. The
// client's backoff lands it back here after promotion — or at the
// gateway's re-homed backend. The heavy lifting is shedConn's, which only
// replies after a complete hello frame: the old code here read a frame,
// ignored the result, and wrote an NDJSON reply unconditionally — against
// a client whose hello never completed (or arrived in the binary framing)
// that reply lands mid-frame or in the wrong framing and turns a clean
// "retry later" into a client-side protocol error during failover.
func (s *Server) shedReplica(conn net.Conn) {
	defer conn.Close()
	s.mShed.Inc()
	s.shedConn(conn, bufio.NewReader(conn), "retry: not serving (unpromoted replica or demoted leader)")
}

// Promote flips a replica into the serving leader: stop tailing (the
// in-flight frame finishes applying, so warm state equals the mirror),
// bump the replication generation, open the mirror as this daemon's own
// WAL, start batch loops and background loops, and begin accepting
// sessions — including every resumption token the dead leader issued.
// A second Promote (or one on a non-replica) is refused.
func (s *Server) Promote() error {
	s.mu.Lock()
	rs := s.repl
	ctx := s.ctxRun
	s.mu.Unlock()
	if rs == nil {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: not a replica")
	}
	if ctx == nil {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: replica is not running")
	}
	if !s.promoting.CompareAndSwap(false, true) {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: already promoted")
	}

	start := time.Now()
	rs.tailer.Stop()
	<-rs.done
	rs.cancel()

	// Own the WAL under a fresh generation: the old leader, if it ever
	// comes back, is now the stale one and every follower of this node
	// will refuse it.
	// Failures past the latch roll it back: a transient disk error must
	// leave the node promotable, or the gateway's retries would get
	// "already promoted" from a replica that never started serving and a
	// two-node group would shed all traffic with no way out. The steps up
	// to here are safe to re-run — Stop is idempotent and rs.done stays
	// closed.
	gen := rs.tailer.Gen() + 1
	if err := durable.WriteGen(s.cfg.DataDir, gen); err != nil {
		s.promoting.Store(false)
		return fmt.Errorf("serve: promote: %w", err)
	}
	lg, _, err := s.openLog()
	if err != nil {
		s.promoting.Store(false)
		return fmt.Errorf("serve: promote: open mirror as own WAL: %w", err)
	}
	// The Recovered result is deliberately ignored: warm state was built
	// from exactly the bytes now on disk (the tailer applies and mirrors
	// each frame together), so re-applying it would be pure waste on the
	// failover critical path.
	s.mu.Lock()
	s.dur = lg
	s.mu.Unlock()

	if err := s.activate(ctx); err != nil {
		// The only activation failure is the shipping listener; a promoted
		// node that cannot feed its own followers must still serve.
		log.Printf("serve: promote: %v (serving without shipping)", err)
	}
	close(rs.promoted)
	s.mPromotions.Inc()
	s.mRole.Set(1)
	log.Printf("serve: promoted to leader (generation %d) in %v; %d sessions warm",
		gen, time.Since(start).Round(time.Millisecond), s.sessions.len())
	return nil
}

// promotedCh returns the channel closed at promotion (nil when not a
// replica).
func (s *Server) promotedCh() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repl == nil {
		return nil
	}
	return s.repl.promoted
}

// serving reports whether sessions are accepted (leader from the start,
// or replica after promotion — unless demoted by failover fencing).
func (s *Server) serving() bool {
	if s.demoted.Load() {
		return false
	}
	return s.cfg.ReplicateFrom == "" || s.promoting.Load() && s.promotedDone()
}

// RetargetReplication re-points an unpromoted replica's tailer at a new
// leader shipping address. The gateway calls it (via POST /retarget) on a
// group's surviving followers after a failover, so they replicate from
// the promoted node instead of tailing the dead leader forever.
func (s *Server) RetargetReplication(addr string) error {
	if addr == "" {
		return fmt.Errorf("serve: retarget: empty address")
	}
	s.mu.Lock()
	rs := s.repl
	s.mu.Unlock()
	if rs == nil {
		return fmt.Errorf("serve: retarget: not a replica")
	}
	if s.promoting.Load() {
		return fmt.Errorf("serve: retarget: already promoted")
	}
	old := rs.tailer.Addr()
	rs.tailer.Retarget(addr)
	log.Printf("serve: replication retargeted %s -> %s", old, addr)
	return nil
}

func (s *Server) promotedDone() bool {
	ch := s.promotedCh()
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// startShipServer begins serving WAL shipping on Config.ReplListen under
// this daemon's replication generation. Followers of a just-promoted
// node resume from their mirror position exactly as they would from the
// original leader.
func (s *Server) startShipServer(ctx context.Context) error {
	gen := durable.ReadGen(s.cfg.DataDir)
	if gen == 0 {
		gen = 1
		if err := durable.WriteGen(s.cfg.DataDir, gen); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", s.cfg.ReplListen)
	if err != nil {
		return fmt.Errorf("serve: repl listen %s: %w", s.cfg.ReplListen, err)
	}
	ss := durable.NewShipServer(durable.ShipConfig{
		Log:              s.dur,
		Gen:              gen,
		Logf:             log.Printf,
		SegmentsShipped:  s.reg.Counter("serve_repl_segments_shipped_total"),
		SnapshotsShipped: s.reg.Counter("serve_repl_snapshots_shipped_total"),
	})
	stop := context.AfterFunc(ctx, func() { ln.Close(); ss.Close() })
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer stop()
		ss.Serve(ln)
	}()
	log.Printf("serve: shipping WAL on %s (generation %d)", s.cfg.ReplListen, gen)
	return nil
}
