package serve

import (
	"context"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/durable"
)

// Replica mode (tentpole of the replicated-fleet frontier): a daemon
// started with Config.ReplicateFrom tails the leader's WAL over TCP
// instead of accepting sessions. Every shipped record runs through the
// same recovery re-derivation path a restart uses, so the replica holds a
// continuously warm session table, replay shards, and trainer weights —
// and a byte-exact mirror of the leader's data directory on its own disk.
// Followers never accept full sessions and never train before promotion
// (the Polynesia lesson: replication must not contend with the leader's
// serve path), which is what makes the failover acceptance criterion
// structural: an unpromoted follower's weights and replay are bitwise the
// leader's last shipped barrier, because nothing has trained against
// them. Followers do answer read-only (inference-only) sessions from
// those continuously-warm weights — follower reads never mutate state, so
// the bitwise property survives them.
//
// Promote() flips the daemon to leader: stop tailing, bump the
// replication generation, open the mirror as its own WAL, start the batch
// loops and background loops, and begin accepting the old leader's
// resumption tokens. Connections that arrive before promotion are shed
// with a retry reply, so a client with a resumption token that lands here
// early backs off and reconnects once promoted — zero protocol errors.

// replicaState carries the follower machinery between Serve and Promote.
type replicaState struct {
	tailer   *durable.Tailer
	cancel   context.CancelFunc
	done     chan struct{} // closed when the tailer goroutine exits
	promoted chan struct{} // closed by Promote once serving is live
}

// startReplica warms the server from the mirror directory and starts the
// tailer. Called by Serve before the accept loop.
func (s *Server) startReplica(ctx context.Context) error {
	return s.startReplicaTo(ctx, s.cfg.ReplicateFrom)
}

// startReplicaTo begins (or re-begins, at Rejoin) a follower role epoch
// tailing the leader shipping on addr: warm state is recovered from the
// mirror, the batch loops start so the follower can answer read-only
// sessions from its continuously-warm weights, and the tailer runs under
// the role epoch's context and wait group.
func (s *Server) startReplicaTo(ctx context.Context, addr string) error {
	if s.cfg.DataDir == "" {
		return fmt.Errorf("serve: ReplicateFrom requires DataDir (the replication mirror)")
	}
	rec, st, err := durable.Recover(s.cfg.DataDir, durable.LogConfig{Logf: log.Printf})
	if err != nil {
		return err
	}
	start := time.Now()
	nModels, err := s.recoverDurable(rec)
	if err != nil {
		return err
	}
	s.mRecoveryMS.Set(time.Since(start).Milliseconds())
	s.mRecSessions.Set(int64(s.sessions.len()))
	s.mRecModels.Set(int64(nModels))

	tctx, cancel := context.WithCancel(ctx)
	tailer, err := durable.NewTailer(durable.TailConfig{
		Dir:          s.cfg.DataDir,
		Addr:         addr,
		Handler:      (*tailApplier)(s),
		Logf:         log.Printf,
		Applied:      s.reg.Counter("serve_repl_applied_records_total"),
		SnapsApplied: s.reg.Counter("serve_repl_snapshots_applied_total"),
		Reconnects:   s.reg.Counter("serve_repl_reconnects_total"),
		SegsReceived: s.reg.Counter("serve_repl_segments_received_total"),
		Lag:          s.mReplLag,
		Gen:          s.mGen,
	}, st)
	if err != nil {
		cancel()
		return err
	}
	rs := &replicaState{tailer: tailer, cancel: cancel, done: make(chan struct{}), promoted: make(chan struct{})}
	s.mu.Lock()
	s.repl = rs
	rwg := s.roleWG
	// Follower reads: batch loops run on the follower too, serving
	// inference-only sessions from the replicated weights. Recovery above
	// ran with ctx unset (direct weight installs are safe before a loop
	// exists); everything from here on routes installs through the
	// publication channels.
	s.ctx = ctx
	for _, m := range s.models {
		m.start()
	}
	s.mu.Unlock()
	s.wg.Add(1)
	if rwg != nil {
		rwg.Add(1)
	}
	go func() {
		defer s.wg.Done()
		if rwg != nil {
			defer rwg.Done()
		}
		defer close(rs.done)
		if err := tailer.Run(tctx); err != nil {
			// Terminal tail failures (stale leader generation) leave the
			// replica warm but frozen; promotion remains possible.
			log.Printf("serve: replication tail stopped: %v", err)
		}
	}()
	log.Printf("serve: replica of %s: warmed %d sessions, %d models from mirror %s",
		addr, s.sessions.len(), nModels, s.cfg.DataDir)
	return nil
}

// tailApplier adapts the Server to durable.TailHandler. It runs on the
// tailer goroutine — the only mutator of serving state in replica mode.
type tailApplier Server

// ApplyRecord implements durable.TailHandler via the recovery replay
// path (generation-guarded, so re-shipped records are no-ops).
func (a *tailApplier) ApplyRecord(r *durable.Record) error {
	s := (*Server)(a)
	s.applyRecord(r)
	// Keep the mutation counter ahead of everything applied, so state
	// created after promotion always postdates replicated state.
	for {
		cur := s.sessions.genCtr.Load()
		if r.Gen <= cur || s.sessions.genCtr.CompareAndSwap(cur, r.Gen) {
			return nil
		}
	}
}

// ApplySnapshot implements durable.TailHandler. A compaction marker
// (reset=false) arrives in-stream exactly at the leader's snapshot
// barrier: its sessions and transitions were already applied
// record-by-record, but the trained weights and optimizer moments travel
// ONLY in snapshots (followers never train), so the models are installed
// from it — that is what makes a promoted follower's networks bitwise the
// leader's last shipped barrier instead of its own initialization. A
// reset replaces the warm state wholesale: the follower fell behind the
// leader's retention window and its state is no longer a prefix of the
// leader's.
func (a *tailApplier) ApplySnapshot(snap *durable.Snapshot, reset bool) error {
	s := (*Server)(a)
	if !reset {
		for i := range snap.Models {
			if err := s.restoreModel(&snap.Models[i], snap.Seq); err != nil {
				return fmt.Errorf("marker model %v: %w", snap.Models[i].Key, err)
			}
		}
		return nil
	}
	// Wholesale replacement of the session table — but the model objects
	// must survive: live read-only sessions hold references to them and
	// their running batch loops. restoreModel re-installs each model's
	// weights through the publication channel; a model absent from the
	// snapshot just keeps serving its last weights until one covers it.
	s.sessions.reset()
	_, err := s.recoverDurable(&durable.Recovered{Snapshot: snap})
	return err
}

// Promote flips a replica into the serving leader: stop tailing (the
// in-flight frame finishes applying, so warm state equals the mirror),
// bump the replication generation, open the mirror as this daemon's own
// WAL, start the leader-side background loops, and begin accepting full
// sessions — including every resumption token the dead leader issued.
// The batch loops keep running across the flip (a follower serving
// read-only sessions upgrades in place). A second Promote (or one on a
// non-replica) is refused — until a Rejoin starts the next follower
// epoch, after which the node is promotable again.
func (s *Server) Promote() error {
	s.roleMu.Lock()
	defer s.roleMu.Unlock()
	s.mu.Lock()
	rs := s.repl
	ctx := s.roleCtx
	s.mu.Unlock()
	if rs == nil {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: not a replica")
	}
	if ctx == nil {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: replica is not running")
	}
	if s.demoted.Load() {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: promote: node is demoted (rejoin first)")
	}
	if !s.promoting.CompareAndSwap(false, true) {
		s.mPromoteRej.Inc()
		return fmt.Errorf("serve: already promoted")
	}

	start := time.Now()
	rs.tailer.Stop()
	<-rs.done
	rs.cancel()

	// Own the WAL under a fresh generation: the old leader, if it ever
	// comes back, is now the stale one and every follower of this node
	// will refuse it.
	// Failures past the latch roll it back: a transient disk error must
	// leave the node promotable, or the gateway's retries would get
	// "already promoted" from a replica that never started serving and a
	// two-node group would shed all traffic with no way out. The steps up
	// to here are safe to re-run — Stop is idempotent and rs.done stays
	// closed.
	gen := rs.tailer.Gen() + 1
	if err := durable.WriteGen(s.cfg.DataDir, gen); err != nil {
		s.promoting.Store(false)
		return fmt.Errorf("serve: promote: %w", err)
	}
	lg, _, err := s.openLog()
	if err != nil {
		s.promoting.Store(false)
		return fmt.Errorf("serve: promote: open mirror as own WAL: %w", err)
	}
	// The Recovered result is deliberately ignored: warm state was built
	// from exactly the bytes now on disk (the tailer applies and mirrors
	// each frame together), so re-applying it would be pure waste on the
	// failover critical path.
	s.mu.Lock()
	s.dur = lg
	s.mu.Unlock()

	if err := s.activate(ctx); err != nil {
		// The only activation failure is the shipping listener; a promoted
		// node that cannot feed its own followers must still serve.
		log.Printf("serve: promote: %v (serving without shipping)", err)
	}
	s.replicating.Store(false)
	close(rs.promoted)
	s.mPromotions.Inc()
	s.mRole.Set(1)
	s.mGen.Set(int64(gen))
	log.Printf("serve: promoted to leader (generation %d) in %v; %d sessions warm",
		gen, time.Since(start).Round(time.Millisecond), s.sessions.len())
	return nil
}

// serving reports whether full sessions are accepted (leader from the
// start, or replica after promotion — unless demoted by failover
// fencing, and not while a rejoined node is back to following).
func (s *Server) serving() bool {
	return !s.demoted.Load() && !s.replicating.Load()
}

// readOnlyOK reports whether inference-only sessions are accepted: any
// serving leader, or an undemoted follower whose batch loops are warm
// (follower reads). A demoted node serves nothing — fencing must fence
// reads too, or a stalled ex-leader would answer from frozen weights.
func (s *Server) readOnlyOK() bool {
	if s.demoted.Load() {
		return false
	}
	if s.serving() {
		return true
	}
	s.mu.Lock()
	warm := s.ctx != nil
	s.mu.Unlock()
	return s.replicating.Load() && warm
}

// RetargetReplication re-points an unpromoted replica's tailer at a new
// leader shipping address. The gateway calls it (via POST /retarget) on a
// group's surviving followers after a failover, so they replicate from
// the promoted node instead of tailing the dead leader forever.
func (s *Server) RetargetReplication(addr string) error {
	if addr == "" {
		return fmt.Errorf("serve: retarget: empty address")
	}
	s.mu.Lock()
	rs := s.repl
	s.mu.Unlock()
	if rs == nil {
		return fmt.Errorf("serve: retarget: not a replica")
	}
	if s.promoting.Load() {
		return fmt.Errorf("serve: retarget: already promoted")
	}
	old := rs.tailer.Addr()
	rs.tailer.Retarget(addr)
	log.Printf("serve: replication retargeted %s -> %s", old, addr)
	return nil
}

// Rejoin re-enters a demoted (or otherwise deposed) ex-leader into the
// group as a tailing follower of the leader shipping on addr — the
// self-healing step failover used to leave to an operator. The current
// role epoch is torn down (batch loops, background loops, ship server,
// tailer — sessions and accept loops survive, shedding meanwhile), local
// snapshots and WAL segments are cleared so the tailer's hello carries
// position zero, and the next follower epoch starts: the leader answers
// the blank position with a full reset snapshot — the exact lagged-
// follower resync path — under the generation guard (repl-gen is kept;
// the new leader's higher generation is adopted, a stale one refused).
// On a node already tailing undemoted, Rejoin degenerates to an
// idempotent retarget. A serving leader refuses (demote first).
func (s *Server) Rejoin(addr string) error {
	if addr == "" {
		return fmt.Errorf("serve: rejoin: empty leader address")
	}
	s.roleMu.Lock()
	defer s.roleMu.Unlock()

	if s.replicating.Load() && !s.demoted.Load() {
		s.mu.Lock()
		rs := s.repl
		s.mu.Unlock()
		if rs != nil {
			if rs.tailer.Addr() != addr {
				rs.tailer.Retarget(addr)
				log.Printf("serve: rejoin: already following; retargeted to %s", addr)
			}
			return nil
		}
	}
	if s.serving() {
		return fmt.Errorf("serve: rejoin: node is the serving leader (demote first)")
	}
	s.mu.Lock()
	ctxRun := s.ctxRun
	cancel := s.roleCancel
	rwg := s.roleWG
	s.mu.Unlock()
	if ctxRun == nil || ctxRun.Err() != nil {
		return fmt.Errorf("serve: rejoin: daemon is not running")
	}

	start := time.Now()
	if cancel != nil {
		cancel()
	}
	if rwg != nil {
		rwg.Wait()
	}
	// Every role-scoped goroutine is down. Fail whatever a racing session
	// managed to enqueue after the batch loops' own exit drain, drop the
	// warm state, and close the WAL (no final snapshot — the mirror is
	// about to be reset anyway).
	s.mu.Lock()
	models := s.models
	s.models = map[modelKey]*model{}
	s.reg.Gauge("serve_models").Set(0)
	dur := s.dur
	s.dur = nil
	s.ctx = nil
	s.repl = nil
	s.mu.Unlock()
	for _, m := range models {
		m.failPending()
	}
	if dur != nil {
		if err := dur.Close(); err != nil {
			log.Printf("serve: rejoin: closing WAL: %v", err)
		}
	}
	s.sessions.reset()
	if err := durable.ResetMirror(s.cfg.DataDir); err != nil {
		s.mRejoinErrs.Inc()
		return fmt.Errorf("serve: rejoin: reset mirror: %w", err)
	}

	// Next epoch: a follower of addr. replicating flips before demoted
	// clears so serving() is never momentarily true in between.
	roleCtx, roleCancel := context.WithCancel(ctxRun)
	s.mu.Lock()
	s.roleCtx = roleCtx
	s.roleCancel = roleCancel
	s.roleWG = &sync.WaitGroup{}
	s.mu.Unlock()
	s.promoting.Store(false)
	s.replicating.Store(true)
	s.demoted.Store(false)
	s.mRole.Set(0)
	if err := s.startReplicaTo(roleCtx, addr); err != nil {
		// A node that failed to re-enter must stay fenced, not half-serve.
		s.demoted.Store(true)
		s.mRejoinErrs.Inc()
		return fmt.Errorf("serve: rejoin: %w", err)
	}
	s.mRejoins.Inc()
	log.Printf("serve: rejoined as follower of %s in %v (state reset, resyncing from scratch)",
		addr, time.Since(start).Round(time.Millisecond))
	return nil
}

// startShipServer begins serving WAL shipping on Config.ReplListen under
// this daemon's replication generation. Followers of a just-promoted
// node resume from their mirror position exactly as they would from the
// original leader.
func (s *Server) startShipServer(ctx context.Context) error {
	gen := durable.ReadGen(s.cfg.DataDir)
	if gen == 0 {
		gen = 1
		if err := durable.WriteGen(s.cfg.DataDir, gen); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", s.cfg.ReplListen)
	if err != nil {
		return fmt.Errorf("serve: repl listen %s: %w", s.cfg.ReplListen, err)
	}
	ss := durable.NewShipServer(durable.ShipConfig{
		Log:              s.dur,
		Gen:              gen,
		Logf:             log.Printf,
		SegmentsShipped:  s.reg.Counter("serve_repl_segments_shipped_total"),
		SnapshotsShipped: s.reg.Counter("serve_repl_snapshots_shipped_total"),
	})
	stop := context.AfterFunc(ctx, func() { ln.Close(); ss.Close() })
	s.mu.Lock()
	rwg := s.roleWG
	s.mu.Unlock()
	s.wg.Add(1)
	if rwg != nil {
		rwg.Add(1)
	}
	go func() {
		defer s.wg.Done()
		if rwg != nil {
			defer rwg.Done()
		}
		defer stop()
		ss.Serve(ln)
	}()
	s.mGen.Set(int64(gen))
	log.Printf("serve: shipping WAL on %s (generation %d)", s.cfg.ReplListen, gen)
	return nil
}
