package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/rl"
)

// TestWeightSwapRace hammers the train/publish/swap path while a reader
// plays the batch loop: concurrent ForwardBatchInfer (through the policy)
// during TrainOnBatch + publish must never let inference observe a
// half-written weight set. Two guarantees are checked:
//
//   - The race detector proves the trainer never touches memory the
//     serving goroutine is reading (run under -race in CI).
//   - Back-to-back inferences between swaps are bitwise identical — if
//     the trainer mutated served weights in place, the outputs would
//     drift between the two calls.
func TestWeightSwapRace(t *testing.T) {
	s := New(Config{Seed: 11, Learn: true, K: 4})
	mdl := newModel(s, modelKey{4, 2, 1})
	l, err := newModelLearner(mdl, s.cfg)
	if err != nil {
		t.Fatal(err)
	}
	mdl.learner = l

	// Seed the replay with enough synthetic experience to train on.
	rng := rand.New(rand.NewSource(5))
	sdim, adim := mdl.pol.StateDim(), mdl.pol.Space.Dim()
	assign := make([]int, 4)
	for i := 0; i < 3*s.cfg.TrainBatch; i++ {
		for j := range assign {
			assign[j] = rng.Intn(2)
		}
		st := mdl.pol.Codec.Encode(assign, []float64{rng.Float64() * 500}, nil)
		act := mdl.pol.Space.Encode(assign, nil)
		nx := mdl.pol.Codec.Encode(assign, []float64{rng.Float64() * 500}, nil)
		l.observe(fmt.Sprintf("sess-%d", i%4), rl.Transition{State: st, Action: act, Reward: -rng.Float64(), NextState: nx})
	}

	const rounds = 60
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // the trainer side
		defer wg.Done()
		defer close(done)
		for i := 0; i < rounds; i++ {
			if l.trainRound(2) == 0 {
				t.Error("trainRound ran no updates despite a full replay buffer")
				return
			}
		}
	}()

	// The serving side: this goroutine owns the policy, exactly like the
	// batch loop does.
	state := mat.FromSlice(1, sdim, mdl.pol.Codec.Encode([]int{0, 1, 0, 1}, []float64{120}, nil))
	out1, out2 := [][]int{make([]int, 4)}, [][]int{make([]int, 4)}
	proto1 := make([]float64, adim)
	swaps := 0
	trainerDone := false
	for i := 0; !trainerDone; i++ {
		select {
		case <-done:
			// One more pass below so the final publication is also swapped
			// in and verified.
			trainerDone = true
		default:
		}
		before := mdl.serving
		mdl.installPublished()
		if mdl.serving != before {
			swaps++
		}
		copy(proto1, mdl.pol.Actor.ForwardBatchInfer(state).Row(0))
		proto2 := mdl.pol.Actor.ForwardBatchInfer(state).Row(0)
		for j := range proto1 {
			if proto1[j] != proto2[j] {
				t.Fatalf("read %d: served weights changed between back-to-back inferences (dim %d: %v vs %v)",
					i, j, proto1[j], proto2[j])
			}
		}
		// The full decision rule also runs race-free against training.
		mdl.pol.SelectBatch(state, out1)
		mdl.pol.SelectBatch(state, out2)
		if fmt.Sprint(out1) != fmt.Sprint(out2) {
			t.Fatalf("read %d: decision flapped between identical states: %v vs %v", i, out1, out2)
		}
	}
	wg.Wait()
	if swaps == 0 {
		t.Fatal("serving goroutine never swapped in published weights")
	}
	if got := s.reg.Counter("serve_weights_published_total").Value(); got < int64(rounds) {
		t.Fatalf("published %d weight sets, want >= %d", got, rounds)
	}
}
