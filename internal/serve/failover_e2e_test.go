package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/nn"
)

// The failover harness: a leader shipping its WAL to a live follower, a
// lockstep learning run, a SIGKILL-equivalent leader death, and a
// promotion that must hand every resumption token back — with the
// follower's replay and weights bitwise the leader's last shipped
// barrier. This is the serve-level acceptance test for the replicated
// fleet; the byte-level ship/tail mechanics are pinned in
// internal/durable's ship tests.

// pickAddr reserves a loopback address for a listener started later.
func pickAddr(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitCond(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// followerTailer fetches the replica's tailer (nil until startReplica ran).
func followerTailer(s *Server) interface{ AppliedRecs() uint64 } {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repl == nil {
		return nil
	}
	return s.repl.tailer
}

// TestReplicaFailoverGolden is the end-to-end failover acceptance run:
//
//  1. Leader serves and learns under 4 sessions while shipping its WAL;
//     an explicit snapshot barrier mid-run ships the trained weights.
//  2. At a sync barrier, the follower's warm state is compared against
//     the leader's: session table and replay shards bitwise equal,
//     weights and Adam moments bitwise the last shipped snapshot.
//  3. The leader dies without flushing (in-process SIGKILL); the
//     follower is promoted and every previously issued resumption token
//     resumes at its exact epoch, then keeps stepping and learning.
func TestReplicaFailoverGolden(t *testing.T) {
	replAddr := pickAddr(t)
	dirA, dirB := t.TempDir(), t.TempDir()

	cfgA := durableConfig(dirA, true)
	cfgA.ReplListen = replAddr
	sA, addrA, crashA := startDurable(t, cfgA)

	cfgB := durableConfig(dirB, false)
	cfgB.ReplicateFrom = replAddr
	sB, addrB, shutdownB := startDurable(t, cfgB)
	defer shutdownB()

	// ---- Phase 1: learn on the leader, snapshot mid-run.
	clients := dialDurable(t, addrA, durSessions, false)
	envs := make([]*goldenEnv, durSessions)
	for i := range envs {
		envs[i] = newGoldenEnv(1000+int64(i), durM, durSpouts)
	}
	var streams strings.Builder
	key := modelKey{durN, durM, durSpouts}
	var snapActor, snapCritic uint64
	var snapAdamA, snapAdamC *nn.AdamState
	for epoch := 1; epoch <= durPhase1; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
		if epoch == durSnapAt {
			if err := sA.SnapshotNow(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			sA.mu.Lock()
			mdl := sA.models[key]
			sA.mu.Unlock()
			snapActor, snapCritic = mdl.learner.checksums()
			aOpt, cOpt := mdl.learner.ac.Optimizers()
			snapAdamA, snapAdamC = aOpt.State(), cOpt.State()
		}
	}
	if got := sA.reg.Counter("serve_wal_dropped_total").Value(); got != 0 {
		t.Fatalf("WAL dropped %d records under lockstep load", got)
	}

	// ---- Barrier: everything acknowledged is flushed, shipped, applied.
	liveSnap, err := sA.captureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := sA.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	leaderRecs := sA.dur.FlushedPos().Recs
	waitCond(t, "follower catch-up", func() bool {
		tl := followerTailer(sB)
		return tl != nil && tl.AppliedRecs() == leaderRecs
	})

	// The follower's warm state IS the leader's state at the barrier.
	sA.mu.Lock()
	mdlA := sA.models[key]
	sA.mu.Unlock()
	sB.mu.Lock()
	mdlB := sB.models[key]
	sB.mu.Unlock()
	if mdlB == nil || mdlB.learner == nil {
		t.Fatal("follower never built the replicated model")
	}
	bActor, bCritic := mdlB.learner.checksums()
	if bActor != snapActor || bCritic != snapCritic {
		t.Fatalf("follower weights %016x/%016x != leader's last shipped snapshot %016x/%016x",
			bActor, bCritic, snapActor, snapCritic)
	}
	bAOpt, bCOpt := mdlB.learner.ac.Optimizers()
	if !reflect.DeepEqual(bAOpt.State(), snapAdamA) || !reflect.DeepEqual(bCOpt.State(), snapAdamC) {
		t.Fatal("follower Adam moments diverge from the leader's snapshot-time moments")
	}
	if la, fa := mdlA.learner.replay.Checksum(), mdlB.learner.replay.Checksum(); la != fa {
		t.Fatalf("follower replay checksum %016x != leader's %016x at the sync barrier", fa, la)
	}
	replSnap, err := sB.captureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(liveSnap.Sessions, replSnap.Sessions) {
		t.Fatalf("replicated session table diverges from the leader's:\n leader %+v\n replica %+v",
			liveSnap.Sessions, replSnap.Sessions)
	}
	if liveSnap.NextGen != replSnap.NextGen {
		t.Fatalf("generation counter diverged: leader %d, replica %d", liveSnap.NextGen, replSnap.NextGen)
	}
	if !reflect.DeepEqual(liveSnap.Models[0].Shards, replSnap.Models[0].Shards) {
		t.Fatal("replicated replay shards diverge from the leader's")
	}
	if got := sB.reg.Gauge("serve_repl_lag_records").Value(); got != 0 {
		t.Fatalf("serve_repl_lag_records = %d at a caught-up barrier", got)
	}
	if got := sA.reg.Counter("serve_repl_segments_shipped_total").Value(); got == 0 {
		t.Fatal("leader shipped no segment frames")
	}
	if got := sA.reg.Counter("serve_repl_snapshots_shipped_total").Value(); got == 0 {
		t.Fatal("leader shipped no snapshot frames")
	}

	// A leader is not promotable.
	if err := sA.Promote(); err == nil || !strings.Contains(err.Error(), "not a replica") {
		t.Fatalf("leader Promote returned %v; want a not-a-replica refusal", err)
	}

	// ---- Leader dies between fsyncs; the follower takes over.
	for _, c := range clients {
		c.Close()
	}
	crashA()
	if err := sB.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := sB.Promote(); err == nil || !strings.Contains(err.Error(), "already promoted") {
		t.Fatalf("second Promote returned %v; want an already-promoted refusal", err)
	}
	if got := sB.reg.Counter("serve_promotions_total").Value(); got != 1 {
		t.Fatalf("serve_promotions_total = %d, want 1", got)
	}
	if got := sB.reg.Counter("serve_promotions_rejected_total").Value(); got != 1 {
		t.Fatalf("serve_promotions_rejected_total = %d, want 1", got)
	}
	if got := sB.reg.Gauge("serve_role").Value(); got != 1 {
		t.Fatalf("serve_role = %d after promotion, want 1", got)
	}

	// Every token the dead leader issued resumes on the promoted follower
	// at its exact epoch, and the fleet keeps learning.
	clients = dialDurable(t, addrB, durSessions, true)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i, c := range clients {
		if c.Epoch() != durPhase1 {
			t.Fatalf("resumed session %d at epoch %d, want %d", i, c.Epoch(), durPhase1)
		}
	}
	if got := sB.reg.Counter("serve_sessions_resumed_total").Value(); got != durSessions {
		t.Fatalf("promoted follower resumed %d sessions, want %d", got, durSessions)
	}
	for epoch := durPhase1 + 1; epoch <= durPhase1+10; epoch++ {
		stepAll(t, sB, clients, envs, &streams, epoch)
	}
}

// TestReplicaShedsBeforePromotion: a connection landing on an unpromoted
// replica is shed with a retry reply — healthy backpressure the client
// retries through, never a protocol error.
func TestReplicaShedsBeforePromotion(t *testing.T) {
	cfg := durableConfig(t.TempDir(), false)
	cfg.ReplicateFrom = pickAddr(t) // nothing listens; the tailer just retries
	s, addr, shutdown := startDurable(t, cfg)
	defer shutdown()

	c := NewSession(ClientConfig{
		Addr:        addr,
		Hello:       HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, Token: "early"},
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
	})
	err := c.Connect(context.Background())
	if err == nil {
		c.Close()
		t.Fatal("connected to an unpromoted replica")
	}
	if !errors.Is(err, errShed) {
		t.Fatalf("replica shed surfaced as %v; want a retryable shed, not a protocol error", err)
	}
	if got := s.reg.Counter("serve_requests_shed_total").Value(); got == 0 {
		t.Fatal("replica shed connections without counting them")
	}
}

// TestPromoteWhileRecordsInFlight: promotion is legal mid-stream — the
// in-flight frame finishes applying, the tailer stops, and the node
// starts serving immediately, while the old leader is still alive and
// writing. (The gateway never does this; the test pins that the race is
// safe when an operator or a flaky health check does.)
func TestPromoteWhileRecordsInFlight(t *testing.T) {
	replAddr := pickAddr(t)
	cfgA := durableConfig(t.TempDir(), false)
	cfgA.ReplListen = replAddr
	sA, addrA, shutdownA := startDurable(t, cfgA)
	defer shutdownA()
	cfgB := durableConfig(t.TempDir(), false)
	cfgB.ReplicateFrom = replAddr
	sB, addrB, shutdownB := startDurable(t, cfgB)
	defer shutdownB()

	clients := dialDurable(t, addrA, durSessions, false)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	envs := make([]*goldenEnv, durSessions)
	for i := range envs {
		envs[i] = newGoldenEnv(2000+int64(i), durM, durSpouts)
	}
	var streams strings.Builder
	for epoch := 1; epoch <= 10; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
	}
	if err := sA.dur.Sync(); err != nil {
		t.Fatal(err)
	}
	// Make sure the replica machinery is up, then promote without waiting
	// for catch-up: records may be mid-flight.
	waitCond(t, "replica start", func() bool { return followerTailer(sB) != nil })
	if err := sB.Promote(); err != nil {
		t.Fatalf("promote with records in flight: %v", err)
	}

	// The promoted node serves fresh sessions at once...
	env := newGoldenEnv(9, durM, durSpouts)
	c := NewSession(ClientConfig{
		Addr:  addrB,
		Hello: HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, Token: fmt.Sprintf("fresh-%d", 0)},
	})
	if err := c.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	meas, _ := env.measure(c.Assign())
	if _, err := c.Step(context.Background(), meas); err != nil {
		t.Fatalf("step on the promoted node: %v", err)
	}
	// ...and the old leader is untouched by it.
	for epoch := 11; epoch <= 12; epoch++ {
		stepAll(t, sA, clients, envs, &streams, epoch)
	}
}

// TestPromoteRollsBackOnFailure: a Promote that fails past the latch (the
// generation marker cannot be persisted) must roll the latch back, so the
// node stays promotable — a gateway retrying the failover gets the real
// disk error each time, not a permanent "already promoted" from a replica
// that never started serving.
func TestPromoteRollsBackOnFailure(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir, false)
	cfg.ReplicateFrom = pickAddr(t) // nothing listens; the tailer just retries
	s, _, shutdown := startDurable(t, cfg)
	defer shutdown()
	waitCond(t, "replica start", func() bool { return followerTailer(s) != nil })

	// An unpromoted replica refuses to demote and vets retarget input.
	if err := s.Demote(); err == nil || !strings.Contains(err.Error(), "not a serving leader") {
		t.Fatalf("Demote on a replica returned %v; want a not-a-serving-leader refusal", err)
	}
	if err := s.RetargetReplication(""); err == nil || !strings.Contains(err.Error(), "empty address") {
		t.Fatalf(`RetargetReplication("") returned %v; want an empty-address refusal`, err)
	}

	// Sabotage WriteGen: a directory squats on its tmp path, so persisting
	// the bumped generation fails after the promote latch is taken.
	trap := filepath.Join(dir, "repl-gen.tmp")
	if err := os.Mkdir(trap, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(); err == nil {
		t.Fatal("Promote succeeded with the generation marker unwritable")
	} else if strings.Contains(err.Error(), "already promoted") {
		t.Fatalf("first Promote returned %v; want the underlying disk error", err)
	}
	// The latch rolled back: a retry hits the same disk fault, not a stuck
	// already-promoted refusal.
	if err := s.Promote(); err == nil || strings.Contains(err.Error(), "already promoted") {
		t.Fatalf("retried Promote returned %v; want the disk error again", err)
	}
	if got := s.reg.Counter("serve_promotions_total").Value(); got != 0 {
		t.Fatalf("serve_promotions_total = %d after failed promotes, want 0", got)
	}
	if s.serving() {
		t.Fatal("replica reports serving after failed promotes")
	}

	// Clear the fault: the same node promotes cleanly.
	if err := os.Remove(trap); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(); err != nil {
		t.Fatalf("Promote after clearing the fault: %v", err)
	}
	if !s.serving() {
		t.Fatal("promoted node not serving")
	}
	if got := s.reg.Counter("serve_promotions_total").Value(); got != 1 {
		t.Fatalf("serve_promotions_total = %d, want 1", got)
	}
	// Promotion closes the retarget window.
	if err := s.RetargetReplication("127.0.0.1:9"); err == nil || !strings.Contains(err.Error(), "already promoted") {
		t.Fatalf("RetargetReplication after promotion returned %v; want an already-promoted refusal", err)
	}
}

// TestDemoteFencesLeader: Demote severs every live session connection and
// sheds new ones with a retry — the fencing the gateway invokes (POST
// /demote) on a stalled-but-alive leader it has failed over from, so no
// client keeps mutating state the promoted follower will never see.
func TestDemoteFencesLeader(t *testing.T) {
	cfg := durableConfig(t.TempDir(), false)
	s, addr, shutdown := startDurable(t, cfg)
	defer shutdown()

	// A live session, established raw so the severed connection shows up
	// as a read error instead of vanishing into client retry machinery.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprintf(conn, `{"topology":"durable","n":%d,"m":%d,"spouts":%d,"token":"fence-me"}`+"\n", durN, durM, durSpouts)
	br := bufio.NewReader(conn)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("hello reply: %v", err)
	}

	if err := s.Demote(); err != nil {
		t.Fatalf("demote: %v", err)
	}
	if err := s.Demote(); err != nil {
		t.Fatalf("second demote (idempotent) returned %v", err)
	}
	if got := s.reg.Counter("serve_demotions_total").Value(); got != 1 {
		t.Fatalf("serve_demotions_total = %d, want 1", got)
	}
	if got := s.reg.Gauge("serve_role").Value(); got != 0 {
		t.Fatalf("serve_role = %d after demotion, want 0", got)
	}

	// The live session was severed...
	if line, err := br.ReadString('\n'); err == nil {
		t.Fatalf("read on a fenced session returned %q; want the connection severed", line)
	}
	// ...and new connections shed with a retry, never a protocol error.
	c := NewSession(ClientConfig{
		Addr:        addr,
		Hello:       HelloMsg{Topology: "durable", N: durN, M: durM, Spouts: durSpouts, Token: "late"},
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
	})
	if err := c.Connect(context.Background()); err == nil {
		c.Close()
		t.Fatal("connected to a demoted leader")
	} else if !errors.Is(err, errShed) {
		t.Fatalf("demoted-leader shed surfaced as %v; want a retryable shed", err)
	}
	if err := s.Demote(); err != nil {
		t.Fatalf("demote after shedding returned %v", err)
	}
}
