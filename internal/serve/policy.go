package serve

import (
	"fmt"
	"math/rand"

	"repro/internal/actionspace"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Policy is the serving-side inference engine for one topology shape: the
// exploitation-only actor-critic decision rule of Algorithm 1 (actor
// proto-action → exact K-NN over feasible solutions → critic argmax),
// restructured around the batched kernels so a micro-batch of H requests
// costs one actor GEMM plus one critic GEMM over all H·K candidate rows,
// instead of H GEMVs plus H·K critic rows scored one request at a time.
//
// A Policy owns per-call scratch (including the Space's K-NN workspace),
// so it is confined to a single goroutine — the model's batch loop.
type Policy struct {
	Space  *actionspace.Space
	Codec  *core.StateCodec
	Actor  *nn.Network
	Critic *nn.Network
	K      int

	// pool, when set (SetPool), shards the batched GEMMs' row bands
	// across a shared worker pool; reapplied to networks installed later
	// through SetNetworks.
	pool *nn.Pool

	// scratch, grown to the high-water batch size and reused
	saCand    *mat.Matrix // (H·K)×(sdim+adim) candidate-scoring rows
	saView    mat.Matrix  // rows-trimmed view of saCand
	knn       [][]int
	candCount []int
	one       [1][]int // Select's fixed out slice
}

// NewPolicy builds a policy for an n×m action space with numSpouts data
// sources and randomly initialized networks (the paper's serving sizes:
// hidden layers from DefaultACConfig). Trained weights can be installed
// afterwards with SetNetworks.
func NewPolicy(n, m, numSpouts, k int, seed int64) *Policy {
	cfg := core.DefaultACConfig()
	if k <= 0 {
		k = cfg.K
	}
	rng := rand.New(rand.NewSource(seed))
	space := actionspace.NewSpace(n, m)
	codec := core.NewStateCodec(space, numSpouts)
	actorSizes := append(append([]int{codec.Dim()}, cfg.Hidden...), space.Dim())
	criticSizes := append(append([]int{codec.Dim() + space.Dim()}, cfg.Hidden...), 1)
	return &Policy{
		Space:  space,
		Codec:  codec,
		Actor:  nn.New(actorSizes, nn.Tanh, nn.Tanh, rng),
		Critic: nn.New(criticSizes, nn.Tanh, nn.Identity, rng),
		K:      k,
	}
}

// SetNetworks installs trained actor/critic weights (e.g. loaded from a
// cmd/train checkpoint). Dimensions must match the policy's topology.
func (p *Policy) SetNetworks(actor, critic *nn.Network) error {
	if actor.InDim() != p.Codec.Dim() || actor.OutDim() != p.Space.Dim() {
		return fmt.Errorf("serve: actor is %d→%d, policy needs %d→%d",
			actor.InDim(), actor.OutDim(), p.Codec.Dim(), p.Space.Dim())
	}
	if critic.InDim() != p.Codec.Dim()+p.Space.Dim() || critic.OutDim() != 1 {
		return fmt.Errorf("serve: critic is %d→%d, policy needs %d→1",
			critic.InDim(), critic.OutDim(), p.Codec.Dim()+p.Space.Dim())
	}
	p.Actor, p.Critic = actor, critic
	actor.SetPool(p.pool)
	critic.SetPool(p.pool)
	return nil
}

// SetPool installs a GEMM worker pool on the policy's networks — and on
// every network installed later via SetNetworks (weight swaps replace the
// network objects, so the pool must follow them). Nil restores
// single-goroutine execution on the current networks too. Sharding is
// bitwise invariant; the pool only affects latency.
func (p *Policy) SetPool(pool *nn.Pool) {
	p.pool = pool
	p.Actor.SetPool(pool)
	p.Critic.SetPool(pool)
}

// StateDim returns the encoded state length.
func (p *Policy) StateDim() int { return p.Codec.Dim() }

// SelectBatch computes the greedy assignment for every row of states
// (H×StateDim) and writes result i into out[i], which must be length
// Space.N. It allocates nothing once the scratch has grown to the
// high-water batch size.
func (p *Policy) SelectBatch(states *mat.Matrix, out [][]int) {
	p.SelectBatchExplore(states, nil, out)
}

// SelectBatchExplore is SelectBatch with optional per-request exploration:
// noise[i], when non-nil (length Space.Dim()), is added to request i's
// proto-action before the K-NN step — the serving-side form of the
// paper's R(â) = â + ε·I, with the noise drawn by the session so that it
// is deterministic per session no matter how requests are batched. A nil
// noise slice (or nil entries) is pure exploitation.
func (p *Policy) SelectBatchExplore(states *mat.Matrix, noise [][]float64, out [][]int) {
	h := states.Rows
	if len(out) != h {
		panic(fmt.Sprintf("serve: SelectBatch got %d outputs for %d states", len(out), h))
	}
	if noise != nil && len(noise) != h {
		panic(fmt.Sprintf("serve: SelectBatchExplore got %d noise rows for %d states", len(noise), h))
	}
	sdim, adim := p.Codec.Dim(), p.Space.Dim()

	// One actor GEMM for the whole micro-batch, through the inference-only
	// path: the state rows are one-hot dominated, so the zero-skipping
	// kernel does ~7× fewer multiply-accumulates on the first layer.
	protos := p.Actor.ForwardBatchInfer(states)
	if noise != nil {
		for i, nz := range noise {
			if nz == nil {
				continue
			}
			row := protos.Row(i)
			for j, v := range nz {
				row[j] += v
			}
		}
	}

	// Exact K-NN per request, candidates packed into one (s, a) matrix.
	if p.saCand == nil {
		p.saCand = &mat.Matrix{}
	}
	p.saCand.Reshape(h*p.K, sdim+adim)
	if cap(p.candCount) < h {
		p.candCount = make([]int, h)
	}
	candCount := p.candCount[:h]
	rows := 0
	for i := 0; i < h; i++ {
		p.knn = p.Space.KNearestInto(protos.Row(i), p.K, p.knn)
		candCount[i] = len(p.knn)
		state := states.Row(i)
		for _, cand := range p.knn {
			row := p.saCand.Data[rows*(sdim+adim) : (rows+1)*(sdim+adim)]
			copy(row[:sdim], state)
			p.Space.Encode(cand, row[sdim:])
			rows++
		}
	}

	// One critic GEMM over all H·K candidate rows (capacity constraints can
	// yield fewer than K candidates; score only the filled rows).
	p.saView = mat.Matrix{Rows: rows, Cols: sdim + adim, Data: p.saCand.Data[:rows*(sdim+adim)]}
	q := p.Critic.ForwardBatchInfer(&p.saView)

	// Per-request critic argmax; the winning action is recovered from its
	// one-hot columns in the candidate matrix (the K-NN scratch has been
	// overwritten by later requests by now).
	rows = 0
	for i := 0; i < h; i++ {
		if candCount[i] == 0 {
			// No feasible candidate (over-constrained space): round-robin.
			for r := range out[i] {
				out[i][r] = r % p.Space.M
			}
			continue
		}
		best, bestQ := rows, 0.0
		for j := 0; j < candCount[i]; j++ {
			if v := q.Row(rows)[0]; j == 0 || v > bestQ {
				best, bestQ = rows, v
			}
			rows++
		}
		p.decodeInto(p.saCand.Data[best*(sdim+adim)+sdim:(best+1)*(sdim+adim)], out[i])
	}
}

// Select is the per-request path (micro-batch of one); used when batching
// is disabled and as the baseline in the serving benchmarks.
func (p *Policy) Select(state []float64, out []int) {
	one := mat.Matrix{Rows: 1, Cols: len(state), Data: state}
	p.one[0] = out
	p.SelectBatch(&one, p.one[:])
}

// decodeInto recovers an assignment from its flat one-hot encoding without
// allocating.
func (p *Policy) decodeInto(flat []float64, dst []int) {
	m := p.Space.M
	for r := 0; r < p.Space.N; r++ {
		row := flat[r*m : (r+1)*m]
		for j, v := range row {
			if v != 0 {
				dst[r] = j
				break
			}
		}
	}
}
