package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// startServer runs a daemon on a loopback listener and returns its address
// plus a shutdown func that asserts a clean drain.
func startServer(t *testing.T, cfg Config) (*Server, string, func()) {
	t.Helper()
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	return s, l.Addr().String(), func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not drain after cancel")
		}
	}
}

// TestServeEndToEnd drives several concurrent sessions through multiple
// decision epochs and checks every reply is a feasible solution of the
// right shape, with metrics to match.
func TestServeEndToEnd(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 42})
	defer shutdown()

	const (
		nSess  = 8
		epochs = 6
		n, m   = 6, 3
	)
	pool := NewPool(ClientConfig{
		Addr:  addr,
		Hello: HelloMsg{Topology: "test", N: n, M: m, Spouts: 2},
	}, nSess)
	err := pool.Run(context.Background(), func(ctx context.Context, i int, sess *Session) error {
		if len(sess.Assign()) != n {
			return fmt.Errorf("starting solution %v", sess.Assign())
		}
		for e := 1; e <= epochs; e++ {
			assign, err := sess.Step(ctx, core.MeasurementMsg{
				AvgTupleTimeMS: 40 + float64(i),
				Workload:       []float64{100, 50 + float64(e)},
			})
			if err != nil {
				return fmt.Errorf("session %d epoch %d: %w", i, e, err)
			}
			if len(assign) != n {
				return fmt.Errorf("session %d: solution length %d", i, len(assign))
			}
			for _, mach := range assign {
				if mach < 0 || mach >= m {
					return fmt.Errorf("session %d: machine %d out of range", i, mach)
				}
			}
			if sess.Epoch() != e {
				return fmt.Errorf("session %d: epoch %d want %d", i, sess.Epoch(), e)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Steps.Load(); got != nSess*epochs {
		t.Fatalf("pool steps %d want %d", got, nSess*epochs)
	}
	if got := s.reg.Counter("serve_requests_total").Value(); got != nSess*epochs {
		t.Fatalf("served %d requests, want %d", got, nSess*epochs)
	}
	if got := s.reg.Counter("serve_inference_requests_total").Value(); got != nSess*epochs {
		t.Fatalf("batched %d requests, want %d", got, nSess*epochs)
	}
	if b := s.reg.Counter("serve_inference_batches_total").Value(); b < 1 || b > nSess*epochs {
		t.Fatalf("batches %d out of range", b)
	}
	if got := s.reg.Counter("serve_protocol_errors_total").Value(); got != 0 {
		t.Fatalf("%d protocol errors", got)
	}
}

// TestServeDeterministicPerState: two sessions of the same shape reporting
// the same workload must receive the same solution (they share one model,
// and greedy inference is deterministic in the state).
func TestServeDeterministicPerState(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Seed: 7})
	defer shutdown()

	step := func() []int {
		sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 6, M: 3, Spouts: 1}})
		defer sess.Close()
		if err := sess.Connect(context.Background()); err != nil {
			t.Fatal(err)
		}
		a, err := sess.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 50, Workload: []float64{120}})
		if err != nil {
			t.Fatal(err)
		}
		return append([]int(nil), a...)
	}
	a, b := step(), step()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same state produced different solutions: %v vs %v", a, b)
	}
}

// TestAdmissionControlShedsLoad holds the batcher behind the test gate so
// the queue fills deterministically, then checks that exactly the overflow
// requests receive explicit retry replies and that releasing the gate
// completes the queued request.
func TestAdmissionControlShedsLoad(t *testing.T) {
	s := New(Config{QueueDepth: 1, MaxBatch: 1, Seed: 1})
	s.testGate = make(chan struct{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, l) }()
	defer func() {
		cancel()
		<-done
	}()

	const conns = 3
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		served  int
		retried int
	)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := NewSession(ClientConfig{
				Addr:        l.Addr().String(),
				Hello:       HelloMsg{N: 4, M: 2, Spouts: 1},
				MaxAttempts: 1, // surface the retry instead of resubmitting
			})
			defer sess.Close()
			if err := sess.Connect(context.Background()); err != nil {
				t.Error(err)
				return
			}
			_, err := sess.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 10, Workload: []float64{1}})
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				served++
			} else if strings.Contains(err.Error(), "retry") {
				retried++
			} else {
				t.Errorf("unexpected step error: %v", err)
			}
		}()
	}

	// With the gate held, one request sits in the depth-1 queue and the
	// other two must be shed.
	deadline := time.Now().Add(10 * time.Second)
	for s.reg.Counter("serve_requests_shed_total").Value() < conns-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.reg.Counter("serve_requests_shed_total").Value(); got != conns-1 {
		t.Fatalf("shed %d requests, want %d", got, conns-1)
	}
	close(s.testGate) // release the batcher; the queued request completes
	wg.Wait()
	if served != 1 || retried != conns-1 {
		t.Fatalf("served=%d retried=%d, want 1/%d", served, retried, conns-1)
	}
}

// TestSessionCapAdmission: connections beyond MaxSessions get an explicit
// retry-and-close instead of service.
func TestSessionCapAdmission(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{MaxSessions: 1, Seed: 1})
	defer shutdown()

	first := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := first.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	second := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}, MaxAttempts: 1})
	err := second.Connect(context.Background())
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("second session: err = %v, want capacity rejection", err)
	}
	if got := s.reg.Counter("serve_sessions_rejected_total").Value(); got < 1 {
		t.Fatal("rejection not counted")
	}
}

// rawDial opens a raw NDJSON connection for protocol-abuse tests.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// TestBadHelloRejected covers malformed JSON and out-of-range shapes.
func TestBadHelloRejected(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 1})
	defer shutdown()

	for _, hello := range []string{
		"not json at all\n",
		`{"n":0,"m":3,"spouts":1}` + "\n",
		`{"n":4,"m":100000,"spouts":1}` + "\n",
	} {
		conn := rawDial(t, addr)
		if _, err := conn.Write([]byte(hello)); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		dec := json.NewDecoder(conn)
		var sol core.SolutionMsg
		if err := dec.Decode(&sol); err == nil {
			if sol.Err == "" {
				t.Fatalf("hello %q: got %+v, want error reply", hello, sol)
			}
		}
		conn.Close()
	}
	if got := s.reg.Counter("serve_protocol_errors_total").Value(); got < 2 {
		t.Fatalf("protocol errors %d, want >= 2", got)
	}
}

// TestOversizedLineCloses: a frame above MaxLineBytes is a protocol error
// that terminates the session.
func TestOversizedLineCloses(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{MaxLineBytes: 512, Seed: 1})
	defer shutdown()

	conn := rawDial(t, addr)
	defer conn.Close()
	hello, _ := json.Marshal(HelloMsg{N: 4, M: 2, Spouts: 1})
	conn.Write(append(hello, '\n'))
	dec := json.NewDecoder(conn)
	var sol core.SolutionMsg
	if err := dec.Decode(&sol); err != nil || sol.Err != "" {
		t.Fatalf("hello failed: %v %+v", err, sol)
	}
	big := strings.Repeat("x", 2048)
	if _, err := conn.Write([]byte(`{"workload":[1],"pad":"` + big + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The daemon drains the oversized frame before replying, so the error
	// reply must arrive intact (not be destroyed by a close-with-unread-data
	// reset) and must not carry a solution.
	if err := dec.Decode(&sol); err != nil {
		t.Fatalf("expected error reply after oversized frame, got %v", err)
	}
	if sol.Err == "" || sol.Assign != nil {
		t.Fatalf("oversized frame got %+v, want bare error reply", sol)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.reg.Counter("serve_protocol_errors_total").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.reg.Counter("serve_protocol_errors_total").Value(); got == 0 {
		t.Fatal("oversized line not counted as protocol error")
	}
}

// TestWorkloadShapeMismatch: measurements must match the declared spout
// count.
func TestWorkloadShapeMismatch(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Seed: 1})
	defer shutdown()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 2}, MaxAttempts: 1})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	_, err := sess.Step(context.Background(), core.MeasurementMsg{Workload: []float64{1, 2, 3}})
	if err == nil || !strings.Contains(err.Error(), "spout") {
		t.Fatalf("err = %v, want spout shape rejection", err)
	}
}

// TestSessionReconnect: a dropped connection is re-dialed with backoff and
// the step resubmitted, transparently to the caller.
func TestSessionReconnect(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Seed: 1})
	defer shutdown()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Step(context.Background(), core.MeasurementMsg{Workload: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	// Sever the transport under the session's feet.
	sess.conn.Close()
	if _, err := sess.Step(context.Background(), core.MeasurementMsg{Workload: []float64{6}}); err != nil {
		t.Fatalf("step after drop: %v", err)
	}
	if got := sess.stats.Reconnects.Load(); got < 1 {
		t.Fatal("reconnect not counted")
	}
}

// TestHTTPControlSurface covers /metrics and /healthz.
func TestHTTPControlSurface(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 1})
	defer shutdown()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(context.Background(), core.MeasurementMsg{Workload: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"serve_requests_total 1", "serve_request_latency_p99_seconds", "serve_models 1"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Models != 1 {
		t.Fatalf("healthz %+v", health)
	}
}
