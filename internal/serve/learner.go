package serve

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rl"
)

// Online learning (tentpole): the daemon no longer serves a frozen policy.
// Sessions feed (state, action, reward, next-state) transitions distilled
// from their epoch measurements into a per-model replay buffer sharded by
// session token, and a trainer runs batched actor-critic updates
// (core.ActorCritic.TrainOnBatch, built on nn.ForwardBatch/BackwardBatch)
// against the learner's own copy of the networks. Updated weights are
// published through a small ring of inference network pairs whose
// ownership moves over channels (model.toServe / model.returned): the
// trainer restores a weight snapshot into a pair it exclusively owns,
// hands it to the batch loop, and reclaims pairs the loop has stopped
// serving. Inference therefore never blocks on training and never
// observes a half-written weight set — a pair is never writable and
// readable at the same time.

// netPair is one double-buffer slot: a full actor/critic network pair
// (including the inference-only transpose caches) that the batch loop can
// serve from.
type netPair struct {
	actor, critic *nn.Network
}

// pubRingSize is the weight-publication ring: at most one pair pending in
// toServe (drained before every publish) and at most two loop-held (the
// serving pair, plus — for one instant — a newly received pair before
// the old one is pushed to returned), so after reclaiming returned at
// least one slot is normally free; publishLocked mints a replacement if a
// non-blocking handoff ever dropped one.
const pubRingSize = 3

// modelLearner owns one model's training side.
type modelLearner struct {
	mdl *model

	replay *rl.ShardedReplay

	// mu guards the trainer state below (train rounds, checkpointing).
	mu        sync.Mutex
	ac        *core.ActorCritic
	batchSize int
	rng       *rand.Rand
	batch     []rl.Transition
	updates   int // minibatch updates completed

	// free holds the ring slots the trainer currently owns (pubRingSize
	// of them at rest; see the constant for the ownership accounting).
	free []*netPair
	// lastPublished records the most recent publish for introspection
	// (golden-test checksum assertions); guarded by mu and only ever
	// rewritten by this trainer after reclaiming the pair.
	lastPublished *netPair

	// mReplay is this model's replay-occupancy gauge (one per model —
	// a shared gauge would flap between models' totals).
	mReplay *Gauge

	// pool shards the trainer's batched GEMM row bands across the
	// server's shared pool; lastShards tracks the counter so train rounds
	// (serialized by mu) can publish deltas to serve_gemm_shards_total.
	pool       *nn.Pool
	lastShards uint64

	snapActor, snapCritic nn.Snapshot
}

// newModelLearner clones the model's serving networks as the training
// start point (so a preloaded checkpoint keeps learning from where
// offline training stopped) and builds the publication ring.
func newModelLearner(m *model, cfg Config) (*modelLearner, error) {
	acCfg := core.DefaultACConfig()
	acCfg.K = cfg.K
	if cfg.TrainBatch > 0 {
		acCfg.BatchSize = cfg.TrainBatch
	}
	seed := cfg.Seed + int64(m.key.n*7_368_787+m.key.m*104_729+m.key.spouts*31) + 1
	ac, err := core.NewActorCriticFrom(m.key.n, m.key.m, m.key.spouts, acCfg, seed,
		m.pol.Actor.Clone(), m.pol.Critic.Clone())
	if err != nil {
		return nil, err
	}
	l := &modelLearner{
		mdl:       m,
		replay:    rl.NewShardedReplay(cfg.ReplayPerSession),
		ac:        ac,
		batchSize: acCfg.BatchSize,
		rng:       rand.New(rand.NewSource(seed + 1)),
		mReplay:   m.srv.reg.Gauge(fmt.Sprintf("serve_replay_transitions_%dx%d_%d", m.key.n, m.key.m, m.key.spouts)),
		pool:      nn.NewPool(m.srv.gemmSem),
	}
	ac.SetPool(l.pool)
	for i := 0; i < pubRingSize; i++ {
		l.free = append(l.free, &netPair{actor: m.pol.Actor.Clone(), critic: m.pol.Critic.Clone()})
	}
	return l, nil
}

// observe records one session transition into the session's replay shard
// and returns the shard's write sequence (journaled with the transition
// so recovery can dedupe it against the snapshot's shard state).
func (l *modelLearner) observe(token string, t rl.Transition) uint64 {
	seq := l.replay.Add(token, t)
	l.mdl.srv.mTransitions.Inc()
	return seq
}

// dropShard forgets an evicted session's replay contributions.
func (l *modelLearner) dropShard(token string) {
	l.replay.Remove(token)
}

// trainRound runs up to updates mini-batch AC updates and, if any ran,
// publishes the new weights. It returns the number of updates performed
// (zero while the replay buffer is still shorter than one batch). Safe to
// call from the background trainer goroutine and from TrainNow alike; a
// round is deterministic given the replay contents and the learner's RNG
// state.
func (l *modelLearner) trainRound(updates int) int {
	if updates <= 0 {
		updates = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	srv := l.mdl.srv
	done := 0
	for i := 0; i < updates; i++ {
		if l.replay.Len() < l.batchSize {
			break // not enough experience yet; keep serving the old weights
		}
		l.batch = l.replay.Sample(l.rng, l.batchSize, l.batch)
		start := time.Now()
		l.ac.TrainOnBatch(l.batch)
		srv.mTrainLatency.Observe(time.Since(start))
		done++
	}
	if done == 0 {
		return 0
	}
	l.updates += done
	if cur := l.pool.Shards.Load(); cur != l.lastShards {
		srv.mGemmShards.Add(int64(cur - l.lastShards))
		l.lastShards = cur
	}
	srv.mTrainUpdates.Add(int64(done))
	l.mReplay.Set(int64(l.replay.Len()))
	l.publishLocked()
	return done
}

// publishLocked snapshots the trainer's current weights into a ring slot
// the trainer owns and hands it to the batch loop.
func (l *modelLearner) publishLocked() {
	// Reclaim every slot the batch loop has stopped serving, plus a
	// pending publish it never picked up (stale now anyway).
reclaim:
	for {
		select {
		case p := <-l.mdl.returned:
			l.free = append(l.free, p)
		default:
			break reclaim
		}
	}
	select {
	case p := <-l.mdl.toServe:
		l.free = append(l.free, p)
	default:
	}
	actor, _, critic, _ := l.ac.Networks()
	if len(l.free) == 0 {
		// A non-blocking returned-send dropped a slot (possible only
		// around role transitions); mint a replacement so publication
		// never stalls on a shrunken ring.
		l.free = append(l.free, &netPair{actor: actor.Clone(), critic: critic.Clone()})
	}

	pair := l.free[len(l.free)-1]
	l.free = l.free[:len(l.free)-1]
	actor.Snapshot(&l.snapActor)
	critic.Snapshot(&l.snapCritic)
	// Restore cannot fail here: the ring pairs are clones of the same
	// architecture the trainer updates.
	pair.actor.Restore(&l.snapActor)
	pair.critic.Restore(&l.snapCritic)
	l.mdl.toServe <- pair // cap 1, drained above: never blocks
	l.lastPublished = pair
	l.mdl.srv.mPublished.Inc()
}

// checksums returns the trainer networks' weight checksums (golden-test
// hook: two deterministic runs must agree bitwise).
func (l *modelLearner) checksums() (actor, critic uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, _, c, _ := l.ac.Networks()
	return a.Checksum(), c.Checksum()
}

// checkpoint writes the trainer's current actor/critic weights to
// dir/actor-NxM-S.net and dir/critic-NxM-S.net atomically (tmp + rename),
// in the cmd/train checkpoint format agentd already loads.
func (l *modelLearner) checkpoint(dir string) error {
	l.mu.Lock()
	actor, _, critic, _ := l.ac.Networks()
	actorBlob, aerr := actor.MarshalBinary()
	criticBlob, cerr := critic.MarshalBinary()
	l.mu.Unlock()
	if aerr != nil {
		return aerr
	}
	if cerr != nil {
		return cerr
	}
	k := l.mdl.key
	if err := writeFileAtomic(filepath.Join(dir, fmt.Sprintf("actor-%dx%d-%d.net", k.n, k.m, k.spouts)), actorBlob); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, fmt.Sprintf("critic-%dx%d-%d.net", k.n, k.m, k.spouts)), criticBlob); err != nil {
		return err
	}
	l.mdl.srv.mCheckpoints.Inc()
	return nil
}

// writeFileAtomic writes data under a temp name and renames it into
// place, so a reader (or a crash) never sees a half-written checkpoint.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
