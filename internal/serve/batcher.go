package serve

import (
	"context"
	"time"

	"repro/internal/mat"
)

// inferReq is one state→action request travelling from a session goroutine
// to its model's batch loop. The session owns state and result; the
// batcher writes result and closes done, which publishes the write.
type inferReq struct {
	state  []float64
	result []int
	done   chan struct{}
}

// model is one topology shape's serving state: the policy (networks +
// action space + scratch, confined to the batch loop goroutine) and the
// bounded request queue that sessions feed.
type model struct {
	srv   *Server
	key   modelKey
	pol   *Policy
	queue chan *inferReq

	// batch-loop scratch
	states *mat.Matrix
	reqs   []*inferReq
	outs   [][]int
}

func newModel(s *Server, key modelKey) *model {
	return &model{
		srv:   s,
		key:   key,
		pol:   NewPolicy(key.n, key.m, key.spouts, s.cfg.K, s.cfg.Seed+int64(key.n*1_000_003+key.m*1009+key.spouts)),
		queue: make(chan *inferReq, s.cfg.QueueDepth),
	}
}

// start launches the batch loop under the server's run context.
func (m *model) start() {
	m.srv.wg.Add(1)
	go func() {
		defer m.srv.wg.Done()
		m.run(m.srv.ctx)
	}()
}

// run is the inference batch loop: block for the first pending request,
// gather more for up to BatchWindow (or until MaxBatch), then serve the
// whole micro-batch with one batched policy pass. Amortizing the actor and
// critic GEMMs across sessions is what turns N concurrent sessions from N
// GEMVs into one GEMM per window — the serving-path analogue of the
// batched training step.
func (m *model) run(ctx context.Context) {
	cfg := m.srv.cfg
	for {
		if m.srv.testGate != nil {
			select {
			case <-m.srv.testGate:
			case <-ctx.Done():
				return
			}
		}
		var first *inferReq
		select {
		case first = <-m.queue:
		case <-ctx.Done():
			return
		}
		m.reqs = append(m.reqs[:0], first)

		if cfg.MaxBatch > 1 && cfg.BatchWindow > 0 {
			timer := time.NewTimer(cfg.BatchWindow)
		gather:
			for len(m.reqs) < cfg.MaxBatch {
				select {
				case r := <-m.queue:
					m.reqs = append(m.reqs, r)
				case <-timer.C:
					break gather
				case <-ctx.Done():
					break gather
				}
			}
			timer.Stop()
		} else {
			// No window: take whatever is already queued.
			for len(m.reqs) < cfg.MaxBatch {
				select {
				case r := <-m.queue:
					m.reqs = append(m.reqs, r)
				default:
					goto serve
				}
			}
		}
	serve:
		m.serveBatch(m.reqs)
		if ctx.Err() != nil {
			return
		}
	}
}

// serveBatch runs one batched policy pass and completes every request.
func (m *model) serveBatch(reqs []*inferReq) {
	start := time.Now()
	h := len(reqs)
	sdim := m.pol.StateDim()
	if m.states == nil {
		m.states = &mat.Matrix{}
	}
	m.states.Reshape(h, sdim)
	m.outs = m.outs[:0]
	for i, r := range reqs {
		copy(m.states.Data[i*sdim:(i+1)*sdim], r.state)
		m.outs = append(m.outs, r.result)
	}
	m.pol.SelectBatch(m.states, m.outs)
	for _, r := range reqs {
		close(r.done)
	}
	m.srv.mBatches.Inc()
	m.srv.mBatchedReqs.Add(int64(h))
	m.srv.mInference.Observe(time.Since(start))
}
