package serve

import (
	"context"
	"log"
	"time"

	"repro/internal/mat"
	"repro/internal/nn"
)

// inferReq is one state→action request travelling from a session goroutine
// to its model's batch loop. The session owns state, noise and result; the
// batcher writes result and closes done, which publishes the write.
type inferReq struct {
	state []float64
	// noise, when non-nil, is the session's exploration perturbation
	// (ε·U[0,1) per element), added to the actor's proto-action before the
	// K-NN step. Drawn session-side from the session's own RNG so the
	// exploration stream is deterministic per session regardless of how
	// requests get batched.
	noise  []float64
	result []int
	// failed is set (before done closes) when the batch loop drained this
	// request on exit instead of serving it — a role transition tore the
	// loop down; the session sheds with a retry instead of using a result
	// that was never computed.
	failed bool
	done   chan struct{}
}

// model is one topology shape's serving state: the policy (networks +
// action space + scratch, confined to the batch loop goroutine), the
// bounded request queue that sessions feed, and — when learning — the
// trainer plus the double-buffered weight publication slots.
type model struct {
	srv   *Server
	key   modelKey
	pol   *Policy
	queue chan *inferReq

	// learner trains this model online; nil when the daemon is frozen.
	learner *modelLearner
	// running marks the batch loop as launched (guarded by srv.mu); start
	// is idempotent so a follower's loops survive promotion untouched.
	running bool
	// stopped closes when the batch loop exits, so sessions waiting on a
	// request that will never be served (role teardown) unblock.
	stopped chan struct{}
	// Weight publication is an explicit ownership transfer, so the
	// trainer can never write a pair the batch loop is reading: toServe
	// (cap 1) hands freshly published pairs to the loop — a pending pair
	// the loop has not picked up is reclaimed and replaced by the next
	// publish; returned (cap = ring size) hands pairs the loop has
	// stopped serving back to the trainer. A pair is therefore always
	// owned by exactly one side: the trainer (free list / being written),
	// in flight in a channel, or serving. Channel handoff provides the
	// happens-before edge for the weight writes.
	toServe  chan *netPair
	returned chan *netPair
	// serving is the ring pair currently installed in the policy (nil
	// while still on the initial networks); owned by the batch loop
	// goroutine.
	serving *netPair

	// gemmPool shards this model's inference GEMM row bands across the
	// server's shared pool; lastShards tracks the pool's counter so the
	// batch loop (its only reader) can publish per-batch deltas to the
	// serve_gemm_shards_total metric.
	gemmPool   *nn.Pool
	lastShards uint64

	// batch-loop scratch
	states *mat.Matrix
	reqs   []*inferReq
	outs   [][]int
	noises [][]float64
}

func newModel(s *Server, key modelKey) *model {
	m := &model{
		srv:      s,
		key:      key,
		pol:      NewPolicy(key.n, key.m, key.spouts, s.cfg.K, s.cfg.Seed+int64(key.n*1_000_003+key.m*1009+key.spouts)),
		queue:    make(chan *inferReq, s.cfg.QueueDepth),
		stopped:  make(chan struct{}),
		gemmPool: nn.NewPool(s.gemmSem),
		// The weight publication channels exist on every model, learner or
		// not: a follower's tailer installs replicated weights into running
		// batch loops through the same single-producer handoff the trainer
		// uses (see restoreModel).
		toServe:  make(chan *netPair, 1),
		returned: make(chan *netPair, pubRingSize),
	}
	m.pol.SetPool(m.gemmPool)
	return m
}

// start launches the batch loop (and builds the trainer) under the
// server's run context and current role epoch. It runs with the server
// lock held, after any Preload has installed checkpoint weights, so the
// trainer clones the weights actually being served. Idempotent: a loop
// started for follower reads keeps running across promotion.
func (m *model) start() {
	if m.running {
		return
	}
	m.running = true
	if err := m.ensureLearner(); err != nil {
		// Shapes come from the policy itself, so this is unreachable;
		// fail safe by serving frozen.
		log.Printf("serve: model %v: online learning disabled: %v", m.key, err)
	}
	ctx := m.srv.ctx
	rwg := m.srv.roleWG
	m.srv.wg.Add(1)
	if rwg != nil {
		rwg.Add(1)
	}
	go func() {
		defer m.srv.wg.Done()
		if rwg != nil {
			defer rwg.Done()
		}
		m.run(ctx)
	}()
}

// failPending drains requests enqueued after the batch loop's own exit
// drain (role teardown, loops already waited): each is completed as
// failed so its session sheds with a retry. Callers must know the loop
// is down — concurrent completion of the same request would double-close
// done.
func (m *model) failPending() {
	for {
		select {
		case r := <-m.queue:
			r.failed = true
			close(r.done)
		default:
			return
		}
	}
}

// ensureLearner builds the trainer if the server learns and this model
// does not have one yet — at start, or earlier during durability
// recovery (the recovered replay shards need a learner to live in before
// the batch loop exists).
func (m *model) ensureLearner() error {
	if !m.srv.cfg.Learn || m.learner != nil {
		return nil
	}
	l, err := newModelLearner(m, m.srv.cfg)
	if err != nil {
		return err
	}
	m.learner = l
	return nil
}

// installPublished swaps in the newest published weight pair, if a
// publisher (the trainer — or, on a follower, the tailer installing a
// shipped snapshot) has produced one since the last batch, and returns
// the pair it stops serving. The returned-send never blocks: on a frozen
// follower nothing drains the channel, and a full one just drops the
// pair (the learner's publish path self-heals a shrunken ring).
func (m *model) installPublished() {
	select {
	case p := <-m.toServe:
		if err := m.pol.SetNetworks(p.actor, p.critic); err != nil {
			// Unreachable (published pairs share the policy's architecture);
			// try to hand the pair back rather than leak a ring slot.
			log.Printf("serve: model %v: rejected published weights: %v", m.key, err)
			select {
			case m.returned <- p:
			default:
			}
			return
		}
		if m.serving != nil {
			select {
			case m.returned <- m.serving:
			default:
			}
		}
		m.serving = p
		m.srv.mSwaps.Inc()
	default:
	}
}

// run is the inference batch loop: block for the first pending request,
// gather more for up to BatchWindow (or until MaxBatch), then serve the
// whole micro-batch with one batched policy pass. Amortizing the actor and
// critic GEMMs across sessions is what turns N concurrent sessions from N
// GEMVs into one GEMM per window — the serving-path analogue of the
// batched training step.
func (m *model) run(ctx context.Context) {
	defer func() {
		// The loop is exiting (shutdown or role teardown): wake waiters,
		// then fail everything still queued so no session blocks on a
		// request nobody will serve. stopped closes first — a session that
		// races an enqueue past this drain selects on it and sheds.
		close(m.stopped)
		m.failPending()
	}()
	cfg := m.srv.cfg
	for {
		if m.srv.testGate != nil {
			select {
			case <-m.srv.testGate:
			case <-ctx.Done():
				return
			}
		}
		var first *inferReq
		select {
		case first = <-m.queue:
		case <-ctx.Done():
			return
		}
		m.reqs = append(m.reqs[:0], first)

		if cfg.MaxBatch > 1 && cfg.BatchWindow > 0 {
			timer := time.NewTimer(cfg.BatchWindow)
		gather:
			for len(m.reqs) < cfg.MaxBatch {
				select {
				case r := <-m.queue:
					m.reqs = append(m.reqs, r)
				case <-timer.C:
					break gather
				case <-ctx.Done():
					break gather
				}
			}
			timer.Stop()
		} else {
			// No window: take whatever is already queued.
			for len(m.reqs) < cfg.MaxBatch {
				select {
				case r := <-m.queue:
					m.reqs = append(m.reqs, r)
				default:
					goto serve
				}
			}
		}
	serve:
		m.serveBatch(m.reqs)
		if ctx.Err() != nil {
			return
		}
	}
}

// serveBatch runs one batched policy pass and completes every request.
func (m *model) serveBatch(reqs []*inferReq) {
	start := time.Now()
	m.installPublished()
	h := len(reqs)
	sdim := m.pol.StateDim()
	if m.states == nil {
		m.states = &mat.Matrix{}
	}
	m.states.Reshape(h, sdim)
	m.outs = m.outs[:0]
	m.noises = m.noises[:0]
	for i, r := range reqs {
		copy(m.states.Data[i*sdim:(i+1)*sdim], r.state)
		m.outs = append(m.outs, r.result)
		m.noises = append(m.noises, r.noise)
	}
	m.pol.SelectBatchExplore(m.states, m.noises, m.outs)
	for _, r := range reqs {
		close(r.done)
	}
	if cur := m.gemmPool.Shards.Load(); cur != m.lastShards {
		m.srv.mGemmShards.Add(int64(cur - m.lastShards))
		m.lastShards = cur
	}
	m.srv.mBatches.Inc()
	m.srv.mBatchedReqs.Add(int64(h))
	m.srv.mInference.Observe(time.Since(start))
}
