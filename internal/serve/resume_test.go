package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// waitDetached blocks until the daemon has reaped every closed connection
// (a client Close is only visible to the session table once the session
// goroutine notices the EOF and detaches).
func waitDetached(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sessions never detached")
		}
		time.Sleep(time.Millisecond)
	}
}

// step is a test shorthand for one measurement→solution exchange.
func step(t *testing.T, sess *Session, work ...float64) []int {
	t.Helper()
	a, err := sess.Step(context.Background(), core.MeasurementMsg{AvgTupleTimeMS: 42, Workload: work})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSessionResumeRestoresState: a reconnecting client presenting its
// token gets back its epoch counter and current solution instead of a
// cold start.
func TestSessionResumeRestoresState(t *testing.T) {
	_, addr, shutdown := startServer(t, Config{Seed: 3})
	defer shutdown()

	first := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 6, M: 3, Spouts: 1}})
	if err := first.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		step(t, first, 100+float64(e))
	}
	token, epoch := first.Token(), first.Epoch()
	lastAssign := fmt.Sprint(first.Assign())
	if token == "" {
		t.Fatal("daemon issued no session token")
	}
	if first.Resumed() {
		t.Fatal("first connection claims to be resumed")
	}
	first.Close()

	second := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 6, M: 3, Spouts: 1, Token: token}})
	if err := second.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if !second.Resumed() {
		t.Fatal("second connection did not resume")
	}
	if second.Epoch() != epoch {
		t.Fatalf("resumed at epoch %d, want %d", second.Epoch(), epoch)
	}
	if got := fmt.Sprint(second.Assign()); got != lastAssign {
		t.Fatalf("resumed solution %s, want %s", got, lastAssign)
	}
	// The session keeps serving: epochs continue from where it left off.
	step(t, second, 104)
	if second.Epoch() != epoch+1 {
		t.Fatalf("post-resume epoch %d, want %d", second.Epoch(), epoch+1)
	}
}

// TestStepReconnectResumesTransparently: a connection severed mid-run is
// re-dialed by Step, which presents the token and lands back in the same
// daemon-side session.
func TestStepReconnectResumesTransparently(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3})
	defer shutdown()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	step(t, sess, 120)
	epoch := sess.Epoch()

	sess.conn.Close() // sever the transport under the session's feet
	step(t, sess, 121)
	if got := sess.stats.Resumes.Load(); got != 1 {
		t.Fatalf("resumes = %d, want 1", got)
	}
	if sess.Epoch() != epoch+1 {
		t.Fatalf("epoch after mid-run kill = %d, want %d (state continuity)", sess.Epoch(), epoch+1)
	}
	if got := s.reg.Counter("serve_sessions_resumed_total").Value(); got != 1 {
		t.Fatalf("daemon counted %d resumes, want 1", got)
	}
}

// TestResumeAfterTTLEvictionGetsFreshSession: a token whose state the
// janitor reclaimed must start a fresh session — not return an error.
func TestResumeAfterTTLEvictionGetsFreshSession(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3, SessionTTL: time.Minute})
	defer shutdown()

	var (
		mu  sync.Mutex
		now = time.Unix(1000, 0)
	)
	s.sessions.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	step(t, sess, 100)
	token, epoch := sess.Token(), sess.Epoch()
	if epoch == 0 {
		t.Fatal("no epochs served before the kill")
	}
	sess.Close()
	waitDetached(t, s)

	mu.Lock()
	now = now.Add(2 * time.Minute) // detached state outlives its TTL
	mu.Unlock()
	if evicted := s.sessions.sweep(); evicted != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", evicted)
	}

	again := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1, Token: token}})
	if err := again.Connect(context.Background()); err != nil {
		t.Fatalf("resume after eviction must degrade to a cold start, got %v", err)
	}
	defer again.Close()
	if again.Resumed() {
		t.Fatal("session claims to have resumed evicted state")
	}
	if again.Epoch() != 0 {
		t.Fatalf("fresh session starts at epoch %d, want 0", again.Epoch())
	}
	if again.Token() != token {
		t.Fatalf("fresh session re-keyed to %q, want the presented token %q", again.Token(), token)
	}
}

// TestResumeShapeMismatchRejected: a token can only resume a session of
// the topology shape it was issued for.
func TestResumeShapeMismatchRejected(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3})
	defer shutdown()

	sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := sess.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	token := sess.Token()
	sess.Close()
	waitDetached(t, s)

	wrong := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 6, M: 3, Spouts: 2, Token: token}, MaxAttempts: 1})
	err := wrong.Connect(context.Background())
	if err == nil || !strings.Contains(err.Error(), "belongs to") {
		t.Fatalf("shape-mismatched resume: err = %v, want topology rejection", err)
	}
	if got := s.reg.Counter("serve_resume_rejected_total").Value(); got != 1 {
		t.Fatalf("resume rejections = %d, want 1", got)
	}
}

// TestDuplicateTokenOnLiveSession: while a token's session is attached to
// a live connection, a second hello with that token is shed with a retry
// — never served two-headed — and the current holder is kicked so a
// half-dead socket cannot pin the session until IdleTimeout (connection
// takeover: the presenter's retry wins once the holder drains).
func TestDuplicateTokenOnLiveSession(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3})
	defer shutdown()

	live := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1}})
	if err := live.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	step(t, live, 100)
	epoch := live.Epoch()

	// A single-attempt presenter observes the shed itself.
	dup := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1, Token: live.Token()}, MaxAttempts: 1})
	err := dup.Connect(context.Background())
	if err == nil {
		t.Fatal("duplicate token on a live session was accepted")
	}
	if !strings.Contains(err.Error(), "live session") {
		t.Fatalf("duplicate token: err = %v, want live-session retry", err)
	}
	if got := s.reg.Counter("serve_resume_rejected_total").Value(); got < 1 {
		t.Fatal("duplicate token not counted as a resume rejection")
	}

	// A presenter with a normal retry budget takes the session over: the
	// shed kicked the old holder, whose drain frees the token.
	takeover := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1, Token: live.Token()}})
	if err := takeover.Connect(context.Background()); err != nil {
		t.Fatalf("takeover after kick: %v", err)
	}
	defer takeover.Close()
	if !takeover.Resumed() || takeover.Epoch() != epoch {
		t.Fatalf("takeover resumed=%v epoch=%d, want resumed at epoch %d", takeover.Resumed(), takeover.Epoch(), epoch)
	}
	step(t, takeover, 101)
}

// TestStaleMeasurementNotLearned: a resubmitted measurement whose epoch
// echo does not match the last served epoch (lost reply, resume, resend)
// is still served but must not close the pending transition — its reward
// was measured on an older deployment.
func TestStaleMeasurementNotLearned(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3, Learn: true, TrainInterval: -1})
	defer shutdown()

	conn := rawDial(t, addr)
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	exchange := func(meas core.MeasurementMsg) core.SolutionMsg {
		t.Helper()
		if err := enc.Encode(&meas); err != nil {
			t.Fatal(err)
		}
		var sol core.SolutionMsg
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if err := dec.Decode(&sol); err != nil {
			t.Fatal(err)
		}
		if sol.Err != "" {
			t.Fatalf("daemon error: %s", sol.Err)
		}
		return sol
	}
	if err := enc.Encode(&HelloMsg{N: 4, M: 2, Spouts: 1}); err != nil {
		t.Fatal(err)
	}
	var hello core.SolutionMsg
	if err := dec.Decode(&hello); err != nil || hello.Err != "" {
		t.Fatalf("hello: %v %+v", err, hello)
	}

	// The echo is 1-based: Epoch = 1 + the epoch of the observed
	// solution, so observing the hello solution (epoch 0) is still a
	// non-zero echo, distinguishable from an echo-less legacy peer.
	transitions := s.reg.Counter("serve_transitions_total")
	stale := s.reg.Counter("serve_stale_measurements_total")
	exchange(core.MeasurementMsg{Epoch: 1, AvgTupleTimeMS: 50, Workload: []float64{100}}) // observed epoch 0; serves epoch 1, opens pending
	// Resubmission of the very first measurement (lost epoch-1 reply):
	// must not close the pending epoch-1 transition — the regression the
	// 1-based echo exists for (a 0-based echo would be dropped by
	// omitempty and be indistinguishable from "no echo").
	exchange(core.MeasurementMsg{Epoch: 1, AvgTupleTimeMS: 50, Workload: []float64{100}})
	if got, st := transitions.Value(), stale.Value(); got != 0 || st != 1 {
		t.Fatalf("epoch-0 resubmission: transitions=%d stale=%d, want 0/1", got, st)
	}
	exchange(core.MeasurementMsg{Epoch: 3, AvgTupleTimeMS: 48, Workload: []float64{101}}) // observed epoch 2: in sequence, closes pending
	if got := transitions.Value(); got != 1 {
		t.Fatalf("transitions after in-sequence measurement = %d, want 1", got)
	}
	// Mid-stream resubmission: echo 3 again, but the daemon already
	// served epoch 3 (expects echo 4).
	exchange(core.MeasurementMsg{Epoch: 3, AvgTupleTimeMS: 47, Workload: []float64{102}})
	if got, st := transitions.Value(), stale.Value(); got != 1 || st != 2 {
		t.Fatalf("stale measurement was learned from (transitions=%d stale=%d, want 1/2)", got, st)
	}
	// The next in-sequence measurement (observed epoch 4, echo 5) learns
	// again.
	exchange(core.MeasurementMsg{Epoch: 5, AvgTupleTimeMS: 46, Workload: []float64{103}})
	if got := transitions.Value(); got != 2 {
		t.Fatalf("learning did not recover after a stale resubmission (transitions = %d, want 2)", got)
	}
}

// TestSessionTableCapacityEvictsDetached: at the tracked-session cap the
// table reclaims the oldest detached state rather than refusing new
// sessions.
func TestSessionTableCapacityEvictsDetached(t *testing.T) {
	s, addr, shutdown := startServer(t, Config{Seed: 3, MaxTrackedSessions: 2})
	defer shutdown()

	open := func(token string) *Session {
		sess := NewSession(ClientConfig{Addr: addr, Hello: HelloMsg{N: 4, M: 2, Spouts: 1, Token: token}})
		if err := sess.Connect(context.Background()); err != nil {
			t.Fatalf("session %s: %v", token, err)
		}
		return sess
	}
	// Detach order is what orders lastSeen between the sessions here.
	a := open("a")
	a.Close()
	waitDetached(t, s)
	b := open("b")
	b.Close()
	waitDetached(t, s)
	// Table is at capacity with two detached entries; a third session
	// evicts the oldest ("a").
	c := open("c")
	defer c.Close()

	again := open("a")
	defer again.Close()
	if again.Resumed() {
		t.Fatal("state of capacity-evicted session survived")
	}
}
