package svr

import (
	"math"
	"math/rand"
	"testing"
)

func linearData(rng *rand.Rand, n int, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64()}
		X[i] = x
		y[i] = 2*x[0] - 1.5*x[1] + 0.5*x[2] + 3 + rng.NormFloat64()*noise
	}
	return X, y
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 30}, {5, 50}}
	s := FitScaler(X)
	if math.Abs(s.Mean[0]-3) > 1e-12 || math.Abs(s.Mean[1]-30) > 1e-12 {
		t.Fatalf("means %v", s.Mean)
	}
	z := s.Apply([]float64{3, 30})
	if math.Abs(z[0]) > 1e-12 || math.Abs(z[1]) > 1e-12 {
		t.Fatalf("center not zero: %v", z)
	}
	// Constant feature gets Std=1 (no division blowup).
	s2 := FitScaler([][]float64{{7}, {7}})
	if s2.Std[0] != 1 {
		t.Fatalf("constant feature std %v", s2.Std[0])
	}
	// Empty scaler passes through.
	s3 := FitScaler(nil)
	out := s3.Apply([]float64{1, 2})
	if out[0] != 1 || out[1] != 2 {
		t.Fatal("empty scaler should pass through")
	}
}

func TestSVRFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := linearData(rng, 400, 0.1)
	m := NewSVR(0.05)
	if err := m.Fit(rng, X, y); err != nil {
		t.Fatal(err)
	}
	var mse float64
	Xt, yt := linearData(rng, 200, 0)
	for i := range Xt {
		d := m.Predict(Xt[i]) - yt[i]
		mse += d * d
	}
	mse /= float64(len(Xt))
	if mse > 0.5 {
		t.Fatalf("SVR mse %v too high", mse)
	}
}

func TestSVRRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := linearData(rng, 300, 0.05)
	// Inject gross outliers.
	for i := 0; i < 15; i++ {
		y[i] += 500
	}
	m := NewSVR(0.1)
	if err := m.Fit(rng, X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearData(rng, 100, 0)
	var mse float64
	for i := range Xt {
		d := m.Predict(Xt[i]) - yt[i]
		mse += d * d
	}
	mse /= float64(len(Xt))
	// The ε-insensitive (L1-like) loss caps each outlier's pull; the fit
	// should stay usable.
	if mse > 30 {
		t.Fatalf("SVR not robust: mse %v", mse)
	}
}

func TestSVRErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSVR(0.1)
	if err := m.Fit(rng, nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if err := m.Fit(rng, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := m.Fit(rng, [][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows should fail")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("untrained predict should be 0")
	}
}

func TestRidgeFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := linearData(rng, 300, 0.1)
	m := NewRidge(0.01)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := linearData(rng, 100, 0)
	var mse float64
	for i := range Xt {
		d := m.Predict(Xt[i]) - yt[i]
		mse += d * d
	}
	mse /= float64(len(Xt))
	if mse > 0.5 {
		t.Fatalf("ridge mse %v too high", mse)
	}
}

func TestRidgeErrors(t *testing.T) {
	m := NewRidge(0.1)
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("empty input should fail")
	}
	if err := m.Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged input should fail")
	}
	if m.Predict([]float64{1}) != 0 {
		t.Fatal("untrained predict should be 0")
	}
}

func TestSVRCannotCaptureInteraction(t *testing.T) {
	// The paper's critique of the model-based approach: component-wise
	// linear prediction misses interactions. A linear SVR trained on
	// y = x0·x1 must have high residual error — this documents the
	// failure mode the reproduction relies on.
	rng := rand.New(rand.NewSource(5))
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = X[i][0] * X[i][1] * 5
	}
	m := NewSVR(0.05)
	if err := m.Fit(rng, X, y); err != nil {
		t.Fatal(err)
	}
	var mse, variance float64
	for i := range X {
		d := m.Predict(X[i]) - y[i]
		mse += d * d
		variance += y[i] * y[i]
	}
	if mse < variance/2 {
		t.Fatalf("linear SVR unexpectedly captured the interaction: mse=%v var=%v", mse/float64(n), variance/float64(n))
	}
}
