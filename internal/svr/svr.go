// Package svr implements linear ε-insensitive Support Vector Regression
// trained by stochastic gradient descent, plus ridge regression — the
// learning machinery behind the model-based baseline scheduler of Li et
// al. [25], which the paper compares against ("a supervised learning
// method, Support Vector Regression", §1).
package svr

import (
	"fmt"
	"math"
	"math/rand"
)

// Scaler standardizes features to zero mean and unit variance, fitted on
// training data and applied at prediction time.
type Scaler struct {
	Mean, Std []float64
}

// FitScaler computes per-feature mean and standard deviation.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, x := range X {
		for j, v := range x {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(X))
	}
	for _, x := range X {
		for j, v := range x {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(X)))
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Scaler) Apply(x []float64) []float64 {
	if len(s.Mean) == 0 {
		return append([]float64(nil), x...)
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// SVR is a linear support vector regressor minimizing
//
//	C·Σ max(0, |y − w·x − b| − ε) + ½‖w‖²
//
// by SGD, with features standardized internally.
type SVR struct {
	W       []float64
	B       float64
	Epsilon float64 // ε-insensitive tube half-width
	C       float64 // loss weight
	LR      float64 // SGD learning rate
	Epochs  int

	scaler *Scaler
}

// NewSVR returns an SVR with the given tube width and sensible defaults.
func NewSVR(epsilon float64) *SVR {
	return &SVR{Epsilon: epsilon, C: 1.0, LR: 0.01, Epochs: 200}
}

// Fit trains on (X, y). It returns an error on empty or ragged input.
func (m *SVR) Fit(rng *rand.Rand, X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("svr: need equal-length non-empty X (%d) and y (%d)", len(X), len(y))
	}
	d := len(X[0])
	for i, x := range X {
		if len(x) != d {
			return fmt.Errorf("svr: ragged feature row %d (%d vs %d)", i, len(x), d)
		}
	}
	m.scaler = FitScaler(X)
	Xs := make([][]float64, len(X))
	for i, x := range X {
		Xs[i] = m.scaler.Apply(x)
	}
	m.W = make([]float64, d)
	m.B = 0
	n := len(Xs)
	lambda := 1.0 / (m.C * float64(n)) // regularization per-sample
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for iter := 0; iter < n; iter++ {
			i := rng.Intn(n)
			x := Xs[i]
			pred := m.B
			for j, w := range m.W {
				pred += w * x[j]
			}
			resid := y[i] - pred
			// Subgradient of the ε-insensitive loss.
			var g float64
			switch {
			case resid > m.Epsilon:
				g = -1
			case resid < -m.Epsilon:
				g = 1
			}
			for j := range m.W {
				m.W[j] -= m.LR * (g*x[j] + lambda*m.W[j])
			}
			m.B -= m.LR * g
		}
	}
	return nil
}

// Predict returns the regression estimate for x.
func (m *SVR) Predict(x []float64) float64 {
	if m.W == nil {
		return 0
	}
	xs := m.scaler.Apply(x)
	pred := m.B
	for j, w := range m.W {
		pred += w * xs[j]
	}
	return pred
}

// Ridge is closed-form-free ridge regression trained by full-batch gradient
// descent; a cheaper alternative predictor used in the model-based
// scheduler ablation.
type Ridge struct {
	W      []float64
	B      float64
	Lambda float64
	LR     float64
	Epochs int

	scaler *Scaler
}

// NewRidge returns a ridge regressor with regularization lambda.
func NewRidge(lambda float64) *Ridge {
	return &Ridge{Lambda: lambda, LR: 0.1, Epochs: 500}
}

// Fit trains on (X, y).
func (m *Ridge) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("svr: ridge needs equal-length non-empty X (%d) and y (%d)", len(X), len(y))
	}
	d := len(X[0])
	m.scaler = FitScaler(X)
	Xs := make([][]float64, len(X))
	for i, x := range X {
		if len(x) != d {
			return fmt.Errorf("svr: ragged feature row %d", i)
		}
		Xs[i] = m.scaler.Apply(x)
	}
	m.W = make([]float64, d)
	m.B = 0
	n := float64(len(Xs))
	gw := make([]float64, d)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for j := range gw {
			gw[j] = m.Lambda * m.W[j]
		}
		gb := 0.0
		for i, x := range Xs {
			pred := m.B
			for j, w := range m.W {
				pred += w * x[j]
			}
			e := (pred - y[i]) / n
			for j := range gw {
				gw[j] += e * x[j]
			}
			gb += e
		}
		for j := range m.W {
			m.W[j] -= m.LR * gw[j]
		}
		m.B -= m.LR * gb
	}
	return nil
}

// Predict returns the regression estimate for x.
func (m *Ridge) Predict(x []float64) float64 {
	if m.W == nil {
		return 0
	}
	xs := m.scaler.Apply(x)
	pred := m.B
	for j, w := range m.W {
		pred += w * xs[j]
	}
	return pred
}
