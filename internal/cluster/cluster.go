// Package cluster models the physical layer of a DSDPS (§2.1): worker
// machines with slots and CPU cores, the network between them, and the
// assignment of executors (threads) to machines.
//
// Per the paper's design (§3.2, following [52, 25]), all threads of one
// application on a machine share a single worker process, so the two
// mappings N→P and P→M merge into one mapping N→M; Assignment stores
// exactly that.
package cluster

import (
	"fmt"
)

// Machine is one worker machine. The defaults mirror the paper's testbed:
// IBM blades with a quad-core 2.0 GHz CPU, 4 GB memory, 10 slots, on a
// 1 Gbps network (§4.1). Cores counts the cores *available to worker
// executors* — two of the four physical cores are modeled as consumed by
// the OS, Storm daemons (supervisor, acker) and network stack.
type Machine struct {
	Name  string
	Slots int // worker processes this machine may host
	Cores int // CPU cores; drives contention when busy executors exceed cores
	// SpeedFactor scales CPU speed relative to the reference core that
	// component service demands are expressed in (1.0 = reference).
	SpeedFactor float64
	// NetMbps is the NIC line rate in megabits per second.
	NetMbps float64
}

// Cluster is a set of machines plus the latency constants of the three
// communication tiers.
type Cluster struct {
	Machines []*Machine

	// IntraProcessMS is the tuple hand-off latency between executors in the
	// same worker process (an in-memory queue).
	IntraProcessMS float64
	// InterProcessMS is the hand-off latency between processes on one
	// machine (loopback); only reachable for executors of *different*
	// applications under the one-process-per-app constraint.
	InterProcessMS float64
	// NetworkMS is the base one-way network latency between two machines.
	NetworkMS float64
	// SerializeMS is the extra CPU demand (milliseconds) a cross-machine
	// tuple costs at the receiving executor for deserialization (and the
	// sender's serialization, folded in). Kryo (de)serialization dominates
	// inter-worker transfer cost in real Storm; co-locating communicating
	// executors avoids it entirely, which is the main CPU-side lever
	// schedulers exploit.
	SerializeMS float64
}

// NewUniform returns a cluster of m identical machines patterned on the
// paper's testbed (10 slots, 4 cores, 1 Gbps).
func NewUniform(m int) *Cluster {
	c := &Cluster{
		IntraProcessMS: 0.01,
		InterProcessMS: 0.05,
		NetworkMS:      0.60,
		SerializeMS:    0.30,
	}
	for i := 0; i < m; i++ {
		c.Machines = append(c.Machines, &Machine{
			Name:        fmt.Sprintf("machine-%d", i),
			Slots:       10,
			Cores:       2,
			SpeedFactor: 1.0,
			NetMbps:     1000,
		})
	}
	return c
}

// Size returns the number of machines M.
func (c *Cluster) Size() int { return len(c.Machines) }

// Validate checks the cluster is usable.
func (c *Cluster) Validate() error {
	if len(c.Machines) == 0 {
		return fmt.Errorf("cluster: no machines")
	}
	for i, m := range c.Machines {
		if m.Slots <= 0 || m.Cores <= 0 || m.SpeedFactor <= 0 || m.NetMbps <= 0 {
			return fmt.Errorf("cluster: machine %d (%s) has non-positive parameters", i, m.Name)
		}
	}
	return nil
}

// TransferMS returns the tuple transfer latency in milliseconds between an
// executor on machine src and one on machine dst for a tuple of the given
// size, excluding congestion (which the simulator and the analytic
// evaluator model on top). Same machine implies same process for executors
// of one application.
func (c *Cluster) TransferMS(src, dst int, bytes float64) float64 {
	if src == dst {
		return c.IntraProcessMS
	}
	// Serialization + wire time at the slower of the two NICs.
	mbps := c.Machines[src].NetMbps
	if d := c.Machines[dst].NetMbps; d < mbps {
		mbps = d
	}
	wire := bytes * 8 / (mbps * 1e6) * 1e3 // ms
	return c.NetworkMS + wire
}

// Assignment maps each executor index to a machine index: the paper's
// scheduling solution X (one mapping N→M, §3.2).
type Assignment struct {
	MachineOf []int
}

// NewAssignment returns an assignment of n executors, all on machine 0.
func NewAssignment(n int) *Assignment { return &Assignment{MachineOf: make([]int, n)} }

// FromSlice wraps (copies) a machine-index slice.
func FromSlice(machineOf []int) *Assignment {
	return &Assignment{MachineOf: append([]int(nil), machineOf...)}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment { return FromSlice(a.MachineOf) }

// N returns the number of executors.
func (a *Assignment) N() int { return len(a.MachineOf) }

// Validate checks every executor maps to a real machine.
func (a *Assignment) Validate(c *Cluster) error {
	for i, m := range a.MachineOf {
		if m < 0 || m >= c.Size() {
			return fmt.Errorf("cluster: executor %d assigned to invalid machine %d (M=%d)", i, m, c.Size())
		}
	}
	return nil
}

// Diff returns the executor indices whose machine differs between a and
// other. Deploying a new schedule reassigns only these executors (§3.1:
// "only re-assigning those executors whose assignments are different from
// before while keeping the rest untouched").
func (a *Assignment) Diff(other *Assignment) []int {
	if len(a.MachineOf) != len(other.MachineOf) {
		panic(fmt.Sprintf("cluster: Diff size mismatch %d vs %d", len(a.MachineOf), len(other.MachineOf)))
	}
	var moved []int
	for i := range a.MachineOf {
		if a.MachineOf[i] != other.MachineOf[i] {
			moved = append(moved, i)
		}
	}
	return moved
}

// Counts returns the number of executors per machine.
func (a *Assignment) Counts(m int) []int {
	counts := make([]int, m)
	for _, mi := range a.MachineOf {
		counts[mi]++
	}
	return counts
}

// Equal reports whether two assignments are identical.
func (a *Assignment) Equal(other *Assignment) bool {
	if len(a.MachineOf) != len(other.MachineOf) {
		return false
	}
	for i := range a.MachineOf {
		if a.MachineOf[i] != other.MachineOf[i] {
			return false
		}
	}
	return true
}

// AppPlacement is one application's executor→machine assignment within a
// multi-application placement.
type AppPlacement struct {
	App       string
	MachineOf []int
}

// MultiAssignment places several co-resident applications on one cluster.
// Under the one-process-per-app constraint (§3.2) an application runs at
// most one worker process per machine, so each application consumes
// exactly one slot on every machine hosting at least one of its
// executors — that is what makes worker slots a contended resource once
// topologies share a cluster.
type MultiAssignment struct {
	Apps []AppPlacement
}

// Add appends one application's placement (the slice is copied).
func (ma *MultiAssignment) Add(app string, machineOf []int) {
	ma.Apps = append(ma.Apps, AppPlacement{App: app, MachineOf: append([]int(nil), machineOf...)})
}

// Processes returns, per machine, the number of worker processes the
// placement requires: one per application with at least one executor on
// that machine.
func (ma *MultiAssignment) Processes(c *Cluster) []int {
	procs := make([]int, c.Size())
	seen := make([]bool, c.Size())
	for _, ap := range ma.Apps {
		for i := range seen {
			seen[i] = false
		}
		for _, m := range ap.MachineOf {
			if m >= 0 && m < len(seen) && !seen[m] {
				seen[m] = true
				procs[m]++
			}
		}
	}
	return procs
}

// Validate checks every placement maps to real machines, application names
// are unique, and no machine needs more worker processes than it has
// slots.
func (ma *MultiAssignment) Validate(c *Cluster) error {
	names := make(map[string]bool, len(ma.Apps))
	for _, ap := range ma.Apps {
		if ap.App == "" {
			return fmt.Errorf("cluster: multi-assignment has an unnamed application")
		}
		if names[ap.App] {
			return fmt.Errorf("cluster: duplicate application %q in multi-assignment", ap.App)
		}
		names[ap.App] = true
		for i, m := range ap.MachineOf {
			if m < 0 || m >= c.Size() {
				return fmt.Errorf("cluster: app %q executor %d assigned to invalid machine %d (M=%d)",
					ap.App, i, m, c.Size())
			}
		}
	}
	for m, procs := range ma.Processes(c) {
		if procs > c.Machines[m].Slots {
			return fmt.Errorf("cluster: machine %d (%s) needs %d worker processes but has %d slots",
				m, c.Machines[m].Name, procs, c.Machines[m].Slots)
		}
	}
	return nil
}
