package cluster

import (
	"testing"
	"testing/quick"
)

func TestNewUniform(t *testing.T) {
	c := NewUniform(10)
	if c.Size() != 10 {
		t.Fatalf("Size=%d", c.Size())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	m := c.Machines[3]
	if m.Slots != 10 || m.Cores != 2 || m.NetMbps != 1000 {
		t.Fatalf("machine defaults wrong: %+v", m)
	}
	if c.SerializeMS <= 0 {
		t.Fatal("serialization cost should default on")
	}
	if m.Name != "machine-3" {
		t.Fatalf("name %q", m.Name)
	}
}

func TestValidateErrors(t *testing.T) {
	c := &Cluster{}
	if err := c.Validate(); err == nil {
		t.Fatal("empty cluster should fail validation")
	}
	c = NewUniform(2)
	c.Machines[1].Cores = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero cores should fail validation")
	}
}

func TestTransferMS(t *testing.T) {
	c := NewUniform(3)
	// Same machine: intra-process constant.
	if got := c.TransferMS(1, 1, 1e6); got != c.IntraProcessMS {
		t.Fatalf("same-machine transfer %v", got)
	}
	// Cross machine: latency + wire time. 1000 bytes at 1 Gbps = 8e-6 s = 0.008 ms.
	got := c.TransferMS(0, 1, 1000)
	want := c.NetworkMS + 0.008
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cross transfer %v want %v", got, want)
	}
	// Slower destination NIC dominates.
	c.Machines[2].NetMbps = 100
	if c.TransferMS(0, 2, 1000) <= c.TransferMS(0, 1, 1000) {
		t.Fatal("slower NIC should raise transfer time")
	}
}

func TestAssignmentCloneAndEqual(t *testing.T) {
	a := FromSlice([]int{0, 1, 2, 1})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.MachineOf[0] = 2
	if a.Equal(b) {
		t.Fatal("Equal after mutation")
	}
	if a.MachineOf[0] != 0 {
		t.Fatal("clone aliased original")
	}
	if a.Equal(FromSlice([]int{0, 1})) {
		t.Fatal("different lengths cannot be equal")
	}
}

func TestAssignmentDiff(t *testing.T) {
	a := FromSlice([]int{0, 1, 2, 3})
	b := FromSlice([]int{0, 2, 2, 0})
	moved := a.Diff(b)
	if len(moved) != 2 || moved[0] != 1 || moved[1] != 3 {
		t.Fatalf("Diff=%v want [1 3]", moved)
	}
	if len(a.Diff(a)) != 0 {
		t.Fatal("self diff should be empty")
	}
}

func TestDiffPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]int{0}).Diff(FromSlice([]int{0, 1}))
}

func TestCounts(t *testing.T) {
	a := FromSlice([]int{0, 1, 1, 2, 1})
	counts := a.Counts(4)
	want := []int{1, 3, 1, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Counts=%v want %v", counts, want)
		}
	}
}

func TestAssignmentValidate(t *testing.T) {
	c := NewUniform(2)
	if err := FromSlice([]int{0, 1, 0}).Validate(c); err != nil {
		t.Fatal(err)
	}
	if err := FromSlice([]int{0, 5}).Validate(c); err == nil {
		t.Fatal("out-of-range machine should fail")
	}
	if err := FromSlice([]int{-1}).Validate(c); err == nil {
		t.Fatal("negative machine should fail")
	}
}

func TestMultiAssignmentProcesses(t *testing.T) {
	c := NewUniform(3)
	var ma MultiAssignment
	ma.Add("cq", []int{0, 0, 1})
	ma.Add("wc", []int{1, 2, 2, 1})
	procs := ma.Processes(c)
	want := []int{1, 2, 1} // cq on {0,1}, wc on {1,2}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("Processes=%v want %v", procs, want)
		}
	}
	if err := ma.Validate(c); err != nil {
		t.Fatal(err)
	}
}

func TestMultiAssignmentValidate(t *testing.T) {
	c := NewUniform(2)
	var ma MultiAssignment
	ma.Add("a", []int{0, 3})
	if err := ma.Validate(c); err == nil {
		t.Fatal("out-of-range machine should fail")
	}
	ma = MultiAssignment{}
	ma.Add("a", []int{0})
	ma.Add("a", []int{1})
	if err := ma.Validate(c); err == nil {
		t.Fatal("duplicate app name should fail")
	}
	ma = MultiAssignment{}
	ma.Add("", []int{0})
	if err := ma.Validate(c); err == nil {
		t.Fatal("unnamed app should fail")
	}
	// Slot exhaustion: each app takes one worker process on machine 0.
	ma = MultiAssignment{}
	c.Machines[0].Slots = 2
	ma.Add("a", []int{0})
	ma.Add("b", []int{0, 1})
	if err := ma.Validate(c); err != nil {
		t.Fatal(err)
	}
	ma.Add("c", []int{0})
	if err := ma.Validate(c); err == nil {
		t.Fatal("three apps on a 2-slot machine should fail")
	}
}

// Property: Counts always sums to N and Diff(a,b) symmetric in length.
func TestAssignmentProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		const m = 5
		av := make([]int, len(raw))
		bv := make([]int, len(raw))
		for i, r := range raw {
			av[i] = int(r) % m
			bv[i] = int(r/7) % m
		}
		a, b := FromSlice(av), FromSlice(bv)
		counts := a.Counts(m)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != a.N() {
			return false
		}
		return len(a.Diff(b)) == len(b.Diff(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
