package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// The health monitor: one goroutine per group polls the head's /healthz.
// FailThreshold consecutive misses declare the leader dead; the monitor
// then walks the remaining members, promotes the first one that answers
// /promote, and re-homes the group's head there. The dead leader stays in
// the member list but is never re-promoted automatically — if it comes
// back it is a stale generation the promoted node's followers refuse, and
// an operator decides when it rejoins as a follower.

// monitor polls g's head until ctx ends.
func (gw *Gateway) monitor(ctx context.Context, g *group) {
	t := time.NewTicker(gw.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		head := g.Members[g.head.Load()]
		if gw.healthy(ctx, head) {
			g.fails = 0
			continue
		}
		g.fails++
		if g.fails < gw.cfg.FailThreshold {
			continue
		}
		gw.cfg.Logf("fleet: group %s: head %s failed %d health checks, failing over",
			g.Name, head.Addr, g.fails)
		gw.failover(ctx, g)
		g.fails = 0
	}
}

// healthy reports whether b answers /healthz within one poll interval.
func (gw *Gateway) healthy(ctx context.Context, b Backend) bool {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+b.Health+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// failover promotes the first member after the dead head that accepts
// /promote and re-homes the group there. No healthy candidate leaves the
// head unchanged — connections keep getting retry replies and the next
// monitor tick tries again.
func (gw *Gateway) failover(ctx context.Context, g *group) {
	dead := int(g.head.Load())
	for off := 1; off < len(g.Members); off++ {
		idx := (dead + off) % len(g.Members)
		cand := g.Members[idx]
		if err := gw.promote(ctx, cand); err != nil {
			gw.mPromErrs.Inc()
			gw.cfg.Logf("fleet: group %s: promote %s: %v", g.Name, cand.Addr, err)
			continue
		}
		g.head.Store(int32(idx))
		gw.mFailovers.Inc()
		gw.cfg.Logf("fleet: group %s: promoted %s to leader", g.Name, cand.Addr)
		return
	}
	gw.cfg.Logf("fleet: group %s: no promotable member; traffic keeps shedding until one recovers", g.Name)
}

// promote POSTs /promote to b. The daemon's endpoint is idempotent (200
// when already serving), so a retried failover converges.
func (gw *Gateway) promote(ctx context.Context, b Backend) error {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.DialTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, "http://"+b.Health+"/promote", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}
