package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"time"
)

// The health monitor: one goroutine per group polls the head's /healthz.
// FailThreshold consecutive misses declare the leader dead — a miss is a
// request that does not complete within one poll interval, so a
// stalled-but-alive leader (SIGSTOP, long GC pause) whose kernel still
// completes TCP handshakes fails polls exactly like a killed one. The
// monitor then fences the deposed head (severs its spliced connections,
// POSTs /demote in case it was merely stalled), walks the remaining
// members, promotes the first one that answers /promote, re-homes the
// group's head there, and re-points surviving followers at the promoted
// node's shipping address via /retarget.
//
// The same goroutine supervises the non-head members each tick: a member
// probing as a healthy unpromoted replica becomes a read-only routing
// candidate, and a stray — a non-head member whose role is "leader" (a
// restarted ex-leader, generation-stale) or "demoted" (fenced by an
// earlier failover) — is healed back into the group: demoted if it still
// serves, then POST /rejoin?addr=<head's shipping address>, which resets
// its local state through the lagged-follower resync path and re-enters
// it as a tailing follower. What used to be an operator runbook is a
// cooldown-limited control loop.

// monitor polls g until ctx ends. Ticks are jittered over
// [interval/2, interval]: gateways watching many groups (or several
// gateways watching one fleet) must not phase-lock their probe and
// failover bursts.
func (gw *Gateway) monitor(ctx context.Context, g *group) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(jitter(gw.cfg.HealthInterval)):
		}
		headIdx := g.head.Load()
		head := g.Members[headIdx]
		st := gw.probe(ctx, head)
		if st.ok {
			g.fails = 0
		} else {
			g.fails++
			if g.fails >= gw.cfg.FailThreshold {
				gw.cfg.Logf("fleet: group %s: head %s failed %d health checks, failing over",
					g.Name, head.Addr, g.fails)
				gw.failover(ctx, g)
				g.fails = 0
				continue
			}
		}
		gw.supervise(ctx, g, headIdx, st.ok)
	}
}

// memberState is one /healthz probe result. role is the daemon's
// self-reported role ("leader", "replica", "demoted"); empty when the
// body carried none.
type memberState struct {
	ok   bool
	role string
}

// probe GETs b's /healthz with a hard one-interval deadline on the whole
// request — connect, response AND body. The deadline is what makes a
// stalled process indistinguishable from a dead one here: SIGSTOP leaves
// the socket accepting (the kernel completes handshakes without the
// process) while the response never comes, and a connect-only liveness
// check would call that healthy forever.
func (gw *Gateway) probe(ctx context.Context, b Backend) memberState {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+b.Health+"/healthz", nil)
	if err != nil {
		return memberState{}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return memberState{}
	}
	var body struct {
		Role string `json:"role"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	resp.Body.Close()
	return memberState{ok: resp.StatusCode == http.StatusOK, role: body.Role}
}

// supervise probes every non-head member: records read-only routing
// eligibility and heals strays. Healing only runs while the head itself
// is answering — mid-failover the head is about to move, and rejoining
// anyone at a dying head's address would be churn.
func (gw *Gateway) supervise(ctx context.Context, g *group, headIdx int32, headOK bool) {
	now := time.Now()
	cooldown := 5 * gw.cfg.HealthInterval
	for i := range g.Members {
		if int32(i) == headIdx {
			continue
		}
		st := gw.probe(ctx, g.Members[i])
		g.roOK[i].Store(st.ok && st.role == "replica")
		if !headOK || !st.ok || (st.role != "leader" && st.role != "demoted") {
			continue
		}
		if now.Sub(g.lastHeal[i]) < cooldown {
			continue
		}
		g.lastHeal[i] = now
		gw.heal(ctx, g, i, headIdx, st.role)
	}
}

// heal re-enters one stray member as a follower of the current head. A
// stray still serving as a leader is a split generation in the making (a
// restarted ex-leader owns the same tokens under a stale generation), so
// it is severed and demoted first; then /rejoin resets it through the
// follower resync path.
func (gw *Gateway) heal(ctx context.Context, g *group, idx int, headIdx int32, role string) {
	m := g.Members[idx]
	headRepl := g.Members[headIdx].Repl
	if headRepl == "" {
		gw.cfg.Logf("fleet: group %s: member %s is %s but the head has no repl address configured; cannot rejoin it automatically", g.Name, m.Addr, role)
		return
	}
	if role == "leader" {
		if n := g.sever(int32(idx)); n > 0 {
			gw.mSevered.Add(int64(n))
			gw.cfg.Logf("fleet: group %s: severed %d spliced connections to stray leader %s", g.Name, n, m.Addr)
		}
		if err := gw.postControl(ctx, m, "/demote"); err != nil {
			gw.mRejoinErrs.Inc()
			gw.cfg.Logf("fleet: group %s: demote stray leader %s: %v", g.Name, m.Addr, err)
			return
		}
	}
	if err := gw.postControl(ctx, m, "/rejoin?addr="+url.QueryEscape(headRepl)); err != nil {
		gw.mRejoinErrs.Inc()
		gw.cfg.Logf("fleet: group %s: rejoin %s -> %s: %v", g.Name, m.Addr, headRepl, err)
		return
	}
	gw.mRejoins.Inc()
	gw.cfg.Logf("fleet: group %s: rejoined %s member %s as follower of %s", g.Name, role, m.Addr, headRepl)
}

// jitter spreads a poll sleep over [d/2, d] so independent monitor loops
// decorrelate instead of bursting in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// failover fences the deposed head, promotes the first member after it
// that accepts /promote, re-homes the group there, and re-points the
// surviving followers at the promoted node's shipping address. No healthy
// candidate leaves the head unchanged — connections keep getting retry
// replies and the next monitor tick tries again.
//
// Fencing comes first: three missed polls can also mean a long GC or CPU
// stall, in which case the old leader is still alive and serving its
// spliced connections. Severing those connections (and telling the node
// to demote when it is reachable) guarantees no client keeps mutating
// session state on a leader the group has moved past — state the promoted
// follower would never see, and a token that would otherwise be live on
// two nodes at once.
func (gw *Gateway) failover(ctx context.Context, g *group) {
	dead := g.head.Load()
	deposed := g.Members[dead]
	if n := g.sever(dead); n > 0 {
		gw.mSevered.Add(int64(n))
		gw.cfg.Logf("fleet: group %s: severed %d spliced connections to deposed head %s", g.Name, n, deposed.Addr)
	}
	// Best-effort: a stalled-but-alive head fences itself so even clients
	// dialing it directly are shed. A truly dead head just times out.
	if err := gw.postControl(ctx, deposed, "/demote"); err != nil {
		gw.cfg.Logf("fleet: group %s: demote %s: %v (unreachable or already dead)", g.Name, deposed.Addr, err)
	}
	for off := 1; off < len(g.Members); off++ {
		idx := (int(dead) + off) % len(g.Members)
		cand := g.Members[idx]
		if err := gw.postControl(ctx, cand, "/promote"); err != nil {
			gw.mPromErrs.Inc()
			gw.cfg.Logf("fleet: group %s: promote %s: %v", g.Name, cand.Addr, err)
			continue
		}
		g.head.Store(int32(idx))
		gw.mFailovers.Inc()
		gw.cfg.Logf("fleet: group %s: promoted %s to leader", g.Name, cand.Addr)
		gw.retargetFollowers(ctx, g, int32(idx), dead)
		return
	}
	gw.cfg.Logf("fleet: group %s: no promotable member; traffic keeps shedding until one recovers", g.Name)
}

// retargetFollowers re-points the group's surviving followers (everyone
// but the promoted head and the deposed one) at the promoted node's WAL
// shipping address, so replication continues after the failover instead
// of every follower tailing a dead address until an operator intervenes.
// Members without a configured Repl address are skipped with a log line —
// re-pointing them is then the operator's job.
func (gw *Gateway) retargetFollowers(ctx context.Context, g *group, head, dead int32) {
	if len(g.Members) <= 2 {
		return // nobody left to re-point
	}
	promoted := g.Members[head]
	if promoted.Repl == "" {
		gw.cfg.Logf("fleet: group %s: promoted %s has no repl address configured; surviving followers keep tailing the dead leader until re-pointed by hand", g.Name, promoted.Addr)
		return
	}
	for i, m := range g.Members {
		if int32(i) == head || int32(i) == dead {
			continue
		}
		if err := gw.postControl(ctx, m, "/retarget?addr="+url.QueryEscape(promoted.Repl)); err != nil {
			gw.mRetargetErrs.Inc()
			gw.cfg.Logf("fleet: group %s: retarget %s -> %s: %v", g.Name, m.Addr, promoted.Repl, err)
			continue
		}
		gw.mRetargets.Inc()
		gw.cfg.Logf("fleet: group %s: re-pointed follower %s at promoted leader %s", g.Name, m.Addr, promoted.Repl)
	}
}

// postControl POSTs path to b's control surface. The daemon's endpoints
// are idempotent (/promote answers 200 when already serving, /demote when
// already demoted), so retried failovers converge.
func (gw *Gateway) postControl(ctx context.Context, b Backend, path string) error {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.DialTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, "http://"+b.Health+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}
