package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// The health monitor: one goroutine per group polls the head's /healthz.
// FailThreshold consecutive misses declare the leader dead; the monitor
// then fences the deposed head (severs its spliced connections, POSTs
// /demote in case it was merely stalled), walks the remaining members,
// promotes the first one that answers /promote, re-homes the group's head
// there, and re-points surviving followers at the promoted node's
// shipping address via /retarget. The dead leader stays in the member
// list but is never re-promoted automatically — if it comes back it is a
// demoted, stale generation the promoted node's followers refuse, and an
// operator decides when it rejoins as a follower.

// monitor polls g's head until ctx ends.
func (gw *Gateway) monitor(ctx context.Context, g *group) {
	t := time.NewTicker(gw.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		head := g.Members[g.head.Load()]
		if gw.healthy(ctx, head) {
			g.fails = 0
			continue
		}
		g.fails++
		if g.fails < gw.cfg.FailThreshold {
			continue
		}
		gw.cfg.Logf("fleet: group %s: head %s failed %d health checks, failing over",
			g.Name, head.Addr, g.fails)
		gw.failover(ctx, g)
		g.fails = 0
	}
}

// healthy reports whether b answers /healthz within one poll interval.
func (gw *Gateway) healthy(ctx context.Context, b Backend) bool {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, "http://"+b.Health+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// failover fences the deposed head, promotes the first member after it
// that accepts /promote, re-homes the group there, and re-points the
// surviving followers at the promoted node's shipping address. No healthy
// candidate leaves the head unchanged — connections keep getting retry
// replies and the next monitor tick tries again.
//
// Fencing comes first: three missed polls can also mean a long GC or CPU
// stall, in which case the old leader is still alive and serving its
// spliced connections. Severing those connections (and telling the node
// to demote when it is reachable) guarantees no client keeps mutating
// session state on a leader the group has moved past — state the promoted
// follower would never see, and a token that would otherwise be live on
// two nodes at once.
func (gw *Gateway) failover(ctx context.Context, g *group) {
	dead := g.head.Load()
	deposed := g.Members[dead]
	if n := g.sever(dead); n > 0 {
		gw.mSevered.Add(int64(n))
		gw.cfg.Logf("fleet: group %s: severed %d spliced connections to deposed head %s", g.Name, n, deposed.Addr)
	}
	// Best-effort: a stalled-but-alive head fences itself so even clients
	// dialing it directly are shed. A truly dead head just times out.
	if err := gw.postControl(ctx, deposed, "/demote"); err != nil {
		gw.cfg.Logf("fleet: group %s: demote %s: %v (unreachable or already dead)", g.Name, deposed.Addr, err)
	}
	for off := 1; off < len(g.Members); off++ {
		idx := (int(dead) + off) % len(g.Members)
		cand := g.Members[idx]
		if err := gw.postControl(ctx, cand, "/promote"); err != nil {
			gw.mPromErrs.Inc()
			gw.cfg.Logf("fleet: group %s: promote %s: %v", g.Name, cand.Addr, err)
			continue
		}
		g.head.Store(int32(idx))
		gw.mFailovers.Inc()
		gw.cfg.Logf("fleet: group %s: promoted %s to leader", g.Name, cand.Addr)
		gw.retargetFollowers(ctx, g, int32(idx), dead)
		return
	}
	gw.cfg.Logf("fleet: group %s: no promotable member; traffic keeps shedding until one recovers", g.Name)
}

// retargetFollowers re-points the group's surviving followers (everyone
// but the promoted head and the deposed one) at the promoted node's WAL
// shipping address, so replication continues after the failover instead
// of every follower tailing a dead address until an operator intervenes.
// Members without a configured Repl address are skipped with a log line —
// re-pointing them is then the operator's job.
func (gw *Gateway) retargetFollowers(ctx context.Context, g *group, head, dead int32) {
	if len(g.Members) <= 2 {
		return // nobody left to re-point
	}
	promoted := g.Members[head]
	if promoted.Repl == "" {
		gw.cfg.Logf("fleet: group %s: promoted %s has no repl address configured; surviving followers keep tailing the dead leader until re-pointed by hand", g.Name, promoted.Addr)
		return
	}
	for i, m := range g.Members {
		if int32(i) == head || int32(i) == dead {
			continue
		}
		if err := gw.postControl(ctx, m, "/retarget?addr="+url.QueryEscape(promoted.Repl)); err != nil {
			gw.mRetargetErrs.Inc()
			gw.cfg.Logf("fleet: group %s: retarget %s -> %s: %v", g.Name, m.Addr, promoted.Repl, err)
			continue
		}
		gw.mRetargets.Inc()
		gw.cfg.Logf("fleet: group %s: re-pointed follower %s at promoted leader %s", g.Name, m.Addr, promoted.Repl)
	}
}

// postControl POSTs path to b's control surface. The daemon's endpoints
// are idempotent (/promote answers 200 when already serving, /demote when
// already demoted), so retried failovers converge.
func (gw *Gateway) postControl(ctx context.Context, b Backend, path string) error {
	rctx, cancel := context.WithTimeout(ctx, gw.cfg.DialTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, "http://"+b.Health+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return nil
}
